#!/usr/bin/env bash
# CI entry point: tier-1 verify plus a sanitizer pass.
#
#   ./ci.sh            # tier-1 (default build + full test suite + trace smoke), then
#                      # ASan/UBSan tests (timeline determinism included)
#   ./ci.sh --tier1    # tier-1 only
#   ./ci.sh --asan     # sanitizer pass only
#   ./ci.sh --suite    # tier-1 build, then the bench suite checked against BENCH_baseline.json
#
# The sanitizer pass builds the whole tree (tests and benches) into build-asan/ with
# -fsanitize=address,undefined and runs the test suite under it; any leak, UB, or
# out-of-bounds access fails the script.

set -euo pipefail
cd "$(dirname "$0")"

run_tier1=1
run_asan=1
run_suite=0
case "${1:-}" in
  --tier1) run_asan=0 ;;
  --asan) run_tier1=0 ;;
  --suite)
    run_asan=0
    run_suite=1
    ;;
  "") ;;
  *)
    echo "usage: $0 [--tier1|--asan|--suite]" >&2
    exit 2
    ;;
esac

jobs=$(nproc 2>/dev/null || echo 4)

if [[ "$run_tier1" == 1 ]]; then
  echo "=== tier-1: configure + build + ctest ==="
  cmake -B build -S .
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")

  echo "=== smoke: timeline trace + time-series export ==="
  smoke_dir=$(mktemp -d)
  trap 'rm -rf "$smoke_dir"' EXIT
  build/bench/bench_read_latency --trace "$smoke_dir/trace.json" \
    --timeseries "$smoke_dir/timeseries.csv" > /dev/null
  python3 - "$smoke_dir/trace.json" "$smoke_dir/timeseries.csv" <<'PY'
import json, sys

# Chrome-trace schema: top-level object, traceEvents[], the three named processes, and at
# least three tracks with duration slices on them.
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert trace["displayTimeUnit"] == "ns", "unexpected displayTimeUnit"
procs = {e["args"]["name"] for e in events
         if e["ph"] == "M" and e["name"] == "process_name"}
assert {"host ops", "device maintenance", "utilization"} <= procs, procs
tracks = {(e["pid"], e["tid"]) for e in events
          if e["ph"] == "M" and e["name"] == "thread_name"}
assert len(tracks) >= 3, f"expected >=3 tracks, got {len(tracks)}"
slices = [e for e in events if e["ph"] == "X"]
assert slices, "no duration slices in trace"
for s in slices[:100]:
    float(s["ts"]), float(s["dur"])  # Parseable microsecond stamps.
counters = [e for e in events if e["ph"] == "C"]
assert counters, "no counter samples in trace"

# Time-series CSV schema: header then series,t_ns,value rows with non-decreasing t_ns
# per series.
with open(sys.argv[2]) as f:
    header = f.readline().strip()
    assert header == "series,t_ns,value", header
    last = {}
    rows = 0
    for line in f:
        series, t_ns, value = line.rsplit(",", 2)
        t = int(t_ns)
        float(value)
        assert last.get(series, -1) <= t, f"time went backwards in {series}"
        last[series] = t
        rows += 1
    assert rows > 0, "empty time-series"
print(f"smoke: trace ok ({len(slices)} slices, {len(counters)} samples, "
      f"{len(tracks)} tracks); time-series ok ({rows} rows)")
PY
fi

if [[ "$run_suite" == 1 ]]; then
  echo "=== bench suite vs committed baseline ==="
  bench/run_suite.sh --check
fi

if [[ "$run_asan" == 1 ]]; then
  echo "=== sanitizers: ASan + UBSan build + ctest ==="
  san_flags="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$san_flags" \
    -DCMAKE_EXE_LINKER_FLAGS="$san_flags"
  cmake --build build-asan -j "$jobs"
  (cd build-asan && ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --output-on-failure -j "$jobs")
fi

echo "ci.sh: all requested checks passed"
