#!/usr/bin/env bash
# CI entry point: tier-1 verify plus a sanitizer pass.
#
#   ./ci.sh            # tier-1 (default build + full test suite + trace/audit smokes,
#                      # including the golden-digest fast subset and a negative test that a
#                      # perturbed GC decision is caught and bisected), then the shard-safety
#                      # analyzer, then ASan/UBSan tests (timeline determinism included)
#   ./ci.sh --tier1    # tier-1 only
#   ./ci.sh --asan     # sanitizer pass only
#   ./ci.sh --tsan     # ThreadSanitizer pass only
#   ./ci.sh --lint     # static analysis only: tools/check.sh --strict (lint.py +
#                      # clang-format + clang-tidy, missing tools are an error) and a
#                      # -Werror strict build
#   ./ci.sh --analyze  # shard-safety pass only: tools/shard_analyze.py (clean inventory +
#                      # byte-identical rerun + seeded-violation negative test) and, where
#                      # clang is installed, a -Werror=thread-safety build
#   ./ci.sh --suite    # tier-1 build, then the bench suite checked against BENCH_baseline.json
#   ./ci.sh --perf     # Release build, self-profiled bench subset (--perf --repeat 5) gated
#                      # against BENCH_perf_baseline.json, plus a deliberate-slowdown check
#                      # that proves the gate can fail (see bench/run_suite.sh for tolerance)
#
# The sanitizer passes build the whole tree (tests and benches) into build-asan/ or
# build-tsan/ with -fsanitize=address,undefined (resp. thread) and run the test suite under
# it; any leak, UB, out-of-bounds access, or data race fails the script.

set -euo pipefail
cd "$(dirname "$0")"

run_tier1=1
run_asan=1
run_tsan=0
run_lint=0
run_analyze=1
run_suite=0
run_perf=0
case "${1:-}" in
  --tier1)
    run_asan=0
    run_analyze=0
    ;;
  --asan)
    run_tier1=0
    run_analyze=0
    ;;
  --tsan)
    run_tier1=0
    run_asan=0
    run_analyze=0
    run_tsan=1
    ;;
  --lint)
    run_tier1=0
    run_asan=0
    run_analyze=0
    run_lint=1
    ;;
  --analyze)
    run_tier1=0
    run_asan=0
    ;;
  --suite)
    run_asan=0
    run_analyze=0
    run_suite=1
    ;;
  --perf)
    run_tier1=0
    run_asan=0
    run_analyze=0
    run_perf=1
    ;;
  "") ;;
  *)
    echo "usage: $0 [--tier1|--asan|--tsan|--lint|--analyze|--suite|--perf]" >&2
    exit 2
    ;;
esac

jobs=$(nproc 2>/dev/null || echo 4)

if [[ "$run_lint" == 1 ]]; then
  echo "=== lint: project rules + clang tooling (--strict: missing tools fail) ==="
  tools/check.sh --strict

  echo "=== lint: -Werror strict build ==="
  cmake -B build-werror -S . -DBLOCKHEAD_WERROR=ON
  cmake --build build-werror -j "$jobs"
fi

if [[ "$run_analyze" == 1 ]]; then
  echo "=== analyze: shard-safety inventory (tools/shard_analyze.py) ==="
  analyze_dir=$(mktemp -d)
  # The default path runs tier-1 first, which owns the EXIT trap for its smoke dir; chain
  # rather than overwrite it.
  trap 'rm -rf "${smoke_dir:-}" "$analyze_dir"' EXIT
  python3 tools/shard_analyze.py --output "$analyze_dir/report.json"

  echo "=== analyze: report determinism (byte-identical rerun) ==="
  python3 tools/shard_analyze.py --output "$analyze_dir/report_again.json" --quiet
  cmp "$analyze_dir/report.json" "$analyze_dir/report_again.json"

  echo "=== analyze: seeded violation must be caught and named ==="
  # BLOCKHEAD_ANALYZE_SEED_VIOLATION activates an #ifdef'd mutable static in
  # src/sched/gc_scheduler.cc that no compiler ever sees; the analyzer must flag it by name
  # and exit nonzero, proving the mutable-static detector is alive.
  seed_rc=0
  python3 tools/shard_analyze.py --seed-violation \
    --output "$analyze_dir/seeded.json" > "$analyze_dir/seeded.txt" 2>&1 || seed_rc=$?
  if [[ "$seed_rc" == 0 ]]; then
    echo "ci.sh: FAIL — analyzer passed a tree with the seeded shard violation" >&2
    cat "$analyze_dir/seeded.txt" >&2
    exit 1
  fi
  grep -q "g_seeded_shard_violation" "$analyze_dir/seeded.txt"
  grep -q "mutable-static" "$analyze_dir/seeded.txt"
  echo "ci.sh: OK — seeded violation caught: \
$(grep 'g_seeded_shard_violation' "$analyze_dir/seeded.txt" | head -1 | xargs)"

  if command -v clang++ > /dev/null 2>&1; then
    echo "=== analyze: clang -Werror=thread-safety build ==="
    cmake -B build-tsafety -S . -DCMAKE_CXX_COMPILER=clang++ -DBLOCKHEAD_THREAD_SAFETY=ON
    cmake --build build-tsafety -j "$jobs"
  else
    echo "SKIPPED: clang++ not found — -Werror=thread-safety build needs clang's"
    echo "         thread-safety analysis (annotations are no-ops under GCC; the analyzer"
    echo "         passes above still gate the shard-domain inventory)"
  fi
fi

if [[ "$run_tier1" == 1 ]]; then
  echo "=== tier-1: configure + build + ctest ==="
  cmake -B build -S .
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")

  echo "=== smoke: timeline trace + time-series export ==="
  smoke_dir=$(mktemp -d)
  trap 'rm -rf "$smoke_dir"' EXIT
  build/bench/bench_read_latency --trace "$smoke_dir/trace.json" \
    --timeseries "$smoke_dir/timeseries.csv" > /dev/null
  python3 - "$smoke_dir/trace.json" "$smoke_dir/timeseries.csv" <<'PY'
import json, sys

# Chrome-trace schema: top-level object, traceEvents[], the three named processes, and at
# least three tracks with duration slices on them.
with open(sys.argv[1]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
assert trace["displayTimeUnit"] == "ns", "unexpected displayTimeUnit"
procs = {e["args"]["name"] for e in events
         if e["ph"] == "M" and e["name"] == "process_name"}
assert {"host ops", "device maintenance", "utilization"} <= procs, procs
tracks = {(e["pid"], e["tid"]) for e in events
          if e["ph"] == "M" and e["name"] == "thread_name"}
assert len(tracks) >= 3, f"expected >=3 tracks, got {len(tracks)}"
slices = [e for e in events if e["ph"] == "X"]
assert slices, "no duration slices in trace"
for s in slices[:100]:
    float(s["ts"]), float(s["dur"])  # Parseable microsecond stamps.
counters = [e for e in events if e["ph"] == "C"]
assert counters, "no counter samples in trace"

# Time-series CSV schema: header then series,t_ns,value rows with non-decreasing t_ns
# per series.
with open(sys.argv[2]) as f:
    header = f.readline().strip()
    assert header == "series,t_ns,value", header
    last = {}
    rows = 0
    for line in f:
        series, t_ns, value = line.rsplit(",", 2)
        t = int(t_ns)
        float(value)
        assert last.get(series, -1) <= t, f"time went backwards in {series}"
        last[series] = t
        rows += 1
    assert rows > 0, "empty time-series"
print(f"smoke: trace ok ({len(slices)} slices, {len(counters)} samples, "
      f"{len(tracks)} tracks); time-series ok ({rows} rows)")
PY

  echo "=== smoke: write-provenance JSON rows + ledger dump ==="
  build/bench/bench_lifetime_hints --json "$smoke_dir/prov.json" \
    --ledger "$smoke_dir/ledger.txt" > /dev/null
  python3 - "$smoke_dir/prov.json" "$smoke_dir/ledger.txt" <<'PY'
import json, sys
from collections import defaultdict

# --json schema: every provenance.<device>.programs.<cause> row must sum back to the
# device's programs.total row (same for erases), the endurance projection rows must be
# present, and each published factorized-WA chain must multiply to its end-to-end gauge.
values = {}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        if "value" in rec:
            values[rec["metric"]] = rec["value"]

causes = ("host_write", "device_gc", "wear_migration", "block_emulation_reclaim",
          "zone_compaction", "lsm_flush", "lsm_compaction", "cache_eviction", "padding",
          "fleet_migration")
devices = {m[len("provenance."):-len(".programs.total")]
           for m in values if m.startswith("provenance.") and m.endswith(".programs.total")}
assert devices, "no provenance.<device>.programs.total rows in --json output"
for dev in devices:
    p = f"provenance.{dev}"
    for op in ("programs", "erases"):
        total = values[f"{p}.{op}.total"]
        by_cause = sum(values.get(f"{p}.{op}.{c}", 0) for c in causes)
        assert by_cause == total, f"{dev} {op}: per-cause sum {by_cause} != total {total}"
    for metric in ("endurance.pe_budget", "endurance.mean_erase_count",
                   "endurance.erases_per_block_per_day", "endurance.projected_days"):
        assert f"{p}.{metric}" in values, f"missing {p}.{metric}"

wa_prefixes = {m[:-len(".wa.end_to_end")] for m in values if m.endswith(".wa.end_to_end")}
assert wa_prefixes, "no factorized-WA rows in --json output"
for prefix in wa_prefixes:
    product = 1.0
    i = 0
    while f"{prefix}.wa.factor{i}" in values:
        product *= values[f"{prefix}.wa.factor{i}"]
        i += 1
    assert i > 0, f"{prefix}: no wa.factor<i> rows"
    end_to_end = values[f"{prefix}.wa.end_to_end"]
    # Gauges are rounded when serialized; the exact 1e-9 identity is asserted on the
    # unrounded doubles in tests/provenance_test.cc.
    assert abs(product - end_to_end) <= 1e-4 * max(1.0, end_to_end), \
        f"{prefix}: factor product {product} != end-to-end {end_to_end}"

# Ledger dump format: versioned header, per-device geometry/programs/erases sections whose
# per-cause cells sum to the section totals, and domain bytes_in lines.
with open(sys.argv[2]) as f:
    lines = f.read().splitlines()
assert lines[0] == "# blockhead write-provenance ledger v1", lines[0]
sums = defaultdict(lambda: defaultdict(int))
totals = {}
dev = None
saw_domain = False
for line in lines[1:]:
    parts = line.split()
    if parts[0] == "device":
        dev = parts[1]
    elif parts[0] in ("programs", "erases"):
        totals[(dev, parts[0])] = int(parts[1].split("=")[1])
    elif parts[0] in ("program", "erase"):
        assert parts[1] in causes, f"unknown cause {parts[1]!r}"
        sums[dev][parts[0] + "s"] += int(parts[3])
    elif parts[0] == "domain":
        saw_domain = True
        int(parts[2].split("=")[1])
for (d, op), total in totals.items():
    assert sums[d][op] == total, f"ledger {d} {op}: {sums[d][op]} != {total}"
assert totals, "no device sections in ledger dump"
assert saw_domain, "no domain lines in ledger dump"
print(f"smoke: provenance ok ({len(devices)} devices, {len(wa_prefixes)} WA chains, "
      f"ledger {len(lines)} lines)")
PY

  echo "=== smoke: fleet bench JSON schema + same-seed determinism ==="
  build/bench/bench_fleet --json "$smoke_dir/fleet.json" > /dev/null
  build/bench/bench_fleet --json "$smoke_dir/fleet_again.json" > /dev/null
  cmp "$smoke_dir/fleet.json" "$smoke_dir/fleet_again.json"
  python3 - "$smoke_dir/fleet.json" <<'PY'
import json, sys

# bench_fleet --json schema: per-configuration fleet rows (admission, migration, wear, the
# three WA gauges), merged cross-device latency histograms, and per-shard tail gauges. The
# factorization identity e2e = replication x device WA must hold on the serialized gauges.
values = {}
hists = {}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        if "value" in rec:
            values[rec["metric"]] = rec["value"]
        else:
            hists[rec["metric"]] = rec

prefixes = {m[:-len(".end_to_end_wa")] for m in values if m.endswith(".end_to_end_wa")}
assert prefixes, "no fleet end_to_end_wa rows in --json output"
for p in sorted(prefixes):
    for metric in ("device_wa", "replication_factor", "wear.skew",
                   "admission.admitted", "migration.pages_copied"):
        assert f"{p}.{metric}" in values, f"missing {p}.{metric}"
    e2e = values[f"{p}.end_to_end_wa"]
    product = values[f"{p}.replication_factor"] * values[f"{p}.device_wa"]
    assert abs(product - e2e) <= 1e-3 * max(1.0, e2e), \
        f"{p}: replication x device WA = {product} != end-to-end {e2e}"
    assert f"{p}.read.latency_ns" in hists, f"missing merged {p}.read.latency_ns"
    assert f"{p}.shard00.p99_ns" in values, f"missing per-shard tails for {p}"

eight = [p for p in prefixes if p == "wa.n08"]
assert eight, "no 8-device fleet configuration in --json output"
rebalanced = [p for p in prefixes if p.endswith(".rb1")]
assert rebalanced, "no rebalancing-on ablation rows in --json output"
assert any(values[f"{p}.migration.completed"] > 0 for p in rebalanced), \
    "rebalancing-on ablations completed no migrations"
print(f"smoke: fleet ok ({len(prefixes)} configurations, byte-identical reruns)")
PY

  echo "=== smoke: request-path exemplars + SLO report schema + determinism ==="
  build/bench/bench_interference --exemplars "$smoke_dir/exemplars.json" \
    --slo "$smoke_dir/slo.json" > /dev/null
  build/bench/bench_interference --exemplars "$smoke_dir/exemplars_again.json" \
    --slo "$smoke_dir/slo_again.json" > /dev/null
  cmp "$smoke_dir/exemplars.json" "$smoke_dir/exemplars_again.json"
  cmp "$smoke_dir/slo.json" "$smoke_dir/slo_again.json"
  python3 - "$smoke_dir/exemplars.json" "$smoke_dir/slo.json" <<'PY'
import json, sys

# --exemplars schema: {"exemplars": [...]} worst-k per op class, each with the full
# exclusive segment breakdown summing exactly to the end-to-end latency (the attribution
# identity on serialized rows), ordered worst-first within an op class.
with open(sys.argv[1]) as f:
    dump = json.load(f)
exemplars = dump["exemplars"]
assert exemplars, "no exemplars captured"
SEGMENTS = ("admission_queue", "device_queue", "flash_busy", "gc_stall",
            "compaction_stall", "migration_stall", "replication", "host_other")
by_op = {}
for e in exemplars:
    assert e["op"] in ("read", "write", "trim"), e["op"]
    seg_sum = sum(e["segments"][s + "_ns"] for s in SEGMENTS)
    assert seg_sum == e["latency_ns"], \
        f"identity broken: segments {seg_sum} != latency {e['latency_ns']}"
    assert e["completion_ns"] - e["issue_ns"] == e["latency_ns"]
    by_op.setdefault(e["op"], []).append(e["latency_ns"])
    assert e["top_interference"]["cause"] and e["top_interference"]["layer"]
    if e["interferer"]["track"]:
        assert e["interferer"]["cause"] and e["interferer"]["layer"]
        assert e["interferer"]["end_ns"] >= e["interferer"]["begin_ns"]
for op, lats in by_op.items():
    assert lats == sorted(lats, reverse=True), f"{op} exemplars not worst-first"

# --slo schema: per objective the target, rolling quantile, violation tallies, and both
# burn rates; breached only when both windows burn above budget.
with open(sys.argv[2]) as f:
    report = json.load(f)
slos = report["slo"]
assert slos, "no SLO objectives in report"
for s in slos:
    assert s["quantile"] > 0 and s["target_ns"] > 0 and s["window_ns"] > 0
    assert s["window_violations"] <= s["window_total"]
    float(s["burn_short"]), float(s["burn_long"])
    if s["breached"]:
        assert s["burn_short"] > 1.0 and s["burn_long"] > 1.0
print(f"smoke: reqpath ok ({len(exemplars)} exemplars over {len(by_op)} op classes, "
      f"{len(slos)} SLOs, byte-identical reruns)")
PY

  echo "=== smoke: self-profiler --perf --repeat + dual-clock trace ==="
  # The binary itself asserts SimTime-domain byte-identity across the two repeats (exit 3 on
  # divergence — a wall-clock leak into simulation state); the python below checks the
  # published perf schema and the host-clock process track in the Chrome trace.
  build/bench/bench_read_latency --perf --repeat 2 --json "$smoke_dir/perf.json" \
    --trace "$smoke_dir/perf_trace.json" > /dev/null
  python3 - "$smoke_dir/perf.json" "$smoke_dir/perf_trace.json" <<'PY'
import json, sys

values = {}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        if "value" in rec:
            values[rec["metric"]] = rec["value"]
for metric in ("wall_elapsed_ns", "total_events", "flash_events", "repeats"):
    assert values.get(f"selfprof.host.{metric}", 0) > 0, f"missing selfprof.host.{metric}"
assert values["selfprof.host.repeats"] == 2, values["selfprof.host.repeats"]
assert values["selfprof.host.ns_per_simulated_op"] > 0, "ns_per_simulated_op not derived"
assert values["selfprof.host.sim_speedup"] > 0, "sim_speedup not derived"
breakdown = [m for m in values if m.startswith("selfprof.host.") and m.endswith(".self_ns")]
assert any(".flash." in m or m.endswith("flash.self_ns") for m in breakdown), breakdown
# Exclusive attribution: per-cell self_ns must sum to no more than the wall total.
self_sum = sum(v for m, v in values.items()
               if m.startswith("selfprof.host.") and m.endswith(".self_ns")
               and m.count(".") == 3)  # per-(subsystem, op) cells only
assert self_sum <= values["selfprof.host.wall_elapsed_ns"], \
    f"self_ns sum {self_sum} exceeds wall {values['selfprof.host.wall_elapsed_ns']}"

with open(sys.argv[2]) as f:
    trace = json.load(f)
events = trace["traceEvents"]
procs = {e["args"]["name"] for e in events
         if e["ph"] == "M" and e["name"] == "process_name"}
assert "self-profile (host clock)" in procs, procs
host_slices = [e for e in events if e.get("cat") == "selfprof"]
assert host_slices, "no host-clock slices in dual-clock trace"
for s in host_slices[:50]:
    assert s["pid"] == 3 and s["ph"] == "X"
    float(s["ts"]), float(s["dur"])
sim_slices = [e for e in events if e.get("cat") in ("span", "maintenance")]
assert sim_slices, "SimTime-domain slices missing from dual-clock trace"
print(f"smoke: self-profile ok (ns/op {values['selfprof.host.ns_per_simulated_op']:.0f}, "
      f"speedup {values['selfprof.host.sim_speedup']:.1f}x, "
      f"{len(host_slices)} host slices alongside {len(sim_slices)} sim slices)")
PY

  echo "=== smoke: state-digest audit — schema, determinism, zero perturbation ==="
  # Two same-seed --audit runs must produce byte-identical digest timelines, and enabling
  # the audit must not change simulation results (the --json dump with auditing on must
  # equal the dump with auditing off) or add registry rows.
  build/bench/bench_read_latency --audit "$smoke_dir/audit_a.jsonl" \
    --events "$smoke_dir/events_a.jsonl" --json "$smoke_dir/audit_on.json" > /dev/null
  build/bench/bench_read_latency --audit "$smoke_dir/audit_b.jsonl" > /dev/null
  build/bench/bench_read_latency --json "$smoke_dir/audit_off.json" > /dev/null
  cmp "$smoke_dir/audit_a.jsonl" "$smoke_dir/audit_b.jsonl"
  cmp "$smoke_dir/audit_on.json" "$smoke_dir/audit_off.json"
  build/tools/digest_bisect "$smoke_dir/audit_a.jsonl" "$smoke_dir/audit_b.jsonl" > /dev/null
  python3 - "$smoke_dir/audit_a.jsonl" <<'PY'
import json, re, sys

# blockhead-audit-v1 schema: header first, checkpoint rows sorted by (epoch, subsystem)
# with 16+16 hex-digit digests and monotone t_ns = (epoch+1)*epoch_ns, then per-subsystem
# finals closed by the __run__ composite on the last line.
with open(sys.argv[1]) as f:
    lines = [json.loads(l) for l in f]
assert lines[0]["schema"] == "blockhead-audit-v1", lines[0]
epoch_ns = lines[0]["epoch_ns"]
assert epoch_ns > 0
rows = [l for l in lines[1:] if "epoch" in l]
finals = [l for l in lines[1:] if l.get("final")]
assert rows and finals, "audit dump has no checkpoint rows or no finals"
assert len(lines) == 1 + len(rows) + len(finals), "unexpected line kinds in audit dump"
digest_re = re.compile(r"^[0-9a-f]{16}\.[0-9a-f]{16}$")
last_key = (-1, "")
for r in rows:
    assert digest_re.match(r["digest"]), r["digest"]
    assert r["t_ns"] == (r["epoch"] + 1) * epoch_ns, r
    assert r["mutations"] >= 1, f"checkpoint without mutations: {r}"
    key = (r["epoch"], r["subsystem"])
    assert last_key <= key, f"rows not sorted: {last_key} then {key}"
    last_key = key
assert finals[-1]["subsystem"] == "__run__", "missing __run__ composite"
subsystems = {f["subsystem"] for f in finals}
for expected in ("conv.flash.blocks", "conv.ftl.l2p", "zns.zones", "zns.flash.blocks"):
    assert expected in subsystems, f"missing audited subsystem {expected}"
print(f"smoke: audit ok ({len(rows)} checkpoint cells, {len(finals) - 1} subsystems, "
      f"epoch {epoch_ns} ns)")
PY

  echo "=== smoke: golden final digests on the fast bench subset ==="
  build/bench/bench_wear_leveling --audit "$smoke_dir/wear.audit.jsonl" > /dev/null
  build/bench/bench_fleet --audit "$smoke_dir/fleet.audit.jsonl" > /dev/null
  build/bench/bench_zone_append --audit "$smoke_dir/zone.audit.jsonl" > /dev/null
  python3 - BENCH_digest_baseline.json "$smoke_dir" <<'PY'
import json, sys

# Every committed golden digest of the fast subset must reproduce. This is the cheap CI
# proxy for `bench/run_suite.sh --check`, which enforces the full suite.
SUBSET = {"bench_read_latency": "audit_a.jsonl", "bench_wear_leveling": "wear.audit.jsonl",
          "bench_fleet": "fleet.audit.jsonl", "bench_zone_append": "zone.audit.jsonl"}
golden = {}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)
        if rec["name"] in SUBSET:
            golden[(rec["name"], rec["subsystem"])] = rec["digest"]
assert golden, "BENCH_digest_baseline.json has no rows for the fast subset"
mismatches = []
for bench, dump in SUBSET.items():
    got = {}
    with open(f"{sys.argv[2]}/{dump}") as f:
        for line in f:
            rec = json.loads(line)
            if rec.get("final"):
                got[rec["subsystem"]] = rec["digest"]
    for (b, sub), want in golden.items():
        if b == bench and got.get(sub) != want:
            mismatches.append((bench, sub, want, got.get(sub)))
for bench, sub, want, have in mismatches:
    print(f"golden digest mismatch: {bench} {sub}: committed {want} != {have}",
          file=sys.stderr)
assert not mismatches, f"{len(mismatches)} golden digests drifted"
print(f"smoke: golden digests ok ({len(golden)} committed finals reproduced)")
PY

  echo "=== smoke: perturbed GC decision must be caught and bisected ==="
  # Flip one GC victim selection at SimTime 50ms (second-best instead of best). The digest
  # timeline must diverge from the clean run, and digest_bisect must localize the first
  # divergent cell to the conventional-SSD stack and exit 1.
  BLOCKHEAD_AUDIT_PERTURB_GC_AT=50000000 build/bench/bench_read_latency \
    --audit "$smoke_dir/audit_p.jsonl" --events "$smoke_dir/events_p.jsonl" > /dev/null
  if cmp -s "$smoke_dir/audit_a.jsonl" "$smoke_dir/audit_p.jsonl"; then
    echo "ci.sh: FAIL — perturbed GC decision left the digest timeline unchanged" >&2
    exit 1
  fi
  bisect_rc=0
  build/tools/digest_bisect "$smoke_dir/audit_a.jsonl" "$smoke_dir/audit_p.jsonl" \
    --events "$smoke_dir/events_p.jsonl" > "$smoke_dir/bisect.txt" || bisect_rc=$?
  if [[ "$bisect_rc" != 1 ]]; then
    echo "ci.sh: FAIL — digest_bisect exited $bisect_rc on divergent timelines (want 1)" >&2
    exit 1
  fi
  grep -q "FIRST DIVERGENT CELL" "$smoke_dir/bisect.txt"
  grep -q "subsystem: conv\." "$smoke_dir/bisect.txt"
  echo "smoke: bisect ok — $(grep 'subsystem:' "$smoke_dir/bisect.txt" | head -1 | xargs)"
fi

if [[ "$run_suite" == 1 ]]; then
  echo "=== bench suite vs committed baseline ==="
  bench/run_suite.sh --check
fi

if [[ "$run_perf" == 1 ]]; then
  echo "=== perf: Release build ==="
  # Wall-clock baselines are only comparable at a fixed optimization level, so the perf
  # stage always measures a Release tree (the default build's numbers are ~4x slower and
  # would either trip the gate or need their own baseline).
  cmake -B build-perf -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build build-perf -j "$jobs"

  echo "=== perf: self-profiled suite vs BENCH_perf_baseline.json ==="
  BENCH_BUILD_DIR=build-perf bench/run_suite.sh --check-perf

  echo "=== perf: deliberate flash-layer slowdown must trip the gate ==="
  # Busy-wait 2000ns per flash scope — wall time only, SimTime untouched — which more than
  # doubles ns_per_simulated_op. If the gate still passes, it isn't gating anything.
  if BENCH_BUILD_DIR=build-perf PERF_BENCHES=bench_read_latency PERF_REPEATS=2 \
     BLOCKHEAD_SELFPROF_SPIN_FLASH_NS=2000 bench/run_suite.sh --check-perf; then
    echo "ci.sh: FAIL — perf gate did not catch the injected flash-layer slowdown" >&2
    exit 1
  fi
  echo "ci.sh: OK — injected slowdown correctly failed the perf gate"
fi

if [[ "$run_asan" == 1 ]]; then
  echo "=== sanitizers: ASan + UBSan build + ctest ==="
  san_flags="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$san_flags" \
    -DCMAKE_EXE_LINKER_FLAGS="$san_flags"
  cmake --build build-asan -j "$jobs"
  (cd build-asan && ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --output-on-failure -j "$jobs")
fi

if [[ "$run_tsan" == 1 ]]; then
  echo "=== sanitizers: TSan build + ctest ==="
  tsan_flags="-fsanitize=thread -fno-omit-frame-pointer"
  cmake -B build-tsan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$tsan_flags" \
    -DCMAKE_EXE_LINKER_FLAGS="$tsan_flags"
  cmake --build build-tsan -j "$jobs"
  (cd build-tsan && TSAN_OPTIONS=halt_on_error=1 ctest --output-on-failure -j "$jobs")
fi

echo "ci.sh: all requested checks passed"
