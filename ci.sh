#!/usr/bin/env bash
# CI entry point: tier-1 verify plus a sanitizer pass.
#
#   ./ci.sh            # tier-1 (default build + full test suite), then ASan/UBSan tests
#   ./ci.sh --tier1    # tier-1 only
#   ./ci.sh --asan     # sanitizer pass only
#
# The sanitizer pass builds the whole tree (tests and benches) into build-asan/ with
# -fsanitize=address,undefined and runs the test suite under it; any leak, UB, or
# out-of-bounds access fails the script.

set -euo pipefail
cd "$(dirname "$0")"

run_tier1=1
run_asan=1
case "${1:-}" in
  --tier1) run_asan=0 ;;
  --asan) run_tier1=0 ;;
  "") ;;
  *)
    echo "usage: $0 [--tier1|--asan]" >&2
    exit 2
    ;;
esac

jobs=$(nproc 2>/dev/null || echo 4)

if [[ "$run_tier1" == 1 ]]; then
  echo "=== tier-1: configure + build + ctest ==="
  cmake -B build -S .
  cmake --build build -j "$jobs"
  (cd build && ctest --output-on-failure -j "$jobs")
fi

if [[ "$run_asan" == 1 ]]; then
  echo "=== sanitizers: ASan + UBSan build + ctest ==="
  san_flags="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  cmake -B build-asan -S . \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$san_flags" \
    -DCMAKE_EXE_LINKER_FLAGS="$san_flags"
  cmake --build build-asan -j "$jobs"
  (cd build-asan && ASAN_OPTIONS=detect_leaks=1 UBSAN_OPTIONS=print_stacktrace=1 \
    ctest --output-on-failure -j "$jobs")
fi

echo "ci.sh: all requested checks passed"
