#!/usr/bin/env python3
"""Project lint for the blockhead repo.

Enforces invariants that the compiler cannot (or that we want flagged before it does):

  wall-clock     src/ must stay deterministic: no std::chrono clocks, time(), gettimeofday,
                 clock_gettime, localtime/gmtime/strftime, or <chrono>/<ctime> includes.
                 Simulated time (SimTime) is the only clock. One sanctioned exception:
                 src/telemetry/selfprof/ (the host-side self-profiler) may use
                 std::chrono::steady_clock and #include <chrono> — it measures the simulator
                 itself and never feeds wall time back into simulation state. Every other
                 clock (system_clock, time(), ...) stays banned there too.
  cause-scope    Any src/ file (outside src/flash/, which implements the recording) that
                 calls FlashDevice::ProgramPage or ::EraseBlock must open a
                 WriteProvenance::CauseScope, so write-provenance attribution stays
                 conserved. Pass-through layers whose flash ops are host-commanded (the
                 attribution belongs to the command issuer's scope) may opt out with a
                 `lint: provenance-passthrough` comment explaining why.
  naked-address  No raw `uint32_t channel/plane/block/page` or `uint64_t lba/ppa`
                 function parameters outside src/core/strong_id.h: address-like arguments
                 must use the strong ID types so swapped arguments cannot compile. Raw
                 dense-table *indexes* are fine when named `*_index` / `*_offset`.
  fleet-layering src/fleet/ must talk to devices through the BlockDevice host interface and
                 the public maintenance pumps only — no calls to flash/ZNS internals
                 (ProgramPage, EraseBlock, ResetZone, Append, SimpleCopy, ...), no
                 `.flash()` accessor use, and no direct `#include "src/flash/...` so the
                 serving layer cannot grow a dependency on device internals.
  request-context A RequestContext is an identity threaded through one op's call chain, not
                 state: it must be passed as `const RequestContext&` (never by value or
                 mutable reference) and never stored in a member (`..._` fields, or any
                 declaration in a header) — the reqpath ledger copies the fields it needs
                 and is the single sanctioned owner (src/telemetry/reqpath/ is exempt).
  digest-order   Digest/audit code paths (src/telemetry/audit/, tools/digest_bisect*) must
                 not use std::unordered_* containers at all: their iteration order is
                 implementation-defined, and anything that touches digest folding,
                 checkpoint sealing, or dump rendering must stay byte-stable across
                 platforms and standard libraries. Use std::map/std::set, or a vector
                 sorted on an explicit key, instead.
  rng-discipline All randomness in src/ must flow through the run-seeded Rng / ZipfGenerator
                 in src/util/rng.h so runs stay reproducible from a single seed: no rand()
                 or srand(), no std::random_device (nondeterministic hardware entropy), and
                 no raw std::mt19937/std::mt19937_64 construction outside src/util/rng.{h,cc}.
  self-contained Every header in src/ must compile on its own (include-what-you-use probe:
                 a TU containing only `#include "<header>"`).
  format         No tabs, no trailing whitespace, lines <= 100 columns, final newline.
                 (Fallback formatter checks for machines without clang-format.)

Usage:
  tools/lint.py [--root DIR] [--skip-probe] [files...]

With no file arguments, lints the whole tree (src/, tests/, bench/, tools/, examples/).
Exits 1 if any finding is reported. Findings print as `path:line: [rule] message`.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys
import tempfile

FORMAT_DIRS = ("src", "tests", "bench", "tools", "examples")
CXX_EXTENSIONS = (".h", ".cc", ".cpp")
MAX_COLUMNS = 100

# Determinism: the simulation must produce byte-identical output for a given seed, so
# wall-clock access in src/ is banned outright.
WALL_CLOCK_PATTERNS = [
    (re.compile(r"std::chrono::(system|steady|high_resolution)_clock"), "std::chrono clock"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\b(localtime|gmtime|strftime|mktime)(_r)?\s*\("), "calendar-time call"),
    (re.compile(r"(^|[^\w.:])std::time\s*\("), "std::time()"),
    (re.compile(r"(^|[^\w.:])time\s*\(\s*(NULL|nullptr|0|&)"), "time()"),
    (re.compile(r"#include\s*<(chrono|ctime|time\.h|sys/time\.h)>"), "wall-clock header"),
]

PROVENANCE_CALL_RE = re.compile(r"[.\->]\s*(ProgramPage|EraseBlock)\s*\(")
PROVENANCE_OPTOUT = "lint: provenance-passthrough"

# Address-like parameter names that must be strong types in signatures. Raw dense-table
# indexes stay allowed under `*_index` / `*_offset` / `*_count` style names.
NAKED_PARAM_RE = re.compile(
    r"\b(?:std::)?uint32_t\s+(channel|plane|block|page|zone|shard)\s*[,)]"
    r"|\b(?:std::)?uint64_t\s+(lba|ppa)\s*[,)]"
)

# Fleet layering: device-internal entry points the serving layer must never call. The fleet
# owns device *objects* (it constructs them, attaches telemetry, and runs their public
# maintenance pumps), but all data-path access goes through the BlockDevice host interface.
# `Append` means zone append here; EventLog::Append (`events.Append`) is unrelated and allowed.
FLEET_DEVICE_INTERNAL_RE = re.compile(
    r"[.\->]\s*(ProgramPage|EraseBlock|CopyPage|ReadPage|SimpleCopy|ResetZone|OpenZone|"
    r"CloseZone|FinishZone|Append|WriteBlocksStream)\s*\("
    r"|[.\->]\s*flash\s*\(\s*\)"
)
FLEET_EVENTLOG_APPEND_RE = re.compile(r"events\s*([.]|->)\s*Append\s*\(")
FLEET_FLASH_INCLUDE_RE = re.compile(r'#include\s*"src/flash/')

# Request-context hygiene: the context rides the call chain for exactly one op. By-value
# parameters invite accidental retention and slicing; members outlive the op. The ledger
# (src/telemetry/reqpath/) holds the one sanctioned copy of the active request's context.
# Digest determinism: audit dumps are compared byte-for-byte across runs, machines, and
# standard libraries, and std::unordered_* iteration order is implementation-defined. The
# audit layer deliberately holds its registries in ordered containers; this rule keeps a
# refactor from quietly reintroducing an unordered one (even a non-iterated unordered member
# is one innocent range-for away from a platform-dependent dump).
DIGEST_ORDER_DIR = os.path.join("src", "telemetry", "audit") + os.sep
DIGEST_ORDER_TOOL_PREFIX = os.path.join("tools", "digest_bisect")
DIGEST_ORDER_RE = re.compile(r"\bstd::unordered_(map|set|multimap|multiset)\b")

# RNG discipline: the simulator's determinism contract is "one seed, one trace". rand()/srand()
# use hidden global state, std::random_device draws hardware entropy, and a std::mt19937
# constructed ad hoc invites seeding from wall clocks or addresses. src/util/rng.{h,cc} is the
# single sanctioned randomness implementation; everything else takes an Rng& (or a seed) from
# its caller.
RNG_ALLOWLIST_FILES = (os.path.join("src", "util", "rng.h"),
                       os.path.join("src", "util", "rng.cc"))
RNG_PATTERNS = [
    (re.compile(r"(^|[^\w:.])s?rand\s*\("), "rand()/srand() use hidden global state"),
    (re.compile(r"\bstd::random_device\b"),
     "std::random_device is nondeterministic hardware entropy"),
    (re.compile(r"\bstd::mt19937(_64)?\b"),
     "raw std::mt19937 seeding bypasses run-seed plumbing"),
]

REQUEST_CONTEXT_ALLOWLIST_DIR = os.path.join("src", "telemetry", "reqpath") + os.sep
REQUEST_CONTEXT_BYVALUE_RE = re.compile(r"\bRequestContext\s+\w+\s*[,)]")
REQUEST_CONTEXT_REF_RE = re.compile(r"\bRequestContext\s*&")
REQUEST_CONTEXT_HEADER_DECL_RE = re.compile(r"\bRequestContext\s+\w+\s*(;|=)")
REQUEST_CONTEXT_MEMBER_RE = re.compile(r"\bRequestContext\s+\w+_\s*(;|=|\{)")


def is_comment_or_string(line, pos):
    """Cheap check: is `pos` inside a // comment or a string literal on this line?"""
    comment = line.find("//")
    if 0 <= comment <= pos:
        return True
    return line.count('"', 0, pos) % 2 == 1


# The one place wall-clock access is legal: the self-profiler measures the simulator itself
# (host CPU cost per simulated op) and never feeds wall time back into simulation state.
# Only the monotonic steady_clock and the <chrono> header are allowed there; calendar clocks
# (system_clock, time(), localtime, ...) stay banned even in selfprof.
WALL_CLOCK_ALLOWLIST_DIR = os.path.join("src", "telemetry", "selfprof") + os.sep
WALL_CLOCK_ALLOWED_RE = re.compile(
    r"std::chrono::steady_clock|#include\s*<chrono>")


def check_wall_clock(path, lines):
    if not path.startswith("src" + os.sep):
        return
    allowlisted = path.startswith(WALL_CLOCK_ALLOWLIST_DIR)
    for i, line in enumerate(lines, 1):
        for pattern, label in WALL_CLOCK_PATTERNS:
            m = pattern.search(line)
            if m and not is_comment_or_string(line, m.start()):
                if allowlisted and WALL_CLOCK_ALLOWED_RE.match(line, m.start()):
                    continue
                yield (path, i, "wall-clock", f"{label} breaks simulation determinism; "
                       "use SimTime")


def check_cause_scope(path, lines):
    if not path.startswith("src" + os.sep) or path.startswith(os.path.join("src", "flash")):
        return
    if not path.endswith(".cc"):
        return
    text = "\n".join(lines)
    if PROVENANCE_OPTOUT in text:
        return
    if "CauseScope" in text:
        return
    for i, line in enumerate(lines, 1):
        m = PROVENANCE_CALL_RE.search(line)
        if m and not is_comment_or_string(line, m.start()):
            yield (path, i, "cause-scope",
                   f"{m.group(1)}() caller must open a WriteProvenance::CauseScope (or "
                   f"document pass-through attribution with `{PROVENANCE_OPTOUT}`)")


def check_naked_address_params(path, lines):
    if not path.startswith("src" + os.sep):
        return
    if path == os.path.join("src", "core", "strong_id.h"):
        return
    for i, line in enumerate(lines, 1):
        for m in NAKED_PARAM_RE.finditer(line):
            if is_comment_or_string(line, m.start()):
                continue
            name = m.group(1) or m.group(2)
            strong = {"channel": "ChannelId", "plane": "PlaneId", "block": "BlockId",
                      "page": "PageId", "zone": "ZoneId", "shard": "ShardId",
                      "lba": "Lba", "ppa": "Ppa"}[name]
            yield (path, i, "naked-address",
                   f"raw integer parameter `{name}` — use {strong} (src/core/strong_id.h)")


def check_fleet_layering(path, lines):
    if not path.startswith(os.path.join("src", "fleet")):
        return
    for i, line in enumerate(lines, 1):
        inc = FLEET_FLASH_INCLUDE_RE.search(line)
        if inc and not is_comment_or_string(line, inc.start()):
            yield (path, i, "fleet-layering",
                   "src/fleet must not include flash internals directly; go through the "
                   "BlockDevice host interface headers")
        for m in FLEET_DEVICE_INTERNAL_RE.finditer(line):
            if is_comment_or_string(line, m.start()):
                continue
            if m.group(1) == "Append" and FLEET_EVENTLOG_APPEND_RE.search(line):
                continue  # EventLog::Append is telemetry, not a zone append.
            what = m.group(1) or "flash()"
            yield (path, i, "fleet-layering",
                   f"src/fleet calls device internal `{what}` — the fleet must use the "
                   "BlockDevice host interface (ReadBlocks/WriteBlocks/TrimBlocks) and "
                   "public maintenance pumps only")


def check_digest_order(path, lines):
    if not (path.startswith(DIGEST_ORDER_DIR)
            or path.startswith(DIGEST_ORDER_TOOL_PREFIX)):
        return
    for i, line in enumerate(lines, 1):
        m = DIGEST_ORDER_RE.search(line)
        if m and not is_comment_or_string(line, m.start()):
            yield (path, i, "digest-order",
                   f"std::unordered_{m.group(1)} in a digest/audit code path — iteration "
                   "order is implementation-defined and would break byte-stable digest "
                   "dumps; use std::map/std::set or sort on an explicit key")


def check_rng_discipline(path, lines):
    if not path.startswith("src" + os.sep) or path in RNG_ALLOWLIST_FILES:
        return
    for i, line in enumerate(lines, 1):
        for pattern, why in RNG_PATTERNS:
            m = pattern.search(line)
            if m and not is_comment_or_string(line, m.start()):
                yield (path, i, "rng-discipline",
                       f"{why}; use the run-seeded Rng/ZipfGenerator (src/util/rng.h)")


def check_request_context(path, lines):
    if not path.startswith("src" + os.sep):
        return
    if path.startswith(REQUEST_CONTEXT_ALLOWLIST_DIR):
        return  # The ledger itself owns the active request's copy.
    header = path.endswith(".h")
    for i, line in enumerate(lines, 1):
        m = REQUEST_CONTEXT_BYVALUE_RE.search(line)
        if m and not is_comment_or_string(line, m.start()):
            yield (path, i, "request-context",
                   "RequestContext parameter must be `const RequestContext&` — by-value "
                   "copies invite retention past the op")
        for m in REQUEST_CONTEXT_REF_RE.finditer(line):
            if is_comment_or_string(line, m.start()):
                continue
            if not line[:m.start()].rstrip().endswith("const"):
                yield (path, i, "request-context",
                       "RequestContext must be passed by const reference, not mutable "
                       "reference")
        member = (REQUEST_CONTEXT_HEADER_DECL_RE.search(line) if header
                  else REQUEST_CONTEXT_MEMBER_RE.search(line))
        if member and not is_comment_or_string(line, member.start()):
            yield (path, i, "request-context",
                   "RequestContext must not be stored past op completion; copy the needed "
                   "fields instead (only src/telemetry/reqpath/ may hold one)")


def check_format(path, lines, raw_text):
    for i, line in enumerate(lines, 1):
        if "\t" in line:
            yield (path, i, "format", "tab character (use spaces)")
        if line != line.rstrip():
            yield (path, i, "format", "trailing whitespace")
        if len(line) > MAX_COLUMNS:
            yield (path, i, "format", f"line is {len(line)} columns (max {MAX_COLUMNS})")
    if raw_text and not raw_text.endswith("\n"):
        yield (path, len(lines), "format", "missing final newline")


def check_headers_self_contained(root, headers, compiler):
    """Probe-compiles each header alone; a header that needs prior includes fails."""
    findings = []
    with tempfile.TemporaryDirectory() as tmp:
        for header in headers:
            probe = os.path.join(tmp, "probe.cc")
            with open(probe, "w") as f:
                f.write(f'#include "{header}"\n')
            result = subprocess.run(
                [compiler, "-std=c++20", "-fsyntax-only", "-I", root, probe],
                capture_output=True, text=True)
            if result.returncode != 0:
                first = result.stderr.strip().splitlines()
                detail = first[0] if first else "compile failed"
                findings.append((header, 1, "self-contained",
                                 f"header does not compile alone: {detail}"))
    return findings


def iter_files(root, explicit):
    if explicit:
        for path in explicit:
            yield os.path.relpath(path, root) if os.path.isabs(path) else path
        return
    for base in FORMAT_DIRS:
        base_dir = os.path.join(root, base)
        if not os.path.isdir(base_dir):
            continue
        for dirpath, _, names in os.walk(base_dir):
            for name in sorted(names):
                if name.endswith(CXX_EXTENSIONS) or name.endswith((".py", ".sh")):
                    yield os.path.relpath(os.path.join(dirpath, name), root)


def lint_file(root, rel_path):
    full = os.path.join(root, rel_path)
    try:
        with open(full, encoding="utf-8") as f:
            raw_text = f.read()
    except (OSError, UnicodeDecodeError) as err:
        return [(rel_path, 1, "io", str(err))]
    lines = raw_text.splitlines()
    findings = []
    findings.extend(check_format(rel_path, lines, raw_text))
    if rel_path.endswith(CXX_EXTENSIONS):
        findings.extend(check_wall_clock(rel_path, lines))
        findings.extend(check_cause_scope(rel_path, lines))
        findings.extend(check_naked_address_params(rel_path, lines))
        findings.extend(check_fleet_layering(rel_path, lines))
        findings.extend(check_digest_order(rel_path, lines))
        findings.extend(check_rng_discipline(rel_path, lines))
        findings.extend(check_request_context(rel_path, lines))
    return findings


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), help="repository root (default: parent of tools/)")
    parser.add_argument("--skip-probe", action="store_true",
                        help="skip the header self-containment probe compile")
    parser.add_argument("--compiler", default=os.environ.get("CXX", "c++"),
                        help="compiler for the header probe (default: $CXX or c++)")
    parser.add_argument("files", nargs="*", help="lint only these files")
    args = parser.parse_args(argv)

    findings = []
    for rel_path in iter_files(args.root, args.files):
        findings.extend(lint_file(args.root, rel_path))

    if not args.skip_probe and not args.files:
        if shutil.which(args.compiler):
            headers = [p for p in iter_files(args.root, None)
                       if p.startswith("src" + os.sep) and p.endswith(".h")]
            findings.extend(check_headers_self_contained(args.root, headers, args.compiler))
        else:
            print(f"lint.py: note: compiler `{args.compiler}` not found; "
                  "skipping header probe", file=sys.stderr)

    findings.sort()
    for path, line, rule, message in findings:
        print(f"{path}:{line}: [{rule}] {message}")
    if findings:
        print(f"lint.py: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
