#!/usr/bin/env bash
# Thin wrapper around the digest_bisect binary (tools/digest_bisect.cc).
#
# Finds the built binary in the conventional build tree (or $BLOCKHEAD_BUILD_DIR),
# building it on demand if the build tree is already configured, then forwards all
# arguments. Usage matches the binary:
#
#   tools/digest_bisect.sh <baseline.audit.jsonl> <candidate.audit.jsonl> \
#       [--events <events.jsonl>] [--window <epochs>]
#
# Exit codes: 0 identical, 1 divergence found (printed), 2 usage/parse error.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${BLOCKHEAD_BUILD_DIR:-$repo_root/build}"
bin="$build_dir/tools/digest_bisect"

if [[ ! -x "$bin" ]]; then
  if [[ -f "$build_dir/CMakeCache.txt" ]]; then
    cmake --build "$build_dir" --target digest_bisect -j >&2
  else
    echo "digest_bisect.sh: $bin not found and $build_dir is not configured;" >&2
    echo "  run: cmake -B build -S $repo_root && cmake --build build --target digest_bisect" >&2
    exit 2
  fi
fi

exec "$bin" "$@"
