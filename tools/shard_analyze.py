#!/usr/bin/env python3
"""Shard-safety static analyzer for the blockhead repo (ci.sh --analyze).

The ROADMAP's parallel simulation core will shard the simulator by channel/plane. Before any
thread exists, every piece of shared mutable state must be inventoried and assigned a shard
domain via the tags in src/core/shard_safety.h:

  BLOCKHEAD_SHARD_LOCAL(domain)   owned by one shard of `domain` (channel/plane/zone, or
                                  `owner` for value types embedded in a larger object)
  BLOCKHEAD_SHARD_SHARED          crosses shards; needs a merge rule or lock before sharding
  BLOCKHEAD_SIM_GLOBAL            simulation-global context (telemetry, ledgers, audit)
  BLOCKHEAD_GUARDED_BY(mu)        clang thread-safety guarded member (counts as annotated)

This tool is a cross-TU pass over src/ built on a real tokenizer and a per-file symbol table
(stdlib only, like tools/lint.py). It:

  * inventories every mutable static / namespace-scope global / function-local static;
  * inventories every annotated member and every *unannotated* mutable member of a `class`
    whose defining header is reachable (via the src/ include graph) from two or more
    subsystem directories — `struct` types are passive value aggregates by project
    convention, so their sharing is declared at the embedding member instead;
  * emits a deterministic, machine-readable report (shard_safety_report.json): for each
    inventoried symbol, the subsystem access matrix (symbol x subsystem x read/write), which
    is the sharding plan's ground truth;
  * fails (exit 1) on any unannotated shared mutable state not in the committed allowlist
    (tools/shard_safety_allowlist.txt), and on any *stale* allowlist entry — the allowlist
    may only shrink, never grow.

Heuristics and their direction of error: member-name occurrences are attributed to every
symbol of that name whose defining header the accessing file includes (collisions
over-approximate the matrix — the safe direction for a sharding plan), and method calls not
in the known-mutating list count as reads (writes are under-approximated only through
accessors, never through direct assignment).

Negative test: BLOCKHEAD_ANALYZE_SEED_VIOLATION=1 (or --seed-violation) activates
`#ifdef BLOCKHEAD_ANALYZE_SEED_VIOLATION` blocks in src/, each hiding a deliberately
unannotated mutable static that must be caught and named.

Usage:
  tools/shard_analyze.py [--root DIR] [--output FILE] [--allowlist FILE]
                         [--write-allowlist] [--seed-violation] [--quiet]
"""

import argparse
import json
import os
import re
import sys

SEED_MACRO = "BLOCKHEAD_ANALYZE_SEED_VIOLATION"
DOMAIN_TAGS = ("BLOCKHEAD_SHARD_LOCAL", "BLOCKHEAD_SHARD_SHARED", "BLOCKHEAD_SIM_GLOBAL")
GUARD_TAGS = ("BLOCKHEAD_GUARDED_BY", "BLOCKHEAD_PT_GUARDED_BY")
ANNOTATION_TAGS = DOMAIN_TAGS + GUARD_TAGS

# Statement-leading keywords that can never start a data-member declaration.
SKIP_START = {
    "using", "typedef", "friend", "static_assert", "template", "enum", "operator",
    "public", "private", "protected", "class", "struct", "union", "explicit", "virtual",
    "extern", "return", "if", "for", "while", "switch", "case", "default", "do", "goto",
    "namespace", "~",
}
CXX_KEYWORDS = {
    "const", "constexpr", "mutable", "static", "inline", "volatile", "unsigned", "signed",
    "int", "long", "short", "char", "bool", "float", "double", "void", "auto", "nullptr",
    "true", "false", "sizeof", "new", "delete", "this", "noexcept", "override", "final",
    "default", "delete",
}
ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}
INCDEC_OPS = {"++", "--"}
# Container / project mutators: a call `sym.M(...)` with M here counts as a write to sym.
MUTATING_METHODS = {
    "push_back", "pop_back", "emplace_back", "push_front", "pop_front", "emplace",
    "insert", "erase", "clear", "resize", "assign", "reset", "swap", "Add", "Set",
    "Record", "Append", "Merge", "Acquire", "Release", "Fold", "Unfold", "Enable",
}

TOKEN_RE = re.compile(
    r"::|->\*?|\+\+|--|<<=|>>=|<=|>=|==|!=|\+=|-=|\*=|/=|%=|&=|\|=|\^=|&&|\|\||"
    r"[A-Za-z_][A-Za-z0-9_]*|0[xX][0-9a-fA-F']+|[0-9][0-9a-fA-F'.eEpPlLuUxX+-]*|\S")

STRING_OR_COMMENT_RE = re.compile(
    r'"(?:\\.|[^"\\])*"'      # string literal
    r"|'(?:\\.|[^'\\])*'"     # char literal
    r"|//[^\n]*",             # line comment
    re.DOTALL)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')
PP_COND_RE = re.compile(r"^\s*#\s*(ifdef|ifndef|if|elif|else|endif)\b(.*)$")


class Token:
    __slots__ = ("value", "line")

    def __init__(self, value, line):
        self.value = value
        self.line = line


def tokenize(text, seed_violation=False):
    """Tokens + direct includes for one file, with comments/strings/chars stripped.

    Preprocessor lines are consumed (includes recorded). `#ifdef BLOCKHEAD_ANALYZE_SEED_
    VIOLATION` blocks are skipped unless seed_violation is set; every other conditional's
    body is scanned unconditionally (include guards must pass through).
    """
    # Block comments first (they may span lines); keep newlines so line numbers survive.
    def blank_keep_newlines(m):
        return "".join("\n" if c == "\n" else " " for c in m.group(0))

    text = re.sub(r"/\*.*?\*/", blank_keep_newlines, text, flags=re.DOTALL)

    tokens = []
    includes = []
    # Depth counter of enclosing seed-violation-gated blocks we are skipping, plus the
    # nesting depth of *all* conditionals inside a skipped region (to find its #endif).
    pp_stack = []  # One entry per open conditional: True if it is a skipped seed block.
    lines = text.split("\n")
    i = 0
    while i < len(lines):
        line = lines[i]
        lineno = i + 1
        stripped = line.lstrip()
        if stripped.startswith("#"):
            # Join continuation lines.
            while line.rstrip().endswith("\\") and i + 1 < len(lines):
                i += 1
                line = line.rstrip()[:-1] + lines[i]
            m = PP_COND_RE.match(line)
            if m:
                kind = m.group(1)
                cond = m.group(2)
                if kind in ("ifdef", "ifndef", "if"):
                    skip = (kind == "ifdef" and SEED_MACRO in cond and not seed_violation)
                    pp_stack.append(skip)
                elif kind == "endif":
                    if pp_stack:
                        pp_stack.pop()
                # else / elif: keep current skip state (seed blocks carry no #else).
            else:
                inc = INCLUDE_RE.match(line)
                if inc and not any(pp_stack):
                    includes.append(inc.group(1))
            i += 1
            continue
        if any(pp_stack):
            i += 1
            continue
        line = STRING_OR_COMMENT_RE.sub(" ", line)
        for m in TOKEN_RE.finditer(line):
            tokens.append(Token(m.group(0), lineno))
        i += 1
    return tokens, includes


class Symbol:
    """One inventoried piece of mutable state."""

    def __init__(self, name, qualified, kind, file, line, subsystem, annotation=None,
                 shard_key=None, type_keyword=None, cross=False):
        self.name = name                  # Bare identifier (matrix scan key).
        self.qualified = qualified        # "Class::member" or "path::global".
        self.kind = kind                  # member | global | static-local | class-static
        self.file = file
        self.line = line
        self.subsystem = subsystem
        self.annotation = annotation      # shard_local | shard_shared | sim_global |
        #                                   guarded_by | None
        self.shard_key = shard_key        # SHARD_LOCAL domain / GUARDED_BY capability.
        self.type_keyword = type_keyword  # class | struct (members only).
        self.cross = cross                # Defining header reachable from >= 2 subsystems.
        self.access = {}                  # subsystem -> "r" | "w" | "rw"

    def note_access(self, subsystem, is_write):
        cur = self.access.get(subsystem, "")
        add = "w" if is_write else "r"
        if add not in cur:
            self.access[subsystem] = "".join(sorted(cur + add, reverse=True))


def subsystem_of(rel_path):
    parts = rel_path.split(os.sep)
    return parts[1] if len(parts) > 1 and parts[0] == "src" else parts[0]


def extract_annotation(tokens):
    """Removes annotation macro tokens from a statement; returns (rest, kind, key)."""
    rest = []
    kind = None
    key = None
    i = 0
    while i < len(tokens):
        v = tokens[i].value
        if v in ANNOTATION_TAGS:
            if v == "BLOCKHEAD_SHARD_SHARED":
                kind = "shard_shared"
            elif v == "BLOCKHEAD_SIM_GLOBAL":
                kind = "sim_global"
            else:
                kind = ("shard_local" if v == "BLOCKHEAD_SHARD_LOCAL" else "guarded_by")
                # Consume "( args )" capturing the argument text.
                if i + 1 < len(tokens) and tokens[i + 1].value == "(":
                    depth = 0
                    arg = []
                    i += 1
                    while i < len(tokens):
                        t = tokens[i].value
                        if t == "(":
                            depth += 1
                            if depth == 1:
                                i += 1
                                continue
                        elif t == ")":
                            depth -= 1
                            if depth == 0:
                                break
                        arg.append(t)
                        i += 1
                    key = "".join(arg)
            i += 1
            continue
        rest.append(tokens[i])
        i += 1
    return rest, kind, key


def parse_declaration(stmt):
    """Classifies one class-body or namespace-scope statement.

    Returns (name, line, is_static, is_mutable_state) or None for non-data statements.
    """
    stmt = [t for t in stmt if t.value not in ("inline", "mutable", "volatile")]
    if not stmt or stmt[0].value in SKIP_START:
        return None
    values = [t.value for t in stmt]
    if "constexpr" in values:
        return None
    is_static = "static" in values
    stmt = [t for t in stmt if t.value != "static"]
    values = [t.value for t in stmt]
    if not stmt:
        return None
    # Reference members alias state owned elsewhere; `const` without indirection is
    # immutable. (`const char* p_` keeps a mutable pointer and stays inventoried.)
    if "&" in values:
        return None
    if "const" in values and "*" not in values:
        return None
    # Walk to the declarator terminator at top nesting level. A top-level "(" means a
    # function (members use `= init` or brace-init, never parenthesized init).
    angle = 0
    name = None
    line = stmt[0].line
    for i, t in enumerate(stmt):
        v = t.value
        if v == "<":
            angle += 1
        elif v == ">":
            angle = max(0, angle - 1)
        elif v == ">>":
            angle = max(0, angle - 2)
        elif angle == 0:
            if v == "(":
                return None
            if v in ("=", "{", "[", ";"):
                break
            if re.match(r"[A-Za-z_]\w*$", v) and v not in CXX_KEYWORDS:
                name = t.value
                line = t.line
    if name is None:
        return None
    return name, line, is_static, True


class FileInfo:
    def __init__(self, rel_path):
        self.rel_path = rel_path
        self.subsystem = subsystem_of(rel_path)
        self.tokens = []
        self.includes = []
        self.members = []   # (class_name, type_keyword, Symbol-less tuples)
        self.globals = []


def parse_file(info):
    """Builds the per-file symbol table: classes, members, globals, local statics."""
    tokens = info.tokens
    n = len(tokens)
    results_members = []   # (class_name, type_keyword, name, line, annotation, key, static)
    results_globals = []   # (name, line, kind, annotation, key)

    def scan_body_for_statics(lo, hi):
        j = lo
        while j < hi:
            if tokens[j].value == "static":
                stmt = []
                k = j + 1
                while k < hi and tokens[k].value != ";":
                    stmt.append(tokens[k])
                    k += 1
                values = [t.value for t in stmt]
                if ("const" not in values and "constexpr" not in values
                        and "(" not in values):
                    name = None
                    for t in stmt:
                        if re.match(r"[A-Za-z_]\w*$", t.value) \
                                and t.value not in CXX_KEYWORDS:
                            name = t
                    if name is not None:
                        results_globals.append(
                            (name.value, name.line, "static-local", None, None))
                j = k
            j += 1

    def skip_balanced(i, open_ch, close_ch):
        depth = 0
        while i < n:
            v = tokens[i].value
            if v == open_ch:
                depth += 1
            elif v == close_ch:
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return n

    def parse_scope(i, end, class_name, type_keyword):
        """Parses statements in [i, end): class body when class_name else namespace."""
        while i < end:
            v = tokens[i].value
            if v == ";":
                i += 1
                continue
            if v in ("public", "private", "protected") and i + 1 < end \
                    and tokens[i + 1].value == ":":
                i += 2
                continue
            if v == "namespace":
                j = i + 1
                while j < end and tokens[j].value not in ("{", ";"):
                    j += 1
                if j < end and tokens[j].value == "{":
                    close = skip_balanced(j, "{", "}")
                    parse_scope(j + 1, close - 1, None, None)
                    i = close
                else:
                    i = j + 1
                continue
            if v in ("class", "struct", "union"):
                # Type definition (or forward declaration) at this or nested scope.
                j = i + 1
                name = None
                while j < end and tokens[j].value not in ("{", ";"):
                    if name is None and re.match(r"[A-Za-z_]\w*$", tokens[j].value) \
                            and tokens[j].value not in CXX_KEYWORDS \
                            and tokens[j].value not in ANNOTATION_TAGS \
                            and tokens[j].value != "BLOCKHEAD_CAPABILITY":
                        name = tokens[j].value
                    j += 1
                if j < end and tokens[j].value == "{":
                    close = skip_balanced(j, "{", "}")
                    parse_scope(j + 1, close - 1, name or "<anon>", v)
                    i = close
                else:
                    i = j + 1
                continue
            if v == "enum":
                j = i + 1
                while j < end and tokens[j].value not in ("{", ";"):
                    j += 1
                i = skip_balanced(j, "{", "}") if j < end and tokens[j].value == "{" \
                    else j + 1
                continue
            if v == "template":
                # Skip the parameter list; the declaration that follows is handled next.
                j = i + 1
                if j < end and tokens[j].value == "<":
                    depth = 0
                    while j < end:
                        if tokens[j].value == "<":
                            depth += 1
                        elif tokens[j].value == ">":
                            depth -= 1
                            if depth == 0:
                                break
                        elif tokens[j].value == ">>":
                            depth -= 2
                            if depth <= 0:
                                break
                        j += 1
                    i = j + 1
                else:
                    i = j
                continue
            # Generic statement: collect to the terminating ';' at top level, treating a
            # '{' that is not an initializer as a body to skip (function/ctor definition).
            stmt = []
            j = i
            saw_eq = False
            body_lo = body_hi = None
            depth_paren = 0
            while j < end:
                t = tokens[j].value
                if t == "=" and depth_paren == 0:
                    saw_eq = True
                if t == "(":
                    depth_paren += 1
                elif t == ")":
                    depth_paren = max(0, depth_paren - 1)
                elif t == "{" and depth_paren == 0:
                    close = skip_balanced(j, "{", "}")
                    if not saw_eq and not (stmt and stmt[-1].value == "="):
                        body_lo, body_hi = j + 1, close - 1
                        j = close
                        # A definition body may be followed by ';' (member fns aren't).
                        if j < end and tokens[j].value == ";":
                            j += 1
                        break
                    j = close
                    continue
                elif t == ";" and depth_paren == 0:
                    j += 1
                    break
                stmt.append(tokens[j])
                j += 1
            if body_lo is not None:
                scan_body_for_statics(body_lo, body_hi)
                # Brace-init members (`Tracer tracer{&registry};`) carry no '(' and no
                # body keyword; real bodies follow a ')' — distinguish by the last stmt
                # token: a declarator name means brace-init, ')' / noexcept etc. a body.
                if stmt and re.match(r"[A-Za-z_]\w*$", stmt[-1].value) \
                        and stmt[-1].value not in CXX_KEYWORDS \
                        and "(" not in [t.value for t in stmt]:
                    pass  # Fall through to declaration parsing below.
                else:
                    i = j
                    continue
            rest, ann, key = extract_annotation(stmt)
            parsed = parse_declaration(rest)
            i = j
            if parsed is None:
                if ann is not None and rest:
                    # Annotated but unparsable: surface it rather than dropping silently.
                    results_globals.append((rest[-1].value, rest[-1].line,
                                            "unparsed", ann, key))
                continue
            name, line, is_static, _ = parsed
            if class_name is not None and not is_static:
                results_members.append(
                    (class_name, type_keyword, name, line, ann, key))
            else:
                kind = "class-static" if class_name is not None else "global"
                results_globals.append((name, line, kind, ann, key))

    parse_scope(0, n, None, None)
    info.members = results_members
    info.globals = results_globals


def load_tree(root, seed_violation):
    infos = {}
    src_root = os.path.join(root, "src")
    for dirpath, _, names in os.walk(src_root):
        for name in sorted(names):
            if not name.endswith((".h", ".cc")):
                continue
            rel = os.path.relpath(os.path.join(dirpath, name), root)
            with open(os.path.join(root, rel), encoding="utf-8") as f:
                text = f.read()
            info = FileInfo(rel)
            info.tokens, info.includes = tokenize(text, seed_violation)
            parse_file(info)
            infos[rel] = info
    return infos


def include_closure(infos):
    """rel_path -> set of src/ files transitively included (self included)."""
    direct = {rel: {inc for inc in info.includes if inc in infos}
              for rel, info in infos.items()}
    closure = {}

    def visit(rel, seen):
        if rel in closure:
            return closure[rel]
        seen.add(rel)
        result = {rel}
        for inc in direct[rel]:
            if inc in seen and inc not in closure:
                continue  # Cycle guard (include guards make real cycles harmless).
            result |= visit(inc, seen)
        closure[rel] = result
        return result

    for rel in sorted(direct):
        visit(rel, set())
    return closure


def reachable_subsystems(infos, closure):
    """header rel_path -> sorted subsystems whose files (transitively) include it."""
    reach = {rel: set() for rel in infos}
    for rel, info in infos.items():
        for included in closure[rel]:
            reach[included].add(info.subsystem)
    return {rel: sorted(subs) for rel, subs in reach.items()}


def build_symbols(infos, reach):
    symbols = []
    for rel in sorted(infos):
        info = infos[rel]
        cross = len(reach[rel]) >= 2
        for class_name, type_keyword, name, line, ann, key in info.members:
            symbols.append(Symbol(
                name, f"{class_name}::{name}", "member", rel, line, info.subsystem,
                annotation=ann, shard_key=key, type_keyword=type_keyword, cross=cross))
        for name, line, kind, ann, key in info.globals:
            if kind == "unparsed":
                continue
            symbols.append(Symbol(
                name, f"{rel.replace(os.sep, '/')}::{name}", kind, rel, line,
                info.subsystem, annotation=ann, shard_key=key, cross=cross))
    return symbols


def compute_access(symbols, infos, closure):
    by_name = {}
    for sym in symbols:
        by_name.setdefault(sym.name, []).append(sym)
    decl_sites = {(s.file, s.line, s.name) for s in symbols}
    for rel in sorted(infos):
        info = infos[rel]
        visible = closure[rel]
        tokens = info.tokens
        n = len(tokens)
        for i, tok in enumerate(tokens):
            candidates = by_name.get(tok.value)
            if not candidates:
                continue
            if (rel, tok.line, tok.value) in decl_sites:
                continue
            nxt = tokens[i + 1].value if i + 1 < n else ""
            prev = tokens[i - 1].value if i > 0 else ""
            is_write = nxt in ASSIGN_OPS or nxt in INCDEC_OPS or prev in INCDEC_OPS
            if not is_write and nxt == "[":
                depth = 0
                j = i + 1
                while j < n:
                    if tokens[j].value == "[":
                        depth += 1
                    elif tokens[j].value == "]":
                        depth -= 1
                        if depth == 0:
                            break
                    j += 1
                after = tokens[j + 1].value if j + 1 < n else ""
                is_write = after in ASSIGN_OPS or after in INCDEC_OPS
            if not is_write and nxt in (".", "->"):
                method = tokens[i + 2].value if i + 2 < n else ""
                call = tokens[i + 3].value if i + 3 < n else ""
                is_write = method in MUTATING_METHODS and call == "("
            for sym in candidates:
                if sym.file in visible or sym.file == rel:
                    sym.note_access(info.subsystem, is_write)


def load_allowlist(path):
    entries = {}
    if not os.path.exists(path):
        return entries
    with open(path, encoding="utf-8") as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split()
            if len(parts) != 2:
                raise SystemExit(f"{path}:{lineno}: malformed allowlist line: {line!r}")
            entries[(parts[0], parts[1])] = lineno
    return entries


def collect_findings(symbols):
    """Finding tuples (finding_class, symbol) for unannotated shared mutable state."""
    findings = []
    for sym in symbols:
        if sym.annotation is not None:
            continue
        if sym.kind in ("global", "static-local", "class-static"):
            findings.append(("mutable-static", sym))
        elif sym.kind == "member" and sym.cross and sym.type_keyword == "class":
            findings.append(("cross-subsystem-member", sym))
    return findings


def render_report(symbols, findings, allowlisted, stale, files_scanned):
    def sym_json(sym, finding_class=None):
        out = {
            "symbol": sym.qualified,
            "kind": sym.kind,
            "file": sym.file.replace(os.sep, "/"),
            "line": sym.line,
            "subsystem": sym.subsystem,
            "cross_subsystem": sym.cross,
            "access": {k: v for k, v in sorted(sym.access.items())},
        }
        if sym.annotation is not None:
            out["domain"] = sym.annotation
            if sym.shard_key:
                out["shard_key"] = sym.shard_key
        if finding_class is not None:
            out["finding_class"] = finding_class
        return out

    annotated = [s for s in symbols if s.annotation is not None]
    annotated.sort(key=lambda s: (s.qualified, s.file, s.line))
    report = {
        "schema": "blockhead-shard-safety-v1",
        "files_scanned": files_scanned,
        "summary": {
            "annotated": len(annotated),
            "shard_local": sum(1 for s in annotated if s.annotation == "shard_local"),
            "shard_shared": sum(1 for s in annotated if s.annotation == "shard_shared"),
            "sim_global": sum(1 for s in annotated if s.annotation == "sim_global"),
            "guarded_by": sum(1 for s in annotated if s.annotation == "guarded_by"),
            "allowlisted": len(allowlisted),
            "findings": len(findings),
            "stale_allowlist_entries": len(stale),
        },
        "symbols": [sym_json(s) for s in annotated],
        "allowlisted": [sym_json(s, c) for c, s in
                        sorted(allowlisted, key=lambda e: (e[1].qualified, e[0]))],
        "findings": [sym_json(s, c) for c, s in
                     sorted(findings, key=lambda e: (e[1].qualified, e[0]))],
        "stale_allowlist_entries": sorted(
            [{"finding_class": c, "symbol": q} for c, q in stale],
            key=lambda e: (e["symbol"], e["finding_class"])),
    }
    return json.dumps(report, indent=2, sort_keys=True) + "\n"


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    default_root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    parser.add_argument("--root", default=default_root)
    parser.add_argument("--output", default=None,
                        help="report path (default: <root>/shard_safety_report.json)")
    parser.add_argument("--allowlist", default=None,
                        help="allowlist path (default: <root>/tools/"
                             "shard_safety_allowlist.txt)")
    parser.add_argument("--write-allowlist", action="store_true",
                        help="rewrite the allowlist from current findings (bootstrap / "
                             "shrink only; review the diff before committing)")
    parser.add_argument("--seed-violation", action="store_true",
                        help=f"activate #ifdef {SEED_MACRO} blocks (negative test)")
    parser.add_argument("--quiet", action="store_true")
    args = parser.parse_args(argv)

    seed = args.seed_violation or bool(os.environ.get(SEED_MACRO))
    output = args.output or os.path.join(args.root, "shard_safety_report.json")
    allowlist_path = args.allowlist or os.path.join(
        args.root, "tools", "shard_safety_allowlist.txt")

    infos = load_tree(args.root, seed)
    closure = include_closure(infos)
    reach = reachable_subsystems(infos, closure)
    symbols = build_symbols(infos, reach)
    compute_access(symbols, infos, closure)

    raw_findings = collect_findings(symbols)
    allow = load_allowlist(allowlist_path)

    findings = []
    allowlisted = []
    hit_keys = set()
    for finding_class, sym in raw_findings:
        keyed = (finding_class, sym.qualified)
        if keyed in allow:
            allowlisted.append((finding_class, sym))
            hit_keys.add(keyed)
        else:
            findings.append((finding_class, sym))
    stale = sorted(set(allow) - hit_keys)

    if args.write_allowlist:
        lines = [
            "# Shard-safety allowlist: unannotated shared mutable state grandfathered in",
            "# before the sharded core lands. The analyzer (tools/shard_analyze.py) fails",
            "# on entries here that are no longer flagged — this file may only SHRINK:",
            "# resolve an entry by annotating the symbol (src/core/shard_safety.h tags),",
            "# then delete its line. Never add entries for new code.",
            "#",
            "# <finding-class> <symbol>",
        ]
        for finding_class, sym in sorted(
                raw_findings, key=lambda e: (e[0], e[1].qualified)):
            lines.append(f"{finding_class} {sym.qualified}")
        with open(allowlist_path, "w", encoding="utf-8") as f:
            f.write("\n".join(lines) + "\n")
        print(f"shard_analyze.py: wrote {len(raw_findings)} entries to {allowlist_path}")
        return 0

    report_text = render_report(symbols, findings, allowlisted, stale, len(infos))
    with open(output, "w", encoding="utf-8") as f:
        f.write(report_text)

    rc = 0
    for finding_class, sym in sorted(findings, key=lambda e: (e[1].qualified, e[0])):
        print(f"{sym.file}:{sym.line}: [{finding_class}] {sym.qualified} is unannotated "
              "shared mutable state — tag it with a shard-domain annotation "
              "(src/core/shard_safety.h)")
        rc = 1
    for finding_class, qualified in stale:
        print(f"{allowlist_path}: stale allowlist entry `{finding_class} {qualified}` — "
              "the symbol is no longer flagged; delete the line (the allowlist only "
              "shrinks)")
        rc = 1
    if not args.quiet:
        annotated = sum(1 for s in symbols if s.annotation is not None)
        print(f"shard_analyze.py: {len(infos)} files, {annotated} annotated symbols, "
              f"{len(allowlisted)} allowlisted, {len(findings)} finding(s), "
              f"{len(stale)} stale allowlist entr(ies) -> {output}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
