// digest_bisect: localize the first divergent (epoch, subsystem) cell between two state-digest
// timelines produced by a bench's `--audit <path>` flag.
//
// Two same-seed runs of a deterministic simulation must produce byte-identical digest
// timelines. When they do not (a perturbed decision, a wall-clock leak, a platform-dependent
// iteration order), this tool answers "where did the simulations first differ" without any
// manual diffing: it merges the two timelines in (epoch, subsystem) order and reports the
// first cell whose digest disagrees — including cells present in only one run, which happen
// when a subsystem was touched in different epochs.
//
// Usage:
//   digest_bisect <baseline.audit.jsonl> <candidate.audit.jsonl>
//                 [--events <candidate.events.jsonl>] [--window <n>]
//
// With --events, the decision window around the divergent epoch is printed from the candidate
// run's event log (`--events` bench flag): every retained event inside the epoch plus up to
// <n> events before and after it (default 8) — the GC victim selections, zone transitions and
// compactions amongst which the first divergent mutation hides.
//
// Exit codes: 0 = timelines identical, 1 = divergence found (report printed), 2 = usage or
// parse error. The report itself is deterministic: same input files -> same output bytes.
//
// Parsing is hand-rolled over the known JSON-lines schema (audit rows are flat objects with
// fixed key order); no JSON library is needed or used.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace {

struct DigestRow {
  std::uint64_t epoch = 0;
  std::uint64_t t_ns = 0;
  std::string subsystem;
  std::string digest;
  std::uint64_t mutations = 0;
};

struct DigestTimeline {
  std::uint64_t epoch_ns = 0;
  std::vector<DigestRow> rows;                       // Checkpoint cells, file order.
  std::map<std::string, std::string> finals;         // Subsystem -> final digest.
  std::string run_digest;                            // The "__run__" composite line.
};

struct EventRow {
  std::uint64_t t_ns = 0;
  std::uint64_t seq = 0;
  std::string line;  // Raw JSON line, reprinted verbatim in the report.
};

// Extracts the value of `"key":` from a flat JSON object line. Returns false if absent.
// String values are returned without quotes; escapes are kept as-is (digests and subsystem
// names never contain them, event details are reprinted raw anyway).
bool ExtractField(const std::string& line, const char* key, std::string* out) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) {
    return false;
  }
  std::size_t pos = at + needle.size();
  if (pos >= line.size()) {
    return false;
  }
  if (line[pos] == '"') {
    ++pos;
    std::string value;
    while (pos < line.size() && line[pos] != '"') {
      if (line[pos] == '\\' && pos + 1 < line.size()) {
        value += line[pos];
        ++pos;
      }
      value += line[pos];
      ++pos;
    }
    *out = value;
    return true;
  }
  std::string value;
  while (pos < line.size() && line[pos] != ',' && line[pos] != '}') {
    value += line[pos];
    ++pos;
  }
  *out = value;
  return true;
}

bool ExtractU64(const std::string& line, const char* key, std::uint64_t* out) {
  std::string text;
  if (!ExtractField(line, key, &text)) {
    return false;
  }
  char* end = nullptr;
  *out = std::strtoull(text.c_str(), &end, 10);
  return end != text.c_str();
}

bool LoadTimeline(const char* path, DigestTimeline* timeline) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "digest_bisect: cannot open %s\n", path);
    return false;
  }
  std::string line;
  bool saw_header = false;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    std::string schema;
    if (ExtractField(line, "schema", &schema)) {
      if (schema != "blockhead-audit-v1") {
        std::fprintf(stderr, "digest_bisect: %s: unexpected schema '%s'\n", path,
                     schema.c_str());
        return false;
      }
      if (!ExtractU64(line, "epoch_ns", &timeline->epoch_ns)) {
        std::fprintf(stderr, "digest_bisect: %s: header lacks epoch_ns\n", path);
        return false;
      }
      saw_header = true;
      continue;
    }
    std::string final_marker;
    std::string subsystem;
    std::string digest;
    if (!ExtractField(line, "subsystem", &subsystem) ||
        !ExtractField(line, "digest", &digest)) {
      std::fprintf(stderr, "digest_bisect: %s: malformed row: %s\n", path, line.c_str());
      return false;
    }
    if (ExtractField(line, "final", &final_marker)) {
      if (subsystem == "__run__") {
        timeline->run_digest = digest;
      } else {
        timeline->finals.emplace(subsystem, digest);
      }
      continue;
    }
    DigestRow row;
    row.subsystem = subsystem;
    row.digest = digest;
    if (!ExtractU64(line, "epoch", &row.epoch) || !ExtractU64(line, "t_ns", &row.t_ns)) {
      std::fprintf(stderr, "digest_bisect: %s: row lacks epoch/t_ns: %s\n", path,
                   line.c_str());
      return false;
    }
    ExtractU64(line, "mutations", &row.mutations);
    timeline->rows.push_back(std::move(row));
  }
  if (!saw_header) {
    std::fprintf(stderr, "digest_bisect: %s: missing blockhead-audit-v1 header\n", path);
    return false;
  }
  return true;
}

bool LoadEvents(const char* path, std::vector<EventRow>* events) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "digest_bisect: cannot open %s\n", path);
    return false;
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line.find("\"schema\"") != std::string::npos) {
      continue;
    }
    EventRow row;
    row.line = line;
    if (!ExtractU64(line, "t_ns", &row.t_ns)) {
      continue;
    }
    ExtractU64(line, "seq", &row.seq);
    events->push_back(std::move(row));
  }
  return true;
}

// Cells ordered by (epoch, subsystem): the audit dump's own stable order, so "first" means
// earliest epoch, ties broken by name — the earliest simulation moment the states disagree.
using CellKey = std::pair<std::uint64_t, std::string>;

void PrintEventWindow(const std::vector<EventRow>& events, std::uint64_t epoch_start,
                      std::uint64_t epoch_end, std::size_t margin) {
  // Index range of events inside the divergent epoch.
  std::size_t lo = events.size();
  std::size_t hi = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].t_ns >= epoch_start && events[i].t_ns < epoch_end) {
      lo = std::min(lo, i);
      hi = std::max(hi, i + 1);
    }
  }
  if (lo >= events.size()) {
    // Nothing retained inside the epoch (ring buffer evicted it, or no events fired): show
    // the closest retained events around the epoch start instead.
    std::size_t split = events.size();
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (events[i].t_ns >= epoch_start) {
        split = i;
        break;
      }
    }
    lo = split;
    hi = split;
    std::printf("  (no events retained inside the divergent epoch; nearest neighbors:)\n");
  }
  const std::size_t begin = lo > margin ? lo - margin : 0;
  const std::size_t end = std::min(events.size(), hi + margin);
  for (std::size_t i = begin; i < end; ++i) {
    const bool inside = events[i].t_ns >= epoch_start && events[i].t_ns < epoch_end;
    std::printf("  %s %s\n", inside ? ">" : " ", events[i].line.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  const char* baseline_path = nullptr;
  const char* candidate_path = nullptr;
  const char* events_path = nullptr;
  std::size_t window = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--events") == 0 && i + 1 < argc) {
      events_path = argv[++i];
    } else if (std::strcmp(argv[i], "--window") == 0 && i + 1 < argc) {
      window = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::printf(
          "usage: digest_bisect <baseline.jsonl> <candidate.jsonl> "
          "[--events <events.jsonl>] [--window <n>]\n");
      return 0;
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (candidate_path == nullptr) {
      candidate_path = argv[i];
    } else {
      std::fprintf(stderr, "digest_bisect: unexpected argument '%s'\n", argv[i]);
      return 2;
    }
  }
  if (baseline_path == nullptr || candidate_path == nullptr) {
    std::fprintf(stderr,
                 "usage: digest_bisect <baseline.jsonl> <candidate.jsonl> "
                 "[--events <events.jsonl>] [--window <n>]\n");
    return 2;
  }

  DigestTimeline baseline;
  DigestTimeline candidate;
  if (!LoadTimeline(baseline_path, &baseline) || !LoadTimeline(candidate_path, &candidate)) {
    return 2;
  }
  if (baseline.epoch_ns != candidate.epoch_ns) {
    std::fprintf(stderr,
                 "digest_bisect: epoch length mismatch (%llu vs %llu ns) — timelines are not "
                 "comparable; rerun both with the same BLOCKHEAD_AUDIT_EPOCH_NS\n",
                 static_cast<unsigned long long>(baseline.epoch_ns),
                 static_cast<unsigned long long>(candidate.epoch_ns));
    return 2;
  }

  // A (epoch, subsystem) cell can legitimately repeat when a bench builds and destroys the
  // same stack configuration more than once (retired digests keep their names). Fold repeats
  // by occurrence index so the nth occurrence in one run lines up with the nth in the other.
  std::map<CellKey, std::vector<const DigestRow*>> base_cells;
  std::map<CellKey, std::vector<const DigestRow*>> cand_cells;
  for (const DigestRow& row : baseline.rows) {
    base_cells[{row.epoch, row.subsystem}].push_back(&row);
  }
  for (const DigestRow& row : candidate.rows) {
    cand_cells[{row.epoch, row.subsystem}].push_back(&row);
  }

  const DigestRow* first_base = nullptr;
  const DigestRow* first_cand = nullptr;
  CellKey divergent_key;
  auto bit = base_cells.begin();
  auto cit = cand_cells.begin();
  while (bit != base_cells.end() || cit != cand_cells.end()) {
    if (cit == cand_cells.end() || (bit != base_cells.end() && bit->first < cit->first)) {
      divergent_key = bit->first;
      first_base = bit->second.front();
      break;
    }
    if (bit == base_cells.end() || cit->first < bit->first) {
      divergent_key = cit->first;
      first_cand = cit->second.front();
      break;
    }
    const std::vector<const DigestRow*>& bv = bit->second;
    const std::vector<const DigestRow*>& cv = cit->second;
    const std::size_t common = std::min(bv.size(), cv.size());
    bool diverged = false;
    for (std::size_t i = 0; i < common; ++i) {
      if (bv[i]->digest != cv[i]->digest || bv[i]->mutations != cv[i]->mutations) {
        divergent_key = bit->first;
        first_base = bv[i];
        first_cand = cv[i];
        diverged = true;
        break;
      }
    }
    if (!diverged && bv.size() != cv.size()) {
      divergent_key = bit->first;
      first_base = bv.size() > common ? bv[common] : nullptr;
      first_cand = cv.size() > common ? cv[common] : nullptr;
      diverged = true;
    }
    if (diverged) {
      break;
    }
    ++bit;
    ++cit;
  }

  if (first_base == nullptr && first_cand == nullptr) {
    // No checkpoint cell differs; verify the finals (covers divergence after the last
    // checkpointed epoch, and runs short enough to never seal an epoch).
    for (const auto& [name, digest] : baseline.finals) {
      auto it = candidate.finals.find(name);
      const std::string other = it == candidate.finals.end() ? "<absent>" : it->second;
      if (other != digest) {
        std::printf("DIVERGENCE in final digest only (no checkpoint cell differs)\n");
        std::printf("  subsystem: %s\n  baseline:  %s\n  candidate: %s\n", name.c_str(),
                    digest.c_str(), other.c_str());
        return 1;
      }
    }
    for (const auto& [name, digest] : candidate.finals) {
      if (baseline.finals.find(name) == baseline.finals.end()) {
        std::printf("DIVERGENCE in final digest only (no checkpoint cell differs)\n");
        std::printf("  subsystem: %s\n  baseline:  <absent>\n  candidate: %s\n", name.c_str(),
                    digest.c_str());
        return 1;
      }
    }
    if (baseline.run_digest != candidate.run_digest) {
      std::printf("DIVERGENCE in whole-run digest only: %s vs %s\n",
                  baseline.run_digest.c_str(), candidate.run_digest.c_str());
      return 1;
    }
    std::printf("identical: %zu checkpoint cells, %zu subsystem finals, run digest %s\n",
                base_cells.size(), baseline.finals.size(), baseline.run_digest.c_str());
    return 0;
  }

  const std::uint64_t epoch = divergent_key.first;
  const std::uint64_t epoch_start = epoch * baseline.epoch_ns;
  const std::uint64_t epoch_end = epoch_start + baseline.epoch_ns;
  std::printf("FIRST DIVERGENT CELL\n");
  std::printf("  epoch:     %llu  [%llu ns, %llu ns)\n",
              static_cast<unsigned long long>(epoch),
              static_cast<unsigned long long>(epoch_start),
              static_cast<unsigned long long>(epoch_end));
  std::printf("  subsystem: %s\n", divergent_key.second.c_str());
  std::printf("  baseline:  %s (mutations %llu)\n",
              first_base != nullptr ? first_base->digest.c_str() : "<cell absent>",
              first_base != nullptr ? static_cast<unsigned long long>(first_base->mutations)
                                    : 0ULL);
  std::printf("  candidate: %s (mutations %llu)\n",
              first_cand != nullptr ? first_cand->digest.c_str() : "<cell absent>",
              first_cand != nullptr ? static_cast<unsigned long long>(first_cand->mutations)
                                    : 0ULL);

  // Every other subsystem that also diverged somewhere (summary, not bisection).
  std::map<std::string, std::uint64_t> also_divergent;
  for (const auto& [name, digest] : baseline.finals) {
    auto it = candidate.finals.find(name);
    if (it != candidate.finals.end() && it->second != digest &&
        name != divergent_key.second) {
      also_divergent.emplace(name, 0);
    }
  }
  if (!also_divergent.empty()) {
    std::printf("  downstream subsystems whose finals also differ:\n");
    for (const auto& [name, unused] : also_divergent) {
      (void)unused;
      std::printf("    %s\n", name.c_str());
    }
  }

  if (events_path != nullptr) {
    std::vector<EventRow> events;
    if (!LoadEvents(events_path, &events)) {
      return 2;
    }
    std::printf("\nDECISION WINDOW (candidate events, '>' = inside the divergent epoch)\n");
    PrintEventWindow(events, epoch_start, epoch_end, window);
  }
  return 1;
}
