#!/usr/bin/env bash
# Static-analysis entry point: project lint, format check, and (when installed) clang-tidy.
#
#   tools/check.sh            # lint + format; clang-tidy if available
#   tools/check.sh --no-tidy  # lint + format only
#
# The container this repo builds in has g++ and python3 but not always clang-format or
# clang-tidy, so both are availability-gated: the committed .clang-format / .clang-tidy
# configs apply wherever those tools exist, and tools/lint.py carries fallback format rules
# (tabs, trailing whitespace, 100-column limit, final newline) that always run.

set -euo pipefail
cd "$(dirname "$0")/.."

run_tidy=1
if [[ "${1:-}" == "--no-tidy" ]]; then
  run_tidy=0
fi

echo "=== project lint (tools/lint.py) ==="
python3 tools/lint.py

if command -v clang-format > /dev/null 2>&1; then
  echo "=== clang-format check ==="
  mapfile -t files < <(git ls-files 'src/**/*.h' 'src/**/*.cc' 'tests/*.cc' 'bench/*.cc' \
    'examples/*.cpp')
  clang-format --dry-run --Werror "${files[@]}"
else
  echo "clang-format not installed; lint.py format rules served as the fallback"
fi

if [[ "$run_tidy" == 1 ]] && command -v clang-tidy > /dev/null 2>&1; then
  echo "=== clang-tidy (diff-aware) ==="
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  # Diff-aware: only files changed relative to the merge base with main; falls back to the
  # whole tree when the merge base is unavailable (fresh clone of a single commit).
  base=$(git merge-base HEAD origin/main 2> /dev/null || git merge-base HEAD main \
    2> /dev/null || true)
  if [[ -n "$base" ]]; then
    mapfile -t changed < <(git diff --name-only "$base" -- 'src/**/*.cc' 'src/**/*.h')
  else
    mapfile -t changed < <(git ls-files 'src/**/*.cc')
  fi
  if [[ "${#changed[@]}" -gt 0 ]]; then
    clang-tidy -p build --warnings-as-errors='*' "${changed[@]}"
  else
    echo "no changed src/ files to tidy"
  fi
elif [[ "$run_tidy" == 1 ]]; then
  echo "clang-tidy not installed; skipping (config committed in .clang-tidy)"
fi

echo "check.sh: all static-analysis checks passed"
