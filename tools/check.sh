#!/usr/bin/env bash
# Static-analysis entry point: project lint, format check, and (when installed) clang-tidy.
#
#   tools/check.sh            # lint + format; clang-tidy if available, loud SKIPPED if not
#   tools/check.sh --no-tidy  # lint + format only
#   tools/check.sh --strict   # missing tools are an error, not a skip (used by ci.sh --lint)
#
# The container this repo builds in has g++ and python3 but not always clang-format or
# clang-tidy, so both are availability-gated: the committed .clang-format / .clang-tidy
# configs apply wherever those tools exist, and tools/lint.py carries fallback format rules
# (tabs, trailing whitespace, 100-column limit, final newline) that always run. A skipped
# tool is announced on a dedicated `SKIPPED:` line so a CI environment that silently lost
# clang off its image shows up in the log; under --strict the skip is a hard failure, which
# is what ci.sh --lint uses so the hosted lint gate cannot quietly degrade to lint.py-only.

set -euo pipefail
cd "$(dirname "$0")/.."

run_tidy=1
strict=0
for arg in "$@"; do
  case "$arg" in
    --no-tidy) run_tidy=0 ;;
    --strict) strict=1 ;;
    *)
      echo "usage: tools/check.sh [--no-tidy] [--strict]" >&2
      exit 2
      ;;
  esac
done

skipped=0

echo "=== project lint (tools/lint.py) ==="
python3 tools/lint.py

if command -v clang-format > /dev/null 2>&1; then
  echo "=== clang-format check ==="
  mapfile -t files < <(git ls-files 'src/**/*.h' 'src/**/*.cc' 'tests/*.cc' 'bench/*.cc' \
    'examples/*.cpp')
  clang-format --dry-run --Werror "${files[@]}"
else
  echo "SKIPPED: clang-format not found (lint.py format rules served as the fallback)"
  skipped=1
fi

if [[ "$run_tidy" == 1 ]] && command -v clang-tidy > /dev/null 2>&1; then
  echo "=== clang-tidy (diff-aware) ==="
  cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
  # Diff-aware: only files changed relative to the merge base with main; falls back to the
  # whole tree when the merge base is unavailable (fresh clone of a single commit).
  base=$(git merge-base HEAD origin/main 2> /dev/null || git merge-base HEAD main \
    2> /dev/null || true)
  if [[ -n "$base" ]]; then
    mapfile -t changed < <(git diff --name-only "$base" -- 'src/**/*.cc' 'src/**/*.h')
  else
    mapfile -t changed < <(git ls-files 'src/**/*.cc')
  fi
  if [[ "${#changed[@]}" -gt 0 ]]; then
    clang-tidy -p build --warnings-as-errors='*' "${changed[@]}"
  else
    echo "no changed src/ files to tidy"
  fi
elif [[ "$run_tidy" == 1 ]]; then
  echo "SKIPPED: clang-tidy not found (config committed in .clang-tidy)"
  skipped=1
fi

if [[ "$strict" == 1 && "$skipped" == 1 ]]; then
  echo "check.sh: FAILED under --strict: required tools were skipped (see SKIPPED lines)" >&2
  exit 1
fi
echo "check.sh: all static-analysis checks passed"
