file(REMOVE_RECURSE
  "CMakeFiles/block_on_zns.dir/block_on_zns.cpp.o"
  "CMakeFiles/block_on_zns.dir/block_on_zns.cpp.o.d"
  "block_on_zns"
  "block_on_zns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_on_zns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
