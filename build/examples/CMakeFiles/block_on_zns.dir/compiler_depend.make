# Empty compiler generated dependencies file for block_on_zns.
# This may be replaced when dependencies are built.
