# Empty dependencies file for kvstore_on_zns.
# This may be replaced when dependencies are built.
