file(REMOVE_RECURSE
  "CMakeFiles/kvstore_on_zns.dir/kvstore_on_zns.cpp.o"
  "CMakeFiles/kvstore_on_zns.dir/kvstore_on_zns.cpp.o.d"
  "kvstore_on_zns"
  "kvstore_on_zns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kvstore_on_zns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
