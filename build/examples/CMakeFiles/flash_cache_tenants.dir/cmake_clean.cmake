file(REMOVE_RECURSE
  "CMakeFiles/flash_cache_tenants.dir/flash_cache_tenants.cpp.o"
  "CMakeFiles/flash_cache_tenants.dir/flash_cache_tenants.cpp.o.d"
  "flash_cache_tenants"
  "flash_cache_tenants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_cache_tenants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
