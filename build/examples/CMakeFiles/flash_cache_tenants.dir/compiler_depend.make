# Empty compiler generated dependencies file for flash_cache_tenants.
# This may be replaced when dependencies are built.
