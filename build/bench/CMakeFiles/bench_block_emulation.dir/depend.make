# Empty dependencies file for bench_block_emulation.
# This may be replaced when dependencies are built.
