file(REMOVE_RECURSE
  "CMakeFiles/bench_block_emulation.dir/bench_block_emulation.cc.o"
  "CMakeFiles/bench_block_emulation.dir/bench_block_emulation.cc.o.d"
  "bench_block_emulation"
  "bench_block_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_block_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
