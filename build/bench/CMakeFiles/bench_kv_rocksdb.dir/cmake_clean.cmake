file(REMOVE_RECURSE
  "CMakeFiles/bench_kv_rocksdb.dir/bench_kv_rocksdb.cc.o"
  "CMakeFiles/bench_kv_rocksdb.dir/bench_kv_rocksdb.cc.o.d"
  "bench_kv_rocksdb"
  "bench_kv_rocksdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kv_rocksdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
