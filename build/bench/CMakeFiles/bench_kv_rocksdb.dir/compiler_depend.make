# Empty compiler generated dependencies file for bench_kv_rocksdb.
# This may be replaced when dependencies are built.
