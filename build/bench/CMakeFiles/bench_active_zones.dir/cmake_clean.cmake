file(REMOVE_RECURSE
  "CMakeFiles/bench_active_zones.dir/bench_active_zones.cc.o"
  "CMakeFiles/bench_active_zones.dir/bench_active_zones.cc.o.d"
  "bench_active_zones"
  "bench_active_zones.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_active_zones.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
