# Empty dependencies file for bench_active_zones.
# This may be replaced when dependencies are built.
