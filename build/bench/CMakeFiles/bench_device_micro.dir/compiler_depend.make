# Empty compiler generated dependencies file for bench_device_micro.
# This may be replaced when dependencies are built.
