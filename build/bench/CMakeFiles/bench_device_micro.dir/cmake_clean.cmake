file(REMOVE_RECURSE
  "CMakeFiles/bench_device_micro.dir/bench_device_micro.cc.o"
  "CMakeFiles/bench_device_micro.dir/bench_device_micro.cc.o.d"
  "bench_device_micro"
  "bench_device_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_device_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
