file(REMOVE_RECURSE
  "CMakeFiles/bench_cache_buffers.dir/bench_cache_buffers.cc.o"
  "CMakeFiles/bench_cache_buffers.dir/bench_cache_buffers.cc.o.d"
  "bench_cache_buffers"
  "bench_cache_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cache_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
