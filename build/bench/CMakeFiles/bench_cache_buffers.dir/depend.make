# Empty dependencies file for bench_cache_buffers.
# This may be replaced when dependencies are built.
