file(REMOVE_RECURSE
  "CMakeFiles/bench_wa_overprovisioning.dir/bench_wa_overprovisioning.cc.o"
  "CMakeFiles/bench_wa_overprovisioning.dir/bench_wa_overprovisioning.cc.o.d"
  "bench_wa_overprovisioning"
  "bench_wa_overprovisioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wa_overprovisioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
