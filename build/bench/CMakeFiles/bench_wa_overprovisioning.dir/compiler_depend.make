# Empty compiler generated dependencies file for bench_wa_overprovisioning.
# This may be replaced when dependencies are built.
