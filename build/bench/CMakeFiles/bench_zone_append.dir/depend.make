# Empty dependencies file for bench_zone_append.
# This may be replaced when dependencies are built.
