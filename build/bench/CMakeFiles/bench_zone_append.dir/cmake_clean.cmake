file(REMOVE_RECURSE
  "CMakeFiles/bench_zone_append.dir/bench_zone_append.cc.o"
  "CMakeFiles/bench_zone_append.dir/bench_zone_append.cc.o.d"
  "bench_zone_append"
  "bench_zone_append.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_zone_append.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
