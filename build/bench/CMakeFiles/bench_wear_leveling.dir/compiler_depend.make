# Empty compiler generated dependencies file for bench_wear_leveling.
# This may be replaced when dependencies are built.
