file(REMOVE_RECURSE
  "CMakeFiles/bench_lifetime_hints.dir/bench_lifetime_hints.cc.o"
  "CMakeFiles/bench_lifetime_hints.dir/bench_lifetime_hints.cc.o.d"
  "bench_lifetime_hints"
  "bench_lifetime_hints.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lifetime_hints.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
