# Empty compiler generated dependencies file for bench_lifetime_hints.
# This may be replaced when dependencies are built.
