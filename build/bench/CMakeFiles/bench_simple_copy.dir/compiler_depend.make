# Empty compiler generated dependencies file for bench_simple_copy.
# This may be replaced when dependencies are built.
