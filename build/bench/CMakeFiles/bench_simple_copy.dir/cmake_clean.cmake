file(REMOVE_RECURSE
  "CMakeFiles/bench_simple_copy.dir/bench_simple_copy.cc.o"
  "CMakeFiles/bench_simple_copy.dir/bench_simple_copy.cc.o.d"
  "bench_simple_copy"
  "bench_simple_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simple_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
