
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_dram_overhead.cc" "bench/CMakeFiles/bench_dram_overhead.dir/bench_dram_overhead.cc.o" "gcc" "bench/CMakeFiles/bench_dram_overhead.dir/bench_dram_overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/bh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bh_cost.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bh_zns.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bh_ftl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bh_flash.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bh_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
