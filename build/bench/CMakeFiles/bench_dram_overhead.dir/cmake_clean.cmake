file(REMOVE_RECURSE
  "CMakeFiles/bench_dram_overhead.dir/bench_dram_overhead.cc.o"
  "CMakeFiles/bench_dram_overhead.dir/bench_dram_overhead.cc.o.d"
  "bench_dram_overhead"
  "bench_dram_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dram_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
