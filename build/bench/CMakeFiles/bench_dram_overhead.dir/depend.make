# Empty dependencies file for bench_dram_overhead.
# This may be replaced when dependencies are built.
