file(REMOVE_RECURSE
  "CMakeFiles/bench_interfaces.dir/bench_interfaces.cc.o"
  "CMakeFiles/bench_interfaces.dir/bench_interfaces.cc.o.d"
  "bench_interfaces"
  "bench_interfaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
