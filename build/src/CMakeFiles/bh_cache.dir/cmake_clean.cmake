file(REMOVE_RECURSE
  "CMakeFiles/bh_cache.dir/cache/flash_cache.cc.o"
  "CMakeFiles/bh_cache.dir/cache/flash_cache.cc.o.d"
  "libbh_cache.a"
  "libbh_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
