file(REMOVE_RECURSE
  "libbh_cache.a"
)
