file(REMOVE_RECURSE
  "CMakeFiles/bh_workload.dir/workload/trace.cc.o"
  "CMakeFiles/bh_workload.dir/workload/trace.cc.o.d"
  "CMakeFiles/bh_workload.dir/workload/workload.cc.o"
  "CMakeFiles/bh_workload.dir/workload/workload.cc.o.d"
  "libbh_workload.a"
  "libbh_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
