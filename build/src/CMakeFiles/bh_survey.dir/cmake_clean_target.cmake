file(REMOVE_RECURSE
  "libbh_survey.a"
)
