# Empty dependencies file for bh_survey.
# This may be replaced when dependencies are built.
