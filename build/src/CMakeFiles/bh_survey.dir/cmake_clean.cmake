file(REMOVE_RECURSE
  "CMakeFiles/bh_survey.dir/survey/survey.cc.o"
  "CMakeFiles/bh_survey.dir/survey/survey.cc.o.d"
  "libbh_survey.a"
  "libbh_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
