file(REMOVE_RECURSE
  "libbh_kv.a"
)
