# Empty compiler generated dependencies file for bh_kv.
# This may be replaced when dependencies are built.
