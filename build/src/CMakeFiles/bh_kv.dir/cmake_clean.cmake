file(REMOVE_RECURSE
  "CMakeFiles/bh_kv.dir/kv/block_env.cc.o"
  "CMakeFiles/bh_kv.dir/kv/block_env.cc.o.d"
  "CMakeFiles/bh_kv.dir/kv/kv_store.cc.o"
  "CMakeFiles/bh_kv.dir/kv/kv_store.cc.o.d"
  "CMakeFiles/bh_kv.dir/kv/sstable.cc.o"
  "CMakeFiles/bh_kv.dir/kv/sstable.cc.o.d"
  "CMakeFiles/bh_kv.dir/kv/ycsb.cc.o"
  "CMakeFiles/bh_kv.dir/kv/ycsb.cc.o.d"
  "libbh_kv.a"
  "libbh_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
