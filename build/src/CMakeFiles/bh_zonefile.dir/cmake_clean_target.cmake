file(REMOVE_RECURSE
  "libbh_zonefile.a"
)
