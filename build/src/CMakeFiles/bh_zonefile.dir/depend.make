# Empty dependencies file for bh_zonefile.
# This may be replaced when dependencies are built.
