file(REMOVE_RECURSE
  "CMakeFiles/bh_zonefile.dir/zonefile/zone_file_system.cc.o"
  "CMakeFiles/bh_zonefile.dir/zonefile/zone_file_system.cc.o.d"
  "libbh_zonefile.a"
  "libbh_zonefile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_zonefile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
