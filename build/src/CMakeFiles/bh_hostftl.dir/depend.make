# Empty dependencies file for bh_hostftl.
# This may be replaced when dependencies are built.
