file(REMOVE_RECURSE
  "CMakeFiles/bh_hostftl.dir/hostftl/host_ftl.cc.o"
  "CMakeFiles/bh_hostftl.dir/hostftl/host_ftl.cc.o.d"
  "libbh_hostftl.a"
  "libbh_hostftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_hostftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
