file(REMOVE_RECURSE
  "libbh_hostftl.a"
)
