file(REMOVE_RECURSE
  "libbh_flash.a"
)
