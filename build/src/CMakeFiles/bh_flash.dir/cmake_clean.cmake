file(REMOVE_RECURSE
  "CMakeFiles/bh_flash.dir/flash/flash_device.cc.o"
  "CMakeFiles/bh_flash.dir/flash/flash_device.cc.o.d"
  "libbh_flash.a"
  "libbh_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
