# Empty compiler generated dependencies file for bh_flash.
# This may be replaced when dependencies are built.
