file(REMOVE_RECURSE
  "libbh_util.a"
)
