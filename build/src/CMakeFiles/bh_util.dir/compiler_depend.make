# Empty compiler generated dependencies file for bh_util.
# This may be replaced when dependencies are built.
