file(REMOVE_RECURSE
  "CMakeFiles/bh_util.dir/util/histogram.cc.o"
  "CMakeFiles/bh_util.dir/util/histogram.cc.o.d"
  "CMakeFiles/bh_util.dir/util/rng.cc.o"
  "CMakeFiles/bh_util.dir/util/rng.cc.o.d"
  "CMakeFiles/bh_util.dir/util/status.cc.o"
  "CMakeFiles/bh_util.dir/util/status.cc.o.d"
  "libbh_util.a"
  "libbh_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
