file(REMOVE_RECURSE
  "libbh_ftl.a"
)
