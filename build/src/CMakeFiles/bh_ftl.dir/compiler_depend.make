# Empty compiler generated dependencies file for bh_ftl.
# This may be replaced when dependencies are built.
