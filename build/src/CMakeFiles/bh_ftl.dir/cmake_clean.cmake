file(REMOVE_RECURSE
  "CMakeFiles/bh_ftl.dir/ftl/conventional_ssd.cc.o"
  "CMakeFiles/bh_ftl.dir/ftl/conventional_ssd.cc.o.d"
  "libbh_ftl.a"
  "libbh_ftl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_ftl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
