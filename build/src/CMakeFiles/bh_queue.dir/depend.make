# Empty dependencies file for bh_queue.
# This may be replaced when dependencies are built.
