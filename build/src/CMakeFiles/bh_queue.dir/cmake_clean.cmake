file(REMOVE_RECURSE
  "CMakeFiles/bh_queue.dir/queue/persistent_queue.cc.o"
  "CMakeFiles/bh_queue.dir/queue/persistent_queue.cc.o.d"
  "libbh_queue.a"
  "libbh_queue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_queue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
