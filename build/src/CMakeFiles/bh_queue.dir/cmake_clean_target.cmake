file(REMOVE_RECURSE
  "libbh_queue.a"
)
