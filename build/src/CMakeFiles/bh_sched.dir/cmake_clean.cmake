file(REMOVE_RECURSE
  "CMakeFiles/bh_sched.dir/sched/gc_scheduler.cc.o"
  "CMakeFiles/bh_sched.dir/sched/gc_scheduler.cc.o.d"
  "libbh_sched.a"
  "libbh_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
