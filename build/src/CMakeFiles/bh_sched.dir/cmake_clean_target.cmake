file(REMOVE_RECURSE
  "libbh_sched.a"
)
