# Empty compiler generated dependencies file for bh_sched.
# This may be replaced when dependencies are built.
