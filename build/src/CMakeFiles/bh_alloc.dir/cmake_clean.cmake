file(REMOVE_RECURSE
  "CMakeFiles/bh_alloc.dir/alloc/zone_budget.cc.o"
  "CMakeFiles/bh_alloc.dir/alloc/zone_budget.cc.o.d"
  "libbh_alloc.a"
  "libbh_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
