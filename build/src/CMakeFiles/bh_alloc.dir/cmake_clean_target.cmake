file(REMOVE_RECURSE
  "libbh_alloc.a"
)
