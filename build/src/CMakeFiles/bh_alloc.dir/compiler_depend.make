# Empty compiler generated dependencies file for bh_alloc.
# This may be replaced when dependencies are built.
