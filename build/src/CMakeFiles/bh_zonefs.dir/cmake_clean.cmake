file(REMOVE_RECURSE
  "CMakeFiles/bh_zonefs.dir/zonefs/zone_fs.cc.o"
  "CMakeFiles/bh_zonefs.dir/zonefs/zone_fs.cc.o.d"
  "libbh_zonefs.a"
  "libbh_zonefs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_zonefs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
