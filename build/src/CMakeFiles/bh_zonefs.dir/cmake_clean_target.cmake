file(REMOVE_RECURSE
  "libbh_zonefs.a"
)
