# Empty compiler generated dependencies file for bh_zonefs.
# This may be replaced when dependencies are built.
