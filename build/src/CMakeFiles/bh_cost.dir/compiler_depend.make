# Empty compiler generated dependencies file for bh_cost.
# This may be replaced when dependencies are built.
