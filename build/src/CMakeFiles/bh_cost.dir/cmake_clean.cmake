file(REMOVE_RECURSE
  "CMakeFiles/bh_cost.dir/cost/cost_model.cc.o"
  "CMakeFiles/bh_cost.dir/cost/cost_model.cc.o.d"
  "libbh_cost.a"
  "libbh_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
