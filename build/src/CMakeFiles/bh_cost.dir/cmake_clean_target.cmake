file(REMOVE_RECURSE
  "libbh_cost.a"
)
