file(REMOVE_RECURSE
  "libbh_zns.a"
)
