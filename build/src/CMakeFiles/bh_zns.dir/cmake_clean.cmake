file(REMOVE_RECURSE
  "CMakeFiles/bh_zns.dir/zns/zns_device.cc.o"
  "CMakeFiles/bh_zns.dir/zns/zns_device.cc.o.d"
  "libbh_zns.a"
  "libbh_zns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bh_zns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
