# Empty compiler generated dependencies file for bh_zns.
# This may be replaced when dependencies are built.
