# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/flash_test[1]_include.cmake")
include("/root/repo/build/tests/ftl_test[1]_include.cmake")
include("/root/repo/build/tests/zns_test[1]_include.cmake")
include("/root/repo/build/tests/sched_test[1]_include.cmake")
include("/root/repo/build/tests/hostftl_test[1]_include.cmake")
include("/root/repo/build/tests/zonefile_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/kv_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/alloc_test[1]_include.cmake")
include("/root/repo/build/tests/survey_cost_core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/queue_zonefs_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
