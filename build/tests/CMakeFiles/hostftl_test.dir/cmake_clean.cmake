file(REMOVE_RECURSE
  "CMakeFiles/hostftl_test.dir/hostftl_test.cc.o"
  "CMakeFiles/hostftl_test.dir/hostftl_test.cc.o.d"
  "hostftl_test"
  "hostftl_test.pdb"
  "hostftl_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hostftl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
