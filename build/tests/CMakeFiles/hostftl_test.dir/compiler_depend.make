# Empty compiler generated dependencies file for hostftl_test.
# This may be replaced when dependencies are built.
