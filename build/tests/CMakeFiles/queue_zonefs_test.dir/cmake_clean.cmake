file(REMOVE_RECURSE
  "CMakeFiles/queue_zonefs_test.dir/queue_zonefs_test.cc.o"
  "CMakeFiles/queue_zonefs_test.dir/queue_zonefs_test.cc.o.d"
  "queue_zonefs_test"
  "queue_zonefs_test.pdb"
  "queue_zonefs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/queue_zonefs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
