# Empty compiler generated dependencies file for queue_zonefs_test.
# This may be replaced when dependencies are built.
