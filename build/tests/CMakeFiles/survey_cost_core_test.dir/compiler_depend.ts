# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for survey_cost_core_test.
