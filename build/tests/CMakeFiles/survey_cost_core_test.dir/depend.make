# Empty dependencies file for survey_cost_core_test.
# This may be replaced when dependencies are built.
