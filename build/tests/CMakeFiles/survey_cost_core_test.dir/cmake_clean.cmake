file(REMOVE_RECURSE
  "CMakeFiles/survey_cost_core_test.dir/survey_cost_core_test.cc.o"
  "CMakeFiles/survey_cost_core_test.dir/survey_cost_core_test.cc.o.d"
  "survey_cost_core_test"
  "survey_cost_core_test.pdb"
  "survey_cost_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_cost_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
