#include "src/cost/cost_model.h"

#include <algorithm>
#include <cmath>

namespace blockhead {

namespace {

double GiB(std::uint64_t bytes) { return static_cast<double>(bytes) / static_cast<double>(kGiB); }

}  // namespace

DramEstimate ConventionalMappingDram(std::uint64_t usable_bytes, const CostModelConfig& config) {
  DramEstimate e;
  const std::uint64_t pages = usable_bytes / config.page_bytes;
  e.bytes = pages * config.mapping_bytes_per_entry;
  e.bytes_per_tib = usable_bytes == 0 ? 0.0
                                      : static_cast<double>(e.bytes) /
                                            (static_cast<double>(usable_bytes) /
                                             static_cast<double>(kTiB));
  return e;
}

DramEstimate ZnsMappingDram(std::uint64_t usable_bytes, const CostModelConfig& config) {
  DramEstimate e;
  const std::uint64_t blocks = usable_bytes / config.erasure_block_bytes;
  e.bytes = blocks * config.mapping_bytes_per_entry;
  e.bytes_per_tib = usable_bytes == 0 ? 0.0
                                      : static_cast<double>(e.bytes) /
                                            (static_cast<double>(usable_bytes) /
                                             static_cast<double>(kTiB));
  return e;
}

DeviceCost ConventionalDeviceCost(std::uint64_t usable_bytes, double op_fraction,
                                  const CostModelConfig& config) {
  DeviceCost cost;
  cost.usable_bytes = usable_bytes;
  cost.raw_flash_bytes =
      static_cast<std::uint64_t>(static_cast<double>(usable_bytes) * (1.0 + op_fraction));
  cost.flash_usd = GiB(cost.raw_flash_bytes) * config.flash_usd_per_gib;
  cost.dram_usd = GiB(ConventionalMappingDram(usable_bytes, config).bytes) *
                  config.device_dram_usd_per_gib;
  cost.controller_usd = config.controller_usd;
  return cost;
}

DeviceCost ZnsDeviceCost(std::uint64_t usable_bytes, const CostModelConfig& config,
                         double bad_block_reserve_fraction) {
  DeviceCost cost;
  cost.usable_bytes = usable_bytes;
  cost.raw_flash_bytes = static_cast<std::uint64_t>(static_cast<double>(usable_bytes) *
                                                    (1.0 + bad_block_reserve_fraction));
  cost.flash_usd = GiB(cost.raw_flash_bytes) * config.flash_usd_per_gib;
  cost.dram_usd = GiB(ZnsMappingDram(usable_bytes, config).bytes) *
                  config.device_dram_usd_per_gib;
  cost.controller_usd = config.controller_usd;
  return cost;
}

double ZnsHostDramUsd(std::uint64_t usable_bytes, const CostModelConfig& config) {
  return GiB(ConventionalMappingDram(usable_bytes, config).bytes) * config.host_dram_usd_per_gib;
}

LifetimeEstimate EstimateLifetime(std::uint64_t usable_bytes, std::uint32_t endurance_cycles,
                                  double write_amplification, double host_gb_per_day,
                                  double target_years) {
  LifetimeEstimate e;
  e.total_writable_bytes =
      static_cast<double>(endurance_cycles) * static_cast<double>(usable_bytes);
  const double flash_bytes_per_day =
      host_gb_per_day * 1e9 * std::max(1.0, write_amplification);
  if (flash_bytes_per_day > 0.0) {
    e.years = e.total_writable_bytes / flash_bytes_per_day / 365.0;
  }
  // DWPD the device supports for `target_years`: host bytes/day such that
  // host * WA * 365 * years == writable budget, expressed in drive capacities.
  const double host_budget_per_day =
      e.total_writable_bytes / (std::max(1.0, write_amplification) * 365.0 * target_years);
  e.dwpd_supported = host_budget_per_day / static_cast<double>(usable_bytes);
  return e;
}

}  // namespace blockhead
