// Parametric device-cost and DRAM-overhead model for the paper's §2.2 economics claims:
//
//   * conventional SSDs need ~4 B of on-board DRAM per 4 KiB page (~1 GB per TB of flash),
//     ZNS SSDs ~4 B per erasure block (~256 KB per TB with 16 MiB blocks);
//   * conventional SSDs reserve 7-28% of usable capacity as overprovisioned spare flash;
//   * flash is the dominant device cost, so OP inflates $/usable-GB;
//   * footnote 2: small DIMMs cost >2x per GB vs 16-32 GB DIMMs — relevant because ZNS moves
//     DRAM needs from many small embedded chips to one large host DIMM.
//
// Absolute prices are parameters with representative defaults; every reproduced claim is a
// ratio.

#ifndef BLOCKHEAD_SRC_COST_COST_MODEL_H_
#define BLOCKHEAD_SRC_COST_COST_MODEL_H_

#include <cstdint>

#include "src/util/types.h"

namespace blockhead {

struct CostModelConfig {
  double flash_usd_per_gib = 0.08;
  // Embedded device DRAM (many small chips) vs bulk host DIMMs: >2x per GB (paper fn. 2).
  double device_dram_usd_per_gib = 6.0;
  double host_dram_usd_per_gib = 2.5;
  // Fixed controller/PCB cost per device.
  double controller_usd = 8.0;

  // Mapping-table models (paper §2.2).
  std::uint32_t mapping_bytes_per_entry = 4;
  std::uint64_t page_bytes = 4 * kKiB;
  std::uint64_t erasure_block_bytes = 16 * kMiB;
};

struct DramEstimate {
  std::uint64_t bytes = 0;
  double bytes_per_tib = 0.0;
};

// On-board DRAM needed for the mapping table of a conventional (page-mapped) SSD.
DramEstimate ConventionalMappingDram(std::uint64_t usable_bytes, const CostModelConfig& config);
// On-board DRAM needed for the zone map of a ZNS SSD.
DramEstimate ZnsMappingDram(std::uint64_t usable_bytes, const CostModelConfig& config);

struct DeviceCost {
  double flash_usd = 0.0;
  double dram_usd = 0.0;
  double controller_usd = 0.0;
  std::uint64_t usable_bytes = 0;
  std::uint64_t raw_flash_bytes = 0;

  double total_usd() const { return flash_usd + dram_usd + controller_usd; }
  double usd_per_usable_gib() const {
    return usable_bytes == 0
               ? 0.0
               : total_usd() / (static_cast<double>(usable_bytes) / static_cast<double>(kGiB));
  }
};

// Cost of a conventional SSD exporting `usable_bytes`, with `op_fraction` spare flash (as a
// fraction of usable capacity) and a page-granular mapping table in on-board DRAM.
DeviceCost ConventionalDeviceCost(std::uint64_t usable_bytes, double op_fraction,
                                  const CostModelConfig& config);

// Cost of a ZNS SSD exporting `usable_bytes`: no OP pool beyond a small bad-block reserve, and
// a zone-granular mapping table.
DeviceCost ZnsDeviceCost(std::uint64_t usable_bytes, const CostModelConfig& config,
                         double bad_block_reserve_fraction = 0.02);

// Host DRAM cost a ZNS deployment pays when it rebuilds page-granular state in host memory
// (e.g. block-interface emulation). Zero when applications use zones natively.
double ZnsHostDramUsd(std::uint64_t usable_bytes, const CostModelConfig& config);

// --- Endurance / lifetime (§2.1-§2.2: "Write amplification reduces device lifetime by using
// excess write-and-erase cycles.") ---

struct LifetimeEstimate {
  double total_writable_bytes = 0.0;  // endurance_cycles * raw capacity.
  double years = 0.0;                 // At the given host write rate and WA.
  double dwpd_supported = 0.0;        // Drive-writes-per-day sustainable over `target_years`.
};

// Lifetime under a host write load of `host_gb_per_day` with the given write amplification.
LifetimeEstimate EstimateLifetime(std::uint64_t usable_bytes, std::uint32_t endurance_cycles,
                                  double write_amplification, double host_gb_per_day,
                                  double target_years = 5.0);

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_COST_COST_MODEL_H_
