#include "src/zonefile/zone_file_system.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

namespace blockhead {

namespace {

constexpr std::uint32_t kMetaMagic = 0x5A464A31;  // "ZFJ1"
constexpr std::uint8_t kRecFile = 1;
constexpr std::uint8_t kRecDelete = 2;
constexpr std::uint8_t kRecCheckpoint = 3;
constexpr std::uint8_t kRecBatch = 4;  // Concatenated (type u8 | len u32 | payload) records.
// magic(4) + type(1) + seq(8) + total(4) + part(2) + parts(2) + payload_len(4)
constexpr std::uint32_t kMetaHeaderBytes = 25;

void PutU8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }
void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

// Bounds-checked little-endian reader.
class Cursor {
 public:
  explicit Cursor(std::span<const std::uint8_t> data) : data_(data) {}

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }

  std::uint8_t U8() { return static_cast<std::uint8_t>(Bytes(1)); }
  std::uint16_t U16() { return static_cast<std::uint16_t>(Bytes(2)); }
  std::uint32_t U32() { return static_cast<std::uint32_t>(Bytes(4)); }
  std::uint64_t U64() { return Bytes(8); }

  std::string String(std::size_t len) {
    if (!ok_ || remaining() < len) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }

 private:
  std::uint64_t Bytes(int n) {
    if (!ok_ || remaining() < static_cast<std::size_t>(n)) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += static_cast<std::size_t>(n);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

const char* LifetimeName(Lifetime hint) {
  switch (hint) {
    case Lifetime::kNone:
      return "none";
    case Lifetime::kShort:
      return "short";
    case Lifetime::kMedium:
      return "medium";
    case Lifetime::kLong:
      return "long";
    case Lifetime::kExtreme:
      return "extreme";
  }
  return "unknown";
}

ZoneFileSystem::ZoneFileSystem(ZnsDevice* device, const ZoneFileConfig& config)
    : device_(device),
      config_(config),
      scheduler_(config.sched),
      page_size_(device->page_size()),
      zone_pages_(device->zone_size_pages()),
      frontier_(kLifetimeClasses, kNoZone),
      zone_live_pages_(device->num_zones(), 0) {}

Result<std::unique_ptr<ZoneFileSystem>> ZoneFileSystem::Format(ZnsDevice* device,
                                                               const ZoneFileConfig& config,
                                                               SimTime now) {
  if (device->num_zones() < 8) {
    return Status(ErrorCode::kInvalidArgument, "zonefile needs at least 8 zones");
  }
  auto fs = std::unique_ptr<ZoneFileSystem>(new ZoneFileSystem(device, config));
  // Wipe the device.
  for (std::uint32_t z = 0; z < device->num_zones(); ++z) {
    Result<SimTime> reset = device->ResetZone(ZoneId{z}, now);
    if (!reset.ok() && reset.code() != ErrorCode::kZoneOffline) {
      return reset.status();
    }
  }
  for (std::uint32_t z = device->num_zones(); z > kFirstDataZone; --z) {
    if (device->zone(ZoneId{z - 1}).state == ZoneState::kEmpty) {
      fs->free_zones_.push_back(z - 1);
    }
  }
  // Initial empty checkpoint so Mount always finds one.
  const std::vector<std::uint8_t> ckpt = fs->SerializeCheckpoint();
  Result<SimTime> written = fs->WriteMetaBlob(kRecCheckpoint, ckpt, now);
  if (!written.ok()) {
    return written.status();
  }
  return fs;
}

ZoneFileSystem::FileMeta* ZoneFileSystem::Find(std::string_view name) {
  auto it = names_.find(name);
  if (it == names_.end()) {
    return nullptr;
  }
  return &files_.at(it->second);
}

const ZoneFileSystem::FileMeta* ZoneFileSystem::Find(std::string_view name) const {
  auto it = names_.find(name);
  if (it == names_.end()) {
    return nullptr;
  }
  return &files_.at(it->second);
}

double ZoneFileSystem::FreeFraction() const {
  const std::uint32_t data_zones = device_->num_zones() - kFirstDataZone;
  return static_cast<double>(free_zones_.size()) / static_cast<double>(data_zones);
}

bool ZoneFileSystem::IsFrontier(std::uint32_t zone_index) const {
  return std::find(frontier_.begin(), frontier_.end(), zone_index) != frontier_.end();
}

Result<std::uint32_t> ZoneFileSystem::AllocateZone(SimTime now) {
  // Mandatory compaction when free zones are critically low (not while already compacting:
  // the spare reserve guarantees relocation targets).
  if (!in_gc_ && scheduler_.Critical(FreeFraction())) {
    SimTime t = now;
    while (scheduler_.Critical(FreeFraction())) {
      Result<SimTime> done = GcRunToCompletion(t, /*critical=*/true);
      if (!done.ok()) {
        break;
      }
      t = done.value();
    }
  }
  while (!free_zones_.empty()) {
    const std::uint32_t z = free_zones_.back();
    free_zones_.pop_back();
    const ZoneDescriptor d = device_->zone(ZoneId{z});
    if (d.state == ZoneState::kEmpty && d.capacity_pages > 0) {
      return z;
    }
  }
  return Status(ErrorCode::kNoFreeBlocks, "zonefile out of free zones");
}

Result<std::uint32_t> ZoneFileSystem::FrontierFor(Lifetime hint, SimTime now) {
  const std::size_t idx = static_cast<std::size_t>(hint);
  auto writable = [this](std::uint32_t zone_index) {
    const ZoneDescriptor d = device_->zone(ZoneId{zone_index});
    return d.state != ZoneState::kFull && d.state != ZoneState::kOffline &&
           d.write_pointer < d.capacity_pages;
  };
  if (frontier_[idx] != kNoZone) {
    if (writable(frontier_[idx])) {
      return frontier_[idx];
    }
    frontier_[idx] = kNoZone;
  }
  Result<std::uint32_t> z = AllocateZone(now);
  if (!z.ok()) {
    return z;
  }
  // AllocateZone may have run forced compaction, whose relocation path can itself install a
  // frontier for this class. Never overwrite a writable slot (that would orphan an open,
  // partially-written zone); hand the surplus zone back instead.
  if (frontier_[idx] != kNoZone && writable(frontier_[idx])) {
    free_zones_.push_back(z.value());
    return frontier_[idx];
  }
  frontier_[idx] = z.value();
  return frontier_[idx];
}

Result<SimTime> ZoneFileSystem::FlushTailPage(FileMeta& file, SimTime now, bool pad) {
  assert(pad ? !file.tail.empty() : file.tail.size() >= page_size_);
  const std::uint64_t bytes = pad ? file.tail.size() : page_size_;
  // A padded flush programs a full page for a partial tail: attribute it to kPadding (scope
  // is a no-op for the common full-page flush).
  WriteProvenance::CauseScope cause(pad ? ProvenanceOf(telemetry_) : nullptr,
                                    WriteCause::kPadding, StackLayer::kZoneFs);

  Result<std::uint32_t> frontier = FrontierFor(file.hint, now);
  if (!frontier.ok()) {
    return frontier.status();
  }
  const std::uint32_t zone = frontier.value();
  const ZoneDescriptor d = device_->zone(ZoneId{zone});
  const std::uint64_t dev_lba = (d.start_lba + d.write_pointer).value();

  std::vector<std::uint8_t> page(page_size_, 0);
  std::memcpy(page.data(), file.tail.data(), static_cast<std::size_t>(bytes));
  Result<SimTime> done = device_->Write(ZoneId{zone}, d.write_pointer, 1, now, page);
  if (!done.ok()) {
    return done;
  }
  file.tail.erase(file.tail.begin(), file.tail.begin() + static_cast<std::ptrdiff_t>(bytes));

  // Extend the previous extent when physically contiguous, hole-free, and within the same
  // zone (an extent crossing a zone boundary would break per-zone live accounting — adjacent
  // zones are adjacent in LBA space).
  const bool audit = audit_files_ != nullptr && audit_files_->armed();
  if (!file.extents.empty()) {
    Extent& last = file.extents.back();
    if (last.dev_lba + last.pages == dev_lba &&
        last.dev_lba / zone_pages_ == dev_lba / zone_pages_ &&
        last.bytes == static_cast<std::uint64_t>(last.pages) * page_size_) {
      const std::uint64_t pre = audit ? ExtentEntryHash(file.id, last) : 0;
      last.pages += 1;
      last.bytes += bytes;
      zone_live_pages_[zone]++;
      stats_.data_pages_flushed++;
      if (audit) {
        audit_files_->Replace(done.value(), pre, ExtentEntryHash(file.id, last));
      }
      return done;
    }
  }
  file.extents.push_back(Extent{dev_lba, 1, bytes});
  zone_live_pages_[zone]++;
  stats_.data_pages_flushed++;
  if (audit) {
    audit_files_->Insert(done.value(), ExtentEntryHash(file.id, file.extents.back()));
  }
  return done;
}

Result<SimTime> ZoneFileSystem::Create(std::string_view name, Lifetime hint, SimTime now) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kZoneFile, ProfOp::kOther);
  if (Find(name) != nullptr) {
    return ErrorCode::kAlreadyExists;
  }
  FileMeta file;
  file.id = next_file_id_++;
  file.name = std::string(name);
  file.hint = hint;
  const std::uint32_t id = file.id;
  names_.emplace(file.name, id);
  files_.emplace(id, std::move(file));
  stats_.files_created++;
  if (audit_files_ != nullptr && audit_files_->armed()) {
    audit_files_->Insert(now, FileEntryHash(files_.at(id)));
  }
  if (telemetry_ != nullptr) {
    telemetry_->events.Append(now, TimelineEventType::kFileLifecycle, metric_prefix_,
                              "create " + std::string(name), id);
  }
  return WriteMetaBlob(kRecFile, SerializeFileRecord(files_.at(id)), now);
}

Result<SimTime> ZoneFileSystem::Append(std::string_view name,
                                       std::span<const std::uint8_t> data, SimTime now) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kZoneFile, ProfOp::kAppend);
  FileMeta* file = Find(name);
  if (file == nullptr) {
    return ErrorCode::kNotFound;
  }
  Tracer::Span span;
  if (telemetry_ != nullptr) {
    span = telemetry_->tracer.Start(metric_prefix_ + ".append", now);
  }
  SimTime done = now;
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::size_t want = page_size_ - file->tail.size();
    const std::size_t take = std::min(want, data.size() - consumed);
    file->tail.insert(file->tail.end(), data.begin() + static_cast<std::ptrdiff_t>(consumed),
                      data.begin() + static_cast<std::ptrdiff_t>(consumed + take));
    consumed += take;
    // Accounted incrementally so a failed flush leaves size == extents + tail (consistent).
    file->size += take;
    stats_.bytes_appended += take;
    if (provenance_ingress_ != nullptr) {
      *provenance_ingress_ += Bytes{take};
    }
    if (file->tail.size() >= page_size_) {
      Result<SimTime> flushed = FlushTailPage(*file, done, /*pad=*/false);
      if (!flushed.ok()) {
        return flushed;
      }
      done = flushed.value();
    }
  }
  if (telemetry_ != nullptr) {
    telemetry_->timeline.AdvanceGroup(sampler_group_, done);
  }
  span.End(done);
  return done;
}

Result<SimTime> ZoneFileSystem::Read(std::string_view name, std::uint64_t offset,
                                     std::span<std::uint8_t> out, SimTime now) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kZoneFile, ProfOp::kRead);
  const FileMeta* file = Find(name);
  if (file == nullptr) {
    return ErrorCode::kNotFound;
  }
  if (offset + out.size() > file->size) {
    return ErrorCode::kOutOfRange;
  }
  stats_.bytes_read += out.size();
  Tracer::Span span;
  if (telemetry_ != nullptr) {
    span = telemetry_->tracer.Start(metric_prefix_ + ".read", now);
  }

  SimTime done_all = now;
  std::uint64_t cur = offset;       // Position within the remaining extent walk.
  std::size_t out_pos = 0;
  std::vector<std::uint8_t> page(page_size_);
  for (const Extent& ext : file->extents) {
    if (out_pos == out.size()) {
      break;
    }
    if (cur >= ext.bytes) {
      cur -= ext.bytes;
      continue;
    }
    while (cur < ext.bytes && out_pos < out.size()) {
      const std::uint64_t page_index = cur / page_size_;
      const std::uint64_t byte_in_page = cur % page_size_;
      const std::uint64_t chunk = std::min<std::uint64_t>(
          {page_size_ - byte_in_page, ext.bytes - cur, out.size() - out_pos});
      Result<SimTime> done = device_->Read(Lba{ext.dev_lba + page_index}, 1, now, page);
      if (!done.ok()) {
        return done;
      }
      done_all = std::max(done_all, done.value());
      std::memcpy(out.data() + out_pos, page.data() + byte_in_page,
                  static_cast<std::size_t>(chunk));
      out_pos += static_cast<std::size_t>(chunk);
      cur += chunk;
    }
    cur = 0;
  }
  // Whatever remains lives in the in-memory tail.
  if (out_pos < out.size()) {
    const std::size_t chunk = out.size() - out_pos;
    assert(cur + chunk <= file->tail.size());
    std::memcpy(out.data() + out_pos, file->tail.data() + cur, chunk);
  }
  if (telemetry_ != nullptr) {
    telemetry_->timeline.AdvanceGroup(sampler_group_, done_all);
  }
  span.End(done_all);
  return done_all;
}

Result<SimTime> ZoneFileSystem::Sync(std::string_view name, SimTime now) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kZoneFile, ProfOp::kFlush);
  FileMeta* file = Find(name);
  if (file == nullptr) {
    return ErrorCode::kNotFound;
  }
  SimTime t = now;
  if (!file->tail.empty()) {
    Result<SimTime> flushed = FlushTailPage(*file, t, /*pad=*/true);
    if (!flushed.ok()) {
      return flushed;
    }
    t = flushed.value();
  }
  {
    const bool audit = audit_files_ != nullptr && audit_files_->armed();
    const std::uint64_t pre = audit ? FileEntryHash(*file) : 0;
    file->synced_size = file->size;
    if (audit) {
      audit_files_->Replace(t, pre, FileEntryHash(*file));
    }
  }
  if (telemetry_ != nullptr) {
    telemetry_->events.Append(t, TimelineEventType::kFileLifecycle, metric_prefix_,
                              "seal " + std::string(name), file->id, file->size);
  }
  // ZenFS-style early finish: a nearly-full frontier is sealed at file boundaries so the next
  // file gets a fresh zone (see ZoneFileConfig::finish_remainder_pages).
  if (config_.finish_remainder_pages > 0) {
    std::uint32_t& frontier = frontier_[static_cast<std::size_t>(file->hint)];
    if (frontier != kNoZone) {
      const ZoneDescriptor d = device_->zone(ZoneId{frontier});
      if (d.state != ZoneState::kFull && d.state != ZoneState::kOffline &&
          d.write_pointer > 0 &&
          d.capacity_pages - d.write_pointer <= config_.finish_remainder_pages) {
        Result<SimTime> finished = device_->FinishZone(ZoneId{frontier}, t);
        if (finished.ok()) {
          t = finished.value();
        }
        frontier = kNoZone;
      }
    }
  }
  return WriteMetaBlob(kRecFile, SerializeFileRecord(*file), t);
}

Result<SimTime> ZoneFileSystem::Delete(std::string_view name, SimTime now) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kZoneFile, ProfOp::kOther);
  FileMeta* file = Find(name);
  if (file == nullptr) {
    return ErrorCode::kNotFound;
  }
  const bool audit = audit_files_ != nullptr && audit_files_->armed();
  for (const Extent& ext : file->extents) {
    const std::uint32_t zone = static_cast<std::uint32_t>(ext.dev_lba / zone_pages_);
    assert(zone_live_pages_[zone] >= ext.pages);
    zone_live_pages_[zone] -= ext.pages;
    if (audit) {
      audit_files_->Remove(now, ExtentEntryHash(file->id, ext));
    }
  }
  if (audit) {
    audit_files_->Remove(now, FileEntryHash(*file));
  }
  std::vector<std::uint8_t> blob;
  PutU32(blob, file->id);
  const std::uint32_t id = file->id;
  names_.erase(file->name);
  files_.erase(id);
  stats_.files_deleted++;
  if (telemetry_ != nullptr) {
    telemetry_->events.Append(now, TimelineEventType::kFileLifecycle, metric_prefix_,
                              "delete " + std::string(name), id);
  }
  return WriteMetaBlob(kRecDelete, blob, now);
}

bool ZoneFileSystem::Exists(std::string_view name) const { return Find(name) != nullptr; }

Result<std::uint64_t> ZoneFileSystem::FileSize(std::string_view name) const {
  const FileMeta* file = Find(name);
  if (file == nullptr) {
    return ErrorCode::kNotFound;
  }
  return file->size;
}

Result<Lifetime> ZoneFileSystem::FileHint(std::string_view name) const {
  const FileMeta* file = Find(name);
  if (file == nullptr) {
    return ErrorCode::kNotFound;
  }
  return file->hint;
}

std::vector<std::string> ZoneFileSystem::ListFiles() const {
  std::vector<std::string> out;
  out.reserve(names_.size());
  for (const auto& [name, id] : names_) {
    out.push_back(name);
  }
  return out;
}

std::uint32_t ZoneFileSystem::PickVictim(bool critical) const {
  std::uint32_t best = kNoZone;
  std::uint32_t best_live = std::numeric_limits<std::uint32_t>::max();
  for (std::uint32_t z = kFirstDataZone; z < device_->num_zones(); ++z) {
    if (IsFrontier(z)) {
      continue;
    }
    const ZoneDescriptor d = device_->zone(ZoneId{z});
    if (d.state != ZoneState::kFull) {
      continue;
    }
    if (zone_live_pages_[z] >= d.capacity_pages) {
      continue;  // Fully live: compacting it reclaims nothing.
    }
    if (!critical &&
        static_cast<double>(zone_live_pages_[z]) >
            config_.gc_max_live_fraction * static_cast<double>(d.capacity_pages)) {
      continue;  // Too live for opportunistic compaction to pay off.
    }
    if (zone_live_pages_[z] < best_live) {
      best_live = zone_live_pages_[z];
      best = z;
    }
  }
  return best;
}

Status ZoneFileSystem::StartGcVictim(SimTime now, bool critical) {
  // Frontier slots are cleared lazily on the write path; do it here too so sealed zones are
  // eligible victims even when their lifetime class has gone quiet.
  for (std::uint32_t& frontier : frontier_) {
    if (frontier == kNoZone) {
      continue;
    }
    const ZoneState s = device_->zone(ZoneId{frontier}).state;
    if (s == ZoneState::kFull || s == ZoneState::kOffline) {
      frontier = kNoZone;
    }
  }
  // Defensive sweep: any open/closed data zone that is not a current frontier is a stray
  // (e.g. after a crash-recovery mount). Seal it so its dead space becomes reclaimable.
  for (std::uint32_t z = kFirstDataZone; z < device_->num_zones(); ++z) {
    const ZoneState s = device_->zone(ZoneId{z}).state;
    if ((s == ZoneState::kImplicitOpen || s == ZoneState::kExplicitOpen ||
         s == ZoneState::kClosed) &&
        !IsFrontier(z)) {
      (void)device_->FinishZone(ZoneId{z}, now);
    }
  }
  const std::uint32_t victim = PickVictim(critical);
  if (victim == kNoZone) {
    return Status(ErrorCode::kNoFreeBlocks, "no reclaimable zone");
  }
  gc_.victim = victim;
  gc_.items.clear();
  gc_.next = 0;
  gc_.touched_files.clear();
  if (telemetry_ != nullptr) {
    gc_cycle_copied_base_ = stats_.gc_pages_copied;
    telemetry_->events.Append(now, TimelineEventType::kGcVictim, metric_prefix_,
                              "victim zone " + std::to_string(victim) + " live " +
                                  std::to_string(zone_live_pages_[victim]) +
                                  (critical ? " critical" : ""),
                              victim, zone_live_pages_[victim]);
  }
  const ZoneDescriptor vd = device_->zone(ZoneId{victim});
  for (const auto& [id, file] : files_) {
    for (const Extent& ext : file.extents) {
      if (ext.dev_lba >= vd.start_lba.value() &&
          ext.dev_lba < vd.start_lba.value() + vd.capacity_pages) {
        gc_.items.push_back(GcWorkItem{id, ext.dev_lba, ext.pages, ext.bytes});
      }
    }
  }
  return Status::Ok();
}

Result<SimTime> ZoneFileSystem::GcStep(SimTime now, bool critical, std::uint32_t max_pages) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_),
                                 ProfSubsystem::kZoneFile, ProfOp::kCompaction);
  // Relocation writes, the compaction batch journal, and the victim reset are filesystem
  // zone-compaction work, not application data.
  WriteProvenance::CauseScope cause(ProvenanceOf(telemetry_), WriteCause::kZoneCompaction,
                                    StackLayer::kZoneFs);
  if (gc_.victim == kNoZone) {
    BLOCKHEAD_RETURN_IF_ERROR(StartGcVictim(now, critical));
  }
  in_gc_ = true;
  SimTime t = now;
  std::uint32_t budget = max_pages;
  const std::uint64_t copied_before_step = stats_.gc_pages_copied;
  std::vector<std::uint8_t> page(page_size_);

  while (budget > 0 && gc_.next < gc_.items.size()) {
    GcWorkItem& item = gc_.items[gc_.next];
    auto file_it = files_.find(item.file_id);
    if (file_it == files_.end()) {
      gc_.next++;  // Deleted mid-compaction; its live pages were already released.
      continue;
    }
    FileMeta& file = file_it->second;
    // Locate the (possibly already split) extent this item tracks.
    std::size_t idx = 0;
    for (; idx < file.extents.size(); ++idx) {
      if (file.extents[idx].dev_lba == item.dev_lba && file.extents[idx].pages == item.pages) {
        break;
      }
    }
    if (idx == file.extents.size()) {
      gc_.next++;
      continue;
    }

    Result<std::uint32_t> fz = FrontierFor(file.hint, t);
    if (!fz.ok()) {
      in_gc_ = false;
      return fz.status();
    }
    const std::uint32_t dst_zone = fz.value();
    const ZoneDescriptor dd = device_->zone(ZoneId{dst_zone});
    const std::uint32_t room = static_cast<std::uint32_t>(dd.capacity_pages - dd.write_pointer);
    const std::uint32_t chunk = std::min({item.pages, room, budget});
    const std::uint64_t dst_lba = (dd.start_lba + dd.write_pointer).value();
    const std::uint64_t src_lba = item.dev_lba;
    if (config_.use_simple_copy) {
      const CopyRange range{Lba{src_lba}, chunk};
      Result<SimTime> done =
          device_->SimpleCopy(std::span<const CopyRange>(&range, 1), ZoneId{dst_zone}, t);
      if (!done.ok()) {
        in_gc_ = false;
        return done;
      }
      t = std::max(t, done.value());
    } else {
      for (std::uint32_t p = 0; p < chunk; ++p) {
        Result<SimTime> r = device_->Read(Lba{src_lba + p}, 1, t, page);
        if (!r.ok()) {
          in_gc_ = false;
          return r;
        }
        const ZoneDescriptor cur = device_->zone(ZoneId{dst_zone});
        Result<SimTime> w = device_->Write(ZoneId{dst_zone}, cur.write_pointer, 1, r.value(), page);
        if (!w.ok()) {
          in_gc_ = false;
          return w;
        }
        t = std::max(t, w.value());
      }
    }
    const std::uint64_t chunk_bytes = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(chunk) * page_size_, item.bytes);
    // Splice the relocated chunk (and any remainder) in place of the tracked extent.
    const bool audit = audit_files_ != nullptr && audit_files_->armed();
    const std::uint64_t pre = audit ? ExtentEntryHash(file.id, file.extents[idx]) : 0;
    file.extents[idx] = Extent{dst_lba, chunk, chunk_bytes};
    if (chunk < item.pages) {
      file.extents.insert(file.extents.begin() + static_cast<std::ptrdiff_t>(idx) + 1,
                          Extent{item.dev_lba + chunk, item.pages - chunk,
                                 item.bytes - chunk_bytes});
      if (audit) {
        audit_files_->Insert(t, ExtentEntryHash(file.id, file.extents[idx + 1]));
      }
    }
    if (audit) {
      audit_files_->Replace(t, pre, ExtentEntryHash(file.id, file.extents[idx]));
    }
    zone_live_pages_[dst_zone] += chunk;
    zone_live_pages_[gc_.victim] -= chunk;
    stats_.gc_pages_copied += chunk;
    budget -= chunk;
    if (std::find(gc_.touched_files.begin(), gc_.touched_files.end(), item.file_id) ==
        gc_.touched_files.end()) {
      gc_.touched_files.push_back(item.file_id);
    }
    if (chunk == item.pages) {
      gc_.next++;
    } else {
      item.dev_lba += chunk;
      item.pages -= chunk;
      item.bytes -= chunk_bytes;
    }
  }

  if (telemetry_ != nullptr && stats_.gc_pages_copied > copied_before_step) {
    telemetry_->timeline.RecordMaintenance(metric_prefix_ + ".gc", "gc_step", now, t);
  }

  if (gc_.next < gc_.items.size()) {
    in_gc_ = false;
    return t;  // More steps needed; the victim resumes on the next call.
  }

  // Victim drained: journal the rewritten extent maps (one batched blob) before destroying
  // the old copies, then reset.
  assert(zone_live_pages_[gc_.victim] == 0);
  if (!gc_.touched_files.empty()) {
    std::vector<std::uint8_t> batch;
    for (const std::uint32_t id : gc_.touched_files) {
      auto it = files_.find(id);
      if (it == files_.end()) {
        continue;
      }
      const std::vector<std::uint8_t> rec = SerializeFileRecord(it->second);
      PutU8(batch, kRecFile);
      PutU32(batch, static_cast<std::uint32_t>(rec.size()));
      batch.insert(batch.end(), rec.begin(), rec.end());
    }
    Result<SimTime> logged = WriteMetaBlob(kRecBatch, batch, t);
    if (!logged.ok()) {
      in_gc_ = false;
      return logged;
    }
    t = logged.value();
  }
  Result<SimTime> reset = device_->ResetZone(ZoneId{gc_.victim}, t);
  if (!reset.ok()) {
    in_gc_ = false;
    return reset;
  }
  t = reset.value();
  if (device_->zone(ZoneId{gc_.victim}).state != ZoneState::kOffline) {
    free_zones_.push_back(gc_.victim);
  }
  stats_.gc_cycles++;
  stats_.zones_reclaimed++;
  scheduler_.NoteRun(now);
  if (telemetry_ != nullptr) {
    telemetry_->events.Append(
        t, TimelineEventType::kGcCycle, metric_prefix_,
        "cycle done zone " + std::to_string(gc_.victim) + " copied " +
            std::to_string(stats_.gc_pages_copied - gc_cycle_copied_base_),
        gc_.victim, stats_.gc_pages_copied - gc_cycle_copied_base_);
    telemetry_->timeline.AdvanceGroup(sampler_group_, t);
  }
  gc_.victim = kNoZone;
  gc_.items.clear();
  gc_.touched_files.clear();
  in_gc_ = false;
  return t;
}

Result<SimTime> ZoneFileSystem::GcRunToCompletion(SimTime now, bool critical) {
  return GcStep(now, critical, std::numeric_limits<std::uint32_t>::max());
}

std::uint32_t ZoneFileSystem::Pump(SimTime now, bool reads_pending, std::uint32_t max_cycles) {
  std::uint32_t ran = 0;
  while (ran < max_cycles) {
    const bool pending = gc_.victim != kNoZone;
    if (!pending && !scheduler_.ShouldRun(FreeFraction(), reads_pending, now)) {
      break;
    }
    Result<SimTime> done =
        GcStep(now, scheduler_.Critical(FreeFraction()), config_.gc_step_pages);
    if (!done.ok()) {
      break;
    }
    now = done.value();
    ++ran;
  }
  return ran;
}

ZoneFileSystem::~ZoneFileSystem() { AttachTelemetry(nullptr); }

void ZoneFileSystem::AttachTelemetry(Telemetry* telemetry, std::string_view prefix) {
  if (telemetry_ != nullptr) {
    PublishMetrics();
    telemetry_->registry.RemoveProvider(metric_prefix_);
    telemetry_->timeline.RemoveSamplerGroup(metric_prefix_);
    scheduler_.AttachEvents(nullptr, "");
    sampler_group_ = -1;
  }
  telemetry_ = telemetry;
  metric_prefix_ = std::string(prefix);
  if (telemetry_ == nullptr) {
    provenance_ingress_ = nullptr;
    audit_files_ = nullptr;
    return;
  }
  telemetry_->registry.AddProvider(metric_prefix_, [this] { PublishMetrics(); });
  audit_files_ = telemetry_->audit.Register(metric_prefix_ + ".extents");
  provenance_ingress_ = telemetry_->provenance.RegisterDomain(metric_prefix_);
  scheduler_.AttachEvents(&telemetry_->events, metric_prefix_ + ".sched");
  sampler_group_ = telemetry_->timeline.AddSamplerGroup(metric_prefix_);
  telemetry_->timeline.AddSampler(sampler_group_, metric_prefix_ + ".free_fraction",
                                  Timeline::SampleKind::kInstant,
                                  [this](SimTime) { return FreeFraction(); });
  telemetry_->timeline.AddSampler(sampler_group_, metric_prefix_ + ".write_amplification",
                                  Timeline::SampleKind::kInstant,
                                  [this](SimTime) { return EndToEndWriteAmplification(); });
}

void ZoneFileSystem::PublishMetrics() {
  MetricRegistry& reg = telemetry_->registry;
  const std::string& p = metric_prefix_;
  reg.GetCounter(p + ".bytes_appended")->Set(stats_.bytes_appended);
  reg.GetCounter(p + ".bytes_read")->Set(stats_.bytes_read);
  reg.GetCounter(p + ".data_pages_flushed")->Set(stats_.data_pages_flushed);
  reg.GetCounter(p + ".meta_pages_written")->Set(stats_.meta_pages_written);
  reg.GetCounter(p + ".checkpoints")->Set(stats_.checkpoints);
  reg.GetCounter(p + ".files_created")->Set(stats_.files_created);
  reg.GetCounter(p + ".files_deleted")->Set(stats_.files_deleted);
  reg.GetCounter(p + ".gc.cycles")->Set(stats_.gc_cycles);
  reg.GetCounter(p + ".gc.pages_copied")->Set(stats_.gc_pages_copied);
  reg.GetCounter(p + ".gc.zones_reclaimed")->Set(stats_.zones_reclaimed);
  const GcSchedStats& sched = scheduler_.stats();
  reg.GetCounter(p + ".sched.decisions")->Set(sched.decisions);
  reg.GetCounter(p + ".sched.allowed")->Set(sched.allowed);
  reg.GetCounter(p + ".sched.critical_overrides")->Set(sched.critical_overrides);
  reg.GetCounter(p + ".sched.denied")->Set(sched.denied);
  reg.GetCounter(p + ".sched.runs")->Set(sched.runs);
  reg.GetGauge(p + ".free_zones")->Set(static_cast<double>(FreeZones()));
  reg.GetGauge(p + ".free_fraction")->Set(FreeFraction());
  reg.GetGauge(p + ".write_amplification")->Set(EndToEndWriteAmplification());
}

double ZoneFileSystem::EndToEndWriteAmplification() const {
  if (stats_.bytes_appended == 0) {
    return 1.0;
  }
  const std::uint64_t physical_bytes =
      device_->flash().stats().total_pages_programmed() * static_cast<std::uint64_t>(page_size_);
  return static_cast<double>(physical_bytes) / static_cast<double>(stats_.bytes_appended);
}

// --- Metadata journal ---

std::vector<std::uint8_t> ZoneFileSystem::SerializeFileRecord(const FileMeta& file) const {
  std::vector<std::uint8_t> blob;
  PutU32(blob, file.id);
  PutU8(blob, static_cast<std::uint8_t>(file.hint));
  PutU16(blob, static_cast<std::uint16_t>(file.name.size()));
  blob.insert(blob.end(), file.name.begin(), file.name.end());
  PutU64(blob, file.synced_size);
  PutU32(blob, static_cast<std::uint32_t>(file.extents.size()));
  for (const Extent& ext : file.extents) {
    PutU64(blob, ext.dev_lba);
    PutU32(blob, ext.pages);
    PutU64(blob, ext.bytes);
  }
  return blob;
}

std::vector<std::uint8_t> ZoneFileSystem::SerializeCheckpoint() const {
  std::vector<std::uint8_t> blob;
  PutU32(blob, next_file_id_);
  PutU32(blob, static_cast<std::uint32_t>(files_.size()));
  for (const auto& [id, file] : files_) {
    const std::vector<std::uint8_t> rec = SerializeFileRecord(file);
    PutU32(blob, static_cast<std::uint32_t>(rec.size()));
    blob.insert(blob.end(), rec.begin(), rec.end());
  }
  return blob;
}

Status ZoneFileSystem::ApplyRecord(std::uint8_t type, std::span<const std::uint8_t> payload) {
  Cursor c(payload);
  if (type == kRecBatch) {
    while (c.ok() && c.remaining() > 0) {
      const std::uint8_t sub_type = c.U8();
      const std::uint32_t len = c.U32();
      const std::string sub = c.String(len);
      if (!c.ok()) {
        return Status(ErrorCode::kCorruption, "bad batch record");
      }
      BLOCKHEAD_RETURN_IF_ERROR(ApplyRecord(
          sub_type, std::span<const std::uint8_t>(
                        reinterpret_cast<const std::uint8_t*>(sub.data()), sub.size())));
    }
    return c.ok() ? Status::Ok() : Status(ErrorCode::kCorruption, "bad batch record");
  }
  if (type == kRecDelete) {
    const std::uint32_t id = c.U32();
    if (!c.ok()) {
      return Status(ErrorCode::kCorruption, "bad delete record");
    }
    auto it = files_.find(id);
    if (it != files_.end()) {
      names_.erase(it->second.name);
      files_.erase(it);
    }
    return Status::Ok();
  }
  if (type != kRecFile) {
    return Status(ErrorCode::kCorruption, "unknown record type");
  }
  FileMeta file;
  file.id = c.U32();
  file.hint = static_cast<Lifetime>(c.U8());
  const std::uint16_t name_len = c.U16();
  file.name = c.String(name_len);
  file.synced_size = c.U64();
  file.size = file.synced_size;  // Unsynced tail data is lost by definition.
  const std::uint32_t extent_count = c.U32();
  for (std::uint32_t i = 0; i < extent_count && c.ok(); ++i) {
    Extent ext;
    ext.dev_lba = c.U64();
    ext.pages = c.U32();
    ext.bytes = c.U64();
    file.extents.push_back(ext);
  }
  if (!c.ok()) {
    return Status(ErrorCode::kCorruption, "bad file record");
  }
  // Zone compaction journals the full extent map, which may cover data appended after the
  // last Sync; on replay only the synced prefix survives (the crash rolled the rest back), so
  // trim the extents to synced_size. Pages beyond the trim become orphans for GC.
  std::uint64_t acc = 0;
  std::size_t keep = 0;
  for (; keep < file.extents.size() && acc < file.synced_size; ++keep) {
    Extent& ext = file.extents[keep];
    if (acc + ext.bytes > file.synced_size) {
      ext.bytes = file.synced_size - acc;
      ext.pages = static_cast<std::uint32_t>((ext.bytes + page_size_ - 1) / page_size_);
    }
    acc += ext.bytes;
  }
  file.extents.resize(keep);
  // Replace any earlier version of this file.
  auto it = files_.find(file.id);
  if (it != files_.end()) {
    names_.erase(it->second.name);
    files_.erase(it);
  }
  const std::uint32_t id = file.id;
  names_[file.name] = id;
  next_file_id_ = std::max(next_file_id_, id + 1);
  files_.emplace(id, std::move(file));
  return Status::Ok();
}

Result<SimTime> ZoneFileSystem::WriteMetaBlob(std::uint8_t type,
                                              std::span<const std::uint8_t> blob, SimTime now) {
  const std::uint32_t payload_cap = page_size_ - kMetaHeaderBytes;
  const std::uint32_t parts =
      std::max<std::uint32_t>(1, static_cast<std::uint32_t>(
                                     (blob.size() + payload_cap - 1) / payload_cap));

  // Swap meta zones (writing a fresh checkpoint) if this blob would not fit.
  const ZoneDescriptor md = device_->zone(ZoneId{meta_zone_});
  if (type != kRecCheckpoint && md.write_pointer + parts > md.capacity_pages) {
    Result<SimTime> swapped = WriteCheckpointAndSwap(now);
    if (!swapped.ok()) {
      return swapped;
    }
    now = swapped.value();
  }

  SimTime t = now;
  std::vector<std::uint8_t> page(page_size_, 0);
  for (std::uint32_t part = 0; part < parts; ++part) {
    const std::size_t off = static_cast<std::size_t>(part) * payload_cap;
    const std::uint32_t len =
        static_cast<std::uint32_t>(std::min<std::size_t>(payload_cap, blob.size() - off));
    std::vector<std::uint8_t> header;
    header.reserve(kMetaHeaderBytes);
    PutU32(header, kMetaMagic);
    PutU8(header, type);
    PutU64(header, meta_seq_++);
    PutU32(header, static_cast<std::uint32_t>(blob.size()));
    PutU16(header, static_cast<std::uint16_t>(part));
    PutU16(header, static_cast<std::uint16_t>(parts));
    PutU32(header, len);
    std::fill(page.begin(), page.end(), 0);
    std::memcpy(page.data(), header.data(), header.size());
    if (len > 0) {
      std::memcpy(page.data() + kMetaHeaderBytes, blob.data() + off, len);
    }
    const ZoneDescriptor d = device_->zone(ZoneId{meta_zone_});
    if (d.write_pointer >= d.capacity_pages) {
      return Status(ErrorCode::kNoFreeBlocks, "metadata zone overflow");
    }
    Result<SimTime> done = device_->Write(ZoneId{meta_zone_}, d.write_pointer, 1, t, page);
    if (!done.ok()) {
      return done;
    }
    t = done.value();
    stats_.meta_pages_written++;
  }
  return t;
}

Result<SimTime> ZoneFileSystem::WriteCheckpointAndSwap(SimTime now) {
  const std::uint32_t old_zone = meta_zone_;
  const std::uint32_t new_zone = (meta_zone_ == kMetaZoneA) ? kMetaZoneB : kMetaZoneA;
  // The target must be clean.
  Result<SimTime> reset = device_->ResetZone(ZoneId{new_zone}, now);
  if (!reset.ok()) {
    return reset;
  }
  meta_zone_ = new_zone;
  Result<SimTime> written = WriteMetaBlob(kRecCheckpoint, SerializeCheckpoint(), reset.value());
  if (!written.ok()) {
    meta_zone_ = old_zone;
    return written;
  }
  stats_.checkpoints++;
  // Only after the new checkpoint is durable can the old journal be destroyed.
  return device_->ResetZone(ZoneId{old_zone}, written.value());
}

Status ZoneFileSystem::LoadFromZone(std::uint32_t meta_zone, SimTime now) {
  const ZoneDescriptor d = device_->zone(ZoneId{meta_zone});
  std::vector<std::uint8_t> page(page_size_);
  std::vector<std::uint8_t> blob;
  std::uint8_t blob_type = 0;
  std::uint32_t blob_total = 0;
  std::uint16_t expected_part = 0;
  bool saw_checkpoint = false;

  for (std::uint64_t p = 0; p < d.write_pointer; ++p) {
    Result<SimTime> r = device_->Read(Lba{d.start_lba + p}, 1, now, page);
    if (!r.ok()) {
      return r.status();
    }
    Cursor c(page);
    const std::uint32_t magic = c.U32();
    const std::uint8_t type = c.U8();
    (void)c.U64();  // seq
    const std::uint32_t total = c.U32();
    const std::uint16_t part = c.U16();
    const std::uint16_t parts = c.U16();
    const std::uint32_t len = c.U32();
    if (magic != kMetaMagic || !c.ok() || len > page_size_ - kMetaHeaderBytes) {
      break;  // Torn or unwritten page: stop replay here.
    }
    if (part != expected_part || (part > 0 && (type != blob_type || total != blob_total))) {
      break;  // Interrupted multi-part blob.
    }
    if (part == 0) {
      blob.clear();
      blob_type = type;
      blob_total = total;
    }
    blob.insert(blob.end(), page.begin() + kMetaHeaderBytes,
                page.begin() + kMetaHeaderBytes + len);
    if (part + 1 < parts) {
      expected_part = static_cast<std::uint16_t>(part + 1);
      continue;
    }
    expected_part = 0;
    if (blob.size() != blob_total) {
      break;
    }
    // A complete blob: apply it.
    if (blob_type == kRecCheckpoint) {
      Cursor ck(blob);
      next_file_id_ = ck.U32();
      const std::uint32_t count = ck.U32();
      for (std::uint32_t i = 0; i < count && ck.ok(); ++i) {
        const std::uint32_t rec_len = ck.U32();
        const std::string rec = ck.String(rec_len);
        BLOCKHEAD_RETURN_IF_ERROR(ApplyRecord(
            kRecFile, std::span<const std::uint8_t>(
                          reinterpret_cast<const std::uint8_t*>(rec.data()), rec.size())));
      }
      if (!ck.ok()) {
        return Status(ErrorCode::kCorruption, "bad checkpoint");
      }
      saw_checkpoint = true;
    } else {
      BLOCKHEAD_RETURN_IF_ERROR(ApplyRecord(blob_type, blob));
    }
  }
  if (!saw_checkpoint) {
    return Status(ErrorCode::kNotFound, "no checkpoint in metadata zone");
  }
  return Status::Ok();
}

Result<std::unique_ptr<ZoneFileSystem>> ZoneFileSystem::Mount(ZnsDevice* device,
                                                              const ZoneFileConfig& config,
                                                              SimTime now) {
  auto fs = std::unique_ptr<ZoneFileSystem>(new ZoneFileSystem(device, config));

  // Pick the metadata zone whose first page carries the newest checkpoint.
  std::uint64_t best_seq = 0;
  std::uint32_t chosen = kNoZone;
  std::vector<std::uint8_t> page(fs->page_size_);
  for (const std::uint32_t z : {kMetaZoneA, kMetaZoneB}) {
    if (device->zone(ZoneId{z}).write_pointer == 0) {
      continue;
    }
    Result<SimTime> r = device->Read(Lba{device->zone(ZoneId{z}).start_lba}, 1, now, page);
    if (!r.ok()) {
      continue;
    }
    Cursor c(page);
    const std::uint32_t magic = c.U32();
    const std::uint8_t type = c.U8();
    const std::uint64_t seq = c.U64();
    if (magic != kMetaMagic || type != kRecCheckpoint) {
      continue;
    }
    if (chosen == kNoZone || seq >= best_seq) {
      best_seq = seq;
      chosen = z;
    }
  }
  if (chosen == kNoZone) {
    return Status(ErrorCode::kNotFound, "device is not zonefile-formatted");
  }
  BLOCKHEAD_RETURN_IF_ERROR(fs->LoadFromZone(chosen, now));
  fs->meta_zone_ = chosen;
  fs->meta_seq_ = best_seq + device->zone(ZoneId{chosen}).write_pointer + 1;

  // Discard the stale metadata zone (possibly left over from a crash mid-swap).
  const std::uint32_t other = (chosen == kMetaZoneA) ? kMetaZoneB : kMetaZoneA;
  if (device->zone(ZoneId{other}).write_pointer > 0) {
    Result<SimTime> reset = device->ResetZone(ZoneId{other}, now);
    if (!reset.ok() && reset.code() != ErrorCode::kZoneOffline) {
      return reset.status();
    }
  }

  // Rebuild zone accounting and recover data zones: empty -> free; partially written (lost
  // frontiers) -> sealed so GC can reclaim the orphaned pages.
  for (const auto& [id, file] : fs->files_) {
    for (const Extent& ext : file.extents) {
      fs->zone_live_pages_[ext.dev_lba / fs->zone_pages_] += ext.pages;
    }
  }
  for (std::uint32_t z = device->num_zones(); z > kFirstDataZone; --z) {
    const std::uint32_t zone = z - 1;
    const ZoneDescriptor d = device->zone(ZoneId{zone});
    switch (d.state) {
      case ZoneState::kEmpty:
        fs->free_zones_.push_back(zone);
        break;
      case ZoneState::kImplicitOpen:
      case ZoneState::kExplicitOpen:
      case ZoneState::kClosed: {
        if (d.write_pointer == 0) {
          Result<SimTime> reset = device->ResetZone(ZoneId{zone}, now);
          if (reset.ok()) {
            fs->free_zones_.push_back(zone);
          }
        } else {
          (void)device->FinishZone(ZoneId{zone}, now);
        }
        break;
      }
      default:
        break;
    }
  }
  return fs;
}

Status ZoneFileSystem::CheckConsistency() const {
  std::vector<std::uint32_t> live(device_->num_zones(), 0);
  for (const auto& [id, file] : files_) {
    std::uint64_t extent_bytes = 0;
    for (const Extent& ext : file.extents) {
      const std::uint64_t zone = ext.dev_lba / zone_pages_;
      if (zone < kFirstDataZone || zone >= device_->num_zones()) {
        return Status(ErrorCode::kCorruption, "extent outside data zones");
      }
      if (ext.bytes > static_cast<std::uint64_t>(ext.pages) * page_size_) {
        return Status(ErrorCode::kCorruption, "extent bytes exceed pages");
      }
      live[zone] += ext.pages;
      extent_bytes += ext.bytes;
    }
    if (extent_bytes + file.tail.size() != file.size) {
      return Status(ErrorCode::kCorruption, "file size mismatch");
    }
  }
  for (std::uint32_t z = kFirstDataZone; z < device_->num_zones(); ++z) {
    if (live[z] != zone_live_pages_[z]) {
      return Status(ErrorCode::kCorruption, "zone live-page counter drift");
    }
  }
  return Status::Ok();
}

}  // namespace blockhead
