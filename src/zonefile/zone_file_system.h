// ZenFS-style zoned file backend (the role ZenFS/F2FS play in the paper's RocksDB-on-ZNS
// results, §2.4/§2.5): append-only files stored as extents inside zones, with
//
//   * lifetime-hint-driven zone selection (§4.1): files whose data is expected to expire
//     together are written to the same zones, so a whole zone usually dies at once and can be
//     reset without copying — the mechanism behind the paper's 5x -> ~1.2x LSM write-
//     amplification claim;
//   * host-scheduled zone compaction (GC) for zones that end up with a mix of live and dead
//     extents, using simple copy when available;
//   * a crash-consistent metadata journal: zones 0 and 1 alternate between a checkpoint and an
//     append-only record log, so the filesystem can be remounted after a crash with all synced
//     data intact.

#ifndef BLOCKHEAD_SRC_ZONEFILE_ZONE_FILE_SYSTEM_H_
#define BLOCKHEAD_SRC_ZONEFILE_ZONE_FILE_SYSTEM_H_

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/sched/gc_scheduler.h"
#include "src/util/status.h"
#include "src/util/types.h"
#include "src/zns/zns_device.h"

namespace blockhead {

// Write-lifetime hints, mirroring the kernel's WRITE_LIFE_* fcntl hints that ZenFS consumes.
enum class Lifetime : std::uint8_t {
  kNone = 0,
  kShort = 1,
  kMedium = 2,
  kLong = 3,
  kExtreme = 4,
};
inline constexpr std::uint32_t kLifetimeClasses = 5;

const char* LifetimeName(Lifetime hint);

struct ZoneFileConfig {
  // Copy surviving extents with the device simple-copy command during zone compaction.
  bool use_simple_copy = true;
  // If nonzero: when Sync completes a file and its class's write frontier has at most this
  // many pages left, finish the zone (accepting a little dead space) so the next file starts
  // in a fresh zone. This is ZenFS's discipline for zone-sized files — it keeps one file per
  // zone so zones expire wholesale.
  std::uint32_t finish_remainder_pages = 0;
  // Opportunistic (non-critical) compaction only touches zones at most this live: copying a
  // mostly-live zone costs more flash writes than the space it reclaims, and the relocated
  // fragments re-mix lifetimes. Critical (out-of-space) compaction ignores the threshold.
  double gc_max_live_fraction = 0.75;
  // Compaction is incremental: at most this many pages are relocated per Pump step, so
  // foreground reads interleave with reclamation instead of stalling behind a whole-zone copy
  // (§4.1: the host schedules GC around I/O — a knob no conventional SSD exposes).
  std::uint32_t gc_step_pages = 4;
  GcSchedulerConfig sched;
};

struct ZoneFileStats {
  std::uint64_t bytes_appended = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t data_pages_flushed = 0;
  std::uint64_t meta_pages_written = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t files_created = 0;
  std::uint64_t files_deleted = 0;
  std::uint64_t gc_cycles = 0;
  std::uint64_t gc_pages_copied = 0;
  std::uint64_t zones_reclaimed = 0;
};

class ZoneFileSystem {
 public:
  ~ZoneFileSystem();  // Publishes final metrics and unhooks from the registry if attached.

  // Initializes a fresh filesystem on `device` (erases any previous metadata). The device must
  // outlive the filesystem and must have at least 8 zones and >= kLifetimeClasses + 2 active
  // zones available.
  static Result<std::unique_ptr<ZoneFileSystem>> Format(ZnsDevice* device,
                                                        const ZoneFileConfig& config,
                                                        SimTime now);

  // Mounts an existing filesystem: replays the newest checkpoint plus journal. Partially
  // written data zones that belonged to lost write frontiers are sealed and become compaction
  // candidates.
  static Result<std::unique_ptr<ZoneFileSystem>> Mount(ZnsDevice* device,
                                                       const ZoneFileConfig& config, SimTime now);

  // --- File operations (all journaled; Append data becomes durable at the next Sync) ---

  Result<SimTime> Create(std::string_view name, Lifetime hint, SimTime now);
  Result<SimTime> Append(std::string_view name, std::span<const std::uint8_t> data, SimTime now);
  // Reads out.size() bytes at `offset`; fails with kOutOfRange if the range exceeds the file.
  Result<SimTime> Read(std::string_view name, std::uint64_t offset, std::span<std::uint8_t> out,
                       SimTime now);
  // Flushes the partial-page tail (padded) and journals the file's extent map.
  Result<SimTime> Sync(std::string_view name, SimTime now);
  Result<SimTime> Delete(std::string_view name, SimTime now);

  bool Exists(std::string_view name) const;
  Result<std::uint64_t> FileSize(std::string_view name) const;
  Result<Lifetime> FileHint(std::string_view name) const;
  std::vector<std::string> ListFiles() const;

  // Opportunistic zone compaction, policy-gated like HostFtlBlockDevice::Pump.
  std::uint32_t Pump(SimTime now, bool reads_pending, std::uint32_t max_cycles = 1);

  const ZoneFileStats& stats() const { return stats_; }
  std::uint64_t FreeZones() const { return free_zones_.size(); }
  double FreeFraction() const;
  // Physical flash programs per byte of file data appended, normalized to pages.
  double EndToEndWriteAmplification() const;

  // Registers ZoneFileStats, scheduler tallies (`<prefix>.sched.*`) and space gauges with
  // `telemetry`, plus per-op tracing spans (`<prefix>.append` / `<prefix>.read`) around file
  // I/O. The underlying ZnsDevice is attached separately by its owner.
  //
  // While attached, file lifecycle (create/seal/delete), compaction victim selections
  // (kGcVictim), completed cycles (kGcCycle) and edge-triggered scheduler windows
  // ("<prefix>.sched") land in the event log; each relocation burst becomes a "gc_step"
  // maintenance slice on the "<prefix>.gc" track, and "<prefix>.free_fraction" /
  // "<prefix>.write_amplification" are sampled as timeline series.
  void AttachTelemetry(Telemetry* telemetry, std::string_view prefix = "zonefile");

  // Validates live-page accounting against the extent maps. For tests.
  Status CheckConsistency() const;

 private:
  static constexpr std::uint32_t kMetaZoneA = 0;
  static constexpr std::uint32_t kMetaZoneB = 1;
  static constexpr std::uint32_t kFirstDataZone = 2;
  static constexpr std::uint32_t kNoZone = ~0U;

  struct Extent {
    std::uint64_t dev_lba = 0;
    std::uint32_t pages = 0;
    std::uint64_t bytes = 0;  // Logical bytes stored (== pages * page_size except after pads).
  };

  struct FileMeta {
    std::uint32_t id = 0;
    std::string name;
    Lifetime hint = Lifetime::kNone;
    std::uint64_t size = 0;         // Includes the in-memory tail.
    std::uint64_t synced_size = 0;  // Durable after the last Sync.
    std::vector<Extent> extents;
    std::vector<std::uint8_t> tail;  // Partial-page buffer, < page_size bytes.
  };

  ZoneFileSystem(ZnsDevice* device, const ZoneFileConfig& config);

  FileMeta* Find(std::string_view name);
  const FileMeta* Find(std::string_view name) const;

  // Flushes one full page of `file`'s tail to its lifetime frontier. `pad` allows a partial
  // tail to be padded out (Sync path).
  Result<SimTime> FlushTailPage(FileMeta& file, SimTime now, bool pad);
  // Picks/refreshes the write frontier for a lifetime class. May trigger forced compaction.
  Result<std::uint32_t> FrontierFor(Lifetime hint, SimTime now);
  Result<std::uint32_t> AllocateZone(SimTime now);
  bool IsFrontier(std::uint32_t zone_index) const;

  // One incremental compaction step: starts a victim if none is pending, relocates up to
  // `max_pages` live pages, and finalizes (journal + reset) when the victim is drained.
  Result<SimTime> GcStep(SimTime now, bool critical, std::uint32_t max_pages);
  // Runs a pending (or new) victim to completion. Used on the critical allocation path.
  Result<SimTime> GcRunToCompletion(SimTime now, bool critical);
  Status StartGcVictim(SimTime now, bool critical);
  std::uint32_t PickVictim(bool critical) const;
  void PublishMetrics();

  // --- Metadata journal ---
  // Writes a metadata blob of the given record type as one or more meta pages; swaps meta
  // zones (checkpointing) when the current one fills.
  Result<SimTime> WriteMetaBlob(std::uint8_t type, std::span<const std::uint8_t> blob,
                                SimTime now);
  Result<SimTime> WriteCheckpointAndSwap(SimTime now);
  std::vector<std::uint8_t> SerializeCheckpoint() const;
  std::vector<std::uint8_t> SerializeFileRecord(const FileMeta& file) const;
  Status ApplyRecord(std::uint8_t type, std::span<const std::uint8_t> payload);
  Status LoadFromZone(std::uint32_t meta_zone, SimTime now);

  ZnsDevice* device_;
  ZoneFileConfig config_;
  GcScheduler scheduler_;
  std::uint32_t page_size_ = 0;
  std::uint64_t zone_pages_ = 0;

  std::map<std::string, std::uint32_t, std::less<>> names_;
  std::map<std::uint32_t, FileMeta> files_;
  std::uint32_t next_file_id_ = 1;

  std::vector<std::uint32_t> free_zones_;
  std::vector<std::uint32_t> frontier_;  // Indexed by lifetime class.
  std::vector<std::uint32_t> zone_live_pages_;

  std::uint32_t meta_zone_ = kMetaZoneA;
  std::uint64_t meta_seq_ = 0;
  bool in_gc_ = false;  // Guards against forced-GC recursion while relocating extents.

  // In-flight incremental compaction state.
  struct GcWorkItem {
    std::uint32_t file_id = 0;
    std::uint64_t dev_lba = 0;
    std::uint32_t pages = 0;
    std::uint64_t bytes = 0;
  };
  struct GcPending {
    std::uint32_t victim = kNoZone;
    std::vector<GcWorkItem> items;
    std::size_t next = 0;
    std::vector<std::uint32_t> touched_files;
  };
  GcPending gc_;

  ZoneFileStats stats_;
  Telemetry* telemetry_ = nullptr;
  std::string metric_prefix_;
  int sampler_group_ = -1;  // Timeline group for free-space / WA gauges.
  // Application bytes accepted by Append, accumulated into the provenance ledger's domain
  // "<prefix>" as a link in the factorized-WA chain.
  Bytes* provenance_ingress_ = nullptr;
  // stats_.gc_pages_copied at victim selection (per-cycle copy count for the kGcCycle event).
  std::uint64_t gc_cycle_copied_base_ = 0;

  // State-digest audit of the file map ("<prefix>.extents"): one entry per extent hashing
  // (file id, device LBA, pages, bytes) plus one per file hashing (id, hint, synced size).
  // Extent entries carry no positional identity — the fold is a multiset — so mid-vector
  // splices during compaction stay O(1) (replace the rewritten extent, insert the remainder).
  SubsystemDigest* audit_files_ = nullptr;
  static std::uint64_t ExtentEntryHash(std::uint32_t file_id, const Extent& ext) {
    return AuditHashWords({1, file_id, ext.dev_lba, ext.pages, ext.bytes});
  }
  static std::uint64_t FileEntryHash(const FileMeta& file) {
    return AuditHashWords(
        {2, file.id, static_cast<std::uint64_t>(file.hint), file.synced_size});
  }
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_ZONEFILE_ZONE_FILE_SYSTEM_H_
