#include "src/core/matched_pair.h"

#include <algorithm>
#include <cstdio>

namespace blockhead {

TablePrinter::TablePrinter(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  while (cells.size() < headers_.size()) {
    cells.emplace_back();
  }
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Render() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::string out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      out += cell;
      if (c + 1 < widths.size()) {
        out.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    out += '\n';
  };
  emit_row(headers_);
  std::string rule;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    rule.append(widths[c], '-');
    if (c + 1 < widths.size()) {
      rule.append(2, ' ');
    }
  }
  out += rule + '\n';
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out;
}

std::string TablePrinter::Fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::FmtBytes(std::uint64_t bytes) {
  char buf[64];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", static_cast<double>(bytes) / kGiB);
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", static_cast<double>(bytes) / kMiB);
  } else if (bytes >= kKiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", static_cast<double>(bytes) / kKiB);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

}  // namespace blockhead
