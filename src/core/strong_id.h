// Strong ID and quantity types: compile-time address safety for the whole stack.
//
// The paper's core complaint is that the block interface hides which layer owns each physical
// address decision. Our reproduction threads channel/plane/block/page/zone/LBA indexes through
// flash -> ftl -> zns -> hostftl -> zonefile -> kv; with raw integers, a swapped
// (plane, block) argument or an LBA used as a physical page number compiles silently and only
// surfaces as a wrong write-amplification figure. Every address-like index therefore gets its
// own type below. The types are zero-overhead wrappers: same representation, same codegen,
// but distinct, non-interconvertible types, so the historical bug classes become compile
// errors:
//
//   ChannelId c = PlaneId{1};        // error: no conversion between distinct ID types
//   ChannelId c = 1;                 // error: construction is explicit
//   EraseBlock(plane, channel, ...)  // error: arguments are in the wrong order
//   Lba l = Ppa{7};                  // error: logical and physical spaces don't mix
//   lba_a + lba_b                    // error: adding two addresses is meaningless
//   Bytes{8} + Pages{1}              // error: unit mismatch
//
// tests/strong_id_compile_fail.cc proves each of these (and more) is rejected by the
// compiler; tools/lint.py bans new raw `uint32_t channel/plane/block`-style parameters so the
// guarantees cannot silently erode.

#ifndef BLOCKHEAD_SRC_CORE_STRONG_ID_H_
#define BLOCKHEAD_SRC_CORE_STRONG_ID_H_

#include <compare>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <ostream>
#include <type_traits>

#include "src/core/shard_safety.h"

namespace blockhead {

// An opaque index into one address space. `Tag` is an (incomplete) marker type that makes
// each instantiation a distinct type; `Rep` is the underlying integer representation.
//
// Deliberate semantics:
//   * construction from the representation is explicit (no `ChannelId c = 3;`);
//   * there is no conversion, implicit or explicit, between different StrongId types;
//   * IDs are ordered and hashable so they work as map keys and loop bounds;
//   * an ID plus/minus an integer offset is an ID (iteration, striding); the difference of
//     two IDs is an integer distance; adding two IDs does not compile (meaningless).
template <typename Tag, typename Rep>
class StrongId {
  static_assert(std::is_unsigned_v<Rep>, "address spaces are unsigned");

 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  // Explicit, and always brace-initialized in this codebase: brace rules make a narrowing
  // construction (`ChannelId{some_u64}`) a compile error, while
  // `ChannelId{PlaneId{1}.value()}` stays a visible, greppable escape hatch.
  constexpr explicit StrongId(Rep value) : value_(value) {}

  constexpr Rep value() const { return value_; }

  friend constexpr bool operator==(StrongId a, StrongId b) = default;
  friend constexpr auto operator<=>(StrongId a, StrongId b) = default;

  constexpr StrongId& operator++() {
    ++value_;
    return *this;
  }
  constexpr StrongId operator++(int) {
    StrongId old = *this;
    ++value_;
    return old;
  }

  // Offset arithmetic: ID (+|-) distance -> ID; ID - ID -> distance.
  friend constexpr StrongId operator+(StrongId a, Rep d) { return StrongId(a.value_ + d); }
  friend constexpr StrongId operator-(StrongId a, Rep d) { return StrongId(a.value_ - d); }
  friend constexpr Rep operator-(StrongId a, StrongId b) { return a.value_ - b.value_; }

  friend std::ostream& operator<<(std::ostream& os, StrongId id) {
    return os << +id.value_;
  }

 private:
  Rep value_ BLOCKHEAD_SHARD_LOCAL(owner) = 0;
};

// Physical flash hierarchy (paper §2.1): channel -> plane -> erasure block -> page. Each
// index is relative to its parent (PlaneId is "plane within channel", PageId is "page within
// block"), matching PhysAddr in src/flash/geometry.h.
using ChannelId = StrongId<struct ChannelIdTag, std::uint32_t>;
using PlaneId = StrongId<struct PlaneIdTag, std::uint32_t>;
using BlockId = StrongId<struct BlockIdTag, std::uint32_t>;
using PageId = StrongId<struct PageIdTag, std::uint32_t>;

// Zone index within a zoned namespace (src/zns).
using ZoneId = StrongId<struct ZoneIdTag, std::uint32_t>;

// Shard index in the fleet layer (src/fleet). Shards are routed onto devices, so a shard
// index and a device index live side by side in the same code — keeping ShardId strong means
// a shard used where a device ordinal (or zone) was meant cannot compile.
using ShardId = StrongId<struct ShardIdTag, std::uint32_t>;

// Logical block address: the host-visible flat page-granularity address space exported by
// BlockDevice and by ZnsDevice reads. Never interchangeable with a physical page number.
using Lba = StrongId<struct LbaTag, std::uint64_t>;

// Physical page address in flat form (plane-major, then block, then page): the dense-table
// index the FTLs map LBAs onto. See FlatPageIndex in src/flash/geometry.h.
using Ppa = StrongId<struct PpaTag, std::uint64_t>;

// Overflow handler for the checked quantity arithmetic below. Quantities count real,
// physically bounded resources (bytes of flash, pages of capacity); wrapping silently would
// corrupt every downstream write-amplification figure, so we hard-stop instead.
[[noreturn]] inline void QuantityOverflow(const char* op) {
  std::fprintf(stderr, "blockhead: quantity arithmetic overflow in %s\n", op);
  std::abort();
}

// A count of one physical unit (bytes, pages). Like StrongId, instantiations are distinct
// and non-interconvertible, which keeps `Bytes + Pages` from compiling. Unlike IDs,
// quantities form a proper (checked) arithmetic group: add, subtract, and scale.
template <typename Tag, typename Rep>
class Quantity {
  static_assert(std::is_unsigned_v<Rep>, "quantities are unsigned");

 public:
  using rep_type = Rep;

  constexpr Quantity() = default;
  constexpr explicit Quantity(Rep value) : value_(value) {}

  constexpr Rep value() const { return value_; }

  friend constexpr bool operator==(Quantity a, Quantity b) = default;
  friend constexpr auto operator<=>(Quantity a, Quantity b) = default;

  // Checked arithmetic: overflow and underflow abort rather than wrap.
  friend constexpr Quantity operator+(Quantity a, Quantity b) {
    Rep sum = 0;
    if (__builtin_add_overflow(a.value_, b.value_, &sum)) {
      QuantityOverflow("operator+");
    }
    return Quantity(sum);
  }
  friend constexpr Quantity operator-(Quantity a, Quantity b) {
    Rep diff = 0;
    if (__builtin_sub_overflow(a.value_, b.value_, &diff)) {
      QuantityOverflow("operator-");
    }
    return Quantity(diff);
  }
  friend constexpr Quantity operator*(Quantity a, Rep scale) {
    Rep product = 0;
    if (__builtin_mul_overflow(a.value_, scale, &product)) {
      QuantityOverflow("operator*");
    }
    return Quantity(product);
  }
  friend constexpr Quantity operator*(Rep scale, Quantity a) { return a * scale; }

  constexpr Quantity& operator+=(Quantity other) { return *this = *this + other; }
  constexpr Quantity& operator-=(Quantity other) { return *this = *this - other; }

  friend std::ostream& operator<<(std::ostream& os, Quantity q) {
    return os << +q.value_;
  }

 private:
  Rep value_ BLOCKHEAD_SHARD_LOCAL(owner) = 0;
};

// Quantities used across layer boundaries: a byte count and a flash-page count. The two are
// related only through a geometry's page size; the named conversions below are the sole
// bridge, so a pages-where-bytes-was-meant bug cannot type-check.
using Bytes = Quantity<struct BytesTag, std::uint64_t>;
using Pages = Quantity<struct PagesTag, std::uint64_t>;

// Named unit conversions (page_size_bytes is a plain scalar: it is a geometry parameter, not
// an address or a resource count).
inline constexpr Bytes PagesToBytes(Pages pages, std::uint32_t page_size_bytes) {
  return Bytes(pages.value()) * page_size_bytes;
}
inline constexpr Pages BytesToPagesCeil(Bytes bytes, std::uint32_t page_size_bytes) {
  return Pages((bytes.value() + page_size_bytes - 1) / page_size_bytes);
}

}  // namespace blockhead

// Hashing: every StrongId/Quantity hashes exactly like its representation, so they drop into
// unordered containers without boilerplate.
template <typename Tag, typename Rep>
struct std::hash<blockhead::StrongId<Tag, Rep>> {
  std::size_t operator()(blockhead::StrongId<Tag, Rep> id) const noexcept {
    return std::hash<Rep>{}(id.value());
  }
};
template <typename Tag, typename Rep>
struct std::hash<blockhead::Quantity<Tag, Rep>> {
  std::size_t operator()(blockhead::Quantity<Tag, Rep> q) const noexcept {
    return std::hash<Rep>{}(q.value());
  }
};

#endif  // BLOCKHEAD_SRC_CORE_STRONG_ID_H_
