// The comparison façade: builds a conventional SSD and a ZNS SSD over *identical* flash
// (geometry, timing, endurance, seed), so that every experiment isolates the interface — which
// is the paper's whole argument. Also provides the small table printer the benchmark binaries
// share.

#ifndef BLOCKHEAD_SRC_CORE_MATCHED_PAIR_H_
#define BLOCKHEAD_SRC_CORE_MATCHED_PAIR_H_

#include <memory>
#include <string>
#include <vector>

#include "src/ftl/conventional_ssd.h"
#include "src/zns/zns_device.h"

namespace blockhead {

struct MatchedConfig {
  FlashConfig flash;  // Shared by both devices.
  FtlConfig ftl;      // Conventional-side FTL parameters.
  ZnsConfig zns;      // ZNS-side parameters.

  // A benchmark-scale default: 2 GiB TLC flash, 7% OP conventional, 14 active zones.
  static MatchedConfig Bench() {
    MatchedConfig cfg;
    cfg.flash.geometry = FlashGeometry::Bench();
    cfg.flash.timing = FlashTiming::Tlc();
    cfg.flash.store_data = false;
    return cfg;
  }

  // A small fast default for tests/examples that store real data.
  static MatchedConfig Small() {
    MatchedConfig cfg;
    cfg.flash.geometry = FlashGeometry::Small();
    cfg.flash.timing = FlashTiming::FastForTests();
    return cfg;
  }
};

struct MatchedPair {
  std::unique_ptr<ConventionalSsd> conventional;
  std::unique_ptr<ZnsDevice> zns;
};

inline MatchedPair MakeMatchedPair(const MatchedConfig& config) {
  MatchedPair pair;
  pair.conventional = std::make_unique<ConventionalSsd>(config.flash, config.ftl);
  pair.zns = std::make_unique<ZnsDevice>(config.flash, config.zns);
  return pair;
}

// Minimal fixed-width table printer for benchmark output.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Adds one row; cells are pre-formatted strings. Must match the header count.
  void AddRow(std::vector<std::string> cells);
  // Renders with aligned columns.
  std::string Render() const;

  static std::string Fmt(double value, int precision = 2);
  static std::string FmtBytes(std::uint64_t bytes);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_CORE_MATCHED_PAIR_H_
