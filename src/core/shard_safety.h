// Shard-safety annotation vocabulary: the pre-parallelization discipline for the sharded
// simulation core (ROADMAP "Sharded parallel simulation core").
//
// The simulator is single-threaded today, so TSan can prove nothing about the sharding plan —
// races only exist in code that already runs threaded. This header lets us declare, member by
// member and global by global, which future shard owns every piece of mutable state, and two
// static passes enforce the declarations *before* any thread exists:
//
//   * tools/shard_analyze.py (ci.sh --analyze) inventories every mutable static/global and
//     every mutable member of a class reachable from two or more subsystem directories, fails
//     on unannotated shared mutable state, and emits shard_safety_report.json — the
//     state-access matrix (symbol × subsystem × read/write) that *is* the sharding plan;
//   * clang's -Werror=thread-safety build (ci.sh --analyze, where clang is installed) checks
//     the capability annotations; under GCC they expand to nothing.
//
// Two annotation families live here:
//
// 1. Shard-domain tags — analyzer-only markers (they always expand to nothing) declaring the
//    intended owner of a piece of mutable state once the core shards by channel/plane:
//
//      BLOCKHEAD_SHARD_LOCAL(domain)  owned by one shard of `domain` (channel, plane, zone,
//                                     or `owner` for value types that inherit the shard of
//                                     whatever object embeds them); no cross-shard access.
//      BLOCKHEAD_SHARD_SHARED         read or written by more than one shard; needs a merge
//                                     rule, a partition, or a lock before the core can shard.
//      BLOCKHEAD_SIM_GLOBAL           simulation-global context (telemetry registry, ledgers,
//                                     audit, attach-time wiring); crosses every shard and must
//                                     be funneled through the deterministic merge step.
//
//    Tags are placed after the declarator, before the initializer:
//
//      std::vector<SimTime> plane_busy_ BLOCKHEAD_SHARD_LOCAL(plane);
//      FlashStats stats_ BLOCKHEAD_SHARD_SHARED;
//      Telemetry* telemetry_ BLOCKHEAD_SIM_GLOBAL = nullptr;
//
// 2. Clang thread-safety capability attributes — the enforcement vocabulary the parallel core
//    will use once real locks exist. ShardMutex below is the placeholder capability: a no-op
//    today, swapped for a real mutex when the sharded core lands, at which point every
//    BLOCKHEAD_GUARDED_BY already in the tree becomes compiler-checked. The negative proof
//    that the checking works lives in tests/shard_safety_compile_fail.cc.

#ifndef BLOCKHEAD_SRC_CORE_SHARD_SAFETY_H_
#define BLOCKHEAD_SRC_CORE_SHARD_SAFETY_H_

// --- Shard-domain tags (analyzer-only; see tools/shard_analyze.py) -------------------------

#define BLOCKHEAD_SHARD_LOCAL(domain)
#define BLOCKHEAD_SHARD_SHARED
#define BLOCKHEAD_SIM_GLOBAL

// --- Clang thread-safety attributes (no-ops under GCC) -------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define BLOCKHEAD_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef BLOCKHEAD_THREAD_ANNOTATION
#define BLOCKHEAD_THREAD_ANNOTATION(x)
#endif

// A type that is a lockable capability ("mutex", "shard", ...).
#define BLOCKHEAD_CAPABILITY(x) BLOCKHEAD_THREAD_ANNOTATION(capability(x))
// Data member readable/writable only while the named capability is held.
#define BLOCKHEAD_GUARDED_BY(x) BLOCKHEAD_THREAD_ANNOTATION(guarded_by(x))
// Pointer member whose *pointee* is guarded by the named capability.
#define BLOCKHEAD_PT_GUARDED_BY(x) BLOCKHEAD_THREAD_ANNOTATION(pt_guarded_by(x))
// Function requires the capabilities to be held on entry (and does not release them).
#define BLOCKHEAD_REQUIRES(...) BLOCKHEAD_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// Function must NOT be called with the capabilities held (deadlock prevention).
#define BLOCKHEAD_EXCLUDES(...) BLOCKHEAD_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Function acquires / releases the capabilities (member-function form refers to *this).
#define BLOCKHEAD_ACQUIRE(...) BLOCKHEAD_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define BLOCKHEAD_RELEASE(...) BLOCKHEAD_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// Scoped RAII lock type.
#define BLOCKHEAD_SCOPED_CAPABILITY BLOCKHEAD_THREAD_ANNOTATION(scoped_lockable)
// Escape hatch for functions deliberately outside the analysis.
#define BLOCKHEAD_NO_THREAD_SAFETY_ANALYSIS \
  BLOCKHEAD_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace blockhead {

// Placeholder shard capability. Single-threaded today (Acquire/Release are no-ops with zero
// cost), but it carries the full capability annotations, so GUARDED_BY/REQUIRES contracts
// written against it are checked by clang's thread-safety analysis now and become real
// exclusion when the sharded core swaps in an actual mutex. Non-copyable: a capability is an
// identity, not a value.
class BLOCKHEAD_CAPABILITY("mutex") ShardMutex {
 public:
  ShardMutex() = default;
  ShardMutex(const ShardMutex&) = delete;
  ShardMutex& operator=(const ShardMutex&) = delete;

  void Acquire() BLOCKHEAD_ACQUIRE() {}
  void Release() BLOCKHEAD_RELEASE() {}
};

// RAII holder for a ShardMutex, usable under thread-safety analysis.
class BLOCKHEAD_SCOPED_CAPABILITY ShardLock {
 public:
  explicit ShardLock(ShardMutex& mu) BLOCKHEAD_ACQUIRE(mu) : mu_(mu) { mu_.Acquire(); }
  ~ShardLock() BLOCKHEAD_RELEASE() { mu_.Release(); }
  ShardLock(const ShardLock&) = delete;
  ShardLock& operator=(const ShardLock&) = delete;

 private:
  ShardMutex& mu_;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_CORE_SHARD_SAFETY_H_
