#include "src/survey/survey.h"

#include <cstdio>

namespace blockhead {

const char* SurveyVenueName(SurveyVenue venue) {
  switch (venue) {
    case SurveyVenue::kFast:
      return "FAST";
    case SurveyVenue::kOsdi:
      return "OSDI";
    case SurveyVenue::kSosp:
      return "SOSP";
    case SurveyVenue::kMsst:
      return "MSST";
  }
  return "?";
}

const char* SurveyCategoryName(SurveyCategory category) {
  switch (category) {
    case SurveyCategory::kSimplified:
      return "Simpl";
    case SurveyCategory::kApproach:
      return "Appr";
    case SurveyCategory::kResults:
      return "Res";
    case SurveyCategory::kOrthogonal:
      return "Orth";
  }
  return "?";
}

namespace {

// Target per-venue category counts from Table 1 of the paper:
//          Simpl  Appr  Res  Orth
// FAST       9     8    23    8
// OSDI       3     0     4    0
// SOSP       2     2     2    0
// MSST      10     7    16   10
constexpr std::uint32_t kTable1[kSurveyVenues][kSurveyCategories] = {
    {9, 8, 23, 8},
    {3, 0, 4, 0},
    {2, 2, 2, 0},
    {10, 7, 16, 10},
};

std::vector<SurveyPaper> BuildDataset() {
  std::vector<SurveyPaper> papers;

  // Named examples from the §3 text whose venue and category assignment are unambiguous and
  // consistent with the per-venue counts.
  const std::vector<SurveyPaper> named = {
      {"The CASE of FEMU: Cheap, Accurate, Scalable and Extensible Flash Emulator",
       SurveyVenue::kFast, 2018, SurveyCategory::kSimplified, false},
      {"Tiny-tail flash: near-perfect elimination of GC tail latencies", SurveyVenue::kFast,
       2017, SurveyCategory::kSimplified, false},
      {"PEN: Design and Evaluation of Partial-Erase for 3D NAND SSDs", SurveyVenue::kFast, 2018,
       SurveyCategory::kSimplified, false},
      {"OrderMergeDedup: Efficient, Failure-Consistent Deduplication on Flash",
       SurveyVenue::kFast, 2016, SurveyCategory::kSimplified, false},
      {"LinnOS: Predictability on Unpredictable Flash Storage", SurveyVenue::kOsdi, 2020,
       SurveyCategory::kSimplified, false},
      {"LX-SSD: Enhancing the Lifespan of NAND Flash via Recycling Invalid Pages",
       SurveyVenue::kMsst, 2017, SurveyCategory::kSimplified, false},
      {"Reducing Write Amplification through Cooperative Data Management with NVM",
       SurveyVenue::kMsst, 2016, SurveyCategory::kSimplified, false},
      {"Maximizing Bandwidth Management FTL Based on Read/Write Asymmetry", SurveyVenue::kMsst,
       2020, SurveyCategory::kSimplified, false},
      {"Scalable Parallel Flash Firmware for Many-core Architectures", SurveyVenue::kFast, 2020,
       SurveyCategory::kSimplified, false},
      {"Exploiting latency variation for access conflict reduction of NAND flash",
       SurveyVenue::kMsst, 2016, SurveyCategory::kApproach, false},
      {"DIDACache: Deep Integration of Device and Application for Flash Caching",
       SurveyVenue::kFast, 2017, SurveyCategory::kApproach, false},
      {"LightKV: Cross Media Key Value Store to Cut Long Tail Latency", SurveyVenue::kMsst,
       2020, SurveyCategory::kResults, false},
      {"Fail-Slow at Scale: Evidence of Hardware Performance Faults", SurveyVenue::kFast, 2018,
       SurveyCategory::kResults, false},
      {"A Study of SSD Reliability in Large Scale Enterprise Storage", SurveyVenue::kFast, 2020,
       SurveyCategory::kResults, false},
      {"Flash Reliability in Production: The Expected and the Unexpected", SurveyVenue::kFast,
       2016, SurveyCategory::kResults, false},
  };

  std::uint32_t remaining[kSurveyVenues][kSurveyCategories];
  for (std::uint32_t v = 0; v < kSurveyVenues; ++v) {
    for (std::uint32_t c = 0; c < kSurveyCategories; ++c) {
      remaining[v][c] = kTable1[v][c];
    }
  }
  for (const SurveyPaper& paper : named) {
    auto& slot = remaining[static_cast<std::uint32_t>(paper.venue)]
                          [static_cast<std::uint32_t>(paper.category)];
    if (slot > 0) {
      slot--;
      papers.push_back(paper);
    }
  }
  // Fill the remainder with flagged reconstructions so aggregation matches Table 1 exactly.
  for (std::uint32_t v = 0; v < kSurveyVenues; ++v) {
    for (std::uint32_t c = 0; c < kSurveyCategories; ++c) {
      for (std::uint32_t i = 0; i < remaining[v][c]; ++i) {
        SurveyPaper paper;
        char buf[96];
        std::snprintf(buf, sizeof(buf), "Reconstructed %s flash paper (%s) #%u",
                      SurveyVenueName(static_cast<SurveyVenue>(v)),
                      SurveyCategoryName(static_cast<SurveyCategory>(c)), i + 1);
        paper.title = buf;
        paper.venue = static_cast<SurveyVenue>(v);
        paper.year = 2016 + static_cast<int>(i % 5);
        paper.category = static_cast<SurveyCategory>(c);
        paper.reconstructed = true;
        papers.push_back(paper);
      }
    }
  }
  return papers;
}

}  // namespace

const std::vector<SurveyPaper>& SurveyDataset() {
  static const std::vector<SurveyPaper> dataset = BuildDataset();
  return dataset;
}

std::uint32_t SurveyTable::VenueClassified(SurveyVenue venue) const {
  std::uint32_t total = 0;
  for (const std::uint32_t count : counts[static_cast<std::uint32_t>(venue)]) {
    total += count;
  }
  return total;
}

std::uint32_t SurveyTable::CategoryTotal(SurveyCategory category) const {
  std::uint32_t total = 0;
  for (std::uint32_t v = 0; v < kSurveyVenues; ++v) {
    total += counts[v][static_cast<std::uint32_t>(category)];
  }
  return total;
}

std::uint32_t SurveyTable::TotalClassified() const {
  std::uint32_t total = 0;
  for (std::uint32_t c = 0; c < kSurveyCategories; ++c) {
    total += CategoryTotal(static_cast<SurveyCategory>(c));
  }
  return total;
}

std::uint32_t SurveyTable::TotalPublications() const {
  std::uint32_t total = 0;
  for (const std::uint32_t pubs : venue_publications) {
    total += pubs;
  }
  return total;
}

double SurveyTable::CategoryFraction(SurveyCategory category) const {
  const std::uint32_t classified = TotalClassified();
  if (classified == 0) {
    return 0.0;
  }
  return static_cast<double>(CategoryTotal(category)) / static_cast<double>(classified);
}

SurveyTable ComputeTable1() {
  SurveyTable table;
  for (const SurveyPaper& paper : SurveyDataset()) {
    table.counts[static_cast<std::uint32_t>(paper.venue)]
                [static_cast<std::uint32_t>(paper.category)]++;
  }
  return table;
}

std::string RenderTable1(const SurveyTable& table) {
  std::string out;
  char line[128];
  std::snprintf(line, sizeof(line), "%-6s %7s %6s %5s %5s %5s\n", "Venue", "#Pubs.", "Simpl",
                "Appr", "Res", "Orth");
  out += line;
  for (std::uint32_t v = 0; v < kSurveyVenues; ++v) {
    std::snprintf(line, sizeof(line), "%-6s %7u %6u %5u %5u %5u\n",
                  SurveyVenueName(static_cast<SurveyVenue>(v)), table.venue_publications[v],
                  table.counts[v][0], table.counts[v][1], table.counts[v][2],
                  table.counts[v][3]);
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-6s %7u %6u %5u %5u %5u\n", "Total",
                table.TotalPublications(),
                table.CategoryTotal(SurveyCategory::kSimplified),
                table.CategoryTotal(SurveyCategory::kApproach),
                table.CategoryTotal(SurveyCategory::kResults),
                table.CategoryTotal(SurveyCategory::kOrthogonal));
  out += line;
  std::snprintf(line, sizeof(line),
                "Classified: %u of %u publications (%.0f%% Simpl, %.0f%% Orth, %.0f%% Appr+Res)\n",
                table.TotalClassified(), table.TotalPublications(),
                100.0 * table.CategoryFraction(SurveyCategory::kSimplified),
                100.0 * table.CategoryFraction(SurveyCategory::kOrthogonal),
                100.0 * (table.CategoryFraction(SurveyCategory::kApproach) +
                         table.CategoryFraction(SurveyCategory::kResults)));
  out += line;
  return out;
}

}  // namespace blockhead
