// The paper's literature survey (Table 1): 465 publications from five years of FAST, OSDI,
// SOSP, and MSST, of which 104 prominently involve flash SSDs, classified into four impact
// categories.
//
// The paper publishes only the aggregate counts, plus a handful of worked examples in the §3
// text. This module encodes the dataset as a classified paper list whose aggregation
// reproduces Table 1 exactly: the named examples appear as real entries (where their venue and
// category are unambiguous in the paper text); the remaining rows are reconstructed
// placeholders flagged `reconstructed = true`. See DESIGN.md's substitution table.

#ifndef BLOCKHEAD_SRC_SURVEY_SURVEY_H_
#define BLOCKHEAD_SRC_SURVEY_SURVEY_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace blockhead {

enum class SurveyVenue : std::uint8_t { kFast = 0, kOsdi = 1, kSosp = 2, kMsst = 3 };
inline constexpr std::uint32_t kSurveyVenues = 4;

enum class SurveyCategory : std::uint8_t {
  kSimplified = 0,  // Problem solved or simplified by ZNS.
  kApproach = 1,    // Approach would change with ZNS.
  kResults = 2,     // Results/findings would change with ZNS.
  kOrthogonal = 3,  // Unaffected by ZNS.
};
inline constexpr std::uint32_t kSurveyCategories = 4;

const char* SurveyVenueName(SurveyVenue venue);
const char* SurveyCategoryName(SurveyCategory category);

struct SurveyPaper {
  std::string title;
  SurveyVenue venue;
  int year;
  SurveyCategory category;
  bool reconstructed;  // True for placeholder entries that only preserve the counts.
};

// The classified 104-paper dataset.
const std::vector<SurveyPaper>& SurveyDataset();

struct SurveyTable {
  // Total publications per venue over the survey window (given in the paper).
  std::array<std::uint32_t, kSurveyVenues> venue_publications = {126, 164, 77, 98};
  // counts[venue][category].
  std::array<std::array<std::uint32_t, kSurveyCategories>, kSurveyVenues> counts = {};

  std::uint32_t VenueClassified(SurveyVenue venue) const;
  std::uint32_t CategoryTotal(SurveyCategory category) const;
  std::uint32_t TotalClassified() const;
  std::uint32_t TotalPublications() const;
  // Fraction of classified papers in the given category.
  double CategoryFraction(SurveyCategory category) const;
};

// Aggregates the dataset into Table 1.
SurveyTable ComputeTable1();

// Renders the table in the paper's row/column layout.
std::string RenderTable1(const SurveyTable& table);

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_SURVEY_SURVEY_H_
