#include "src/ftl/conventional_ssd.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace blockhead {

namespace {

// Decomposes a flat block index into its (channel, plane, block) coordinates.
PhysAddr BlockAddrFromFlat(const FlashGeometry& g, std::uint64_t flat_block) {
  PhysAddr a;
  a.page = PageId{0};
  a.block = BlockId{static_cast<std::uint32_t>(flat_block % g.blocks_per_plane)};
  const std::uint64_t plane_flat = flat_block / g.blocks_per_plane;
  a.plane = PlaneId{static_cast<std::uint32_t>(plane_flat % g.planes_per_channel)};
  a.channel = ChannelId{static_cast<std::uint32_t>(plane_flat / g.planes_per_channel)};
  return a;
}

}  // namespace

ConventionalSsd::ConventionalSsd(const FlashConfig& flash_config, const FtlConfig& ftl_config)
    : flash_(flash_config), config_(ftl_config) {
  const FlashGeometry& g = flash_.geometry();
  const std::uint64_t total_pages = g.total_pages();
  const std::uint64_t reserve_pages = static_cast<std::uint64_t>(
                                          config_.min_reserve_blocks_per_plane) *
                                      g.total_planes() * g.pages_per_block;
  const double op = std::max(0.0, config_.op_fraction);
  const std::uint64_t op_pages =
      static_cast<std::uint64_t>(static_cast<double>(total_pages) / (1.0 + op));
  logical_pages_ = std::min(op_pages, total_pages - reserve_pages);

  gc_trigger_blocks_ = config_.gc_trigger_free_blocks != 0 ? config_.gc_trigger_free_blocks
                                                           : 2 * g.total_planes();
  gc_target_blocks_ = config_.gc_free_target_blocks != 0 ? config_.gc_free_target_blocks
                                                         : gc_trigger_blocks_ + g.total_planes();

  l2p_.assign(logical_pages_, kUnmapped);
  p2l_.assign(total_pages, kUnmapped);
  block_meta_.assign(g.total_blocks(), BlockMeta{});
  config_.num_streams = std::max<std::uint32_t>(1, config_.num_streams);
  planes_.resize(g.total_planes());
  for (std::uint32_t pl = 0; pl < g.total_planes(); ++pl) {
    planes_[pl].free_blocks.reserve(g.blocks_per_plane);
    for (std::uint32_t b = 0; b < g.blocks_per_plane; ++b) {
      planes_[pl].free_blocks.push_back(b);
    }
    planes_[pl].host_frontiers.assign(config_.num_streams, kNoBlock);
  }
  next_host_plane_.assign(config_.num_streams, 0);
  free_block_count_ = g.total_blocks();

  if (const char* env = std::getenv("BLOCKHEAD_AUDIT_PERTURB_GC_AT");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env) {
      perturb_gc_at_ = v;
      perturb_pending_ = true;
    }
  }
}

bool ConventionalSsd::PageValid(std::uint64_t ppn) const {
  const std::uint64_t lpn = p2l_[ppn];
  return lpn != kUnmapped && l2p_[lpn] == ppn;
}

void ConventionalSsd::InvalidatePage(std::uint64_t lpn, SimTime now) {
  const std::uint64_t old = l2p_[lpn];
  if (old == kUnmapped) {
    return;
  }
  const std::uint64_t block = old / flash_.geometry().pages_per_block;
  assert(block_meta_[block].valid_pages > 0);
  block_meta_[block].valid_pages--;
  p2l_[old] = kUnmapped;
  l2p_[lpn] = kUnmapped;
  if (audit_l2p_ != nullptr && audit_l2p_->armed()) {
    audit_l2p_->Remove(now, L2pEntryHash(lpn, old));
  }
}

std::uint32_t ConventionalSsd::TakeFreeBlock(std::uint32_t plane_index) {
  PlaneState& plane = planes_[plane_index];
  assert(!plane.free_blocks.empty());
  std::size_t pick = plane.free_blocks.size() - 1;
  if (config_.wear_leveling) {
    // Least-worn free block, to spread erases.
    const FlashGeometry& g = flash_.geometry();
    const ChannelId channel{plane_index / g.planes_per_channel};
    const PlaneId pl{plane_index % g.planes_per_channel};
    std::uint32_t best_wear = std::numeric_limits<std::uint32_t>::max();
    for (std::size_t i = 0; i < plane.free_blocks.size(); ++i) {
      const std::uint32_t wear =
          flash_.block_status(channel, pl, BlockId{plane.free_blocks[i]}).erase_count;
      if (wear < best_wear) {
        best_wear = wear;
        pick = i;
      }
    }
  }
  const std::uint32_t block = plane.free_blocks[pick];
  plane.free_blocks[pick] = plane.free_blocks.back();
  plane.free_blocks.pop_back();
  free_block_count_--;
  return block;
}

Result<PhysAddr> ConventionalSsd::NextSlot(SimTime issue, bool gc_write,
                                           std::uint32_t stream) {
  const FlashGeometry& g = flash_.geometry();
  std::uint32_t& cursor = gc_write ? next_gc_plane_ : next_host_plane_[stream];
  const std::uint32_t planes = g.total_planes();

  for (std::uint32_t attempt = 0; attempt < planes; ++attempt) {
    const std::uint32_t plane_index = (cursor + attempt) % planes;
    PlaneState& plane = planes_[plane_index];
    std::uint32_t& frontier = gc_write ? plane.gc_frontier : plane.host_frontiers[stream];
    const ChannelId channel{plane_index / g.planes_per_channel};
    const PlaneId pl{plane_index % g.planes_per_channel};

    // Retire a full frontier.
    if (frontier != kNoBlock &&
        flash_.block_status(channel, pl, BlockId{frontier}).next_page >= g.pages_per_block) {
      const std::uint64_t flat = static_cast<std::uint64_t>(plane_index) * g.blocks_per_plane +
                                 frontier;
      block_meta_[flat].open = false;
      block_meta_[flat].last_write = issue;
      frontier = kNoBlock;
    }
    if (frontier == kNoBlock) {
      if (plane.free_blocks.empty()) {
        continue;  // Try another plane.
      }
      frontier = TakeFreeBlock(plane_index);
      const std::uint64_t flat = static_cast<std::uint64_t>(plane_index) * g.blocks_per_plane +
                                 frontier;
      block_meta_[flat].open = true;
      if (flash_.block_status(channel, pl, BlockId{frontier}).bad) {
        // A free-pool block can have gone bad via early failure on its last erase; drop it.
        block_meta_[flat].open = false;
        frontier = kNoBlock;
        continue;
      }
    }

    cursor = (plane_index + 1) % planes;
    PhysAddr addr;
    addr.channel = channel;
    addr.plane = pl;
    addr.block = BlockId{frontier};
    addr.page = PageId{flash_.block_status(channel, pl, BlockId{frontier}).next_page};
    return addr;
  }
  return ErrorCode::kNoFreeBlocks;
}

Result<SimTime> ConventionalSsd::AppendPage(std::uint64_t lpn, SimTime issue,
                                            std::span<const std::uint8_t> data, bool gc_write,
                                            std::uint32_t stream) {
  Result<PhysAddr> slot = NextSlot(issue, gc_write, stream);
  if (!slot.ok()) {
    return slot.status();
  }
  const PhysAddr addr = slot.value();
  Result<SimTime> done = flash_.ProgramPage(addr, issue, data,
                                            gc_write ? OpClass::kInternal : OpClass::kHost);
  if (!done.ok()) {
    return done;
  }
  InvalidatePage(lpn, done.value());
  const FlashGeometry& g = flash_.geometry();
  const std::uint64_t ppn = FlatPageIndex(g, addr).value();
  const std::uint64_t block = ppn / g.pages_per_block;
  l2p_[lpn] = ppn;
  p2l_[ppn] = lpn;
  if (audit_l2p_ != nullptr && audit_l2p_->armed()) {
    audit_l2p_->Insert(done.value(), L2pEntryHash(lpn, ppn));
  }
  block_meta_[block].valid_pages++;
  block_meta_[block].last_write = done.value();
  return done;
}

std::uint64_t ConventionalSsd::PickVictim(SimTime now, bool wear_migration) {
  const FlashGeometry& g = flash_.geometry();
  const std::uint32_t ppb = g.pages_per_block;
  std::uint64_t best = kUnmapped;
  double best_score = -1.0;
  // Audit divergence-injection hook (see perturb_gc_at_): when armed, track the runner-up
  // and return it instead of the winner, once. The greedy dead-block shortcut is skipped in
  // that one scan so a runner-up exists to return.
  const bool perturb = perturb_pending_ && !wear_migration && now >= perturb_gc_at_;
  std::uint64_t second = kUnmapped;
  double second_score = -1.0;

  // Scan from a rotating start: a fixed scan order breaks score ties toward the lowest block
  // indices, which concentrates victims (and their serialized page reads) on plane 0.
  const std::uint64_t scan_start = victim_scan_cursor_;
  victim_scan_cursor_ = (victim_scan_cursor_ + g.pages_per_block + 1) % block_meta_.size();
  for (std::uint64_t i = 0; i < block_meta_.size(); ++i) {
    const std::uint64_t flat = (scan_start + i) % block_meta_.size();
    const BlockMeta& meta = block_meta_[flat];
    if (meta.open) {
      continue;
    }
    const PhysAddr addr = BlockAddrFromFlat(g, flat);
    const BlockStatus status = flash_.block_status(addr.channel, addr.plane, addr.block);
    if (status.bad || status.next_page < ppb) {
      continue;  // Only full blocks are victims; partial blocks are free-pool or frontiers.
    }

    if (!perturb && !wear_migration && config_.victim_policy == GcVictimPolicy::kGreedy &&
        meta.valid_pages == 0) {
      return flat;  // A fully dead block is always the greedy optimum.
    }
    double score = 0.0;
    if (wear_migration) {
      // Least-worn full block: migrating it lets its (presumably cold) data move so the block
      // can absorb erases.
      score = 1.0 / (1.0 + static_cast<double>(status.erase_count));
    } else if (config_.victim_policy == GcVictimPolicy::kGreedy) {
      score = static_cast<double>(ppb - meta.valid_pages);
    } else {
      const double u = static_cast<double>(meta.valid_pages) / static_cast<double>(ppb);
      if (u == 0.0) {
        score = std::numeric_limits<double>::max();
      } else {
        const double age = static_cast<double>(now > meta.last_write ? now - meta.last_write : 0) +
                           1.0;
        score = (1.0 - u) / (2.0 * u) * age;
      }
    }
    if (score > best_score) {
      second_score = best_score;
      second = best;
      best_score = score;
      best = flat;
    } else if (score > second_score) {
      second_score = score;
      second = flat;
    }
  }

  if (perturb && second != kUnmapped) {
    perturb_pending_ = false;
    return second;
  }
  if (!wear_migration && best != kUnmapped &&
      block_meta_[best].valid_pages >= ppb) {
    // All full blocks are fully valid: GC would gain nothing.
    return kUnmapped;
  }
  return best;
}

Result<SimTime> ConventionalSsd::GcCycle(SimTime now) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kFtl, ProfOp::kGc);
  const bool wear_migration =
      config_.wear_leveling && config_.wear_migrate_interval != 0 &&
      ++gc_cycles_since_wear_check_ % config_.wear_migrate_interval == 0;
  std::uint64_t victim = PickVictim(now, wear_migration);
  if (victim == kUnmapped && wear_migration) {
    victim = PickVictim(now, false);
  }
  if (victim == kUnmapped) {
    return ErrorCode::kNoFreeBlocks;
  }

  // Everything this cycle programs/erases is device reclaim work, not host data.
  WriteProvenance::CauseScope cause(
      ProvenanceOf(telemetry_),
      wear_migration ? WriteCause::kWearMigration : WriteCause::kDeviceGC, StackLayer::kFtl);

  const FlashGeometry& g = flash_.geometry();
  const PhysAddr victim_addr = BlockAddrFromFlat(g, victim);
  const std::uint64_t first_ppn = victim * g.pages_per_block;
  SimTime last_done = now;
  const std::uint64_t copied_before = stats_.gc_pages_copied;
  if (telemetry_ != nullptr) {
    const char* policy = wear_migration ? "wear_migration"
                         : config_.victim_policy == GcVictimPolicy::kGreedy ? "greedy"
                                                                            : "cost_benefit";
    telemetry_->events.Append(now, TimelineEventType::kGcVictim, metric_prefix_ + ".ftl",
                              std::string("victim block ") + std::to_string(victim) +
                                  " valid " + std::to_string(block_meta_[victim].valid_pages) +
                                  " policy " + policy,
                              victim, block_meta_[victim].valid_pages);
  }

  // Copy valid pages forward (device-internal: no host-bus traffic). Copies run as a
  // plane-wide pipelined window: the FTL is bandwidth-greedy for internal moves (it must keep
  // reclaim ahead of host consumption), while the batch boundary still gives host I/O points
  // to interleave.
  const std::uint32_t kGcCopyWindow = g.total_planes();
  SimTime batch_issue = now;
  std::uint32_t in_batch = 0;
  for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
    const std::uint64_t ppn = first_ppn + p;
    if (!PageValid(ppn)) {
      continue;
    }
    const std::uint64_t lpn = p2l_[ppn];
    Result<PhysAddr> slot = NextSlot(now, /*gc_write=*/true, /*stream=*/0);
    if (!slot.ok()) {
      return slot.status();
    }
    PhysAddr src = victim_addr;
    src.page = PageId{p};
    if (++in_batch >= kGcCopyWindow) {
      // The next batch starts when the victim plane finishes this batch's page reads (the
      // cadence-setting resource); its programs overlap the next batch's reads, as a real
      // copyback pipeline does.
      batch_issue += static_cast<SimTime>(kGcCopyWindow) * flash_.timing().page_read;
      in_batch = 0;
    }
    Result<SimTime> done = flash_.CopyPage(src, slot.value(), batch_issue);
    if (!done.ok()) {
      return done;
    }
    last_done = std::max(last_done, done.value());
    // Remap.
    const std::uint64_t new_ppn = FlatPageIndex(g, slot.value()).value();
    const std::uint64_t new_block = new_ppn / g.pages_per_block;
    l2p_[lpn] = new_ppn;
    p2l_[new_ppn] = lpn;
    p2l_[ppn] = kUnmapped;
    if (audit_l2p_ != nullptr && audit_l2p_->armed()) {
      audit_l2p_->Replace(done.value(), L2pEntryHash(lpn, ppn), L2pEntryHash(lpn, new_ppn));
    }
    block_meta_[victim].valid_pages--;
    block_meta_[new_block].valid_pages++;
    block_meta_[new_block].last_write = done.value();
    stats_.gc_pages_copied++;
  }
  assert(block_meta_[victim].valid_pages == 0);

  Result<SimTime> erased =
      flash_.EraseBlock(victim_addr.channel, victim_addr.plane, victim_addr.block, last_done);
  if (!erased.ok()) {
    return erased;
  }
  // Clear any stale reverse mappings (invalid pages).
  for (std::uint32_t p = 0; p < g.pages_per_block; ++p) {
    p2l_[first_ppn + p] = kUnmapped;
  }
  stats_.gc_runs++;
  if (wear_migration) {
    stats_.wear_migrations++;
  }
  if (!flash_.block_status(victim_addr.channel, victim_addr.plane, victim_addr.block).bad) {
    const std::uint32_t plane_index = PlaneIndex(g, victim_addr.channel, victim_addr.plane);
    planes_[plane_index].free_blocks.push_back(victim_addr.block.value());
    free_block_count_++;
    stats_.gc_blocks_reclaimed++;
  }
  if (telemetry_ != nullptr) {
    const std::uint64_t copied = stats_.gc_pages_copied - copied_before;
    telemetry_->events.Append(erased.value(), TimelineEventType::kGcCycle,
                              metric_prefix_ + ".ftl",
                              "cycle done block " + std::to_string(victim) + " copied " +
                                  std::to_string(copied),
                              victim, copied);
    telemetry_->timeline.RecordMaintenance(metric_prefix_ + ".ftl.gc", "gc_cycle", now,
                                           erased.value());
    telemetry_->timeline.AdvanceGroup(sampler_group_, erased.value());
  }
  return erased;
}

SimTime ConventionalSsd::MaybeForegroundGc(SimTime now) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kFtl, ProfOp::kGc);
  if (free_block_count_ >= gc_trigger_blocks_) {
    return now;
  }
  stats_.foreground_gc_stalls++;
  // Incremental foreground GC: a bounded number of cycles per triggering write, so
  // reclamation interleaves with host I/O instead of forming giant convoys. Two victims are
  // cleaned concurrently (issued at the same time, on different planes) — single-victim
  // cleaning is bottlenecked by the victim plane's serialized page reads and cannot keep up
  // with high-WA workloads. Only when the pool is nearly exhausted does the FTL loop
  // synchronously (correctness backstop).
  SimTime last = now;
  for (int parallel = 0; parallel < 2; ++parallel) {
    Result<SimTime> done = GcCycle(now);
    if (!done.ok()) {
      break;
    }
    last = std::max(last, done.value());
    if (free_block_count_ >= gc_trigger_blocks_) {
      break;
    }
  }
  const std::uint64_t emergency = std::max<std::uint64_t>(4, planes_.size() / 4);
  while (free_block_count_ < emergency) {
    Result<SimTime> done = GcCycle(last);
    if (!done.ok()) {
      break;
    }
    last = done.value();
  }
  return last;
}

std::uint32_t ConventionalSsd::RunBackgroundGc(SimTime now, std::uint32_t max_cycles) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kFtl, ProfOp::kGc);
  std::uint32_t ran = 0;
  while (ran < max_cycles && free_block_count_ < gc_target_blocks_) {
    Result<SimTime> done = GcCycle(now);
    if (!done.ok()) {
      break;
    }
    now = done.value();
    ++ran;
  }
  return ran;
}

SimTime ConventionalSsd::BufferAck(SimTime data_in, SimTime program_done) {
  inflight_program_completions_.push_back(program_done);
  if (inflight_program_completions_.size() <= config_.write_buffer_pages) {
    return data_in;  // Buffer slot immediately available.
  }
  const SimTime slot_free = inflight_program_completions_.front();
  inflight_program_completions_.pop_front();
  return std::max(data_in, slot_free);
}

Result<SimTime> ConventionalSsd::WriteBlocks(Lba lba, std::uint32_t count, SimTime issue,
                                             std::span<const std::uint8_t> data) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kFtl, ProfOp::kWrite);
  return WriteBlocksStream(lba, count, /*stream=*/0, issue, data);
}

ConventionalSsd::~ConventionalSsd() { AttachTelemetry(nullptr); }

void ConventionalSsd::AttachTelemetry(Telemetry* telemetry, std::string_view prefix) {
  if (telemetry_ != nullptr) {
    PublishMetrics();
    telemetry_->registry.RemoveProvider(metric_prefix_ + ".ftl");
    telemetry_->timeline.RemoveSamplerGroup(metric_prefix_ + ".ftl");
  }
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    flash_.AttachTelemetry(nullptr);
    audit_l2p_ = nullptr;
    sampler_group_ = -1;
    return;
  }
  metric_prefix_ = std::string(prefix);
  audit_l2p_ = telemetry_->audit.Register(metric_prefix_ + ".ftl.l2p");
  flash_.AttachTelemetry(telemetry_, metric_prefix_ + ".flash");
  telemetry_->registry.AddProvider(metric_prefix_ + ".ftl", [this] { PublishMetrics(); });

  Timeline& tl = telemetry_->timeline;
  sampler_group_ = tl.AddSamplerGroup(metric_prefix_ + ".ftl");
  tl.AddSampler(sampler_group_, metric_prefix_ + ".ftl.free_blocks",
                Timeline::SampleKind::kInstant,
                [this](SimTime) { return static_cast<double>(free_block_count_); });
  tl.AddSampler(sampler_group_, metric_prefix_ + ".ftl.write_amplification",
                Timeline::SampleKind::kInstant,
                [this](SimTime) { return WriteAmplification(); });
}

void ConventionalSsd::PublishMetrics() {
  MetricRegistry& r = telemetry_->registry;
  const std::string p = metric_prefix_ + ".ftl";
  r.GetCounter(p + ".host_pages_written")->Set(stats_.host_pages_written);
  r.GetCounter(p + ".host_pages_read")->Set(stats_.host_pages_read);
  r.GetCounter(p + ".pages_trimmed")->Set(stats_.pages_trimmed);
  r.GetCounter(p + ".gc.runs")->Set(stats_.gc_runs);
  r.GetCounter(p + ".gc.pages_moved")->Set(stats_.gc_pages_copied);
  r.GetCounter(p + ".gc.blocks_reclaimed")->Set(stats_.gc_blocks_reclaimed);
  r.GetCounter(p + ".gc.foreground_stalls")->Set(stats_.foreground_gc_stalls);
  r.GetCounter(p + ".wear_migrations")->Set(stats_.wear_migrations);
  r.GetGauge(p + ".write_amplification")->Set(WriteAmplification());
  r.GetGauge(p + ".free_blocks")->Set(static_cast<double>(FreeBlocks()));
  const DramUsage dram = ComputeDramUsage();
  r.GetGauge(p + ".dram.mapping_bytes")->Set(static_cast<double>(dram.mapping_bytes));
  r.GetGauge(p + ".dram.gc_metadata_bytes")->Set(static_cast<double>(dram.gc_metadata_bytes));
  r.GetGauge(p + ".dram.write_buffer_bytes")->Set(static_cast<double>(dram.write_buffer_bytes));
  r.GetGauge(p + ".dram.total_bytes")->Set(static_cast<double>(dram.total()));
}

Result<SimTime> ConventionalSsd::WriteBlocksStream(Lba lba, std::uint32_t count,
                                                   std::uint32_t stream, SimTime issue,
                                                   std::span<const std::uint8_t> data) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kFtl, ProfOp::kWrite);
  stream = std::min(stream, config_.num_streams - 1);
  if (lba.value() + count > logical_pages_) {
    return ErrorCode::kOutOfRange;
  }
  const std::uint32_t page_size = flash_.geometry().page_size;
  if (!data.empty() && data.size() != static_cast<std::size_t>(count) * page_size) {
    return ErrorCode::kInvalidArgument;
  }

  Tracer::Span span;
  if (telemetry_ != nullptr) {
    span = telemetry_->tracer.Start(metric_prefix_ + ".ftl.write", issue);
  }
  // Foreground host op: own the request-path measurement unless internal work (a CauseScope)
  // or an outer layer already does. Foreground GC needs no explicit charge here — it runs as
  // internal flash ops whose maintenance marks the host programs below bill as GC stall.
  RequestPathLedger::RequestScope req_scope(
      telemetry_ != nullptr && telemetry_->provenance.open_scopes() == 0
          ? &telemetry_->reqpath
          : nullptr,
      RequestContext{stream, ReqOp::kWrite}, issue);
  SimTime ack = issue;
  for (std::uint32_t i = 0; i < count; ++i) {
    MaybeForegroundGc(issue);
    std::span<const std::uint8_t> page_data;
    if (!data.empty()) {
      page_data = data.subspan(static_cast<std::size_t>(i) * page_size, page_size);
    }
    Result<SimTime> done =
        AppendPage(lba.value() + i, issue, page_data, /*gc_write=*/false, stream);
    if (!done.ok()) {
      return done;
    }
    stats_.host_pages_written++;
    const SimTime data_in = issue + flash_.timing().channel_xfer;
    ack = std::max(ack, BufferAck(data_in, done.value()));
  }
  if (telemetry_ != nullptr) {
    telemetry_->timeline.AdvanceGroup(sampler_group_, ack);
  }
  span.End(ack);
  req_scope.Complete(ack);
  return ack;
}

Result<SimTime> ConventionalSsd::ReadBlocks(Lba lba, std::uint32_t count, SimTime issue,
                                            std::span<std::uint8_t> out) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kFtl, ProfOp::kRead);
  if (lba.value() + count > logical_pages_) {
    return ErrorCode::kOutOfRange;
  }
  const std::uint32_t page_size = flash_.geometry().page_size;
  if (!out.empty() && out.size() != static_cast<std::size_t>(count) * page_size) {
    return ErrorCode::kInvalidArgument;
  }

  Tracer::Span span;
  if (telemetry_ != nullptr) {
    span = telemetry_->tracer.Start(metric_prefix_ + ".ftl.read", issue);
  }
  RequestPathLedger::RequestScope req_scope(
      telemetry_ != nullptr && telemetry_->provenance.open_scopes() == 0
          ? &telemetry_->reqpath
          : nullptr,
      RequestContext{0, ReqOp::kRead}, issue);
  SimTime done_all = issue;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::span<std::uint8_t> page_out;
    if (!out.empty()) {
      page_out = out.subspan(static_cast<std::size_t>(i) * page_size, page_size);
    }
    const std::uint64_t ppn = l2p_[lba.value() + i];
    stats_.host_pages_read++;
    if (ppn == kUnmapped) {
      // Never-written LBA: served from the controller without touching flash.
      if (!page_out.empty()) {
        std::memset(page_out.data(), 0, page_out.size());
      }
      done_all = std::max(done_all, issue + flash_.timing().channel_xfer);
      continue;
    }
    Result<SimTime> done = flash_.ReadPage(AddrFromFlatPage(flash_.geometry(), Ppa{ppn}),
                                           issue, page_out, OpClass::kHost);
    if (!done.ok()) {
      return done;
    }
    done_all = std::max(done_all, done.value());
  }
  if (telemetry_ != nullptr) {
    telemetry_->timeline.AdvanceGroup(sampler_group_, done_all);
  }
  span.End(done_all);
  req_scope.Complete(done_all);
  return done_all;
}

Result<SimTime> ConventionalSsd::TrimBlocks(Lba lba, std::uint32_t count, SimTime issue) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kFtl, ProfOp::kOther);
  if (lba.value() + count > logical_pages_) {
    return ErrorCode::kOutOfRange;
  }
  RequestPathLedger::RequestScope req_scope(
      telemetry_ != nullptr && telemetry_->provenance.open_scopes() == 0
          ? &telemetry_->reqpath
          : nullptr,
      RequestContext{0, ReqOp::kTrim}, issue);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (l2p_[lba.value() + i] != kUnmapped) {
      InvalidatePage(lba.value() + i, issue);
      stats_.pages_trimmed++;
    }
  }
  const SimTime done = issue + flash_.timing().channel_xfer;
  req_scope.Complete(done);
  return done;
}

double ConventionalSsd::WriteAmplification() const {
  const FlashStats& s = flash_.stats();
  if (s.host_pages_programmed == 0) {
    return 1.0;
  }
  return static_cast<double>(s.total_pages_programmed()) /
         static_cast<double>(s.host_pages_programmed);
}

DramUsage ConventionalSsd::ComputeDramUsage() const {
  const FlashGeometry& g = flash_.geometry();
  DramUsage u;
  u.mapping_bytes = logical_pages_ * 4;  // 4 B per page-mapping entry (paper §2.2).
  u.gc_metadata_bytes = g.total_pages() * 4 /* reverse map */ + g.total_blocks() * 4 /* counts */;
  u.write_buffer_bytes = static_cast<std::uint64_t>(config_.write_buffer_pages) * g.page_size;
  return u;
}

std::uint64_t ConventionalSsd::FreeBlocks() const { return free_block_count_; }

Status ConventionalSsd::CheckConsistency() const {
  const FlashGeometry& g = flash_.geometry();
  for (std::uint64_t lpn = 0; lpn < logical_pages_; ++lpn) {
    const std::uint64_t ppn = l2p_[lpn];
    if (ppn == kUnmapped) {
      continue;
    }
    if (ppn >= g.total_pages() || p2l_[ppn] != lpn) {
      return Status(ErrorCode::kCorruption, "l2p/p2l mismatch");
    }
  }
  std::vector<std::uint32_t> valid(block_meta_.size(), 0);
  for (std::uint64_t ppn = 0; ppn < g.total_pages(); ++ppn) {
    if (PageValid(ppn)) {
      valid[ppn / g.pages_per_block]++;
    }
  }
  for (std::uint64_t b = 0; b < block_meta_.size(); ++b) {
    if (valid[b] != block_meta_[b].valid_pages) {
      return Status(ErrorCode::kCorruption, "valid-page counter drift");
    }
  }
  return Status::Ok();
}

}  // namespace blockhead
