// Conventional SSD: a page-mapped flash translation layer behind the block interface.
//
// This implements every FTL responsibility the paper enumerates in §2.1:
//   * page-granularity logical-to-physical address translation (4 B/page model — the source of
//     the ~1 GB-of-DRAM-per-TB figure in §2.2);
//   * garbage collection with overprovisioned spare capacity (greedy or cost-benefit victim
//     selection) — GC runs inside the device, occupying planes, which is exactly how it
//     interferes with foreground reads (§2.4);
//   * wear leveling (least-worn free-block allocation plus periodic cold-block migration);
//   * a device write buffer that acknowledges host writes before cells finish programming.
//
// Durable FTL metadata checkpointing (§2.1 bullet 3) is modeled as a fixed per-write DRAM cost
// rather than extra flash traffic; see DESIGN.md (it does not affect any reproduced claim).

#ifndef BLOCKHEAD_SRC_FTL_CONVENTIONAL_SSD_H_
#define BLOCKHEAD_SRC_FTL_CONVENTIONAL_SSD_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/block/block_device.h"
#include "src/core/shard_safety.h"
#include "src/core/strong_id.h"
#include "src/flash/flash_device.h"
#include "src/util/status.h"
#include "src/util/types.h"

namespace blockhead {

enum class GcVictimPolicy {
  kGreedy,       // Minimum valid-page count.
  kCostBenefit,  // Maximize (1-u)/(2u) * age (Rosenblum/Ousterhout cleaning heuristic).
};

struct FtlConfig {
  // Spare capacity as a fraction of the *exported* (usable) capacity, matching the paper's
  // "7-28% of the usable capacity" framing. 0.0 still leaves a small hard reserve so the
  // device remains operable (real "0% OP" drives do the same).
  double op_fraction = 0.07;
  GcVictimPolicy victim_policy = GcVictimPolicy::kGreedy;
  // Foreground GC triggers when the free pool drops to this many blocks (beyond the open
  // frontiers) and runs until it recovers gc_free_target blocks.
  std::uint32_t gc_trigger_free_blocks = 0;  // 0 -> derived: 2 * planes.
  std::uint32_t gc_free_target_blocks = 0;   // 0 -> derived: trigger + planes.
  // Device DRAM write buffer, in pages. Writes are acknowledged when buffered; the buffer
  // drains at cell-program speed.
  std::uint32_t write_buffer_pages = 64;
  // Enable least-worn allocation + periodic cold-block migration.
  bool wear_leveling = true;
  // Every this many GC cycles, spend one cycle migrating the least-worn full block.
  std::uint32_t wear_migrate_interval = 64;
  // Hard reserve (blocks per plane) that is never exported, even at op_fraction = 0.
  std::uint32_t min_reserve_blocks_per_plane = 4;
  // Multi-stream writes (NVMe Streams directive, paper §2.3): the host labels writes with a
  // stream ID and the device gives each stream its own erasure-block frontiers, so data with
  // similar lifetime is physically separated. 1 = streams off (plain block device).
  std::uint32_t num_streams = 1;
};

struct FtlStats {
  std::uint64_t host_pages_written = 0;
  std::uint64_t host_pages_read = 0;
  std::uint64_t pages_trimmed = 0;
  std::uint64_t gc_runs = 0;
  std::uint64_t gc_pages_copied = 0;
  std::uint64_t gc_blocks_reclaimed = 0;
  std::uint64_t wear_migrations = 0;
  // Number of host writes that had to wait for foreground GC.
  std::uint64_t foreground_gc_stalls = 0;
};

// DRAM footprint breakdown, following the paper's §2.2 accounting model (4 bytes per mapping
// entry).
struct DramUsage {
  std::uint64_t mapping_bytes = 0;       // L2P (conventional) or zone map (ZNS).
  std::uint64_t gc_metadata_bytes = 0;   // Reverse map + valid counters.
  std::uint64_t write_buffer_bytes = 0;  // Device write buffer.

  std::uint64_t total() const { return mapping_bytes + gc_metadata_bytes + write_buffer_bytes; }
};

class ConventionalSsd final : public BlockDevice {
 public:
  ConventionalSsd(const FlashConfig& flash_config, const FtlConfig& ftl_config);
  ~ConventionalSsd() override;  // Publishes final metrics and unhooks if attached.

  // BlockDevice interface. Lba unit = one flash page.
  Result<SimTime> ReadBlocks(Lba lba, std::uint32_t count, SimTime issue,
                             std::span<std::uint8_t> out = {}) override;
  Result<SimTime> WriteBlocks(Lba lba, std::uint32_t count, SimTime issue,
                              std::span<const std::uint8_t> data = {}) override;
  // Multi-stream write: like WriteBlocks but labeled with a stream ID (clamped to
  // num_streams - 1). Streams share the logical address space but get separate flash
  // frontiers.
  Result<SimTime> WriteBlocksStream(Lba lba, std::uint32_t count, std::uint32_t stream,
                                    SimTime issue, std::span<const std::uint8_t> data = {});
  Result<SimTime> TrimBlocks(Lba lba, std::uint32_t count, SimTime issue) override;
  std::uint64_t num_blocks() const override { return logical_pages_; }
  std::uint32_t block_size() const override { return flash_.geometry().page_size; }

  const FlashDevice& flash() const { return flash_; }
  const FtlStats& ftl_stats() const { return stats_; }

  // Registers this device (and its inner flash, under `<prefix>.flash.*`) with `telemetry`:
  // FtlStats, write amplification and DRAM gauges under `<prefix>.ftl.*`, plus per-op tracing
  // spans (`<prefix>.ftl.read` / `<prefix>.ftl.write`) around host I/O.
  //
  // While attached, GC decisions are logged as events (kGcVictim on victim selection, kGcCycle
  // on completion) and each GC cycle becomes a maintenance slice on the "<prefix>.ftl.gc"
  // timeline track; "<prefix>.ftl.free_blocks" and "<prefix>.ftl.write_amplification" are
  // sampled as timeline series once the timeline is enabled.
  void AttachTelemetry(Telemetry* telemetry, std::string_view prefix = "conv");

  // Physical-flash-writes / host-writes since construction. >= 1 once anything was written.
  double WriteAmplification() const;

  // DRAM footprint under the paper's 4 B/entry model.
  DramUsage ComputeDramUsage() const;

  // Runs up to `max_cycles` background GC cycles if the free pool is below the background
  // watermark. Returns the number of cycles run. Hosts call this during idle periods.
  std::uint32_t RunBackgroundGc(SimTime now, std::uint32_t max_cycles);

  // Total free (erased, unopened) blocks in all plane pools.
  std::uint64_t FreeBlocks() const;

  // Validates internal invariants (L2P/P2L agreement, valid counters). For tests; O(capacity).
  Status CheckConsistency() const;

 private:
  static constexpr std::uint64_t kUnmapped = ~0ULL;

  struct PlaneState {
    std::vector<std::uint32_t> free_blocks;      // Erased blocks ready to open.
    std::vector<std::uint32_t> host_frontiers;   // Per-stream blocks receiving host writes.
    std::uint32_t gc_frontier = kNoBlock;        // Block currently receiving GC copies.
  };
  static constexpr std::uint32_t kNoBlock = ~0U;

  struct BlockMeta {
    std::uint32_t valid_pages = 0;
    SimTime last_write = 0;  // For cost-benefit aging.
    bool open = false;       // Is a frontier (excluded from victim selection).
  };

  // Programs one logical page to the next frontier slot of `stream` (or the GC frontier).
  // Returns program completion.
  Result<SimTime> AppendPage(std::uint64_t lpn, SimTime issue, std::span<const std::uint8_t> data,
                             bool gc_write, std::uint32_t stream);
  // Picks the plane and physical slot for the next append. May consume a free block. Fails
  // with kNoFreeBlocks if the pool is empty.
  Result<PhysAddr> NextSlot(SimTime issue, bool gc_write, std::uint32_t stream);
  // Allocates the least-worn free block on the given plane.
  std::uint32_t TakeFreeBlock(std::uint32_t plane_index);
  // One full GC cycle: pick victim, copy valid pages forward, erase. Returns erase completion,
  // or an error if no eligible victim exists.
  Result<SimTime> GcCycle(SimTime now);
  // Foreground GC driver: brings the free pool back above target. Returns last completion.
  SimTime MaybeForegroundGc(SimTime now);
  // Victim selection over all full blocks. Returns flat block index or kUnmapped.
  std::uint64_t PickVictim(SimTime now, bool wear_migration);
  void InvalidatePage(std::uint64_t lpn, SimTime now);
  bool PageValid(std::uint64_t ppn) const;
  // Host-visible ack time for a buffered write whose program completes at `program_done`.
  SimTime BufferAck(SimTime data_in, SimTime program_done);
  void PublishMetrics();

  FlashDevice flash_ BLOCKHEAD_SHARD_SHARED;
  FtlConfig config_ BLOCKHEAD_SHARD_SHARED;
  std::uint64_t logical_pages_ BLOCKHEAD_SHARD_SHARED = 0;
  std::uint32_t gc_trigger_blocks_ BLOCKHEAD_SHARD_SHARED = 0;
  std::uint32_t gc_target_blocks_ BLOCKHEAD_SHARD_SHARED = 0;

  std::vector<std::uint64_t> l2p_
      BLOCKHEAD_SHARD_SHARED;  // Logical page -> flat physical page (or kUnmapped).
  std::vector<std::uint64_t> p2l_
      BLOCKHEAD_SHARD_SHARED;  // Flat physical page -> logical page (or kUnmapped).
  std::vector<BlockMeta> block_meta_ BLOCKHEAD_SHARD_LOCAL(plane);
  std::vector<PlaneState> planes_ BLOCKHEAD_SHARD_LOCAL(plane);
  std::vector<std::uint32_t> next_host_plane_
      BLOCKHEAD_SHARD_SHARED;  // Per-stream round-robin striping cursors.
  std::uint32_t next_gc_plane_ BLOCKHEAD_SHARD_SHARED = 0;
  std::uint64_t free_block_count_ BLOCKHEAD_SHARD_SHARED = 0;
  std::uint64_t victim_scan_cursor_
      BLOCKHEAD_SHARD_SHARED = 0;  // Rotating start for victim scans (tie fairness).
  std::uint64_t gc_cycles_since_wear_check_ BLOCKHEAD_SHARD_SHARED = 0;
  std::deque<SimTime> inflight_program_completions_
      BLOCKHEAD_SHARD_SHARED;  // Write-buffer occupancy model.

  FtlStats stats_ BLOCKHEAD_SHARD_SHARED;
  Telemetry* telemetry_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  std::string metric_prefix_ BLOCKHEAD_SIM_GLOBAL;
  int sampler_group_ BLOCKHEAD_SIM_GLOBAL = -1;  // Timeline group for free-pool / WA gauges.

  // State-digest audit of the mapping table ("<prefix>.ftl.l2p"): one entry per mapped
  // logical page hashing (lpn, ppn). p2l_ is derived state and is not digested separately.
  SubsystemDigest* audit_l2p_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  static std::uint64_t L2pEntryHash(std::uint64_t lpn, std::uint64_t ppn) {
    return AuditHashWords({lpn, ppn});
  }
  // Divergence-injection test hook (BLOCKHEAD_AUDIT_PERTURB_GC_AT=<ns>): the first victim
  // selection at now >= the given SimTime picks the second-best block instead of the best,
  // once. Used by ci.sh and the EXPERIMENTS.md walkthrough to prove digest_bisect localizes
  // a single perturbed GC decision; never set in normal runs.
  SimTime perturb_gc_at_ BLOCKHEAD_SHARD_SHARED = 0;
  bool perturb_pending_ BLOCKHEAD_SHARD_SHARED = false;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_FTL_CONVENTIONAL_SSD_H_
