#include "src/zonefs/zone_fs.h"

namespace blockhead {

ZoneFs::ZoneFs(ZnsDevice* device) : device_(device) {}

Result<SimTime> ZoneFs::Append(std::uint32_t file, std::span<const std::uint8_t> data,
                               SimTime now) {
  if (file >= device_->num_zones()) {
    return ErrorCode::kNotFound;
  }
  const std::uint32_t page_size = device_->page_size();
  if (data.empty() || data.size() % page_size != 0) {
    return Status(ErrorCode::kInvalidArgument, "zonefs writes must be whole pages");
  }
  const std::uint32_t pages = static_cast<std::uint32_t>(data.size() / page_size);
  const ZoneDescriptor d = device_->zone(ZoneId{file});
  // The device enforces the rest (sequential-only, capacity, zone state); errors surface
  // unchanged, exactly as zonefs surfaces zone errors to applications.
  return device_->Write(ZoneId{file}, d.write_pointer, pages, now, data);
}

Result<SimTime> ZoneFs::Read(std::uint32_t file, std::uint64_t offset,
                             std::span<std::uint8_t> out, SimTime now) {
  if (file >= device_->num_zones()) {
    return ErrorCode::kNotFound;
  }
  const std::uint32_t page_size = device_->page_size();
  const ZoneDescriptor d = device_->zone(ZoneId{file});
  if (offset + out.size() > d.write_pointer * page_size) {
    return ErrorCode::kOutOfRange;
  }
  if (offset % page_size != 0 || out.size() % page_size != 0) {
    return Status(ErrorCode::kInvalidArgument, "zonefs reads must be page-aligned");
  }
  return device_->Read(Lba{d.start_lba + offset / page_size},
                       static_cast<std::uint32_t>(out.size() / page_size), now, out);
}

Result<SimTime> ZoneFs::Truncate(std::uint32_t file, SimTime now) {
  if (file >= device_->num_zones()) {
    return ErrorCode::kNotFound;
  }
  return device_->ResetZone(ZoneId{file}, now);
}

Result<std::uint64_t> ZoneFs::Size(std::uint32_t file) const {
  if (file >= device_->num_zones()) {
    return ErrorCode::kNotFound;
  }
  return device_->zone(ZoneId{file}).write_pointer *
         static_cast<std::uint64_t>(device_->page_size());
}

Result<std::uint64_t> ZoneFs::MaxSize(std::uint32_t file) const {
  if (file >= device_->num_zones()) {
    return ErrorCode::kNotFound;
  }
  return device_->zone(ZoneId{file}).capacity_pages *
         static_cast<std::uint64_t>(device_->page_size());
}

}  // namespace blockhead
