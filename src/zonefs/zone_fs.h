// ZoneFS-style interface: every zone is exposed as one file that carries the zone's own
// restrictions (append-only, truncate-only-to-zero). The paper contrasts this with
// fully-featured filesystems in §4.1: "F2FS is a fully-featured, POSIX-compliant filesystem,
// while ZoneFS treats zones as files with the same restrictions as zones themselves."
//
// Compared to zonefile (the ZenFS-style backend), this layer has: fixed naming (one file per
// zone), no metadata journal (the device IS the metadata: file size == write pointer), no
// compaction, no lifetime hints — maximal control and minimal convenience.

#ifndef BLOCKHEAD_SRC_ZONEFS_ZONE_FS_H_
#define BLOCKHEAD_SRC_ZONEFS_ZONE_FS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/status.h"
#include "src/util/types.h"
#include "src/zns/zns_device.h"

namespace blockhead {

class ZoneFs {
 public:
  // `device` must outlive the filesystem. File i <-> zone i; sizes are recovered from the
  // device's write pointers (page-granular, as real zonefs is block-granular).
  explicit ZoneFs(ZnsDevice* device);

  std::uint32_t FileCount() const { return device_->num_zones(); }

  // Appends whole pages at the file's end. `data` must be a multiple of the page size
  // (zonefs requires direct, aligned, sequential writes — no byte-granular buffering).
  Result<SimTime> Append(std::uint32_t file, std::span<const std::uint8_t> data, SimTime now);

  // Reads out.size() bytes at `offset`; the readable size is exactly the written prefix.
  Result<SimTime> Read(std::uint32_t file, std::uint64_t offset, std::span<std::uint8_t> out,
                       SimTime now);

  // The only truncation zonefs supports: to zero (a zone reset).
  Result<SimTime> Truncate(std::uint32_t file, SimTime now);

  // Written bytes (page-granular): write_pointer * page_size.
  Result<std::uint64_t> Size(std::uint32_t file) const;
  // Maximum bytes the file can ever hold (shrinks as the zone wears).
  Result<std::uint64_t> MaxSize(std::uint32_t file) const;

 private:
  ZnsDevice* device_;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_ZONEFS_ZONE_FS_H_
