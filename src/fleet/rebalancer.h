// Wear-skew-aware shard rebalancer.
//
// Consistent hashing spreads *load* but not *wear*: a skewed key distribution concentrates
// writes on the devices hosting hot shards, so those devices burn erase cycles faster and
// retire earlier even while the fleet average looks healthy. The rebalancer watches per-device
// wear (mean erase count and projected days-to-wearout, both derived from each device's
// provenance ledger) and, when the skew crosses a threshold, plans one migration: move the
// hottest shard replica off the most-worn device onto the least-worn device with a free slot.
//
// The rebalancer only *plans*; the Fleet executes the copy (in bounded chunks, attributed to
// WriteCause::kFleetMigration on the target device's ledger), flips the placement, and trims
// the source slot. One plan at a time keeps the control loop simple and the simulation
// deterministic.

#ifndef BLOCKHEAD_SRC_FLEET_REBALANCER_H_
#define BLOCKHEAD_SRC_FLEET_REBALANCER_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "src/core/strong_id.h"
#include "src/util/types.h"

namespace blockhead {

struct RebalancerConfig {
  bool enabled = true;
  SimTime plan_interval = 50 * kMillisecond;  // Minimum model time between planning passes.
  double skew_threshold = 1.15;  // Plan only when max/mean device wear exceeds this ratio.
  std::uint64_t min_erases = 64;  // Ignore wear skew until the fleet has at least this many
                                  // total erases (early noise is not a signal).
};

// One device's wear, as seen by the planner. Filled by the Fleet from the device's ledger.
struct DeviceWearSnapshot {
  std::uint32_t device_index = 0;
  double mean_erase_count = 0.0;  // total_erases / total_blocks for the device's flash.
  std::uint64_t total_erases = 0;
  std::uint32_t free_slots = 0;  // Shard-sized windows not currently holding a replica.
};

// A planned migration: move shard `shard`'s replica currently on `source_device` to
// `target_device`. The Fleet resolves the replica/slot indices when it starts the copy.
struct MigrationPlan {
  ShardId shard{0};
  std::uint32_t source_device = 0;
  std::uint32_t target_device = 0;
};

class Rebalancer {
 public:
  explicit Rebalancer(const RebalancerConfig& config) : config_(config) {}

  const RebalancerConfig& config() const { return config_; }

  // Returns the wear skew (max mean erase count / fleet mean) for the given snapshots, or 0
  // when no device has any erases.
  static double WearSkew(std::span<const DeviceWearSnapshot> devices);

  // Considers a planning pass at time `now`. Returns a plan when (a) enough model time has
  // passed since the last pass, (b) wear skew exceeds the threshold, and (c) a shard on the
  // most-worn device can move to a less-worn device with a free slot. `shard_write_pages` is
  // indexed by shard and counts host pages written per shard (hotness); `shard_devices[s]`
  // lists the device ordinals currently holding shard s (so the planner never proposes a
  // target that already has a replica). Returns nullopt when no move is warranted.
  std::optional<MigrationPlan> Plan(SimTime now, std::span<const DeviceWearSnapshot> devices,
                                    std::span<const std::uint64_t> shard_write_pages,
                                    std::span<const std::vector<std::uint32_t>> shard_devices);

  std::uint64_t plans_made() const { return plans_made_; }

 private:
  RebalancerConfig config_;
  SimTime last_plan_time_ = 0;
  bool ever_planned_ = false;
  std::uint64_t plans_made_ = 0;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_FLEET_REBALANCER_H_
