#include "src/fleet/rebalancer.h"

#include <algorithm>

namespace blockhead {

double Rebalancer::WearSkew(std::span<const DeviceWearSnapshot> devices) {
  if (devices.empty()) {
    return 0.0;
  }
  double max_wear = 0.0;
  double sum_wear = 0.0;
  for (const DeviceWearSnapshot& d : devices) {
    max_wear = std::max(max_wear, d.mean_erase_count);
    sum_wear += d.mean_erase_count;
  }
  const double mean = sum_wear / static_cast<double>(devices.size());
  if (mean <= 0.0) {
    return 0.0;
  }
  return max_wear / mean;
}

std::optional<MigrationPlan> Rebalancer::Plan(
    SimTime now, std::span<const DeviceWearSnapshot> devices,
    std::span<const std::uint64_t> shard_write_pages,
    std::span<const std::vector<std::uint32_t>> shard_devices) {
  if (!config_.enabled || devices.size() < 2) {
    return std::nullopt;
  }
  if (ever_planned_ && now < last_plan_time_ + config_.plan_interval) {
    return std::nullopt;
  }
  ever_planned_ = true;
  last_plan_time_ = now;

  std::uint64_t total_erases = 0;
  for (const DeviceWearSnapshot& d : devices) {
    total_erases += d.total_erases;
  }
  if (total_erases < config_.min_erases) {
    return std::nullopt;
  }
  if (WearSkew(devices) < config_.skew_threshold) {
    return std::nullopt;
  }

  // Source: the most-worn device. Target candidates: less-worn devices with a free slot,
  // tried from least worn up. Ties break on device index for determinism.
  const DeviceWearSnapshot* source = &devices[0];
  for (const DeviceWearSnapshot& d : devices) {
    if (d.mean_erase_count > source->mean_erase_count) {
      source = &d;
    }
  }
  std::vector<const DeviceWearSnapshot*> targets;
  for (const DeviceWearSnapshot& d : devices) {
    if (d.device_index != source->device_index && d.free_slots > 0 &&
        d.mean_erase_count < source->mean_erase_count) {
      targets.push_back(&d);
    }
  }
  if (targets.empty()) {
    return std::nullopt;
  }
  std::sort(targets.begin(), targets.end(),
            [](const DeviceWearSnapshot* a, const DeviceWearSnapshot* b) {
              if (a->mean_erase_count != b->mean_erase_count) {
                return a->mean_erase_count < b->mean_erase_count;
              }
              return a->device_index < b->device_index;
            });

  // Shard: the hottest (most host pages written) shard with a replica on the source device
  // that is absent from the chosen target. Walk targets from least worn until one admits a
  // shard; ties on hotness break on shard index.
  for (const DeviceWearSnapshot* target : targets) {
    std::optional<ShardId> best;
    std::uint64_t best_pages = 0;
    for (std::size_t s = 0; s < shard_devices.size(); ++s) {
      const std::vector<std::uint32_t>& placed = shard_devices[s];
      const bool on_source =
          std::find(placed.begin(), placed.end(), source->device_index) != placed.end();
      const bool on_target =
          std::find(placed.begin(), placed.end(), target->device_index) != placed.end();
      if (!on_source || on_target) {
        continue;
      }
      const std::uint64_t pages = s < shard_write_pages.size() ? shard_write_pages[s] : 0;
      if (!best.has_value() || pages > best_pages) {
        best = ShardId(static_cast<std::uint32_t>(s));
        best_pages = pages;
      }
    }
    if (best.has_value()) {
      ++plans_made_;
      return MigrationPlan{*best, source->device_index, target->device_index};
    }
  }
  return std::nullopt;
}

}  // namespace blockhead
