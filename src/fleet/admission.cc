#include "src/fleet/admission.h"

#include <algorithm>
#include <cassert>

namespace blockhead {

const char* AdmissionDecisionName(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::kAdmit:
      return "admit";
    case AdmissionDecision::kShedRate:
      return "shed_rate";
    case AdmissionDecision::kShedQueue:
      return "shed_queue";
  }
  return "unknown";
}

ShardAdmission::ShardAdmission(const AdmissionConfig& config, std::uint32_t num_shards)
    : config_(config) {
  shards_.resize(num_shards);
  for (ShardState& state : shards_) {
    state.tokens = static_cast<double>(config_.burst_pages);
  }
}

void ShardAdmission::Refill(ShardState* state, SimTime now) const {
  if (config_.tokens_per_second == 0 || now <= state->last_refill) {
    state->last_refill = std::max(state->last_refill, now);
    return;
  }
  const double elapsed_sec =
      static_cast<double>(now - state->last_refill) / static_cast<double>(kSecond);
  state->tokens = std::min(
      static_cast<double>(config_.burst_pages),
      state->tokens + elapsed_sec * static_cast<double>(config_.tokens_per_second));
  state->last_refill = now;
}

AdmissionDecision ShardAdmission::Admit(ShardId shard, SimTime now, std::uint64_t pages,
                                        bool is_write, const RequestContext& ctx) {
  assert(shard.value() < shards_.size());
  ShardState& state = shards_[shard.value()];
  TenantTally& tenant = tenant_tallies_[ctx.tenant];
  if (!config_.enabled) {
    ++state.admitted;
    ++state.outstanding;
    ++total_admitted_;
    ++tenant.admitted;
    return AdmissionDecision::kAdmit;
  }
  if (config_.max_queue_depth != 0 && state.outstanding >= config_.max_queue_depth) {
    ++state.shed_queue;
    ++total_shed_queue_;
    ++tenant.shed;
    return AdmissionDecision::kShedQueue;
  }
  if (is_write && config_.tokens_per_second != 0) {
    Refill(&state, now);
    if (state.tokens < static_cast<double>(pages)) {
      ++state.shed_rate;
      ++total_shed_rate_;
      ++tenant.shed;
      return AdmissionDecision::kShedRate;
    }
    state.tokens -= static_cast<double>(pages);
  }
  ++state.admitted;
  ++state.outstanding;
  ++total_admitted_;
  ++tenant.admitted;
  return AdmissionDecision::kAdmit;
}

void ShardAdmission::RecordCompletion(ShardId shard) {
  assert(shard.value() < shards_.size());
  ShardState& state = shards_[shard.value()];
  assert(state.outstanding > 0 && "completion without a matching admit");
  --state.outstanding;
}

std::uint32_t ShardAdmission::outstanding(ShardId shard) const {
  assert(shard.value() < shards_.size());
  return shards_[shard.value()].outstanding;
}

}  // namespace blockhead
