// Consistent-hash shard router for the fleet layer.
//
// The fleet exports one flat logical page space, split into fixed-size shards (contiguous LBA
// ranges). Each shard is placed on `replicas` distinct devices (write-all / read-one). Initial
// placement comes from a consistent-hash ring with virtual nodes — each device contributes
// `virtual_nodes` ring points, a shard lands on the first distinct devices clockwise from its
// own hash — so adding or removing a device moves only the shards that hash near its vnodes,
// not the whole mapping. The wear-aware rebalancer (src/fleet/rebalancer.h) may later override
// individual replica placements; the router only *proposes* placement (PreferenceOrder) and
// picks read replicas, while the Fleet owns the live placement table (device + slot).
//
// Determinism: the ring is built from a seeded 64-bit mixer, ties break on (hash, device,
// vnode), and the round-robin read cursor is plain per-shard state — same seed, same
// decisions, byte-identical metric dumps.

#ifndef BLOCKHEAD_SRC_FLEET_ROUTER_H_
#define BLOCKHEAD_SRC_FLEET_ROUTER_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "src/core/strong_id.h"
#include "src/telemetry/reqpath/request_path.h"

namespace blockhead {

// How a read chooses among a shard's replicas (writes always go to all of them).
enum class ReadReplicaPolicy {
  kPrimaryOnly,   // Always replica 0 (maximal cache locality, no load spreading).
  kRoundRobin,    // Rotate per request (uniform spreading, ignores queue state).
  kLeastPending,  // Replica whose device has the fewest outstanding ops (join-shortest-queue).
};

const char* ReadReplicaPolicyName(ReadReplicaPolicy policy);

struct RouterConfig {
  std::uint32_t num_shards = 16;
  std::uint32_t replicas = 2;        // Distinct devices per shard (write-all / read-one).
  std::uint32_t virtual_nodes = 64;  // Ring points contributed per device.
  ReadReplicaPolicy read_policy = ReadReplicaPolicy::kRoundRobin;
  std::uint64_t seed = 1;            // Hash salt for the ring and shard points.
};

// Where one replica of a shard lives: a device ordinal and a slot (shard-sized window) within
// that device's logical space.
struct ShardPlacement {
  std::uint32_t device_index = 0;
  std::uint32_t slot_index = 0;
};

class ShardRouter {
 public:
  ShardRouter(const RouterConfig& config, std::uint32_t num_devices);

  const RouterConfig& config() const { return config_; }
  std::uint32_t num_devices() const { return num_devices_; }

  // Every device exactly once, in clockwise ring order starting at the shard's hash point.
  // The fleet walks this list and takes the first `replicas` devices with a free slot.
  std::vector<std::uint32_t> PreferenceOrder(ShardId shard) const;

  // Picks the replica slot a read should use. `replica_devices` are the shard's current
  // replica device ordinals (placement order); `device_pending` is indexed by device ordinal
  // and holds outstanding-op counts (used by kLeastPending; may be empty otherwise). Returns
  // an index into `replica_devices`. Round-robin state advances per call. `ctx` only feeds
  // the per-tenant routing tallies; the pick never depends on it.
  std::uint32_t PickReadReplica(ShardId shard, std::span<const std::uint32_t> replica_devices,
                                std::span<const std::uint32_t> device_pending,
                                const RequestContext& ctx = {});

  // Read picks routed per tenant id (RequestContext threading; observability only).
  const std::map<std::uint32_t, std::uint64_t>& tenant_reads() const { return tenant_reads_; }

 private:
  struct RingPoint {
    std::uint64_t hash = 0;
    std::uint32_t device_index = 0;
  };

  RouterConfig config_;
  std::uint32_t num_devices_ = 0;
  std::vector<RingPoint> ring_;               // Sorted by (hash, device).
  std::vector<std::uint32_t> round_robin_;    // Per-shard read cursor.
  std::map<std::uint32_t, std::uint64_t> tenant_reads_;  // Per-tenant routed-read tallies.
};

// Deterministic 64-bit mixer (splitmix64 finalizer) shared by the ring and shard points.
std::uint64_t FleetHash64(std::uint64_t x);

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_FLEET_ROUTER_H_
