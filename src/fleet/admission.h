// Per-shard admission control: a token bucket (sustained write-page rate with a burst
// allowance) plus a queue-depth cap on outstanding ops, both enforced *before* an op is
// issued to a device.
//
// Admission exists so one hot shard cannot monopolize its replica devices and drag the tail
// of every co-located shard: an over-rate or over-depth request is shed at the fleet edge
// (cheap, counted) instead of queuing behind the device (expensive, invisible). Sheds are
// reported per shard and in total so benches can plot shed rate against offered load.
//
// Everything runs on SimTime: the bucket refills as a pure function of the issue timestamp,
// and queue depth is maintained by the caller reporting completion times — no wall clock, no
// background refill thread, deterministic for a fixed op sequence.

#ifndef BLOCKHEAD_SRC_FLEET_ADMISSION_H_
#define BLOCKHEAD_SRC_FLEET_ADMISSION_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/core/strong_id.h"
#include "src/telemetry/reqpath/request_path.h"
#include "src/util/types.h"

namespace blockhead {

struct AdmissionConfig {
  bool enabled = true;
  // Token bucket, in pages. A write for k pages consumes k tokens; reads are exempt from the
  // rate limit (they cost no flash endurance) but still count against queue depth.
  std::uint64_t tokens_per_second = 0;  // 0 = unlimited rate.
  std::uint64_t burst_pages = 256;      // Bucket capacity; also the initial fill.
  // Outstanding (issued, not yet completed) ops allowed per shard. 0 = unlimited.
  std::uint32_t max_queue_depth = 64;
};

// Why a request was admitted or shed.
enum class AdmissionDecision {
  kAdmit,
  kShedRate,   // Token bucket empty (write rate above the sustained+burst budget).
  kShedQueue,  // Shard already has max_queue_depth ops outstanding.
};

const char* AdmissionDecisionName(AdmissionDecision decision);

class ShardAdmission {
 public:
  ShardAdmission(const AdmissionConfig& config, std::uint32_t num_shards);

  // Decides whether an op for `pages` pages may issue on `shard` at time `now`. On kAdmit the
  // tokens are consumed (writes only) and the op is counted outstanding; the caller MUST later
  // call RecordCompletion(shard) exactly once. On a shed nothing is consumed or counted.
  // `ctx` only feeds the per-tenant tallies; it never changes the decision.
  AdmissionDecision Admit(ShardId shard, SimTime now, std::uint64_t pages, bool is_write,
                          const RequestContext& ctx = {});

  // Marks one previously admitted op on `shard` complete, freeing its queue-depth slot.
  void RecordCompletion(ShardId shard);

  std::uint32_t outstanding(ShardId shard) const;
  std::uint64_t admitted(ShardId shard) const { return shards_[shard.value()].admitted; }
  std::uint64_t shed_rate(ShardId shard) const { return shards_[shard.value()].shed_rate; }
  std::uint64_t shed_queue(ShardId shard) const { return shards_[shard.value()].shed_queue; }

  std::uint64_t total_admitted() const { return total_admitted_; }
  std::uint64_t total_shed_rate() const { return total_shed_rate_; }
  std::uint64_t total_shed_queue() const { return total_shed_queue_; }
  std::uint64_t total_shed() const { return total_shed_rate_ + total_shed_queue_; }

  // Per-tenant decision tallies, keyed by RequestContext tenant id.
  struct TenantTally {
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
  };
  const std::map<std::uint32_t, TenantTally>& tenant_tallies() const { return tenant_tallies_; }

 private:
  struct ShardState {
    double tokens = 0.0;          // Fractional pages; refilled lazily from last_refill.
    SimTime last_refill{0};
    std::uint32_t outstanding = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed_rate = 0;
    std::uint64_t shed_queue = 0;
  };

  void Refill(ShardState* state, SimTime now) const;

  AdmissionConfig config_;
  std::vector<ShardState> shards_;
  std::uint64_t total_admitted_ = 0;
  std::uint64_t total_shed_rate_ = 0;
  std::uint64_t total_shed_queue_ = 0;
  std::map<std::uint32_t, TenantTally> tenant_tallies_;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_FLEET_ADMISSION_H_
