// Fleet: N simulated SSDs (mixed ZNS-backed and conventional, heterogeneous geometries)
// behind one flat logical page space, sharded by a consistent-hash router with write-all /
// read-one replication, guarded by per-shard admission control, and rebalanced by a
// wear-skew-aware migrator.
//
// This is the serving layer the paper's argument ultimately lands on: once zoned devices make
// per-device write amplification a host-controlled quantity, the interesting engineering moves
// up a level — which device a shard lives on, how replica reads spread, and how wear (now
// observable per cause through the provenance ledger) feeds back into placement. The fleet
// therefore consumes the endurance projections the ledger computes and answers with shard
// migrations, attributed on the target device as WriteCause::kFleetMigration so fleet-induced
// writes stay separable from application writes in every WA breakdown.
//
// Determinism: everything runs on the single SimTime clock. Devices never block — they take an
// issue time and return a completion time — and the fleet steps background work (GC pumps,
// migration chunks, rebalancer planning) round-robin from an explicit Step(now) call driven by
// the workload loop. Same seed, same fleet config → byte-identical metric dumps and ledgers.
//
// Layering: each device gets its own Telemetry bundle (registry + provenance ledger), so
// per-device WA identities stay self-contained; fleet-level views (merged latency histograms,
// summed counters) are folded from the per-device registries with src/telemetry/aggregate.h.
// The fleet talks to devices exclusively through the BlockDevice host interface plus the
// public maintenance pumps — never through device internals (enforced by tools/lint.py).

#ifndef BLOCKHEAD_SRC_FLEET_FLEET_H_
#define BLOCKHEAD_SRC_FLEET_FLEET_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/block/block_device.h"
#include "src/core/strong_id.h"
#include "src/fleet/admission.h"
#include "src/fleet/rebalancer.h"
#include "src/fleet/router.h"
#include "src/ftl/conventional_ssd.h"
#include "src/hostftl/host_ftl.h"
#include "src/telemetry/telemetry.h"
#include "src/util/histogram.h"
#include "src/util/status.h"
#include "src/util/types.h"
#include "src/workload/workload.h"
#include "src/zns/zns_device.h"

namespace blockhead {

enum class DeviceKind {
  kConventional,  // ConventionalSsd: block interface native, GC in "firmware".
  kZns,           // ZnsDevice + HostFtlBlockDevice: block interface emulated on the host.
};

const char* DeviceKindName(DeviceKind kind);

// One device slot in the fleet. Geometry/timing may differ per device (heterogeneous fleet).
struct FleetDeviceConfig {
  DeviceKind kind = DeviceKind::kConventional;
  FlashConfig flash;
  FtlConfig ftl;          // Used when kind == kConventional.
  ZnsConfig zns;          // Used when kind == kZns.
  HostFtlConfig hostftl;  // Used when kind == kZns.
};

struct FleetConfig {
  std::vector<FleetDeviceConfig> devices;
  RouterConfig router;
  AdmissionConfig admission;
  RebalancerConfig rebalancer;
  // Logical pages per shard. The fleet exports router.num_shards * shard_pages logical pages;
  // a request may not cross a shard boundary.
  std::uint64_t shard_pages = 256;
  // Pages a migration copies per Step call (bounds how much background copy work can pile
  // into one simulated instant).
  std::uint32_t migration_chunk_pages = 32;

  std::uint64_t num_pages() const {
    return static_cast<std::uint64_t>(router.num_shards) * shard_pages;
  }

  // A mixed heterogeneous fleet for benches and tests: `num_devices` small devices with
  // alternating geometries (48/64 blocks per plane), fast test timing with a finite
  // endurance budget (so wear projections are meaningful), and `zns_fraction` of them
  // ZNS-backed (spread evenly). `store_data` false keeps big benches cheap.
  static FleetConfig Mixed(std::uint32_t num_devices, double zns_fraction, std::uint64_t seed,
                           bool store_data = false);
};

struct FleetStats {
  std::uint64_t app_reads = 0;
  std::uint64_t app_writes = 0;
  std::uint64_t app_trims = 0;
  std::uint64_t app_pages_read = 0;
  std::uint64_t app_pages_written = 0;
  std::uint64_t migrations_started = 0;
  std::uint64_t migrations_completed = 0;
  std::uint64_t migration_pages_copied = 0;
  // Foreground writes mirrored to an in-flight migration target to keep it consistent.
  std::uint64_t dual_write_pages = 0;
};

class Fleet {
 public:
  explicit Fleet(const FleetConfig& config);
  ~Fleet();

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  const FleetConfig& config() const { return config_; }
  std::uint32_t num_devices() const { return static_cast<std::uint32_t>(devices_.size()); }
  std::uint64_t num_pages() const { return config_.num_pages(); }
  std::uint32_t page_size() const;

  // Fleet data path. `lba` addresses the fleet's flat logical page space; a request must lie
  // within one shard (callers clamp — see RunFleetClosedLoop). Writes go to every replica
  // (completion = slowest replica); reads go to one replica picked by the router policy.
  // Admission-shed requests fail with kBusy and touch no device.
  //
  // `ctx` threads the request identity (tenant/stream id + op class) through router,
  // admission, and the reqpath critical-path ledger; it never changes routing or admission
  // decisions, and is read only for the duration of the call (lint-enforced: by const-ref,
  // never stored).
  Result<SimTime> Read(Lba lba, std::uint32_t count, SimTime issue,
                       std::span<std::uint8_t> out = {}, const RequestContext& ctx = {});
  Result<SimTime> Write(Lba lba, std::uint32_t count, SimTime issue,
                        std::span<const std::uint8_t> data = {}, const RequestContext& ctx = {});
  Result<SimTime> Trim(Lba lba, std::uint32_t count, SimTime issue,
                       const RequestContext& ctx = {});

  // One background round: pumps the next device's maintenance (round-robin), then advances
  // the in-flight migration by one chunk, or (when idle) lets the rebalancer plan one.
  void Step(SimTime now);

  // Registers fleet-level metrics with `telemetry` under `<prefix>.*`: admission totals,
  // migration counters, wear skew and per-device wear gauges, merged (cross-device) latency
  // histograms, and per-shard latency percentile gauges. Migration start/completion is logged
  // as kShardMigration events. Per-device telemetry stays in the per-device bundles.
  void AttachTelemetry(Telemetry* telemetry, std::string_view prefix = "fleet");

  // Starts migrating `shard`'s replica `replica_index` to `target_device` (which must not
  // already hold the shard and must have a free slot). One migration at a time. The copy
  // advances chunk-by-chunk in Step(); foreground writes to the shard are mirrored to the
  // target meanwhile. Exposed publicly so tests can drive migrations without the rebalancer.
  Status StartMigration(ShardId shard, std::uint32_t replica_index, std::uint32_t target_device);
  bool MigrationActive() const { return migration_.active; }

  // Wear views (from the per-device provenance ledgers).
  std::vector<DeviceWearSnapshot> WearSnapshots() const;
  double WearSkew() const { return Rebalancer::WearSkew(WearSnapshots()); }

  const FleetStats& stats() const { return stats_; }
  const ShardAdmission& admission() const { return admission_; }
  const ShardRouter& router() const { return router_; }
  const Rebalancer& rebalancer() const { return rebalancer_; }

  // The fleet-level telemetry bundle (nullptr when detached). Per-device reqpath ledgers
  // delegate here, so this bundle holds the cross-device critical-path attribution.
  Telemetry* telemetry() const { return telemetry_; }

  // Per-device introspection for tests and aggregation.
  Telemetry* device_telemetry(std::uint32_t device_index);
  MetricRegistry* device_registry(std::uint32_t device_index);
  // The provenance ledger key of the device's flash ("dev.flash" or "dev.zns.flash").
  const std::string& device_ledger_name(std::uint32_t device_index) const;
  DeviceKind device_kind(std::uint32_t device_index) const;
  std::span<const ShardPlacement> placement(ShardId shard) const;

 private:
  struct FleetDevice {
    DeviceKind kind = DeviceKind::kConventional;
    std::unique_ptr<Telemetry> telemetry;  // Owns this device's registry + ledger.
    std::unique_ptr<ConventionalSsd> conv;
    std::unique_ptr<ZnsDevice> zns;
    std::unique_ptr<HostFtlBlockDevice> hostftl;  // Declared after zns: destroyed first.
    BlockDevice* block = nullptr;                 // conv.get() or hostftl.get().
    std::string ledger_name;
    std::vector<bool> slot_used;                // Shard-sized windows in the device's space.
    std::deque<SimTime> inflight;               // Outstanding completion times (for routing).
    Histogram* read_latency = nullptr;          // "host.read.latency_ns" in the device registry.
    Histogram* write_latency = nullptr;         // "host.write.latency_ns".
  };

  struct MigrationState {
    bool active = false;
    ShardId shard{0};
    std::uint32_t replica_index = 0;
    std::uint32_t source_device = 0;
    std::uint32_t source_slot = 0;
    std::uint32_t target_device = 0;
    std::uint32_t target_slot = 0;
    std::uint64_t next_offset = 0;  // Pages copied so far.
  };

  void BuildDevices();
  void PlaceShards();
  std::uint32_t AllocateSlot(FleetDevice* device);  // Returns slot index; asserts one is free.
  // Drops completions at or before `now` from the in-flight windows (admission queue depth
  // and routing pending counts are both completion-time-based).
  void DrainCompletions(SimTime now);
  void CopyMigrationChunk(SimTime now);
  bool DeviceHoldsShard(std::uint32_t device_index, ShardId shard) const;
  void RunDeviceMaintenance(FleetDevice* device, SimTime now);
  void PublishMetrics();

  FleetConfig config_;
  std::vector<std::unique_ptr<FleetDevice>> devices_;
  ShardRouter router_;
  ShardAdmission admission_;
  Rebalancer rebalancer_;
  // placement_[shard * replicas + r] = replica r of shard.
  std::vector<ShardPlacement> placement_;
  std::vector<std::deque<SimTime>> shard_inflight_;   // Per-shard outstanding completions.
  std::vector<Histogram> shard_latency_;              // Per-shard combined op latency (ns).
  std::vector<std::uint64_t> shard_write_pages_;      // Hotness input for the rebalancer.
  MigrationState migration_;
  std::uint32_t step_cursor_ = 0;
  std::vector<std::uint8_t> copy_buffer_;  // Migration chunk staging (store_data fleets).

  FleetStats stats_;
  Telemetry* telemetry_ = nullptr;
  std::string metric_prefix_;

  // State-digest audit of the shard map ("<prefix>.placement"): one entry per (shard,
  // replica) slot hashing where that replica lives. Initial placement is construction-time
  // state (identical across compared runs); only migration flips fold through the digest.
  // Per-device composites ride along via StateAudit::DelegateTo in AttachTelemetry.
  SubsystemDigest* audit_placement_ = nullptr;
  static std::uint64_t PlacementEntryHash(std::uint32_t shard_index,
                                          std::uint32_t replica_index,
                                          const ShardPlacement& p) {
    return AuditHashWords({shard_index, replica_index, p.device_index, p.slot_index});
  }
};

// Closed-loop driver for the fleet data path. Unlike RunClosedLoop (which aborts on the first
// error), admission sheds (kBusy) are *expected* here: the request backs off by
// `shed_retry_delay` and retries in place (up to `max_shed_retries`, then it is dropped) —
// only non-shed errors stop the run. Queue-depth wait and shed-retry backoff are tallied
// separately from service latency (`queue_wait_ns` / `shed_retry_wait_ns`); backoff is also
// charged to the reqpath ledger as admission-queue time when telemetry is attached. Requests
// are clamped to the fleet's page space and to shard boundaries. Fleet::Step runs every
// `step_interval` ops to drive maintenance, migrations, and rebalancer planning.
struct FleetDriverOptions {
  std::uint64_t ops = 10000;
  std::uint32_t queue_depth = 4;
  std::uint32_t step_interval = 8;
  SimTime start_time = 0;
  SimTime shed_retry_delay = 20 * kMicrosecond;
  std::uint32_t max_shed_retries = 64;  // Backoffs per request before it is dropped.
  std::uint32_t tenant = 0;             // RequestContext tenant id stamped on every op.
};

struct FleetRunResult {
  Histogram read_latency;   // ns, fleet-observed (slowest replica for writes).
  Histogram write_latency;  // ns
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t trims = 0;
  std::uint64_t sheds = 0;       // Admission sheds seen (each adds one retry backoff).
  std::uint64_t shed_drops = 0;  // Requests abandoned after max_shed_retries backoffs.
  std::uint64_t queue_wait_ns = 0;       // Host-side queue-depth wait, arrival -> issue.
  std::uint64_t shed_retry_wait_ns = 0;  // Total shed backoff wait (not service latency).
  SimTime start = 0;
  SimTime end = 0;
  Status status;  // First non-shed error, if any (run stops there).

  SimTime elapsed() const { return end > start ? end - start : 0; }
};

FleetRunResult RunFleetClosedLoop(Fleet& fleet, WorkloadGenerator& gen,
                                  const FleetDriverOptions& options);

// One tenant's slice of a shared-fleet run: its own workload stream and op budget, tagged
// with `tenant` on every RequestContext (so reqpath per-tenant breakdowns and SLOs see it).
struct FleetTenantSpec {
  std::uint32_t tenant = 0;
  WorkloadGenerator* gen = nullptr;
  std::uint64_t ops = 10000;
};

// Interleaves the tenants round-robin over one shared fleet (one op per tenant per turn,
// each tenant keeping its own closed-loop clock and queue-depth window) and returns one
// result per spec, index-aligned. Fleet::Step paces on the global interleaved op count.
std::vector<FleetRunResult> RunFleetMultiTenant(Fleet& fleet,
                                                std::span<const FleetTenantSpec> tenants,
                                                const FleetDriverOptions& options);

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_FLEET_FLEET_H_
