#include "src/fleet/fleet.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "src/telemetry/aggregate.h"

namespace blockhead {

namespace {

// Zero-padded instrument-name fragments so registry order matches numeric order past 9.
std::string DeviceLabel(std::uint32_t index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "dev%02u", index);
  return buf;
}

std::string ShardLabel(std::uint32_t index) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "shard%02u", index);
  return buf;
}

}  // namespace

const char* DeviceKindName(DeviceKind kind) {
  switch (kind) {
    case DeviceKind::kConventional:
      return "conventional";
    case DeviceKind::kZns:
      return "zns";
  }
  return "unknown";
}

FleetConfig FleetConfig::Mixed(std::uint32_t num_devices, double zns_fraction,
                               std::uint64_t seed, bool store_data) {
  FleetConfig config;
  config.router.seed = seed;
  config.rebalancer.plan_interval = 100 * kMicrosecond;
  for (std::uint32_t i = 0; i < num_devices; ++i) {
    FleetDeviceConfig dev;
    // Heterogeneous geometries: alternate 64/48 erasure blocks per plane so devices differ in
    // capacity (and therefore in utilization and GC pressure) without differing in page size.
    dev.flash.geometry.channels = 2;
    dev.flash.geometry.planes_per_channel = 2;
    dev.flash.geometry.blocks_per_plane = (i % 2 == 0) ? 64 : 48;
    dev.flash.geometry.pages_per_block = 32;
    dev.flash.geometry.page_size = 4096;
    dev.flash.timing = FlashTiming::FastForTests();
    // Finite budget so endurance projections (and thus the rebalancer) have signal.
    dev.flash.timing.endurance_cycles = 3000;
    dev.flash.store_data = store_data;
    dev.flash.seed = seed + i;
    // Even spread of ZNS devices across the ordinal range (Bresenham-style).
    const auto zns_before = static_cast<std::uint64_t>(zns_fraction * i + 1e-9);
    const auto zns_after = static_cast<std::uint64_t>(zns_fraction * (i + 1) + 1e-9);
    if (zns_after > zns_before) {
      dev.kind = DeviceKind::kZns;
      dev.hostftl.op_fraction = 0.20;
    } else {
      dev.kind = DeviceKind::kConventional;
      dev.ftl.op_fraction = 0.20;
    }
    config.devices.push_back(dev);
  }
  return config;
}

Fleet::Fleet(const FleetConfig& config)
    : config_(config),
      router_(
          [&config] {
            RouterConfig r = config.router;
            // A shard cannot replicate across more devices than exist.
            r.replicas = std::min<std::uint32_t>(
                std::max<std::uint32_t>(r.replicas, 1),
                static_cast<std::uint32_t>(config.devices.size()));
            return r;
          }(),
          static_cast<std::uint32_t>(config.devices.size())),
      admission_(config.admission, config.router.num_shards),
      rebalancer_(config.rebalancer) {
  assert(!config_.devices.empty() && "a fleet needs at least one device");
  config_.router = router_.config();  // Keep the clamped replica count visible.
  BuildDevices();
  PlaceShards();
  shard_inflight_.resize(config_.router.num_shards);
  shard_latency_.resize(config_.router.num_shards);
  shard_write_pages_.assign(config_.router.num_shards, 0);
  copy_buffer_.resize(static_cast<std::size_t>(config_.migration_chunk_pages) * page_size());
}

Fleet::~Fleet() {
  if (telemetry_ != nullptr) {
    PublishMetrics();
    telemetry_->registry.RemoveProvider(metric_prefix_);
  }
}

void Fleet::BuildDevices() {
  devices_.reserve(config_.devices.size());
  for (const FleetDeviceConfig& dev_config : config_.devices) {
    auto dev = std::make_unique<FleetDevice>();
    dev->kind = dev_config.kind;
    dev->telemetry = std::make_unique<Telemetry>();
    if (dev_config.kind == DeviceKind::kConventional) {
      dev->conv = std::make_unique<ConventionalSsd>(dev_config.flash, dev_config.ftl);
      dev->conv->AttachTelemetry(dev->telemetry.get(), "dev");
      dev->block = dev->conv.get();
      dev->ledger_name = "dev.flash";
    } else {
      dev->zns = std::make_unique<ZnsDevice>(dev_config.flash, dev_config.zns);
      dev->zns->AttachTelemetry(dev->telemetry.get(), "dev.zns");
      dev->hostftl = std::make_unique<HostFtlBlockDevice>(dev->zns.get(), dev_config.hostftl);
      dev->hostftl->AttachTelemetry(dev->telemetry.get(), "dev");
      dev->block = dev->hostftl.get();
      dev->ledger_name = "dev.zns.flash";
    }
    const std::uint64_t slots = dev->block->num_blocks() / config_.shard_pages;
    dev->slot_used.assign(static_cast<std::size_t>(slots), false);
    dev->read_latency = dev->telemetry->registry.GetHistogram("host.read.latency_ns");
    dev->write_latency = dev->telemetry->registry.GetHistogram("host.write.latency_ns");
    devices_.push_back(std::move(dev));
  }
  for (const auto& dev : devices_) {
    assert(dev->block->block_size() == devices_[0]->block->block_size() &&
           "fleet devices must share a logical block size");
    (void)dev;
  }
}

std::uint32_t Fleet::AllocateSlot(FleetDevice* device) {
  for (std::size_t i = 0; i < device->slot_used.size(); ++i) {
    if (!device->slot_used[i]) {
      device->slot_used[i] = true;
      return static_cast<std::uint32_t>(i);
    }
  }
  assert(false && "fleet device has no free shard slot");
  return 0;
}

void Fleet::PlaceShards() {
  const std::uint32_t replicas = config_.router.replicas;
  placement_.resize(static_cast<std::size_t>(config_.router.num_shards) * replicas);
  for (std::uint32_t s = 0; s < config_.router.num_shards; ++s) {
    const std::vector<std::uint32_t> prefs = router_.PreferenceOrder(ShardId{s});
    std::uint32_t placed = 0;
    for (std::uint32_t device_index : prefs) {
      if (placed == replicas) {
        break;
      }
      FleetDevice* dev = devices_[device_index].get();
      const bool has_free =
          std::find(dev->slot_used.begin(), dev->slot_used.end(), false) != dev->slot_used.end();
      if (!has_free) {
        continue;  // Capacity-aware: skip full devices and keep walking the ring.
      }
      placement_[static_cast<std::size_t>(s) * replicas + placed] =
          ShardPlacement{device_index, AllocateSlot(dev)};
      ++placed;
    }
    assert(placed == replicas && "fleet lacks capacity to place every shard replica");
    (void)placed;
  }
}

std::uint32_t Fleet::page_size() const { return devices_[0]->block->block_size(); }

Telemetry* Fleet::device_telemetry(std::uint32_t device_index) {
  return devices_[device_index]->telemetry.get();
}

MetricRegistry* Fleet::device_registry(std::uint32_t device_index) {
  return &devices_[device_index]->telemetry->registry;
}

const std::string& Fleet::device_ledger_name(std::uint32_t device_index) const {
  return devices_[device_index]->ledger_name;
}

DeviceKind Fleet::device_kind(std::uint32_t device_index) const {
  return devices_[device_index]->kind;
}

std::span<const ShardPlacement> Fleet::placement(ShardId shard) const {
  const std::uint32_t replicas = config_.router.replicas;
  return std::span<const ShardPlacement>(
      placement_.data() + static_cast<std::size_t>(shard.value()) * replicas, replicas);
}

void Fleet::DrainCompletions(SimTime now) {
  for (const auto& dev : devices_) {
    auto& q = dev->inflight;
    q.erase(std::remove_if(q.begin(), q.end(), [now](SimTime t) { return t <= now; }), q.end());
  }
  for (std::uint32_t s = 0; s < shard_inflight_.size(); ++s) {
    auto& q = shard_inflight_[s];
    const std::size_t before = q.size();
    q.erase(std::remove_if(q.begin(), q.end(), [now](SimTime t) { return t <= now; }), q.end());
    for (std::size_t i = q.size(); i < before; ++i) {
      admission_.RecordCompletion(ShardId{s});
    }
  }
}

bool Fleet::DeviceHoldsShard(std::uint32_t device_index, ShardId shard) const {
  for (const ShardPlacement& p : placement(shard)) {
    if (p.device_index == device_index) {
      return true;
    }
  }
  if (migration_.active && migration_.shard == shard &&
      migration_.target_device == device_index) {
    return true;
  }
  return false;
}

Result<SimTime> Fleet::Read(Lba lba, std::uint32_t count, SimTime issue,
                            std::span<std::uint8_t> out, const RequestContext& ctx) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kFleet, ProfOp::kRead);
  if (count == 0 || lba.value() + count > num_pages()) {
    return ErrorCode::kOutOfRange;
  }
  const std::uint64_t offset = lba.value() % config_.shard_pages;
  if (offset + count > config_.shard_pages) {
    return Status(ErrorCode::kInvalidArgument, "fleet request crosses a shard boundary");
  }
  // Outermost-wins: when the driver already opened the request at arrival (to capture
  // admission backoff), this scope does not own it and the per-device scopes below resolve to
  // the same delegated fleet ledger.
  RequestPathLedger::RequestScope req_scope(ReqPathOf(telemetry_), ctx, issue);
  const ShardId shard{static_cast<std::uint32_t>(lba.value() / config_.shard_pages)};
  DrainCompletions(issue);
  const AdmissionDecision decision =
      admission_.Admit(shard, issue, count, /*is_write=*/false, ctx);
  if (decision != AdmissionDecision::kAdmit) {
    return Status(ErrorCode::kBusy, AdmissionDecisionName(decision));
  }
  const std::span<const ShardPlacement> replicas = placement(shard);
  std::vector<std::uint32_t> replica_devices;
  replica_devices.reserve(replicas.size());
  for (const ShardPlacement& p : replicas) {
    replica_devices.push_back(p.device_index);
  }
  std::vector<std::uint32_t> pending(devices_.size(), 0);
  for (std::size_t d = 0; d < devices_.size(); ++d) {
    pending[d] = static_cast<std::uint32_t>(devices_[d]->inflight.size());
  }
  const std::uint32_t pick = router_.PickReadReplica(shard, replica_devices, pending, ctx);
  const ShardPlacement& p = replicas[pick];
  FleetDevice* dev = devices_[p.device_index].get();
  const Lba dev_lba{static_cast<std::uint64_t>(p.slot_index) * config_.shard_pages + offset};
  Result<SimTime> done = dev->block->ReadBlocks(dev_lba, count, issue, out);
  if (!done.ok()) {
    admission_.RecordCompletion(shard);
    return done;
  }
  const SimTime completion = done.value();
  const SimTime latency = completion > issue ? completion - issue : 0;
  dev->read_latency->Record(latency);
  dev->inflight.push_back(completion);
  shard_inflight_[shard.value()].push_back(completion);
  shard_latency_[shard.value()].Record(latency);
  stats_.app_reads++;
  stats_.app_pages_read += count;
  req_scope.Complete(completion);
  return completion;
}

Result<SimTime> Fleet::Write(Lba lba, std::uint32_t count, SimTime issue,
                             std::span<const std::uint8_t> data, const RequestContext& ctx) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kFleet, ProfOp::kWrite);
  if (count == 0 || lba.value() + count > num_pages()) {
    return ErrorCode::kOutOfRange;
  }
  const std::uint64_t offset = lba.value() % config_.shard_pages;
  if (offset + count > config_.shard_pages) {
    return Status(ErrorCode::kInvalidArgument, "fleet request crosses a shard boundary");
  }
  RequestPathLedger::RequestScope req_scope(ReqPathOf(telemetry_), ctx, issue);
  const ShardId shard{static_cast<std::uint32_t>(lba.value() / config_.shard_pages)};
  DrainCompletions(issue);
  const AdmissionDecision decision =
      admission_.Admit(shard, issue, count, /*is_write=*/true, ctx);
  if (decision != AdmissionDecision::kAdmit) {
    return Status(ErrorCode::kBusy, AdmissionDecisionName(decision));
  }
  SimTime completion = issue;
  const std::span<const ShardPlacement> replicas = placement(shard);
  for (std::uint32_t r = 0; r < replicas.size(); ++r) {
    const ShardPlacement& p = replicas[r];
    FleetDevice* dev = devices_[p.device_index].get();
    const Lba dev_lba{static_cast<std::uint64_t>(p.slot_index) * config_.shard_pages + offset};
    // The primary replica charges its segments normally; secondary replicas reclassify as
    // replication fan-out. With watermark clipping, only the straggler tail beyond the
    // earlier replicas' completion actually lands in kReplication.
    RequestPathLedger::SegmentOverrideScope repl_scope(
        r == 0 ? nullptr : ReqPathOf(telemetry_), PathSegment::kReplication);
    Result<SimTime> done = dev->block->WriteBlocks(dev_lba, count, issue, data);
    if (!done.ok()) {
      admission_.RecordCompletion(shard);
      return done;
    }
    const SimTime replica_done = done.value();
    dev->write_latency->Record(replica_done > issue ? replica_done - issue : 0);
    dev->inflight.push_back(replica_done);
    completion = std::max(completion, replica_done);
  }
  // Mirror foreground writes into an in-flight migration target so the copied shard image
  // stays consistent with live data. Attributed to the migration, not the application — in
  // the wear ledger (CauseScope) and on the victim's critical path (InterferenceScope).
  if (migration_.active && migration_.shard == shard) {
    FleetDevice* dst = devices_[migration_.target_device].get();
    const Lba dst_lba{static_cast<std::uint64_t>(migration_.target_slot) * config_.shard_pages +
                      offset};
    WriteProvenance::CauseScope scope(ProvenanceOf(dst->telemetry.get()),
                                      WriteCause::kFleetMigration, StackLayer::kFleet);
    RequestPathLedger::InterferenceScope mig_scope(ReqPathOf(telemetry_),
                                                   WriteCause::kFleetMigration,
                                                   StackLayer::kFleet,
                                                   metric_prefix_ + ".migration");
    Result<SimTime> done = dst->block->WriteBlocks(dst_lba, count, issue, data);
    if (done.ok()) {
      stats_.dual_write_pages += count;
      dst->inflight.push_back(done.value());
      completion = std::max(completion, done.value());
    }
  }
  shard_inflight_[shard.value()].push_back(completion);
  const SimTime latency = completion > issue ? completion - issue : 0;
  shard_latency_[shard.value()].Record(latency);
  stats_.app_writes++;
  stats_.app_pages_written += count;
  shard_write_pages_[shard.value()] += count;
  req_scope.Complete(completion);
  return completion;
}

Result<SimTime> Fleet::Trim(Lba lba, std::uint32_t count, SimTime issue,
                            const RequestContext& ctx) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kFleet, ProfOp::kOther);
  if (count == 0 || lba.value() + count > num_pages()) {
    return ErrorCode::kOutOfRange;
  }
  const std::uint64_t offset = lba.value() % config_.shard_pages;
  if (offset + count > config_.shard_pages) {
    return Status(ErrorCode::kInvalidArgument, "fleet request crosses a shard boundary");
  }
  RequestPathLedger::RequestScope req_scope(ReqPathOf(telemetry_), ctx, issue);
  const ShardId shard{static_cast<std::uint32_t>(lba.value() / config_.shard_pages)};
  SimTime completion = issue;
  for (const ShardPlacement& p : placement(shard)) {
    FleetDevice* dev = devices_[p.device_index].get();
    const Lba dev_lba{static_cast<std::uint64_t>(p.slot_index) * config_.shard_pages + offset};
    Result<SimTime> done = dev->block->TrimBlocks(dev_lba, count, issue);
    if (!done.ok()) {
      return done;
    }
    completion = std::max(completion, done.value());
  }
  stats_.app_trims++;
  req_scope.Complete(completion);
  return completion;
}

void Fleet::RunDeviceMaintenance(FleetDevice* device, SimTime now) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_),
                                 ProfSubsystem::kFleet, ProfOp::kMaintenance);
  if (device->kind == DeviceKind::kConventional) {
    device->conv->RunBackgroundGc(now, 1);
  } else {
    device->hostftl->Pump(now, /*reads_pending=*/false, 1);
  }
}

void Fleet::Step(SimTime now) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kFleet, ProfOp::kDispatch);
  RunDeviceMaintenance(devices_[step_cursor_].get(), now);
  step_cursor_ = (step_cursor_ + 1) % static_cast<std::uint32_t>(devices_.size());

  if (migration_.active) {
    CopyMigrationChunk(now);
    return;
  }
  if (!config_.rebalancer.enabled) {
    return;
  }
  const std::vector<DeviceWearSnapshot> snapshots = WearSnapshots();
  std::vector<std::vector<std::uint32_t>> shard_devices(config_.router.num_shards);
  for (std::uint32_t s = 0; s < config_.router.num_shards; ++s) {
    for (const ShardPlacement& p : placement(ShardId{s})) {
      shard_devices[s].push_back(p.device_index);
    }
  }
  const std::optional<MigrationPlan> plan =
      rebalancer_.Plan(now, snapshots, shard_write_pages_, shard_devices);
  if (!plan.has_value()) {
    return;
  }
  // Resolve which replica of the shard sits on the plan's source device.
  const std::span<const ShardPlacement> replicas = placement(plan->shard);
  for (std::uint32_t r = 0; r < replicas.size(); ++r) {
    if (replicas[r].device_index == plan->source_device) {
      StartMigration(plan->shard, r, plan->target_device);  // Plan preconditions hold.
      return;
    }
  }
}

Status Fleet::StartMigration(ShardId shard, std::uint32_t replica_index,
                             std::uint32_t target_device) {
  if (migration_.active) {
    return Status(ErrorCode::kBusy, "a migration is already in flight");
  }
  if (shard.value() >= config_.router.num_shards ||
      replica_index >= config_.router.replicas || target_device >= devices_.size()) {
    return Status(ErrorCode::kInvalidArgument, "bad shard/replica/device index");
  }
  if (DeviceHoldsShard(target_device, shard)) {
    return Status(ErrorCode::kAlreadyExists, "target device already holds this shard");
  }
  FleetDevice* dst = devices_[target_device].get();
  if (std::find(dst->slot_used.begin(), dst->slot_used.end(), false) == dst->slot_used.end()) {
    return Status(ErrorCode::kDeviceFull, "target device has no free shard slot");
  }
  const ShardPlacement source =
      placement_[static_cast<std::size_t>(shard.value()) * config_.router.replicas +
                 replica_index];
  migration_.active = true;
  migration_.shard = shard;
  migration_.replica_index = replica_index;
  migration_.source_device = source.device_index;
  migration_.source_slot = source.slot_index;
  migration_.target_device = target_device;
  migration_.target_slot = AllocateSlot(dst);
  migration_.next_offset = 0;
  stats_.migrations_started++;
  if (telemetry_ != nullptr) {
    telemetry_->events.Append(0, TimelineEventType::kShardMigration, metric_prefix_,
                              "shard " + std::to_string(shard.value()) + " dev" +
                                  std::to_string(source.device_index) + " -> dev" +
                                  std::to_string(target_device) + " start",
                              shard.value(), target_device);
  }
  return Status::Ok();
}

void Fleet::CopyMigrationChunk(SimTime now) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kFleet, ProfOp::kMigration);
  assert(migration_.active);
  // Migration copies enter the devices through the same host entry points as real requests;
  // keep the reqpath ledger from recording them as such.
  RequestPathLedger::SuppressScope suppress(ReqPathOf(telemetry_));
  FleetDevice* src = devices_[migration_.source_device].get();
  FleetDevice* dst = devices_[migration_.target_device].get();
  const std::uint32_t chunk = static_cast<std::uint32_t>(std::min<std::uint64_t>(
      config_.migration_chunk_pages, config_.shard_pages - migration_.next_offset));
  const Lba src_lba{static_cast<std::uint64_t>(migration_.source_slot) * config_.shard_pages +
                    migration_.next_offset};
  const Lba dst_lba{static_cast<std::uint64_t>(migration_.target_slot) * config_.shard_pages +
                    migration_.next_offset};
  const std::span<std::uint8_t> buf(copy_buffer_.data(),
                                    static_cast<std::size_t>(chunk) * page_size());
  Result<SimTime> read_done = src->block->ReadBlocks(src_lba, chunk, now, buf);
  if (!read_done.ok()) {
    return;  // Transient device-side pressure; retry this chunk on the next Step.
  }
  SimTime write_done;
  {
    WriteProvenance::CauseScope scope(ProvenanceOf(dst->telemetry.get()),
                                      WriteCause::kFleetMigration, StackLayer::kFleet);
    Result<SimTime> wr = dst->block->WriteBlocks(dst_lba, chunk,
                                                 std::max(now, read_done.value()), buf);
    if (!wr.ok()) {
      return;
    }
    write_done = wr.value();
  }
  stats_.migration_pages_copied += chunk;
  migration_.next_offset += chunk;
  if (migration_.next_offset < config_.shard_pages) {
    return;
  }
  // Copy complete: flip the replica to the target, then trim and free the source slot so its
  // stale image stops counting as live data (it would otherwise inflate source-device GC).
  ShardPlacement& slot =
      placement_[static_cast<std::size_t>(migration_.shard.value()) * config_.router.replicas +
                 migration_.replica_index];
  const bool audit = audit_placement_ != nullptr && audit_placement_->armed();
  const std::uint64_t pre =
      audit ? PlacementEntryHash(migration_.shard.value(), migration_.replica_index, slot) : 0;
  slot = ShardPlacement{migration_.target_device, migration_.target_slot};
  if (audit) {
    audit_placement_->Replace(
        write_done, pre,
        PlacementEntryHash(migration_.shard.value(), migration_.replica_index, slot));
  }
  const Lba src_base{static_cast<std::uint64_t>(migration_.source_slot) * config_.shard_pages};
  (void)src->block->TrimBlocks(src_base, static_cast<std::uint32_t>(config_.shard_pages),
                               write_done);
  src->slot_used[migration_.source_slot] = false;
  stats_.migrations_completed++;
  if (telemetry_ != nullptr) {
    telemetry_->events.Append(write_done, TimelineEventType::kShardMigration, metric_prefix_,
                              "shard " + std::to_string(migration_.shard.value()) + " dev" +
                                  std::to_string(migration_.source_device) + " -> dev" +
                                  std::to_string(migration_.target_device) + " done",
                              migration_.shard.value(), migration_.target_device);
  }
  migration_.active = false;
}

std::vector<DeviceWearSnapshot> Fleet::WearSnapshots() const {
  std::vector<DeviceWearSnapshot> snapshots;
  snapshots.reserve(devices_.size());
  for (std::uint32_t d = 0; d < devices_.size(); ++d) {
    const FleetDevice& dev = *devices_[d];
    DeviceWearSnapshot snap;
    snap.device_index = d;
    const WriteProvenance::DeviceLedger* ledger =
        dev.telemetry->provenance.FindDevice(dev.ledger_name);
    if (ledger != nullptr && ledger->total_blocks > 0) {
      snap.total_erases = ledger->total_erases;
      snap.mean_erase_count = static_cast<double>(ledger->total_erases) /
                              static_cast<double>(ledger->total_blocks);
    }
    snap.free_slots = static_cast<std::uint32_t>(
        std::count(dev.slot_used.begin(), dev.slot_used.end(), false));
    snapshots.push_back(snap);
  }
  return snapshots;
}

void Fleet::AttachTelemetry(Telemetry* telemetry, std::string_view prefix) {
  if (telemetry_ != nullptr) {
    PublishMetrics();
    telemetry_->registry.RemoveProvider(metric_prefix_);
  }
  telemetry_ = telemetry;
  metric_prefix_ = std::string(prefix);
  // Device bundles keep their own registries/ledgers, but wall-clock self-profiling is a
  // per-process concern: forward every device's profiler to the fleet-level one so flash/FTL
  // scopes inside devices nest under the fleet's dispatch scopes in one attribution.
  for (std::uint32_t d = 0; d < devices_.size(); ++d) {
    FleetDevice* dev = devices_[d].get();
    dev->telemetry->selfprof.DelegateTo(telemetry_ == nullptr ? nullptr
                                                              : &telemetry_->selfprof);
    // Same for the critical-path ledger: device-internal charges (flash waits, hostftl
    // reclaim stalls) attribute to the fleet-level active request.
    dev->telemetry->reqpath.DelegateTo(telemetry_ == nullptr ? nullptr
                                                             : &telemetry_->reqpath);
    // And the state audit: per-device subsystem digests surface in the fleet-level timeline
    // under "<prefix>.devNN.<subsystem>" and fold into the whole-fleet composite.
    dev->telemetry->audit.DelegateTo(
        telemetry_ == nullptr ? nullptr : &telemetry_->audit,
        telemetry_ == nullptr ? "" : metric_prefix_ + "." + DeviceLabel(d) + ".");
  }
  if (telemetry_ == nullptr) {
    audit_placement_ = nullptr;
    return;
  }
  telemetry_->registry.AddProvider(metric_prefix_, [this] { PublishMetrics(); });
  audit_placement_ = telemetry_->audit.Register(metric_prefix_ + ".placement");
}

void Fleet::PublishMetrics() {
  if (telemetry_ == nullptr) {
    return;
  }
  MetricRegistry& reg = telemetry_->registry;
  const std::string& p = metric_prefix_;
  reg.GetCounter(p + ".app.reads")->Set(stats_.app_reads);
  reg.GetCounter(p + ".app.writes")->Set(stats_.app_writes);
  reg.GetCounter(p + ".app.pages_read")->Set(stats_.app_pages_read);
  reg.GetCounter(p + ".app.pages_written")->Set(stats_.app_pages_written);
  reg.GetCounter(p + ".admission.admitted")->Set(admission_.total_admitted());
  reg.GetCounter(p + ".admission.shed_rate")->Set(admission_.total_shed_rate());
  reg.GetCounter(p + ".admission.shed_queue")->Set(admission_.total_shed_queue());
  reg.GetCounter(p + ".migration.started")->Set(stats_.migrations_started);
  reg.GetCounter(p + ".migration.completed")->Set(stats_.migrations_completed);
  reg.GetCounter(p + ".migration.pages_copied")->Set(stats_.migration_pages_copied);
  reg.GetCounter(p + ".migration.bytes_copied")
      ->Set(stats_.migration_pages_copied * static_cast<std::uint64_t>(page_size()));
  reg.GetCounter(p + ".migration.dual_write_pages")->Set(stats_.dual_write_pages);
  const double total = static_cast<double>(admission_.total_admitted() +
                                           admission_.total_shed());
  reg.GetGauge(p + ".admission.shed_fraction")
      ->Set(total > 0.0 ? static_cast<double>(admission_.total_shed()) / total : 0.0);
  // Per-tenant edge tallies (RequestContext threading through admission and the router).
  for (const auto& [tenant, tally] : admission_.tenant_tallies()) {
    const std::string tp = p + ".tenant" + std::to_string(tenant);
    reg.GetCounter(tp + ".admitted")->Set(tally.admitted);
    reg.GetCounter(tp + ".shed")->Set(tally.shed);
  }
  for (const auto& [tenant, reads] : router_.tenant_reads()) {
    reg.GetCounter(p + ".tenant" + std::to_string(tenant) + ".routed_reads")->Set(reads);
  }

  // Wear and WA, from the per-device ledgers.
  std::uint64_t fleet_host_pages = 0;
  std::uint64_t fleet_total_pages = 0;
  for (std::uint32_t d = 0; d < devices_.size(); ++d) {
    const FleetDevice& dev = *devices_[d];
    const std::string dp = p + "." + DeviceLabel(d);
    const WriteProvenance::DeviceLedger* ledger =
        dev.telemetry->provenance.FindDevice(dev.ledger_name);
    if (ledger == nullptr) {
      continue;
    }
    fleet_host_pages += ledger->host_pages;
    fleet_total_pages += ledger->total_pages;
    reg.GetCounter(dp + ".host_pages")->Set(ledger->host_pages);
    reg.GetCounter(dp + ".total_pages")->Set(ledger->total_pages);
    reg.GetCounter(dp + ".erases")->Set(ledger->total_erases);
    reg.GetGauge(dp + ".mean_erase_count")
        ->Set(ledger->total_blocks > 0 ? static_cast<double>(ledger->total_erases) /
                                             static_cast<double>(ledger->total_blocks)
                                       : 0.0);
    const WriteProvenance::EnduranceProjection proj =
        dev.telemetry->provenance.ProjectEndurance(dev.ledger_name);
    reg.GetGauge(dp + ".projected_days")->Set(proj.valid ? proj.projected_days : 0.0);
  }
  reg.GetGauge(p + ".wear.skew")->Set(WearSkew());
  reg.GetGauge(p + ".device_wa")
      ->Set(fleet_host_pages > 0 ? static_cast<double>(fleet_total_pages) /
                                       static_cast<double>(fleet_host_pages)
                                 : 1.0);
  reg.GetGauge(p + ".end_to_end_wa")
      ->Set(stats_.app_pages_written > 0
                ? static_cast<double>(fleet_total_pages) /
                      static_cast<double>(stats_.app_pages_written)
                : 1.0);
  reg.GetGauge(p + ".replication_factor")
      ->Set(stats_.app_pages_written > 0
                ? static_cast<double>(fleet_host_pages) /
                      static_cast<double>(stats_.app_pages_written)
                : 0.0);

  // Fleet-wide latency distributions: exact bucket-level merges of the per-device histograms.
  std::vector<MetricRegistry*> sources;
  sources.reserve(devices_.size());
  for (const auto& dev : devices_) {
    sources.push_back(&dev->telemetry->registry);
  }
  RefreshMergedHistogram(&reg, p + ".read.latency_ns", sources, "host.read.latency_ns");
  RefreshMergedHistogram(&reg, p + ".write.latency_ns", sources, "host.write.latency_ns");

  // Per-shard tails (gauges, not histograms, to keep snapshot size bounded).
  for (std::uint32_t s = 0; s < config_.router.num_shards; ++s) {
    const std::string sp = p + "." + ShardLabel(s);
    const Histogram& h = shard_latency_[s];
    reg.GetGauge(sp + ".p50_ns")->Set(static_cast<double>(h.P50()));
    reg.GetGauge(sp + ".p99_ns")->Set(static_cast<double>(h.P99()));
    reg.GetGauge(sp + ".p999_ns")->Set(static_cast<double>(h.P999()));
    reg.GetCounter(sp + ".sheds")
        ->Set(admission_.shed_rate(ShardId{s}) + admission_.shed_queue(ShardId{s}));
  }
}

namespace {

// One closed-loop stream's mutable state (the whole driver state for RunFleetClosedLoop; one
// per tenant for RunFleetMultiTenant).
struct FleetLoopState {
  std::deque<SimTime> outstanding;
  SimTime clock = 0;
};

// Issues one request (clamped to the fleet space and its shard) with shed-retry backoff.
// `do_step` runs Fleet::Step at the op's issue time, matching the single-tenant driver's
// historical step placement (after the queue-depth wait, before the op). Returns false on a
// fatal (non-shed) error, recorded in result.status.
bool IssueOneFleetOp(Fleet& fleet, IoRequest req, bool do_step,
                     const FleetDriverOptions& options, std::uint32_t tenant,
                     FleetLoopState& state, FleetRunResult& result) {
  const std::uint64_t num_pages = fleet.num_pages();
  const std::uint64_t shard_pages = fleet.config().shard_pages;
  // Clamp into the fleet's page space and to the containing shard (fleet requests may not
  // cross shard boundaries).
  req.lba %= num_pages;
  const std::uint64_t offset = req.lba % shard_pages;
  req.pages =
      static_cast<std::uint32_t>(std::min<std::uint64_t>(req.pages, shard_pages - offset));
  if (req.pages == 0) {
    return true;  // Zero-length records (e.g. an empty trace's no-op reads) cost nothing.
  }

  SimTime issue = state.clock;
  if (state.outstanding.size() >= options.queue_depth) {
    issue = std::max(issue, state.outstanding.front());
    state.outstanding.pop_front();
  }
  result.queue_wait_ns += issue - state.clock;

  if (do_step) {
    fleet.Step(issue);
  }

  const RequestContext ctx{
      tenant, req.type == IoType::kRead
                  ? ReqOp::kRead
                  : (req.type == IoType::kWrite ? ReqOp::kWrite : ReqOp::kTrim)};
  RequestPathLedger* ledger = ReqPathOf(fleet.telemetry());
  // Opened at first issue so shed backoff lands inside the request window, attributed to the
  // admission queue — not folded into device service segments.
  RequestPathLedger::RequestScope req_scope(ledger, ctx, issue);

  Result<SimTime> done = 0;
  std::uint32_t retries = 0;
  for (;;) {
    switch (req.type) {
      case IoType::kRead:
        done = fleet.Read(Lba{req.lba}, req.pages, issue, {}, ctx);
        break;
      case IoType::kWrite:
        done = fleet.Write(Lba{req.lba}, req.pages, issue, {}, ctx);
        break;
      case IoType::kTrim:
        done = fleet.Trim(Lba{req.lba}, req.pages, issue, ctx);
        break;
    }
    if (done.ok() || done.code() != ErrorCode::kBusy) {
      break;
    }
    // Admission shed: back off in place and retry the same request (sheds are expected).
    result.sheds++;
    if (ledger != nullptr) {
      ledger->ChargeInterval(issue, issue + options.shed_retry_delay,
                             PathSegment::kAdmissionQueue);
    }
    result.shed_retry_wait_ns += options.shed_retry_delay;
    issue += options.shed_retry_delay;
    result.end = std::max(result.end, issue);
    if (++retries >= options.max_shed_retries) {
      break;  // Budget exhausted; drop this request and move on.
    }
  }
  if (!done.ok()) {
    if (done.code() == ErrorCode::kBusy) {
      result.shed_drops++;
      state.clock = issue;
      return true;  // Dropped, but the run continues.
    }
    result.status = done.status();
    return false;
  }
  const SimTime completion = done.value();
  req_scope.Complete(completion);
  state.outstanding.push_back(completion);
  state.clock = issue;
  result.end = std::max(result.end, completion);
  const SimTime latency = completion > issue ? completion - issue : 0;
  switch (req.type) {
    case IoType::kRead:
      result.read_latency.Record(latency);
      result.reads++;
      break;
    case IoType::kWrite:
      result.write_latency.Record(latency);
      result.writes++;
      break;
    case IoType::kTrim:
      result.trims++;
      break;
  }
  return true;
}

}  // namespace

FleetRunResult RunFleetClosedLoop(Fleet& fleet, WorkloadGenerator& gen,
                                  const FleetDriverOptions& options) {
  FleetRunResult result;
  result.start = options.start_time;
  result.end = options.start_time;
  FleetLoopState state;
  state.clock = options.start_time;

  for (std::uint64_t n = 0; n < options.ops; ++n) {
    const bool do_step = options.step_interval != 0 && n % options.step_interval == 0;
    if (!IssueOneFleetOp(fleet, gen.Next(), do_step, options, options.tenant, state, result)) {
      break;
    }
  }
  return result;
}

std::vector<FleetRunResult> RunFleetMultiTenant(Fleet& fleet,
                                                std::span<const FleetTenantSpec> tenants,
                                                const FleetDriverOptions& options) {
  std::vector<FleetRunResult> results(tenants.size());
  std::vector<FleetLoopState> states(tenants.size());
  std::vector<std::uint64_t> issued(tenants.size(), 0);
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    results[t].start = options.start_time;
    results[t].end = options.start_time;
    states[t].clock = options.start_time;
  }
  std::uint64_t global_op = 0;
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      if (issued[t] >= tenants[t].ops || !results[t].status.ok() ||
          tenants[t].gen == nullptr) {
        continue;
      }
      const bool do_step =
          options.step_interval != 0 && global_op % options.step_interval == 0;
      global_op++;
      issued[t]++;
      progressed = true;
      (void)IssueOneFleetOp(fleet, tenants[t].gen->Next(), do_step, options,
                            tenants[t].tenant, states[t], results[t]);
    }
  }
  return results;
}

}  // namespace blockhead
