#include "src/fleet/router.h"

#include <algorithm>
#include <cassert>

namespace blockhead {

const char* ReadReplicaPolicyName(ReadReplicaPolicy policy) {
  switch (policy) {
    case ReadReplicaPolicy::kPrimaryOnly:
      return "primary_only";
    case ReadReplicaPolicy::kRoundRobin:
      return "round_robin";
    case ReadReplicaPolicy::kLeastPending:
      return "least_pending";
  }
  return "unknown";
}

std::uint64_t FleetHash64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

ShardRouter::ShardRouter(const RouterConfig& config, std::uint32_t num_devices)
    : config_(config), num_devices_(num_devices) {
  assert(num_devices_ > 0 && "a fleet needs at least one device");
  ring_.reserve(static_cast<std::size_t>(num_devices_) * config_.virtual_nodes);
  for (std::uint32_t d = 0; d < num_devices_; ++d) {
    for (std::uint32_t v = 0; v < config_.virtual_nodes; ++v) {
      const std::uint64_t h = FleetHash64(
          config_.seed ^ (static_cast<std::uint64_t>(d) << 32 | (v + 1)));
      ring_.push_back({h, d});
    }
  }
  std::sort(ring_.begin(), ring_.end(), [](const RingPoint& a, const RingPoint& b) {
    if (a.hash != b.hash) {
      return a.hash < b.hash;
    }
    return a.device_index < b.device_index;
  });
  round_robin_.assign(config_.num_shards, 0);
}

std::vector<std::uint32_t> ShardRouter::PreferenceOrder(ShardId shard) const {
  const std::uint64_t point = FleetHash64(config_.seed ^ (0xf1ee7000ULL + shard.value()));
  std::vector<std::uint32_t> order;
  order.reserve(num_devices_);
  std::vector<bool> seen(num_devices_, false);
  // Walk clockwise from the shard's point, collecting first appearances of each device.
  std::size_t start = std::lower_bound(ring_.begin(), ring_.end(), point,
                                       [](const RingPoint& p, std::uint64_t h) {
                                         return p.hash < h;
                                       }) -
                      ring_.begin();
  for (std::size_t i = 0; i < ring_.size() && order.size() < num_devices_; ++i) {
    const RingPoint& p = ring_[(start + i) % ring_.size()];
    if (!seen[p.device_index]) {
      seen[p.device_index] = true;
      order.push_back(p.device_index);
    }
  }
  return order;
}

std::uint32_t ShardRouter::PickReadReplica(ShardId shard,
                                           std::span<const std::uint32_t> replica_devices,
                                           std::span<const std::uint32_t> device_pending,
                                           const RequestContext& ctx) {
  assert(!replica_devices.empty());
  assert(shard.value() < round_robin_.size());
  ++tenant_reads_[ctx.tenant];
  const std::uint32_t n = static_cast<std::uint32_t>(replica_devices.size());
  switch (config_.read_policy) {
    case ReadReplicaPolicy::kPrimaryOnly:
      return 0;
    case ReadReplicaPolicy::kRoundRobin: {
      const std::uint32_t pick = round_robin_[shard.value()] % n;
      round_robin_[shard.value()] = (round_robin_[shard.value()] + 1) % n;
      return pick;
    }
    case ReadReplicaPolicy::kLeastPending: {
      std::uint32_t best = 0;
      std::uint32_t best_pending = ~0U;
      for (std::uint32_t i = 0; i < n; ++i) {
        const std::uint32_t dev = replica_devices[i];
        const std::uint32_t pending =
            dev < device_pending.size() ? device_pending[dev] : 0;
        if (pending < best_pending) {  // Ties go to the lowest replica slot.
          best_pending = pending;
          best = i;
        }
      }
      return best;
    }
  }
  return 0;
}

}  // namespace blockhead
