// Active-zone budget management for multi-tenant ZNS devices (§4.2 of the paper).
//
// ZNS devices cap the number of simultaneously active zones (each consumes device write-buffer
// resources). When several kernel-bypass applications share one device, that cap becomes a
// scarce schedulable resource. The paper: "A simple strategy is to assign a fixed number of
// zones to each application together with a fixed active zone budget. However, this approach
// does not scale for typical bursty workloads as it does not allow multiplexing of this scarce
// resource."
//
// Two allocators implement one interface:
//   * StaticPartitionBudget — every tenant owns max_active/T slots, idle slots cannot move;
//   * DemandBudget          — slots are granted from a shared pool first-come-first-served,
//                             with an optional per-tenant guaranteed minimum.
//
// RunMultiTenantSim drives bursty tenants over a real ZnsDevice through a budget manager and
// reports per-tenant throughput and acquisition stalls (bench_active_zones / E8).

#ifndef BLOCKHEAD_SRC_ALLOC_ZONE_BUDGET_H_
#define BLOCKHEAD_SRC_ALLOC_ZONE_BUDGET_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/shard_safety.h"
#include "src/util/histogram.h"
#include "src/util/status.h"
#include "src/util/types.h"
#include "src/zns/zns_device.h"

namespace blockhead {

class ZoneBudgetManager {
 public:
  virtual ~ZoneBudgetManager() = default;

  // Attempts to grant `tenant` one active-zone slot. Returns kBusy when the tenant must wait.
  virtual Status Acquire(std::uint32_t tenant) = 0;
  // Returns a slot previously granted to `tenant`.
  virtual void Release(std::uint32_t tenant) = 0;
  // Slots currently held by `tenant`.
  virtual std::uint32_t Held(std::uint32_t tenant) const = 0;
  virtual const char* name() const = 0;
};

// Fixed per-tenant partition of the device's active-zone budget.
class StaticPartitionBudget final : public ZoneBudgetManager {
 public:
  StaticPartitionBudget(std::uint32_t total_slots, std::uint32_t tenants);

  Status Acquire(std::uint32_t tenant) override;
  void Release(std::uint32_t tenant) override;
  std::uint32_t Held(std::uint32_t tenant) const override { return held_[tenant]; }
  const char* name() const override { return "static-partition"; }

 private:
  std::uint32_t per_tenant_ BLOCKHEAD_SHARD_SHARED;
  std::vector<std::uint32_t> held_ BLOCKHEAD_SHARD_SHARED;
};

// Shared pool with an optional guaranteed minimum per tenant: a tenant can always reach its
// guarantee; beyond that it competes for the surplus.
class DemandBudget final : public ZoneBudgetManager {
 public:
  DemandBudget(std::uint32_t total_slots, std::uint32_t tenants,
               std::uint32_t guaranteed_min = 1);

  Status Acquire(std::uint32_t tenant) override;
  void Release(std::uint32_t tenant) override;
  std::uint32_t Held(std::uint32_t tenant) const override { return held_[tenant]; }
  const char* name() const override { return "demand-based"; }

 private:
  std::uint32_t total_ BLOCKHEAD_SHARD_SHARED;
  std::uint32_t guaranteed_ BLOCKHEAD_SHARD_SHARED;
  std::vector<std::uint32_t> held_ BLOCKHEAD_SHARD_SHARED;
  std::uint32_t granted_ BLOCKHEAD_SHARD_SHARED = 0;
};

struct TenantConfig {
  // Bursty on/off demand: while ON the tenant writes as fast as its zones allow.
  SimTime on_duration = 2 * kMillisecond;
  SimTime off_duration = 14 * kMillisecond;
  // Concurrent zones the tenant wants while bursting.
  std::uint32_t desired_zones = 4;
  std::uint64_t seed = 1;
};

struct TenantResult {
  std::uint64_t pages_written = 0;
  std::uint64_t acquire_failures = 0;   // Budget said kBusy.
  SimTime stalled_time = 0;             // Time spent waiting for a slot while bursting.
};

struct MultiTenantResult {
  std::vector<TenantResult> tenants;
  SimTime duration = 0;
  std::uint64_t total_pages = 0;
  double SlotUtilization() const { return slot_utilization; }
  double slot_utilization = 0.0;  // Mean fraction of budget slots held during the run.
};

// Simulates `tenant_configs.size()` bursty tenants sharing `device` under `budget` for
// `duration` of model time. Each tenant writes 4-page chunks round-robin across the zones it
// holds; full zones are finished and their slots released.
MultiTenantResult RunMultiTenantSim(ZnsDevice& device, ZoneBudgetManager& budget,
                                    const std::vector<TenantConfig>& tenant_configs,
                                    SimTime duration);

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_ALLOC_ZONE_BUDGET_H_
