#include "src/alloc/zone_budget.h"

#include <algorithm>
#include <cassert>
#include <deque>

#include "src/util/event_queue.h"
#include "src/util/rng.h"

namespace blockhead {

StaticPartitionBudget::StaticPartitionBudget(std::uint32_t total_slots, std::uint32_t tenants)
    : per_tenant_(total_slots / tenants), held_(tenants, 0) {
  assert(per_tenant_ > 0);
}

Status StaticPartitionBudget::Acquire(std::uint32_t tenant) {
  if (held_[tenant] >= per_tenant_) {
    return Status(ErrorCode::kBusy);
  }
  held_[tenant]++;
  return Status::Ok();
}

void StaticPartitionBudget::Release(std::uint32_t tenant) {
  assert(held_[tenant] > 0);
  held_[tenant]--;
}

DemandBudget::DemandBudget(std::uint32_t total_slots, std::uint32_t tenants,
                           std::uint32_t guaranteed_min)
    : total_(total_slots), guaranteed_(guaranteed_min), held_(tenants, 0) {
  assert(guaranteed_min * tenants <= total_slots);
}

Status DemandBudget::Acquire(std::uint32_t tenant) {
  if (granted_ >= total_) {
    return Status(ErrorCode::kBusy);
  }
  // Keep enough headroom that every tenant below its guarantee can still reach it.
  if (held_[tenant] >= guaranteed_) {
    std::uint32_t reserved_for_others = 0;
    for (std::uint32_t t = 0; t < held_.size(); ++t) {
      if (t != tenant && held_[t] < guaranteed_) {
        reserved_for_others += guaranteed_ - held_[t];
      }
    }
    if (granted_ + 1 + reserved_for_others > total_) {
      return Status(ErrorCode::kBusy);
    }
  }
  held_[tenant]++;
  granted_++;
  return Status::Ok();
}

void DemandBudget::Release(std::uint32_t tenant) {
  assert(held_[tenant] > 0);
  held_[tenant]--;
  granted_--;
}

namespace {

constexpr std::uint32_t kChunkPages = 4;
constexpr SimTime kRetryInterval = 50 * kMicrosecond;
constexpr std::uint32_t kNoZone = ~0U;

struct TenantState {
  TenantConfig config;
  std::vector<std::uint32_t> zones;  // Zones currently held (open on the device).
  SimTime phase_start = 0;
  TenantResult result;
};

// Event payload: a per-zone write stream (zone != kNoZone) or a tenant top-up tick.
struct SimEvent {
  std::uint32_t tenant = 0;
  std::uint32_t zone = kNoZone;
};

}  // namespace

MultiTenantResult RunMultiTenantSim(ZnsDevice& device, ZoneBudgetManager& budget,
                                    const std::vector<TenantConfig>& tenant_configs,
                                    SimTime duration) {
  const std::uint32_t num_tenants = static_cast<std::uint32_t>(tenant_configs.size());
  std::vector<TenantState> tenants(num_tenants);
  for (std::uint32_t t = 0; t < num_tenants; ++t) {
    tenants[t].config = tenant_configs[t];
    // Stagger phase starts so bursts overlap only partially (the interesting regime).
    tenants[t].phase_start =
        (tenant_configs[t].on_duration + tenant_configs[t].off_duration) * t / num_tenants;
  }
  auto tenant_on = [&](const TenantState& tenant, SimTime now) {
    if (now < tenant.phase_start) {
      return false;
    }
    const TenantConfig& cfg = tenant.config;
    const SimTime cycle = cfg.on_duration + cfg.off_duration;
    return (now - tenant.phase_start) % cycle < cfg.on_duration;
  };
  auto next_on_start = [&](const TenantState& tenant, SimTime now) {
    if (now < tenant.phase_start) {
      return tenant.phase_start;
    }
    const TenantConfig& cfg = tenant.config;
    const SimTime cycle = cfg.on_duration + cfg.off_duration;
    const SimTime in_cycle = (now - tenant.phase_start) % cycle;
    return in_cycle < cfg.on_duration ? now : now + (cycle - in_cycle);
  };

  // Zone supply: hand out fresh zones first, then recycle finished ones.
  std::uint32_t next_fresh_zone = 0;
  std::deque<std::uint32_t> recyclable;
  auto take_zone = [&](SimTime now) -> Result<std::uint32_t> {
    if (next_fresh_zone < device.num_zones()) {
      return next_fresh_zone++;
    }
    while (!recyclable.empty()) {
      const std::uint32_t z = recyclable.front();
      recyclable.pop_front();
      Result<SimTime> reset = device.ResetZone(ZoneId{z}, now);
      if (!reset.ok()) {
        continue;  // Worn out; drop it.
      }
      return z;
    }
    return ErrorCode::kNoFreeBlocks;
  };

  // Slot-utilization integral.
  std::uint32_t held_total = 0;
  std::uint64_t util_integral = 0;  // slot-ns
  SimTime last_event = 0;
  const std::uint32_t budget_slots = device.config().max_active_zones;
  auto advance_clock = [&](SimTime now) {
    util_integral += static_cast<std::uint64_t>(held_total) * (now - last_event);
    last_event = now;
  };
  auto release_zone = [&](TenantState& tenant, std::uint32_t tenant_id,
                          std::uint32_t zone_index, SimTime now) {
    (void)device.FinishZone(ZoneId{zone_index}, now);
    budget.Release(tenant_id);
    held_total--;
    recyclable.push_back(zone_index);
    std::erase(tenant.zones, zone_index);
  };

  EventQueue<SimEvent> queue;
  for (std::uint32_t t = 0; t < num_tenants; ++t) {
    queue.Push(tenants[t].phase_start, SimEvent{t, kNoZone});
  }

  while (!queue.empty()) {
    const auto event = queue.Pop();
    const SimTime now = event.time;
    if (now >= duration) {
      break;
    }
    advance_clock(now);
    const std::uint32_t tenant_id = event.payload.tenant;
    TenantState& tenant = tenants[tenant_id];
    const bool on = tenant_on(tenant, now);

    if (event.payload.zone == kNoZone) {
      // Top-up tick: acquire zones up to the desired burst parallelism and start a write
      // stream on each newly granted zone.
      if (!on) {
        // Relinquish everything (a well-behaved tenant) and sleep until the next burst.
        for (const std::uint32_t z : std::vector<std::uint32_t>(tenant.zones)) {
          release_zone(tenant, tenant_id, z, now);
        }
        queue.Push(next_on_start(tenant, now), SimEvent{tenant_id, kNoZone});
        continue;
      }
      bool rejected = false;
      while (tenant.zones.size() < tenant.config.desired_zones) {
        if (!budget.Acquire(tenant_id).ok()) {
          tenant.result.acquire_failures++;
          rejected = true;
          break;
        }
        Result<std::uint32_t> zone = take_zone(now);
        if (!zone.ok()) {
          budget.Release(tenant_id);
          break;
        }
        tenant.zones.push_back(zone.value());
        held_total++;
        queue.Push(now, SimEvent{tenant_id, zone.value()});
      }
      if (rejected && tenant.zones.empty()) {
        tenant.result.stalled_time += kRetryInterval;
      }
      // Keep topping up during the burst (slots may free elsewhere).
      queue.Push(now + kRetryInterval, SimEvent{tenant_id, kNoZone});
      continue;
    }

    // Per-zone write stream.
    const std::uint32_t zone = event.payload.zone;
    if (std::find(tenant.zones.begin(), tenant.zones.end(), zone) == tenant.zones.end()) {
      continue;  // Zone was released by an OFF transition.
    }
    if (!on) {
      release_zone(tenant, tenant_id, zone, now);
      continue;
    }
    const ZoneDescriptor d = device.zone(ZoneId{zone});
    const std::uint32_t room = static_cast<std::uint32_t>(d.capacity_pages - d.write_pointer);
    if (room == 0) {
      release_zone(tenant, tenant_id, zone, now);
      continue;
    }
    const std::uint32_t pages = std::min(kChunkPages, room);
    Result<SimTime> written = device.Write(ZoneId{zone}, d.write_pointer, pages, now);
    if (!written.ok()) {
      release_zone(tenant, tenant_id, zone, now);
      continue;
    }
    tenant.result.pages_written += pages;
    queue.Push(std::max(written.value(), now + 1), SimEvent{tenant_id, zone});
  }

  MultiTenantResult result;
  result.duration = duration;
  result.tenants.reserve(num_tenants);
  for (TenantState& tenant : tenants) {
    result.total_pages += tenant.result.pages_written;
    result.tenants.push_back(tenant.result);
  }
  util_integral += static_cast<std::uint64_t>(held_total) * (duration - last_event);
  result.slot_utilization = budget_slots == 0
                                ? 0.0
                                : static_cast<double>(util_integral) /
                                      (static_cast<double>(budget_slots) *
                                       static_cast<double>(duration));
  return result;
}

}  // namespace blockhead
