// A persistent FIFO queue over ZNS zones — the §4.2 workload the paper calls out as ZNS's
// known weak spot: "multi-writer workloads where writes are concentrated in a single zone,
// such as persistent queues and append-only data structures", fixed by the zone-append
// command.
//
// Zones form a ring: producers append fixed-size records to the tail zone (via zone append,
// or via write-pointer writes in the strict mode the paper's contention story is about); the
// consumer reads from the head and resets fully-consumed zones back into the ring.

#ifndef BLOCKHEAD_SRC_QUEUE_PERSISTENT_QUEUE_H_
#define BLOCKHEAD_SRC_QUEUE_PERSISTENT_QUEUE_H_

#include <cstdint>
#include <deque>
#include <span>

#include "src/util/status.h"
#include "src/util/types.h"
#include "src/zns/zns_device.h"

namespace blockhead {

struct QueueConfig {
  // Enqueue with zone append (device-serialized, multi-producer friendly) or with
  // write-pointer writes (host-serialized).
  bool use_append = true;
  // Record size in pages.
  std::uint32_t record_pages = 1;
  // Tenant/stream id stamped on the RequestContext of every enqueue/dequeue (reqpath ledger).
  std::uint32_t tenant = 0;
};

struct QueueStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dequeued = 0;
  std::uint64_t zones_recycled = 0;
};

class PersistentQueue {
 public:
  // Takes over the whole device. `device` must outlive the queue.
  PersistentQueue(ZnsDevice* device, const QueueConfig& config);

  // Appends one record; `payload` (optional) must be record_pages * page_size bytes.
  // Fails with kDeviceFull when the ring has no writable space left.
  Result<SimTime> Enqueue(std::span<const std::uint8_t> payload, SimTime now);

  struct DequeueResult {
    SimTime completion = 0;
    std::uint64_t record_lba = 0;  // Device LBA the record was read from.
  };
  // Removes and reads the oldest record; fails with kNotFound when empty. `out` (optional)
  // must be record_pages * page_size bytes.
  Result<DequeueResult> Dequeue(std::span<std::uint8_t> out, SimTime now);

  std::uint64_t Depth() const { return stats_.enqueued - stats_.dequeued; }
  const QueueStats& stats() const { return stats_; }
  // Records that still fit before the ring is full.
  std::uint64_t FreeRecordSlots() const;

 private:
  static constexpr std::uint32_t kNoZone = ~0U;

  // Ensures tail_zone_ can absorb one record; rotates to the next free zone when full.
  Status EnsureTailZone(SimTime now);

  ZnsDevice* device_;
  QueueConfig config_;
  std::uint64_t records_per_zone_ = 0;

  std::deque<std::uint32_t> free_zones_;  // Empty zones available for the tail.
  std::deque<std::uint32_t> live_zones_;  // Zones holding records, oldest first (head first).
  std::uint32_t tail_zone_ = kNoZone;
  std::uint64_t head_record_ = 0;  // Consumed records within live_zones_.front().

  QueueStats stats_;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_QUEUE_PERSISTENT_QUEUE_H_
