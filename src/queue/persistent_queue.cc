#include "src/queue/persistent_queue.h"

#include <algorithm>
#include <cassert>

#include "src/telemetry/telemetry.h"

namespace blockhead {

namespace {

// Queue ops are top-level host requests only when no internal CauseScope is open on the
// shared bundle (the queue itself never runs under one; the guard mirrors the other layers).
RequestPathLedger* ReqPathForHostOp(const ZnsDevice* device) {
  Telemetry* t = device->telemetry();
  if (t == nullptr || t->provenance.open_scopes() != 0) {
    return nullptr;
  }
  return &t->reqpath;
}

}  // namespace

PersistentQueue::PersistentQueue(ZnsDevice* device, const QueueConfig& config)
    : device_(device), config_(config) {
  assert(config_.record_pages > 0);
  records_per_zone_ = device_->zone_size_pages() / config_.record_pages;
  for (std::uint32_t z = 0; z < device_->num_zones(); ++z) {
    free_zones_.push_back(z);
  }
}

std::uint64_t PersistentQueue::FreeRecordSlots() const {
  std::uint64_t slots = free_zones_.size() * records_per_zone_;
  if (tail_zone_ != kNoZone) {
    const ZoneDescriptor d = device_->zone(ZoneId{tail_zone_});
    slots += (d.capacity_pages - d.write_pointer) / config_.record_pages;
  }
  return slots;
}

Status PersistentQueue::EnsureTailZone(SimTime now) {
  if (tail_zone_ != kNoZone) {
    const ZoneDescriptor d = device_->zone(ZoneId{tail_zone_});
    if (d.state != ZoneState::kOffline &&
        d.write_pointer + config_.record_pages <= d.capacity_pages) {
      return Status::Ok();
    }
    // No room for a whole record: seal the remainder and rotate.
    if (d.state != ZoneState::kFull) {
      (void)device_->FinishZone(ZoneId{tail_zone_}, now);
    }
    tail_zone_ = kNoZone;
  }
  while (!free_zones_.empty()) {
    const std::uint32_t z = free_zones_.front();
    free_zones_.pop_front();
    const ZoneDescriptor d = device_->zone(ZoneId{z});
    if (d.state != ZoneState::kEmpty || d.capacity_pages < config_.record_pages) {
      continue;  // Worn out or shrunk below one record; drop it.
    }
    tail_zone_ = z;
    live_zones_.push_back(z);
    return Status::Ok();
  }
  return Status(ErrorCode::kDeviceFull, "queue ring exhausted");
}

Result<SimTime> PersistentQueue::Enqueue(std::span<const std::uint8_t> payload, SimTime now) {
  RequestPathLedger::RequestScope req_scope(
      ReqPathForHostOp(device_), RequestContext{config_.tenant, ReqOp::kWrite}, now);
  BLOCKHEAD_RETURN_IF_ERROR(EnsureTailZone(now));
  SimTime done = 0;
  if (config_.use_append) {
    Result<AppendResult> r =
      device_->Append(ZoneId{tail_zone_}, config_.record_pages, now, payload);
    if (!r.ok()) {
      return r.status();
    }
    done = r->completion;
  } else {
    const ZoneDescriptor d = device_->zone(ZoneId{tail_zone_});
    Result<SimTime> r =
        device_->Write(ZoneId{tail_zone_}, d.write_pointer, config_.record_pages, now, payload);
    if (!r.ok()) {
      return r;
    }
    done = r.value();
  }
  stats_.enqueued++;
  req_scope.Complete(done);
  return done;
}

Result<PersistentQueue::DequeueResult> PersistentQueue::Dequeue(std::span<std::uint8_t> out,
                                                                SimTime now) {
  if (Depth() == 0) {
    return ErrorCode::kNotFound;
  }
  RequestPathLedger::RequestScope req_scope(
      ReqPathForHostOp(device_), RequestContext{config_.tenant, ReqOp::kRead}, now);
  // Drop fully-consumed head zones (never the live tail).
  while (!live_zones_.empty()) {
    const std::uint32_t head_zone = live_zones_.front();
    const ZoneDescriptor d = device_->zone(ZoneId{head_zone});
    const std::uint64_t records_in_zone =
        (head_zone == tail_zone_ ? d.write_pointer : d.capacity_pages) / config_.record_pages;
    if (head_record_ < records_in_zone) {
      break;
    }
    if (head_zone == tail_zone_) {
      // Tail not rotated yet but everything in it is consumed; wait for new records.
      return ErrorCode::kNotFound;
    }
    Result<SimTime> reset = device_->ResetZone(ZoneId{head_zone}, now);
    live_zones_.pop_front();
    head_record_ = 0;
    if (reset.ok() && device_->zone(ZoneId{head_zone}).state == ZoneState::kEmpty) {
      free_zones_.push_back(head_zone);
      stats_.zones_recycled++;
    }
  }
  assert(!live_zones_.empty());
  const std::uint32_t head_zone = live_zones_.front();
  const Lba lba = device_->zone(ZoneId{head_zone}).start_lba +
                  head_record_ * config_.record_pages;
  Result<SimTime> r = device_->Read(lba, config_.record_pages, now, out);
  if (!r.ok()) {
    return r.status();
  }
  head_record_++;
  stats_.dequeued++;
  req_scope.Complete(r.value());
  return DequeueResult{r.value(), lba.value()};
}

}  // namespace blockhead
