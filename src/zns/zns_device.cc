#include "src/zns/zns_device.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace blockhead {

const char* ZoneStateName(ZoneState state) {
  switch (state) {
    case ZoneState::kEmpty:
      return "EMPTY";
    case ZoneState::kImplicitOpen:
      return "IMPLICIT_OPEN";
    case ZoneState::kExplicitOpen:
      return "EXPLICIT_OPEN";
    case ZoneState::kClosed:
      return "CLOSED";
    case ZoneState::kFull:
      return "FULL";
    case ZoneState::kReadOnly:
      return "READ_ONLY";
    case ZoneState::kOffline:
      return "OFFLINE";
  }
  return "UNKNOWN";
}

namespace {

bool IsOpen(ZoneState s) {
  return s == ZoneState::kImplicitOpen || s == ZoneState::kExplicitOpen;
}

bool IsActive(ZoneState s) { return IsOpen(s) || s == ZoneState::kClosed; }

}  // namespace

ZnsDevice::ZnsDevice(const FlashConfig& flash_config, const ZnsConfig& zns_config)
    : flash_(flash_config), config_(zns_config) {
  const FlashGeometry& g = flash_.geometry();
  assert(config_.blocks_per_zone_per_plane > 0);
  const std::uint32_t width =
      config_.planes_per_zone == 0 ? g.total_planes() : config_.planes_per_zone;
  assert(g.total_planes() % width == 0);
  const std::uint32_t num_groups = g.total_planes() / width;
  const std::uint32_t rows = g.blocks_per_plane / config_.blocks_per_zone_per_plane;
  const std::uint32_t num_zones = num_groups * rows;
  const std::uint32_t stripe_units = width * config_.blocks_per_zone_per_plane;
  zone_size_pages_ = static_cast<std::uint64_t>(stripe_units) * g.pages_per_block;

  zones_.resize(num_zones);
  for (std::uint32_t z = 0; z < num_zones; ++z) {
    Zone& zone = zones_[z];
    const std::uint32_t group = z % num_groups;
    const std::uint32_t row = z / num_groups;
    zone.units.reserve(stripe_units);
    // Interleave units across the group's planes so consecutive pages program on different
    // planes.
    for (std::uint32_t i = 0; i < stripe_units; ++i) {
      const std::uint32_t plane_index = group * width + i % width;
      const std::uint32_t slot = i / width;
      StripeUnit unit;
      unit.channel = ChannelId{plane_index / g.planes_per_channel};
      unit.plane = PlaneId{plane_index % g.planes_per_channel};
      unit.block = BlockId{row * config_.blocks_per_zone_per_plane + slot};
      zone.units.push_back(unit);
    }
    zone.capacity_pages = zone_size_pages_;
  }
}

ZnsDevice::~ZnsDevice() { AttachTelemetry(nullptr); }

void ZnsDevice::AttachTelemetry(Telemetry* telemetry, std::string_view prefix) {
  if (telemetry_ != nullptr) {
    PublishMetrics();
    telemetry_->registry.RemoveProvider(metric_prefix_ + ".zns");
    telemetry_->timeline.RemoveSamplerGroup(metric_prefix_ + ".zns");
  }
  telemetry_ = telemetry;
  metric_prefix_ = std::string(prefix);
  if (telemetry_ == nullptr) {
    flash_.AttachTelemetry(nullptr);
    append_latency_ = nullptr;
    write_latency_ = nullptr;
    read_latency_ = nullptr;
    audit_zones_ = nullptr;
    sampler_group_ = -1;
    return;
  }
  audit_zones_ = telemetry_->audit.Register(metric_prefix_ + ".zones");
  flash_.AttachTelemetry(telemetry_, metric_prefix_ + ".flash");
  append_latency_ = telemetry_->registry.GetHistogram(metric_prefix_ + ".append.latency_ns");
  write_latency_ = telemetry_->registry.GetHistogram(metric_prefix_ + ".write.latency_ns");
  read_latency_ = telemetry_->registry.GetHistogram(metric_prefix_ + ".read.latency_ns");
  telemetry_->registry.AddProvider(metric_prefix_ + ".zns", [this] { PublishMetrics(); });

  Timeline& tl = telemetry_->timeline;
  sampler_group_ = tl.AddSamplerGroup(metric_prefix_ + ".zns");
  tl.AddSampler(sampler_group_, metric_prefix_ + ".active_zones",
                Timeline::SampleKind::kInstant,
                [this](SimTime) { return static_cast<double>(active_count_); });
  tl.AddSampler(sampler_group_, metric_prefix_ + ".open_zones", Timeline::SampleKind::kInstant,
                [this](SimTime) { return static_cast<double>(open_count_); });
}

void ZnsDevice::NoteZoneTransition(const Zone& z, ZoneState from, ZoneState to, SimTime t) {
  if (telemetry_ == nullptr || from == to) {
    return;
  }
  const std::uint32_t zone_id = static_cast<std::uint32_t>(&z - zones_.data());
  telemetry_->events.Append(t, TimelineEventType::kZoneTransition, metric_prefix_,
                            "zone " + std::to_string(zone_id) + " " + ZoneStateName(from) +
                                "->" + ZoneStateName(to),
                            zone_id, static_cast<std::uint64_t>(to));
}

void ZnsDevice::PublishMetrics() {
  MetricRegistry& reg = telemetry_->registry;
  const std::string& p = metric_prefix_;
  reg.GetCounter(p + ".pages_written")->Set(stats_.pages_written);
  reg.GetCounter(p + ".pages_appended")->Set(stats_.pages_appended);
  reg.GetCounter(p + ".pages_read")->Set(stats_.pages_read);
  reg.GetCounter(p + ".pages_copied")->Set(stats_.pages_copied);
  reg.GetCounter(p + ".zone_resets")->Set(stats_.zone_resets);
  reg.GetCounter(p + ".zone_finishes")->Set(stats_.zone_finishes);
  reg.GetCounter(p + ".wp_mismatch_errors")->Set(stats_.wp_mismatch_errors);
  reg.GetCounter(p + ".active_limit_rejections")->Set(stats_.active_limit_rejections);
  reg.GetGauge(p + ".active_zones")->Set(active_count_);
  reg.GetGauge(p + ".open_zones")->Set(open_count_);
  const DramUsage dram = ComputeDramUsage();
  reg.GetGauge(p + ".dram.mapping_bytes")->Set(static_cast<double>(dram.mapping_bytes));
  reg.GetGauge(p + ".dram.gc_metadata_bytes")->Set(static_cast<double>(dram.gc_metadata_bytes));
  reg.GetGauge(p + ".dram.write_buffer_bytes")->Set(static_cast<double>(dram.write_buffer_bytes));
  reg.GetGauge(p + ".dram.total_bytes")->Set(static_cast<double>(dram.total()));
}

std::uint64_t ZnsDevice::capacity_bytes() const {
  return static_cast<std::uint64_t>(zones_.size()) * zone_size_pages_ *
         flash_.geometry().page_size;
}

ZoneDescriptor ZnsDevice::zone(ZoneId zone_id) const {
  assert(zone_id.value() < zones_.size());
  const Zone& z = zones_[zone_id.value()];
  ZoneDescriptor d;
  d.zone_id = zone_id;
  d.state = z.state;
  d.start_lba = Lba{static_cast<std::uint64_t>(zone_id.value()) * zone_size_pages_};
  d.capacity_pages = z.capacity_pages;
  d.write_pointer = z.write_pointer;
  return d;
}

Result<ZoneId> ZnsDevice::ZoneOfLba(Lba lba) const {
  const std::uint64_t zone_index = lba.value() / zone_size_pages_;
  if (zone_index >= zones_.size()) {
    return ErrorCode::kOutOfRange;
  }
  return ZoneId{static_cast<std::uint32_t>(zone_index)};
}

PhysAddr ZnsDevice::AddrOf(const Zone& z, std::uint64_t offset) const {
  const std::size_t unit_index = static_cast<std::size_t>(offset % z.units.size());
  const StripeUnit& unit = z.units[unit_index];
  PhysAddr a;
  a.channel = unit.channel;
  a.plane = unit.plane;
  a.block = unit.block;
  a.page = PageId{static_cast<std::uint32_t>(offset / z.units.size())};
  return a;
}

Status ZnsDevice::EnsureWritable(Zone& z, bool explicit_open, SimTime now) {
  switch (z.state) {
    case ZoneState::kImplicitOpen:
    case ZoneState::kExplicitOpen:
      return Status::Ok();
    case ZoneState::kEmpty:
      if (active_count_ >= config_.max_active_zones) {
        stats_.active_limit_rejections++;
        return Status(ErrorCode::kTooManyActiveZones);
      }
      if (open_count_ >= config_.max_open_zones) {
        stats_.active_limit_rejections++;
        return Status(ErrorCode::kTooManyOpenZones);
      }
      {
        const bool audit = ZoneAuditArmed();
        const std::uint64_t pre = audit ? ZoneEntryHash(z) : 0;
        z.state = explicit_open ? ZoneState::kExplicitOpen : ZoneState::kImplicitOpen;
        if (audit) {
          audit_zones_->Replace(now, pre, ZoneEntryHash(z));
        }
      }
      active_count_++;
      open_count_++;
      NoteZoneTransition(z, ZoneState::kEmpty, z.state, now);
      return Status::Ok();
    case ZoneState::kClosed:
      if (open_count_ >= config_.max_open_zones) {
        stats_.active_limit_rejections++;
        return Status(ErrorCode::kTooManyOpenZones);
      }
      {
        const bool audit = ZoneAuditArmed();
        const std::uint64_t pre = audit ? ZoneEntryHash(z) : 0;
        z.state = explicit_open ? ZoneState::kExplicitOpen : ZoneState::kImplicitOpen;
        if (audit) {
          audit_zones_->Replace(now, pre, ZoneEntryHash(z));
        }
      }
      open_count_++;
      NoteZoneTransition(z, ZoneState::kClosed, z.state, now);
      return Status::Ok();
    case ZoneState::kFull:
      return Status(ErrorCode::kZoneFull);
    case ZoneState::kReadOnly:
      return Status(ErrorCode::kZoneReadOnly);
    case ZoneState::kOffline:
      return Status(ErrorCode::kZoneOffline);
  }
  return Status(ErrorCode::kInternal);
}

void ZnsDevice::ReleaseActive(Zone& z) {
  if (IsOpen(z.state)) {
    assert(open_count_ > 0);
    open_count_--;
  }
  if (IsActive(z.state)) {
    assert(active_count_ > 0);
    active_count_--;
  }
}

SimTime ZnsDevice::BufferAck(Zone& z, std::uint32_t pages, SimTime data_in,
                             SimTime program_done) {
  if (config_.zone_write_buffer_pages == 0) {
    return program_done;  // Unbuffered: the command completes with the cell program.
  }
  SimTime ack = data_in;
  for (std::uint32_t i = 0; i < pages; ++i) {
    z.inflight.push_back(program_done);
    if (z.inflight.size() > config_.zone_write_buffer_pages) {
      ack = std::max(ack, z.inflight.front());
      z.inflight.pop_front();
    }
  }
  return ack;
}

// lint: provenance-passthrough — every flash op here executes a host-issued ZNS command
// (Write/Append/Reset/SimpleCopy); attribution belongs to the scope the command issuer
// holds open (e.g. the zone filesystem's kZoneCompaction during its GC), so this layer
// must not override it with a scope of its own.
Result<SimTime> ZnsDevice::ProgramAtWp(Zone& z, std::uint32_t pages, SimTime issue,
                                       std::span<const std::uint8_t> data, OpClass op_class) {
  const std::uint32_t page_size = flash_.geometry().page_size;
  const bool audit = ZoneAuditArmed();
  SimTime done_all = issue;
  for (std::uint32_t i = 0; i < pages; ++i) {
    const PhysAddr addr = AddrOf(z, z.write_pointer);
    std::span<const std::uint8_t> page_data;
    if (!data.empty()) {
      page_data = data.subspan(static_cast<std::size_t>(i) * page_size, page_size);
    }
    Result<SimTime> done = flash_.ProgramPage(addr, issue, page_data, op_class);
    if (!done.ok()) {
      return done;
    }
    done_all = std::max(done_all, done.value());
    const std::uint64_t pre = audit ? ZoneEntryHash(z) : 0;
    z.write_pointer++;
    z.programmed_pages = z.write_pointer;
    if (audit) {
      audit_zones_->Replace(done.value(), pre, ZoneEntryHash(z));
    }
  }
  if (z.write_pointer >= z.capacity_pages) {
    const ZoneState prev = z.state;
    const std::uint64_t pre = audit ? ZoneEntryHash(z) : 0;
    ReleaseActive(z);
    z.state = ZoneState::kFull;
    if (audit) {
      audit_zones_->Replace(done_all, pre, ZoneEntryHash(z));
    }
    NoteZoneTransition(z, prev, ZoneState::kFull, done_all);
  }
  return done_all;
}

Result<SimTime> ZnsDevice::Write(ZoneId zone_id, std::uint64_t offset, std::uint32_t pages,
                                 SimTime issue, std::span<const std::uint8_t> data) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kZns, ProfOp::kWrite);
  if (zone_id.value() >= zones_.size() || pages == 0) {
    return ErrorCode::kOutOfRange;
  }
  Zone& z = zones_[zone_id.value()];
  const std::uint32_t page_size = flash_.geometry().page_size;
  if (!data.empty() && data.size() != static_cast<std::size_t>(pages) * page_size) {
    return ErrorCode::kInvalidArgument;
  }
  if (z.state == ZoneState::kOffline) {
    return ErrorCode::kZoneOffline;
  }
  if (z.state == ZoneState::kReadOnly) {
    return ErrorCode::kZoneReadOnly;
  }
  // Host-side write-pointer serialization: a regular write can only be formed once the
  // previous write's outcome (the new write pointer) is known.
  const SimTime effective_issue = std::max(issue, z.write_serial_point);
  if (telemetry_ != nullptr) {
    // The serialization wait is host-visible queueing invisible to the flash model: charge
    // it here so the request-path identity still closes wall to wall.
    telemetry_->reqpath.ChargeInterval(issue, effective_issue, PathSegment::kDeviceQueue);
  }
  if (offset != z.write_pointer) {
    stats_.wp_mismatch_errors++;
    return ErrorCode::kWritePointerMismatch;
  }
  if (z.write_pointer + pages > z.capacity_pages) {
    return ErrorCode::kZoneFull;
  }
  BLOCKHEAD_RETURN_IF_ERROR(EnsureWritable(z, /*explicit_open=*/false, effective_issue));
  Result<SimTime> done = ProgramAtWp(z, pages, effective_issue, data, OpClass::kHost);
  if (!done.ok()) {
    return done;
  }
  stats_.pages_written += pages;
  const SimTime data_in =
      effective_issue + static_cast<SimTime>(pages) * flash_.timing().channel_xfer;
  const SimTime ack = BufferAck(z, pages, data_in, done.value());
  // The next writer may form its command once this ack (the new write pointer) has been
  // observed and the zone lock handed over.
  z.write_serial_point = ack + config_.wp_sync_overhead;
  if (write_latency_ != nullptr) {
    // Measured from the caller's issue time, so write-pointer serialization waits show up.
    write_latency_->Record(ack - issue);
  }
  if (telemetry_ != nullptr) {
    telemetry_->timeline.AdvanceGroup(sampler_group_, ack);
  }
  return ack;
}

Result<AppendResult> ZnsDevice::Append(ZoneId zone_id, std::uint32_t pages, SimTime issue,
                                       std::span<const std::uint8_t> data) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kZns, ProfOp::kAppend);
  if (zone_id.value() >= zones_.size() || pages == 0) {
    return ErrorCode::kOutOfRange;
  }
  Zone& z = zones_[zone_id.value()];
  const std::uint32_t page_size = flash_.geometry().page_size;
  if (!data.empty() && data.size() != static_cast<std::size_t>(pages) * page_size) {
    return ErrorCode::kInvalidArgument;
  }
  if (z.state == ZoneState::kOffline) {
    return ErrorCode::kZoneOffline;
  }
  if (z.state == ZoneState::kReadOnly) {
    return ErrorCode::kZoneReadOnly;
  }
  if (z.write_pointer + pages > z.capacity_pages) {
    return ErrorCode::kZoneFull;
  }
  BLOCKHEAD_RETURN_IF_ERROR(EnsureWritable(z, /*explicit_open=*/false, issue));
  const Lba assigned{static_cast<std::uint64_t>(zone_id.value()) * zone_size_pages_ +
                     z.write_pointer};
  // No host-side serialization: the device orders concurrent appends itself.
  Result<SimTime> done = ProgramAtWp(z, pages, issue, data, OpClass::kHost);
  if (!done.ok()) {
    return done.status();
  }
  stats_.pages_appended += pages;
  const SimTime data_in = issue + static_cast<SimTime>(pages) * flash_.timing().channel_xfer;
  const SimTime ack = BufferAck(z, pages, data_in, done.value());
  if (append_latency_ != nullptr) {
    append_latency_->Record(ack - issue);
  }
  if (telemetry_ != nullptr) {
    telemetry_->timeline.AdvanceGroup(sampler_group_, ack);
  }
  return AppendResult{ack, assigned};
}

Result<SimTime> ZnsDevice::Read(Lba lba, std::uint32_t pages, SimTime issue,
                                std::span<std::uint8_t> out) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kZns, ProfOp::kRead);
  const std::uint32_t page_size = flash_.geometry().page_size;
  if (!out.empty() && out.size() != static_cast<std::size_t>(pages) * page_size) {
    return ErrorCode::kInvalidArgument;
  }
  SimTime done_all = issue;
  for (std::uint32_t i = 0; i < pages; ++i) {
    Result<ZoneId> zone_id = ZoneOfLba(lba + i);
    if (!zone_id.ok()) {
      return zone_id.status();
    }
    Zone& z = zones_[zone_id.value().value()];
    if (z.state == ZoneState::kOffline) {
      return ErrorCode::kZoneOffline;
    }
    const std::uint64_t offset = (lba.value() + i) % zone_size_pages_;
    std::span<std::uint8_t> page_out;
    if (!out.empty()) {
      page_out = out.subspan(static_cast<std::size_t>(i) * page_size, page_size);
    }
    stats_.pages_read++;
    if (offset >= z.programmed_pages || offset >= z.capacity_pages) {
      // Unwritten LBAs read as zeros without touching flash.
      if (!page_out.empty()) {
        std::memset(page_out.data(), 0, page_out.size());
      }
      done_all = std::max(done_all, issue + flash_.timing().channel_xfer);
      continue;
    }
    Result<SimTime> done = flash_.ReadPage(AddrOf(z, offset), issue, page_out, OpClass::kHost);
    if (!done.ok()) {
      return done;
    }
    done_all = std::max(done_all, done.value());
  }
  if (read_latency_ != nullptr && pages > 0) {
    read_latency_->Record(done_all - issue);
  }
  if (telemetry_ != nullptr) {
    telemetry_->timeline.AdvanceGroup(sampler_group_, done_all);
  }
  return done_all;
}

Result<SimTime> ZnsDevice::OpenZone(ZoneId zone_id, SimTime issue) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kZns, ProfOp::kOther);
  if (zone_id.value() >= zones_.size()) {
    return ErrorCode::kOutOfRange;
  }
  Zone& z = zones_[zone_id.value()];
  BLOCKHEAD_RETURN_IF_ERROR(EnsureWritable(z, /*explicit_open=*/true, issue));
  const ZoneState mid = z.state;  // ImplicitOpen -> ExplicitOpen is a loggable edge too.
  const bool audit = ZoneAuditArmed();
  const std::uint64_t pre = audit ? ZoneEntryHash(z) : 0;
  z.state = ZoneState::kExplicitOpen;
  if (audit) {
    audit_zones_->Replace(issue, pre, ZoneEntryHash(z));
  }
  NoteZoneTransition(z, mid, ZoneState::kExplicitOpen, issue);
  return issue + flash_.timing().channel_xfer;
}

Result<SimTime> ZnsDevice::CloseZone(ZoneId zone_id, SimTime issue) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kZns, ProfOp::kOther);
  if (zone_id.value() >= zones_.size()) {
    return ErrorCode::kOutOfRange;
  }
  Zone& z = zones_[zone_id.value()];
  if (!IsOpen(z.state)) {
    return ErrorCode::kZoneNotOpen;
  }
  const ZoneState prev = z.state;
  const bool audit = ZoneAuditArmed();
  const std::uint64_t pre = audit ? ZoneEntryHash(z) : 0;
  z.state = ZoneState::kClosed;
  if (audit) {
    audit_zones_->Replace(issue, pre, ZoneEntryHash(z));
  }
  assert(open_count_ > 0);
  open_count_--;
  NoteZoneTransition(z, prev, ZoneState::kClosed, issue);
  return issue + flash_.timing().channel_xfer;
}

Result<SimTime> ZnsDevice::FinishZone(ZoneId zone_id, SimTime issue) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kZns, ProfOp::kOther);
  if (zone_id.value() >= zones_.size()) {
    return ErrorCode::kOutOfRange;
  }
  Zone& z = zones_[zone_id.value()];
  switch (z.state) {
    case ZoneState::kFull:
      return issue;  // Idempotent.
    case ZoneState::kReadOnly:
      return ErrorCode::kZoneReadOnly;
    case ZoneState::kOffline:
      return ErrorCode::kZoneOffline;
    default:
      break;
  }
  const ZoneState prev = z.state;
  const bool audit = ZoneAuditArmed();
  const std::uint64_t pre = audit ? ZoneEntryHash(z) : 0;
  ReleaseActive(z);
  z.state = ZoneState::kFull;
  z.write_pointer = z.capacity_pages;  // programmed_pages keeps the truly-written prefix.
  if (audit) {
    audit_zones_->Replace(issue, pre, ZoneEntryHash(z));
  }
  stats_.zone_finishes++;
  NoteZoneTransition(z, prev, ZoneState::kFull, issue);
  return issue + flash_.timing().channel_xfer;
}

Result<SimTime> ZnsDevice::ResetZone(ZoneId zone_id, SimTime issue) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kZns, ProfOp::kReset);
  if (zone_id.value() >= zones_.size()) {
    return ErrorCode::kOutOfRange;
  }
  Zone& z = zones_[zone_id.value()];
  if (z.state == ZoneState::kOffline) {
    return ErrorCode::kZoneOffline;
  }
  if (z.state == ZoneState::kReadOnly) {
    return ErrorCode::kZoneReadOnly;
  }
  const ZoneState prev = z.state;
  const bool audit = ZoneAuditArmed();
  const std::uint64_t pre = audit ? ZoneEntryHash(z) : 0;
  ReleaseActive(z);

  // Erase every block that has been programmed since the last reset. Issued in parallel;
  // per-plane serialization is handled by the flash model.
  SimTime done_all = issue + flash_.timing().channel_xfer;
  for (const StripeUnit& unit : z.units) {
    if (flash_.block_status(unit.channel, unit.plane, unit.block).next_page == 0) {
      continue;
    }
    Result<SimTime> done = flash_.EraseBlock(unit.channel, unit.plane, unit.block, issue);
    if (!done.ok() && done.code() != ErrorCode::kBlockBad) {
      return done;
    }
    if (done.ok()) {
      done_all = std::max(done_all, done.value());
    }
  }

  // Drop blocks that wore out: the zone shrinks (paper §2.1: "handled transparently by
  // decreasing the length of a zone after a reset, or by marking a zone as offline").
  std::erase_if(z.units, [this](const StripeUnit& u) {
    return flash_.block_status(u.channel, u.plane, u.block).bad;
  });
  z.capacity_pages =
      static_cast<std::uint64_t>(z.units.size()) * flash_.geometry().pages_per_block;
  z.write_pointer = 0;
  z.programmed_pages = 0;
  z.write_serial_point = 0;
  z.inflight.clear();
  z.state = z.units.empty() ? ZoneState::kOffline : ZoneState::kEmpty;
  if (audit) {
    audit_zones_->Replace(done_all, pre, ZoneEntryHash(z));
  }
  stats_.zone_resets++;
  NoteZoneTransition(z, prev, z.state, done_all);
  if (telemetry_ != nullptr) {
    telemetry_->events.Append(done_all, TimelineEventType::kZoneReset, metric_prefix_,
                              "zone " + std::to_string(zone_id.value()) + " reset capacity " +
                                  std::to_string(z.capacity_pages),
                              zone_id.value(), z.capacity_pages);
    telemetry_->timeline.RecordMaintenance(metric_prefix_ + ".reset", "zone_reset", issue,
                                           done_all);
    telemetry_->timeline.AdvanceGroup(sampler_group_, done_all);
  }
  return done_all;
}

Result<SimTime> ZnsDevice::SimpleCopy(std::span<const CopyRange> sources, ZoneId dst_zone,
                                      SimTime issue) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kZns, ProfOp::kMaintenance);
  if (dst_zone.value() >= zones_.size()) {
    return ErrorCode::kOutOfRange;
  }
  Zone& dst = zones_[dst_zone.value()];

  std::uint64_t total_pages = 0;
  for (const CopyRange& r : sources) {
    total_pages += r.pages;
  }
  if (total_pages == 0) {
    return issue;
  }
  if (dst.write_pointer + total_pages > dst.capacity_pages) {
    return ErrorCode::kZoneFull;
  }
  BLOCKHEAD_RETURN_IF_ERROR(EnsureWritable(dst, /*explicit_open=*/false, issue));

  // Pages are copied as a stripe-wide pipelined window (not booked all at once): the
  // controller uses the destination stripe's full plane parallelism, and the batch boundaries
  // still leave gaps for host reads to interleave. The command acknowledges like a write —
  // once the source data is staged in the zone's write buffer — while cell programs drain
  // behind it.
  const std::uint32_t kCopyWindow = static_cast<std::uint32_t>(dst.units.size());
  const bool audit = ZoneAuditArmed();
  SimTime done_all = issue;
  SimTime ack_all = issue;
  SimTime batch_issue = issue;
  std::uint32_t in_batch = 0;
  for (const CopyRange& r : sources) {
    for (std::uint32_t i = 0; i < r.pages; ++i) {
      Result<ZoneId> src_zone_id = ZoneOfLba(r.lba + i);
      if (!src_zone_id.ok()) {
        return src_zone_id.status();
      }
      Zone& src = zones_[src_zone_id.value().value()];
      const std::uint64_t src_offset = (r.lba.value() + i) % zone_size_pages_;
      if (src_offset >= src.programmed_pages) {
        return Status(ErrorCode::kOutOfRange, "simple-copy source beyond write pointer");
      }
      const PhysAddr src_addr = AddrOf(src, src_offset);
      const PhysAddr dst_addr = AddrOf(dst, dst.write_pointer);
      Result<SimTime> done = flash_.CopyPage(src_addr, dst_addr, batch_issue);
      if (!done.ok()) {
        return done;
      }
      done_all = std::max(done_all, done.value());
      ack_all = std::max(
          ack_all, BufferAck(dst, 1, batch_issue + flash_.timing().page_read, done.value()));
      if (++in_batch >= kCopyWindow) {
        // Next batch issues once this batch's source reads vacate the planes; its programs
        // pipeline behind via per-plane queueing (a copyback pipeline, like firmware GC).
        batch_issue += flash_.timing().page_read;
        in_batch = 0;
      }
      const std::uint64_t pre = audit ? ZoneEntryHash(dst) : 0;
      dst.write_pointer++;
      dst.programmed_pages = dst.write_pointer;
      if (audit) {
        audit_zones_->Replace(done.value(), pre, ZoneEntryHash(dst));
      }
      stats_.pages_copied++;
    }
  }
  if (dst.write_pointer >= dst.capacity_pages) {
    const ZoneState prev = dst.state;
    const std::uint64_t pre = audit ? ZoneEntryHash(dst) : 0;
    ReleaseActive(dst);
    dst.state = ZoneState::kFull;
    if (audit) {
      audit_zones_->Replace(done_all, pre, ZoneEntryHash(dst));
    }
    NoteZoneTransition(dst, prev, ZoneState::kFull, done_all);
  }
  return ack_all;
}

DramUsage ZnsDevice::ComputeDramUsage() const {
  DramUsage u;
  // Zone map: 4 bytes per erasure block (paper §2.2's ZNS model).
  u.mapping_bytes = flash_.geometry().total_blocks() * 4;
  u.gc_metadata_bytes = 0;  // No device GC.
  u.write_buffer_bytes = static_cast<std::uint64_t>(config_.max_active_zones) *
                         config_.zone_write_buffer_pages * flash_.geometry().page_size;
  return u;
}

}  // namespace blockhead
