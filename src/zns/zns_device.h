// Zoned Namespaces SSD model (NVMe TP 4053 semantics subset, plus zone append and the TP 4065a
// simple-copy command the paper highlights in §2.3/§4.2).
//
// The device is built on the same FlashDevice substrate as the conventional SSD, but its FTL is
// thin: it maps zones to stripes of erasure blocks (one zone -> one or more blocks on every
// plane, giving full write parallelism within a zone) and does *no* garbage collection. All the
// conventional FTL's DRAM-hungry page-granularity state disappears; what remains is a 4-byte
// per-erasure-block zone map — the source of the paper's ~256 KB-per-TB figure (§2.2).
//
// Zone state machine (§2.1): Empty -> ImplicitOpen/ExplicitOpen -> Closed -> Full -> (reset) ->
// Empty, with ReadOnly and Offline as failure states. Open and active zone counts are limited
// (the paper's example device: 14); exceeding them fails with the matching NVMe status.
//
// Multi-writer semantics (§4.2): regular zone writes must be issued at the write pointer, so
// concurrent writers serialize — each must observe the previous write's completion before it
// can issue. Zone append carries no offset; the device serializes appends internally and
// returns the assigned address, so appends from many writers pipeline across planes.

#ifndef BLOCKHEAD_SRC_ZNS_ZNS_DEVICE_H_
#define BLOCKHEAD_SRC_ZNS_ZNS_DEVICE_H_

#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include "src/core/shard_safety.h"
#include "src/core/strong_id.h"
#include "src/flash/flash_device.h"
#include "src/ftl/conventional_ssd.h"  // For DramUsage.
#include "src/util/status.h"
#include "src/util/types.h"

namespace blockhead {

enum class ZoneState {
  kEmpty,
  kImplicitOpen,
  kExplicitOpen,
  kClosed,
  kFull,
  kReadOnly,
  kOffline,
};

const char* ZoneStateName(ZoneState state);

struct ZnsConfig {
  // Blocks per zone contributed by each participating plane.
  std::uint32_t blocks_per_zone_per_plane = 1;
  // Planes a single zone stripes across (0 = all planes). Real devices map zones to a small
  // die group, so one zone cannot saturate the device — which is why the active-zone budget
  // is a meaningful resource (§4.2). Must divide the total plane count.
  std::uint32_t planes_per_zone = 0;
  // Resource limits (paper §2.1: "only a limited number of zones can be active at once").
  std::uint32_t max_active_zones = 14;
  std::uint32_t max_open_zones = 14;
  // Per-active-zone device write buffer (pages); the DRAM that makes active zones a scarce
  // resource (§2.1). Writes/appends are acknowledged once buffered; the buffer drains at
  // cell-program speed. 0 disables buffering (commands complete only when cells are
  // programmed — the strictest host-serialization regime).
  std::uint32_t zone_write_buffer_pages = 16;
  // Host-side cost of write-pointer serialization per regular zone write (lock handoff +
  // completion processing before the next writer may form its command). Not paid by Append.
  SimTime wp_sync_overhead = 5 * kMicrosecond;
};

struct ZoneDescriptor {
  ZoneId zone_id{0};
  ZoneState state = ZoneState::kEmpty;
  Lba start_lba{0};                  // First LBA of the zone.
  std::uint64_t capacity_pages = 0;  // Writable capacity (shrinks if blocks go bad).
  std::uint64_t write_pointer = 0;   // Zone-relative, in pages.
};

struct ZnsStats {
  std::uint64_t pages_written = 0;   // Via Write.
  std::uint64_t pages_appended = 0;  // Via Append.
  std::uint64_t pages_read = 0;
  std::uint64_t pages_copied = 0;  // Via SimpleCopy.
  std::uint64_t zone_resets = 0;
  std::uint64_t zone_finishes = 0;
  std::uint64_t wp_mismatch_errors = 0;
  std::uint64_t active_limit_rejections = 0;
};

struct AppendResult {
  SimTime completion = 0;
  Lba assigned_lba{0};  // Device-assigned absolute LBA of the first page.
};

// A source range for SimpleCopy.
struct CopyRange {
  Lba lba{0};
  std::uint32_t pages = 0;
};

class ZnsDevice {
 public:
  ZnsDevice(const FlashConfig& flash_config, const ZnsConfig& zns_config);
  ~ZnsDevice();  // Publishes final metrics and unhooks from the registry if attached.

  const FlashDevice& flash() const { return flash_; }
  const ZnsStats& stats() const { return stats_; }
  const ZnsConfig& config() const { return config_; }

  // Registers this device (and its inner flash, under `<prefix>.flash.*`) with `telemetry`:
  // ZnsStats and zone-resource gauges under `<prefix>.*`, plus live host-observed latency
  // histograms `<prefix>.append.latency_ns`, `<prefix>.write.latency_ns` and
  // `<prefix>.read.latency_ns`.
  //
  // While attached, every zone state-machine edge (EMPTY -> OPEN -> FULL -> reset, plus
  // close/finish/offline) is logged as a kZoneTransition event, completed resets additionally
  // as kZoneReset events and "zone_reset" maintenance slices on the "<prefix>.reset" timeline
  // track; "<prefix>.active_zones" / "<prefix>.open_zones" are sampled as timeline series.
  void AttachTelemetry(Telemetry* telemetry, std::string_view prefix = "zns");

  // The attached telemetry bundle (nullptr when detached). Lets host-side layers built on top
  // of the device (persistent queue, host FTL) share the same registry/ledger.
  Telemetry* telemetry() const { return telemetry_; }

  std::uint32_t num_zones() const { return static_cast<std::uint32_t>(zones_.size()); }
  // Uniform nominal zone size in pages (LBA stride between zone starts).
  std::uint64_t zone_size_pages() const { return zone_size_pages_; }
  std::uint32_t page_size() const { return flash_.geometry().page_size; }
  std::uint64_t capacity_bytes() const;

  ZoneDescriptor zone(ZoneId zone_id) const;
  std::uint32_t active_zones() const { return active_count_; }
  std::uint32_t open_zones() const { return open_count_; }

  // Writes `pages` pages at `offset` (zone-relative, in pages), which must equal the write
  // pointer. Transitions Empty/Closed zones to ImplicitOpen. Concurrent writers to the same
  // zone serialize on the write pointer (see file comment).
  Result<SimTime> Write(ZoneId zone_id, std::uint64_t offset, std::uint32_t pages,
                        SimTime issue, std::span<const std::uint8_t> data = {});

  // Appends `pages` pages at the device-chosen position; does not serialize on the host side.
  Result<AppendResult> Append(ZoneId zone_id, std::uint32_t pages, SimTime issue,
                              std::span<const std::uint8_t> data = {});

  // Reads `pages` pages starting at absolute LBA. Reads beyond the write pointer return zeros.
  Result<SimTime> Read(Lba lba, std::uint32_t pages, SimTime issue,
                       std::span<std::uint8_t> out = {});

  // Explicitly opens a zone (consumes an open + active slot).
  Result<SimTime> OpenZone(ZoneId zone_id, SimTime issue);
  // Closes an open zone (frees the open slot; the zone stays active).
  Result<SimTime> CloseZone(ZoneId zone_id, SimTime issue);
  // Finishes a zone: write pointer jumps to capacity; frees its active slot.
  Result<SimTime> FinishZone(ZoneId zone_id, SimTime issue);
  // Resets a zone to Empty, erasing its blocks. Worn-out blocks are dropped from the zone
  // (capacity shrinks); a zone with no usable blocks left goes Offline.
  Result<SimTime> ResetZone(ZoneId zone_id, SimTime issue);

  // Device-controller-managed copy (NVMe simple copy): reads the source ranges and appends
  // them to dst_zone without any host-bus traffic. Sources must be below their zones' write
  // pointers.
  Result<SimTime> SimpleCopy(std::span<const CopyRange> sources, ZoneId dst_zone,
                             SimTime issue);

  // DRAM footprint under the paper's 4 B-per-erasure-block model plus active-zone buffers.
  DramUsage ComputeDramUsage() const;

  // Translates an absolute LBA to its zone. Fails if out of range.
  Result<ZoneId> ZoneOfLba(Lba lba) const;

 private:
  struct StripeUnit {
    ChannelId channel{0};
    PlaneId plane{0};
    BlockId block{0};
  };

  struct Zone {
    ZoneState state = ZoneState::kEmpty;
    std::uint64_t write_pointer = 0;     // Zone-relative pages.
    std::uint64_t programmed_pages = 0;  // Prefix actually programmed (wp jumps on Finish).
    std::uint64_t capacity_pages = 0;    // units.size() * pages_per_block.
    std::vector<StripeUnit> units;     // Usable blocks, striped round-robin by page.
    // Acknowledgement of the last regular Write plus sync overhead; the next Write cannot be
    // *issued* before this (host-side write-pointer serialization).
    SimTime write_serial_point = 0;
    // Outstanding buffered program completions (device write buffer occupancy model).
    std::deque<SimTime> inflight;
  };

  // Maps a zone-relative page offset to its physical address.
  PhysAddr AddrOf(const Zone& z, std::uint64_t offset) const;
  // Common path for Write/Append/SimpleCopy payload programming.
  Result<SimTime> ProgramAtWp(Zone& z, std::uint32_t pages, SimTime issue,
                              std::span<const std::uint8_t> data, OpClass op_class);
  // Transitions a zone toward (implicit) open for writing; enforces resource limits. `now` is
  // the SimTime any state transition is logged at.
  Status EnsureWritable(Zone& z, bool explicit_open, SimTime now);
  void ReleaseActive(Zone& z);
  // Logs a kZoneTransition event (no-op when telemetry is off or from == to).
  void NoteZoneTransition(const Zone& z, ZoneState from, ZoneState to, SimTime t);
  // Host-visible acknowledgement time for `pages` buffered at data_in whose programs finish
  // at program_done.
  SimTime BufferAck(Zone& z, std::uint32_t pages, SimTime data_in, SimTime program_done);
  void PublishMetrics();

  FlashDevice flash_ BLOCKHEAD_SHARD_SHARED;
  ZnsConfig config_ BLOCKHEAD_SHARD_SHARED;
  std::vector<Zone> zones_ BLOCKHEAD_SHARD_LOCAL(zone);
  std::uint64_t zone_size_pages_ BLOCKHEAD_SHARD_SHARED = 0;
  std::uint32_t active_count_ BLOCKHEAD_SHARD_SHARED = 0;
  std::uint32_t open_count_ BLOCKHEAD_SHARD_SHARED = 0;
  ZnsStats stats_ BLOCKHEAD_SHARD_SHARED;

  Telemetry* telemetry_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  std::string metric_prefix_ BLOCKHEAD_SIM_GLOBAL;
  Histogram* append_latency_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  Histogram* write_latency_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  Histogram* read_latency_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  int sampler_group_ BLOCKHEAD_SIM_GLOBAL = -1;  // Timeline group for zone-resource gauges.

  // State-digest audit of the zone table ("<prefix>.zones"): one entry per zone hashing
  // (id, state, write pointer, programmed prefix, capacity). Every transition and every
  // write-pointer advance folds the zone's old entry out and the new one in.
  SubsystemDigest* audit_zones_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  bool ZoneAuditArmed() const { return audit_zones_ != nullptr && audit_zones_->armed(); }
  std::uint64_t ZoneEntryHash(const Zone& z) const {
    return AuditHashWords({static_cast<std::uint64_t>(&z - zones_.data()),
                           static_cast<std::uint64_t>(z.state), z.write_pointer,
                           z.programmed_pages, z.capacity_pages});
  }
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_ZNS_ZNS_DEVICE_H_
