// Deterministic discrete-event queue used by the closed/open-loop workload drivers.
//
// Events at equal times are popped in insertion order (a monotonically increasing sequence
// number breaks ties), which keeps multi-actor simulations reproducible.

#ifndef BLOCKHEAD_SRC_UTIL_EVENT_QUEUE_H_
#define BLOCKHEAD_SRC_UTIL_EVENT_QUEUE_H_

#include <cstdint>
#include <queue>
#include <utility>
#include <vector>

#include "src/core/shard_safety.h"
#include "src/util/types.h"

namespace blockhead {

template <typename Payload>
class EventQueue {
 public:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Payload payload;
  };

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  void Push(SimTime time, Payload payload) {
    heap_.push(Event{time, next_seq_++, std::move(payload)});
  }

  // Time of the earliest event; queue must be nonempty.
  SimTime PeekTime() const { return heap_.top().time; }

  // Pops and returns the earliest event; queue must be nonempty.
  Event Pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) {
        return a.time > b.time;
      }
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> heap_ BLOCKHEAD_SHARD_SHARED;
  std::uint64_t next_seq_ BLOCKHEAD_SHARD_SHARED = 0;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_UTIL_EVENT_QUEUE_H_
