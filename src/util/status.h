// Lightweight, exception-free error handling used across the device models and host stacks.
//
// Device operations on hot paths return Result<SimTime> (completion time or error); hosts
// inspect codes like kWritePointerMismatch or kTooManyActiveZones that mirror the NVMe ZNS
// status codes the paper discusses.

#ifndef BLOCKHEAD_SRC_UTIL_STATUS_H_
#define BLOCKHEAD_SRC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "src/core/shard_safety.h"

namespace blockhead {

// Error taxonomy. The zone-specific codes correspond to NVMe ZNS command status values; the
// generic ones cover the host-side stacks (filesystem, KV store, cache).
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kDeviceFull,
  kNoFreeBlocks,
  // Zone interface errors (mirroring ZNS command statuses).
  kZoneNotOpen,
  kZoneFull,
  kZoneReadOnly,
  kZoneOffline,
  kWritePointerMismatch,
  kTooManyActiveZones,
  kTooManyOpenZones,
  // Flash-level errors.
  kBlockBad,
  kProgramOrderViolation,
  kEraseBeforeProgram,
  // Host stack errors.
  kCorruption,
  kNotSupported,
  kBusy,
  kInternal,
};

// Returns a stable human-readable name for an error code.
const char* ErrorCodeName(ErrorCode code);

// A status: an error code plus an optional message. Ok statuses carry no allocation.
class Status {
 public:
  Status() : code_(ErrorCode::kOk) {}
  explicit Status(ErrorCode code) : code_(code) {}
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  ErrorCode code_ BLOCKHEAD_SHARD_LOCAL(owner);
  std::string message_ BLOCKHEAD_SHARD_LOCAL(owner);
};

// A value-or-status result. Accessing the value of a failed result asserts in debug builds and
// is undefined in release builds; callers must check ok() first.
template <typename T>
class Result {
 public:
  // Implicit from value: lets functions `return completion_time;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  // Implicit from error status: lets functions `return Status(ErrorCode::kZoneFull);`.
  Result(Status status) : status_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!status_.ok() && "Result constructed from OK status without a value");
  }
  Result(ErrorCode code) : status_(code) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }
  ErrorCode code() const { return value_.has_value() ? ErrorCode::kOk : status_.code(); }

  const T& value() const& {
    assert(value_.has_value());
    return *value_;
  }
  T& value() & {
    assert(value_.has_value());
    return *value_;
  }
  T&& value() && {
    assert(value_.has_value());
    return *std::move(value_);
  }

  const T& value_or(const T& fallback) const& { return value_.has_value() ? *value_ : fallback; }

  const T& operator*() const& { return value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_ BLOCKHEAD_SHARD_LOCAL(owner);
  Status status_ BLOCKHEAD_SHARD_LOCAL(owner);
};

// Evaluates `expr` (a Status-returning expression) and early-returns on failure.
#define BLOCKHEAD_RETURN_IF_ERROR(expr)        \
  do {                                         \
    ::blockhead::Status _bh_status = (expr);   \
    if (!_bh_status.ok()) return _bh_status;   \
  } while (false)

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_UTIL_STATUS_H_
