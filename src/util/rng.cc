#include "src/util/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>

namespace blockhead {

namespace {

// splitmix64, used to expand a single seed into the xoshiro state.
std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  assert(bound != 0);
  // Lemire's nearly-divisionless bounded generation is overkill here; a simple modulo has
  // negligible bias for the bounds used in this library (device sizes << 2^64).
  return Next() % bound;
}

std::uint64_t Rng::NextInRange(std::uint64_t lo, std::uint64_t hi) {
  assert(lo <= hi);
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return NextDouble() < p;
}

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -mean * std::log(u);
}

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed)
    : n_(n), theta_(theta), rng_(seed) {
  assert(n > 0);
  assert(theta > 0.0 && theta < 1.0);
  zetan_ = Zeta(n, theta);
  const double zeta2 = Zeta(2, theta);
  alpha_ = 1.0 / (1.0 - theta);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) / (1.0 - zeta2 / zetan_);
}

double ZipfGenerator::Zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

std::uint64_t ZipfGenerator::Next() {
  const double u = rng_.NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) {
    return 0;
  }
  if (uz < 1.0 + std::pow(0.5, theta_)) {
    return 1;
  }
  const double raw =
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_);
  std::uint64_t value = static_cast<std::uint64_t>(raw);
  if (value >= n_) {
    value = n_ - 1;
  }
  return value;
}

std::vector<std::uint64_t> RandomPermutation(std::uint64_t n, std::uint64_t seed) {
  std::vector<std::uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(seed);
  for (std::uint64_t i = n; i > 1; --i) {
    const std::uint64_t j = rng.NextBelow(i);
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace blockhead
