#include "src/util/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace blockhead {

Histogram::Histogram() = default;

int Histogram::BucketIndex(std::uint64_t value) {
  if (value < kSubBuckets) {
    return static_cast<int>(value);
  }
  // value >= kSubBuckets: exponent e >= kSubBucketBits.
  const int e = 63 - std::countl_zero(value);
  const int shift = e - kSubBucketBits;
  const int sub = static_cast<int>((value >> shift) - kSubBuckets);  // in [0, kSubBuckets)
  return kSubBuckets + shift * kSubBuckets + sub;
}

std::uint64_t Histogram::BucketUpperBound(int index) {
  if (index < kSubBuckets) {
    return static_cast<std::uint64_t>(index);
  }
  const int rest = index - kSubBuckets;
  const int shift = rest / kSubBuckets;
  const int sub = rest % kSubBuckets;
  return ((static_cast<std::uint64_t>(kSubBuckets + sub + 1)) << shift) - 1;
}

void Histogram::Record(std::uint64_t value) { RecordMany(value, 1); }

void Histogram::RecordMany(std::uint64_t value, std::uint64_t count) {
  if (count == 0) {
    return;
  }
  const int index = BucketIndex(value);
  if (static_cast<std::size_t>(index) >= buckets_.size()) {
    buckets_.resize(static_cast<std::size_t>(index) + 1, 0);
  }
  buckets_[static_cast<std::size_t>(index)] += count;
  count_ += count;
  sum_ += value * count;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) {
    return;
  }
  if (other.buckets_.size() > buckets_.size()) {
    buckets_.resize(other.buckets_.size(), 0);
  }
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void Histogram::Reset() {
  buckets_.clear();
  count_ = 0;
  sum_ = 0;
  min_ = ~0ULL;
  max_ = 0;
}

double Histogram::Mean() const {
  if (count_ == 0) {
    return 0.0;
  }
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t Histogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0;
  }
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, ceil).
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(count_) + 0.5);
  rank = std::clamp<std::uint64_t>(rank, 1, count_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      return std::min(BucketUpperBound(static_cast<int>(i)), max_);
    }
  }
  return max_;
}

RollingHistogram::RollingHistogram(std::uint64_t window_ns, int num_buckets) {
  if (num_buckets < 1) {
    num_buckets = 1;
  }
  bucket_ns_ = window_ns / static_cast<std::uint64_t>(num_buckets);
  if (bucket_ns_ == 0) {
    bucket_ns_ = 1;
  }
  buckets_.resize(static_cast<std::size_t>(num_buckets));
}

void RollingHistogram::Record(std::uint64_t now, std::uint64_t value) {
  const std::uint64_t epoch = now / bucket_ns_;
  Bucket& b = buckets_[epoch % buckets_.size()];
  if (b.epoch != epoch) {
    b.hist.Reset();  // Lazy expiry: the slot last held an epoch a full window ago.
    b.epoch = epoch;
  }
  b.hist.Record(value);
}

Histogram RollingHistogram::Merged(std::uint64_t now) const {
  Histogram out;
  const std::uint64_t epoch_now = now / bucket_ns_;
  const std::uint64_t n = buckets_.size();
  for (const Bucket& b : buckets_) {
    // Live: recorded within the window ending at `now` (epoch in (epoch_now - n, epoch_now]).
    if (b.epoch != kNoEpoch && b.epoch <= epoch_now && epoch_now - b.epoch < n) {
      out.Merge(b.hist);
    }
  }
  return out;
}

RollingCounter::RollingCounter(std::uint64_t window_ns, int num_buckets) {
  if (num_buckets < 1) {
    num_buckets = 1;
  }
  bucket_ns_ = window_ns / static_cast<std::uint64_t>(num_buckets);
  if (bucket_ns_ == 0) {
    bucket_ns_ = 1;
  }
  buckets_.resize(static_cast<std::size_t>(num_buckets));
}

void RollingCounter::Add(std::uint64_t now, std::uint64_t n) {
  const std::uint64_t epoch = now / bucket_ns_;
  Bucket& b = buckets_[epoch % buckets_.size()];
  if (b.epoch != epoch) {
    b.value = 0;
    b.epoch = epoch;
  }
  b.value += n;
}

std::uint64_t RollingCounter::Sum(std::uint64_t now) const {
  std::uint64_t sum = 0;
  const std::uint64_t epoch_now = now / bucket_ns_;
  const std::uint64_t n = buckets_.size();
  for (const Bucket& b : buckets_) {
    if (b.epoch != kNoEpoch && b.epoch <= epoch_now && epoch_now - b.epoch < n) {
      sum += b.value;
    }
  }
  return sum;
}

std::string Histogram::Summary(double unit, const std::string& unit_name) const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "n=%llu mean=%.1f%s p50=%.1f%s p90=%.1f%s p99=%.1f%s p99.9=%.1f%s max=%.1f%s",
                static_cast<unsigned long long>(count_), Mean() / unit, unit_name.c_str(),
                static_cast<double>(Percentile(0.50)) / unit, unit_name.c_str(),
                static_cast<double>(Percentile(0.90)) / unit, unit_name.c_str(),
                static_cast<double>(Percentile(0.99)) / unit, unit_name.c_str(),
                static_cast<double>(Percentile(0.999)) / unit, unit_name.c_str(),
                static_cast<double>(max()) / unit, unit_name.c_str());
  return std::string(buf);
}

}  // namespace blockhead
