// Core scalar types shared by every blockhead module.
//
// All simulation timing in blockhead is *model time*: a deterministic, monotonically
// nondecreasing nanosecond counter advanced by the device models. Nothing in the library reads
// the wall clock, which keeps every benchmark and test bit-reproducible.

#ifndef BLOCKHEAD_SRC_UTIL_TYPES_H_
#define BLOCKHEAD_SRC_UTIL_TYPES_H_

#include <cstdint>

namespace blockhead {

// Simulated time in nanoseconds since device power-on.
using SimTime = std::uint64_t;

// Convenience duration constants (also SimTime, i.e. nanoseconds).
inline constexpr SimTime kNanosecond = 1;
inline constexpr SimTime kMicrosecond = 1000 * kNanosecond;
inline constexpr SimTime kMillisecond = 1000 * kMicrosecond;
inline constexpr SimTime kSecond = 1000 * kMillisecond;

// Byte-size constants.
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;
inline constexpr std::uint64_t kTiB = 1024 * kGiB;

// Converts a byte count and a duration into MiB/s. Returns 0 for a zero duration.
inline double ToMiBPerSec(std::uint64_t bytes, SimTime elapsed) {
  if (elapsed == 0) {
    return 0.0;
  }
  return (static_cast<double>(bytes) / static_cast<double>(kMiB)) /
         (static_cast<double>(elapsed) / static_cast<double>(kSecond));
}

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_UTIL_TYPES_H_
