// Log-bucketed latency histogram with percentile queries.
//
// Buckets grow geometrically (HdrHistogram-style: linear sub-buckets within power-of-two
// ranges), giving ~3% relative error across nanoseconds-to-seconds with a small fixed
// footprint. Used by every benchmark to report p50/p90/p99/p99.9/p99.99 latencies.

#ifndef BLOCKHEAD_SRC_UTIL_HISTOGRAM_H_
#define BLOCKHEAD_SRC_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/shard_safety.h"

namespace blockhead {

class Histogram {
 public:
  Histogram();

  // Records one sample (e.g. a latency in nanoseconds).
  void Record(std::uint64_t value);
  // Records `count` identical samples.
  void RecordMany(std::uint64_t value, std::uint64_t count);

  // Merges another histogram into this one.
  void Merge(const Histogram& other);

  void Reset();

  std::uint64_t count() const { return count_; }
  std::uint64_t sum() const { return sum_; }
  std::uint64_t min() const { return count_ == 0 ? 0 : min_; }
  std::uint64_t max() const { return max_; }
  double Mean() const;

  // Value at quantile q in [0, 1]. Returns 0 for an empty histogram. The returned value is the
  // representative (upper bound) of the bucket containing the q-th sample.
  std::uint64_t Percentile(double q) const;

  // Named percentile accessors (the set the telemetry sinks serialize).
  std::uint64_t P50() const { return Percentile(0.50); }
  std::uint64_t P90() const { return Percentile(0.90); }
  std::uint64_t P95() const { return Percentile(0.95); }
  std::uint64_t P99() const { return Percentile(0.99); }
  std::uint64_t P999() const { return Percentile(0.999); }

  // One-line summary: count, mean, p50, p90, p99, p99.9, max — values rendered with `unit`
  // divisor (e.g. 1000 for microseconds) and `unit_name`.
  std::string Summary(double unit, const std::string& unit_name) const;

  // Raw bucket occupancy (index → sample count). The layout is a pure function of the
  // recorded multiset, which is what lets the audit layer hash histogram *content*
  // independent of Record/Merge order (AuditHashHistogram).
  const std::vector<std::uint64_t>& bucket_counts() const { return buckets_; }

 private:
  static constexpr int kSubBucketBits = 5;  // 32 linear sub-buckets per power of two.
  static constexpr int kSubBuckets = 1 << kSubBucketBits;

  static int BucketIndex(std::uint64_t value);
  static std::uint64_t BucketUpperBound(int index);

  std::vector<std::uint64_t> buckets_ BLOCKHEAD_SHARD_LOCAL(owner);
  std::uint64_t count_ BLOCKHEAD_SHARD_LOCAL(owner) = 0;
  std::uint64_t sum_ BLOCKHEAD_SHARD_LOCAL(owner) = 0;
  std::uint64_t min_ BLOCKHEAD_SHARD_LOCAL(owner) = ~0ULL;
  std::uint64_t max_ BLOCKHEAD_SHARD_LOCAL(owner) = 0;
};

// Histogram over a rolling time window, for SLO evaluation over "the last W nanoseconds"
// of model time rather than the whole run.
//
// The window is split into `num_buckets` equal epochs, each holding a sub-histogram; a
// recording that lands in a bucket whose epoch has rolled over resets that bucket first
// (lazy expiry — no timer). Merged(now) merges the buckets still inside the window ending at
// `now`, so the result covers between (num_buckets-1)/num_buckets and 1 full window of
// history — the standard sliding-window approximation. Time must be driven with the
// simulation clock; queries at an earlier time than recordings simply see fewer live
// buckets. Deterministic: same (now, value) sequence, byte-identical state.
class RollingHistogram {
 public:
  explicit RollingHistogram(std::uint64_t window_ns, int num_buckets = 4);

  void Record(std::uint64_t now, std::uint64_t value);

  // Merge of all buckets whose epoch lies in the window ending at `now`.
  Histogram Merged(std::uint64_t now) const;

  std::uint64_t window_ns() const { return bucket_ns_ * buckets_.size(); }
  std::uint64_t bucket_ns() const { return bucket_ns_; }

 private:
  static constexpr std::uint64_t kNoEpoch = ~0ULL;
  struct Bucket {
    std::uint64_t epoch = kNoEpoch;  // now / bucket_ns at last Record; kNoEpoch = empty.
    Histogram hist;
  };

  std::uint64_t bucket_ns_ BLOCKHEAD_SHARD_LOCAL(owner);
  std::vector<Bucket> buckets_ BLOCKHEAD_SHARD_LOCAL(owner);
};

// Counter over the same rolling-window scheme (SLO burn-rate tallies).
class RollingCounter {
 public:
  explicit RollingCounter(std::uint64_t window_ns, int num_buckets = 4);

  void Add(std::uint64_t now, std::uint64_t n = 1);

  // Sum of all buckets whose epoch lies in the window ending at `now`.
  std::uint64_t Sum(std::uint64_t now) const;

  std::uint64_t window_ns() const { return bucket_ns_ * buckets_.size(); }

 private:
  static constexpr std::uint64_t kNoEpoch = ~0ULL;
  struct Bucket {
    std::uint64_t epoch = kNoEpoch;
    std::uint64_t value = 0;
  };

  std::uint64_t bucket_ns_ BLOCKHEAD_SHARD_LOCAL(owner);
  std::vector<Bucket> buckets_ BLOCKHEAD_SHARD_LOCAL(owner);
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_UTIL_HISTOGRAM_H_
