#include "src/util/status.h"

namespace blockhead {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kDeviceFull:
      return "DEVICE_FULL";
    case ErrorCode::kNoFreeBlocks:
      return "NO_FREE_BLOCKS";
    case ErrorCode::kZoneNotOpen:
      return "ZONE_NOT_OPEN";
    case ErrorCode::kZoneFull:
      return "ZONE_FULL";
    case ErrorCode::kZoneReadOnly:
      return "ZONE_READ_ONLY";
    case ErrorCode::kZoneOffline:
      return "ZONE_OFFLINE";
    case ErrorCode::kWritePointerMismatch:
      return "WRITE_POINTER_MISMATCH";
    case ErrorCode::kTooManyActiveZones:
      return "TOO_MANY_ACTIVE_ZONES";
    case ErrorCode::kTooManyOpenZones:
      return "TOO_MANY_OPEN_ZONES";
    case ErrorCode::kBlockBad:
      return "BLOCK_BAD";
    case ErrorCode::kProgramOrderViolation:
      return "PROGRAM_ORDER_VIOLATION";
    case ErrorCode::kEraseBeforeProgram:
      return "ERASE_BEFORE_PROGRAM";
    case ErrorCode::kCorruption:
      return "CORRUPTION";
    case ErrorCode::kNotSupported:
      return "NOT_SUPPORTED";
    case ErrorCode::kBusy:
      return "BUSY";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace blockhead
