// Deterministic random number generation for workloads and device models.
//
// Everything is seeded explicitly; two runs with the same seed produce identical streams, which
// keeps the paper-reproduction benchmarks deterministic.

#ifndef BLOCKHEAD_SRC_UTIL_RNG_H_
#define BLOCKHEAD_SRC_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "src/core/shard_safety.h"

namespace blockhead {

// xoshiro256** PRNG. Fast, high quality, and trivially copyable (unlike std::mt19937 it is
// cheap to embed per-workload-actor).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t Next();

  // Uniform in [0, bound). bound must be nonzero.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform in [lo, hi] inclusive.
  std::uint64_t NextInRange(std::uint64_t lo, std::uint64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // True with probability p (clamped to [0, 1]).
  bool NextBool(double p);

  // Exponentially distributed value with the given mean (for open-loop arrivals).
  double NextExponential(double mean);

 private:
  std::uint64_t state_[4] BLOCKHEAD_SHARD_LOCAL(owner);
};

// Zipfian generator over [0, n) with parameter theta (0 < theta < 1 typical; theta→0 is
// uniform). Uses the Gray/Jim Gray "quick zipf" method from the YCSB generator, so draws are
// O(1) after O(n)-free setup (the zeta constant is computed incrementally).
class ZipfGenerator {
 public:
  ZipfGenerator(std::uint64_t n, double theta, std::uint64_t seed);

  std::uint64_t Next();

  std::uint64_t n() const { return n_; }
  double theta() const { return theta_; }

 private:
  static double Zeta(std::uint64_t n, double theta);

  std::uint64_t n_ BLOCKHEAD_SHARD_LOCAL(owner);
  double theta_ BLOCKHEAD_SHARD_LOCAL(owner);
  double alpha_ BLOCKHEAD_SHARD_LOCAL(owner);
  double zetan_ BLOCKHEAD_SHARD_LOCAL(owner);
  double eta_ BLOCKHEAD_SHARD_LOCAL(owner);
  Rng rng_ BLOCKHEAD_SHARD_LOCAL(owner);
};

// Returns a pseudo-random permutation of [0, n) for scrambled-zipf style key spaces.
std::vector<std::uint64_t> RandomPermutation(std::uint64_t n, std::uint64_t seed);

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_UTIL_RNG_H_
