// Fixed-size bitmap with popcount tracking, used for per-erasure-block valid-page maps in the
// conventional FTL and for extent allocators in the host stacks.

#ifndef BLOCKHEAD_SRC_UTIL_BITMAP_H_
#define BLOCKHEAD_SRC_UTIL_BITMAP_H_

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "src/core/shard_safety.h"

namespace blockhead {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t size)
      : size_(size), words_((size + 63) / 64, 0), set_count_(0) {}

  std::size_t size() const { return size_; }
  std::size_t set_count() const { return set_count_; }

  bool Test(std::size_t i) const {
    assert(i < size_);
    return (words_[i / 64] >> (i % 64)) & 1ULL;
  }

  // Sets bit i; returns true if the bit changed.
  bool Set(std::size_t i) {
    assert(i < size_);
    const std::uint64_t mask = 1ULL << (i % 64);
    if (words_[i / 64] & mask) {
      return false;
    }
    words_[i / 64] |= mask;
    ++set_count_;
    return true;
  }

  // Clears bit i; returns true if the bit changed.
  bool Clear(std::size_t i) {
    assert(i < size_);
    const std::uint64_t mask = 1ULL << (i % 64);
    if (!(words_[i / 64] & mask)) {
      return false;
    }
    words_[i / 64] &= ~mask;
    --set_count_;
    return true;
  }

  void ClearAll() {
    std::fill(words_.begin(), words_.end(), 0);
    set_count_ = 0;
  }

  // Index of the first set bit at or after `from`, or size() if none.
  std::size_t FindFirstSet(std::size_t from = 0) const {
    if (from >= size_) {
      return size_;
    }
    std::size_t w = from / 64;
    std::uint64_t word = words_[w] & (~0ULL << (from % 64));
    while (true) {
      if (word != 0) {
        const std::size_t i = w * 64 + static_cast<std::size_t>(std::countr_zero(word));
        return i < size_ ? i : size_;
      }
      if (++w >= words_.size()) {
        return size_;
      }
      word = words_[w];
    }
  }

  // Index of the first clear bit at or after `from`, or size() if none.
  std::size_t FindFirstClear(std::size_t from = 0) const {
    if (from >= size_) {
      return size_;
    }
    std::size_t w = from / 64;
    std::uint64_t word = ~words_[w] & (~0ULL << (from % 64));
    while (true) {
      if (word != 0) {
        const std::size_t i = w * 64 + static_cast<std::size_t>(std::countr_zero(word));
        return i < size_ ? i : size_;
      }
      if (++w >= words_.size()) {
        return size_;
      }
      word = ~words_[w];
    }
  }

  // Approximate heap footprint, for DRAM accounting.
  std::size_t MemoryBytes() const { return words_.size() * sizeof(std::uint64_t); }

 private:
  std::size_t size_ BLOCKHEAD_SHARD_LOCAL(owner) = 0;
  std::vector<std::uint64_t> words_ BLOCKHEAD_SHARD_LOCAL(owner);
  std::size_t set_count_ BLOCKHEAD_SHARD_LOCAL(owner) = 0;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_UTIL_BITMAP_H_
