// Log-structured flash caches (CacheLib/RIPQ stand-ins for the paper's caching claims).
//
// §4.1 of the paper: "large-scale flash caching applications maintain several buckets of
// objects, where each bucket should be written to the same erasure block... Applications have
// evolved to use DRAM as a buffer to coalesce many writes into one very large write. With ZNS
// SSDs, these buffers are no longer necessary."
//
// Three designs are implemented behind one interface:
//   * BlockFlashCache (coalescing=true)  — conventional SSD, segment-sized DRAM buffer,
//     segments written as one large sequential burst, FIFO segment eviction (the design flash
//     caches evolved into);
//   * BlockFlashCache (coalescing=false) — conventional SSD, objects written individually in
//     page-granular slots (the naive design whose FTL-level write amplification motivated the
//     buffers in the first place);
//   * ZnsFlashCache — one segment per zone, objects appended directly, eviction = zone reset.
//     No host DRAM buffer; write amplification is structurally ~1.
//
// Objects are identified by integer keys; payloads are synthetic (the cache stores sizes and
// locations — index integrity, hit ratios, DRAM and WA are what the experiments measure).

#ifndef BLOCKHEAD_SRC_CACHE_FLASH_CACHE_H_
#define BLOCKHEAD_SRC_CACHE_FLASH_CACHE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/block/block_device.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/types.h"
#include "src/zns/zns_device.h"

namespace blockhead {

struct CacheStats {
  std::uint64_t puts = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evicted_objects = 0;
  std::uint64_t segments_recycled = 0;
  std::uint64_t bytes_admitted = 0;

  double HitRatio() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(lookups);
  }
};

struct CacheGetResult {
  bool hit = false;
  std::uint32_t size_bytes = 0;
  SimTime completion = 0;
};

class FlashCache {
 public:
  virtual ~FlashCache();

  // Inserts (or refreshes) an object of `size_bytes`. Evicts as needed.
  virtual Result<SimTime> Put(std::uint64_t key, std::uint32_t size_bytes, SimTime now) = 0;
  // Looks the object up; a hit charges the device read(s) for its pages.
  virtual Result<CacheGetResult> Get(std::uint64_t key, SimTime now) = 0;

  virtual const CacheStats& stats() const = 0;
  // Host DRAM consumed by write staging (excludes the index, which all designs share).
  virtual std::uint64_t StagingDramBytes() const = 0;

  // Registers CacheStats counters, hit-ratio/staging-DRAM gauges and a live
  // `<prefix>.get.latency_ns` histogram with `telemetry`. Shared by all cache designs; the
  // backing device is attached separately by its owner. While attached, bulk evictions
  // (segment recycles / zone resets) land in the event log as kCacheEvict records.
  void AttachTelemetry(Telemetry* telemetry, std::string_view prefix = "cache");

 protected:
  // Derived Get implementations report hit completion latency here; no-op when detached.
  void RecordGetLatency(SimTime latency) {
    if (get_latency_ != nullptr) {
      get_latency_->Record(latency);
    }
  }

  // Provenance ledger for cause scopes around recycling writes; nullptr when detached.
  WriteProvenance* provenance() {
    return telemetry_ == nullptr ? nullptr : &telemetry_->provenance;
  }

  // Host-side self-profiler for wall-clock scopes; nullptr when detached.
  SelfProfiler* profiler() { return ProfilerOf(telemetry_); }

  // Derived Put implementations report admitted bytes here (the cache's logical ingress in
  // the factorized-WA chain); no-op when detached.
  void NoteIngressBytes(std::uint64_t bytes) {
    if (provenance_ingress_ != nullptr) {
      *provenance_ingress_ += Bytes{bytes};
    }
  }

  // Appends a kCacheEvict event for a bulk eviction (no-op when detached). `container` is the
  // recycled segment/zone id, `objects` the number of objects dropped with it.
  void NoteEviction(SimTime t, const std::string& detail, std::uint64_t container,
                    std::uint64_t objects);

  // State-digest audit handle for the object index ("<prefix>.index"); nullptr when detached.
  // Derived classes fold one entry per resident object (design-specific location hash).
  SubsystemDigest* audit_index() const { return audit_index_; }
  bool IndexAuditArmed() const { return audit_index_ != nullptr && audit_index_->armed(); }

 private:
  void PublishMetrics();

  Telemetry* telemetry_ = nullptr;
  std::string metric_prefix_;
  Histogram* get_latency_ = nullptr;
  Bytes* provenance_ingress_ = nullptr;  // Domain "<prefix>" bytes-in accumulator.
  SubsystemDigest* audit_index_ = nullptr;
};

struct BlockCacheConfig {
  std::uint32_t segment_pages = 64;
  bool coalesce_writes = true;  // false -> naive per-object placement.
  // Naive mode evicts a randomly sampled resident object (approximating the scattered death
  // order of LRU/priority caches — the FTL-hostile pattern §4.1 describes). Sampling seed:
  std::uint64_t seed = 17;
};

class BlockFlashCache final : public FlashCache {
 public:
  // `device` must outlive the cache; the cache takes over the whole LBA space.
  BlockFlashCache(BlockDevice* device, const BlockCacheConfig& config);

  Result<SimTime> Put(std::uint64_t key, std::uint32_t size_bytes, SimTime now) override;
  Result<CacheGetResult> Get(std::uint64_t key, SimTime now) override;
  const CacheStats& stats() const override { return stats_; }
  std::uint64_t StagingDramBytes() const override;

 private:
  struct Location {
    std::uint32_t segment = 0;
    std::uint64_t page = 0;  // Segment-relative start page (coalescing mode).
    std::uint32_t pages = 0;
    std::uint32_t size_bytes = 0;
    bool in_buffer = false;  // Coalescing mode: still staged in DRAM.
    std::vector<std::uint64_t> page_list;  // Naive mode: scattered absolute pages.
  };

  Result<SimTime> PutCoalescing(std::uint64_t key, std::uint32_t pages,
                                std::uint32_t size_bytes, SimTime now);
  Result<SimTime> PutNaive(std::uint64_t key, std::uint32_t pages, std::uint32_t size_bytes,
                           SimTime now);
  // Flushes the staged segment to the next FIFO segment slot.
  Result<SimTime> FlushSegment(SimTime now);
  void DropSegmentObjects(std::uint32_t segment, SimTime now);
  // Audit entry: key + full location, including the scattered page list in naive mode.
  static std::uint64_t EntryHash(std::uint64_t key, const Location& loc) {
    std::uint64_t h = AuditHashWords(
        {key, loc.segment, loc.page, loc.pages, loc.size_bytes, loc.in_buffer ? 1u : 0u});
    for (const std::uint64_t page : loc.page_list) {
      h = AuditHashWords({h, page});
    }
    return h;
  }

  BlockDevice* device_;
  BlockCacheConfig config_;
  std::uint32_t num_segments_ = 0;

  std::unordered_map<std::uint64_t, Location> index_;
  std::vector<std::vector<std::uint64_t>> segment_keys_;  // Keys per segment (coalescing mode).

  // Coalescing mode state.
  std::uint32_t open_segment_ = 0;       // Segment slot the staged buffer will land in.
  std::uint32_t staged_pages_ = 0;       // Pages accumulated in the DRAM buffer.
  std::vector<std::uint64_t> staged_keys_;

  // Naive mode state: resident-object sample pool + free page pool.
  std::vector<std::uint64_t> resident_;
  std::vector<std::uint64_t> free_pages_;
  Rng rng_;

  CacheStats stats_;
};

struct ZnsCacheConfig {
  // Zones kept free ahead of the write frontier (reset happens on demand).
  std::uint32_t reserve_zones = 1;
};

class ZnsFlashCache final : public FlashCache {
 public:
  ZnsFlashCache(ZnsDevice* device, const ZnsCacheConfig& config);

  Result<SimTime> Put(std::uint64_t key, std::uint32_t size_bytes, SimTime now) override;
  Result<CacheGetResult> Get(std::uint64_t key, SimTime now) override;
  const CacheStats& stats() const override { return stats_; }
  std::uint64_t StagingDramBytes() const override { return 0; }  // The point of §4.1.

 private:
  struct Location {
    std::uint32_t zone = 0;
    std::uint64_t offset = 0;  // Zone-relative pages.
    std::uint32_t pages = 0;
    std::uint32_t size_bytes = 0;
  };

  Result<SimTime> EnsureOpenZone(std::uint32_t pages_needed, SimTime now);
  void DropZoneObjects(std::uint32_t zone_index, SimTime now);
  static std::uint64_t EntryHash(std::uint64_t key, const Location& loc) {
    return AuditHashWords({key, loc.zone, loc.offset, loc.pages, loc.size_bytes});
  }

  ZnsDevice* device_;
  ZnsCacheConfig config_;
  std::unordered_map<std::uint64_t, Location> index_;
  std::vector<std::vector<std::uint64_t>> zone_keys_;
  std::deque<std::uint32_t> zone_fifo_;  // Filled zones, oldest first.
  std::uint32_t open_zone_ = kNoZone;
  std::vector<std::uint32_t> free_zones_;
  static constexpr std::uint32_t kNoZone = ~0U;

  CacheStats stats_;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_CACHE_FLASH_CACHE_H_
