#include "src/cache/flash_cache.h"

#include <algorithm>
#include <cassert>

namespace blockhead {

namespace {

std::uint32_t PagesFor(std::uint32_t size_bytes, std::uint32_t page_size) {
  return (size_bytes + page_size - 1) / page_size;
}

}  // namespace

// --- FlashCache (shared telemetry) ---

FlashCache::~FlashCache() {
  // No final PublishMetrics here: it reads through virtuals, and the derived object is
  // already gone by the time this base destructor runs. Just unhook the provider.
  if (telemetry_ != nullptr) {
    telemetry_->registry.RemoveProvider(metric_prefix_);
  }
}

void FlashCache::AttachTelemetry(Telemetry* telemetry, std::string_view prefix) {
  if (telemetry_ != nullptr) {
    PublishMetrics();
    telemetry_->registry.RemoveProvider(metric_prefix_);
  }
  telemetry_ = telemetry;
  metric_prefix_ = std::string(prefix);
  if (telemetry_ == nullptr) {
    get_latency_ = nullptr;
    provenance_ingress_ = nullptr;
    audit_index_ = nullptr;
    return;
  }
  get_latency_ = telemetry_->registry.GetHistogram(metric_prefix_ + ".get.latency_ns");
  telemetry_->registry.AddProvider(metric_prefix_, [this] { PublishMetrics(); });
  provenance_ingress_ = telemetry_->provenance.RegisterDomain(metric_prefix_);
  audit_index_ = telemetry_->audit.Register(metric_prefix_ + ".index");
}

void FlashCache::NoteEviction(SimTime t, const std::string& detail, std::uint64_t container,
                              std::uint64_t objects) {
  if (telemetry_ == nullptr) {
    return;
  }
  telemetry_->events.Append(t, TimelineEventType::kCacheEvict, metric_prefix_, detail,
                            container, objects);
}

void FlashCache::PublishMetrics() {
  MetricRegistry& reg = telemetry_->registry;
  const std::string& p = metric_prefix_;
  const CacheStats& s = stats();
  reg.GetCounter(p + ".puts")->Set(s.puts);
  reg.GetCounter(p + ".hits")->Set(s.hits);
  reg.GetCounter(p + ".misses")->Set(s.misses);
  reg.GetCounter(p + ".evicted_objects")->Set(s.evicted_objects);
  reg.GetCounter(p + ".segments_recycled")->Set(s.segments_recycled);
  reg.GetCounter(p + ".bytes_admitted")->Set(s.bytes_admitted);
  reg.GetGauge(p + ".hit_ratio")->Set(s.HitRatio());
  reg.GetGauge(p + ".staging_dram_bytes")->Set(static_cast<double>(StagingDramBytes()));
}

// --- BlockFlashCache ---

BlockFlashCache::BlockFlashCache(BlockDevice* device, const BlockCacheConfig& config)
    : device_(device), config_(config), rng_(config.seed) {
  num_segments_ = static_cast<std::uint32_t>(device_->num_blocks() / config_.segment_pages);
  segment_keys_.resize(num_segments_);
  if (!config_.coalesce_writes) {
    const std::uint64_t pages = static_cast<std::uint64_t>(num_segments_) *
                                config_.segment_pages;
    free_pages_.reserve(pages);
    for (std::uint64_t p = pages; p > 0; --p) {
      free_pages_.push_back(p - 1);
    }
  }
}

std::uint64_t BlockFlashCache::StagingDramBytes() const {
  if (!config_.coalesce_writes) {
    return 0;
  }
  return static_cast<std::uint64_t>(config_.segment_pages) * device_->block_size();
}

void BlockFlashCache::DropSegmentObjects(std::uint32_t segment, SimTime now) {
  const bool audit = IndexAuditArmed();
  for (const std::uint64_t key : segment_keys_[segment]) {
    auto it = index_.find(key);
    if (it != index_.end() && it->second.segment == segment && !it->second.in_buffer) {
      if (audit) {
        audit_index()->Remove(now, EntryHash(key, it->second));
      }
      index_.erase(it);
      stats_.evicted_objects++;
    }
  }
  segment_keys_[segment].clear();
}

Result<SimTime> BlockFlashCache::FlushSegment(SimTime now) {
  SelfProfiler::Scope prof_scope(profiler(), ProfSubsystem::kCache, ProfOp::kFlush);
  // Recycle the slot: its previous generation of objects is evicted, then the staged buffer
  // lands as one large sequential write (the RIPQ pattern). The overwrite is the eviction
  // mechanism, so its programs (and the device GC they displace) are cache-recycling work.
  WriteProvenance::CauseScope cause(provenance(), WriteCause::kCacheEviction,
                                    StackLayer::kCache);
  const std::uint64_t evicted_before = stats_.evicted_objects;
  DropSegmentObjects(open_segment_, now);
  const std::uint64_t lba = static_cast<std::uint64_t>(open_segment_) * config_.segment_pages;
  Result<SimTime> written = device_->WriteBlocks(Lba{lba}, staged_pages_, now);
  if (!written.ok()) {
    return written;
  }
  const std::uint64_t dropped = stats_.evicted_objects - evicted_before;
  NoteEviction(written.value(),
               "recycle segment " + std::to_string(open_segment_) + " evicted " +
                   std::to_string(dropped),
               open_segment_, dropped);
  const bool audit = IndexAuditArmed();
  for (const std::uint64_t key : staged_keys_) {
    auto it = index_.find(key);
    if (it != index_.end() && it->second.segment == open_segment_ && it->second.in_buffer) {
      const std::uint64_t pre = audit ? EntryHash(key, it->second) : 0;
      it->second.in_buffer = false;
      if (audit) {
        audit_index()->Replace(written.value(), pre, EntryHash(key, it->second));
      }
    }
  }
  segment_keys_[open_segment_] = std::move(staged_keys_);
  staged_keys_.clear();
  staged_pages_ = 0;
  open_segment_ = (open_segment_ + 1) % num_segments_;
  stats_.segments_recycled++;
  return written;
}

Result<SimTime> BlockFlashCache::PutCoalescing(std::uint64_t key, std::uint32_t pages,
                                               std::uint32_t size_bytes, SimTime now) {
  if (pages > config_.segment_pages) {
    return ErrorCode::kInvalidArgument;
  }
  SimTime t = now;
  if (staged_pages_ + pages > config_.segment_pages) {
    Result<SimTime> flushed = FlushSegment(t);
    if (!flushed.ok()) {
      return flushed;
    }
    t = flushed.value();
  }
  Location loc;
  loc.segment = open_segment_;
  loc.page = staged_pages_;
  loc.pages = pages;
  loc.size_bytes = size_bytes;
  loc.in_buffer = true;
  if (IndexAuditArmed()) {
    audit_index()->Insert(t, EntryHash(key, loc));
  }
  index_[key] = loc;
  staged_keys_.push_back(key);
  staged_pages_ += pages;
  // The object is admitted the moment it is in DRAM; flash I/O happens at flush.
  return t;
}

Result<SimTime> BlockFlashCache::PutNaive(std::uint64_t key, std::uint32_t pages,
                                          std::uint32_t size_bytes, SimTime now) {
  SimTime t = now;
  // Make room: evict randomly sampled residents (priority/LRU caches kill objects in an
  // order uncorrelated with write order, which is what hurts the FTL).
  while (free_pages_.size() < pages) {
    if (resident_.empty()) {
      return ErrorCode::kDeviceFull;
    }
    const std::size_t pick = static_cast<std::size_t>(rng_.NextBelow(resident_.size()));
    const std::uint64_t victim = resident_[pick];
    resident_[pick] = resident_.back();
    resident_.pop_back();
    auto it = index_.find(victim);
    if (it == index_.end()) {
      continue;  // Already replaced by an overwrite.
    }
    for (const std::uint64_t page : it->second.page_list) {
      free_pages_.push_back(page);
      Result<SimTime> trimmed = device_->TrimBlocks(Lba{page}, 1, t);
      if (!trimmed.ok()) {
        return trimmed;
      }
    }
    if (IndexAuditArmed()) {
      audit_index()->Remove(t, EntryHash(victim, it->second));
    }
    index_.erase(it);
    stats_.evicted_objects++;
  }
  // Allocate scattered pages and write them individually: the small-write pattern the paper
  // says conventional-SSD caches had to engineer away.
  Location loc;
  loc.pages = pages;
  loc.size_bytes = size_bytes;
  for (std::uint32_t p = 0; p < pages; ++p) {
    const std::uint64_t page = free_pages_.back();
    free_pages_.pop_back();
    loc.page_list.push_back(page);
    Result<SimTime> written = device_->WriteBlocks(Lba{page}, 1, t);
    if (!written.ok()) {
      return written;
    }
    t = std::max(t, written.value());
  }
  if (IndexAuditArmed()) {
    audit_index()->Insert(t, EntryHash(key, loc));
  }
  index_[key] = std::move(loc);
  resident_.push_back(key);
  return t;
}

Result<SimTime> BlockFlashCache::Put(std::uint64_t key, std::uint32_t size_bytes, SimTime now) {
  SelfProfiler::Scope prof_scope(profiler(), ProfSubsystem::kCache, ProfOp::kWrite);
  stats_.puts++;
  stats_.bytes_admitted += size_bytes;
  NoteIngressBytes(size_bytes);
  const std::uint32_t pages = PagesFor(size_bytes, device_->block_size());
  // Overwrite: retire the old copy first.
  auto it = index_.find(key);
  if (it != index_.end()) {
    if (!config_.coalesce_writes) {
      for (const std::uint64_t page : it->second.page_list) {
        free_pages_.push_back(page);
      }
      stats_.evicted_objects++;
    }
    if (IndexAuditArmed()) {
      audit_index()->Remove(now, EntryHash(key, it->second));
    }
    index_.erase(it);
  }
  if (config_.coalesce_writes) {
    return PutCoalescing(key, pages, size_bytes, now);
  }
  return PutNaive(key, pages, size_bytes, now);
}

Result<CacheGetResult> BlockFlashCache::Get(std::uint64_t key, SimTime now) {
  SelfProfiler::Scope prof_scope(profiler(), ProfSubsystem::kCache, ProfOp::kRead);
  CacheGetResult result;
  result.completion = now;
  auto it = index_.find(key);
  if (it == index_.end()) {
    stats_.misses++;
    return result;
  }
  stats_.hits++;
  result.hit = true;
  result.size_bytes = it->second.size_bytes;
  if (it->second.in_buffer) {
    RecordGetLatency(0);
    return result;  // Served from the DRAM staging buffer.
  }
  if (config_.coalesce_writes) {
    const std::uint64_t lba =
        static_cast<std::uint64_t>(it->second.segment) * config_.segment_pages +
        it->second.page;
    Result<SimTime> read = device_->ReadBlocks(Lba{lba}, it->second.pages, now);
    if (!read.ok()) {
      return read.status();
    }
    result.completion = read.value();
    RecordGetLatency(result.completion - now);
    return result;
  }
  for (const std::uint64_t page : it->second.page_list) {
    Result<SimTime> read = device_->ReadBlocks(Lba{page}, 1, now);
    if (!read.ok()) {
      return read.status();
    }
    result.completion = std::max(result.completion, read.value());
  }
  RecordGetLatency(result.completion - now);
  return result;
}

// --- ZnsFlashCache ---

ZnsFlashCache::ZnsFlashCache(ZnsDevice* device, const ZnsCacheConfig& config)
    : device_(device), config_(config) {
  zone_keys_.resize(device_->num_zones());
  free_zones_.reserve(device_->num_zones());
  for (std::uint32_t z = device_->num_zones(); z > 0; --z) {
    free_zones_.push_back(z - 1);
  }
}

void ZnsFlashCache::DropZoneObjects(std::uint32_t zone_index, SimTime now) {
  const bool audit = IndexAuditArmed();
  for (const std::uint64_t key : zone_keys_[zone_index]) {
    auto it = index_.find(key);
    if (it != index_.end() && it->second.zone == zone_index) {
      if (audit) {
        audit_index()->Remove(now, EntryHash(key, it->second));
      }
      index_.erase(it);
      stats_.evicted_objects++;
    }
  }
  zone_keys_[zone_index].clear();
}

Result<SimTime> ZnsFlashCache::EnsureOpenZone(std::uint32_t pages_needed, SimTime now) {
  SelfProfiler::Scope prof_scope(profiler(), ProfSubsystem::kCache, ProfOp::kEviction);
  if (open_zone_ != kNoZone) {
    const ZoneDescriptor d = device_->zone(ZoneId{open_zone_});
    if (d.write_pointer + pages_needed <= d.capacity_pages) {
      return now;
    }
    // Seal the zone and rotate it into the FIFO.
    Result<SimTime> finished = device_->FinishZone(ZoneId{open_zone_}, now);
    if (!finished.ok()) {
      return finished;
    }
    zone_fifo_.push_back(open_zone_);
    open_zone_ = kNoZone;
    now = finished.value();
  }
  while (open_zone_ == kNoZone) {
    if (!free_zones_.empty()) {
      const std::uint32_t z = free_zones_.back();
      free_zones_.pop_back();
      const ZoneDescriptor d = device_->zone(ZoneId{z});
    if (d.state != ZoneState::kEmpty || d.capacity_pages == 0) {
        continue;  // Worn out; skip permanently.
      }
      open_zone_ = z;
      break;
    }
    if (zone_fifo_.empty()) {
      return ErrorCode::kDeviceFull;
    }
    // Evict the oldest zone wholesale: drop its objects and reset it. No copying — this is
    // the structural WA≈1 property of the zoned cache.
    const std::uint32_t victim = zone_fifo_.front();
    zone_fifo_.pop_front();
    const std::uint64_t evicted_before = stats_.evicted_objects;
    DropZoneObjects(victim, now);
    // The reset's block erases are cache-eviction work (the zoned cache's only reclaim I/O).
    WriteProvenance::CauseScope cause(provenance(), WriteCause::kCacheEviction,
                                      StackLayer::kCache);
    Result<SimTime> reset = device_->ResetZone(ZoneId{victim}, now);
    if (!reset.ok()) {
      return reset;
    }
    now = reset.value();
    const std::uint64_t dropped = stats_.evicted_objects - evicted_before;
    NoteEviction(now,
                 "evict zone " + std::to_string(victim) + " dropped " + std::to_string(dropped),
                 victim, dropped);
    if (device_->zone(ZoneId{victim}).state != ZoneState::kOffline) {
      free_zones_.push_back(victim);
    }
    stats_.segments_recycled++;
  }
  return now;
}

Result<SimTime> ZnsFlashCache::Put(std::uint64_t key, std::uint32_t size_bytes, SimTime now) {
  SelfProfiler::Scope prof_scope(profiler(), ProfSubsystem::kCache, ProfOp::kWrite);
  stats_.puts++;
  stats_.bytes_admitted += size_bytes;
  NoteIngressBytes(size_bytes);
  const std::uint32_t pages = PagesFor(size_bytes, device_->page_size());
  if (pages > device_->zone_size_pages()) {
    return ErrorCode::kInvalidArgument;
  }
  auto it = index_.find(key);
  if (it != index_.end()) {
    if (IndexAuditArmed()) {
      audit_index()->Remove(now, EntryHash(key, it->second));
    }
    index_.erase(it);  // Old copy dies with its zone.
  }
  Result<SimTime> ready = EnsureOpenZone(pages, now);
  if (!ready.ok()) {
    return ready;
  }
  Result<AppendResult> appended = device_->Append(ZoneId{open_zone_}, pages, ready.value());
  if (!appended.ok()) {
    return appended.status();
  }
  Location loc;
  loc.zone = open_zone_;
  loc.offset = appended->assigned_lba - device_->zone(ZoneId{open_zone_}).start_lba;
  loc.pages = pages;
  loc.size_bytes = size_bytes;
  if (IndexAuditArmed()) {
    audit_index()->Insert(appended->completion, EntryHash(key, loc));
  }
  index_[key] = loc;
  zone_keys_[open_zone_].push_back(key);
  return appended->completion;
}

Result<CacheGetResult> ZnsFlashCache::Get(std::uint64_t key, SimTime now) {
  SelfProfiler::Scope prof_scope(profiler(), ProfSubsystem::kCache, ProfOp::kRead);
  CacheGetResult result;
  result.completion = now;
  auto it = index_.find(key);
  if (it == index_.end()) {
    stats_.misses++;
    return result;
  }
  stats_.hits++;
  result.hit = true;
  result.size_bytes = it->second.size_bytes;
  const Lba lba = device_->zone(ZoneId{it->second.zone}).start_lba + it->second.offset;
  Result<SimTime> read = device_->Read(lba, it->second.pages, now);
  if (!read.ok()) {
    return read.status();
  }
  result.completion = read.value();
  RecordGetLatency(result.completion - now);
  return result;
}

}  // namespace blockhead
