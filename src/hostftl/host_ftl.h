// Host-side block device emulated over a ZNS SSD (the dm-zoned role from §2.3/§2.5: "it was
// straightforward to implement the block interface on the host using ZNS SSDs").
//
// A log-structured host FTL: logical pages are appended to an open "host" zone; overwrites
// invalidate the old location; reclamation picks the zone with the least live data, copies the
// live pages to a separate relocation zone, and resets the victim. The pieces a conventional
// SSD hides in firmware are all visible and tunable here:
//
//   * spare capacity is a host choice (op_fraction), not a hardware constant;
//   * GC copies can ride the device's simple-copy command (no host PCIe traffic, §2.3) or the
//     plain read+write path — bench_simple_copy (E10) measures the difference;
//   * GC *timing* is a pluggable GcScheduler policy — bench_sched_policies (E11).

#ifndef BLOCKHEAD_SRC_HOSTFTL_HOST_FTL_H_
#define BLOCKHEAD_SRC_HOSTFTL_HOST_FTL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/block/block_device.h"
#include "src/core/shard_safety.h"
#include "src/core/strong_id.h"
#include "src/sched/gc_scheduler.h"
#include "src/util/status.h"
#include "src/util/types.h"
#include "src/zns/zns_device.h"

namespace blockhead {

struct HostFtlConfig {
  // Zones reserved as host-side spare capacity, as a fraction of exported capacity (same
  // semantics as FtlConfig::op_fraction).
  double op_fraction = 0.20;
  // Copy live pages during GC with the device's simple-copy command instead of host
  // read+write.
  bool use_simple_copy = true;
  // Issue host writes as zone appends instead of write-pointer writes.
  bool use_append = false;
  // Opportunistic reclamation only touches zones at most this live (copying nearly-live zones
  // costs more than it reclaims). Critical reclamation ignores it.
  double gc_max_live_fraction = 0.90;
  // Pages relocated per Pump step: reclamation trickles alongside foreground I/O instead of
  // copying a whole zone in one burst.
  std::uint32_t gc_step_pages = 32;
  GcSchedulerConfig sched;
};

struct HostFtlStats {
  std::uint64_t host_pages_written = 0;
  std::uint64_t host_pages_read = 0;
  std::uint64_t pages_trimmed = 0;
  std::uint64_t gc_cycles = 0;
  std::uint64_t gc_pages_copied = 0;
  std::uint64_t zones_reclaimed = 0;
  // GC bytes that crossed the host bus (0 when simple copy is in use).
  std::uint64_t gc_host_bus_bytes = 0;
  std::uint64_t forced_gc_stalls = 0;
};

class HostFtlBlockDevice final : public BlockDevice {
 public:
  // `device` must outlive this object. The host FTL takes over the whole device.
  HostFtlBlockDevice(ZnsDevice* device, const HostFtlConfig& config);
  ~HostFtlBlockDevice() override;  // Publishes final metrics and unhooks if attached.

  Result<SimTime> ReadBlocks(Lba lba, std::uint32_t count, SimTime issue,
                             std::span<std::uint8_t> out = {}) override;
  Result<SimTime> WriteBlocks(Lba lba, std::uint32_t count, SimTime issue,
                              std::span<const std::uint8_t> data = {}) override;
  Result<SimTime> TrimBlocks(Lba lba, std::uint32_t count, SimTime issue) override;
  std::uint64_t num_blocks() const override { return logical_pages_; }
  std::uint32_t block_size() const override { return device_->page_size(); }

  const HostFtlStats& stats() const { return stats_; }
  const GcScheduler& scheduler() const { return scheduler_; }

  // Registers HostFtlStats, scheduler tallies (`<prefix>.sched.*`) and space/DRAM gauges with
  // `telemetry`, plus per-op tracing spans (`<prefix>.read` / `<prefix>.write`) around host
  // I/O. Does NOT attach the underlying ZnsDevice — callers that own it attach it themselves
  // (with its own prefix) so shared-device setups stay unambiguous.
  //
  // While attached, reclamation decisions are logged as events: kGcVictim when a victim zone
  // is chosen, kGcCycle when it is fully drained and reset, and edge-triggered kGcWindow
  // records from the scheduler under "<prefix>.sched". Each incremental relocation step
  // becomes a "gc_step" maintenance slice on the "<prefix>.gc" timeline track, and
  // "<prefix>.free_fraction" / "<prefix>.write_amplification" are sampled as timeline series.
  void AttachTelemetry(Telemetry* telemetry, std::string_view prefix = "hostftl");

  // Opportunistic maintenance hook: the I/O driver calls this between requests (e.g. on idle
  // ticks). Runs at most `max_cycles` GC cycles if the configured policy allows it. Returns
  // cycles run.
  std::uint32_t Pump(SimTime now, bool reads_pending, std::uint32_t max_cycles = 1);

  // Free zones available for new data.
  std::uint64_t FreeZones() const { return free_zones_.size(); }
  double FreeFraction() const;

  // End-to-end write amplification: physical flash programs / host logical writes.
  double EndToEndWriteAmplification() const;

  // Host DRAM consumed by the mapping tables (the cost the paper says moves from device to
  // host, §2.3).
  std::uint64_t HostMappingBytes() const;

  // Validates mapping invariants. For tests; O(capacity).
  Status CheckConsistency() const;

 private:
  static constexpr std::uint64_t kUnmapped = ~0ULL;

  // Ensures the host or relocation frontier has at least one writable page.
  Status EnsureFrontier(bool relocation, SimTime now);
  // Appends one logical page; returns device completion.
  Result<SimTime> AppendPage(std::uint64_t lpn, SimTime issue,
                             std::span<const std::uint8_t> data);
  // One incremental reclamation step (up to max_pages relocated); finalizes the victim (zone
  // reset) once drained. Returns completion time or error if nothing is reclaimable.
  Result<SimTime> GcStep(SimTime now, bool critical, std::uint32_t max_pages);
  Result<SimTime> GcRunToCompletion(SimTime now, bool critical);
  void InvalidatePage(std::uint64_t lpn, SimTime now);
  bool DevicePageLive(std::uint64_t dev_lba) const;
  std::uint32_t PickVictim(bool critical) const;
  void PublishMetrics();

  ZnsDevice* device_ BLOCKHEAD_SHARD_SHARED;
  HostFtlConfig config_ BLOCKHEAD_SHARD_SHARED;
  GcScheduler scheduler_ BLOCKHEAD_SHARD_SHARED;

  std::uint64_t logical_pages_ BLOCKHEAD_SHARD_SHARED = 0;
  std::uint64_t zone_pages_ BLOCKHEAD_SHARD_SHARED = 0;

  std::vector<std::uint64_t> l2p_ BLOCKHEAD_SHARD_SHARED;       // Logical page -> device LBA.
  std::vector<std::uint64_t> d2l_ BLOCKHEAD_SHARD_SHARED;       // Device LBA -> logical page.
  std::vector<std::uint32_t> zone_live_ BLOCKHEAD_SHARD_SHARED; // Live pages per zone.
  std::vector<std::uint32_t> free_zones_ BLOCKHEAD_SHARD_SHARED;
  static constexpr std::uint32_t kNoZone = ~0U;
  std::uint32_t host_zone_
      BLOCKHEAD_SHARD_SHARED = kNoZone;        // Current zone receiving host writes.
  std::uint32_t reloc_zone_
      BLOCKHEAD_SHARD_SHARED = kNoZone;       // Current zone receiving GC copies.
  // Incremental-reclamation state: the victim being drained and the scan position within it.
  std::uint32_t gc_victim_ BLOCKHEAD_SHARD_SHARED = kNoZone;
  std::uint64_t gc_offset_ BLOCKHEAD_SHARD_SHARED = 0;
  // stats_.gc_pages_copied at victim selection (per-cycle copy count for the kGcCycle event).
  std::uint64_t gc_cycle_copied_base_ BLOCKHEAD_SHARD_SHARED = 0;

  HostFtlStats stats_ BLOCKHEAD_SHARD_SHARED;
  Telemetry* telemetry_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  std::string metric_prefix_ BLOCKHEAD_SIM_GLOBAL;
  int sampler_group_ BLOCKHEAD_SIM_GLOBAL = -1;  // Timeline group for free-space / WA gauges.
  // Logical bytes accepted from the host, accumulated into the provenance ledger's domain
  // "<prefix>" as a link in the factorized-WA chain.
  Bytes* provenance_ingress_ BLOCKHEAD_SIM_GLOBAL = nullptr;

  // State-digest audit of the host-side mapping ("<prefix>.l2p"): one entry per mapped
  // logical page hashing (lpn, device LBA). d2l_/zone_live_ are derived state.
  SubsystemDigest* audit_l2p_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  static std::uint64_t L2pEntryHash(std::uint64_t lpn, std::uint64_t dev_lba) {
    return AuditHashWords({lpn, dev_lba});
  }
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_HOSTFTL_HOST_FTL_H_
