#include "src/hostftl/host_ftl.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <limits>

namespace blockhead {

HostFtlBlockDevice::HostFtlBlockDevice(ZnsDevice* device, const HostFtlConfig& config)
    : device_(device), config_(config), scheduler_(config.sched) {
  const std::uint32_t zones = device_->num_zones();
  zone_pages_ = device_->zone_size_pages();
  const std::uint64_t physical_pages = static_cast<std::uint64_t>(zones) * zone_pages_;
  const double op = std::max(0.0, config_.op_fraction);
  const std::uint64_t op_pages =
      static_cast<std::uint64_t>(static_cast<double>(physical_pages) / (1.0 + op));
  // Always hold back at least three zones: host frontier, relocation frontier, one spare.
  const std::uint64_t reserve_pages = 3 * zone_pages_;
  logical_pages_ = std::min(op_pages, physical_pages - reserve_pages);

  // A background watermark above the steady-state free fraction would make reclamation run
  // perpetually against mostly-live zones; clamp it below the spare fraction.
  const double spare_fraction =
      1.0 - static_cast<double>(logical_pages_) / static_cast<double>(physical_pages);
  config_.sched.low_free_fraction =
      std::min(config_.sched.low_free_fraction, 0.6 * spare_fraction);
  config_.sched.critical_free_fraction =
      std::min(config_.sched.critical_free_fraction, 0.5 * config_.sched.low_free_fraction);
  scheduler_ = GcScheduler(config_.sched);

  l2p_.assign(logical_pages_, kUnmapped);
  d2l_.assign(physical_pages, kUnmapped);
  zone_live_.assign(zones, 0);
  free_zones_.reserve(zones);
  // Pop order is back-first; keep low-numbered zones first out for readability.
  for (std::uint32_t z = zones; z > 0; --z) {
    free_zones_.push_back(z - 1);
  }
}

double HostFtlBlockDevice::FreeFraction() const {
  return static_cast<double>(free_zones_.size()) / static_cast<double>(device_->num_zones());
}

bool HostFtlBlockDevice::DevicePageLive(std::uint64_t dev_lba) const {
  return d2l_[dev_lba] != kUnmapped;
}

void HostFtlBlockDevice::InvalidatePage(std::uint64_t lpn, SimTime now) {
  const std::uint64_t old = l2p_[lpn];
  if (old == kUnmapped) {
    return;
  }
  const std::uint64_t zone = old / zone_pages_;
  assert(zone_live_[zone] > 0);
  zone_live_[zone]--;
  d2l_[old] = kUnmapped;
  l2p_[lpn] = kUnmapped;
  if (audit_l2p_ != nullptr && audit_l2p_->armed()) {
    audit_l2p_->Remove(now, L2pEntryHash(lpn, old));
  }
}

Status HostFtlBlockDevice::EnsureFrontier(bool relocation, SimTime now) {
  std::uint32_t& frontier = relocation ? reloc_zone_ : host_zone_;
  while (true) {
    if (frontier != kNoZone) {
      const ZoneDescriptor d = device_->zone(ZoneId{frontier});
      if (d.state != ZoneState::kFull && d.state != ZoneState::kOffline &&
          d.write_pointer < d.capacity_pages) {
        return Status::Ok();
      }
      frontier = kNoZone;  // Sealed or unusable; pick a new one.
    }
    if (free_zones_.empty()) {
      return Status(ErrorCode::kNoFreeBlocks, "host FTL out of free zones");
    }
    frontier = free_zones_.back();
    free_zones_.pop_back();
    const ZoneDescriptor d = device_->zone(ZoneId{frontier});
    if (d.state == ZoneState::kOffline || d.capacity_pages == 0) {
      frontier = kNoZone;  // Worn-out zone: drop it permanently.
      continue;
    }
    (void)now;
    return Status::Ok();
  }
}

Result<SimTime> HostFtlBlockDevice::AppendPage(std::uint64_t lpn, SimTime issue,
                                               std::span<const std::uint8_t> data) {
  BLOCKHEAD_RETURN_IF_ERROR(EnsureFrontier(/*relocation=*/false, issue));
  const ZoneDescriptor d = device_->zone(ZoneId{host_zone_});
  std::uint64_t dev_lba = (d.start_lba + d.write_pointer).value();
  SimTime done = 0;
  if (config_.use_append) {
    Result<AppendResult> r = device_->Append(ZoneId{host_zone_}, 1, issue, data);
    if (!r.ok()) {
      return r.status();
    }
    dev_lba = r->assigned_lba.value();
    done = r->completion;
  } else {
    Result<SimTime> r = device_->Write(ZoneId{host_zone_}, d.write_pointer, 1, issue, data);
    if (!r.ok()) {
      return r;
    }
    done = r.value();
  }
  InvalidatePage(lpn, done);
  l2p_[lpn] = dev_lba;
  d2l_[dev_lba] = lpn;
  zone_live_[dev_lba / zone_pages_]++;
  if (audit_l2p_ != nullptr && audit_l2p_->armed()) {
    audit_l2p_->Insert(done, L2pEntryHash(lpn, dev_lba));
  }
  return done;
}

std::uint32_t HostFtlBlockDevice::PickVictim(bool critical) const {
  std::uint32_t best = kNoZone;
  std::uint32_t best_live = std::numeric_limits<std::uint32_t>::max();
  for (std::uint32_t z = 0; z < device_->num_zones(); ++z) {
    if (z == host_zone_ || z == reloc_zone_ || z == gc_victim_) {
      continue;
    }
    const ZoneDescriptor d = device_->zone(ZoneId{z});
    if (d.state != ZoneState::kFull) {
      continue;
    }
    if (zone_live_[z] >= d.capacity_pages) {
      continue;  // Fully live: reclaiming it frees nothing.
    }
    if (!critical && static_cast<double>(zone_live_[z]) >
                         config_.gc_max_live_fraction * static_cast<double>(d.capacity_pages)) {
      continue;
    }
    if (zone_live_[z] < best_live) {
      best_live = zone_live_[z];
      best = z;
    }
  }
  return best;
}

Result<SimTime> HostFtlBlockDevice::GcStep(SimTime now, bool critical,
                                           std::uint32_t max_pages) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kHostFtl, ProfOp::kGc);
  // Relocation copies and the victim reset are block-emulation reclaim, not host data: the
  // doubling the paper attributes to dm-zoned-style translation shows up under this cause.
  WriteProvenance::CauseScope cause(ProvenanceOf(telemetry_),
                                    WriteCause::kBlockEmulationReclaim, StackLayer::kHostFtl);
  if (gc_victim_ == kNoZone) {
    gc_victim_ = PickVictim(critical);
    gc_offset_ = 0;
    if (gc_victim_ == kNoZone) {
      return ErrorCode::kNoFreeBlocks;
    }
    gc_cycle_copied_base_ = stats_.gc_pages_copied;
    if (telemetry_ != nullptr) {
      telemetry_->events.Append(now, TimelineEventType::kGcVictim, metric_prefix_,
                                "victim zone " + std::to_string(gc_victim_) + " live " +
                                    std::to_string(zone_live_[gc_victim_]) +
                                    (critical ? " critical" : ""),
                                gc_victim_, zone_live_[gc_victim_]);
    }
  }
  const ZoneDescriptor vd = device_->zone(ZoneId{gc_victim_});
  const std::uint32_t page_size = device_->page_size();
  SimTime t = now;
  std::uint32_t moved = 0;

  while (gc_offset_ < vd.capacity_pages && moved < max_pages) {
    if (!DevicePageLive((vd.start_lba + gc_offset_).value())) {
      gc_offset_++;
      continue;
    }
    // Relocate a contiguous live run in one ranged operation: contiguous device LBAs stripe
    // across planes, so the copy pipelines instead of paying a full read+program round trip
    // per page.
    BLOCKHEAD_RETURN_IF_ERROR(EnsureFrontier(/*relocation=*/true, t));
    const ZoneDescriptor rd = device_->zone(ZoneId{reloc_zone_});
    std::uint32_t run = 1;
    while (gc_offset_ + run < vd.capacity_pages && moved + run < max_pages &&
           run < rd.capacity_pages - rd.write_pointer &&
           DevicePageLive((vd.start_lba + gc_offset_ + run).value())) {
      ++run;
    }
    const std::uint64_t src = (vd.start_lba + gc_offset_).value();
    const std::uint64_t dst = (rd.start_lba + rd.write_pointer).value();
    if (config_.use_simple_copy) {
      // Device-internal copy: no host-bus traffic (§2.3).
      const CopyRange range{Lba{src}, run};
      Result<SimTime> done =
          device_->SimpleCopy(std::span<const CopyRange>(&range, 1), ZoneId{reloc_zone_}, t);
      if (!done.ok()) {
        return done;
      }
      t = std::max(t, done.value());
    } else {
      // Host read + host write: the copy crosses PCIe twice.
      std::vector<std::uint8_t> buf(static_cast<std::size_t>(run) * page_size);
      Result<SimTime> r = device_->Read(Lba{src}, run, t, buf);
      if (!r.ok()) {
        return r;
      }
      Result<SimTime> w =
          device_->Write(ZoneId{reloc_zone_}, rd.write_pointer, run, r.value(), buf);
      if (!w.ok()) {
        return w;
      }
      t = std::max(t, w.value());
      stats_.gc_host_bus_bytes += 2ULL * run * page_size;
    }
    const bool audit = audit_l2p_ != nullptr && audit_l2p_->armed();
    for (std::uint32_t p = 0; p < run; ++p) {
      const std::uint64_t lpn = d2l_[src + p];
      l2p_[lpn] = dst + p;
      d2l_[dst + p] = lpn;
      d2l_[src + p] = kUnmapped;
      zone_live_[gc_victim_]--;
      zone_live_[(dst + p) / zone_pages_]++;
      stats_.gc_pages_copied++;
      if (audit) {
        audit_l2p_->Replace(t, L2pEntryHash(lpn, src + p), L2pEntryHash(lpn, dst + p));
      }
    }
    gc_offset_ += run;
    moved += run;
  }
  if (telemetry_ != nullptr && moved > 0) {
    telemetry_->timeline.RecordMaintenance(metric_prefix_ + ".gc", "gc_step", now, t);
  }
  if (gc_offset_ < vd.capacity_pages) {
    return t;  // More steps needed; the victim resumes on the next call.
  }

  assert(zone_live_[gc_victim_] == 0);
  Result<SimTime> reset = device_->ResetZone(ZoneId{gc_victim_}, t);
  if (!reset.ok()) {
    return reset;
  }
  if (device_->zone(ZoneId{gc_victim_}).state != ZoneState::kOffline) {
    free_zones_.push_back(gc_victim_);
  }
  stats_.gc_cycles++;
  stats_.zones_reclaimed++;
  scheduler_.NoteRun(now);
  if (telemetry_ != nullptr) {
    const std::uint64_t copied = stats_.gc_pages_copied - gc_cycle_copied_base_;
    telemetry_->events.Append(reset.value(), TimelineEventType::kGcCycle, metric_prefix_,
                              "cycle done zone " + std::to_string(gc_victim_) + " copied " +
                                  std::to_string(copied),
                              gc_victim_, copied);
    telemetry_->timeline.AdvanceGroup(sampler_group_, reset.value());
  }
  gc_victim_ = kNoZone;
  gc_offset_ = 0;
  return reset;
}

Result<SimTime> HostFtlBlockDevice::GcRunToCompletion(SimTime now, bool critical) {
  return GcStep(now, critical, std::numeric_limits<std::uint32_t>::max());
}

std::uint32_t HostFtlBlockDevice::Pump(SimTime now, bool reads_pending,
                                       std::uint32_t max_cycles) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_),
                                 ProfSubsystem::kHostFtl, ProfOp::kMaintenance);
  std::uint32_t ran = 0;
  while (ran < max_cycles) {
    const bool pending = gc_victim_ != kNoZone;
    if (!pending && !scheduler_.ShouldRun(FreeFraction(), reads_pending, now)) {
      break;
    }
    Result<SimTime> done =
        GcStep(now, scheduler_.Critical(FreeFraction()), config_.gc_step_pages);
    if (!done.ok()) {
      break;
    }
    now = done.value();
    ++ran;
  }
  return ran;
}

Result<SimTime> HostFtlBlockDevice::WriteBlocks(Lba lba, std::uint32_t count, SimTime issue,
                                                std::span<const std::uint8_t> data) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kHostFtl, ProfOp::kWrite);
  if (lba.value() + count > logical_pages_) {
    return ErrorCode::kOutOfRange;
  }
  const std::uint32_t page_size = device_->page_size();
  if (!data.empty() && data.size() != static_cast<std::size_t>(count) * page_size) {
    return ErrorCode::kInvalidArgument;
  }
  Tracer::Span span;
  if (telemetry_ != nullptr) {
    span = telemetry_->tracer.Start(metric_prefix_ + ".write", issue);
  }
  // Foreground host op: own the request-path measurement unless internal work (a CauseScope)
  // or an outer layer already does.
  RequestPathLedger::RequestScope req_scope(
      telemetry_ != nullptr && telemetry_->provenance.open_scopes() == 0
          ? &telemetry_->reqpath
          : nullptr,
      RequestContext{0, ReqOp::kWrite}, issue);
  SimTime ack = issue;
  for (std::uint32_t i = 0; i < count; ++i) {
    // Mandatory reclamation when space is critical; the triggering write absorbs the delay,
    // exactly like foreground GC inside a conventional SSD — except here it is host policy.
    if (scheduler_.Critical(FreeFraction())) {
      stats_.forced_gc_stalls++;
      // The reclaim's own device ops run as host-class commands inside this write's critical
      // path: reclassify their charges as a compaction stall inflicted by zone reclaim.
      RequestPathLedger::InterferenceScope stall_scope(
          ReqPathOf(telemetry_), WriteCause::kBlockEmulationReclaim, StackLayer::kHostFtl,
          metric_prefix_ + ".gc");
      SimTime t = issue;
      while (scheduler_.Critical(FreeFraction())) {
        Result<SimTime> done = GcRunToCompletion(t, /*critical=*/true);
        if (!done.ok()) {
          break;
        }
        t = done.value();
      }
      scheduler_.NoteForcedStall(t - issue);
    }
    std::span<const std::uint8_t> page_data;
    if (!data.empty()) {
      page_data = data.subspan(static_cast<std::size_t>(i) * page_size, page_size);
    }
    Result<SimTime> done = AppendPage(lba.value() + i, issue, page_data);
    if (!done.ok()) {
      return done;
    }
    stats_.host_pages_written++;
    if (provenance_ingress_ != nullptr) {
      *provenance_ingress_ += Bytes{page_size};
    }
    ack = std::max(ack, done.value());
  }
  if (telemetry_ != nullptr) {
    telemetry_->timeline.AdvanceGroup(sampler_group_, ack);
  }
  span.End(ack);
  req_scope.Complete(ack);
  return ack;
}

Result<SimTime> HostFtlBlockDevice::ReadBlocks(Lba lba, std::uint32_t count, SimTime issue,
                                               std::span<std::uint8_t> out) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kHostFtl, ProfOp::kRead);
  if (lba.value() + count > logical_pages_) {
    return ErrorCode::kOutOfRange;
  }
  const std::uint32_t page_size = device_->page_size();
  if (!out.empty() && out.size() != static_cast<std::size_t>(count) * page_size) {
    return ErrorCode::kInvalidArgument;
  }
  Tracer::Span span;
  if (telemetry_ != nullptr) {
    span = telemetry_->tracer.Start(metric_prefix_ + ".read", issue);
  }
  RequestPathLedger::RequestScope req_scope(
      telemetry_ != nullptr && telemetry_->provenance.open_scopes() == 0
          ? &telemetry_->reqpath
          : nullptr,
      RequestContext{0, ReqOp::kRead}, issue);
  SimTime done_all = issue;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::span<std::uint8_t> page_out;
    if (!out.empty()) {
      page_out = out.subspan(static_cast<std::size_t>(i) * page_size, page_size);
    }
    stats_.host_pages_read++;
    const std::uint64_t dev_lba = l2p_[lba.value() + i];
    if (dev_lba == kUnmapped) {
      // Unmapped logical page: the host FTL itself serves zeros.
      if (!page_out.empty()) {
        std::memset(page_out.data(), 0, page_out.size());
      }
      continue;
    }
    Result<SimTime> done = device_->Read(Lba{dev_lba}, 1, issue, page_out);
    if (!done.ok()) {
      return done;
    }
    done_all = std::max(done_all, done.value());
  }
  if (telemetry_ != nullptr) {
    telemetry_->timeline.AdvanceGroup(sampler_group_, done_all);
  }
  span.End(done_all);
  req_scope.Complete(done_all);
  return done_all;
}

Result<SimTime> HostFtlBlockDevice::TrimBlocks(Lba lba, std::uint32_t count, SimTime issue) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kHostFtl, ProfOp::kOther);
  if (lba.value() + count > logical_pages_) {
    return ErrorCode::kOutOfRange;
  }
  RequestPathLedger::RequestScope req_scope(
      telemetry_ != nullptr && telemetry_->provenance.open_scopes() == 0
          ? &telemetry_->reqpath
          : nullptr,
      RequestContext{0, ReqOp::kTrim}, issue);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (l2p_[lba.value() + i] != kUnmapped) {
      InvalidatePage(lba.value() + i, issue);
      stats_.pages_trimmed++;
    }
  }
  req_scope.Complete(issue);
  return issue;
}

HostFtlBlockDevice::~HostFtlBlockDevice() { AttachTelemetry(nullptr); }

void HostFtlBlockDevice::AttachTelemetry(Telemetry* telemetry, std::string_view prefix) {
  if (telemetry_ != nullptr) {
    PublishMetrics();
    telemetry_->registry.RemoveProvider(metric_prefix_);
    telemetry_->timeline.RemoveSamplerGroup(metric_prefix_);
    scheduler_.AttachEvents(nullptr, "");
  }
  telemetry_ = telemetry;
  metric_prefix_ = std::string(prefix);
  if (telemetry_ == nullptr) {
    sampler_group_ = -1;
    provenance_ingress_ = nullptr;
    audit_l2p_ = nullptr;
    return;
  }
  telemetry_->registry.AddProvider(metric_prefix_, [this] { PublishMetrics(); });
  audit_l2p_ = telemetry_->audit.Register(metric_prefix_ + ".l2p");
  provenance_ingress_ = telemetry_->provenance.RegisterDomain(metric_prefix_);
  scheduler_.AttachEvents(&telemetry_->events, metric_prefix_ + ".sched");

  Timeline& tl = telemetry_->timeline;
  sampler_group_ = tl.AddSamplerGroup(metric_prefix_);
  tl.AddSampler(sampler_group_, metric_prefix_ + ".free_fraction",
                Timeline::SampleKind::kInstant, [this](SimTime) { return FreeFraction(); });
  tl.AddSampler(sampler_group_, metric_prefix_ + ".write_amplification",
                Timeline::SampleKind::kInstant,
                [this](SimTime) { return EndToEndWriteAmplification(); });
}

void HostFtlBlockDevice::PublishMetrics() {
  MetricRegistry& reg = telemetry_->registry;
  const std::string& p = metric_prefix_;
  reg.GetCounter(p + ".host_pages_written")->Set(stats_.host_pages_written);
  reg.GetCounter(p + ".host_pages_read")->Set(stats_.host_pages_read);
  reg.GetCounter(p + ".pages_trimmed")->Set(stats_.pages_trimmed);
  reg.GetCounter(p + ".gc.cycles")->Set(stats_.gc_cycles);
  reg.GetCounter(p + ".gc.pages_copied")->Set(stats_.gc_pages_copied);
  reg.GetCounter(p + ".gc.zones_reclaimed")->Set(stats_.zones_reclaimed);
  reg.GetCounter(p + ".gc.host_bus_bytes")->Set(stats_.gc_host_bus_bytes);
  reg.GetCounter(p + ".gc.forced_stalls")->Set(stats_.forced_gc_stalls);
  const GcSchedStats& sched = scheduler_.stats();
  reg.GetCounter(p + ".sched.decisions")->Set(sched.decisions);
  reg.GetCounter(p + ".sched.allowed")->Set(sched.allowed);
  reg.GetCounter(p + ".sched.critical_overrides")->Set(sched.critical_overrides);
  reg.GetCounter(p + ".sched.denied")->Set(sched.denied);
  reg.GetCounter(p + ".sched.runs")->Set(sched.runs);
  reg.GetCounter(p + ".sched.forced_stall_ns")->Set(sched.forced_stall_ns);
  reg.GetGauge(p + ".free_zones")->Set(static_cast<double>(FreeZones()));
  reg.GetGauge(p + ".free_fraction")->Set(FreeFraction());
  reg.GetGauge(p + ".write_amplification")->Set(EndToEndWriteAmplification());
  reg.GetGauge(p + ".host_mapping_bytes")->Set(static_cast<double>(HostMappingBytes()));
}

double HostFtlBlockDevice::EndToEndWriteAmplification() const {
  if (stats_.host_pages_written == 0) {
    return 1.0;
  }
  return static_cast<double>(device_->flash().stats().total_pages_programmed()) /
         static_cast<double>(stats_.host_pages_written);
}

std::uint64_t HostFtlBlockDevice::HostMappingBytes() const {
  // 4 B per forward entry + 4 B per reverse entry (paper's per-entry model, now in host DRAM).
  return logical_pages_ * 4 + d2l_.size() * 4;
}

Status HostFtlBlockDevice::CheckConsistency() const {
  for (std::uint64_t lpn = 0; lpn < logical_pages_; ++lpn) {
    const std::uint64_t dev_lba = l2p_[lpn];
    if (dev_lba == kUnmapped) {
      continue;
    }
    if (dev_lba >= d2l_.size() || d2l_[dev_lba] != lpn) {
      return Status(ErrorCode::kCorruption, "l2p/d2l mismatch");
    }
  }
  std::vector<std::uint32_t> live(device_->num_zones(), 0);
  for (std::uint64_t dev_lba = 0; dev_lba < d2l_.size(); ++dev_lba) {
    if (d2l_[dev_lba] != kUnmapped) {
      live[dev_lba / zone_pages_]++;
    }
  }
  for (std::uint32_t z = 0; z < device_->num_zones(); ++z) {
    if (live[z] != zone_live_[z]) {
      return Status(ErrorCode::kCorruption, "zone live counter drift");
    }
  }
  return Status::Ok();
}

}  // namespace blockhead
