// Host-side garbage-collection scheduling policies (§4.1 of the paper: "the host is in full
// control and can precisely schedule zone erasures and maintenance operations").
//
// On a conventional SSD the device decides when GC runs and the host cannot influence it. On a
// ZNS SSD space reclamation is host software, so *policy* becomes a tunable: run GC inline with
// writes, only in background/idle gaps, deferred whenever reads are pending, or rate-limited.
// bench_sched_policies (E11) sweeps these policies and measures read tail latency.

#ifndef BLOCKHEAD_SRC_SCHED_GC_SCHEDULER_H_
#define BLOCKHEAD_SRC_SCHED_GC_SCHEDULER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "src/core/shard_safety.h"
#include "src/util/types.h"

namespace blockhead {

class EventLog;

enum class GcSchedPolicy {
  // Reclaim only when space is critically low, synchronously with the triggering write.
  kInline,
  // Opportunistically reclaim during idle ticks once below the high watermark.
  kBackground,
  // Like kBackground, but never run maintenance while foreground reads are pending (unless
  // space is critical). Trades write headroom for read tail latency.
  kReadPriority,
  // Like kBackground, but at most one GC cycle per min_gc_interval (smooths erase bursts).
  kRateLimited,
};

const char* GcSchedPolicyName(GcSchedPolicy policy);

struct GcSchedulerConfig {
  GcSchedPolicy policy = GcSchedPolicy::kBackground;
  // Free-space fraction below which reclamation is mandatory (runs regardless of policy).
  double critical_free_fraction = 0.04;
  // Free-space fraction below which opportunistic reclamation starts.
  double low_free_fraction = 0.20;
  // Minimum spacing between GC cycles for kRateLimited.
  SimTime min_gc_interval = 2 * kMillisecond;
};

// Decision tallies, exported by the owning layer under `<prefix>.sched.*`.
struct GcSchedStats {
  std::uint64_t decisions = 0;          // ShouldRun calls.
  std::uint64_t allowed = 0;            // ... that returned true.
  std::uint64_t critical_overrides = 0; // ... allowed only because space was critical.
  std::uint64_t denied = 0;             // ... that returned false.
  std::uint64_t runs = 0;               // NoteRun calls (cycles actually executed).
  std::uint64_t forced_stall_ns = 0;    // SimTime foreground ops spent in mandatory reclaim.
};

// Pure decision logic: the storage layer reports its free fraction and whether foreground I/O
// is pending; the scheduler says whether a GC cycle may run now.
class GcScheduler {
 public:
  explicit GcScheduler(const GcSchedulerConfig& config) : config_(config) {}

  const GcSchedulerConfig& config() const { return config_; }
  const GcSchedStats& stats() const { return stats_; }

  // Mirrors decisions into `events` as edge-triggered kGcWindow records: one event whenever
  // ShouldRun's answer flips (window opens or closes), not one per query. nullptr detaches.
  void AttachEvents(EventLog* events, std::string_view source);

  // True if a reclamation cycle should run at `now`.
  bool ShouldRun(double free_fraction, bool reads_pending, SimTime now) const;

  // Record that a cycle ran (feeds the rate limiter).
  void NoteRun(SimTime now) {
    last_run_ = now;
    has_run_ = true;
    stats_.runs++;
  }

  // Records SimTime a foreground op spent stalled in mandatory (critical) reclamation —
  // the scheduler-policy cost the reqpath ledger attributes per request, aggregated here so
  // the policy's total stall budget is visible next to its decision tallies.
  void NoteForcedStall(SimTime ns) { stats_.forced_stall_ns += ns; }

  // True when free space is below the mandatory threshold.
  bool Critical(double free_fraction) const {
    return free_fraction <= config_.critical_free_fraction;
  }

 private:
  // Appends a kGcWindow event if the decision differs from the previous one.
  void NoteDecision(bool run, SimTime now) const;

  GcSchedulerConfig config_ BLOCKHEAD_SHARD_SHARED;
  SimTime last_run_ BLOCKHEAD_SHARD_SHARED = 0;
  bool has_run_ BLOCKHEAD_SHARD_SHARED = false;
  // ShouldRun is logically const (a pure policy query); the tallies and the window-edge
  // tracking are observability only.
  mutable GcSchedStats stats_ BLOCKHEAD_SHARD_SHARED;
  EventLog* events_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  std::string source_ BLOCKHEAD_SIM_GLOBAL;
  mutable bool has_decision_ BLOCKHEAD_SHARD_SHARED = false;
  mutable bool last_decision_ BLOCKHEAD_SHARD_SHARED = false;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_SCHED_GC_SCHEDULER_H_
