#include "src/sched/gc_scheduler.h"

#include "src/telemetry/event_log.h"

namespace blockhead {

#ifdef BLOCKHEAD_ANALYZE_SEED_VIOLATION
// Negative-test seed for tools/shard_analyze.py (ci.sh --analyze): an unannotated mutable
// static that the analyzer must catch and name. The macro is never defined in any build, so
// compilers never see this; the analyzer parses the block only when seeding is requested.
static std::uint64_t g_seeded_shard_violation = 0;
#endif

const char* GcSchedPolicyName(GcSchedPolicy policy) {
  switch (policy) {
    case GcSchedPolicy::kInline:
      return "inline";
    case GcSchedPolicy::kBackground:
      return "background";
    case GcSchedPolicy::kReadPriority:
      return "read-priority";
    case GcSchedPolicy::kRateLimited:
      return "rate-limited";
  }
  return "unknown";
}

void GcScheduler::AttachEvents(EventLog* events, std::string_view source) {
  events_ = events;
  source_ = std::string(source);
  has_decision_ = false;  // The first decision after (re)attach is always an edge.
}

void GcScheduler::NoteDecision(bool run, SimTime now) const {
  const bool changed = !has_decision_ || run != last_decision_;
  has_decision_ = true;
  last_decision_ = run;
  if (events_ == nullptr || !changed) {
    return;
  }
  events_->Append(now, TimelineEventType::kGcWindow, source_,
                  std::string(run ? "window open" : "window closed") + " policy " +
                      GcSchedPolicyName(config_.policy),
                  run ? 1 : 0, 0);
}

bool GcScheduler::ShouldRun(double free_fraction, bool reads_pending, SimTime now) const {
  stats_.decisions++;
  const auto allow = [this, now](bool yes) {
    (yes ? stats_.allowed : stats_.denied)++;
    NoteDecision(yes, now);
    return yes;
  };
  // Space-critical reclamation is mandatory under every policy: running out of free zones
  // would halt writes entirely.
  if (Critical(free_fraction)) {
    stats_.critical_overrides++;
    return allow(true);
  }
  if (free_fraction > config_.low_free_fraction) {
    return allow(false);  // Plenty of space: never reclaim early.
  }
  switch (config_.policy) {
    case GcSchedPolicy::kInline:
      return allow(false);  // Only critical reclamation, handled above.
    case GcSchedPolicy::kBackground:
      return allow(true);
    case GcSchedPolicy::kReadPriority:
      return allow(!reads_pending);
    case GcSchedPolicy::kRateLimited:
      return allow(!has_run_ || now >= last_run_ + config_.min_gc_interval);
  }
  return allow(false);
}

}  // namespace blockhead
