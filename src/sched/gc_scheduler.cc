#include "src/sched/gc_scheduler.h"

namespace blockhead {

const char* GcSchedPolicyName(GcSchedPolicy policy) {
  switch (policy) {
    case GcSchedPolicy::kInline:
      return "inline";
    case GcSchedPolicy::kBackground:
      return "background";
    case GcSchedPolicy::kReadPriority:
      return "read-priority";
    case GcSchedPolicy::kRateLimited:
      return "rate-limited";
  }
  return "unknown";
}

bool GcScheduler::ShouldRun(double free_fraction, bool reads_pending, SimTime now) const {
  stats_.decisions++;
  const auto allow = [this](bool yes) {
    (yes ? stats_.allowed : stats_.denied)++;
    return yes;
  };
  // Space-critical reclamation is mandatory under every policy: running out of free zones
  // would halt writes entirely.
  if (Critical(free_fraction)) {
    stats_.critical_overrides++;
    return allow(true);
  }
  if (free_fraction > config_.low_free_fraction) {
    return allow(false);  // Plenty of space: never reclaim early.
  }
  switch (config_.policy) {
    case GcSchedPolicy::kInline:
      return allow(false);  // Only critical reclamation, handled above.
    case GcSchedPolicy::kBackground:
      return allow(true);
    case GcSchedPolicy::kReadPriority:
      return allow(!reads_pending);
    case GcSchedPolicy::kRateLimited:
      return allow(!has_run_ || now >= last_run_ + config_.min_gc_interval);
  }
  return allow(false);
}

}  // namespace blockhead
