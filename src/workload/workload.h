// Synthetic I/O workload generators and a deterministic closed-loop driver.
//
// Generators produce logical block requests (uniform/zipfian random, sequential, mixed
// read/write); the driver replays them against any BlockDevice with a configurable queue
// depth, collecting per-class latency histograms and throughput. A periodic idle hook lets
// host-side stacks run background maintenance (GC pumps) the way a real I/O scheduler would.

#ifndef BLOCKHEAD_SRC_WORKLOAD_WORKLOAD_H_
#define BLOCKHEAD_SRC_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/block/block_device.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/types.h"

namespace blockhead {

enum class IoType { kRead, kWrite, kTrim };

struct IoRequest {
  IoType type = IoType::kWrite;
  std::uint64_t lba = 0;
  std::uint32_t pages = 1;
};

// Abstract request stream.
class WorkloadGenerator {
 public:
  virtual ~WorkloadGenerator() = default;
  virtual IoRequest Next() = 0;
};

// Key-space distribution for random workloads.
enum class AddressDistribution { kUniform, kZipfian };

struct RandomWorkloadConfig {
  std::uint64_t lba_space = 0;  // Addresses drawn from [0, lba_space).
  double read_fraction = 0.0;   // 0.0 = pure writes, 1.0 = pure reads.
  std::uint32_t io_pages = 1;   // Request size in pages.
  AddressDistribution distribution = AddressDistribution::kUniform;
  double zipf_theta = 0.99;
  std::uint64_t seed = 1;
};

// Random-address workload with a configurable read/write mix.
class RandomWorkload final : public WorkloadGenerator {
 public:
  explicit RandomWorkload(const RandomWorkloadConfig& config);
  IoRequest Next() override;

 private:
  RandomWorkloadConfig config_;
  Rng rng_;
  std::unique_ptr<ZipfGenerator> zipf_;
};

// YCSB core-workload op mixes (Cooper et al.), expressed at the block level so the standard
// cloud-serving request patterns can drive any BlockDevice or the fleet directly — without a
// KV store in between (src/kv/ycsb.h covers the KV-level variant).
enum class YcsbMix { kA, kB, kC, kD, kE, kF };

const char* YcsbMixName(YcsbMix mix);

struct YcsbBlockConfig {
  YcsbMix mix = YcsbMix::kA;
  std::uint64_t lba_space = 0;     // Records map onto [0, lba_space) in record_pages strides.
  std::uint32_t record_pages = 1;  // Pages per record; every op addresses whole records.
  std::uint32_t max_scan_pages = 32;  // Scan length cap for workload E (uniform 1..cap).
  double zipf_theta = 0.99;        // Record popularity skew (A/B/C/F).
  std::uint64_t seed = 1;
};

// Block-level YCSB generator: A 50/50 read-update, B 95/5 read-update, C read-only,
// D read-latest with 5% inserts, E short scans (multi-page reads) with 5% inserts, F
// read-modify-write (the write half follows as the next request on the same record).
// Inserts advance a frontier that wraps around the record space; read-latest draws from a
// recency-skewed window behind that frontier.
class YcsbBlockWorkload final : public WorkloadGenerator {
 public:
  explicit YcsbBlockWorkload(const YcsbBlockConfig& config);
  IoRequest Next() override;

 private:
  IoRequest RecordOp(std::uint64_t record, IoType type, std::uint32_t pages);

  YcsbBlockConfig config_;
  Rng rng_;
  std::unique_ptr<ZipfGenerator> zipf_;
  std::uint64_t num_records_ = 0;
  std::uint64_t insert_frontier_ = 0;  // Next record an insert lands on (D/E).
  bool rmw_write_pending_ = false;     // F: emit the write half on the next call.
  std::uint64_t rmw_record_ = 0;
};

// Sequential full-space write pass (wraps around), for preconditioning and streaming loads.
class SequentialWorkload final : public WorkloadGenerator {
 public:
  SequentialWorkload(std::uint64_t lba_space, std::uint32_t io_pages, IoType type);
  IoRequest Next() override;

 private:
  std::uint64_t lba_space_;
  std::uint32_t io_pages_;
  IoType type_;
  std::uint64_t next_ = 0;
};

// Aggregated result of a driver run.
struct RunResult {
  Histogram read_latency;   // ns
  Histogram write_latency;  // ns
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t trims = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  SimTime start = 0;
  SimTime end = 0;
  Status status;  // First error encountered, if any (run stops there).

  SimTime elapsed() const { return end > start ? end - start : 0; }
  double TotalMiBps() const { return ToMiBPerSec(bytes_read + bytes_written, elapsed()); }
  double ReadMiBps() const { return ToMiBPerSec(bytes_read, elapsed()); }
  double WriteMiBps() const { return ToMiBPerSec(bytes_written, elapsed()); }
  double Iops() const {
    const SimTime e = elapsed();
    if (e == 0) {
      return 0.0;
    }
    return static_cast<double>(reads + writes + trims) /
           (static_cast<double>(e) / static_cast<double>(kSecond));
  }
};

struct DriverOptions {
  std::uint64_t ops = 10000;
  std::uint32_t queue_depth = 1;
  // Called every idle_interval requests with the current simulated time; host stacks hook
  // their GC pumps here. reads_pending reflects whether the next request is a read.
  std::function<void(SimTime now, bool reads_pending)> maintenance_hook;
  std::uint32_t maintenance_interval = 16;
  SimTime start_time = 0;
};

// Replays `ops` requests from `gen` against `device` closed-loop: a request is issued as soon
// as a queue slot frees (the completion of the (n - queue_depth)-th request). Returns latency
// and throughput aggregates. Stops early on the first device error (recorded in the result).
RunResult RunClosedLoop(BlockDevice& device, WorkloadGenerator& gen,
                        const DriverOptions& options);

// Open-loop replay: requests arrive by a Poisson process at `ops_per_second` regardless of
// completions (arrival-time clock), so queueing delay appears in the measured latencies. The
// standard way to draw latency-vs-offered-load curves; saturation shows up as exploding
// tails, not reduced throughput.
RunResult RunOpenLoop(BlockDevice& device, WorkloadGenerator& gen, const DriverOptions& options,
                      double ops_per_second, std::uint64_t seed = 1234);

// Convenience: sequentially writes `fraction` of the device's logical space (preconditioning).
// Returns the completion time of the last write.
Result<SimTime> SequentialFill(BlockDevice& device, double fraction, SimTime start,
                               std::uint32_t io_pages = 8);

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_WORKLOAD_WORKLOAD_H_
