#include "src/workload/trace.h"

#include <charconv>
#include <cstdio>

namespace blockhead {

namespace {

// Parses one "<R|W|T>,<lba>,<pages>[,<t_ns>]" line.
Result<TimedIoRequest> ParseLine(std::string_view line, std::size_t line_number) {
  auto fail = [line_number](const char* what) {
    return Status(ErrorCode::kInvalidArgument,
                  "trace line " + std::to_string(line_number) + ": " + what);
  };
  if (line.size() < 5 || line[1] != ',') {
    return fail("expected '<R|W|T>,<lba>,<pages>[,<t_ns>]'");
  }
  TimedIoRequest timed;
  IoRequest& req = timed.io;
  switch (line[0]) {
    case 'R':
    case 'r':
      req.type = IoType::kRead;
      break;
    case 'W':
    case 'w':
      req.type = IoType::kWrite;
      break;
    case 'T':
    case 't':
      req.type = IoType::kTrim;
      break;
    default:
      return fail("unknown op (want R, W, or T)");
  }
  const std::size_t comma = line.find(',', 2);
  if (comma == std::string_view::npos) {
    return fail("missing pages field");
  }
  const std::string_view lba_str = line.substr(2, comma - 2);
  std::string_view pages_str = line.substr(comma + 1);
  std::string_view time_str;
  const std::size_t time_comma = pages_str.find(',');
  if (time_comma != std::string_view::npos) {
    time_str = pages_str.substr(time_comma + 1);
    pages_str = pages_str.substr(0, time_comma);
  }
  auto lba_result =
      std::from_chars(lba_str.data(), lba_str.data() + lba_str.size(), req.lba);
  if (lba_result.ec != std::errc() || lba_result.ptr != lba_str.data() + lba_str.size()) {
    return fail("bad lba");
  }
  auto pages_result =
      std::from_chars(pages_str.data(), pages_str.data() + pages_str.size(), req.pages);
  if (pages_result.ec != std::errc() ||
      pages_result.ptr != pages_str.data() + pages_str.size() || req.pages == 0) {
    return fail("bad pages");
  }
  if (!time_str.empty()) {
    auto time_result =
        std::from_chars(time_str.data(), time_str.data() + time_str.size(), timed.at);
    if (time_result.ec != std::errc() ||
        time_result.ptr != time_str.data() + time_str.size()) {
      return fail("bad timestamp");
    }
  } else if (time_comma != std::string_view::npos) {
    return fail("bad timestamp");  // Trailing comma with nothing after it.
  }
  return timed;
}

}  // namespace

Result<std::vector<TimedIoRequest>> ParseTimedTrace(std::string_view text) {
  std::vector<TimedIoRequest> requests;
  std::size_t line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;
    // Trim trailing CR and surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') {
      line.remove_prefix(1);
    }
    if (line.empty() || line.front() == '#') {
      continue;
    }
    Result<TimedIoRequest> req = ParseLine(line, line_number);
    if (!req.ok()) {
      return req.status();
    }
    requests.push_back(req.value());
  }
  return requests;
}

Result<std::vector<IoRequest>> ParseTrace(std::string_view text) {
  Result<std::vector<TimedIoRequest>> timed = ParseTimedTrace(text);
  if (!timed.ok()) {
    return timed.status();
  }
  std::vector<IoRequest> requests;
  requests.reserve(timed.value().size());
  for (const TimedIoRequest& t : timed.value()) {
    requests.push_back(t.io);
  }
  return requests;
}

std::string FormatTrace(const std::vector<IoRequest>& requests) {
  std::string out;
  char buf[64];
  for (const IoRequest& req : requests) {
    const char op = req.type == IoType::kRead ? 'R' : (req.type == IoType::kWrite ? 'W' : 'T');
    std::snprintf(buf, sizeof(buf), "%c,%llu,%u\n", op,
                  static_cast<unsigned long long>(req.lba), req.pages);
    out += buf;
  }
  return out;
}

std::string FormatTimedTrace(const std::vector<TimedIoRequest>& requests) {
  std::string out;
  char buf[96];
  for (const TimedIoRequest& timed : requests) {
    const IoRequest& req = timed.io;
    const char op = req.type == IoType::kRead ? 'R' : (req.type == IoType::kWrite ? 'W' : 'T');
    std::snprintf(buf, sizeof(buf), "%c,%llu,%u,%llu\n", op,
                  static_cast<unsigned long long>(req.lba), req.pages,
                  static_cast<unsigned long long>(timed.at));
    out += buf;
  }
  return out;
}

std::size_t NormalizeTraceTimes(std::vector<TimedIoRequest>* requests) {
  std::size_t adjusted = 0;
  SimTime high_water = 0;
  for (TimedIoRequest& timed : *requests) {
    if (timed.at < high_water) {
      timed.at = high_water;
      ++adjusted;
    } else {
      high_water = timed.at;
    }
  }
  return adjusted;
}

TraceClampStats ClampTraceToCapacity(std::vector<IoRequest>* requests,
                                     std::uint64_t num_pages) {
  TraceClampStats stats;
  std::vector<IoRequest> kept;
  kept.reserve(requests->size());
  for (IoRequest req : *requests) {
    if (req.lba >= num_pages) {
      ++stats.dropped;
      continue;
    }
    const std::uint64_t room = num_pages - req.lba;
    if (req.pages > room) {
      req.pages = static_cast<std::uint32_t>(room);
      ++stats.truncated;
    }
    kept.push_back(req);
  }
  *requests = std::move(kept);
  return stats;
}

TraceWorkload::TraceWorkload(std::vector<IoRequest> requests)
    : requests_(std::move(requests)) {}

IoRequest TraceWorkload::Next() {
  if (requests_.empty()) {
    return IoRequest{IoType::kRead, 0, 0};  // Zero-length read: drivers treat it as a no-op.
  }
  const IoRequest req = requests_[next_];
  next_ = (next_ + 1) % requests_.size();
  return req;
}

}  // namespace blockhead
