#include "src/workload/trace.h"

#include <cassert>
#include <charconv>
#include <cstdio>

namespace blockhead {

namespace {

// Parses one "<R|W|T>,<lba>,<pages>" line.
Result<IoRequest> ParseLine(std::string_view line, std::size_t line_number) {
  auto fail = [line_number](const char* what) {
    return Status(ErrorCode::kInvalidArgument,
                  "trace line " + std::to_string(line_number) + ": " + what);
  };
  if (line.size() < 5 || line[1] != ',') {
    return fail("expected '<R|W|T>,<lba>,<pages>'");
  }
  IoRequest req;
  switch (line[0]) {
    case 'R':
    case 'r':
      req.type = IoType::kRead;
      break;
    case 'W':
    case 'w':
      req.type = IoType::kWrite;
      break;
    case 'T':
    case 't':
      req.type = IoType::kTrim;
      break;
    default:
      return fail("unknown op (want R, W, or T)");
  }
  const std::size_t comma = line.find(',', 2);
  if (comma == std::string_view::npos) {
    return fail("missing pages field");
  }
  const std::string_view lba_str = line.substr(2, comma - 2);
  const std::string_view pages_str = line.substr(comma + 1);
  auto lba_result =
      std::from_chars(lba_str.data(), lba_str.data() + lba_str.size(), req.lba);
  if (lba_result.ec != std::errc() || lba_result.ptr != lba_str.data() + lba_str.size()) {
    return fail("bad lba");
  }
  auto pages_result =
      std::from_chars(pages_str.data(), pages_str.data() + pages_str.size(), req.pages);
  if (pages_result.ec != std::errc() ||
      pages_result.ptr != pages_str.data() + pages_str.size() || req.pages == 0) {
    return fail("bad pages");
  }
  return req;
}

}  // namespace

Result<std::vector<IoRequest>> ParseTrace(std::string_view text) {
  std::vector<IoRequest> requests;
  std::size_t line_number = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_number;
    // Trim trailing CR and surrounding spaces.
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.remove_suffix(1);
    }
    while (!line.empty() && line.front() == ' ') {
      line.remove_prefix(1);
    }
    if (line.empty() || line.front() == '#') {
      continue;
    }
    Result<IoRequest> req = ParseLine(line, line_number);
    if (!req.ok()) {
      return req.status();
    }
    requests.push_back(req.value());
  }
  return requests;
}

std::string FormatTrace(const std::vector<IoRequest>& requests) {
  std::string out;
  char buf[64];
  for (const IoRequest& req : requests) {
    const char op = req.type == IoType::kRead ? 'R' : (req.type == IoType::kWrite ? 'W' : 'T');
    std::snprintf(buf, sizeof(buf), "%c,%llu,%u\n", op,
                  static_cast<unsigned long long>(req.lba), req.pages);
    out += buf;
  }
  return out;
}

TraceWorkload::TraceWorkload(std::vector<IoRequest> requests)
    : requests_(std::move(requests)) {
  assert(!requests_.empty());
}

IoRequest TraceWorkload::Next() {
  const IoRequest req = requests_[next_];
  next_ = (next_ + 1) % requests_.size();
  return req;
}

}  // namespace blockhead
