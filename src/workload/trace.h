// I/O trace capture and replay: lets experiments run recorded request streams (or hand-written
// ones) instead of synthetic generators — the "representative workloads" half of the paper's
// §4.2 systematic-testing question.
//
// Text format, one request per line:  <R|W|T>,<lba>,<pages>
// Blank lines and lines starting with '#' are ignored.

#ifndef BLOCKHEAD_SRC_WORKLOAD_TRACE_H_
#define BLOCKHEAD_SRC_WORKLOAD_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"
#include "src/workload/workload.h"

namespace blockhead {

// Parses the text format above. Fails with kInvalidArgument on the first malformed line.
Result<std::vector<IoRequest>> ParseTrace(std::string_view text);

// Renders requests back into the text format (round-trips with ParseTrace).
std::string FormatTrace(const std::vector<IoRequest>& requests);

// Replays a fixed request vector (wrapping around when exhausted).
class TraceWorkload final : public WorkloadGenerator {
 public:
  explicit TraceWorkload(std::vector<IoRequest> requests);

  IoRequest Next() override;

  std::size_t size() const { return requests_.size(); }

 private:
  std::vector<IoRequest> requests_;
  std::size_t next_ = 0;
};

// Wraps another generator and records everything it produces (capture-while-running).
class RecordingWorkload final : public WorkloadGenerator {
 public:
  explicit RecordingWorkload(WorkloadGenerator* inner) : inner_(inner) {}

  IoRequest Next() override {
    const IoRequest req = inner_->Next();
    recorded_.push_back(req);
    return req;
  }

  const std::vector<IoRequest>& recorded() const { return recorded_; }

 private:
  WorkloadGenerator* inner_;
  std::vector<IoRequest> recorded_;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_WORKLOAD_TRACE_H_
