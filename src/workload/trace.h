// I/O trace capture and replay: lets experiments run recorded request streams (or hand-written
// ones) instead of synthetic generators — the "representative workloads" half of the paper's
// §4.2 systematic-testing question.
//
// Text format, one request per line:  <R|W|T>,<lba>,<pages>[,<t_ns>]
// The optional fourth field is an arrival timestamp in simulated nanoseconds (real trace
// formats carry one; closed-loop replay ignores it). Blank lines and lines starting with '#'
// are ignored.

#ifndef BLOCKHEAD_SRC_WORKLOAD_TRACE_H_
#define BLOCKHEAD_SRC_WORKLOAD_TRACE_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"
#include "src/util/types.h"
#include "src/workload/workload.h"

namespace blockhead {

// A trace record with its arrival timestamp (0 when the trace line carried none).
struct TimedIoRequest {
  IoRequest io;
  SimTime at = 0;
};

// Parses the text format above, dropping timestamps. Fails with kInvalidArgument on the first
// malformed line.
Result<std::vector<IoRequest>> ParseTrace(std::string_view text);

// Parses the text format above, keeping timestamps (0 for three-field lines).
Result<std::vector<TimedIoRequest>> ParseTimedTrace(std::string_view text);

// Renders requests back into the text format (round-trips with ParseTrace).
std::string FormatTrace(const std::vector<IoRequest>& requests);

// Renders timed requests with the four-field format (round-trips with ParseTimedTrace).
std::string FormatTimedTrace(const std::vector<TimedIoRequest>& requests);

// Repairs out-of-order timestamps in place: any timestamp below the running maximum is lifted
// to it, so the sequence becomes nondecreasing while the request order (the ground truth of
// what the traced application issued) is preserved. Returns how many records were adjusted.
std::size_t NormalizeTraceTimes(std::vector<TimedIoRequest>* requests);

struct TraceClampStats {
  std::size_t dropped = 0;    // Requests starting at or beyond the capacity (removed).
  std::size_t truncated = 0;  // Requests shortened to stop at the capacity boundary.
};

// Fits a trace recorded against a larger device onto one with `num_pages` logical pages:
// requests starting past the end are dropped, requests straddling it are truncated to the
// in-range prefix. Zero-length results never survive. Returns what was changed, so replay
// tooling can report coverage loss instead of silently shrinking the workload.
TraceClampStats ClampTraceToCapacity(std::vector<IoRequest>* requests, std::uint64_t num_pages);

// Replays a fixed request vector (wrapping around when exhausted). An empty trace is legal:
// Next() then returns a zero-length read, which every driver treats as a no-op.
class TraceWorkload final : public WorkloadGenerator {
 public:
  explicit TraceWorkload(std::vector<IoRequest> requests);

  IoRequest Next() override;

  std::size_t size() const { return requests_.size(); }

 private:
  std::vector<IoRequest> requests_;
  std::size_t next_ = 0;
};

// Wraps another generator and records everything it produces (capture-while-running).
class RecordingWorkload final : public WorkloadGenerator {
 public:
  explicit RecordingWorkload(WorkloadGenerator* inner) : inner_(inner) {}

  IoRequest Next() override {
    const IoRequest req = inner_->Next();
    recorded_.push_back(req);
    return req;
  }

  const std::vector<IoRequest>& recorded() const { return recorded_; }

 private:
  WorkloadGenerator* inner_;
  std::vector<IoRequest> recorded_;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_WORKLOAD_TRACE_H_
