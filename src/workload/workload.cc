#include "src/workload/workload.h"

#include <algorithm>
#include <deque>

namespace blockhead {

RandomWorkload::RandomWorkload(const RandomWorkloadConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.distribution == AddressDistribution::kZipfian && config_.lba_space > 1) {
    zipf_ = std::make_unique<ZipfGenerator>(config_.lba_space, config_.zipf_theta,
                                            config_.seed + 1);
  }
}

IoRequest RandomWorkload::Next() {
  IoRequest req;
  req.type = rng_.NextBool(config_.read_fraction) ? IoType::kRead : IoType::kWrite;
  req.pages = config_.io_pages;
  const std::uint64_t lba =
      zipf_ != nullptr ? zipf_->Next() : rng_.NextBelow(config_.lba_space);
  const std::uint64_t max_start =
      config_.lba_space >= config_.io_pages ? config_.lba_space - config_.io_pages : 0;
  req.lba = std::min(lba, max_start);
  return req;
}

SequentialWorkload::SequentialWorkload(std::uint64_t lba_space, std::uint32_t io_pages,
                                       IoType type)
    : lba_space_(lba_space), io_pages_(io_pages), type_(type) {}

IoRequest SequentialWorkload::Next() {
  if (next_ + io_pages_ > lba_space_) {
    next_ = 0;
  }
  IoRequest req{type_, next_, io_pages_};
  next_ += io_pages_;
  return req;
}

RunResult RunClosedLoop(BlockDevice& device, WorkloadGenerator& gen,
                        const DriverOptions& options) {
  RunResult result;
  result.start = options.start_time;
  result.end = options.start_time;
  // Completion times of the outstanding window, oldest first. With queue depth Q, request n
  // issues at the completion of request n-Q (or at start_time while the queue is filling).
  std::deque<SimTime> outstanding;

  for (std::uint64_t n = 0; n < options.ops; ++n) {
    const IoRequest req = gen.Next();
    SimTime issue = options.start_time;
    if (outstanding.size() >= options.queue_depth) {
      issue = std::max(issue, outstanding.front());
      outstanding.pop_front();
    }

    if (options.maintenance_hook && options.maintenance_interval != 0 &&
        n % options.maintenance_interval == 0) {
      options.maintenance_hook(issue, req.type == IoType::kRead);
    }

    Result<SimTime> done = 0;
    switch (req.type) {
      case IoType::kRead:
        done = device.ReadBlocks(Lba{req.lba}, req.pages, issue);
        break;
      case IoType::kWrite:
        done = device.WriteBlocks(Lba{req.lba}, req.pages, issue);
        break;
      case IoType::kTrim:
        done = device.TrimBlocks(Lba{req.lba}, req.pages, issue);
        break;
    }
    if (!done.ok()) {
      result.status = done.status();
      break;
    }
    const SimTime completion = done.value();
    outstanding.push_back(completion);
    result.end = std::max(result.end, completion);
    const SimTime latency = completion > issue ? completion - issue : 0;
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(req.pages) * device.block_size();
    switch (req.type) {
      case IoType::kRead:
        result.read_latency.Record(latency);
        result.reads++;
        result.bytes_read += bytes;
        break;
      case IoType::kWrite:
        result.write_latency.Record(latency);
        result.writes++;
        result.bytes_written += bytes;
        break;
      case IoType::kTrim:
        result.trims++;
        break;
    }
  }
  return result;
}

RunResult RunOpenLoop(BlockDevice& device, WorkloadGenerator& gen, const DriverOptions& options,
                      double ops_per_second, std::uint64_t seed) {
  RunResult result;
  result.start = options.start_time;
  result.end = options.start_time;
  Rng arrivals(seed);
  const double mean_gap_ns = static_cast<double>(kSecond) / ops_per_second;
  double clock = static_cast<double>(options.start_time);

  for (std::uint64_t n = 0; n < options.ops; ++n) {
    clock += arrivals.NextExponential(mean_gap_ns);
    const SimTime issue = static_cast<SimTime>(clock);
    const IoRequest req = gen.Next();

    if (options.maintenance_hook && options.maintenance_interval != 0 &&
        n % options.maintenance_interval == 0) {
      options.maintenance_hook(issue, req.type == IoType::kRead);
    }

    Result<SimTime> done = 0;
    switch (req.type) {
      case IoType::kRead:
        done = device.ReadBlocks(Lba{req.lba}, req.pages, issue);
        break;
      case IoType::kWrite:
        done = device.WriteBlocks(Lba{req.lba}, req.pages, issue);
        break;
      case IoType::kTrim:
        done = device.TrimBlocks(Lba{req.lba}, req.pages, issue);
        break;
    }
    if (!done.ok()) {
      result.status = done.status();
      break;
    }
    const SimTime completion = done.value();
    result.end = std::max(result.end, completion);
    const SimTime latency = completion > issue ? completion - issue : 0;
    const std::uint64_t bytes = static_cast<std::uint64_t>(req.pages) * device.block_size();
    switch (req.type) {
      case IoType::kRead:
        result.read_latency.Record(latency);
        result.reads++;
        result.bytes_read += bytes;
        break;
      case IoType::kWrite:
        result.write_latency.Record(latency);
        result.writes++;
        result.bytes_written += bytes;
        break;
      case IoType::kTrim:
        result.trims++;
        break;
    }
  }
  return result;
}

Result<SimTime> SequentialFill(BlockDevice& device, double fraction, SimTime start,
                               std::uint32_t io_pages) {
  const std::uint64_t pages =
      static_cast<std::uint64_t>(fraction * static_cast<double>(device.num_blocks()));
  SimTime t = start;
  for (std::uint64_t lba = 0; lba + io_pages <= pages; lba += io_pages) {
    Result<SimTime> done = device.WriteBlocks(Lba{lba}, io_pages, t);
    if (!done.ok()) {
      return done;
    }
    t = done.value();
  }
  return t;
}

}  // namespace blockhead
