#include "src/workload/workload.h"

#include <algorithm>
#include <deque>

namespace blockhead {

RandomWorkload::RandomWorkload(const RandomWorkloadConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.distribution == AddressDistribution::kZipfian && config_.lba_space > 1) {
    zipf_ = std::make_unique<ZipfGenerator>(config_.lba_space, config_.zipf_theta,
                                            config_.seed + 1);
  }
}

IoRequest RandomWorkload::Next() {
  IoRequest req;
  req.type = rng_.NextBool(config_.read_fraction) ? IoType::kRead : IoType::kWrite;
  req.pages = config_.io_pages;
  const std::uint64_t lba =
      zipf_ != nullptr ? zipf_->Next() : rng_.NextBelow(config_.lba_space);
  const std::uint64_t max_start =
      config_.lba_space >= config_.io_pages ? config_.lba_space - config_.io_pages : 0;
  req.lba = std::min(lba, max_start);
  return req;
}

const char* YcsbMixName(YcsbMix mix) {
  switch (mix) {
    case YcsbMix::kA:
      return "A";
    case YcsbMix::kB:
      return "B";
    case YcsbMix::kC:
      return "C";
    case YcsbMix::kD:
      return "D";
    case YcsbMix::kE:
      return "E";
    case YcsbMix::kF:
      return "F";
  }
  return "?";
}

YcsbBlockWorkload::YcsbBlockWorkload(const YcsbBlockConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.record_pages == 0) {
    config_.record_pages = 1;
  }
  num_records_ = config_.lba_space / config_.record_pages;
  if (num_records_ == 0) {
    num_records_ = 1;
  }
  if (num_records_ > 1) {
    zipf_ = std::make_unique<ZipfGenerator>(num_records_, config_.zipf_theta,
                                            config_.seed + 1);
  }
}

IoRequest YcsbBlockWorkload::RecordOp(std::uint64_t record, IoType type, std::uint32_t pages) {
  IoRequest req{type, (record % num_records_) * config_.record_pages, pages};
  // Clamp multi-record scans at the end of the space rather than wrapping mid-request.
  const std::uint64_t max_start = config_.lba_space >= pages ? config_.lba_space - pages : 0;
  req.lba = std::min(req.lba, max_start);
  return req;
}

IoRequest YcsbBlockWorkload::Next() {
  const std::uint32_t pages = config_.record_pages;
  if (rmw_write_pending_) {
    rmw_write_pending_ = false;
    return RecordOp(rmw_record_, IoType::kWrite, pages);
  }
  const std::uint64_t popular = zipf_ != nullptr ? zipf_->Next() : 0;
  switch (config_.mix) {
    case YcsbMix::kA:
      return RecordOp(popular, rng_.NextBool(0.5) ? IoType::kRead : IoType::kWrite, pages);
    case YcsbMix::kB:
      return RecordOp(popular, rng_.NextBool(0.95) ? IoType::kRead : IoType::kWrite, pages);
    case YcsbMix::kC:
      return RecordOp(popular, IoType::kRead, pages);
    case YcsbMix::kD: {
      if (rng_.NextBool(0.05)) {
        return RecordOp(insert_frontier_++, IoType::kWrite, pages);
      }
      // Read-latest: skew toward the most recent inserts (popularity by recency, so reuse the
      // zipf rank as "records behind the frontier").
      const std::uint64_t behind = popular;
      return RecordOp(insert_frontier_ + num_records_ - 1 - (behind % num_records_),
                      IoType::kRead, pages);
    }
    case YcsbMix::kE: {
      if (rng_.NextBool(0.05)) {
        return RecordOp(insert_frontier_++, IoType::kWrite, pages);
      }
      const std::uint32_t cap = std::max<std::uint32_t>(config_.max_scan_pages, pages);
      const std::uint32_t scan_pages = static_cast<std::uint32_t>(
          rng_.NextInRange(pages, cap));
      return RecordOp(popular, IoType::kRead, scan_pages);
    }
    case YcsbMix::kF: {
      if (rng_.NextBool(0.5)) {
        return RecordOp(popular, IoType::kRead, pages);
      }
      rmw_write_pending_ = true;
      rmw_record_ = popular;
      return RecordOp(rmw_record_, IoType::kRead, pages);
    }
  }
  return RecordOp(popular, IoType::kRead, pages);
}

SequentialWorkload::SequentialWorkload(std::uint64_t lba_space, std::uint32_t io_pages,
                                       IoType type)
    : lba_space_(lba_space), io_pages_(io_pages), type_(type) {}

IoRequest SequentialWorkload::Next() {
  if (next_ + io_pages_ > lba_space_) {
    next_ = 0;
  }
  IoRequest req{type_, next_, io_pages_};
  next_ += io_pages_;
  return req;
}

RunResult RunClosedLoop(BlockDevice& device, WorkloadGenerator& gen,
                        const DriverOptions& options) {
  RunResult result;
  result.start = options.start_time;
  result.end = options.start_time;
  // Completion times of the outstanding window, oldest first. With queue depth Q, request n
  // issues at the completion of request n-Q (or at start_time while the queue is filling).
  std::deque<SimTime> outstanding;

  for (std::uint64_t n = 0; n < options.ops; ++n) {
    const IoRequest req = gen.Next();
    SimTime issue = options.start_time;
    if (outstanding.size() >= options.queue_depth) {
      issue = std::max(issue, outstanding.front());
      outstanding.pop_front();
    }

    if (options.maintenance_hook && options.maintenance_interval != 0 &&
        n % options.maintenance_interval == 0) {
      options.maintenance_hook(issue, req.type == IoType::kRead);
    }

    Result<SimTime> done = 0;
    switch (req.type) {
      case IoType::kRead:
        done = device.ReadBlocks(Lba{req.lba}, req.pages, issue);
        break;
      case IoType::kWrite:
        done = device.WriteBlocks(Lba{req.lba}, req.pages, issue);
        break;
      case IoType::kTrim:
        done = device.TrimBlocks(Lba{req.lba}, req.pages, issue);
        break;
    }
    if (!done.ok()) {
      result.status = done.status();
      break;
    }
    const SimTime completion = done.value();
    outstanding.push_back(completion);
    result.end = std::max(result.end, completion);
    const SimTime latency = completion > issue ? completion - issue : 0;
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(req.pages) * device.block_size();
    switch (req.type) {
      case IoType::kRead:
        result.read_latency.Record(latency);
        result.reads++;
        result.bytes_read += bytes;
        break;
      case IoType::kWrite:
        result.write_latency.Record(latency);
        result.writes++;
        result.bytes_written += bytes;
        break;
      case IoType::kTrim:
        result.trims++;
        break;
    }
  }
  return result;
}

RunResult RunOpenLoop(BlockDevice& device, WorkloadGenerator& gen, const DriverOptions& options,
                      double ops_per_second, std::uint64_t seed) {
  RunResult result;
  result.start = options.start_time;
  result.end = options.start_time;
  Rng arrivals(seed);
  const double mean_gap_ns = static_cast<double>(kSecond) / ops_per_second;
  double clock = static_cast<double>(options.start_time);

  for (std::uint64_t n = 0; n < options.ops; ++n) {
    clock += arrivals.NextExponential(mean_gap_ns);
    const SimTime issue = static_cast<SimTime>(clock);
    const IoRequest req = gen.Next();

    if (options.maintenance_hook && options.maintenance_interval != 0 &&
        n % options.maintenance_interval == 0) {
      options.maintenance_hook(issue, req.type == IoType::kRead);
    }

    Result<SimTime> done = 0;
    switch (req.type) {
      case IoType::kRead:
        done = device.ReadBlocks(Lba{req.lba}, req.pages, issue);
        break;
      case IoType::kWrite:
        done = device.WriteBlocks(Lba{req.lba}, req.pages, issue);
        break;
      case IoType::kTrim:
        done = device.TrimBlocks(Lba{req.lba}, req.pages, issue);
        break;
    }
    if (!done.ok()) {
      result.status = done.status();
      break;
    }
    const SimTime completion = done.value();
    result.end = std::max(result.end, completion);
    const SimTime latency = completion > issue ? completion - issue : 0;
    const std::uint64_t bytes = static_cast<std::uint64_t>(req.pages) * device.block_size();
    switch (req.type) {
      case IoType::kRead:
        result.read_latency.Record(latency);
        result.reads++;
        result.bytes_read += bytes;
        break;
      case IoType::kWrite:
        result.write_latency.Record(latency);
        result.writes++;
        result.bytes_written += bytes;
        break;
      case IoType::kTrim:
        result.trims++;
        break;
    }
  }
  return result;
}

Result<SimTime> SequentialFill(BlockDevice& device, double fraction, SimTime start,
                               std::uint32_t io_pages) {
  const std::uint64_t pages =
      static_cast<std::uint64_t>(fraction * static_cast<double>(device.num_blocks()));
  SimTime t = start;
  for (std::uint64_t lba = 0; lba + io_pages <= pages; lba += io_pages) {
    Result<SimTime> done = device.WriteBlocks(Lba{lba}, io_pages, t);
    if (!done.ok()) {
      return done;
    }
    t = done.value();
  }
  return t;
}

}  // namespace blockhead
