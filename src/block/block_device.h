// The conventional block interface: a flat logical address space of fixed-size blocks that can
// be read, written, and trimmed in any order. The conventional SSD (src/ftl) implements this
// natively; the host-side block-on-ZNS layer (src/hostftl) reconstructs it over zones, which is
// the dm-zoned-style emulation the paper describes in §2.3/§2.5.

#ifndef BLOCKHEAD_SRC_BLOCK_BLOCK_DEVICE_H_
#define BLOCKHEAD_SRC_BLOCK_BLOCK_DEVICE_H_

#include <cstdint>
#include <span>

#include "src/core/strong_id.h"
#include "src/util/status.h"
#include "src/util/types.h"

namespace blockhead {

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  // Reads `count` logical blocks starting at `lba`. If `out` is nonempty it must hold
  // count * block_size() bytes. Returns the completion time.
  virtual Result<SimTime> ReadBlocks(Lba lba, std::uint32_t count, SimTime issue,
                                     std::span<std::uint8_t> out = {}) = 0;

  // Writes `count` logical blocks starting at `lba`. If `data` is nonempty it must hold
  // count * block_size() bytes. Returns the completion (host acknowledgement) time.
  virtual Result<SimTime> WriteBlocks(Lba lba, std::uint32_t count, SimTime issue,
                                      std::span<const std::uint8_t> data = {}) = 0;

  // Invalidates `count` logical blocks starting at `lba` (TRIM/deallocate).
  virtual Result<SimTime> TrimBlocks(Lba lba, std::uint32_t count, SimTime issue) = 0;

  // Logical capacity in blocks.
  virtual std::uint64_t num_blocks() const = 0;

  // Logical block size in bytes.
  virtual std::uint32_t block_size() const = 0;

  std::uint64_t capacity_bytes() const {
    return num_blocks() * static_cast<std::uint64_t>(block_size());
  }
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_BLOCK_BLOCK_DEVICE_H_
