// A minimal extent-allocating filesystem over the block interface, used as the conventional-
// SSD backend for the KV store.
//
// Files are lists of extents carved from a page-granular free bitmap with first-fit
// allocation. As files of different sizes are created and deleted, the free space fragments,
// so large SSTable writes scatter across the LBA space — and the conventional SSD's FTL, which
// cannot know which pages will die together, pays for it in garbage-collection write
// amplification. Deletions issue TRIM so the device learns about dead pages (being generous to
// the conventional baseline).
//
// Metadata is kept in memory only: the block path exists to measure data-path behaviour, and
// the paper's claims under reproduction here concern write amplification and latency, not
// block-filesystem crash consistency (zonefile demonstrates that part of the stack).

#ifndef BLOCKHEAD_SRC_KV_BLOCK_ENV_H_
#define BLOCKHEAD_SRC_KV_BLOCK_ENV_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/block/block_device.h"
#include "src/kv/env.h"
#include "src/util/bitmap.h"

namespace blockhead {

struct BlockEnvConfig {
  // Largest contiguous run requested per allocation. Smaller values fragment files more
  // aggressively (stress knob for the FTL).
  std::uint32_t max_extent_pages = 64;
  // Filesystem metadata model: block filesystems overwrite inode tables, allocation bitmaps,
  // and journal blocks in place. These hot, small overwrites share erasure blocks with cold
  // file data inside the device — the FTL cannot separate them (the paper's §4.1 information
  // barrier) — and they are a primary source of conventional-SSD write amplification.
  // LBAs [0, metadata_region_pages) are reserved for this traffic; 0 disables the model.
  std::uint32_t metadata_region_pages = 1024;
  // Metadata pages overwritten per namespace operation (create/delete/sync).
  std::uint32_t metadata_writes_per_op = 2;
  // One allocation-bitmap update per this many data pages written.
  std::uint32_t data_pages_per_metadata_update = 16;
};

class BlockEnv final : public Env {
 public:
  // `device` must outlive the env.
  explicit BlockEnv(BlockDevice* device, const BlockEnvConfig& config = {});

  Result<SimTime> CreateFile(std::string_view name, Lifetime hint, SimTime now) override;
  Result<SimTime> Append(std::string_view name, std::span<const std::uint8_t> data,
                         SimTime now) override;
  Result<SimTime> Read(std::string_view name, std::uint64_t offset,
                       std::span<std::uint8_t> out, SimTime now) override;
  Result<SimTime> Sync(std::string_view name, SimTime now) override;
  Result<SimTime> DeleteFile(std::string_view name, SimTime now) override;
  Result<std::uint64_t> FileSize(std::string_view name) const override;
  bool Exists(std::string_view name) const override;
  std::vector<std::string> ListFiles() const override;

  std::uint64_t FreePages() const { return free_map_.size() - free_map_.set_count(); }

 private:
  struct Extent {
    std::uint64_t lba = 0;
    std::uint32_t pages = 0;
    std::uint64_t bytes = 0;
  };
  struct FileMeta {
    Lifetime hint = Lifetime::kNone;  // Recorded but unused: the block interface drops it.
    std::uint64_t size = 0;
    std::vector<Extent> extents;
    std::vector<std::uint8_t> tail;
  };

  FileMeta* Find(std::string_view name);
  const FileMeta* Find(std::string_view name) const;
  // Allocates up to `want` contiguous pages (first fit); returns the run or kDeviceFull.
  Result<Extent> AllocateRun(std::uint32_t want);
  Result<SimTime> FlushTailPage(FileMeta& file, SimTime now, bool pad);
  // In-place metadata overwrites (inode/bitmap/journal model).
  Result<SimTime> MetadataUpdate(std::uint32_t pages, SimTime now);

  BlockDevice* device_;
  BlockEnvConfig config_;
  std::uint32_t page_size_;
  Bitmap free_map_;  // Set bit = page in use.
  std::size_t alloc_cursor_ = 0;
  std::uint64_t metadata_cursor_ = 0;  // Pseudo-random walk over the metadata region.
  std::uint32_t data_pages_since_metadata_ = 0;
  std::map<std::string, FileMeta, std::less<>> files_;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_KV_BLOCK_ENV_H_
