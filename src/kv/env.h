// Storage environment abstraction for the KV store (the role RocksDB's Env/FileSystem plays).
//
// Two implementations let the same LSM tree run over both device classes the paper compares:
//   * ZoneEnv   -> ZenFS-style zoned filesystem on a ZNS SSD (lifetime hints honored);
//   * BlockEnv  -> a simple extent-allocating filesystem on any BlockDevice (hints ignored —
//                  the block interface cannot express them, which is exactly the information
//                  barrier the paper describes in §2.4/§4.1).

#ifndef BLOCKHEAD_SRC_KV_ENV_H_
#define BLOCKHEAD_SRC_KV_ENV_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/status.h"
#include "src/util/types.h"
#include "src/zonefile/zone_file_system.h"

namespace blockhead {

class Env {
 public:
  virtual ~Env() = default;

  virtual Result<SimTime> CreateFile(std::string_view name, Lifetime hint, SimTime now) = 0;
  virtual Result<SimTime> Append(std::string_view name, std::span<const std::uint8_t> data,
                                 SimTime now) = 0;
  virtual Result<SimTime> Read(std::string_view name, std::uint64_t offset,
                               std::span<std::uint8_t> out, SimTime now) = 0;
  virtual Result<SimTime> Sync(std::string_view name, SimTime now) = 0;
  virtual Result<SimTime> DeleteFile(std::string_view name, SimTime now) = 0;
  virtual Result<std::uint64_t> FileSize(std::string_view name) const = 0;
  virtual bool Exists(std::string_view name) const = 0;
  virtual std::vector<std::string> ListFiles() const = 0;

  // Background maintenance opportunity (GC pump). Default: nothing.
  virtual void Maintain(SimTime /*now*/, bool /*reads_pending*/) {}
};

// Env over the ZenFS-style zoned filesystem. Non-owning.
class ZoneEnv final : public Env {
 public:
  explicit ZoneEnv(ZoneFileSystem* fs) : fs_(fs) {}

  Result<SimTime> CreateFile(std::string_view name, Lifetime hint, SimTime now) override {
    return fs_->Create(name, hint, now);
  }
  Result<SimTime> Append(std::string_view name, std::span<const std::uint8_t> data,
                         SimTime now) override {
    return fs_->Append(name, data, now);
  }
  Result<SimTime> Read(std::string_view name, std::uint64_t offset,
                       std::span<std::uint8_t> out, SimTime now) override {
    return fs_->Read(name, offset, out, now);
  }
  Result<SimTime> Sync(std::string_view name, SimTime now) override {
    return fs_->Sync(name, now);
  }
  Result<SimTime> DeleteFile(std::string_view name, SimTime now) override {
    return fs_->Delete(name, now);
  }
  Result<std::uint64_t> FileSize(std::string_view name) const override {
    return fs_->FileSize(name);
  }
  bool Exists(std::string_view name) const override { return fs_->Exists(name); }
  std::vector<std::string> ListFiles() const override { return fs_->ListFiles(); }
  void Maintain(SimTime now, bool reads_pending) override {
    fs_->Pump(now, reads_pending, 1);
  }

 private:
  ZoneFileSystem* fs_;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_KV_ENV_H_
