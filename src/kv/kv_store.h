// Mini-LSM key-value store (RocksDB stand-in for the paper's §2.4 claims).
//
// Architecture: an in-memory memtable backed by a write-ahead log; flushes produce L0
// SSTables; leveled compaction merges overlapping tables downward. Durability state (table
// set, current WAL) lives in a MANIFEST log, so Open() recovers committed data after a crash.
//
// The ZNS connection: every file is created with a lifetime hint derived from its role (WAL
// and L0 are short-lived; deeper levels live longer). On a ZoneEnv those hints place files so
// whole zones expire together — the mechanism behind the CMU result the paper cites (RocksDB
// device-level write amplification dropping from ~5x to ~1.2x on ZNS). On a BlockEnv the
// hints are recorded but cannot influence placement, and the conventional FTL pays for it.

#ifndef BLOCKHEAD_SRC_KV_KV_STORE_H_
#define BLOCKHEAD_SRC_KV_KV_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/kv/env.h"
#include "src/kv/sstable.h"
#include "src/telemetry/telemetry.h"
#include "src/util/status.h"
#include "src/util/types.h"

namespace blockhead {

struct KvConfig {
  std::uint64_t memtable_bytes = 256 * kKiB;
  std::uint32_t l0_compaction_trigger = 4;
  // L0 depth at which incoming writes stall until compaction catches up.
  std::uint32_t l0_stall_trigger = 12;
  std::uint64_t level_base_bytes = 1 * kMiB;  // Target size of L1.
  double level_multiplier = 8.0;
  std::uint32_t max_levels = 5;
  std::uint64_t target_table_bytes = 256 * kKiB;
  std::uint32_t block_bytes = 4096;
  std::uint32_t bloom_bits_per_key = 10;
  // Sync the WAL on every Put (true fsync durability) or rely on page-fill flushing.
  bool sync_wal_every_put = false;
  // Rewrite the MANIFEST as a fresh snapshot once it grows past this size (space reclaim).
  std::uint64_t manifest_roll_bytes = 256 * kKiB;
};

struct KvStats {
  std::uint64_t puts = 0;
  std::uint64_t deletes = 0;
  std::uint64_t gets = 0;
  std::uint64_t gets_found = 0;
  std::uint64_t user_bytes_written = 0;
  std::uint64_t flushes = 0;
  std::uint64_t compactions = 0;
  std::uint64_t bytes_flushed = 0;
  std::uint64_t bytes_compacted = 0;
  std::uint64_t bloom_skips = 0;
  std::uint64_t stall_events = 0;
};

class KvStore {
 public:
  // Opens (and recovers) a store in `env`. `env` must outlive the store.
  static Result<std::unique_ptr<KvStore>> Open(Env* env, const KvConfig& config, SimTime now);

  ~KvStore();  // Publishes final metrics and unhooks from the registry if attached.

  Result<SimTime> Put(std::string_view key, std::string_view value, SimTime now);
  Result<SimTime> Delete(std::string_view key, SimTime now);

  struct GetResult {
    bool found = false;
    std::string value;
    SimTime completion = 0;
  };
  Result<GetResult> Get(std::string_view key, SimTime now);

  struct ScanResult {
    std::vector<std::pair<std::string, std::string>> entries;  // Key order, ascending.
    SimTime completion = 0;
  };
  // Range scan: up to `limit` live entries with key >= start_key, merged across the memtable
  // and all levels (newest version wins; tombstones suppress).
  Result<ScanResult> Scan(std::string_view start_key, std::size_t limit, SimTime now);

  // Forces the memtable to an L0 table (also runs pending compactions).
  Result<SimTime> Flush(SimTime now);

  const KvStats& stats() const { return stats_; }
  // Number of tables per level (diagnostics).
  std::vector<std::uint32_t> LevelTableCounts() const;
  // LSM-level write amplification: (flush + compaction bytes) / user bytes.
  double LsmWriteAmplification() const;

  // Registers KvStats and the LSM write-amplification gauge with `telemetry`, plus per-op
  // tracing spans (`<prefix>.get` / `<prefix>.put`). A Put span covers everything the write
  // absorbs: WAL append, stalls, memtable flush and any compaction it triggers. While
  // attached, memtable flushes and level compactions land in the event log as kCompaction
  // records and as slices on the "<prefix>.compaction" maintenance track.
  void AttachTelemetry(Telemetry* telemetry, std::string_view prefix = "kv");

 private:
  struct TableMeta {
    std::uint32_t file_number = 0;
    std::uint32_t level = 0;
    std::uint64_t bytes = 0;
    std::string smallest;
    std::string largest;
    std::shared_ptr<SSTableReader> reader;
  };

  KvStore(Env* env, const KvConfig& config);

  static std::string TableName(std::uint32_t number);
  static std::string WalName(std::uint32_t number);
  static Lifetime HintForLevel(std::uint32_t level);

  Status RecoverManifest(SimTime now);
  Status RecoverWal(SimTime now);
  Result<SimTime> LogTableChange(const std::vector<TableMeta>& added,
                                 const std::vector<TableMeta>& removed,
                                 std::optional<std::uint32_t> new_wal, SimTime now);
  // Serializes one framed manifest record into `out`.
  void FrameAddRecord(const TableMeta& meta, std::vector<std::uint8_t>& out) const;
  // Replaces the manifest with a snapshot of the current version (space reclaim).
  Result<SimTime> RollManifest(SimTime now);

  Result<SimTime> WriteWalRecord(std::string_view key, KvEntryType type, std::string_view value,
                                 SimTime now);
  Result<SimTime> ApplyWrite(std::string_view key, KvEntryType type, std::string_view value,
                             SimTime now);
  Result<SimTime> FlushMemtable(SimTime now);
  // Runs compactions until no level is over its threshold. Returns last completion.
  Result<SimTime> MaybeCompact(SimTime now);
  Result<SimTime> CompactLevel(std::uint32_t level, SimTime now);
  std::uint64_t LevelBytes(std::uint32_t level) const;
  std::uint64_t LevelTargetBytes(std::uint32_t level) const;
  void PublishMetrics();

  Env* env_;
  KvConfig config_;

  using Memtable = std::map<std::string, std::optional<std::string>, std::less<>>;
  Memtable memtable_;
  std::uint64_t memtable_bytes_ = 0;

  std::vector<std::vector<TableMeta>> levels_;  // levels_[0] newest-first; >=1 key-sorted.
  std::uint32_t next_file_number_ = 1;
  std::uint32_t wal_number_ = 0;
  std::vector<std::string> compaction_cursor_;  // Per-level round-robin key cursor.
  SimTime stall_until_ = 0;

  KvStats stats_;
  Telemetry* telemetry_ = nullptr;
  std::string metric_prefix_;
  // User bytes accepted by Put/Delete, accumulated into the provenance ledger's domain
  // "<prefix>" as the top link of the factorized-WA chain.
  Bytes* provenance_ingress_ = nullptr;

  // State-digest audits: "<prefix>.memtable" folds one entry per live memtable key (key
  // bytes + value bytes or tombstone marker); "<prefix>.manifest" folds one entry per table
  // in the version (TableMeta fields) plus one for the current WAL number.
  SubsystemDigest* audit_memtable_ = nullptr;
  SubsystemDigest* audit_manifest_ = nullptr;
  static std::uint64_t MemtableEntryHash(std::string_view key,
                                         const std::optional<std::string>& value);
  static std::uint64_t TableEntryHash(const TableMeta& meta);
  static std::uint64_t WalEntryHash(std::uint32_t wal_number) {
    return AuditHashWords({3, wal_number});
  }
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_KV_KV_STORE_H_
