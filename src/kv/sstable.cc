#include "src/kv/sstable.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace blockhead {

namespace {

constexpr std::uint64_t kTableMagic = 0x31424154534E5A42ULL;  // "BZNSTAB1"
constexpr std::size_t kFooterBytes = 48;

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

std::uint64_t GetU64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return v;
}
std::uint32_t GetU32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return v;
}
std::uint16_t GetU16(const std::uint8_t* p) {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

// FNV-1a 64-bit.
std::uint64_t HashKey(std::string_view key, std::uint64_t seed) {
  std::uint64_t h = 1469598103934665603ULL ^ seed;
  for (const char c : key) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

// --- BloomFilter ---

BloomFilter BloomFilter::Build(const std::vector<std::string>& keys,
                               std::uint32_t bits_per_key) {
  BloomFilter f;
  if (keys.empty() || bits_per_key == 0) {
    return f;
  }
  f.bit_count_ = static_cast<std::uint32_t>(std::max<std::size_t>(64, keys.size() * bits_per_key));
  // k = bits_per_key * ln2, clamped.
  f.k_ = std::clamp<std::uint32_t>(
      static_cast<std::uint32_t>(static_cast<double>(bits_per_key) * 0.69), 1, 16);
  f.bits_.assign((f.bit_count_ + 7) / 8, 0);
  for (const std::string& key : keys) {
    const std::uint64_t h1 = HashKey(key, 0);
    const std::uint64_t h2 = HashKey(key, 0x9E3779B97F4A7C15ULL) | 1;
    for (std::uint32_t i = 0; i < f.k_; ++i) {
      const std::uint64_t bit = (h1 + i * h2) % f.bit_count_;
      f.bits_[bit / 8] |= static_cast<std::uint8_t>(1U << (bit % 8));
    }
  }
  return f;
}

bool BloomFilter::MayContain(std::string_view key) const {
  if (bit_count_ == 0) {
    return true;  // No filter -> cannot exclude.
  }
  const std::uint64_t h1 = HashKey(key, 0);
  const std::uint64_t h2 = HashKey(key, 0x9E3779B97F4A7C15ULL) | 1;
  for (std::uint32_t i = 0; i < k_; ++i) {
    const std::uint64_t bit = (h1 + i * h2) % bit_count_;
    if (!(bits_[bit / 8] & (1U << (bit % 8)))) {
      return false;
    }
  }
  return true;
}

std::vector<std::uint8_t> BloomFilter::Serialize() const {
  std::vector<std::uint8_t> out;
  PutU32(out, bit_count_);
  PutU32(out, k_);
  out.insert(out.end(), bits_.begin(), bits_.end());
  return out;
}

Result<BloomFilter> BloomFilter::Deserialize(std::span<const std::uint8_t> bytes) {
  if (bytes.size() < 8) {
    return Status(ErrorCode::kCorruption, "bloom too short");
  }
  BloomFilter f;
  f.bit_count_ = GetU32(bytes.data());
  f.k_ = GetU32(bytes.data() + 4);
  const std::size_t expect = (f.bit_count_ + 7) / 8;
  if (bytes.size() != 8 + expect) {
    return Status(ErrorCode::kCorruption, "bloom size mismatch");
  }
  f.bits_.assign(bytes.begin() + 8, bytes.end());
  return f;
}

// --- SSTableBuilder ---

SSTableBuilder::SSTableBuilder(Env* env, std::string name, const SSTableBuilderOptions& options)
    : env_(env), name_(std::move(name)), options_(options) {}

Status SSTableBuilder::Start(SimTime now) {
  Result<SimTime> created = env_->CreateFile(name_, options_.hint, now);
  if (!created.ok()) {
    return created.status();
  }
  last_write_ = created.value();
  started_ = true;
  return Status::Ok();
}

Status SSTableBuilder::FlushBlock(SimTime now) {
  if (block_.empty()) {
    return Status::Ok();
  }
  // Self-chain on the previous block's completion: table writes are a single QD-1 stream
  // (like a rate-limited compaction), not a burst booked at one instant — so foreground reads
  // can interleave on the device.
  Result<SimTime> appended = env_->Append(name_, block_, std::max(now, last_write_));
  if (!appended.ok()) {
    return appended.status();
  }
  last_write_ = std::max(last_write_, appended.value());
  index_.push_back(IndexEntry{offset_, static_cast<std::uint32_t>(block_.size()),
                              block_last_key_});
  offset_ += block_.size();
  block_.clear();
  return Status::Ok();
}

Status SSTableBuilder::Add(std::string_view key, KvEntryType type, std::string_view value,
                           SimTime now) {
  assert(started_);
  assert(entry_count_ == 0 || key > largest_);
  if (entry_count_ == 0) {
    smallest_ = std::string(key);
  }
  largest_ = std::string(key);
  PutU16(block_, static_cast<std::uint16_t>(key.size()));
  block_.insert(block_.end(), key.begin(), key.end());
  block_.push_back(static_cast<std::uint8_t>(type));
  PutU32(block_, static_cast<std::uint32_t>(value.size()));
  block_.insert(block_.end(), value.begin(), value.end());
  block_last_key_ = std::string(key);
  keys_.emplace_back(key);
  entry_count_++;
  if (block_.size() >= options_.block_bytes) {
    return FlushBlock(now);
  }
  return Status::Ok();
}

Result<SimTime> SSTableBuilder::Finish(SimTime now) {
  assert(started_);
  BLOCKHEAD_RETURN_IF_ERROR(FlushBlock(now));

  std::vector<std::uint8_t> tail;
  const std::uint64_t index_off = offset_;
  for (const IndexEntry& e : index_) {
    PutU64(tail, e.offset);
    PutU32(tail, e.size);
    PutU16(tail, static_cast<std::uint16_t>(e.last_key.size()));
    tail.insert(tail.end(), e.last_key.begin(), e.last_key.end());
  }
  const std::uint64_t index_len = tail.size();

  const BloomFilter bloom = BloomFilter::Build(keys_, options_.bloom_bits_per_key);
  const std::vector<std::uint8_t> bloom_bytes = bloom.Serialize();
  const std::uint64_t bloom_off = index_off + index_len;
  tail.insert(tail.end(), bloom_bytes.begin(), bloom_bytes.end());

  PutU64(tail, index_off);
  PutU64(tail, index_len);
  PutU64(tail, bloom_off);
  PutU64(tail, bloom_bytes.size());
  PutU64(tail, entry_count_);
  PutU64(tail, kTableMagic);

  Result<SimTime> appended = env_->Append(name_, tail, std::max(now, last_write_));
  if (!appended.ok()) {
    return appended;
  }
  offset_ += tail.size();
  Result<SimTime> synced = env_->Sync(name_, appended.value());
  if (!synced.ok()) {
    return synced;
  }
  last_write_ = std::max(last_write_, synced.value());
  return last_write_;
}

// --- SSTableReader ---

Result<std::unique_ptr<SSTableReader>> SSTableReader::Open(Env* env, std::string name,
                                                           SimTime now) {
  Result<std::uint64_t> size = env->FileSize(name);
  if (!size.ok()) {
    return size.status();
  }
  if (size.value() < kFooterBytes) {
    return Status(ErrorCode::kCorruption, "table smaller than footer");
  }
  std::vector<std::uint8_t> footer(kFooterBytes);
  Result<SimTime> r = env->Read(name, size.value() - kFooterBytes, footer, now);
  if (!r.ok()) {
    return r.status();
  }
  const std::uint64_t index_off = GetU64(footer.data());
  const std::uint64_t index_len = GetU64(footer.data() + 8);
  const std::uint64_t bloom_off = GetU64(footer.data() + 16);
  const std::uint64_t bloom_len = GetU64(footer.data() + 24);
  const std::uint64_t entry_count = GetU64(footer.data() + 32);
  const std::uint64_t magic = GetU64(footer.data() + 40);
  if (magic != kTableMagic || index_off + index_len > size.value()) {
    return Status(ErrorCode::kCorruption, "bad table footer");
  }

  auto reader = std::unique_ptr<SSTableReader>(new SSTableReader(env, std::move(name)));
  reader->entry_count_ = entry_count;

  std::vector<std::uint8_t> index_bytes(index_len);
  if (index_len > 0) {
    r = env->Read(reader->name_, index_off, index_bytes, now);
    if (!r.ok()) {
      return r.status();
    }
  }
  std::size_t pos = 0;
  while (pos + 14 <= index_bytes.size()) {
    IndexEntry e;
    e.offset = GetU64(index_bytes.data() + pos);
    e.size = GetU32(index_bytes.data() + pos + 8);
    const std::uint16_t klen = GetU16(index_bytes.data() + pos + 12);
    pos += 14;
    if (pos + klen > index_bytes.size()) {
      return Status(ErrorCode::kCorruption, "truncated index entry");
    }
    e.last_key.assign(reinterpret_cast<const char*>(index_bytes.data() + pos), klen);
    pos += klen;
    reader->index_.push_back(std::move(e));
  }

  std::vector<std::uint8_t> bloom_bytes(bloom_len);
  if (bloom_len > 0) {
    r = env->Read(reader->name_, bloom_off, bloom_bytes, now);
    if (!r.ok()) {
      return r.status();
    }
    Result<BloomFilter> bloom = BloomFilter::Deserialize(bloom_bytes);
    if (!bloom.ok()) {
      return bloom.status();
    }
    reader->bloom_ = std::move(bloom).value();
  }
  return reader;
}

Status SSTableReader::ParseBlock(std::span<const std::uint8_t> block,
                                 std::vector<KvEntry>* entries) {
  std::size_t pos = 0;
  while (pos + 7 <= block.size()) {
    const std::uint16_t klen = GetU16(block.data() + pos);
    pos += 2;
    if (pos + klen + 5 > block.size()) {
      return Status(ErrorCode::kCorruption, "truncated entry key");
    }
    KvEntry entry;
    entry.key.assign(reinterpret_cast<const char*>(block.data() + pos), klen);
    pos += klen;
    entry.type = static_cast<KvEntryType>(block[pos]);
    pos += 1;
    const std::uint32_t vlen = GetU32(block.data() + pos);
    pos += 4;
    if (pos + vlen > block.size()) {
      return Status(ErrorCode::kCorruption, "truncated entry value");
    }
    entry.value.assign(reinterpret_cast<const char*>(block.data() + pos), vlen);
    pos += vlen;
    entries->push_back(std::move(entry));
  }
  return Status::Ok();
}

Result<SSTableReader::GetResult> SSTableReader::Get(std::string_view key, SimTime now) const {
  GetResult result;
  result.completion = now;
  if (!bloom_.MayContain(key)) {
    result.bloom_skipped = true;
    return result;
  }
  // First block whose last_key >= key.
  auto it = std::lower_bound(index_.begin(), index_.end(), key,
                             [](const IndexEntry& e, std::string_view k) {
                               return std::string_view(e.last_key) < k;
                             });
  if (it == index_.end()) {
    return result;
  }
  std::vector<std::uint8_t> block(it->size);
  Result<SimTime> r = env_->Read(name_, it->offset, block, now);
  if (!r.ok()) {
    return r.status();
  }
  result.completion = r.value();
  std::vector<KvEntry> entries;
  BLOCKHEAD_RETURN_IF_ERROR(ParseBlock(block, &entries));
  for (const KvEntry& e : entries) {
    if (e.key == key) {
      result.found = true;
      result.type = e.type;
      result.value = e.value;
      return result;
    }
  }
  return result;
}

Result<std::vector<KvEntry>> SSTableReader::ScanFrom(std::string_view start_key,
                                                     std::size_t limit, SimTime now,
                                                     SimTime* completion) const {
  std::vector<KvEntry> out;
  SimTime done = now;
  // First block whose last_key >= start_key; every later block may also contain matches.
  auto it = std::lower_bound(index_.begin(), index_.end(), start_key,
                             [](const IndexEntry& e, std::string_view k) {
                               return std::string_view(e.last_key) < k;
                             });
  for (; it != index_.end() && out.size() < limit; ++it) {
    std::vector<std::uint8_t> block(it->size);
    Result<SimTime> r = env_->Read(name_, it->offset, block, now);
    if (!r.ok()) {
      return r.status();
    }
    done = std::max(done, r.value());
    std::vector<KvEntry> entries;
    BLOCKHEAD_RETURN_IF_ERROR(ParseBlock(block, &entries));
    for (KvEntry& entry : entries) {
      if (entry.key >= start_key) {
        out.push_back(std::move(entry));
        if (out.size() >= limit) {
          break;
        }
      }
    }
  }
  if (completion != nullptr) {
    *completion = done;
  }
  return out;
}

Result<std::vector<KvEntry>> SSTableReader::ReadAll(SimTime now, SimTime* completion) const {
  std::vector<KvEntry> all;
  all.reserve(entry_count_);
  SimTime done = now;
  for (const IndexEntry& e : index_) {
    std::vector<std::uint8_t> block(e.size);
    Result<SimTime> r = env_->Read(name_, e.offset, block, now);
    if (!r.ok()) {
      return r.status();
    }
    done = std::max(done, r.value());
    BLOCKHEAD_RETURN_IF_ERROR(ParseBlock(block, &all));
  }
  if (completion != nullptr) {
    *completion = done;
  }
  return all;
}

}  // namespace blockhead
