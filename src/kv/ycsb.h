// YCSB-style core workloads (A–F) for the KV store, used to compare the conventional and ZNS
// backends under standard access patterns (the paper's §2.4 RocksDB claims are exactly this
// kind of comparison).
//
//   A: 50% read / 50% update, zipfian        B: 95% read / 5% update, zipfian
//   C: 100% read, zipfian                    D: 95% read-latest / 5% insert
//   E: 95% short scan / 5% insert            F: 50% read / 50% read-modify-write

#ifndef BLOCKHEAD_SRC_KV_YCSB_H_
#define BLOCKHEAD_SRC_KV_YCSB_H_

#include <cstdint>

#include "src/kv/kv_store.h"
#include "src/util/histogram.h"

namespace blockhead {

enum class YcsbWorkload { kA, kB, kC, kD, kE, kF };

const char* YcsbName(YcsbWorkload workload);

struct YcsbConfig {
  std::uint64_t record_count = 50000;
  std::uint64_t operation_count = 50000;
  std::size_t value_bytes = 120;
  double zipf_theta = 0.9;
  std::uint32_t max_scan_length = 50;
  std::uint64_t seed = 77;
};

struct YcsbResult {
  Histogram read_latency;    // ns; covers reads, read-latest, and the read half of RMW.
  Histogram update_latency;  // ns; updates, inserts, and the write half of RMW.
  Histogram scan_latency;    // ns.
  std::uint64_t reads = 0;
  std::uint64_t updates = 0;
  std::uint64_t inserts = 0;
  std::uint64_t scans = 0;
  std::uint64_t scanned_entries = 0;
  std::uint64_t not_found = 0;  // Reads that missed (0 expected after a clean load).
  SimTime elapsed = 0;
  Status status;

  double OpsPerSecond() const {
    if (elapsed == 0) {
      return 0.0;
    }
    return static_cast<double>(reads + updates + inserts + scans) /
           (static_cast<double>(elapsed) / static_cast<double>(kSecond));
  }
};

// Loads record_count records (keys user0..user{n-1}). Returns the completion time.
Result<SimTime> YcsbLoad(KvStore& store, const YcsbConfig& config, SimTime start);

// Runs operation_count ops of the given workload. The store must already be loaded.
YcsbResult YcsbRun(KvStore& store, YcsbWorkload workload, const YcsbConfig& config,
                   SimTime start);

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_KV_YCSB_H_
