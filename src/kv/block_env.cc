#include "src/kv/block_env.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace blockhead {

BlockEnv::BlockEnv(BlockDevice* device, const BlockEnvConfig& config)
    : device_(device),
      config_(config),
      page_size_(device->block_size()),
      free_map_(device->num_blocks()) {
  // Reserve the metadata region: those LBAs belong to inode tables / bitmaps / journal and
  // are never handed to file data.
  const std::uint64_t reserved =
      std::min<std::uint64_t>(config_.metadata_region_pages, device->num_blocks() / 2);
  for (std::uint64_t p = 0; p < reserved; ++p) {
    free_map_.Set(p);
  }
  alloc_cursor_ = reserved;
}

Result<SimTime> BlockEnv::MetadataUpdate(std::uint32_t pages, SimTime now) {
  if (config_.metadata_region_pages == 0 || pages == 0) {
    return now;
  }
  const std::uint64_t region =
      std::min<std::uint64_t>(config_.metadata_region_pages, device_->num_blocks() / 2);
  SimTime t = now;
  for (std::uint32_t i = 0; i < pages; ++i) {
    // Deterministic scatter over the region (golden-ratio walk): hot in-place overwrites.
    metadata_cursor_ += 0x9E3779B97F4A7C15ULL;
    const std::uint64_t lba = (metadata_cursor_ >> 16) % region;
    Result<SimTime> written = device_->WriteBlocks(Lba{lba}, 1, t);
    if (!written.ok()) {
      return written;
    }
    t = std::max(t, written.value());
  }
  return t;
}

BlockEnv::FileMeta* BlockEnv::Find(std::string_view name) {
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : &it->second;
}

const BlockEnv::FileMeta* BlockEnv::Find(std::string_view name) const {
  auto it = files_.find(name);
  return it == files_.end() ? nullptr : &it->second;
}

Result<BlockEnv::Extent> BlockEnv::AllocateRun(std::uint32_t want) {
  want = std::min(want, config_.max_extent_pages);
  // First fit, scanning from a roving cursor (classic ext-style allocation: keeps churny
  // workloads from always reusing the lowest addresses, spreading fragmentation).
  for (int pass = 0; pass < 2; ++pass) {
    const std::size_t begin = pass == 0 ? alloc_cursor_ : 0;
    const std::size_t end = pass == 0 ? free_map_.size() : alloc_cursor_;
    std::size_t i = free_map_.FindFirstClear(begin);
    while (i < end) {
      // Measure the free run starting at i.
      std::size_t run = 1;
      while (run < want && i + run < end && !free_map_.Test(i + run)) {
        ++run;
      }
      // Take whatever contiguous space is here (even a single page).
      Extent ext;
      ext.lba = i;
      ext.pages = static_cast<std::uint32_t>(run);
      for (std::size_t p = i; p < i + run; ++p) {
        free_map_.Set(p);
      }
      alloc_cursor_ = (i + run) % free_map_.size();
      return ext;
    }
  }
  return ErrorCode::kDeviceFull;
}

Result<SimTime> BlockEnv::CreateFile(std::string_view name, Lifetime hint, SimTime now) {
  if (Find(name) != nullptr) {
    return ErrorCode::kAlreadyExists;
  }
  FileMeta meta;
  meta.hint = hint;  // Stored for introspection; the block path cannot act on it.
  files_.emplace(std::string(name), std::move(meta));
  return MetadataUpdate(config_.metadata_writes_per_op, now);
}

Result<SimTime> BlockEnv::FlushTailPage(FileMeta& file, SimTime now, bool pad) {
  assert(pad ? !file.tail.empty() : file.tail.size() >= page_size_);
  const std::uint64_t bytes = pad ? file.tail.size() : page_size_;

  // Extend the last extent in place when the next page is free and adjacent.
  std::uint64_t lba;
  bool extended = false;
  if (!file.extents.empty()) {
    Extent& last = file.extents.back();
    const std::uint64_t next = last.lba + last.pages;
    if (last.bytes == static_cast<std::uint64_t>(last.pages) * page_size_ &&
        next < free_map_.size() && !free_map_.Test(next)) {
      free_map_.Set(next);
      last.pages += 1;
      last.bytes += bytes;
      lba = next;
      extended = true;
    }
  }
  if (!extended) {
    Result<Extent> run = AllocateRun(1);
    if (!run.ok()) {
      return run.status();
    }
    Extent ext = run.value();
    assert(ext.pages == 1 || ext.pages >= 1);
    // AllocateRun may hand back more than one page; trim to one and return the rest.
    for (std::uint32_t p = 1; p < ext.pages; ++p) {
      free_map_.Clear(ext.lba + p);
    }
    ext.pages = 1;
    ext.bytes = bytes;
    lba = ext.lba;
    file.extents.push_back(ext);
  }

  std::vector<std::uint8_t> page(page_size_, 0);
  std::memcpy(page.data(), file.tail.data(), static_cast<std::size_t>(bytes));
  Result<SimTime> done = device_->WriteBlocks(Lba{lba}, 1, now, page);
  if (!done.ok()) {
    return done;
  }
  file.tail.erase(file.tail.begin(), file.tail.begin() + static_cast<std::ptrdiff_t>(bytes));
  if (config_.data_pages_per_metadata_update != 0 &&
      ++data_pages_since_metadata_ >= config_.data_pages_per_metadata_update) {
    data_pages_since_metadata_ = 0;
    return MetadataUpdate(1, done.value());
  }
  return done;
}

Result<SimTime> BlockEnv::Append(std::string_view name, std::span<const std::uint8_t> data,
                                 SimTime now) {
  FileMeta* file = Find(name);
  if (file == nullptr) {
    return ErrorCode::kNotFound;
  }
  file->size += data.size();
  SimTime done = now;
  std::size_t consumed = 0;
  while (consumed < data.size()) {
    const std::size_t take =
        std::min<std::size_t>(page_size_ - file->tail.size(), data.size() - consumed);
    file->tail.insert(file->tail.end(), data.begin() + static_cast<std::ptrdiff_t>(consumed),
                      data.begin() + static_cast<std::ptrdiff_t>(consumed + take));
    consumed += take;
    if (file->tail.size() >= page_size_) {
      Result<SimTime> flushed = FlushTailPage(*file, done, /*pad=*/false);
      if (!flushed.ok()) {
        return flushed;
      }
      done = flushed.value();
    }
  }
  return done;
}

Result<SimTime> BlockEnv::Read(std::string_view name, std::uint64_t offset,
                               std::span<std::uint8_t> out, SimTime now) {
  const FileMeta* file = Find(name);
  if (file == nullptr) {
    return ErrorCode::kNotFound;
  }
  if (offset + out.size() > file->size) {
    return ErrorCode::kOutOfRange;
  }
  SimTime done_all = now;
  std::uint64_t cur = offset;
  std::size_t out_pos = 0;
  std::vector<std::uint8_t> page(page_size_);
  for (const Extent& ext : file->extents) {
    if (out_pos == out.size()) {
      break;
    }
    if (cur >= ext.bytes) {
      cur -= ext.bytes;
      continue;
    }
    while (cur < ext.bytes && out_pos < out.size()) {
      const std::uint64_t page_index = cur / page_size_;
      const std::uint64_t byte_in_page = cur % page_size_;
      const std::uint64_t chunk = std::min<std::uint64_t>(
          {page_size_ - byte_in_page, ext.bytes - cur, out.size() - out_pos});
      Result<SimTime> done = device_->ReadBlocks(Lba{ext.lba + page_index}, 1, now, page);
      if (!done.ok()) {
        return done;
      }
      done_all = std::max(done_all, done.value());
      std::memcpy(out.data() + out_pos, page.data() + byte_in_page,
                  static_cast<std::size_t>(chunk));
      out_pos += static_cast<std::size_t>(chunk);
      cur += chunk;
    }
    cur = 0;
  }
  if (out_pos < out.size()) {
    const std::size_t chunk = out.size() - out_pos;
    assert(cur + chunk <= file->tail.size());
    std::memcpy(out.data() + out_pos, file->tail.data() + cur, chunk);
  }
  return done_all;
}

Result<SimTime> BlockEnv::Sync(std::string_view name, SimTime now) {
  FileMeta* file = Find(name);
  if (file == nullptr) {
    return ErrorCode::kNotFound;
  }
  SimTime t = now;
  if (!file->tail.empty()) {
    Result<SimTime> flushed = FlushTailPage(*file, now, /*pad=*/true);
    if (!flushed.ok()) {
      return flushed;
    }
    t = flushed.value();
  }
  return MetadataUpdate(config_.metadata_writes_per_op, t);
}

Result<SimTime> BlockEnv::DeleteFile(std::string_view name, SimTime now) {
  auto it = files_.find(name);
  if (it == files_.end()) {
    return ErrorCode::kNotFound;
  }
  SimTime t = now;
  for (const Extent& ext : it->second.extents) {
    for (std::uint32_t p = 0; p < ext.pages; ++p) {
      free_map_.Clear(ext.lba + p);
    }
    // Tell the device these pages are dead (discard).
    Result<SimTime> trimmed = device_->TrimBlocks(Lba{ext.lba}, ext.pages, t);
    if (!trimmed.ok()) {
      return trimmed;
    }
    t = trimmed.value();
  }
  files_.erase(it);
  return MetadataUpdate(config_.metadata_writes_per_op, t);
}

Result<std::uint64_t> BlockEnv::FileSize(std::string_view name) const {
  const FileMeta* file = Find(name);
  if (file == nullptr) {
    return ErrorCode::kNotFound;
  }
  return file->size;
}

bool BlockEnv::Exists(std::string_view name) const { return Find(name) != nullptr; }

std::vector<std::string> BlockEnv::ListFiles() const {
  std::vector<std::string> out;
  out.reserve(files_.size());
  for (const auto& [name, meta] : files_) {
    out.push_back(name);
  }
  return out;
}

}  // namespace blockhead
