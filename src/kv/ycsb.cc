#include "src/kv/ycsb.h"

#include <algorithm>
#include <cstdio>

#include "src/util/rng.h"

namespace blockhead {

namespace {

std::string KeyOf(std::uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%012llu", static_cast<unsigned long long>(n));
  return buf;
}

std::string ValueOf(std::uint64_t n, std::size_t bytes) {
  std::string v = "v" + std::to_string(n) + "-";
  while (v.size() < bytes) {
    v += static_cast<char>('a' + (n + v.size()) % 26);
  }
  v.resize(bytes);
  return v;
}

}  // namespace

const char* YcsbName(YcsbWorkload workload) {
  switch (workload) {
    case YcsbWorkload::kA:
      return "A (50r/50u zipf)";
    case YcsbWorkload::kB:
      return "B (95r/5u zipf)";
    case YcsbWorkload::kC:
      return "C (100r zipf)";
    case YcsbWorkload::kD:
      return "D (95r-latest/5i)";
    case YcsbWorkload::kE:
      return "E (95scan/5i)";
    case YcsbWorkload::kF:
      return "F (50r/50rmw)";
  }
  return "?";
}

Result<SimTime> YcsbLoad(KvStore& store, const YcsbConfig& config, SimTime start) {
  SimTime t = start;
  for (std::uint64_t i = 0; i < config.record_count; ++i) {
    Result<SimTime> p = store.Put(KeyOf(i), ValueOf(i, config.value_bytes), t);
    if (!p.ok()) {
      return p;
    }
    t = std::max(t, p.value());
  }
  Result<SimTime> f = store.Flush(t);
  if (!f.ok()) {
    return f;
  }
  return std::max(t, f.value());
}

YcsbResult YcsbRun(KvStore& store, YcsbWorkload workload, const YcsbConfig& config,
                   SimTime start) {
  YcsbResult result;
  Rng rng(config.seed);
  ZipfGenerator zipf(config.record_count, config.zipf_theta, config.seed + 1);
  std::uint64_t next_insert = config.record_count;
  SimTime t = start;

  auto pick_key = [&]() -> std::uint64_t {
    if (workload == YcsbWorkload::kD) {
      // Read-latest: skew toward the most recently inserted keys.
      const std::uint64_t recency = zipf.Next();  // 0 = hottest.
      return next_insert > 1 + recency ? next_insert - 1 - recency : 0;
    }
    return zipf.Next();
  };

  auto do_read = [&]() -> Status {
    auto g = store.Get(KeyOf(pick_key()), t);
    if (!g.ok()) {
      return g.status();
    }
    result.read_latency.Record(g->completion > t ? g->completion - t : 0);
    result.reads++;
    if (!g->found) {
      result.not_found++;
    }
    t = std::max(t, g->completion);
    return Status::Ok();
  };

  auto do_update = [&](std::uint64_t key) -> Status {
    auto p = store.Put(KeyOf(key), ValueOf(key + result.updates, config.value_bytes), t);
    if (!p.ok()) {
      return p.status();
    }
    result.update_latency.Record(p.value() > t ? p.value() - t : 0);
    result.updates++;
    t = std::max(t, p.value());
    return Status::Ok();
  };

  auto do_insert = [&]() -> Status {
    auto p = store.Put(KeyOf(next_insert), ValueOf(next_insert, config.value_bytes), t);
    if (!p.ok()) {
      return p.status();
    }
    result.update_latency.Record(p.value() > t ? p.value() - t : 0);
    result.inserts++;
    next_insert++;
    t = std::max(t, p.value());
    return Status::Ok();
  };

  auto do_scan = [&]() -> Status {
    const std::size_t len = 1 + rng.NextBelow(config.max_scan_length);
    auto s = store.Scan(KeyOf(pick_key()), len, t);
    if (!s.ok()) {
      return s.status();
    }
    result.scan_latency.Record(s->completion > t ? s->completion - t : 0);
    result.scans++;
    result.scanned_entries += s->entries.size();
    t = std::max(t, s->completion);
    return Status::Ok();
  };

  for (std::uint64_t op = 0; op < config.operation_count; ++op) {
    Status status;
    const double roll = rng.NextDouble();
    switch (workload) {
      case YcsbWorkload::kA:
        status = roll < 0.5 ? do_read() : do_update(zipf.Next());
        break;
      case YcsbWorkload::kB:
        status = roll < 0.95 ? do_read() : do_update(zipf.Next());
        break;
      case YcsbWorkload::kC:
        status = do_read();
        break;
      case YcsbWorkload::kD:
        status = roll < 0.95 ? do_read() : do_insert();
        break;
      case YcsbWorkload::kE:
        status = roll < 0.95 ? do_scan() : do_insert();
        break;
      case YcsbWorkload::kF: {
        if (roll < 0.5) {
          status = do_read();
        } else {
          // Read-modify-write: the read half feeds the write half.
          const std::uint64_t key = zipf.Next();
          auto g = store.Get(KeyOf(key), t);
          if (!g.ok()) {
            status = g.status();
            break;
          }
          result.read_latency.Record(g->completion > t ? g->completion - t : 0);
          result.reads++;
          t = std::max(t, g->completion);
          status = do_update(key);
        }
        break;
      }
    }
    if (!status.ok()) {
      result.status = status;
      break;
    }
  }
  result.elapsed = t > start ? t - start : 0;
  return result;
}

}  // namespace blockhead
