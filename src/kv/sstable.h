// Sorted string table: the on-"disk" unit of the mini-LSM store.
//
// Layout (all little-endian), modeled on LevelDB/RocksDB:
//   [data block]*    entries: key_len u16 | key | type u8 | value_len u32 | value
//   [index]          per block: offset u64 | size u32 | last_key_len u16 | last_key
//   [bloom filter]   bit_count u32 | k u32 | bits
//   [footer, 48 B]   index_off u64 | index_len u64 | bloom_off u64 | bloom_len u64 |
//                    entry_count u64 | magic u64
//
// The builder streams blocks to the Env as they fill; the reader loads the footer, index, and
// bloom filter once at open (the "table cache") and then serves point lookups with at most one
// data-block read.

#ifndef BLOCKHEAD_SRC_KV_SSTABLE_H_
#define BLOCKHEAD_SRC_KV_SSTABLE_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/kv/env.h"
#include "src/util/status.h"
#include "src/util/types.h"

namespace blockhead {

enum class KvEntryType : std::uint8_t { kTombstone = 0, kValue = 1 };

struct KvEntry {
  std::string key;
  KvEntryType type = KvEntryType::kValue;
  std::string value;
};

// Blocked bloom-free simple bloom filter with double hashing.
class BloomFilter {
 public:
  BloomFilter() = default;

  static BloomFilter Build(const std::vector<std::string>& keys, std::uint32_t bits_per_key);
  static Result<BloomFilter> Deserialize(std::span<const std::uint8_t> bytes);

  bool MayContain(std::string_view key) const;
  std::vector<std::uint8_t> Serialize() const;
  std::uint32_t bit_count() const { return bit_count_; }

 private:
  std::uint32_t bit_count_ = 0;
  std::uint32_t k_ = 0;
  std::vector<std::uint8_t> bits_;
};

struct SSTableBuilderOptions {
  std::uint32_t block_bytes = 4096;
  std::uint32_t bloom_bits_per_key = 10;
  Lifetime hint = Lifetime::kMedium;
};

// Streams sorted entries into a new file. Add() must be called in strictly increasing key
// order; Finish() writes index/bloom/footer and syncs.
class SSTableBuilder {
 public:
  SSTableBuilder(Env* env, std::string name, const SSTableBuilderOptions& options);

  Status Start(SimTime now);  // Creates the file.
  Status Add(std::string_view key, KvEntryType type, std::string_view value, SimTime now);
  // Completes the table. Returns the sync completion time.
  Result<SimTime> Finish(SimTime now);

  const std::string& name() const { return name_; }
  std::uint64_t file_bytes() const { return offset_; }
  std::uint64_t entry_count() const { return entry_count_; }
  const std::string& smallest() const { return smallest_; }
  const std::string& largest() const { return largest_; }
  SimTime last_write_completion() const { return last_write_; }

 private:
  struct IndexEntry {
    std::uint64_t offset = 0;
    std::uint32_t size = 0;
    std::string last_key;
  };

  Status FlushBlock(SimTime now);

  Env* env_;
  std::string name_;
  SSTableBuilderOptions options_;
  std::vector<std::uint8_t> block_;
  std::vector<IndexEntry> index_;
  std::vector<std::string> keys_;  // For the bloom filter.
  std::uint64_t offset_ = 0;
  std::uint64_t entry_count_ = 0;
  std::string smallest_;
  std::string largest_;
  std::string block_last_key_;
  SimTime last_write_ = 0;
  bool started_ = false;
};

// Read handle over a finished table. Open() loads footer + index + bloom.
class SSTableReader {
 public:
  static Result<std::unique_ptr<SSTableReader>> Open(Env* env, std::string name, SimTime now);

  struct GetResult {
    bool found = false;           // Key present (as value or tombstone).
    KvEntryType type = KvEntryType::kValue;
    std::string value;
    SimTime completion = 0;
    bool bloom_skipped = false;   // Lookup answered negatively by the filter alone.
  };

  Result<GetResult> Get(std::string_view key, SimTime now) const;

  // Reads every entry in order (used by compaction).
  Result<std::vector<KvEntry>> ReadAll(SimTime now, SimTime* completion = nullptr) const;

  // Reads up to `limit` entries with key >= start_key, in order, touching only the data
  // blocks that can contain them (used by range scans).
  Result<std::vector<KvEntry>> ScanFrom(std::string_view start_key, std::size_t limit,
                                        SimTime now, SimTime* completion = nullptr) const;

  const std::string& name() const { return name_; }
  std::uint64_t entry_count() const { return entry_count_; }

 private:
  struct IndexEntry {
    std::uint64_t offset = 0;
    std::uint32_t size = 0;
    std::string last_key;
  };

  SSTableReader(Env* env, std::string name) : env_(env), name_(std::move(name)) {}

  static Status ParseBlock(std::span<const std::uint8_t> block,
                           std::vector<KvEntry>* entries);

  Env* env_;
  std::string name_;
  std::vector<IndexEntry> index_;
  BloomFilter bloom_;
  std::uint64_t entry_count_ = 0;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_KV_SSTABLE_H_
