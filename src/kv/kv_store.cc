#include "src/kv/kv_store.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <limits>

namespace blockhead {

namespace {

constexpr std::uint8_t kManifestAdd = 1;
constexpr std::uint8_t kManifestRemove = 2;
constexpr std::uint8_t kManifestWal = 3;
constexpr std::uint8_t kWalValue = 1;
constexpr std::uint8_t kWalTombstone = 2;
constexpr const char* kManifestName = "MANIFEST";

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
void PutString(std::vector<std::uint8_t>& out, std::string_view s) {
  PutU16(out, static_cast<std::uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}
  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - pos_; }
  std::uint8_t U8() { return static_cast<std::uint8_t>(Raw(1)); }
  std::uint16_t U16() { return static_cast<std::uint16_t>(Raw(2)); }
  std::uint32_t U32() { return static_cast<std::uint32_t>(Raw(4)); }
  std::uint64_t U64() { return Raw(8); }
  std::string Str() {
    const std::uint16_t len = U16();
    if (!ok_ || remaining() < len) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
    pos_ += len;
    return s;
  }

 private:
  std::uint64_t Raw(int n) {
    if (!ok_ || remaining() < static_cast<std::size_t>(n)) {
      ok_ = false;
      return 0;
    }
    std::uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += static_cast<std::size_t>(n);
    return v;
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace

KvStore::KvStore(Env* env, const KvConfig& config) : env_(env), config_(config) {
  levels_.resize(config_.max_levels);
  compaction_cursor_.resize(config_.max_levels);
}

std::string KvStore::TableName(std::uint32_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06u.sst", number);
  return buf;
}

std::string KvStore::WalName(std::uint32_t number) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06u.log", number);
  return buf;
}

Lifetime KvStore::HintForLevel(std::uint32_t level) {
  switch (level) {
    case 0:
      return Lifetime::kShort;
    case 1:
      return Lifetime::kMedium;
    case 2:
      return Lifetime::kLong;
    default:
      return Lifetime::kExtreme;
  }
}

Result<std::unique_ptr<KvStore>> KvStore::Open(Env* env, const KvConfig& config, SimTime now) {
  auto store = std::unique_ptr<KvStore>(new KvStore(env, config));
  BLOCKHEAD_RETURN_IF_ERROR(store->RecoverManifest(now));
  BLOCKHEAD_RETURN_IF_ERROR(store->RecoverWal(now));
  return store;
}

void KvStore::FrameAddRecord(const TableMeta& meta, std::vector<std::uint8_t>& out) const {
  std::vector<std::uint8_t> rec;
  rec.push_back(kManifestAdd);
  rec.push_back(static_cast<std::uint8_t>(meta.level));
  PutU32(rec, meta.file_number);
  PutU64(rec, meta.bytes);
  PutString(rec, meta.smallest);
  PutString(rec, meta.largest);
  PutU32(out, static_cast<std::uint32_t>(rec.size()));
  out.insert(out.end(), rec.begin(), rec.end());
}

Result<SimTime> KvStore::RollManifest(SimTime now) {
  // Replace the grown journal with a snapshot of the live version. (A production store would
  // write MANIFEST-new and swap a CURRENT pointer; this env has no rename, so the window
  // between delete and rewrite is accepted — see DESIGN.md.)
  Result<SimTime> deleted = env_->DeleteFile(kManifestName, now);
  if (!deleted.ok()) {
    return deleted;
  }
  Result<SimTime> created = env_->CreateFile(kManifestName, Lifetime::kShort, deleted.value());
  if (!created.ok()) {
    return created;
  }
  std::vector<std::uint8_t> blob;
  for (const auto& level : levels_) {
    for (const TableMeta& meta : level) {
      FrameAddRecord(meta, blob);
    }
  }
  std::vector<std::uint8_t> rec;
  rec.push_back(kManifestWal);
  PutU32(rec, wal_number_);
  PutU32(blob, static_cast<std::uint32_t>(rec.size()));
  blob.insert(blob.end(), rec.begin(), rec.end());
  Result<SimTime> appended = env_->Append(kManifestName, blob, created.value());
  if (!appended.ok()) {
    return appended;
  }
  return env_->Sync(kManifestName, appended.value());
}

Result<SimTime> KvStore::LogTableChange(const std::vector<TableMeta>& added,
                                        const std::vector<TableMeta>& removed,
                                        std::optional<std::uint32_t> new_wal, SimTime now) {
  std::vector<std::uint8_t> blob;
  for (const TableMeta& meta : added) {
    FrameAddRecord(meta, blob);
  }
  for (const TableMeta& meta : removed) {
    std::vector<std::uint8_t> rec;
    rec.push_back(kManifestRemove);
    PutU32(rec, meta.file_number);
    PutU32(blob, static_cast<std::uint32_t>(rec.size()));
    blob.insert(blob.end(), rec.begin(), rec.end());
  }
  if (new_wal.has_value()) {
    std::vector<std::uint8_t> rec;
    rec.push_back(kManifestWal);
    PutU32(rec, *new_wal);
    PutU32(blob, static_cast<std::uint32_t>(rec.size()));
    blob.insert(blob.end(), rec.begin(), rec.end());
  }
  // All records in one framed batch would break the per-record framing; AppendManifest frames
  // once, so write the raw concatenation of already-framed records directly.
  Result<SimTime> appended = env_->Append(kManifestName, blob, now);
  if (!appended.ok()) {
    return appended;
  }
  Result<SimTime> synced = env_->Sync(kManifestName, appended.value());
  if (!synced.ok()) {
    return synced;
  }
  const Result<std::uint64_t> size = env_->FileSize(kManifestName);
  if (size.ok() && config_.manifest_roll_bytes != 0 &&
      size.value() > config_.manifest_roll_bytes) {
    return RollManifest(synced.value());
  }
  return synced;
}

Status KvStore::RecoverManifest(SimTime now) {
  if (!env_->Exists(kManifestName)) {
    // Fresh store.
    Result<SimTime> created = env_->CreateFile(kManifestName, Lifetime::kShort, now);
    if (!created.ok()) {
      return created.status();
    }
    wal_number_ = next_file_number_++;
    created = env_->CreateFile(WalName(wal_number_), Lifetime::kShort, now);
    if (!created.ok()) {
      return created.status();
    }
    Result<SimTime> logged = LogTableChange({}, {}, wal_number_, now);
    return logged.ok() ? Status::Ok() : logged.status();
  }

  Result<std::uint64_t> size = env_->FileSize(kManifestName);
  if (!size.ok()) {
    return size.status();
  }
  std::vector<std::uint8_t> bytes(size.value());
  if (!bytes.empty()) {
    Result<SimTime> r = env_->Read(kManifestName, 0, bytes, now);
    if (!r.ok()) {
      return r.status();
    }
  }
  std::size_t pos = 0;
  while (pos + 4 <= bytes.size()) {
    std::uint32_t len = 0;
    for (int i = 0; i < 4; ++i) {
      len |= static_cast<std::uint32_t>(bytes[pos + i]) << (8 * i);
    }
    pos += 4;
    if (pos + len > bytes.size()) {
      break;  // Torn tail record.
    }
    ByteReader rec(std::span<const std::uint8_t>(bytes.data() + pos, len));
    pos += len;
    const std::uint8_t type = rec.U8();
    if (type == kManifestAdd) {
      TableMeta meta;
      meta.level = rec.U8();
      meta.file_number = rec.U32();
      meta.bytes = rec.U64();
      meta.smallest = rec.Str();
      meta.largest = rec.Str();
      if (!rec.ok() || meta.level >= config_.max_levels) {
        return Status(ErrorCode::kCorruption, "bad manifest add record");
      }
      next_file_number_ = std::max(next_file_number_, meta.file_number + 1);
      if (meta.level == 0) {
        levels_[0].insert(levels_[0].begin(), std::move(meta));  // Newest first.
      } else {
        levels_[meta.level].push_back(std::move(meta));
      }
    } else if (type == kManifestRemove) {
      const std::uint32_t file_number = rec.U32();
      for (auto& level : levels_) {
        std::erase_if(level, [file_number](const TableMeta& m) {
          return m.file_number == file_number;
        });
      }
    } else if (type == kManifestWal) {
      wal_number_ = rec.U32();
      next_file_number_ = std::max(next_file_number_, wal_number_ + 1);
    } else {
      return Status(ErrorCode::kCorruption, "unknown manifest record");
    }
  }

  // Keep sorted order in levels >= 1 and open readers everywhere.
  for (std::uint32_t level = 1; level < config_.max_levels; ++level) {
    std::sort(levels_[level].begin(), levels_[level].end(),
              [](const TableMeta& a, const TableMeta& b) { return a.smallest < b.smallest; });
  }
  for (auto& level : levels_) {
    for (TableMeta& meta : level) {
      Result<std::unique_ptr<SSTableReader>> reader =
          SSTableReader::Open(env_, TableName(meta.file_number), now);
      if (!reader.ok()) {
        return reader.status();
      }
      meta.reader = std::shared_ptr<SSTableReader>(std::move(reader).value());
    }
  }
  return Status::Ok();
}

Status KvStore::RecoverWal(SimTime now) {
  const std::string wal = WalName(wal_number_);
  if (!env_->Exists(wal)) {
    Result<SimTime> created = env_->CreateFile(wal, Lifetime::kShort, now);
    return created.ok() ? Status::Ok() : created.status();
  }
  Result<std::uint64_t> size = env_->FileSize(wal);
  if (!size.ok()) {
    return size.status();
  }
  std::vector<std::uint8_t> bytes(size.value());
  if (!bytes.empty()) {
    Result<SimTime> r = env_->Read(wal, 0, bytes, now);
    if (!r.ok()) {
      return r.status();
    }
  }
  ByteReader reader(bytes);
  while (reader.ok() && reader.remaining() > 0) {
    const std::uint8_t type = reader.U8();
    if (type != kWalValue && type != kWalTombstone) {
      break;  // Zero padding from a page-aligned sync, or torn tail.
    }
    const std::string key = reader.Str();
    const std::string value = type == kWalValue ? reader.Str() : std::string();
    if (!reader.ok()) {
      break;
    }
    memtable_bytes_ += key.size() + value.size() + 16;
    if (type == kWalValue) {
      memtable_[key] = value;
    } else {
      memtable_[key] = std::nullopt;
    }
  }
  return Status::Ok();
}

Result<SimTime> KvStore::WriteWalRecord(std::string_view key, KvEntryType type,
                                        std::string_view value, SimTime now) {
  std::vector<std::uint8_t> rec;
  rec.push_back(type == KvEntryType::kValue ? kWalValue : kWalTombstone);
  PutString(rec, key);
  if (type == KvEntryType::kValue) {
    PutString(rec, value);
  }
  Result<SimTime> appended = env_->Append(WalName(wal_number_), rec, now);
  if (!appended.ok()) {
    return appended;
  }
  if (config_.sync_wal_every_put) {
    return env_->Sync(WalName(wal_number_), appended.value());
  }
  return appended;
}

Result<SimTime> KvStore::ApplyWrite(std::string_view key, KvEntryType type,
                                    std::string_view value, SimTime now) {
  // Respect any write stall from compaction debt.
  if (now < stall_until_) {
    now = stall_until_;
  }
  Result<SimTime> logged = WriteWalRecord(key, type, value, now);
  if (!logged.ok()) {
    return logged;
  }
  memtable_bytes_ += key.size() + value.size() + 16;
  const bool audit = audit_memtable_ != nullptr && audit_memtable_->armed();
  std::uint64_t pre = 0;
  bool existed = false;
  if (audit) {
    auto it = memtable_.find(key);
    if (it != memtable_.end()) {
      existed = true;
      pre = MemtableEntryHash(it->first, it->second);
    }
  }
  if (type == KvEntryType::kValue) {
    memtable_[std::string(key)] = std::string(value);
  } else {
    memtable_[std::string(key)] = std::nullopt;
  }
  if (audit) {
    const std::uint64_t post = MemtableEntryHash(key, memtable_.find(key)->second);
    if (existed) {
      audit_memtable_->Replace(logged.value(), pre, post);
    } else {
      audit_memtable_->Insert(logged.value(), post);
    }
  }
  stats_.user_bytes_written += key.size() + value.size();
  if (provenance_ingress_ != nullptr) {
    *provenance_ingress_ += Bytes{key.size() + value.size()};
  }
  if (memtable_bytes_ >= config_.memtable_bytes) {
    Result<SimTime> flushed = FlushMemtable(now);
    if (!flushed.ok()) {
      return flushed;
    }
  }
  return logged;
}

Result<SimTime> KvStore::Put(std::string_view key, std::string_view value, SimTime now) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kKv, ProfOp::kWrite);
  stats_.puts++;
  Tracer::Span span;
  if (telemetry_ != nullptr) {
    span = telemetry_->tracer.Start(metric_prefix_ + ".put", now);
  }
  Result<SimTime> done = ApplyWrite(key, KvEntryType::kValue, value, now);
  if (done.ok()) {
    span.End(done.value());
  }
  return done;
}

Result<SimTime> KvStore::Delete(std::string_view key, SimTime now) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kKv, ProfOp::kOther);
  stats_.deletes++;
  return ApplyWrite(key, KvEntryType::kTombstone, {}, now);
}

Result<SimTime> KvStore::FlushMemtable(SimTime now) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kKv, ProfOp::kFlush);
  if (memtable_.empty()) {
    return now;
  }
  // The L0 table the flush writes is LSM housekeeping, not foreground user data.
  WriteProvenance::CauseScope cause(ProvenanceOf(telemetry_), WriteCause::kLsmFlush,
                                    StackLayer::kKv);
  const std::uint32_t file_number = next_file_number_++;
  SSTableBuilderOptions opts;
  opts.block_bytes = config_.block_bytes;
  opts.bloom_bits_per_key = config_.bloom_bits_per_key;
  opts.hint = HintForLevel(0);
  SSTableBuilder builder(env_, TableName(file_number), opts);
  BLOCKHEAD_RETURN_IF_ERROR(builder.Start(now));
  for (const auto& [key, value] : memtable_) {
    BLOCKHEAD_RETURN_IF_ERROR(builder.Add(
        key, value.has_value() ? KvEntryType::kValue : KvEntryType::kTombstone,
        value.has_value() ? std::string_view(*value) : std::string_view(), now));
  }
  Result<SimTime> finished = builder.Finish(now);
  if (!finished.ok()) {
    return finished;
  }
  SimTime t = finished.value();

  TableMeta meta;
  meta.file_number = file_number;
  meta.level = 0;
  meta.bytes = builder.file_bytes();
  meta.smallest = builder.smallest();
  meta.largest = builder.largest();
  Result<std::unique_ptr<SSTableReader>> reader =
      SSTableReader::Open(env_, TableName(file_number), t);
  if (!reader.ok()) {
    return reader.status();
  }
  meta.reader = std::shared_ptr<SSTableReader>(std::move(reader).value());
  stats_.flushes++;
  stats_.bytes_flushed += meta.bytes;

  // Swap in a fresh WAL; the old one is fully covered by the table.
  const std::uint32_t old_wal = wal_number_;
  wal_number_ = next_file_number_++;
  Result<SimTime> created = env_->CreateFile(WalName(wal_number_), Lifetime::kShort, t);
  if (!created.ok()) {
    return created;
  }
  levels_[0].insert(levels_[0].begin(), meta);
  if (audit_manifest_ != nullptr && audit_manifest_->armed()) {
    audit_manifest_->Replace(t, WalEntryHash(old_wal), WalEntryHash(wal_number_));
    audit_manifest_->Insert(t, TableEntryHash(meta));
  }
  Result<SimTime> logged = LogTableChange({meta}, {}, wal_number_, t);
  if (!logged.ok()) {
    return logged;
  }
  t = logged.value();
  Result<SimTime> deleted = env_->DeleteFile(WalName(old_wal), t);
  if (!deleted.ok()) {
    return deleted;
  }
  if (audit_memtable_ != nullptr && audit_memtable_->armed()) {
    for (const auto& [mkey, mvalue] : memtable_) {
      audit_memtable_->Remove(t, MemtableEntryHash(mkey, mvalue));
    }
  }
  memtable_.clear();
  memtable_bytes_ = 0;
  if (telemetry_ != nullptr) {
    telemetry_->events.Append(t, TimelineEventType::kCompaction, metric_prefix_,
                              "flush memtable table " + std::to_string(file_number) +
                                  " bytes " + std::to_string(meta.bytes),
                              file_number, meta.bytes);
    telemetry_->timeline.RecordMaintenance(metric_prefix_ + ".compaction", "flush", now, t);
  }

  Result<SimTime> compacted = MaybeCompact(t);
  if (!compacted.ok()) {
    return compacted;
  }
  if (levels_[0].size() >= config_.l0_stall_trigger) {
    stall_until_ = std::max(stall_until_, compacted.value());
    stats_.stall_events++;
  }
  return t;
}

Result<SimTime> KvStore::Flush(SimTime now) { return FlushMemtable(now); }

std::uint64_t KvStore::LevelBytes(std::uint32_t level) const {
  std::uint64_t total = 0;
  for (const TableMeta& meta : levels_[level]) {
    total += meta.bytes;
  }
  return total;
}

std::uint64_t KvStore::LevelTargetBytes(std::uint32_t level) const {
  if (level == 0 || level + 1 >= config_.max_levels) {
    return std::numeric_limits<std::uint64_t>::max();
  }
  double target = static_cast<double>(config_.level_base_bytes);
  for (std::uint32_t l = 1; l < level; ++l) {
    target *= config_.level_multiplier;
  }
  return static_cast<std::uint64_t>(target);
}

Result<SimTime> KvStore::MaybeCompact(SimTime now) {
  SimTime t = now;
  while (true) {
    std::uint32_t level_to_compact = config_.max_levels;
    if (levels_[0].size() >= config_.l0_compaction_trigger) {
      level_to_compact = 0;
    } else {
      for (std::uint32_t level = 1; level + 1 < config_.max_levels; ++level) {
        if (LevelBytes(level) > LevelTargetBytes(level)) {
          level_to_compact = level;
          break;
        }
      }
    }
    if (level_to_compact >= config_.max_levels) {
      return t;
    }
    Result<SimTime> done = CompactLevel(level_to_compact, t);
    if (!done.ok()) {
      return done;
    }
    t = done.value();
  }
}

Result<SimTime> KvStore::CompactLevel(std::uint32_t level, SimTime now) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kKv, ProfOp::kCompaction);
  const std::uint32_t out_level = level + 1;
  assert(out_level < config_.max_levels);
  // Everything the merge writes (output tables + manifest updates) is compaction work.
  WriteProvenance::CauseScope cause(ProvenanceOf(telemetry_), WriteCause::kLsmCompaction,
                                    StackLayer::kKv);

  // Upper inputs.
  std::vector<TableMeta> upper;
  if (level == 0) {
    upper = levels_[0];  // All of L0 (they overlap arbitrarily).
  } else {
    // Round-robin by key cursor.
    auto& tables = levels_[level];
    assert(!tables.empty());
    std::size_t pick = 0;
    for (std::size_t i = 0; i < tables.size(); ++i) {
      if (tables[i].smallest > compaction_cursor_[level]) {
        pick = i;
        break;
      }
    }
    upper.push_back(tables[pick]);
    compaction_cursor_[level] = tables[pick].largest;
  }
  std::string range_lo = upper.front().smallest;
  std::string range_hi = upper.front().largest;
  for (const TableMeta& meta : upper) {
    range_lo = std::min(range_lo, meta.smallest);
    range_hi = std::max(range_hi, meta.largest);
  }

  // Overlapping lower inputs.
  std::vector<TableMeta> lower;
  for (const TableMeta& meta : levels_[out_level]) {
    if (meta.largest >= range_lo && meta.smallest <= range_hi) {
      lower.push_back(meta);
    }
  }

  // Merge: apply lower level first, then upper from oldest to newest, so newer entries win.
  std::map<std::string, KvEntry> merged;
  SimTime t = now;
  auto absorb = [&](const TableMeta& meta) -> Status {
    SimTime completion = t;
    Result<std::vector<KvEntry>> entries = meta.reader->ReadAll(t, &completion);
    if (!entries.ok()) {
      return entries.status();
    }
    t = std::max(t, completion);
    for (KvEntry& entry : entries.value()) {
      merged[entry.key] = std::move(entry);
    }
    return Status::Ok();
  };
  for (const TableMeta& meta : lower) {
    BLOCKHEAD_RETURN_IF_ERROR(absorb(meta));
  }
  for (auto it = upper.rbegin(); it != upper.rend(); ++it) {  // Oldest first.
    BLOCKHEAD_RETURN_IF_ERROR(absorb(*it));
  }

  // Write output tables, dropping tombstones when compacting into the bottom level.
  const bool bottom = out_level + 1 >= config_.max_levels;
  std::vector<TableMeta> outputs;
  std::unique_ptr<SSTableBuilder> builder;
  std::uint32_t builder_file_number = 0;
  SSTableBuilderOptions opts;
  opts.block_bytes = config_.block_bytes;
  opts.bloom_bits_per_key = config_.bloom_bits_per_key;
  opts.hint = HintForLevel(out_level);

  auto finish_builder = [&]() -> Status {
    if (builder == nullptr || builder->entry_count() == 0) {
      builder.reset();
      return Status::Ok();
    }
    Result<SimTime> finished = builder->Finish(t);
    if (!finished.ok()) {
      return finished.status();
    }
    t = std::max(t, finished.value());
    TableMeta meta;
    meta.file_number = builder_file_number;
    meta.level = out_level;
    meta.bytes = builder->file_bytes();
    meta.smallest = builder->smallest();
    meta.largest = builder->largest();
    Result<std::unique_ptr<SSTableReader>> reader = SSTableReader::Open(env_, builder->name(), t);
    if (!reader.ok()) {
      return reader.status();
    }
    meta.reader = std::shared_ptr<SSTableReader>(std::move(reader).value());
    stats_.bytes_compacted += meta.bytes;
    outputs.push_back(std::move(meta));
    builder.reset();
    return Status::Ok();
  };

  for (auto& [key, entry] : merged) {
    if (bottom && entry.type == KvEntryType::kTombstone) {
      continue;
    }
    if (builder == nullptr) {
      builder_file_number = next_file_number_++;
      builder = std::make_unique<SSTableBuilder>(env_, TableName(builder_file_number), opts);
      BLOCKHEAD_RETURN_IF_ERROR(builder->Start(t));
    }
    BLOCKHEAD_RETURN_IF_ERROR(builder->Add(key, entry.type, entry.value, t));
    if (builder->file_bytes() >= config_.target_table_bytes) {
      BLOCKHEAD_RETURN_IF_ERROR(finish_builder());
    }
  }
  BLOCKHEAD_RETURN_IF_ERROR(finish_builder());

  // Commit: manifest first, then drop inputs.
  std::vector<TableMeta> removed = upper;
  removed.insert(removed.end(), lower.begin(), lower.end());
  Result<SimTime> logged = LogTableChange(outputs, removed, std::nullopt, t);
  if (!logged.ok()) {
    return logged;
  }
  t = logged.value();

  auto in_removed = [&removed](const TableMeta& meta) {
    return std::any_of(removed.begin(), removed.end(), [&meta](const TableMeta& r) {
      return r.file_number == meta.file_number;
    });
  };
  std::erase_if(levels_[level], in_removed);
  std::erase_if(levels_[out_level], in_removed);
  if (audit_manifest_ != nullptr && audit_manifest_->armed()) {
    for (const TableMeta& meta : removed) {
      audit_manifest_->Remove(t, TableEntryHash(meta));
    }
    for (const TableMeta& meta : outputs) {
      audit_manifest_->Insert(t, TableEntryHash(meta));
    }
  }
  for (TableMeta& meta : outputs) {
    levels_[out_level].push_back(std::move(meta));
  }
  std::sort(levels_[out_level].begin(), levels_[out_level].end(),
            [](const TableMeta& a, const TableMeta& b) { return a.smallest < b.smallest; });
  for (const TableMeta& meta : removed) {
    Result<SimTime> deleted = env_->DeleteFile(TableName(meta.file_number), t);
    if (!deleted.ok()) {
      return deleted;
    }
    t = deleted.value();
  }
  stats_.compactions++;
  if (telemetry_ != nullptr) {
    telemetry_->events.Append(t, TimelineEventType::kCompaction, metric_prefix_,
                              "compact L" + std::to_string(level) + " -> L" +
                                  std::to_string(out_level) + " inputs " +
                                  std::to_string(removed.size()) + " outputs " +
                                  std::to_string(outputs.size()),
                              level, out_level);
    telemetry_->timeline.RecordMaintenance(metric_prefix_ + ".compaction",
                                           "compact_l" + std::to_string(level), now, t);
  }
  return t;
}

Result<KvStore::GetResult> KvStore::Get(std::string_view key, SimTime now) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kKv, ProfOp::kRead);
  stats_.gets++;
  Tracer::Span span;
  if (telemetry_ != nullptr) {
    span = telemetry_->tracer.Start(metric_prefix_ + ".get", now);
  }
  GetResult result;
  result.completion = now;

  // 1. Memtable.
  auto it = memtable_.find(key);
  if (it != memtable_.end()) {
    if (it->second.has_value()) {
      result.found = true;
      result.value = *it->second;
      stats_.gets_found++;
    }
    span.End(now);
    return result;
  }

  SimTime t = now;
  auto probe = [&](const TableMeta& meta) -> Result<bool> {
    Result<SSTableReader::GetResult> r = meta.reader->Get(key, t);
    if (!r.ok()) {
      return r.status();
    }
    t = std::max(t, r->completion);
    if (r->bloom_skipped) {
      stats_.bloom_skips++;
    }
    if (!r->found) {
      return false;
    }
    if (r->type == KvEntryType::kValue) {
      result.found = true;
      result.value = std::move(r->value);
      stats_.gets_found++;
    }
    return true;  // Found a definitive answer (value or tombstone).
  };

  // 2. L0, newest first.
  for (const TableMeta& meta : levels_[0]) {
    if (key < meta.smallest || key > meta.largest) {
      continue;
    }
    Result<bool> done = probe(meta);
    if (!done.ok()) {
      return done.status();
    }
    if (done.value()) {
      result.completion = t;
      span.End(t);
      return result;
    }
  }
  // 3. Sorted levels: at most one candidate table per level.
  for (std::uint32_t level = 1; level < config_.max_levels; ++level) {
    const auto& tables = levels_[level];
    auto candidate = std::upper_bound(
        tables.begin(), tables.end(), key,
        [](std::string_view k, const TableMeta& m) { return k < std::string_view(m.smallest); });
    if (candidate == tables.begin()) {
      continue;
    }
    --candidate;
    if (key < candidate->smallest || key > candidate->largest) {
      continue;
    }
    Result<bool> done = probe(*candidate);
    if (!done.ok()) {
      return done.status();
    }
    if (done.value()) {
      result.completion = t;
      span.End(t);
      return result;
    }
  }
  result.completion = t;
  span.End(t);
  return result;
}

Result<KvStore::ScanResult> KvStore::Scan(std::string_view start_key, std::size_t limit,
                                          SimTime now) {
  SelfProfiler::Scope prof_scope(ProfilerOf(telemetry_), ProfSubsystem::kKv, ProfOp::kRead);
  ScanResult result;
  result.completion = now;
  if (limit == 0) {
    return result;
  }
  // Gather candidates per source with slack (tombstones and shadowed versions consume
  // candidates), then merge with newest-wins precedence. Sources are ranked newest-first:
  // memtable (rank 0), L0 newest..oldest, then deeper levels.
  const std::size_t fetch = limit + 64;
  struct Candidate {
    std::size_t rank;
    KvEntryType type;
    std::string value;
  };
  std::map<std::string, Candidate> merged;
  std::size_t rank = 0;

  auto absorb = [&merged](std::size_t source_rank, const std::string& key, KvEntryType type,
                          std::string value) {
    auto it = merged.find(key);
    if (it == merged.end() || source_rank < it->second.rank) {
      merged[key] = Candidate{source_rank, type, std::move(value)};
    }
  };

  std::size_t taken = 0;
  for (auto it = memtable_.lower_bound(start_key); it != memtable_.end() && taken < fetch;
       ++it, ++taken) {
    absorb(0, it->first,
           it->second.has_value() ? KvEntryType::kValue : KvEntryType::kTombstone,
           it->second.value_or(std::string()));
  }
  rank = 1;
  SimTime t = now;
  auto absorb_table = [&](const TableMeta& meta) -> Status {
    if (std::string_view(meta.largest) < start_key) {
      return Status::Ok();
    }
    SimTime completion = t;
    Result<std::vector<KvEntry>> entries = meta.reader->ScanFrom(start_key, fetch, t,
                                                                 &completion);
    if (!entries.ok()) {
      return entries.status();
    }
    t = std::max(t, completion);
    for (KvEntry& entry : entries.value()) {
      absorb(rank, entry.key, entry.type, std::move(entry.value));
    }
    ++rank;
    return Status::Ok();
  };
  for (const TableMeta& meta : levels_[0]) {
    BLOCKHEAD_RETURN_IF_ERROR(absorb_table(meta));
  }
  for (std::uint32_t level = 1; level < config_.max_levels; ++level) {
    // Sorted, non-overlapping tables: start at the first table that can contain start_key and
    // stop once this level has contributed enough candidates.
    const auto& tables = levels_[level];
    auto it = std::lower_bound(tables.begin(), tables.end(), start_key,
                               [](const TableMeta& m, std::string_view k) {
                                 return std::string_view(m.largest) < k;
                               });
    std::size_t level_candidates = 0;
    for (; it != tables.end() && level_candidates < fetch; ++it) {
      const std::size_t before = merged.size();
      BLOCKHEAD_RETURN_IF_ERROR(absorb_table(*it));
      level_candidates += merged.size() - before + 1;  // +1 guards zero-growth loops.
    }
  }

  for (auto& [key, candidate] : merged) {
    if (result.entries.size() >= limit) {
      break;
    }
    if (candidate.type == KvEntryType::kValue) {
      result.entries.emplace_back(key, std::move(candidate.value));
    }
  }
  result.completion = t;
  return result;
}

std::vector<std::uint32_t> KvStore::LevelTableCounts() const {
  std::vector<std::uint32_t> counts;
  counts.reserve(levels_.size());
  for (const auto& level : levels_) {
    counts.push_back(static_cast<std::uint32_t>(level.size()));
  }
  return counts;
}

KvStore::~KvStore() { AttachTelemetry(nullptr); }

void KvStore::AttachTelemetry(Telemetry* telemetry, std::string_view prefix) {
  if (telemetry_ != nullptr) {
    PublishMetrics();
    telemetry_->registry.RemoveProvider(metric_prefix_);
  }
  telemetry_ = telemetry;
  metric_prefix_ = std::string(prefix);
  if (telemetry_ == nullptr) {
    provenance_ingress_ = nullptr;
    audit_memtable_ = nullptr;
    audit_manifest_ = nullptr;
    return;
  }
  telemetry_->registry.AddProvider(metric_prefix_, [this] { PublishMetrics(); });
  provenance_ingress_ = telemetry_->provenance.RegisterDomain(metric_prefix_);
  audit_memtable_ = telemetry_->audit.Register(metric_prefix_ + ".memtable");
  audit_manifest_ = telemetry_->audit.Register(metric_prefix_ + ".manifest");
}

std::uint64_t KvStore::MemtableEntryHash(std::string_view key,
                                         const std::optional<std::string>& value) {
  return AuditHashWords({AuditHashBytes(key),
                         value.has_value() ? AuditHashBytes(*value) : 0,
                         value.has_value() ? 1u : 0u});
}

std::uint64_t KvStore::TableEntryHash(const TableMeta& meta) {
  return AuditHashWords({meta.file_number, meta.level, meta.bytes,
                         AuditHashBytes(meta.smallest), AuditHashBytes(meta.largest)});
}

void KvStore::PublishMetrics() {
  MetricRegistry& reg = telemetry_->registry;
  const std::string& p = metric_prefix_;
  reg.GetCounter(p + ".puts")->Set(stats_.puts);
  reg.GetCounter(p + ".deletes")->Set(stats_.deletes);
  reg.GetCounter(p + ".gets")->Set(stats_.gets);
  reg.GetCounter(p + ".gets_found")->Set(stats_.gets_found);
  reg.GetCounter(p + ".user_bytes_written")->Set(stats_.user_bytes_written);
  reg.GetCounter(p + ".flushes")->Set(stats_.flushes);
  reg.GetCounter(p + ".compactions")->Set(stats_.compactions);
  reg.GetCounter(p + ".bytes_flushed")->Set(stats_.bytes_flushed);
  reg.GetCounter(p + ".bytes_compacted")->Set(stats_.bytes_compacted);
  reg.GetCounter(p + ".bloom_skips")->Set(stats_.bloom_skips);
  reg.GetCounter(p + ".stall_events")->Set(stats_.stall_events);
  reg.GetGauge(p + ".lsm_write_amplification")->Set(LsmWriteAmplification());
}

double KvStore::LsmWriteAmplification() const {
  if (stats_.user_bytes_written == 0) {
    return 1.0;
  }
  return static_cast<double>(stats_.bytes_flushed + stats_.bytes_compacted) /
         static_cast<double>(stats_.user_bytes_written);
}

}  // namespace blockhead
