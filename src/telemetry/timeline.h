// Deterministic SimTime event timeline: Chrome-trace/Perfetto export plus utilization
// time-series.
//
// The timeline answers the question the paper's quantitative claims hinge on: *when* things
// happen — which GC copies ran under which host reads, how write-pointer serialization spaces
// out writes, how plane utilization breathes as zones fill and reset. It records three kinds
// of data, all stamped with model time only (never the wall clock), so two same-seed runs
// serialize byte-identically:
//
//   * Span slices  — every completed Tracer span (a KV Get, an FTL write) becomes a duration
//     slice on a per-span-name track under the "host ops" process (pid 0).
//   * Maintenance slices — device reclamation work (GC copy reads/programs, block erases,
//     zone resets) on per-plane tracks under the "device maintenance" process (pid 1), so GC
//     interference is visible as overlap between pid-0 and pid-1 tracks.
//   * Samples      — per-plane/per-channel busy fractions and free-space/WA gauges, sampled on
//     a fixed model-time cadence into named series ("utilization" process, pid 2, rendered as
//     counter tracks).
//
// Sampling is pull-based and grouped per layer: a layer registers a sampler group under its
// metric prefix and calls AdvanceGroup(group, now) after each operation; whenever `now`
// crosses the sampling grid the timeline emits one sample per registered series. Sampler
// callbacks receive the grid boundary being emitted, so cumulative values can be settled
// exactly up to that instant. kRate samplers report a cumulative value (e.g. busy
// nanoseconds) and the timeline emits the windowed rate of change — for busy-ns settled at
// the boundary (see BusySeries) this is exactly the 0..1 busy fraction. Groups advance
// independently, so two stacks driven over disjoint phases of a bench each produce full
// series.
//
// The timeline is disabled by default and costs one branch per call site until Enable()d
// (benches enable it for --trace/--timeseries). Slice and sample stores are bounded rings:
// overflow evicts the oldest record and counts it, deterministically.

#ifndef BLOCKHEAD_SRC_TELEMETRY_TIMELINE_H_
#define BLOCKHEAD_SRC_TELEMETRY_TIMELINE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/core/shard_safety.h"
#include "src/util/types.h"

namespace blockhead {

class SelfProfiler;  // Dual-clock export: host-clock slices ride along (selfprof module).

// Cumulative busy time of a serially-used resource (a plane, a channel bus), settled at
// sample boundaries. The simulator books an operation's whole service interval at issue time
// even though it extends into the model future; a plain cumulative counter would therefore
// credit minutes of service into the issue window and report busy "fractions" far above 1.
// BusySeries keeps the booked intervals and SettledNsAt(t) counts only the portion at or
// before `t`, carrying the overhang into later windows — a kRate sampler over it yields a
// true 0..1 utilization. Intervals must be booked with nondecreasing start times and
// boundaries queried in nondecreasing order; serialized resources and the group clock
// guarantee both. A booked start earlier than an already-queried boundary (the sampling
// clock, driven by sibling resources, can race ahead of an idle resource) is clipped to that
// boundary: already-reported windows are immutable, so the pre-boundary portion is dropped
// rather than mis-credited to the current window.
class BusySeries {
 public:
  void Book(SimTime start, SimTime end) {
    if (start < settled_t_) {
      start = settled_t_;
    }
    if (end <= start) {
      return;
    }
    if (!intervals_.empty() && start <= intervals_.back().second) {
      if (end > intervals_.back().second) {
        intervals_.back().second = end;
      }
      return;
    }
    intervals_.emplace_back(start, end);
  }

  // Busy nanoseconds accumulated at or before `t`. Fully-settled intervals are retired, so
  // the queue only ever holds work still in flight at the last queried boundary.
  std::uint64_t SettledNsAt(SimTime t) {
    if (t > settled_t_) {
      settled_t_ = t;
    }
    while (!intervals_.empty() && intervals_.front().second <= t) {
      settled_ += intervals_.front().second - intervals_.front().first;
      intervals_.pop_front();
    }
    if (!intervals_.empty() && intervals_.front().first < t) {
      settled_ += t - intervals_.front().first;
      intervals_.front().first = t;
    }
    return settled_;
  }

 private:
  std::deque<std::pair<SimTime, SimTime>> intervals_
      BLOCKHEAD_SIM_GLOBAL;  // Disjoint, ordered, merged.
  std::uint64_t settled_ BLOCKHEAD_SIM_GLOBAL = 0;
  SimTime settled_t_
      BLOCKHEAD_SIM_GLOBAL = 0;  // Highest boundary queried; books before it are clipped.
};

struct TimelineConfig {
  // Sampling cadence for all sampler groups (model time).
  SimTime sample_interval = 100 * kMicrosecond;
  // Ring-buffer bounds; overflow evicts the oldest record and bumps the dropped counters.
  std::size_t max_slices = 1u << 20;
  std::size_t max_samples = 1u << 20;
};

class Timeline {
 public:
  // Chrome-trace process ids used for track grouping.
  static constexpr std::uint32_t kHostPid = 0;         // Tracer span slices.
  static constexpr std::uint32_t kMaintenancePid = 1;  // GC/erase/reset slices.
  static constexpr std::uint32_t kUtilizationPid = 2;  // Sampled counter series.
  static constexpr std::uint32_t kSelfProfilePid = 3;  // Host-clock self-profile slices.

  Timeline() = default;
  Timeline(const Timeline&) = delete;
  Timeline& operator=(const Timeline&) = delete;

  // Turns recording on. Clears previously recorded slices/samples and resets every sampler
  // group's clock, so a bench that enables late still gets grid-aligned samples.
  void Enable(const TimelineConfig& config = TimelineConfig{});
  bool enabled() const { return enabled_; }
  const TimelineConfig& config() const { return config_; }

  // Records a completed tracer span as a slice on the per-name host track. Called by Tracer.
  void RecordSpan(std::string_view name, SimTime begin, SimTime end) {
    if (enabled_) {
      PushSlice(kHostPid, name, name, begin, end);
    }
  }

  // Records maintenance work (GC copy read/program, erase, reset) as a slice on `track`
  // (conventionally "<prefix>.plane<i>" so per-plane pipelines render as clean rows).
  void RecordMaintenance(std::string_view track, std::string_view name, SimTime begin,
                         SimTime end) {
    if (enabled_) {
      PushSlice(kMaintenancePid, track, name, begin, end);
    }
  }

  // Records a host-process slice on an explicit track (reqpath exemplar victims render on
  // per-op-class tracks instead of the per-span-name tracks RecordSpan uses).
  void RecordHostSlice(std::string_view track, std::string_view name, SimTime begin,
                       SimTime end) {
    if (enabled_) {
      PushSlice(kHostPid, track, name, begin, end);
    }
  }

  // Records a flow arrow from a maintenance track (the interfering GC/compaction slice) to a
  // host track (the victim request). Rendered as a Chrome-trace flow-event pair ("s"/"f"),
  // which Perfetto draws as an arrow between the slices enclosing the two endpoints.
  void RecordFlowArrow(std::string_view name, std::string_view from_maintenance_track,
                       SimTime from_t, std::string_view to_host_track, SimTime to_t);

  enum class SampleKind {
    kInstant,  // Emit the sampled value as-is (gauges: free blocks, WA).
    kRate,     // Emit (value - previous) / window_ns (cumulative busy-ns -> busy fraction).
  };

  // Get-or-creates a sampler group keyed by `id` (a layer's metric prefix). Returns a handle
  // for AdvanceGroup. Re-creating an existing id drops its samplers and reuses the handle.
  int AddSamplerGroup(std::string_view id);

  // Registers a series in a group. `fn` is polled at each sample point with the grid
  // boundary being emitted (kInstant samplers may ignore it); series appear in the CSV and
  // as counter tracks in the trace. Registration order fixes the emission order.
  void AddSampler(int group, std::string_view series, SampleKind kind,
                  std::function<double(SimTime)> fn);

  // Drops a group's samplers (the handle stays valid but inert). Layers call this on detach.
  void RemoveSamplerGroup(std::string_view id);

  // Advances a group's sampling clock to `now`, emitting one sample per series each time the
  // grid is crossed. Cheap no-op when disabled or the grid was not reached.
  void AdvanceGroup(int group, SimTime now) {
    if (enabled_ && group >= 0 && now >= groups_[static_cast<std::size_t>(group)].next_due) {
      SampleGroup(static_cast<std::size_t>(group), now);
    }
  }

  std::uint64_t slices_recorded() const { return slices_recorded_; }
  std::uint64_t slices_dropped() const { return slices_dropped_; }
  std::uint64_t flows_recorded() const { return flows_recorded_; }
  std::uint64_t samples_recorded() const { return samples_recorded_; }
  std::uint64_t samples_dropped() const { return samples_dropped_; }
  std::size_t num_tracks() const { return tracks_.size(); }
  std::size_t num_series() const { return series_names_.size(); }

  // Chrome-trace JSON (load in Perfetto / chrome://tracing). Deterministic: metadata first
  // (process/thread names in track-creation order), then slices and samples merged by
  // (timestamp, record sequence). Timestamps are microseconds with nanosecond precision.
  //
  // Dual-clock mode: passing a SelfProfiler appends its host-clock slices as a fourth
  // process ("self-profile (host clock)", pid 3) with one track per simulator subsystem.
  // Both clocks start at ~0 (SimTime 0 and the profiler's Enable() epoch), so simulated-time
  // slices and the wall-clock cost that produced them render side by side on one time axis —
  // the trace is no longer byte-deterministic once host slices are included, which is why
  // benches only pass the profiler under --perf.
  std::string ExportChromeTrace(const SelfProfiler* host_profile = nullptr) const;

  // Sampled series as CSV: "series,t_ns,value", rows ordered by (t_ns, record sequence).
  std::string ExportTimeSeriesCsv() const;

 private:
  struct Slice {
    SimTime begin = 0;
    SimTime end = 0;
    std::uint64_t seq = 0;
    std::uint32_t name_id = 0;
    std::uint32_t track = 0;  // Index into tracks_.
  };

  struct Sample {
    SimTime t = 0;
    std::uint64_t seq = 0;
    std::uint32_t series = 0;  // Index into series_names_.
    double value = 0.0;
  };

  struct Track {
    std::uint32_t pid = 0;
    std::uint32_t tid = 0;  // Per-pid ordinal, in creation order.
    std::string name;
  };

  struct Flow {
    SimTime from_t = 0;
    SimTime to_t = 0;
    std::uint64_t seq = 0;  // Doubles as the flow id in the export.
    std::uint32_t name_id = 0;
    std::uint32_t from_track = 0;
    std::uint32_t to_track = 0;
  };

  struct Sampler {
    std::uint32_t series = 0;
    SampleKind kind = SampleKind::kInstant;
    std::function<double(SimTime)> fn;
    double prev = 0.0;  // Last cumulative value (kRate).
  };

  struct Group {
    std::string id;
    std::vector<Sampler> samplers;
    SimTime last = 0;      // Last emitted grid point.
    SimTime next_due = 0;  // Next grid point that triggers emission.
  };

  std::uint32_t InternName(std::string_view name);
  std::uint32_t InternTrack(std::uint32_t pid, std::string_view name);
  std::uint32_t InternSeries(std::string_view name);
  void PushSlice(std::uint32_t pid, std::string_view track, std::string_view name,
                 SimTime begin, SimTime end);
  void SampleGroup(std::size_t group, SimTime now);

  bool enabled_ BLOCKHEAD_SIM_GLOBAL = false;
  TimelineConfig config_ BLOCKHEAD_SIM_GLOBAL;
  std::uint64_t next_seq_ BLOCKHEAD_SIM_GLOBAL = 1;

  std::vector<std::string> names_ BLOCKHEAD_SIM_GLOBAL;
  std::map<std::string, std::uint32_t, std::less<>> name_ids_ BLOCKHEAD_SIM_GLOBAL;
  std::vector<Track> tracks_ BLOCKHEAD_SIM_GLOBAL;
  std::map<std::string, std::uint32_t, std::less<>> track_ids_
      BLOCKHEAD_SIM_GLOBAL;  // Key: "<pid>/<name>".
  std::vector<std::string> series_names_ BLOCKHEAD_SIM_GLOBAL;
  std::map<std::string, std::uint32_t, std::less<>> series_ids_ BLOCKHEAD_SIM_GLOBAL;

  std::deque<Slice> slices_ BLOCKHEAD_SIM_GLOBAL;
  std::deque<Sample> samples_ BLOCKHEAD_SIM_GLOBAL;
  std::vector<Flow> flows_ BLOCKHEAD_SIM_GLOBAL;
  std::uint64_t flows_recorded_ BLOCKHEAD_SIM_GLOBAL = 0;
  std::uint64_t slices_recorded_ BLOCKHEAD_SIM_GLOBAL = 0;
  std::uint64_t slices_dropped_ BLOCKHEAD_SIM_GLOBAL = 0;
  std::uint64_t samples_recorded_ BLOCKHEAD_SIM_GLOBAL = 0;
  std::uint64_t samples_dropped_ BLOCKHEAD_SIM_GLOBAL = 0;

  std::vector<Group> groups_ BLOCKHEAD_SIM_GLOBAL;
  std::map<std::string, std::size_t, std::less<>> group_ids_ BLOCKHEAD_SIM_GLOBAL;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_TELEMETRY_TIMELINE_H_
