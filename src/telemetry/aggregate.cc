#include "src/telemetry/aggregate.h"

namespace blockhead {

namespace {

// Returns the histogram registered under `name`, or nullptr when absent or another kind.
// Lookup-first keeps the helpers from materializing empty instruments in source registries.
Histogram* FindHistogram(MetricRegistry* registry, std::string_view name) {
  MetricKind kind;
  if (!registry->Lookup(name, &kind) || kind != MetricKind::kHistogram) {
    return nullptr;
  }
  return registry->GetHistogram(name);
}

}  // namespace

std::size_t MergeHistogramAcross(std::span<MetricRegistry* const> sources,
                                 std::string_view name, Histogram* out) {
  std::size_t contributed = 0;
  for (MetricRegistry* source : sources) {
    const Histogram* h = FindHistogram(source, name);
    if (h == nullptr) {
      continue;
    }
    out->Merge(*h);
    ++contributed;
  }
  return contributed;
}

std::uint64_t SumCounterAcross(std::span<MetricRegistry* const> sources,
                               std::string_view name) {
  std::uint64_t sum = 0;
  for (MetricRegistry* source : sources) {
    MetricKind kind;
    if (!source->Lookup(name, &kind) || kind != MetricKind::kCounter) {
      continue;
    }
    sum += source->GetCounter(name)->value();
  }
  return sum;
}

std::size_t RefreshMergedHistogram(MetricRegistry* target, std::string_view target_name,
                                   std::span<MetricRegistry* const> sources,
                                   std::string_view source_name) {
  Histogram* merged = target->GetHistogram(target_name);
  if (merged == nullptr) {  // Name collision with a non-histogram instrument.
    return 0;
  }
  merged->Reset();
  return MergeHistogramAcross(sources, source_name, merged);
}

}  // namespace blockhead
