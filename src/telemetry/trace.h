// Per-operation tracing spans for the simulated stack.
//
// A span brackets one host-visible operation (a KV Get, a zonefile Append, an FTL write) in
// SimTime. While a span is open, the flash device charges it the components of every host
// flash operation it performs:
//
//   * queue_ns — time the op's flash commands waited behind *other foreground* work
//     (plane/channel contention with earlier host commands);
//   * gc_ns    — time they waited behind *maintenance* work (GC copies, erases) — the
//     paper's GC-interference, measured rather than estimated;
//   * flash_ns — raw service time of the op's own commands (cell reads/programs + bus
//     transfers).
//
// Spans nest: every layer that opens a span while a caller's span is still open sees the same
// charges, so a single `kv.get` span accumulates exactly the flash work done on its behalf by
// the filesystem and device layers below. The simulation is single-threaded, so the open-span
// stack needs no synchronization and stays deterministic.
//
// When a span ends, its components are recorded into registry histograms:
//   span.<name>.total_ns   (end - begin)
//   span.<name>.queue_ns
//   span.<name>.gc_ns
//   span.<name>.flash_ns
//   span.<name>.host_ns    (total minus the three above: host-side time — buffering,
//                           write-pointer serialization, controller work)
// A span destroyed without End() (error paths) records no histograms, but bumps the
// span.<name>.abandoned counter so leaked/error-path spans are visible in snapshots.
//
// When a Timeline is attached (set_timeline), every ended span is additionally recorded as a
// duration slice on the timeline's host-ops track, SimTime-stamped, for Perfetto export.

#ifndef BLOCKHEAD_SRC_TELEMETRY_TRACE_H_
#define BLOCKHEAD_SRC_TELEMETRY_TRACE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/shard_safety.h"
#include "src/telemetry/metric_registry.h"
#include "src/telemetry/timeline.h"
#include "src/util/types.h"

namespace blockhead {

// Flash-time components charged to open spans (see file comment).
struct SpanComponents {
  SimTime queue_ns = 0;
  SimTime gc_ns = 0;
  SimTime flash_ns = 0;
  std::uint64_t flash_ops = 0;
};

class Tracer {
 public:
  explicit Tracer(MetricRegistry* registry) : registry_(registry) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // Handle to one open span. Move-only; End() records it, destruction without End() abandons
  // it silently (nothing recorded).
  class Span {
   public:
    Span() = default;  // Inactive handle: End() is a no-op.
    Span(Span&& other) noexcept : tracer_(other.tracer_), id_(other.id_) {
      other.tracer_ = nullptr;
    }
    Span& operator=(Span&& other) noexcept {
      if (this != &other) {
        Abandon();
        tracer_ = other.tracer_;
        id_ = other.id_;
        other.tracer_ = nullptr;
      }
      return *this;
    }
    Span(const Span&) = delete;
    Span& operator=(const Span&) = delete;
    ~Span() { Abandon(); }

    // Ends the span at `end` and records its histograms. Idempotent.
    void End(SimTime end);
    bool active() const { return tracer_ != nullptr; }

   private:
    friend class Tracer;
    Span(Tracer* tracer, std::uint64_t id) : tracer_(tracer), id_(id) {}
    void Abandon();

    Tracer* tracer_ BLOCKHEAD_SIM_GLOBAL = nullptr;
    std::uint64_t id_ BLOCKHEAD_SIM_GLOBAL = 0;
  };

  // Opens a span named `name` starting at `begin` (SimTime).
  Span Start(std::string_view name, SimTime begin);

  // Attaches a timeline that receives every ended span as a slice (nullptr detaches).
  void set_timeline(Timeline* timeline) { timeline_ = timeline; }

  // Charges `c` to every open span. No-op when no span is open, so layers may charge
  // unconditionally.
  void Charge(const SpanComponents& c);

  // Drains every still-open span, bumping its span.<name>.abandoned counter. The bench
  // harness calls this in teardown so spans left open on early exit are visible in the final
  // snapshot instead of silently vanishing (their Span handles outlive the dump). Handles to
  // drained spans become inert: End()/destruction after this is a no-op.
  void AbandonOpen();

  bool active() const { return !open_.empty(); }
  std::size_t open_spans() const { return open_.size(); }

 private:
  struct OpenSpan {
    std::uint64_t id = 0;
    std::string name;
    SimTime begin = 0;
    SpanComponents components;
  };

  void Finish(std::uint64_t id, SimTime end);
  void Remove(std::uint64_t id);

  MetricRegistry* registry_ BLOCKHEAD_SIM_GLOBAL;
  Timeline* timeline_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  std::vector<OpenSpan> open_ BLOCKHEAD_SIM_GLOBAL;
  std::uint64_t next_id_ BLOCKHEAD_SIM_GLOBAL = 1;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_TELEMETRY_TRACE_H_
