#include "src/telemetry/audit/state_digest.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/telemetry/sink.h"

namespace blockhead {

std::uint64_t AuditHashBytes(std::string_view bytes) {
  std::uint64_t h = AuditMix64(0x452821e638d01377ULL ^ bytes.size());
  std::uint64_t word = 0;
  int shift = 0;
  for (unsigned char c : bytes) {
    word |= static_cast<std::uint64_t>(c) << shift;
    shift += 8;
    if (shift == 64) {
      h = AuditMix64(h ^ word);
      word = 0;
      shift = 0;
    }
  }
  if (shift != 0) {
    h = AuditMix64(h ^ word);
  }
  return h;
}

std::uint64_t AuditHashHistogram(const Histogram& h) {
  // Bucket layout is a fixed function of the recorded multiset, so chaining the nonzero
  // (index, count) pairs positionally is merge-order-independent.
  std::uint64_t d = AuditHashWords({h.count(), h.sum(), h.min(), h.max()});
  const std::vector<std::uint64_t>& buckets = h.bucket_counts();
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] != 0) {
      d = AuditMix64(d ^ AuditHashWords({i, buckets[i]}));
    }
  }
  return d;
}

std::string DigestValue::ToHex() const {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%016llx.%016llx",
                static_cast<unsigned long long>(fold_xor),
                static_cast<unsigned long long>(fold_sum));
  return buf;
}

void SubsystemDigest::Checkpoint(SimTime t) {
  const std::uint64_t e = t / owner_->epoch_ns();
  if (!touched_) {
    touched_ = true;
    epoch_ = e;
    return;
  }
  if (e > epoch_) {
    sealed_.push_back(Sealed{epoch_, value_, mutations_});
    epoch_ = e;
  }
}

StateAudit::~StateAudit() {
  if (root_ != nullptr) {
    root_->AbsorbChild(this);
  }
  // Children outliving their root would dangle; detach them defensively (the fleet always
  // destroys devices first, so this loop is normally empty).
  for (StateAudit* child : children_) {
    child->root_ = nullptr;
  }
}

void StateAudit::Enable(const AuditConfig& config) {
  config_ = config;
  if (const char* env = std::getenv("BLOCKHEAD_AUDIT_EPOCH_NS");
      env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && v > 0) {
      config_.epoch_ns = v;
    }
  }
  if (config_.epoch_ns == 0) {
    config_.epoch_ns = 1;
  }
  enabled_ = true;
  for (const auto& [name, sub] : subsystems_) {
    sub->value_ = DigestValue{};
    sub->mutations_ = 0;
    sub->epoch_ = 0;
    sub->touched_ = false;
    sub->sealed_.clear();
  }
  retired_.clear();
}

SubsystemDigest* StateAudit::Register(std::string_view name) {
  auto it = subsystems_.find(name);
  if (it == subsystems_.end()) {
    auto sub = std::unique_ptr<SubsystemDigest>(new SubsystemDigest(this, std::string(name)));
    it = subsystems_.emplace(std::string(name), std::move(sub)).first;
  }
  return it->second.get();
}

void StateAudit::DelegateTo(StateAudit* root, std::string_view prefix) {
  if (root == this) {
    root = nullptr;
  }
  if (root_ != nullptr && root_ != root) {
    // Explicit re-delegation: leave the old root without donating history (the caller is
    // re-homing a live audit, not ending it).
    std::erase(root_->children_, this);
  }
  root_ = root;
  delegate_prefix_ = std::string(prefix);
  if (root_ != nullptr &&
      std::find(root_->children_.begin(), root_->children_.end(), this) ==
          root_->children_.end()) {
    root_->children_.push_back(this);
  }
}

void StateAudit::AbsorbChild(StateAudit* child) {
  std::erase(children_, child);
  if (!enabled_) {
    return;
  }
  for (const auto& [name, sub] : child->subsystems_) {
    if (!sub->touched_) {
      continue;
    }
    Retired r;
    r.name = child->delegate_prefix_ + name;
    r.value = sub->value_;
    r.mutations = sub->mutations_;
    r.sealed = std::move(sub->sealed_);
    r.sealed.push_back(SubsystemDigest::Sealed{sub->epoch_, sub->value_, sub->mutations_});
    retired_.push_back(std::move(r));
  }
}

std::string StateAudit::DumpJson() const {
  struct Row {
    std::uint64_t epoch;
    const std::string* name;  // Points into finals (stable std::map nodes).
    DigestValue value;
    std::uint64_t mutations;
  };
  struct Final {
    DigestValue value;
    std::uint64_t mutations = 0;
  };
  // Finals merge same-named histories algebraically (a fleet bench that rebuilds the same
  // device prefix across configurations folds them into one composite line).
  std::map<std::string, Final> finals;
  std::vector<Row> rows;

  auto fold_final = [&finals](const std::string& name, const DigestValue& v,
                              std::uint64_t mutations) -> const std::string* {
    auto it = finals.try_emplace(name).first;
    it->second.value.fold_xor ^= v.fold_xor;
    it->second.value.fold_sum += v.fold_sum;
    it->second.mutations += mutations;
    return &it->first;
  };
  auto add_live = [&](const StateAudit& audit, const std::string& prefix) {
    for (const auto& [name, sub] : audit.subsystems_) {
      const std::string* full =
          fold_final(prefix.empty() ? name : prefix + name, sub->value_, sub->mutations_);
      for (const auto& s : sub->sealed_) {
        rows.push_back(Row{s.epoch, full, s.value, s.mutations});
      }
      if (sub->touched_) {
        rows.push_back(Row{sub->epoch_, full, sub->value_, sub->mutations_});
      }
    }
  };
  add_live(*this, "");
  for (const StateAudit* child : children_) {
    add_live(*child, child->delegate_prefix_);
  }
  for (const auto& r : retired_) {
    const std::string* full = fold_final(r.name, r.value, r.mutations);
    for (const auto& s : r.sealed) {
      rows.push_back(Row{s.epoch, full, s.value, s.mutations});
    }
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.epoch != b.epoch) {
      return a.epoch < b.epoch;
    }
    return *a.name < *b.name;
  });

  const SimTime epoch_len = epoch_ns();
  std::string out;
  out.reserve(96 + rows.size() * 120 + finals.size() * 100);
  out.append("{\"schema\":\"blockhead-audit-v1\",\"epoch_ns\":");
  out.append(std::to_string(epoch_len));
  out.append("}\n");
  for (const Row& row : rows) {
    out.append("{\"epoch\":");
    out.append(std::to_string(row.epoch));
    out.append(",\"t_ns\":");
    out.append(std::to_string((row.epoch + 1) * epoch_len));
    out.append(",\"subsystem\":\"");
    out.append(JsonEscape(*row.name));
    out.append("\",\"digest\":\"");
    out.append(row.value.ToHex());
    out.append("\",\"mutations\":");
    out.append(std::to_string(row.mutations));
    out.append("}\n");
  }
  DigestValue run;
  std::uint64_t run_mutations = 0;
  auto final_line = [&out](const std::string& name, const DigestValue& v,
                           std::uint64_t mutations) {
    out.append("{\"final\":true,\"subsystem\":\"");
    out.append(JsonEscape(name));
    out.append("\",\"digest\":\"");
    out.append(v.ToHex());
    out.append("\",\"mutations\":");
    out.append(std::to_string(mutations));
    out.append("}\n");
  };
  for (const auto& [name, f] : finals) {
    final_line(name, f.value, f.mutations);
    run.Insert(AuditHashWords({AuditHashBytes(name), f.value.fold_xor, f.value.fold_sum}));
    run_mutations += f.mutations;
  }
  final_line("__run__", run, run_mutations);
  return out;
}

}  // namespace blockhead
