// State-digest auditing: the correctness oracle for refactors of the simulation core.
//
// Every mutable subsystem (flash block states, FTL mapping tables, the zone table, host-FTL
// emulation state, zonefile extents, cache contents, LSM memtable/manifest, fleet placement)
// maintains an *order-independent running digest* of its state: each entry (a mapping slot, a
// block, a zone, ...) hashes to one 64-bit word, and the subsystem accumulator folds entry
// hashes with commutative operations (XOR and modular sum), so
//
//   * an insert/remove/replace costs O(1) — fold the old entry hash out, the new one in;
//   * the digest depends only on the *set* of live entries, never on mutation order — two
//     runs that arrive at the same state by different schedules (the sequential reference vs
//     a future sharded core, or pre-crash vs post-recovery) produce the same digest;
//   * two digests that differ prove the states differ (up to 128-bit collision odds).
//
// Digests are checkpointed into a per-subsystem timeline at configurable SimTime epochs
// (lazily: a checkpoint is sealed when the first mutation of a later epoch arrives, so
// untouched epochs cost nothing and the timeline stays sparse). `bench_main.h --audit <path>`
// enables the layer and writes the merged timeline as deterministic JSON lines plus final
// per-subsystem digests and a whole-run composite; tools/digest_bisect compares two such
// files and localizes the first divergent (epoch, subsystem) cell.
//
// Disabled-mode guarantees (the default): no registry rows ever (enabled or not — the digest
// timeline file is the only output), no effect on simulation state (the layer only observes),
// and one-branch hooks — layer call sites test `armed()` before computing entry hashes, so
// SimTime-domain output is byte-identical with auditing on, off, or absent.
//
// Determinism contract: entry hashes must be computed from simulation state only (indexes,
// SimTime values, stored sizes — never host pointers or wall time), and audit code must not
// iterate unordered containers (tools/lint.py `digest-order` rule): subsystems live in a
// name-sorted map and checkpoints in append-order vectors, so dumps are byte-stable.

#ifndef BLOCKHEAD_SRC_TELEMETRY_AUDIT_STATE_DIGEST_H_
#define BLOCKHEAD_SRC_TELEMETRY_AUDIT_STATE_DIGEST_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/shard_safety.h"
#include "src/util/histogram.h"
#include "src/util/types.h"

namespace blockhead {

// splitmix64 finalizer: the fixed 64-bit mixer under every entry hash. Public so tests can
// predict digests.
inline std::uint64_t AuditMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Hash of a word sequence, position-sensitive (chained mixing), for one entry's fields.
inline std::uint64_t AuditHashWords(std::initializer_list<std::uint64_t> words) {
  std::uint64_t h = 0x243f6a8885a308d3ULL;  // pi fraction; any fixed odd seed works.
  for (std::uint64_t w : words) {
    h = AuditMix64(h ^ w);
  }
  return h;
}

// Hash of a byte string (names, keys), chained per 8-byte word.
std::uint64_t AuditHashBytes(std::string_view bytes);

// Histogram content hash (bucket counts + totals): two histograms that merged the same
// sample multiset in any order digest identically. Used by tests to pin fleet-aggregation
// stability; O(buckets).
std::uint64_t AuditHashHistogram(const Histogram& h);

// The order-independent accumulator value: XOR fold + modular-sum fold of live entry hashes.
// Two independent commutative folds make "two errors cancel" astronomically unlikely.
struct DigestValue {
  std::uint64_t fold_xor = 0;
  std::uint64_t fold_sum = 0;

  void Insert(std::uint64_t entry_hash) {
    fold_xor ^= entry_hash;
    fold_sum += entry_hash;
  }
  void Remove(std::uint64_t entry_hash) {
    fold_xor ^= entry_hash;
    fold_sum -= entry_hash;
  }
  bool operator==(const DigestValue&) const = default;

  // Fixed text form "xxxxxxxxxxxxxxxx.xxxxxxxxxxxxxxxx" (two 16-digit hex words).
  std::string ToHex() const;
};

struct AuditConfig {
  // Checkpoint epoch length in simulated time. Overridden by the
  // BLOCKHEAD_AUDIT_EPOCH_NS environment variable when set (deterministic: read once at
  // Enable, never the wall clock).
  SimTime epoch_ns = 10 * kMillisecond;
};

class StateAudit;

// Per-subsystem digest handle. Layers obtain one at AttachTelemetry via
// StateAudit::Register(name) and keep the raw pointer (stable for the audit's lifetime).
// All mutation hooks are gated on armed(): when auditing is off they cost one branch and
// touch nothing.
class SubsystemDigest {
 public:
  // True when the owning audit (or its delegation root) is enabled. Call sites test this
  // BEFORE computing entry hashes so disabled runs do zero hash work.
  bool armed() const;

  void Insert(SimTime t, std::uint64_t entry_hash) {
    if (armed()) {
      Checkpoint(t);
      value_.Insert(entry_hash);
      ++mutations_;
    }
  }
  void Remove(SimTime t, std::uint64_t entry_hash) {
    if (armed()) {
      Checkpoint(t);
      value_.Remove(entry_hash);
      ++mutations_;
    }
  }
  void Replace(SimTime t, std::uint64_t old_hash, std::uint64_t new_hash) {
    if (armed()) {
      Checkpoint(t);
      value_.Remove(old_hash);
      value_.Insert(new_hash);
      ++mutations_;
    }
  }

  const std::string& name() const { return name_; }
  const DigestValue& value() const { return value_; }
  std::uint64_t mutations() const { return mutations_; }

 private:
  friend class StateAudit;

  // One sealed epoch: the digest as of the END of `epoch` (no mutations happened between
  // this record's sealing and the next one's first mutation).
  struct Sealed {
    std::uint64_t epoch = 0;
    DigestValue value;
    std::uint64_t mutations = 0;  // Running mutation count at sealing.
  };

  explicit SubsystemDigest(StateAudit* owner, std::string name)
      : owner_(owner), name_(std::move(name)) {}

  // Seals pending epochs when `t` has crossed an epoch boundary since the last mutation.
  void Checkpoint(SimTime t);

  StateAudit* owner_ BLOCKHEAD_SIM_GLOBAL;
  std::string name_ BLOCKHEAD_SIM_GLOBAL;
  DigestValue value_ BLOCKHEAD_SIM_GLOBAL;
  std::uint64_t mutations_ BLOCKHEAD_SIM_GLOBAL = 0;
  std::uint64_t epoch_ BLOCKHEAD_SIM_GLOBAL = 0;       // Epoch of the last mutation.
  bool touched_ BLOCKHEAD_SIM_GLOBAL = false;          // Any mutation recorded yet?
  std::vector<Sealed> sealed_
      BLOCKHEAD_SIM_GLOBAL;    // Ascending by epoch; sparse (mutated epochs only).
};

// The per-bundle audit layer. One per Telemetry; benches enable it for --audit.
class StateAudit {
 public:
  StateAudit() = default;
  StateAudit(const StateAudit&) = delete;
  StateAudit& operator=(const StateAudit&) = delete;
  ~StateAudit();

  // Turns auditing on (fresh digests) and fixes the epoch length. Reads the
  // BLOCKHEAD_AUDIT_EPOCH_NS override. Benches call this before attaching layers.
  void Enable(const AuditConfig& config = AuditConfig{});
  bool enabled() const { return root_ == nullptr ? enabled_ : root_->enabled_; }
  SimTime epoch_ns() const { return root_ == nullptr ? config_.epoch_ns : root_->epoch_ns(); }

  // Get-or-create the digest accumulator for `name` ("conv.ftl.l2p", "zns.zones", ...).
  // The returned pointer is stable until this StateAudit is destroyed. Subsystems always
  // live on the audit they registered with; delegation (below) only affects enablement and
  // where their history surfaces at dump time.
  SubsystemDigest* Register(std::string_view name);

  // Composite layers (the fleet gives every device its own Telemetry bundle) forward the
  // device audit to the run-level one: this audit arms/configures from `root`, and at dump
  // time its subsystems appear in the root timeline as "<prefix><subsystem>" (e.g.
  // "fleet.dev00.flash.blocks"). When a delegated audit is destroyed before the dump — the
  // fleet bench builds and tears down many configurations per run — the root adopts its
  // sealed history, so nothing is lost. Passing nullptr restores independence. One hop only.
  void DelegateTo(StateAudit* root, std::string_view prefix = "");

  // The digest timeline as deterministic JSON lines:
  //   {"schema":"blockhead-audit-v1","epoch_ns":N}
  //   {"epoch":E,"t_ns":T,"subsystem":"S","digest":"X.Y","mutations":M}   (ascending E, S)
  //   {"final":true,"subsystem":"S","digest":"X.Y","mutations":M}         (ascending S)
  //   {"final":true,"subsystem":"__run__","digest":"X.Y","mutations":M}
  // The "__run__" line folds H(name, digest) over every subsystem: the whole-device digest.
  // Subsystems retired before the dump (a bench that destroys a fleet mid-run) are retained.
  std::string DumpJson() const;

 private:
  friend class SubsystemDigest;

  struct Retired {
    std::string name;
    DigestValue value;
    std::uint64_t mutations = 0;
    std::vector<SubsystemDigest::Sealed> sealed;
  };

  // Called by a delegated child's destructor: moves the child's digest history (with the
  // delegation prefix applied) into retired_ and drops the child pointer.
  void AbsorbChild(StateAudit* child);

  bool enabled_ BLOCKHEAD_SIM_GLOBAL = false;
  AuditConfig config_ BLOCKHEAD_SIM_GLOBAL;
  StateAudit* root_ BLOCKHEAD_SIM_GLOBAL = nullptr;   // Non-null: Register forwards to this audit.
  std::string delegate_prefix_
      BLOCKHEAD_SIM_GLOBAL;  // Prepended to names registered through this audit.
  // Name-sorted (std::map, deterministic iteration — the digest-order lint requires it).
  std::map<std::string, std::unique_ptr<SubsystemDigest>, std::less<>> subsystems_
      BLOCKHEAD_SIM_GLOBAL;
  // Digest history of subsystems whose owner died before the dump (absorbed children).
  std::vector<Retired> retired_ BLOCKHEAD_SIM_GLOBAL;
  std::vector<StateAudit*> children_
      BLOCKHEAD_SIM_GLOBAL;  // Live delegated audits (for absorb-on-detach).
};

inline bool SubsystemDigest::armed() const { return owner_->enabled(); }

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_TELEMETRY_AUDIT_STATE_DIGEST_H_
