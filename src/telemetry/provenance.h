// Write-provenance ledger: attributes every flash page program and block erase to the
// subsystem that caused it.
//
// The paper's quantitative argument (§2.2) is about *where* write amplification comes from —
// device GC under low overprovisioning, dm-zoned-style block emulation doubling writes, LSM
// compaction multiplying with device WA. A single `write_amplification` gauge per layer cannot
// attribute a physical write to its cause. This ledger can: layers bracket their internally
// generated writes in an RAII CauseScope carrying a (WriteCause, StackLayer) pair, the flash
// device records every program/erase under the innermost open scope (default: a host write),
// and the ledger accumulates a per-device (cause × layer) matrix plus per-domain logical byte
// counters. From that one source of truth it derives:
//
//   * per-cause program/erase counters (published as provenance.<device>.programs.<cause>);
//   * a factorized WA report — app-WA × FS-WA × device-WA as a telescoping chain of
//     bytes-in ratios whose product equals the end-to-end WA by construction (Factorize);
//   * an endurance projection — given the device's P/E budget and the observed erase churn
//     over simulated time, days until the mean block reaches the budget (ProjectEndurance);
//   * a deterministic text dump (Dump) — same seed → byte-identical ledger.
//
// Scopes nest; the innermost wins. E.g. an LSM compaction (kLsmCompaction pushed by the KV
// layer) that triggers zonefile GC (kZoneCompaction pushed by the filesystem) attributes the
// relocation writes to kZoneCompaction — the proximate cause — while compaction's own data
// writes stay kLsmCompaction. The simulation is single-threaded, so the scope stack needs no
// synchronization and stays deterministic.

#ifndef BLOCKHEAD_SRC_TELEMETRY_PROVENANCE_H_
#define BLOCKHEAD_SRC_TELEMETRY_PROVENANCE_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/shard_safety.h"
#include "src/core/strong_id.h"
#include "src/telemetry/metric_registry.h"
#include "src/util/types.h"

namespace blockhead {

// Why a physical flash write happened. kHostWrite is the default when no scope is open: the
// write is foreground work the application asked for.
enum class WriteCause : std::uint8_t {
  kHostWrite = 0,            // Foreground data the host submitted.
  kDeviceGC,                 // Conventional-FTL garbage-collection relocation.
  kWearMigration,            // Wear-leveling migration of cold data.
  kBlockEmulationReclaim,    // Host-FTL (dm-zoned-style) zone reclaim.
  kZoneCompaction,           // Zone filesystem GC/compaction.
  kLsmFlush,                 // LSM memtable flush.
  kLsmCompaction,            // LSM level compaction.
  kCacheEviction,            // Flash-cache segment/zone recycling.
  kPadding,                  // Tail-page padding to reach a program unit.
  kFleetMigration,           // Fleet rebalancer shard copy (wear-aware migration).
};
inline constexpr int kWriteCauseCount = 10;

// Which layer of the stack opened the scope (the cause's originating layer).
enum class StackLayer : std::uint8_t {
  kHost = 0,  // No scope open: the write entered from the top.
  kKv,
  kCache,
  kZoneFs,
  kHostFtl,
  kFtl,
  kZns,
  kFlash,
  kFleet,  // Multi-device serving layer above the per-device stacks.
};
inline constexpr int kStackLayerCount = 9;

// Stable lowercase identifiers ("host_write", "device_gc", ...; "host", "kv", ...), used in
// metric names and ledger dumps.
const char* WriteCauseName(WriteCause cause);
const char* StackLayerName(StackLayer layer);

class WriteProvenance {
 public:
  // Per-device tallies, keyed by the flash device's metric prefix. The matrix rows/columns are
  // indexed by WriteCause / StackLayer enum values.
  struct DeviceLedger {
    std::uint64_t total_blocks = 0;
    std::uint64_t endurance_cycles = 0;  // P/E budget per block.
    Bytes page_size{0};
    std::uint64_t host_pages = 0;    // Host-class programs (the device's logical ingress).
    std::uint64_t total_pages = 0;   // All programs (host + internal).
    std::uint64_t total_erases = 0;
    SimTime last_time = 0;           // Latest completion time seen (churn-rate denominator).
    std::uint64_t programs[kWriteCauseCount][kStackLayerCount] = {};
    std::uint64_t erases[kWriteCauseCount][kStackLayerCount] = {};
  };

  // RAII cause scope. Layers open one around internally generated writes; nullptr provenance
  // (telemetry off) makes it a no-op. Non-copyable, non-movable: open at block scope.
  class CauseScope {
   public:
    CauseScope(WriteProvenance* provenance, WriteCause cause, StackLayer layer)
        : provenance_(provenance) {
      if (provenance_ != nullptr) {
        provenance_->stack_.push_back({cause, layer});
      }
    }
    ~CauseScope() {
      if (provenance_ != nullptr) {
        provenance_->stack_.pop_back();
      }
    }
    CauseScope(const CauseScope&) = delete;
    CauseScope& operator=(const CauseScope&) = delete;

   private:
    WriteProvenance* provenance_ BLOCKHEAD_SIM_GLOBAL;
  };

  WriteProvenance() = default;
  WriteProvenance(const WriteProvenance&) = delete;
  WriteProvenance& operator=(const WriteProvenance&) = delete;

  // Registers (or re-registers: counts persist, geometry is refreshed) a flash device. The
  // returned ledger pointer stays valid for this object's lifetime — the device caches it and
  // records through it without a map lookup per operation.
  DeviceLedger* RegisterDevice(std::string_view device, std::uint64_t total_blocks,
                               std::uint64_t endurance_cycles, Bytes page_size);

  // Registers (or finds) a logical ingress domain for the factorized-WA chain and returns its
  // bytes-in accumulator (checked Bytes arithmetic); stays valid for this object's lifetime.
  Bytes* RegisterDomain(std::string_view domain);

  // Hot-path recording (called by the flash device on every program / erase).
  void RecordProgram(DeviceLedger* ledger, bool host_op, SimTime now) {
    const auto [cause, layer] = Current();
    ledger->programs[static_cast<int>(cause)][static_cast<int>(layer)]++;
    ledger->total_pages++;
    if (host_op) {
      ledger->host_pages++;
    }
    if (now > ledger->last_time) {
      ledger->last_time = now;
    }
  }
  void RecordErase(DeviceLedger* ledger, SimTime now) {
    const auto [cause, layer] = Current();
    ledger->erases[static_cast<int>(cause)][static_cast<int>(layer)]++;
    ledger->total_erases++;
    if (now > ledger->last_time) {
      ledger->last_time = now;
    }
  }

  // Innermost open scope; (kHostWrite, kHost) when none is open.
  WriteCause current_cause() const {
    return stack_.empty() ? WriteCause::kHostWrite : stack_.back().cause;
  }
  StackLayer current_layer() const {
    return stack_.empty() ? StackLayer::kHost : stack_.back().layer;
  }
  std::size_t open_scopes() const { return stack_.size(); }

  // Lookups (nullptr / 0 when unknown).
  const DeviceLedger* FindDevice(std::string_view device) const;
  Bytes DomainBytes(std::string_view domain) const;
  std::vector<std::string> DeviceNames() const;

  // Per-cause sums over layers (for tests and tables).
  static std::uint64_t ProgramCount(const DeviceLedger& ledger, WriteCause cause);
  static std::uint64_t EraseCount(const DeviceLedger& ledger, WriteCause cause);

  // One link of the factorized-WA chain: bytes entering `to` per byte entering `from`.
  struct WaFactor {
    std::string from;
    std::string to;
    double factor = 1.0;
  };
  struct FactorizedWa {
    std::vector<WaFactor> factors;
    double product = 1.0;     // Product of the factors.
    double end_to_end = 1.0;  // Physical bytes / first-domain bytes, computed directly.
  };

  // Builds the telescoping WA chain: domains[0] → domains[1] → ... → <device host bytes> →
  // <device physical bytes>. With every denominator nonzero the product equals end_to_end up
  // to floating-point rounding (each factor cancels the previous numerator); a zero
  // denominator yields factor 1.0. An empty `domains` reports device WA alone.
  FactorizedWa Factorize(const std::vector<std::string>& domains,
                         std::string_view device) const;

  struct EnduranceProjection {
    bool valid = false;  // False when no erases or no simulated time have been observed.
    double pe_budget = 0.0;
    double mean_erase_count = 0.0;          // total_erases / total_blocks.
    double erases_per_block_per_day = 0.0;  // Observed churn over simulated time.
    double projected_days = 0.0;            // Days until the mean block exhausts the budget.
  };

  // Projects days-to-wearout from the observed churn: (budget − mean) / rate. The paper's
  // OP-vs-lifetime trade-off in one number per configuration.
  EnduranceProjection ProjectEndurance(std::string_view device) const;

  // Publishes counters/gauges into `registry` under "provenance.*": per-device
  // programs/erases totals, nonzero per-cause counts, endurance projection, and per-domain
  // bytes_in. Registered as a snapshot provider by the Telemetry bundle.
  void PublishTo(MetricRegistry* registry) const;

  // Deterministic text serialization of the full ledger (devices sorted by name, cells in
  // enum order, nonzero cells only). Same seed → byte-identical.
  std::string Dump() const;

  // Human-readable per-cause breakdown table for one device (benches print this).
  std::string FormatBreakdown(std::string_view device) const;

 private:
  struct OpenCause {
    WriteCause cause;
    StackLayer layer;
  };
  struct Current_ {
    WriteCause cause;
    StackLayer layer;
  };
  Current_ Current() const {
    if (stack_.empty()) {
      return {WriteCause::kHostWrite, StackLayer::kHost};
    }
    return {stack_.back().cause, stack_.back().layer};
  }

  std::vector<OpenCause> stack_ BLOCKHEAD_SIM_GLOBAL;
  std::map<std::string, DeviceLedger, std::less<>> devices_ BLOCKHEAD_SIM_GLOBAL;
  std::map<std::string, Bytes, std::less<>> domains_ BLOCKHEAD_SIM_GLOBAL;
};

// Publishes a factorized-WA report as gauges: <prefix>.wa.factor<i> per chain link plus
// <prefix>.wa.product and <prefix>.wa.end_to_end.
void PublishFactorizedWa(MetricRegistry* registry, std::string_view prefix,
                         const WriteProvenance::FactorizedWa& wa);

// Formats the factorized chain as one human-readable line ("app→fs 1.20 × fs→dev 1.10 ...").
std::string FormatFactorizedWa(const WriteProvenance::FactorizedWa& wa);

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_TELEMETRY_PROVENANCE_H_
