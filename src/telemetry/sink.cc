#include "src/telemetry/sink.h"

#include <algorithm>
#include <cstdio>

namespace blockhead {

namespace {

std::string FormatU64(std::uint64_t v) { return std::to_string(v); }

struct HistFields {
  std::uint64_t count, min, max, p50, p90, p95, p99, p999;
  double mean;
};

HistFields Summarize(const Histogram& h) {
  return HistFields{h.count(), h.min(),   h.max(),   h.P50(), h.P90(),
                    h.P95(),   h.P99(),   h.P999(),  h.Mean()};
}

}  // namespace

std::string FormatMetricDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned char>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string CsvEscape(std::string_view s) {
  if (s.find_first_of(",\"\r\n") == std::string_view::npos) {
    return std::string(s);
  }
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"') {
      out.push_back('"');
    }
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void TableSink::Render(std::string_view bench_name,
                       const std::vector<MetricRegistry::Entry>& snapshot,
                       std::string* out) const {
  std::size_t width = 6;  // "metric"
  for (const auto& e : snapshot) {
    width = std::max(width, e.name.size());
  }
  out->push_back('[');
  out->append(bench_name);
  out->append("] ");
  out->append(std::to_string(snapshot.size()));
  out->append(" metrics\n");
  for (const auto& e : snapshot) {
    out->append("  ");
    out->append(e.name);
    out->append(width - e.name.size() + 2, ' ');
    switch (e.kind) {
      case MetricKind::kCounter:
        out->append(FormatU64(e.counter));
        break;
      case MetricKind::kGauge:
        out->append(FormatMetricDouble(e.gauge));
        break;
      case MetricKind::kHistogram: {
        const HistFields f = Summarize(*e.histogram);
        out->append("n=" + FormatU64(f.count) + " mean=" + FormatMetricDouble(f.mean) +
                    " p50=" + FormatU64(f.p50) + " p95=" + FormatU64(f.p95) +
                    " p99=" + FormatU64(f.p99) + " p99.9=" + FormatU64(f.p999) +
                    " max=" + FormatU64(f.max));
        break;
      }
    }
    out->push_back('\n');
  }
}

void JsonLinesSink::Render(std::string_view bench_name,
                           const std::vector<MetricRegistry::Entry>& snapshot,
                           std::string* out) const {
  const std::string bench = JsonEscape(bench_name);
  for (const auto& e : snapshot) {
    out->append("{\"bench\":\"" + bench + "\",\"metric\":\"" + JsonEscape(e.name) +
                "\",\"kind\":\"" + MetricKindName(e.kind) + "\"");
    switch (e.kind) {
      case MetricKind::kCounter:
        out->append(",\"value\":" + FormatU64(e.counter));
        break;
      case MetricKind::kGauge:
        out->append(",\"value\":" + FormatMetricDouble(e.gauge));
        break;
      case MetricKind::kHistogram: {
        const HistFields f = Summarize(*e.histogram);
        out->append(",\"count\":" + FormatU64(f.count) + ",\"min\":" + FormatU64(f.min) +
                    ",\"max\":" + FormatU64(f.max) + ",\"mean\":" + FormatMetricDouble(f.mean) +
                    ",\"p50\":" + FormatU64(f.p50) + ",\"p90\":" + FormatU64(f.p90) +
                    ",\"p95\":" + FormatU64(f.p95) + ",\"p99\":" + FormatU64(f.p99) +
                    ",\"p999\":" + FormatU64(f.p999));
        break;
      }
    }
    out->append("}\n");
  }
}

void CsvSink::Render(std::string_view bench_name,
                     const std::vector<MetricRegistry::Entry>& snapshot,
                     std::string* out) const {
  if (out->empty()) {
    out->append("bench,metric,kind,value,count,min,max,mean,p50,p90,p95,p99,p999\n");
  }
  const std::string bench = CsvEscape(bench_name);
  for (const auto& e : snapshot) {
    out->append(bench + "," + CsvEscape(e.name) + "," + MetricKindName(e.kind) + ",");
    switch (e.kind) {
      case MetricKind::kCounter:
        out->append(FormatU64(e.counter) + ",,,,,,,,,");
        break;
      case MetricKind::kGauge:
        out->append(FormatMetricDouble(e.gauge) + ",,,,,,,,,");
        break;
      case MetricKind::kHistogram: {
        const HistFields f = Summarize(*e.histogram);
        out->push_back(',');
        out->append(FormatU64(f.count) + "," + FormatU64(f.min) + "," + FormatU64(f.max) +
                    "," + FormatMetricDouble(f.mean) + "," + FormatU64(f.p50) + "," +
                    FormatU64(f.p90) + "," + FormatU64(f.p95) + "," + FormatU64(f.p99) + "," +
                    FormatU64(f.p999));
        break;
      }
    }
    out->push_back('\n');
  }
}

Status WriteStringToFile(const std::string& path, std::string_view content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status(ErrorCode::kNotFound, "cannot open " + path);
  }
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int rc = std::fclose(f);
  if (written != content.size() || rc != 0) {
    return Status(ErrorCode::kInternal, "short write to " + path);
  }
  return Status::Ok();
}

}  // namespace blockhead
