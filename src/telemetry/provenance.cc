#include "src/telemetry/provenance.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace blockhead {

namespace {

constexpr double kNsPerDay = 86400.0 * 1e9;

void AppendF(std::string* out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) {
    out->append(buf, static_cast<std::size_t>(n) < sizeof(buf) ? static_cast<std::size_t>(n)
                                                               : sizeof(buf) - 1);
  }
}

}  // namespace

const char* WriteCauseName(WriteCause cause) {
  switch (cause) {
    case WriteCause::kHostWrite:
      return "host_write";
    case WriteCause::kDeviceGC:
      return "device_gc";
    case WriteCause::kWearMigration:
      return "wear_migration";
    case WriteCause::kBlockEmulationReclaim:
      return "block_emulation_reclaim";
    case WriteCause::kZoneCompaction:
      return "zone_compaction";
    case WriteCause::kLsmFlush:
      return "lsm_flush";
    case WriteCause::kLsmCompaction:
      return "lsm_compaction";
    case WriteCause::kCacheEviction:
      return "cache_eviction";
    case WriteCause::kPadding:
      return "padding";
    case WriteCause::kFleetMigration:
      return "fleet_migration";
  }
  return "unknown";
}

const char* StackLayerName(StackLayer layer) {
  switch (layer) {
    case StackLayer::kHost:
      return "host";
    case StackLayer::kKv:
      return "kv";
    case StackLayer::kCache:
      return "cache";
    case StackLayer::kZoneFs:
      return "zonefs";
    case StackLayer::kHostFtl:
      return "hostftl";
    case StackLayer::kFtl:
      return "ftl";
    case StackLayer::kZns:
      return "zns";
    case StackLayer::kFlash:
      return "flash";
    case StackLayer::kFleet:
      return "fleet";
  }
  return "unknown";
}

WriteProvenance::DeviceLedger* WriteProvenance::RegisterDevice(std::string_view device,
                                                               std::uint64_t total_blocks,
                                                               std::uint64_t endurance_cycles,
                                                               Bytes page_size) {
  DeviceLedger& ledger = devices_[std::string(device)];
  ledger.total_blocks = total_blocks;
  ledger.endurance_cycles = endurance_cycles;
  ledger.page_size = page_size;
  return &ledger;
}

Bytes* WriteProvenance::RegisterDomain(std::string_view domain) {
  return &domains_[std::string(domain)];
}

const WriteProvenance::DeviceLedger* WriteProvenance::FindDevice(
    std::string_view device) const {
  const auto it = devices_.find(device);
  return it == devices_.end() ? nullptr : &it->second;
}

Bytes WriteProvenance::DomainBytes(std::string_view domain) const {
  const auto it = domains_.find(domain);
  return it == domains_.end() ? Bytes{0} : it->second;
}

std::vector<std::string> WriteProvenance::DeviceNames() const {
  std::vector<std::string> names;
  names.reserve(devices_.size());
  for (const auto& [name, ledger] : devices_) {
    names.push_back(name);
  }
  return names;
}

std::uint64_t WriteProvenance::ProgramCount(const DeviceLedger& ledger, WriteCause cause) {
  std::uint64_t sum = 0;
  for (int l = 0; l < kStackLayerCount; ++l) {
    sum += ledger.programs[static_cast<int>(cause)][l];
  }
  return sum;
}

std::uint64_t WriteProvenance::EraseCount(const DeviceLedger& ledger, WriteCause cause) {
  std::uint64_t sum = 0;
  for (int l = 0; l < kStackLayerCount; ++l) {
    sum += ledger.erases[static_cast<int>(cause)][l];
  }
  return sum;
}

WriteProvenance::FactorizedWa WriteProvenance::Factorize(
    const std::vector<std::string>& domains, std::string_view device) const {
  FactorizedWa wa;
  // Node values along the chain: each domain's bytes_in, then the device's host-interface
  // bytes, then its physical (programmed) bytes.
  std::vector<std::string> labels;
  std::vector<double> bytes;
  for (const std::string& d : domains) {
    labels.push_back(d);
    bytes.push_back(static_cast<double>(DomainBytes(d).value()));
  }
  const DeviceLedger* ledger = FindDevice(device);
  const double page = ledger == nullptr ? 0.0 : static_cast<double>(ledger->page_size.value());
  labels.push_back(std::string(device) + ":host");
  bytes.push_back(ledger == nullptr ? 0.0 : static_cast<double>(ledger->host_pages) * page);
  labels.push_back(std::string(device) + ":phys");
  bytes.push_back(ledger == nullptr ? 0.0 : static_cast<double>(ledger->total_pages) * page);

  for (std::size_t i = 0; i + 1 < bytes.size(); ++i) {
    WaFactor f;
    f.from = labels[i];
    f.to = labels[i + 1];
    f.factor = bytes[i] > 0.0 ? bytes[i + 1] / bytes[i] : 1.0;
    wa.product *= f.factor;
    wa.factors.push_back(std::move(f));
  }
  wa.end_to_end = bytes.front() > 0.0 ? bytes.back() / bytes.front() : wa.product;
  return wa;
}

WriteProvenance::EnduranceProjection WriteProvenance::ProjectEndurance(
    std::string_view device) const {
  EnduranceProjection p;
  const DeviceLedger* ledger = FindDevice(device);
  if (ledger == nullptr || ledger->total_blocks == 0) {
    return p;
  }
  p.pe_budget = static_cast<double>(ledger->endurance_cycles);
  p.mean_erase_count =
      static_cast<double>(ledger->total_erases) / static_cast<double>(ledger->total_blocks);
  const double days = static_cast<double>(ledger->last_time) / kNsPerDay;
  if (days <= 0.0 || p.mean_erase_count <= 0.0) {
    return p;  // No observed churn: nothing to extrapolate.
  }
  p.erases_per_block_per_day = p.mean_erase_count / days;
  const double headroom = p.pe_budget - p.mean_erase_count;
  p.projected_days = headroom > 0.0 ? headroom / p.erases_per_block_per_day : 0.0;
  p.valid = true;
  return p;
}

void WriteProvenance::PublishTo(MetricRegistry* registry) const {
  for (const auto& [name, ledger] : devices_) {
    const std::string prefix = "provenance." + name;
    registry->GetCounter(prefix + ".programs.total")->Set(ledger.total_pages);
    registry->GetCounter(prefix + ".programs.host")->Set(ledger.host_pages);
    registry->GetCounter(prefix + ".erases.total")->Set(ledger.total_erases);
    for (int c = 0; c < kWriteCauseCount; ++c) {
      const WriteCause cause = static_cast<WriteCause>(c);
      const std::uint64_t programs = ProgramCount(ledger, cause);
      if (programs > 0) {
        registry->GetCounter(prefix + ".programs." + WriteCauseName(cause))->Set(programs);
      }
      const std::uint64_t erases = EraseCount(ledger, cause);
      if (erases > 0) {
        registry->GetCounter(prefix + ".erases." + WriteCauseName(cause))->Set(erases);
      }
    }
    const EnduranceProjection p = ProjectEndurance(name);
    registry->GetCounter(prefix + ".endurance.pe_budget")->Set(ledger.endurance_cycles);
    registry->GetGauge(prefix + ".endurance.mean_erase_count")->Set(p.mean_erase_count);
    registry->GetGauge(prefix + ".endurance.erases_per_block_per_day")
        ->Set(p.erases_per_block_per_day);
    registry->GetGauge(prefix + ".endurance.projected_days")->Set(p.projected_days);
  }
  for (const auto& [name, bytes] : domains_) {
    registry->GetCounter("provenance.domain." + name + ".bytes_in")->Set(bytes.value());
  }
}

std::string WriteProvenance::Dump() const {
  std::string out = "# blockhead write-provenance ledger v1\n";
  for (const auto& [name, ledger] : devices_) {
    AppendF(&out, "device %s\n", name.c_str());
    AppendF(&out,
            "  geometry blocks=%" PRIu64 " pe_budget=%" PRIu64 " page_size=%" PRIu64 "\n",
            ledger.total_blocks, ledger.endurance_cycles, ledger.page_size.value());
    AppendF(&out,
            "  programs total=%" PRIu64 " host=%" PRIu64 "\n", ledger.total_pages,
            ledger.host_pages);
    for (int c = 0; c < kWriteCauseCount; ++c) {
      for (int l = 0; l < kStackLayerCount; ++l) {
        if (ledger.programs[c][l] > 0) {
          AppendF(&out, "  program %s %s %" PRIu64 "\n",
                  WriteCauseName(static_cast<WriteCause>(c)),
                  StackLayerName(static_cast<StackLayer>(l)), ledger.programs[c][l]);
        }
      }
    }
    AppendF(&out, "  erases total=%" PRIu64 "\n", ledger.total_erases);
    for (int c = 0; c < kWriteCauseCount; ++c) {
      for (int l = 0; l < kStackLayerCount; ++l) {
        if (ledger.erases[c][l] > 0) {
          AppendF(&out, "  erase %s %s %" PRIu64 "\n",
                  WriteCauseName(static_cast<WriteCause>(c)),
                  StackLayerName(static_cast<StackLayer>(l)), ledger.erases[c][l]);
        }
      }
    }
    const EnduranceProjection p = ProjectEndurance(name);
    AppendF(&out,
            "  endurance mean_erase=%.6f erases_per_block_per_day=%.6f projected_days=%.6f\n",
            p.mean_erase_count, p.erases_per_block_per_day, p.projected_days);
  }
  for (const auto& [name, bytes] : domains_) {
    AppendF(&out, "domain %s bytes_in=%" PRIu64 "\n", name.c_str(), bytes.value());
  }
  return out;
}

std::string WriteProvenance::FormatBreakdown(std::string_view device) const {
  std::string out;
  const DeviceLedger* ledger = FindDevice(device);
  AppendF(&out, "per-cause flash writes [%.*s]\n", static_cast<int>(device.size()),
          device.data());
  if (ledger == nullptr) {
    out += "  (no ledger)\n";
    return out;
  }
  AppendF(&out, "  %-24s %-8s %12s %10s %8s\n", "cause", "layer", "programs", "erases",
          "share");
  const double total = static_cast<double>(ledger->total_pages);
  for (int c = 0; c < kWriteCauseCount; ++c) {
    for (int l = 0; l < kStackLayerCount; ++l) {
      const std::uint64_t programs = ledger->programs[c][l];
      const std::uint64_t erases = ledger->erases[c][l];
      if (programs == 0 && erases == 0) {
        continue;
      }
      AppendF(&out, "  %-24s %-8s %12" PRIu64 " %10" PRIu64 " %7.2f%%\n",
              WriteCauseName(static_cast<WriteCause>(c)),
              StackLayerName(static_cast<StackLayer>(l)), programs, erases,
              total > 0.0 ? 100.0 * static_cast<double>(programs) / total : 0.0);
    }
  }
  AppendF(&out, "  %-24s %-8s %12" PRIu64 " %10" PRIu64 " %7.2f%%\n", "total", "-",
          ledger->total_pages, ledger->total_erases, total > 0.0 ? 100.0 : 0.0);
  return out;
}

void PublishFactorizedWa(MetricRegistry* registry, std::string_view prefix,
                         const WriteProvenance::FactorizedWa& wa) {
  const std::string p(prefix);
  for (std::size_t i = 0; i < wa.factors.size(); ++i) {
    registry->GetGauge(p + ".wa.factor" + std::to_string(i))->Set(wa.factors[i].factor);
  }
  registry->GetGauge(p + ".wa.product")->Set(wa.product);
  registry->GetGauge(p + ".wa.end_to_end")->Set(wa.end_to_end);
}

std::string FormatFactorizedWa(const WriteProvenance::FactorizedWa& wa) {
  std::string out;
  for (std::size_t i = 0; i < wa.factors.size(); ++i) {
    if (i > 0) {
      out += " x ";
    }
    AppendF(&out, "%s->%s %.4f", wa.factors[i].from.c_str(), wa.factors[i].to.c_str(),
            wa.factors[i].factor);
  }
  AppendF(&out, " = %.4f (end-to-end %.4f)", wa.product, wa.end_to_end);
  return out;
}

}  // namespace blockhead
