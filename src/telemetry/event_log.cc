#include "src/telemetry/event_log.h"

#include "src/telemetry/sink.h"  // JsonEscape: shared string renderer.

namespace blockhead {

const char* TimelineEventTypeName(TimelineEventType type) {
  switch (type) {
    case TimelineEventType::kZoneTransition:
      return "zone_transition";
    case TimelineEventType::kZoneReset:
      return "zone_reset";
    case TimelineEventType::kGcVictim:
      return "gc_victim";
    case TimelineEventType::kGcCycle:
      return "gc_cycle";
    case TimelineEventType::kGcWindow:
      return "gc_window";
    case TimelineEventType::kBlockErase:
      return "block_erase";
    case TimelineEventType::kCompaction:
      return "compaction";
    case TimelineEventType::kCacheEvict:
      return "cache_evict";
    case TimelineEventType::kFileLifecycle:
      return "file_lifecycle";
    case TimelineEventType::kShardMigration:
      return "shard_migration";
  }
  return "unknown";
}

EventLog::~EventLog() { PublishTo(nullptr); }

void EventLog::set_capacity(std::size_t capacity) {
  capacity_ = capacity;
  while (events_.size() > capacity_) {
    events_.pop_front();
    dropped_++;
  }
}

void EventLog::Append(TimelineEvent event) {
  event.seq = next_seq_++;
  appended_++;
  appended_by_type_[static_cast<std::size_t>(event.type)]++;
  if (capacity_ == 0) {
    dropped_++;
    return;
  }
  if (events_.size() >= capacity_) {
    events_.pop_front();
    dropped_++;
  }
  events_.push_back(std::move(event));
}

void EventLog::Append(SimTime time, TimelineEventType type, std::string_view source,
                      std::string detail, std::uint64_t arg0, std::uint64_t arg1) {
  TimelineEvent e;
  e.time = time;
  e.type = type;
  e.source = std::string(source);
  e.detail = std::move(detail);
  e.arg0 = arg0;
  e.arg1 = arg1;
  Append(std::move(e));
}

std::vector<TimelineEvent> EventLog::Page(TimelineEventType type) const {
  std::vector<TimelineEvent> page;
  for (const TimelineEvent& e : events_) {
    if (e.type == type) {
      page.push_back(e);
    }
  }
  return page;
}

std::string EventLog::RenderPage(TimelineEventType type) const {
  std::string out = "log page ";
  out += TimelineEventTypeName(type);
  out += ": " + std::to_string(appended_of(type)) + " total\n";
  for (const TimelineEvent& e : events_) {
    if (e.type != type) {
      continue;
    }
    out += "  [" + std::to_string(e.time) + "] " + e.source + " " + e.detail + "\n";
  }
  return out;
}

std::string EventLog::DumpJson() const {
  std::string out;
  out += "{\"schema\":\"blockhead-events-v1\",\"appended\":" + std::to_string(appended_) +
         ",\"dropped\":" + std::to_string(dropped_) + "}\n";
  for (const TimelineEvent& e : events_) {
    out += "{\"t_ns\":" + std::to_string(e.time) + ",\"seq\":" + std::to_string(e.seq) +
           ",\"type\":\"" + TimelineEventTypeName(e.type) + "\",\"source\":\"" +
           JsonEscape(e.source) + "\",\"detail\":\"" + JsonEscape(e.detail) +
           "\",\"arg0\":" + std::to_string(e.arg0) + ",\"arg1\":" + std::to_string(e.arg1) +
           "}\n";
  }
  return out;
}

void EventLog::PublishTo(MetricRegistry* registry, std::string_view prefix) {
  if (registry_ != nullptr) {
    registry_->RemoveProvider(registry_prefix_);
  }
  registry_ = registry;
  if (registry_ == nullptr) {
    return;
  }
  registry_prefix_ = std::string(prefix);
  registry_->AddProvider(registry_prefix_, [this] {
    const std::string& p = registry_prefix_;
    registry_->GetCounter(p + ".total")->Set(appended_);
    registry_->GetCounter(p + ".dropped")->Set(dropped_);
    for (std::size_t i = 0; i < kNumTimelineEventTypes; ++i) {
      if (appended_by_type_[i] == 0) {
        continue;  // Keep snapshots free of never-seen event types.
      }
      const char* name = TimelineEventTypeName(static_cast<TimelineEventType>(i));
      registry_->GetCounter(p + "." + name + ".count")->Set(appended_by_type_[i]);
    }
  });
}

}  // namespace blockhead
