// The telemetry bundle handed to every layer: one registry + one tracer + one event log + one
// timeline per measurement domain (usually one per bench process; benches comparing two stacks
// attach both to the same bundle under distinct prefixes, e.g. "conv" and "zns").
//
// Layers accept a `Telemetry*` via AttachTelemetry(t, prefix) and must tolerate nullptr
// (telemetry off — the default — costs nothing on the hot paths). The event log records typed
// decisions (zone transitions, GC victims, scheduler windows) whenever telemetry is attached;
// the timeline (span/maintenance slices + sampled utilization series) additionally requires
// timeline.Enable(), which benches do for --trace/--timeseries.

#ifndef BLOCKHEAD_SRC_TELEMETRY_TELEMETRY_H_
#define BLOCKHEAD_SRC_TELEMETRY_TELEMETRY_H_

#include "src/telemetry/event_log.h"
#include "src/telemetry/metric_registry.h"
#include "src/telemetry/timeline.h"
#include "src/telemetry/trace.h"

namespace blockhead {

struct Telemetry {
  MetricRegistry registry;
  EventLog events;
  Timeline timeline;
  Tracer tracer{&registry};

  Telemetry() {
    tracer.set_timeline(&timeline);    // Completed spans become timeline slices.
    events.PublishTo(&registry);       // Event totals appear in every snapshot.
  }
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_TELEMETRY_TELEMETRY_H_
