// The telemetry bundle handed to every layer: one registry + one tracer + one event log + one
// timeline per measurement domain (usually one per bench process; benches comparing two stacks
// attach both to the same bundle under distinct prefixes, e.g. "conv" and "zns").
//
// Layers accept a `Telemetry*` via AttachTelemetry(t, prefix) and must tolerate nullptr
// (telemetry off — the default — costs nothing on the hot paths). The event log records typed
// decisions (zone transitions, GC victims, scheduler windows) whenever telemetry is attached;
// the timeline (span/maintenance slices + sampled utilization series) additionally requires
// timeline.Enable(), which benches do for --trace/--timeseries.

#ifndef BLOCKHEAD_SRC_TELEMETRY_TELEMETRY_H_
#define BLOCKHEAD_SRC_TELEMETRY_TELEMETRY_H_

#include "src/telemetry/audit/state_digest.h"
#include "src/telemetry/event_log.h"
#include "src/telemetry/metric_registry.h"
#include "src/telemetry/provenance.h"
#include "src/telemetry/reqpath/request_path.h"
#include "src/telemetry/selfprof/self_profiler.h"
#include "src/telemetry/timeline.h"
#include "src/telemetry/trace.h"

namespace blockhead {

struct Telemetry {
  MetricRegistry registry;
  EventLog events;
  Timeline timeline;
  Tracer tracer{&registry};
  WriteProvenance provenance;
  // Host-side wall-clock self-profiler (disabled unless a bench enables it for --perf).
  // Deliberately has no registry provider: its selfprof.host.* metrics are wall-clock-domain
  // and are published explicitly by the bench harness, never folded into deterministic
  // snapshots behind the simulation's back.
  SelfProfiler selfprof;
  // Per-request critical-path ledger (disabled unless a bench enables it; publishes nothing
  // while disabled, so feature-off snapshots match feature-absent ones byte for byte).
  RequestPathLedger reqpath;
  // State-digest auditor (disabled unless a bench enables it for --audit). Deliberately has
  // no registry provider: digests never appear in metric snapshots — enabled or not — so
  // BENCH_baseline.json and every byte-identity check are untouched by the feature. The
  // digest timeline file written by bench_main is its only output.
  StateAudit audit;

  Telemetry() {
    tracer.set_timeline(&timeline);    // Completed spans become timeline slices.
    events.PublishTo(&registry);       // Event totals appear in every snapshot.
    // Per-cause program/erase counters and endurance projections join every snapshot.
    registry.AddProvider("provenance", [this] { provenance.PublishTo(&registry); });
    // Per-request segment totals, interference matrix, and SLO burn rates likewise.
    registry.AddProvider("reqpath", [this] { reqpath.PublishTo(&registry); });
  }
};

// Convenience for layers opening a CauseScope: the ledger when telemetry is attached, else
// nullptr (scope becomes a no-op).
inline WriteProvenance* ProvenanceOf(Telemetry* telemetry) {
  return telemetry == nullptr ? nullptr : &telemetry->provenance;
}

// Convenience for layers opening a SelfProfiler::Scope: the profiler when telemetry is
// attached, else nullptr (scope becomes a no-op; one branch either way while disabled).
inline SelfProfiler* ProfilerOf(Telemetry* telemetry) {
  return telemetry == nullptr ? nullptr : &telemetry->selfprof;
}

// Convenience for layers charging request-path intervals: the ledger when telemetry is
// attached, else nullptr (charges become one branch at the call site).
inline RequestPathLedger* ReqPathOf(Telemetry* telemetry) {
  return telemetry == nullptr ? nullptr : &telemetry->reqpath;
}

// Convenience for layers registering state-digest subsystems at AttachTelemetry: the audit
// when telemetry is attached, else nullptr (hooks stay one branch while disabled).
inline StateAudit* AuditOf(Telemetry* telemetry) {
  return telemetry == nullptr ? nullptr : &telemetry->audit;
}

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_TELEMETRY_TELEMETRY_H_
