// The telemetry bundle handed to every layer: one registry + one tracer per measurement
// domain (usually one per bench process; benches comparing two stacks attach both to the same
// bundle under distinct prefixes, e.g. "conv" and "zns").
//
// Layers accept a `Telemetry*` via AttachTelemetry(t, prefix) and must tolerate nullptr
// (telemetry off — the default — costs nothing on the hot paths).

#ifndef BLOCKHEAD_SRC_TELEMETRY_TELEMETRY_H_
#define BLOCKHEAD_SRC_TELEMETRY_TELEMETRY_H_

#include "src/telemetry/metric_registry.h"
#include "src/telemetry/trace.h"

namespace blockhead {

struct Telemetry {
  MetricRegistry registry;
  Tracer tracer{&registry};
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_TELEMETRY_TELEMETRY_H_
