#include "src/telemetry/timeline.h"

#include <algorithm>
#include <cstdio>

#include "src/telemetry/selfprof/self_profiler.h"  // Dual-clock export host slices.
#include "src/telemetry/sink.h"  // FormatMetricDouble: shared fixed double rendering.

namespace blockhead {

namespace {

// Microsecond timestamp with nanosecond precision — Chrome-trace `ts`/`dur` fields.
std::string FormatTraceUs(SimTime ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buf;
}

}  // namespace

void Timeline::Enable(const TimelineConfig& config) {
  enabled_ = true;
  config_ = config;
  if (config_.sample_interval == 0) {
    config_.sample_interval = TimelineConfig{}.sample_interval;
  }
  slices_.clear();
  samples_.clear();
  flows_.clear();
  flows_recorded_ = 0;
  slices_recorded_ = slices_dropped_ = 0;
  samples_recorded_ = samples_dropped_ = 0;
  next_seq_ = 1;
  for (Group& g : groups_) {
    g.last = 0;
    g.next_due = config_.sample_interval;
    for (Sampler& s : g.samplers) {
      s.prev = 0.0;
    }
  }
}

std::uint32_t Timeline::InternName(std::string_view name) {
  auto it = name_ids_.find(name);
  if (it != name_ids_.end()) {
    return it->second;
  }
  const std::uint32_t id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(name);
  name_ids_.emplace(names_.back(), id);
  return id;
}

std::uint32_t Timeline::InternTrack(std::uint32_t pid, std::string_view name) {
  std::string key = std::to_string(pid) + "/" + std::string(name);
  auto it = track_ids_.find(key);
  if (it != track_ids_.end()) {
    return it->second;
  }
  std::uint32_t tid = 0;
  for (const Track& t : tracks_) {
    if (t.pid == pid) {
      tid++;
    }
  }
  const std::uint32_t id = static_cast<std::uint32_t>(tracks_.size());
  tracks_.push_back(Track{pid, tid, std::string(name)});
  track_ids_.emplace(std::move(key), id);
  return id;
}

std::uint32_t Timeline::InternSeries(std::string_view name) {
  auto it = series_ids_.find(name);
  if (it != series_ids_.end()) {
    return it->second;
  }
  const std::uint32_t id = static_cast<std::uint32_t>(series_names_.size());
  series_names_.emplace_back(name);
  series_ids_.emplace(series_names_.back(), id);
  return id;
}

void Timeline::PushSlice(std::uint32_t pid, std::string_view track, std::string_view name,
                         SimTime begin, SimTime end) {
  Slice s;
  s.begin = begin;
  s.end = end >= begin ? end : begin;
  s.seq = next_seq_++;
  s.name_id = InternName(name);
  s.track = InternTrack(pid, track);
  slices_recorded_++;
  if (config_.max_slices == 0) {
    slices_dropped_++;
    return;
  }
  if (slices_.size() >= config_.max_slices) {
    slices_.pop_front();
    slices_dropped_++;
  }
  slices_.push_back(s);
}

void Timeline::RecordFlowArrow(std::string_view name, std::string_view from_maintenance_track,
                               SimTime from_t, std::string_view to_host_track, SimTime to_t) {
  if (!enabled_) {
    return;
  }
  Flow f;
  f.from_t = from_t;
  f.to_t = to_t >= from_t ? to_t : from_t;
  f.seq = next_seq_++;
  f.name_id = InternName(name);
  f.from_track = InternTrack(kMaintenancePid, from_maintenance_track);
  f.to_track = InternTrack(kHostPid, to_host_track);
  flows_.push_back(f);
  flows_recorded_++;
}

int Timeline::AddSamplerGroup(std::string_view id) {
  auto it = group_ids_.find(id);
  if (it != group_ids_.end()) {
    Group& g = groups_[it->second];
    g.samplers.clear();  // Re-attach: the layer re-registers its series.
    g.last = 0;
    g.next_due = config_.sample_interval;
    return static_cast<int>(it->second);
  }
  const std::size_t index = groups_.size();
  Group g;
  g.id = std::string(id);
  g.next_due = config_.sample_interval;
  groups_.push_back(std::move(g));
  group_ids_.emplace(groups_.back().id, index);
  return static_cast<int>(index);
}

void Timeline::AddSampler(int group, std::string_view series, SampleKind kind,
                          std::function<double(SimTime)> fn) {
  if (group < 0 || static_cast<std::size_t>(group) >= groups_.size()) {
    return;
  }
  Sampler s;
  s.series = InternSeries(series);
  s.kind = kind;
  s.fn = std::move(fn);
  groups_[static_cast<std::size_t>(group)].samplers.push_back(std::move(s));
}

void Timeline::RemoveSamplerGroup(std::string_view id) {
  auto it = group_ids_.find(id);
  if (it != group_ids_.end()) {
    groups_[it->second].samplers.clear();
  }
}

void Timeline::SampleGroup(std::size_t group, SimTime now) {
  Group& g = groups_[group];
  if (g.samplers.empty()) {
    // Keep the clock moving so a late-registered sampler starts from a current window.
    const SimTime interval = config_.sample_interval;
    g.last = now - now % interval;
    g.next_due = g.last + interval;
    return;
  }
  const SimTime interval = config_.sample_interval;
  const SimTime boundary = now - now % interval;  // Largest grid point <= now.
  const SimTime window = boundary - g.last;       // > 0: next_due was crossed.
  for (Sampler& s : g.samplers) {
    const double value = s.fn(boundary);
    double emitted = value;
    if (s.kind == SampleKind::kRate) {
      emitted = (value - s.prev) / static_cast<double>(window);
      s.prev = value;
    }
    Sample sample;
    sample.t = boundary;
    sample.seq = next_seq_++;
    sample.series = s.series;
    sample.value = emitted;
    samples_recorded_++;
    if (config_.max_samples == 0) {
      samples_dropped_++;
      continue;
    }
    if (samples_.size() >= config_.max_samples) {
      samples_.pop_front();
      samples_dropped_++;
    }
    samples_.push_back(sample);
  }
  g.last = boundary;
  g.next_due = boundary + interval;
}

std::string Timeline::ExportChromeTrace(const SelfProfiler* host_profile) const {
  std::string out;
  out.reserve(256 + slices_.size() * 96 + samples_.size() * 96);
  out += "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"generator\":\"blockhead-timeline\"},";
  out += "\"traceEvents\":[";
  bool first = true;
  auto emit = [&](const std::string& event) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n";
    out += event;
  };

  // Metadata: stable process names, then thread names in track-creation order.
  struct PidName {
    std::uint32_t pid;
    const char* name;
  };
  static constexpr PidName kPids[] = {
      {kHostPid, "host ops"},
      {kMaintenancePid, "device maintenance"},
      {kUtilizationPid, "utilization"},
  };
  for (const PidName& p : kPids) {
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(p.pid) +
         ",\"name\":\"process_name\",\"args\":{\"name\":\"" + p.name + "\"}}");
  }
  for (const Track& t : tracks_) {
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(t.pid) + ",\"tid\":" +
         std::to_string(t.tid) + ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
         JsonEscape(t.name) + "\"}}");
  }

  // Dual-clock mode: the self-profiler's host-clock slices as pid 3, one track per
  // subsystem (tid = first-use order). Timestamps are wall ns since the profiler epoch.
  std::vector<int> selfprof_tid(static_cast<std::size_t>(ProfSubsystem::kCount), -1);
  if (host_profile != nullptr && !host_profile->host_slices().empty()) {
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(kSelfProfilePid) +
         ",\"name\":\"process_name\",\"args\":{\"name\":\"self-profile (host clock)\"}}");
    int next_tid = 0;
    for (const HostSlice& s : host_profile->host_slices()) {
      int& tid = selfprof_tid[static_cast<std::size_t>(s.sub)];
      if (tid < 0) {
        tid = next_tid++;
        emit("{\"ph\":\"M\",\"pid\":" + std::to_string(kSelfProfilePid) + ",\"tid\":" +
             std::to_string(tid) + ",\"name\":\"thread_name\",\"args\":{\"name\":\"host." +
             std::string(ProfSubsystemName(s.sub)) + "\"}}");
      }
    }
  }

  // Merge slices (keyed by begin) and samples (keyed by t) into one stream ordered by
  // (timestamp, sequence) — sequence makes equal-time ordering the recording order.
  struct Ref {
    SimTime t;
    std::uint64_t seq;
    bool is_slice;
    std::size_t index;
  };
  std::vector<Ref> refs;
  refs.reserve(slices_.size() + samples_.size());
  for (std::size_t i = 0; i < slices_.size(); ++i) {
    refs.push_back(Ref{slices_[i].begin, slices_[i].seq, true, i});
  }
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    refs.push_back(Ref{samples_[i].t, samples_[i].seq, false, i});
  }
  std::sort(refs.begin(), refs.end(), [](const Ref& a, const Ref& b) {
    return a.t != b.t ? a.t < b.t : a.seq < b.seq;
  });

  for (const Ref& r : refs) {
    if (r.is_slice) {
      const Slice& s = slices_[r.index];
      const Track& track = tracks_[s.track];
      emit("{\"name\":\"" + JsonEscape(names_[s.name_id]) + "\",\"cat\":\"" +
           (track.pid == kHostPid ? "span" : "maintenance") + "\",\"ph\":\"X\",\"ts\":" +
           FormatTraceUs(s.begin) + ",\"dur\":" + FormatTraceUs(s.end - s.begin) +
           ",\"pid\":" + std::to_string(track.pid) + ",\"tid\":" + std::to_string(track.tid) +
           "}");
    } else {
      const Sample& s = samples_[r.index];
      emit("{\"name\":\"" + JsonEscape(series_names_[s.series]) +
           "\",\"ph\":\"C\",\"ts\":" + FormatTraceUs(s.t) + ",\"pid\":" +
           std::to_string(kUtilizationPid) + ",\"tid\":0,\"args\":{\"value\":" +
           FormatMetricDouble(s.value) + "}}");
    }
  }

  // Flow arrows after the slice stream (Chrome-trace flow binding is by id, not ordering):
  // an "s"/"f" pair per arrow, in record order, linking the interfering maintenance slice to
  // the victim request slice.
  for (const Flow& f : flows_) {
    const Track& from = tracks_[f.from_track];
    const Track& to = tracks_[f.to_track];
    const std::string name = JsonEscape(names_[f.name_id]);
    const std::string id = std::to_string(f.seq);
    emit("{\"name\":\"" + name + "\",\"cat\":\"reqpath\",\"ph\":\"s\",\"id\":" + id +
         ",\"ts\":" + FormatTraceUs(f.from_t) + ",\"pid\":" + std::to_string(from.pid) +
         ",\"tid\":" + std::to_string(from.tid) + "}");
    emit("{\"name\":\"" + name + "\",\"cat\":\"reqpath\",\"ph\":\"f\",\"bp\":\"e\",\"id\":" +
         id + ",\"ts\":" + FormatTraceUs(f.to_t) + ",\"pid\":" + std::to_string(to.pid) +
         ",\"tid\":" + std::to_string(to.tid) + "}");
  }

  // Host-clock slices last (their own clock domain: wall ns since profiler epoch, which —
  // like SimTime — starts near the beginning of the run, so both render on one axis).
  if (host_profile != nullptr) {
    for (const HostSlice& s : host_profile->host_slices()) {
      const int tid = selfprof_tid[static_cast<std::size_t>(s.sub)];
      emit("{\"name\":\"" + std::string(ProfOpName(s.op)) +
           "\",\"cat\":\"selfprof\",\"ph\":\"X\",\"ts\":" + FormatTraceUs(s.begin_ns) +
           ",\"dur\":" + FormatTraceUs(s.end_ns - s.begin_ns) + ",\"pid\":" +
           std::to_string(kSelfProfilePid) + ",\"tid\":" + std::to_string(tid) + "}");
    }
  }
  out += "\n]}\n";
  return out;
}

std::string Timeline::ExportTimeSeriesCsv() const {
  std::string out = "series,t_ns,value\n";
  // Samples are appended in nondecreasing time order per group; a global stable order is
  // (t, seq), same as the trace export.
  std::vector<std::size_t> order(samples_.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return samples_[a].t != samples_[b].t ? samples_[a].t < samples_[b].t
                                          : samples_[a].seq < samples_[b].seq;
  });
  for (const std::size_t i : order) {
    const Sample& s = samples_[i];
    out += series_names_[s.series] + "," + std::to_string(s.t) + "," +
           FormatMetricDouble(s.value) + "\n";
  }
  return out;
}

}  // namespace blockhead
