// Unified metrics registry: the one place every layer of the stack reports through.
//
// Instruments are identified by hierarchical dot-separated names ("flash.host_pages_read",
// "ftl.gc.pages_moved", "zns.append.latency_ns") and come in three kinds:
//
//   * Counter   — monotonically meaningful u64 (events, pages, bytes);
//   * Gauge     — instantaneous double (write amplification, free fraction, DRAM bytes);
//   * Histogram — the log-bucketed latency histogram from src/util (values in nanoseconds;
//                 by convention such metric names end in "_ns").
//
// Layers may either hold instrument pointers and update them inline (hot-path histograms), or
// register a *provider* — a callback, run before every snapshot, that refreshes registry
// instruments from the layer's internal stats struct. Providers keep the simulation hot paths
// untouched while still making every per-layer stat reachable under one namespace.
//
// Determinism: instruments and providers are stored sorted by name, snapshots iterate in
// lexicographic name order, and nothing here reads the wall clock — so two same-seed
// simulation runs serialize to byte-identical output (see sink.h).

#ifndef BLOCKHEAD_SRC_TELEMETRY_METRIC_REGISTRY_H_
#define BLOCKHEAD_SRC_TELEMETRY_METRIC_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/shard_safety.h"
#include "src/util/histogram.h"

namespace blockhead {

class Counter {
 public:
  void Add(std::uint64_t n = 1) { value_ += n; }
  void Set(std::uint64_t v) { value_ = v; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ BLOCKHEAD_SIM_GLOBAL = 0;
};

class Gauge {
 public:
  void Set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ BLOCKHEAD_SIM_GLOBAL = 0.0;
};

enum class MetricKind { kCounter, kGauge, kHistogram };

const char* MetricKindName(MetricKind kind);

class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // Get-or-create. Returns the existing instrument when `name` is already registered with the
  // same kind, and nullptr when `name` is registered with a *different* kind (the collision is
  // also counted in collisions()). Returned pointers stay valid for the registry's lifetime.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name);

  // True (and sets *kind) if `name` is registered.
  bool Lookup(std::string_view name, MetricKind* kind = nullptr) const;

  std::size_t size() const { return metrics_.size(); }
  std::uint64_t collisions() const { return collisions_; }

  // Registers (or replaces, by id) a refresh callback run before every Snapshot. Layers use
  // their metric prefix as the id, so re-attaching a layer does not double-register.
  void AddProvider(std::string_view id, std::function<void()> fn);

  // Unregisters a provider. Layers call this when detached or destroyed, so a registry may
  // outlive the layers that reported into it (their last-published values remain).
  void RemoveProvider(std::string_view id);

  // One serializable metric value. `histogram` points into the registry and is valid until the
  // registry is destroyed or the instrument mutated.
  struct Entry {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    std::uint64_t counter = 0;
    double gauge = 0.0;
    const Histogram* histogram = nullptr;
  };

  // Runs all providers (in id order), then returns every instrument sorted by name.
  std::vector<Entry> Snapshot();

 private:
  struct Metric {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  std::map<std::string, Metric, std::less<>> metrics_ BLOCKHEAD_SIM_GLOBAL;
  std::map<std::string, std::function<void()>, std::less<>> providers_ BLOCKHEAD_SIM_GLOBAL;
  std::uint64_t collisions_ BLOCKHEAD_SIM_GLOBAL = 0;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_TELEMETRY_METRIC_REGISTRY_H_
