// Cross-registry aggregation: fold instruments with the same name from many MetricRegistry
// instances into one value.
//
// The fleet layer gives every simulated device its own Telemetry bundle (so per-device
// registries, ledgers, and dumps stay self-contained), then needs fleet-level views: the
// latency distribution across ALL devices, the total shed count, the summed migration bytes.
// Histogram::Merge makes the histogram fold exact — bucket counts add, so percentiles of the
// merged histogram equal percentiles of the concatenated sample streams (up to the shared
// bucket resolution) — which a "merge the p99s" approach can never be.
//
// All helpers are read-only on instruments that exist and never create instruments in the
// source registries; a source that lacks the name (or registered it with another kind) is
// skipped and not counted.

#ifndef BLOCKHEAD_SRC_TELEMETRY_AGGREGATE_H_
#define BLOCKHEAD_SRC_TELEMETRY_AGGREGATE_H_

#include <cstdint>
#include <span>
#include <string_view>

#include "src/telemetry/metric_registry.h"
#include "src/util/histogram.h"

namespace blockhead {

// Merges the histogram named `name` from every source registry into `*out` (which is NOT
// reset first — callers aggregating fresh call out->Reset() themselves). Returns the number
// of source registries that contributed.
std::size_t MergeHistogramAcross(std::span<MetricRegistry* const> sources,
                                 std::string_view name, Histogram* out);

// Sums the counter named `name` across the source registries (missing/mismatched sources
// contribute 0).
std::uint64_t SumCounterAcross(std::span<MetricRegistry* const> sources, std::string_view name);

// Convenience for snapshot providers: resets the histogram named `target_name` in `target`
// (creating it if needed) and re-merges `source_name` from every source into it, so repeated
// snapshots stay idempotent. Returns the number of contributing sources.
std::size_t RefreshMergedHistogram(MetricRegistry* target, std::string_view target_name,
                                   std::span<MetricRegistry* const> sources,
                                   std::string_view source_name);

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_TELEMETRY_AGGREGATE_H_
