// Typed, SimTime-stamped event log: the discrete-event side of the observability stack.
//
// Where the MetricRegistry answers "how much" (aggregates) and the Timeline answers "when was
// what busy" (slices + series), the EventLog answers "what decisions did the stack take, in
// what order": zone state transitions (EMPTY -> OPEN -> FULL -> reset), GC victim selections,
// completed reclamation cycles, scheduler window open/close edges, block erases, LSM
// compactions, cache evictions.
//
// The log is a bounded ring buffer: appends beyond capacity evict the oldest record and bump
// dropped(). Per-type totals survive eviction, so SMART-style "log pages" (Page(type)) report
// both the retained tail and the lifetime count. Every record carries a sequence number
// assigned at append time; records with equal SimTime keep their append order, which makes
// renders and exports byte-stable across same-seed runs.
//
// Layers append only while telemetry is attached (the registry convention: telemetry off costs
// nothing). PublishTo() registers a provider that exports `<prefix>.total`, `<prefix>.dropped`
// and `<prefix>.<type>.count` counters into a registry before every snapshot.

#ifndef BLOCKHEAD_SRC_TELEMETRY_EVENT_LOG_H_
#define BLOCKHEAD_SRC_TELEMETRY_EVENT_LOG_H_

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/shard_safety.h"
#include "src/telemetry/metric_registry.h"
#include "src/util/types.h"

namespace blockhead {

enum class TimelineEventType : std::uint8_t {
  kZoneTransition,  // ZNS zone state machine edge (arg0 = zone id).
  kZoneReset,       // Zone reset completed (arg0 = zone id, arg1 = capacity after).
  kGcVictim,        // Victim selected (arg0 = block/zone id, arg1 = valid/live pages).
  kGcCycle,         // Reclamation cycle completed (arg0 = victim, arg1 = pages copied).
  kGcWindow,        // Scheduler opened (arg0 = 1) or closed (arg0 = 0) a GC window.
  kBlockErase,      // Flash block erase (arg0 = flat plane index, arg1 = block).
  kCompaction,      // LSM flush/compaction (arg0 = level, arg1 = input tables).
  kCacheEvict,      // Cache zone eviction (arg0 = zone id, arg1 = objects dropped).
  kFileLifecycle,   // Zonefile create/seal/delete (arg0 = file id).
  kShardMigration,  // Fleet shard migration started/completed (arg0 = shard, arg1 = device).
};

inline constexpr std::size_t kNumTimelineEventTypes = 10;

const char* TimelineEventTypeName(TimelineEventType type);

struct TimelineEvent {
  SimTime time = 0;
  std::uint64_t seq = 0;  // Assigned by the log; breaks ties at equal SimTime.
  TimelineEventType type = TimelineEventType::kZoneTransition;
  std::string source;  // Reporting layer's metric prefix ("conv.ftl", "zns", ...).
  std::string detail;  // Short deterministic description ("zone 3 EMPTY->IMPLICIT_OPEN").
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
};

class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 16384;

  explicit EventLog(std::size_t capacity = kDefaultCapacity) : capacity_(capacity) {}
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;
  ~EventLog();

  // Changing the capacity evicts oldest records if the log is over the new bound.
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const { return capacity_; }

  // Appends a record (stamping its sequence number), evicting the oldest when full.
  void Append(TimelineEvent event);

  // Convenience for the common call shape.
  void Append(SimTime time, TimelineEventType type, std::string_view source,
              std::string detail, std::uint64_t arg0 = 0, std::uint64_t arg1 = 0);

  std::size_t size() const { return events_.size(); }
  std::uint64_t appended() const { return appended_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t appended_of(TimelineEventType type) const {
    return appended_by_type_[static_cast<std::size_t>(type)];
  }

  // Oldest-first view of every retained record.
  const std::deque<TimelineEvent>& events() const { return events_; }

  // SMART-style log page: the retained records of one type, oldest first (copies).
  std::vector<TimelineEvent> Page(TimelineEventType type) const;

  // Deterministic text render of one log page (for dumps and debugging):
  //   [<time_ns>] <source> <detail>
  std::string RenderPage(TimelineEventType type) const;

  // Deterministic JSON-lines dump of every retained record, oldest first. Consumed by the
  // bench `--events` flag and by tools/digest_bisect to print the decision window around a
  // digest divergence. Same seed -> byte-identical output.
  std::string DumpJson() const;

  // Registers a provider on `registry` exporting `<prefix>.total`, `<prefix>.dropped` and
  // `<prefix>.<type>.count`. Passing nullptr unregisters. The registry must outlive this log
  // or be detached first.
  void PublishTo(MetricRegistry* registry, std::string_view prefix = "events");

 private:
  std::size_t capacity_ BLOCKHEAD_SIM_GLOBAL;
  std::deque<TimelineEvent> events_ BLOCKHEAD_SIM_GLOBAL;
  std::uint64_t appended_ BLOCKHEAD_SIM_GLOBAL = 0;
  std::uint64_t dropped_ BLOCKHEAD_SIM_GLOBAL = 0;
  std::uint64_t next_seq_ BLOCKHEAD_SIM_GLOBAL = 1;
  std::array<std::uint64_t, kNumTimelineEventTypes> appended_by_type_ BLOCKHEAD_SIM_GLOBAL{};

  MetricRegistry* registry_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  std::string registry_prefix_ BLOCKHEAD_SIM_GLOBAL;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_TELEMETRY_EVENT_LOG_H_
