// Sharding feasibility report: how much parallelism could a channel-sharded simulation core
// extract from this workload?
//
// The roadmap's sharded parallel core will partition the event loop by flash channel (planes
// ride along with their channel). Whether that pays off depends on two deterministic,
// SimTime-domain properties of the event stream that this collector measures on the live
// run:
//
//   * Occupancy — how evenly flash events spread over channels/planes. Published as
//     histograms of per-channel and per-plane event counts ("event-loop occupancy"): a
//     skewed distribution means shards idle while one channel's queue dominates, capping
//     speedup at total_events / max_channel_events (Amdahl on the busiest shard).
//   * Cross-channel dependencies — consecutive flash events that land on *different*
//     channels. The simulator is single-threaded, so the global issue order is a
//     conservative proxy for the dependency chain a deterministic parallel merge must
//     respect: every cross-channel adjacency is a potential synchronization point between
//     shards, every same-channel adjacency is free. The cross fraction bounds how much
//     lookahead/barrier traffic a conservative parallel scheme would generate.
//
// Everything here is counts of simulated events — no wall clock — so two same-seed runs
// publish byte-identical values and the report participates in the exact BENCH_baseline.json
// regression gate (unlike the wall-clock selfprof.host.* metrics, which are gated separately
// with tolerance).
//
// FlashDevice owns one collector per device and records every flash operation (read cell op,
// program, erase) while telemetry is attached; metrics publish under
// "<device prefix>.sharding.*".

#ifndef BLOCKHEAD_SRC_TELEMETRY_SELFPROF_SHARDING_STATS_H_
#define BLOCKHEAD_SRC_TELEMETRY_SELFPROF_SHARDING_STATS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/shard_safety.h"
#include "src/telemetry/metric_registry.h"

namespace blockhead {

class ShardingStats {
 public:
  // Sizes the per-channel/per-plane occupancy tables. Re-initializing resets all counts.
  void Init(std::uint32_t channels, std::uint32_t planes);

  // Records one flash event on `channel_index` / flat `plane_index`. Two array increments
  // and a compare — cheap enough to stay on even for the heaviest benches.
  void RecordOp(std::uint32_t channel_index, std::uint32_t plane_index) {
    if (channel_index >= per_channel_.size() || plane_index >= per_plane_.size()) {
      return;
    }
    per_channel_[channel_index]++;
    per_plane_[plane_index]++;
    total_events_++;
    if (has_last_) {
      if (channel_index == last_channel_) {
        same_channel_deps_++;
      } else {
        cross_channel_deps_++;
      }
    }
    has_last_ = true;
    last_channel_ = channel_index;
  }

  std::uint64_t total_events() const { return total_events_; }
  std::uint64_t cross_channel_deps() const { return cross_channel_deps_; }
  std::uint64_t same_channel_deps() const { return same_channel_deps_; }

  // Fraction of adjacent event pairs that switch channels (0 when fewer than two events).
  double CrossDepFraction() const;

  // total_events / max per-channel events: the upper bound on channel-sharded speedup
  // imposed by occupancy skew alone (1.0 when everything lands on one channel; 0 when empty).
  double ParallelSpeedupBound() const;

  // Publishes under "<prefix>.sharding.*": the dependency counters, cross_dep_fraction and
  // parallel_speedup_bound gauges, and channel/plane occupancy histograms (each channel's /
  // plane's event count is one histogram sample; rebuilt every publish).
  void PublishTo(MetricRegistry& registry, std::string_view prefix) const;

 private:
  std::vector<std::uint64_t> per_channel_ BLOCKHEAD_SIM_GLOBAL;
  std::vector<std::uint64_t> per_plane_ BLOCKHEAD_SIM_GLOBAL;
  std::uint64_t total_events_ BLOCKHEAD_SIM_GLOBAL = 0;
  std::uint64_t cross_channel_deps_ BLOCKHEAD_SIM_GLOBAL = 0;
  std::uint64_t same_channel_deps_ BLOCKHEAD_SIM_GLOBAL = 0;
  std::uint32_t last_channel_ BLOCKHEAD_SIM_GLOBAL = 0;
  bool has_last_ BLOCKHEAD_SIM_GLOBAL = false;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_TELEMETRY_SELFPROF_SHARDING_STATS_H_
