// Host-side self-profiler: wall-clock cost attribution for the simulator itself.
//
// Everything else in src/ is exhaustively instrumented in *simulated* time and deliberately
// blind to the wall clock (the lint bans it — determinism). But the sharded-parallel-core
// roadmap item needs the opposite view: where does *host CPU time* go while the simulator
// runs, how many nanoseconds of wall time does one simulated flash operation cost, and how
// much faster than real time does the model run? This module is the one sanctioned hole in
// the wall-clock ban (tools/lint.py allowlists `std::chrono::steady_clock` here and only
// here); nothing it measures ever feeds back into simulation behaviour, so SimTime-domain
// outputs stay byte-identical with the profiler on or off.
//
// Usage: layers open a `SelfProfiler::Scope(prof, subsystem, op)` around dispatch/GC/
// compaction work (via `ProfilerOf(telemetry_)`, which is nullptr when telemetry is
// detached). When the profiler is disabled — the default — a scope costs one branch.
// When enabled (bench_main's --perf):
//
//   * scopes nest, and elapsed wall time is attributed exclusively: a cell's `self_ns`
//     excludes time spent in child scopes, so summing self_ns over all cells reproduces the
//     profiled wall total (the attribution identity tested in tests/selfprof_test.cc);
//   * per-(subsystem, op) cells accumulate {count, total_ns, self_ns};
//   * scopes longer than `min_slice_ns` are additionally recorded as host-clock slices in a
//     bounded ring for the dual-clock Perfetto export (Timeline::ExportChromeTrace renders
//     them as a fourth process, so one trace shows simulated-time slices and the real CPU
//     cost that produced them side by side);
//   * Sample() derives events_per_sec, ns_per_simulated_op (wall ns per flash-level event —
//     the metric ci.sh --perf gates), sim_speedup (= sim elapsed / wall elapsed), and
//     process memory (current/peak RSS, allocator heap bytes).
//
// Test hook: BLOCKHEAD_SELFPROF_SPIN_FLASH_NS=<ns> (or SelfProfConfig::spin_flash_ns) makes
// every flash-subsystem scope busy-wait that many wall nanoseconds — SimTime is untouched,
// so outputs stay deterministic while ns_per_simulated_op inflates. ci.sh uses it to prove
// the perf regression gate actually fails on a deliberate slowdown.

#ifndef BLOCKHEAD_SRC_TELEMETRY_SELFPROF_SELF_PROFILER_H_
#define BLOCKHEAD_SRC_TELEMETRY_SELFPROF_SELF_PROFILER_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/core/shard_safety.h"
#include "src/telemetry/metric_registry.h"
#include "src/util/types.h"

namespace blockhead {

// Subsystems wall time is attributed to. One value per layer that opens scopes, plus
// kTelemetry (sink/snapshot rendering overhead) and kBench (driver loops).
enum class ProfSubsystem : std::uint8_t {
  kFlash,
  kFtl,
  kZns,
  kHostFtl,
  kZoneFile,
  kCache,
  kKv,
  kFleet,
  kSched,
  kTelemetry,
  kBench,
  kCount,
};

// Event types within a subsystem. Not every (subsystem, op) pair occurs; cells are published
// only when count > 0.
enum class ProfOp : std::uint8_t {
  kRead,
  kWrite,
  kAppend,
  kErase,
  kReset,
  kGc,
  kCompaction,
  kEviction,
  kFlush,
  kMigration,
  kDispatch,
  kMaintenance,
  kSinkRender,
  kOther,
  kCount,
};

const char* ProfSubsystemName(ProfSubsystem sub);
const char* ProfOpName(ProfOp op);

struct SelfProfConfig {
  // Scopes shorter than this are aggregated into their cell but not recorded as host-clock
  // trace slices. Per-op scopes run well under a microsecond, so the default keeps only the
  // expensive outliers (GC cycles, compactions, sink renders) and the dual-clock trace stays
  // megabytes, not hundreds of megabytes, on million-op benches.
  std::uint64_t min_slice_ns = 50'000;
  // Host-slice ring bound; overflow evicts the oldest slice and counts it, so a saturated
  // ring holds the tail of the run.
  std::size_t max_slices = 1u << 15;
  // Busy-wait this many wall ns in every flash-subsystem scope (0 = off). Overridden by the
  // BLOCKHEAD_SELFPROF_SPIN_FLASH_NS environment variable; see file comment.
  std::uint64_t spin_flash_ns = 0;
};

// Wall-time totals for one (subsystem, op) cell.
struct ProfCell {
  std::uint64_t count = 0;
  std::uint64_t total_ns = 0;  // Inclusive of child scopes.
  std::uint64_t self_ns = 0;   // Exclusive: total minus time in child scopes.
};

// Derived metrics at one sampling instant (bench_main medians these across --repeat runs).
struct SelfProfSample {
  std::uint64_t wall_elapsed_ns = 0;  // Enable() -> now.
  std::uint64_t total_events = 0;     // All scopes closed.
  std::uint64_t flash_events = 0;     // kFlash scopes: the "simulated op" unit.
  double events_per_sec = 0.0;
  double ns_per_simulated_op = 0.0;  // wall_elapsed_ns / flash_events.
  double sim_speedup = 0.0;          // max SimTime observed / wall_elapsed_ns.
  std::uint64_t rss_bytes = 0;       // Current resident set (0 where unsupported).
  std::uint64_t peak_rss_bytes = 0;  // High-water resident set.
  std::uint64_t heap_bytes = 0;      // Allocator-reported in-use heap (0 where unsupported).
};

// One completed scope, host-clock-stamped relative to Enable() (the dual-clock trace track).
struct HostSlice {
  std::uint64_t begin_ns = 0;
  std::uint64_t end_ns = 0;
  ProfSubsystem sub = ProfSubsystem::kBench;
  ProfOp op = ProfOp::kOther;
};

class SelfProfiler {
 public:
  SelfProfiler() = default;
  SelfProfiler(const SelfProfiler&) = delete;
  SelfProfiler& operator=(const SelfProfiler&) = delete;

  // RAII wall-clock scope. Construction/destruction is a single branch while the profiler is
  // disabled. Scopes must be destroyed in LIFO order (stack discipline) — guaranteed by RAII
  // in the single-threaded simulator.
  class Scope {
   public:
    Scope(SelfProfiler* prof, ProfSubsystem sub, ProfOp op) {
      if (prof != nullptr) {
        if (prof->delegate_ != nullptr) {
          prof = prof->delegate_;  // Nested bundle (fleet device): credit the root profiler.
        }
        if (prof->enabled_) {
          Begin(prof, sub, op);
        }
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      if (prof_ != nullptr) {
        End();
      }
    }

   private:
    void Begin(SelfProfiler* prof, ProfSubsystem sub, ProfOp op);
    void End();

    SelfProfiler* prof_ BLOCKHEAD_SIM_GLOBAL = nullptr;
    Scope* parent_ BLOCKHEAD_SIM_GLOBAL = nullptr;
    std::uint64_t start_ns_ BLOCKHEAD_SIM_GLOBAL = 0;
    std::uint64_t child_ns_ BLOCKHEAD_SIM_GLOBAL = 0;  // Wall time spent in directly nested scopes.
    ProfSubsystem sub_ BLOCKHEAD_SIM_GLOBAL = ProfSubsystem::kBench;
    ProfOp op_ BLOCKHEAD_SIM_GLOBAL = ProfOp::kOther;
  };

  // Turns profiling on: zeroes all cells/slices and starts the wall-clock epoch. Reads the
  // BLOCKHEAD_SELFPROF_SPIN_FLASH_NS environment override (see file comment).
  void Enable(const SelfProfConfig& config = SelfProfConfig{});
  bool enabled() const { return enabled_; }
  const SelfProfConfig& config() const { return config_; }

  // Tracks the simulation-time frontier (max over all calls) for sim_speedup. Layers call
  // this with operation completion times; cheap no-op when disabled.
  void NoteSimTime(SimTime t) {
    if (delegate_ != nullptr) {
      delegate_->NoteSimTime(t);
      return;
    }
    if (enabled_ && t > max_sim_time_) {
      max_sim_time_ = t;
    }
  }

  // Forwards all scopes and sim-time notes from this profiler to `target` (nullptr restores
  // independence). Composite layers that give sub-components their own Telemetry bundles —
  // the fleet gives every device one — delegate the sub-bundle profilers to the bench-level
  // profiler, so device-internal flash/FTL scopes land in the run-wide attribution and
  // nest correctly under the fleet's own scopes (one shared scope stack). One hop only:
  // delegates of delegates are not chased.
  void DelegateTo(SelfProfiler* target) { delegate_ = (target == this) ? nullptr : target; }

  // Monotonic wall clock in nanoseconds (steady_clock — results never go backwards).
  static std::uint64_t WallNowNs() {
    return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                          std::chrono::steady_clock::now().time_since_epoch())
                                          .count());
  }

  const ProfCell& cell(ProfSubsystem sub, ProfOp op) const {
    return cells_[CellIndex(sub, op)];
  }
  SimTime max_sim_time() const { return max_sim_time_; }
  const std::deque<HostSlice>& host_slices() const { return slices_; }
  std::uint64_t slices_dropped() const { return slices_dropped_; }

  // Derived metrics now (memory read from the OS where supported, else 0).
  SelfProfSample Sample() const;

  // Publishes the breakdown and derived metrics into `registry` under "selfprof.host.*":
  //   selfprof.host.wall_elapsed_ns / total_events / flash_events      (counters)
  //   selfprof.host.events_per_sec / ns_per_simulated_op / sim_speedup (gauges)
  //   selfprof.host.rss_bytes / peak_rss_bytes / heap_bytes            (counters)
  //   selfprof.host.<subsystem>.<op>.{count,wall_ns,self_ns}           (counters, count > 0)
  //   selfprof.host.<subsystem>.self_ns                                 (counters)
  // Everything under the "selfprof.host." prefix is wall-clock-domain and therefore excluded
  // from determinism comparisons (bench_main strips the prefix when asserting repeat
  // byte-identity; BENCH_baseline.json never contains these rows).
  void PublishTo(MetricRegistry& registry) const;

  // The prefix that marks wall-clock-domain (nondeterministic) metrics.
  static constexpr const char* kHostMetricPrefix = "selfprof.host.";

 private:
  friend class Scope;

  static std::size_t CellIndex(ProfSubsystem sub, ProfOp op) {
    return static_cast<std::size_t>(sub) * static_cast<std::size_t>(ProfOp::kCount) +
           static_cast<std::size_t>(op);
  }

  void RecordSlice(ProfSubsystem sub, ProfOp op, std::uint64_t begin_ns, std::uint64_t end_ns);

  bool enabled_ BLOCKHEAD_SIM_GLOBAL = false;
  SelfProfConfig config_ BLOCKHEAD_SIM_GLOBAL;
  std::uint64_t epoch_ns_ BLOCKHEAD_SIM_GLOBAL = 0;  // WallNowNs() at Enable().
  SimTime max_sim_time_ BLOCKHEAD_SIM_GLOBAL = 0;
  Scope* top_
      BLOCKHEAD_SIM_GLOBAL = nullptr;  // Innermost open scope (single-threaded stack discipline).
  SelfProfiler* delegate_
      BLOCKHEAD_SIM_GLOBAL = nullptr;  // Non-null: forward everything to this profiler.
  std::array<ProfCell, static_cast<std::size_t>(ProfSubsystem::kCount) *
                           static_cast<std::size_t>(ProfOp::kCount)>
      cells_{};
  std::uint64_t total_events_ BLOCKHEAD_SIM_GLOBAL = 0;
  std::deque<HostSlice> slices_ BLOCKHEAD_SIM_GLOBAL;
  std::uint64_t slices_dropped_ BLOCKHEAD_SIM_GLOBAL = 0;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_TELEMETRY_SELFPROF_SELF_PROFILER_H_
