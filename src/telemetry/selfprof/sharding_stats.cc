#include "src/telemetry/selfprof/sharding_stats.h"

#include <algorithm>

namespace blockhead {

void ShardingStats::Init(std::uint32_t channels, std::uint32_t planes) {
  per_channel_.assign(channels, 0);
  per_plane_.assign(planes, 0);
  total_events_ = 0;
  cross_channel_deps_ = 0;
  same_channel_deps_ = 0;
  last_channel_ = 0;
  has_last_ = false;
}

double ShardingStats::CrossDepFraction() const {
  const std::uint64_t pairs = cross_channel_deps_ + same_channel_deps_;
  if (pairs == 0) {
    return 0.0;
  }
  return static_cast<double>(cross_channel_deps_) / static_cast<double>(pairs);
}

double ShardingStats::ParallelSpeedupBound() const {
  std::uint64_t max_channel = 0;
  for (const std::uint64_t n : per_channel_) {
    max_channel = std::max(max_channel, n);
  }
  if (max_channel == 0) {
    return 0.0;
  }
  return static_cast<double>(total_events_) / static_cast<double>(max_channel);
}

void ShardingStats::PublishTo(MetricRegistry& registry, std::string_view prefix) const {
  const std::string p = std::string(prefix) + ".sharding.";
  registry.GetCounter(p + "events")->Set(total_events_);
  registry.GetCounter(p + "cross_channel_deps")->Set(cross_channel_deps_);
  registry.GetCounter(p + "same_channel_deps")->Set(same_channel_deps_);
  registry.GetGauge(p + "cross_dep_fraction")->Set(CrossDepFraction());
  registry.GetGauge(p + "parallel_speedup_bound")->Set(ParallelSpeedupBound());
  Histogram* chan = registry.GetHistogram(p + "channel_occupancy");
  if (chan != nullptr) {
    chan->Reset();
    for (const std::uint64_t n : per_channel_) {
      chan->Record(n);
    }
  }
  Histogram* plane = registry.GetHistogram(p + "plane_occupancy");
  if (plane != nullptr) {
    plane->Reset();
    for (const std::uint64_t n : per_plane_) {
      plane->Record(n);
    }
  }
}

}  // namespace blockhead
