#include "src/telemetry/selfprof/self_profiler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__linux__)
#include <sys/resource.h>
#endif
#if defined(__GLIBC__) && (__GLIBC__ > 2 || (__GLIBC__ == 2 && __GLIBC_MINOR__ >= 33))
#include <malloc.h>
#define BLOCKHEAD_HAVE_MALLINFO2 1
#endif

namespace blockhead {

namespace {

// Current and peak resident set, allocator heap. Best-effort: unsupported platforms report 0
// and the derived metrics stay published (memory rows are informational, never gated).
std::uint64_t ReadRssBytes() {
#if defined(__linux__)
  // /proc/self/statm field 2 is resident pages.
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return 0;
  }
  unsigned long long size = 0;
  unsigned long long resident = 0;
  const int matched = std::fscanf(f, "%llu %llu", &size, &resident);
  std::fclose(f);
  if (matched != 2) {
    return 0;
  }
  return static_cast<std::uint64_t>(resident) * 4096u;
#else
  return 0;
#endif
}

std::uint64_t ReadPeakRssBytes() {
#if defined(__linux__)
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0;
  }
  return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024u;  // ru_maxrss is KiB on Linux.
#else
  return 0;
#endif
}

std::uint64_t ReadHeapBytes() {
#if defined(BLOCKHEAD_HAVE_MALLINFO2)
  const struct mallinfo2 info = mallinfo2();
  return static_cast<std::uint64_t>(info.uordblks);
#else
  return 0;
#endif
}

}  // namespace

const char* ProfSubsystemName(ProfSubsystem sub) {
  switch (sub) {
    case ProfSubsystem::kFlash:
      return "flash";
    case ProfSubsystem::kFtl:
      return "ftl";
    case ProfSubsystem::kZns:
      return "zns";
    case ProfSubsystem::kHostFtl:
      return "hostftl";
    case ProfSubsystem::kZoneFile:
      return "zonefile";
    case ProfSubsystem::kCache:
      return "cache";
    case ProfSubsystem::kKv:
      return "kv";
    case ProfSubsystem::kFleet:
      return "fleet";
    case ProfSubsystem::kSched:
      return "sched";
    case ProfSubsystem::kTelemetry:
      return "telemetry";
    case ProfSubsystem::kBench:
      return "bench";
    case ProfSubsystem::kCount:
      break;
  }
  return "unknown";
}

const char* ProfOpName(ProfOp op) {
  switch (op) {
    case ProfOp::kRead:
      return "read";
    case ProfOp::kWrite:
      return "write";
    case ProfOp::kAppend:
      return "append";
    case ProfOp::kErase:
      return "erase";
    case ProfOp::kReset:
      return "reset";
    case ProfOp::kGc:
      return "gc";
    case ProfOp::kCompaction:
      return "compaction";
    case ProfOp::kEviction:
      return "eviction";
    case ProfOp::kFlush:
      return "flush";
    case ProfOp::kMigration:
      return "migration";
    case ProfOp::kDispatch:
      return "dispatch";
    case ProfOp::kMaintenance:
      return "maintenance";
    case ProfOp::kSinkRender:
      return "sink_render";
    case ProfOp::kOther:
      return "other";
    case ProfOp::kCount:
      break;
  }
  return "unknown";
}

void SelfProfiler::Enable(const SelfProfConfig& config) {
  enabled_ = true;
  config_ = config;
  if (const char* spin = std::getenv("BLOCKHEAD_SELFPROF_SPIN_FLASH_NS")) {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(spin, &end, 10);
    if (end != spin) {
      config_.spin_flash_ns = v;
    }
  }
  cells_.fill(ProfCell{});
  slices_.clear();
  slices_dropped_ = 0;
  total_events_ = 0;
  max_sim_time_ = 0;
  top_ = nullptr;
  epoch_ns_ = WallNowNs();
}

void SelfProfiler::Scope::Begin(SelfProfiler* prof, ProfSubsystem sub, ProfOp op) {
  prof_ = prof;
  sub_ = sub;
  op_ = op;
  parent_ = prof->top_;
  prof->top_ = this;
  start_ns_ = WallNowNs();
}

void SelfProfiler::Scope::End() {
  std::uint64_t now = WallNowNs();
  // Deliberate-slowdown hook: inflate flash-subsystem scopes in wall time only (SimTime is
  // untouched), so the perf gate's failure path can be exercised deterministically.
  if (sub_ == ProfSubsystem::kFlash && prof_->config_.spin_flash_ns > 0) {
    const std::uint64_t until = start_ns_ + prof_->config_.spin_flash_ns;
    while (now < until) {
      now = WallNowNs();
    }
  }
  const std::uint64_t elapsed = now > start_ns_ ? now - start_ns_ : 0;
  ProfCell& cell = prof_->cells_[CellIndex(sub_, op_)];
  cell.count++;
  cell.total_ns += elapsed;
  cell.self_ns += elapsed > child_ns_ ? elapsed - child_ns_ : 0;
  prof_->total_events_++;
  if (parent_ != nullptr) {
    parent_->child_ns_ += elapsed;
  }
  prof_->top_ = parent_;
  if (elapsed >= prof_->config_.min_slice_ns) {
    prof_->RecordSlice(sub_, op_, start_ns_, now);
  }
  prof_ = nullptr;
}

void SelfProfiler::RecordSlice(ProfSubsystem sub, ProfOp op, std::uint64_t begin_ns,
                               std::uint64_t end_ns) {
  if (config_.max_slices == 0) {
    slices_dropped_++;
    return;
  }
  if (slices_.size() >= config_.max_slices) {
    slices_.pop_front();
    slices_dropped_++;
  }
  HostSlice s;
  s.begin_ns = begin_ns > epoch_ns_ ? begin_ns - epoch_ns_ : 0;
  s.end_ns = end_ns > epoch_ns_ ? end_ns - epoch_ns_ : 0;
  s.sub = sub;
  s.op = op;
  slices_.push_back(s);
}

SelfProfSample SelfProfiler::Sample() const {
  SelfProfSample s;
  const std::uint64_t now = WallNowNs();
  s.wall_elapsed_ns = now > epoch_ns_ ? now - epoch_ns_ : 0;
  s.total_events = total_events_;
  for (std::size_t op = 0; op < static_cast<std::size_t>(ProfOp::kCount); ++op) {
    s.flash_events +=
        cells_[CellIndex(ProfSubsystem::kFlash, static_cast<ProfOp>(op))].count;
  }
  const double wall_sec = static_cast<double>(s.wall_elapsed_ns) * 1e-9;
  if (wall_sec > 0.0) {
    s.events_per_sec = static_cast<double>(s.total_events) / wall_sec;
  }
  if (s.flash_events > 0) {
    s.ns_per_simulated_op =
        static_cast<double>(s.wall_elapsed_ns) / static_cast<double>(s.flash_events);
  }
  if (s.wall_elapsed_ns > 0) {
    s.sim_speedup =
        static_cast<double>(max_sim_time_) / static_cast<double>(s.wall_elapsed_ns);
  }
  s.rss_bytes = ReadRssBytes();
  s.peak_rss_bytes = ReadPeakRssBytes();
  s.heap_bytes = ReadHeapBytes();
  return s;
}

void SelfProfiler::PublishTo(MetricRegistry& registry) const {
  const SelfProfSample s = Sample();
  const std::string p = kHostMetricPrefix;
  registry.GetCounter(p + "wall_elapsed_ns")->Set(s.wall_elapsed_ns);
  registry.GetCounter(p + "total_events")->Set(s.total_events);
  registry.GetCounter(p + "flash_events")->Set(s.flash_events);
  registry.GetGauge(p + "events_per_sec")->Set(s.events_per_sec);
  registry.GetGauge(p + "ns_per_simulated_op")->Set(s.ns_per_simulated_op);
  registry.GetGauge(p + "sim_speedup")->Set(s.sim_speedup);
  registry.GetCounter(p + "rss_bytes")->Set(s.rss_bytes);
  registry.GetCounter(p + "peak_rss_bytes")->Set(s.peak_rss_bytes);
  registry.GetCounter(p + "heap_bytes")->Set(s.heap_bytes);
  registry.GetCounter(p + "trace_slices_dropped")->Set(slices_dropped_);
  for (std::size_t sub = 0; sub < static_cast<std::size_t>(ProfSubsystem::kCount); ++sub) {
    std::uint64_t sub_self = 0;
    std::uint64_t sub_count = 0;
    for (std::size_t op = 0; op < static_cast<std::size_t>(ProfOp::kCount); ++op) {
      const ProfCell& c =
          cells_[CellIndex(static_cast<ProfSubsystem>(sub), static_cast<ProfOp>(op))];
      if (c.count == 0) {
        continue;
      }
      sub_self += c.self_ns;
      sub_count += c.count;
      const std::string cell_prefix = p + ProfSubsystemName(static_cast<ProfSubsystem>(sub)) +
                                      "." + ProfOpName(static_cast<ProfOp>(op)) + ".";
      registry.GetCounter(cell_prefix + "count")->Set(c.count);
      registry.GetCounter(cell_prefix + "wall_ns")->Set(c.total_ns);
      registry.GetCounter(cell_prefix + "self_ns")->Set(c.self_ns);
    }
    if (sub_count > 0) {
      registry
          .GetCounter(p + ProfSubsystemName(static_cast<ProfSubsystem>(sub)) + ".self_ns")
          ->Set(sub_self);
    }
  }
}

}  // namespace blockhead
