// Pluggable output sinks for MetricRegistry snapshots.
//
// Three formats, all deterministic (entries arrive sorted by name from Snapshot(), doubles are
// formatted with a fixed printf spec, nothing reads the wall clock), so two same-seed runs of
// a bench produce byte-identical dumps — the property BENCH_*.json regression trajectories
// rely on:
//
//   * TableSink     — the human-readable fixed-width table the benches print;
//   * JsonLinesSink — one JSON object per line, one line per metric ("--json" flag);
//   * CsvSink       — one CSV row per metric with a fixed header ("--csv" flag).
//
// Histograms serialize as count/min/max/mean plus p50/p90/p95/p99/p999 (values are
// nanoseconds; names carry the "_ns" convention).

#ifndef BLOCKHEAD_SRC_TELEMETRY_SINK_H_
#define BLOCKHEAD_SRC_TELEMETRY_SINK_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/telemetry/metric_registry.h"
#include "src/util/status.h"

namespace blockhead {

class MetricSink {
 public:
  virtual ~MetricSink() = default;

  // Appends the rendered snapshot to `out`. `bench_name` tags every record so dumps from
  // different benches can be concatenated.
  virtual void Render(std::string_view bench_name,
                      const std::vector<MetricRegistry::Entry>& snapshot,
                      std::string* out) const = 0;
};

class TableSink final : public MetricSink {
 public:
  void Render(std::string_view bench_name, const std::vector<MetricRegistry::Entry>& snapshot,
              std::string* out) const override;
};

class JsonLinesSink final : public MetricSink {
 public:
  void Render(std::string_view bench_name, const std::vector<MetricRegistry::Entry>& snapshot,
              std::string* out) const override;
};

class CsvSink final : public MetricSink {
 public:
  void Render(std::string_view bench_name, const std::vector<MetricRegistry::Entry>& snapshot,
              std::string* out) const override;
};

// Fixed, locale-independent double rendering shared by all sinks ("%.6g" via snprintf).
std::string FormatMetricDouble(double v);

// JSON string-content escaping shared by every JSON emitter in the telemetry layer (metric
// sinks, timeline exports, reqpath dumps, audit timelines): backslash-escapes quotes and
// backslashes and renders control characters as \u00XX. Names are usually ASCII identifiers,
// but tenant/track names are caller-supplied and must never corrupt the stream.
std::string JsonEscape(std::string_view s);

// CSV field escaping (RFC 4180): fields containing commas, quotes, or newlines are wrapped
// in double quotes with embedded quotes doubled; everything else passes through unchanged.
std::string CsvEscape(std::string_view s);

Status WriteStringToFile(const std::string& path, std::string_view content);

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_TELEMETRY_SINK_H_
