// Per-request critical-path ledger: where did every nanosecond of one host op's latency go,
// and who inflicted the waits.
//
// The ZNS characterization papers show that tail latency on zoned (and conventional) devices
// is dominated by *interference* — GC copies, zone compaction, migrations, other tenants —
// not media latency. The stack's merged histograms can measure a p99.9 but cannot explain it.
// This module closes that gap with three pieces:
//
//   * A critical-path ledger. Each host operation carries a RequestContext (tenant id +
//     operation class) threaded from the fleet router down to flash ops. While the request is
//     active, every layer charges wall-to-wall SimTime intervals of its latency to exactly one
//     PathSegment (admission queue, device queue, flash busy, GC stall, compaction stall,
//     migration stall, replication straggler). Charges are clipped against a high-water mark
//     (arrival order wins overlap) so segments are exclusive by construction, and truncated at
//     the host-visible completion (write buffering acknowledges before the program lands).
//     Whatever no layer claimed becomes kHostOther. The attribution identity — sum of segment
//     durations == end-to-end latency, exactly — therefore holds for every request and is
//     unit-tested across stack configs like the provenance and selfprof identities.
//
//   * Tail exemplar capture. A bounded reservoir keeps the worst-k requests per op class with
//     their full segment breakdown and the identity of the interfering work: the per-request
//     (WriteCause × StackLayer) interference matrix plus the single longest interfering
//     interval and the maintenance track it ran on. Deterministic (ties keep the earliest
//     request), dumpable as JSON (--exemplars), and renderable as Chrome-trace flow arrows
//     from the interfering GC/compaction slice to the victim request.
//
//   * Per-tenant SLO tracking. Declarative objectives ("tenant 1 p99 read <= 400us") are
//     evaluated over rolling SimTime windows (RollingHistogram) with short/long-window
//     burn-rate counters published through MetricRegistry and a machine-readable report
//     (--slo). Burn rate = observed violation fraction / error budget (1 - quantile); an
//     objective is breached when both windows burn faster than budget.
//
// Cost model: disabled by default; every hot-path entry point is a single branch until
// Enable() (the selfprof pattern). When disabled, PublishTo emits nothing, so snapshots are
// byte-identical with the feature off vs. absent. Everything is SimTime-domain and
// deterministic — exemplar dumps and SLO reports are byte-identical across same-seed runs.
//
// Composite layers (the fleet gives every device its own Telemetry bundle) call DelegateTo
// so device-level charges land in the fleet-level active request; one hop only, like the
// self-profiler. The simulator is single-threaded: at most one request is active at a time,
// and RequestScope is outermost-wins (an inner scope while one is active is inert), so the
// fleet driver can own the request while per-device paths still work standalone.

#ifndef BLOCKHEAD_SRC_TELEMETRY_REQPATH_REQUEST_PATH_H_
#define BLOCKHEAD_SRC_TELEMETRY_REQPATH_REQUEST_PATH_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/shard_safety.h"
#include "src/telemetry/metric_registry.h"
#include "src/telemetry/provenance.h"
#include "src/util/histogram.h"
#include "src/util/types.h"

namespace blockhead {

class Timeline;

// Host operation class a request belongs to (the exemplar-reservoir and SLO key).
enum class ReqOp : std::uint8_t {
  kRead = 0,
  kWrite,
  kTrim,
};
inline constexpr int kReqOpCount = 3;
const char* ReqOpName(ReqOp op);

// Identity a host op carries through the stack. Passed by const reference and never stored
// past op completion (tools/lint.py enforces both); the ledger copies the two fields it
// needs into the active-request record.
struct RequestContext {
  std::uint32_t tenant = 0;  // Tenant / stream id (0 = the default tenant).
  ReqOp op = ReqOp::kRead;
};

// Exclusive critical-path segments. Every charged interval lands in exactly one.
enum class PathSegment : std::uint8_t {
  kAdmissionQueue = 0,  // Fleet admission: token wait, queue-full shed retries.
  kDeviceQueue,         // Serialization before media: bus wait, write-pointer sync, slots.
  kFlashBusy,           // The request's own media + transfer time.
  kGcStall,             // Waiting out device GC / wear migration on the target plane.
  kCompactionStall,     // Waiting out host-side reclaim (zone/LSM compaction, eviction).
  kMigrationStall,      // Waiting out fleet shard migration (dual-write mirror, copies).
  kReplication,         // Write fan-out: time beyond the fastest replica's path.
  kHostOther,           // Residual no layer claimed (host-side bookkeeping, idle gaps).
};
inline constexpr int kPathSegmentCount = 8;
const char* PathSegmentName(PathSegment seg);

// Folds an interfering write cause into the stall segment it manifests as.
PathSegment SegmentForCause(WriteCause cause);

struct ReqPathConfig {
  // Worst-k reservoir size per op class.
  std::size_t exemplars_per_op = 8;
};

// One objective: quantile of `op` latency for `tenant` must stay <= target_ns, evaluated
// over a rolling `window` (and a slow 8x window for the second burn-rate signal).
struct SloObjective {
  std::string name;  // Stable identifier used in metric names and the report.
  std::uint32_t tenant = 0;
  ReqOp op = ReqOp::kRead;
  double quantile = 0.99;
  std::uint64_t target_ns = 0;
  SimTime window = 10 * kMillisecond;
};

class RequestPathLedger {
 public:
  RequestPathLedger() = default;
  RequestPathLedger(const RequestPathLedger&) = delete;
  RequestPathLedger& operator=(const RequestPathLedger&) = delete;

  // Turns the ledger on (zeroes all accumulated state). Objectives survive re-Enable.
  void Enable(const ReqPathConfig& config = ReqPathConfig{});
  bool enabled() const { return enabled_; }
  const ReqPathConfig& config() const { return config_; }

  // Forwards everything to `target` (nullptr restores independence). The fleet delegates its
  // devices' ledgers to the fleet-level one so device-internal charges attribute to the
  // fleet-level active request. One hop only; delegates of delegates are not chased.
  void DelegateTo(RequestPathLedger* target) {
    delegate_ = (target == this) ? nullptr : target;
  }

  // Registers an SLO objective (deduplicated by name; re-adding replaces).
  void AddObjective(const SloObjective& objective);

  // RAII ownership of one request's measurement. Outermost wins: constructing a scope while
  // a request is already active yields an inert scope (the fleet driver opens the real one;
  // Fleet::Read/Write's internal scopes then no-op but still cover direct calls in tests).
  // Complete() closes the request at its host-visible completion time; destruction without
  // Complete() abandons it (counted, nothing recorded).
  class RequestScope {
   public:
    RequestScope(RequestPathLedger* ledger, const RequestContext& ctx, SimTime issue) {
      if (ledger != nullptr) {
        RequestPathLedger* l = ledger->Resolve();
        if (l->enabled_ && !l->active_ && l->suppress_ == 0) {
          owner_ = l;
          l->BeginRequest(ctx, issue);
        }
      }
    }
    RequestScope(const RequestScope&) = delete;
    RequestScope& operator=(const RequestScope&) = delete;
    ~RequestScope() {
      if (owner_ != nullptr) {
        owner_->AbandonRequest();
      }
    }

    void Complete(SimTime completion) {
      if (owner_ != nullptr) {
        owner_->CompleteRequest(completion);
        owner_ = nullptr;
      }
    }
    // True when this scope owns the active request (false: outer scope owns it, or disabled).
    bool owns() const { return owner_ != nullptr; }

   private:
    RequestPathLedger* owner_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  };

  // Marks a section as internal background work driven from *outside* any layer entry point
  // (fleet migration chunk copies call device ReadBlocks/WriteBlocks directly): RequestScopes
  // constructed while one is open stay inert, so background copies are never recorded as host
  // requests. Nestable; no effect on an already-active request's charges.
  class SuppressScope {
   public:
    explicit SuppressScope(RequestPathLedger* ledger) {
      if (ledger != nullptr) {
        ledger_ = ledger->Resolve();
        ledger_->suppress_++;
      }
    }
    SuppressScope(const SuppressScope&) = delete;
    SuppressScope& operator=(const SuppressScope&) = delete;
    ~SuppressScope() {
      if (ledger_ != nullptr) {
        ledger_->suppress_--;
      }
    }

   private:
    RequestPathLedger* ledger_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  };

  // Reclassifies every charge made while open (fleet: non-primary replica legs charge
  // kReplication, migration mirror writes charge kMigrationStall). Innermost wins.
  class SegmentOverrideScope {
   public:
    SegmentOverrideScope(RequestPathLedger* ledger, PathSegment segment) {
      if (ledger != nullptr) {
        RequestPathLedger* l = ledger->Resolve();
        if (l->enabled_) {
          ledger_ = l;
          l->override_stack_.push_back(OverrideRec{segment, false, WriteCause::kHostWrite,
                                                   StackLayer::kHost, {}});
        }
      }
    }
    SegmentOverrideScope(const SegmentOverrideScope&) = delete;
    SegmentOverrideScope& operator=(const SegmentOverrideScope&) = delete;
    ~SegmentOverrideScope() {
      if (ledger_ != nullptr) {
        ledger_->override_stack_.pop_back();
      }
    }

   private:
    RequestPathLedger* ledger_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  };

  // Like SegmentOverrideScope, but every charge made while open additionally counts as
  // interference with the given identity. Host-side foreground reclaim uses this: the GC's
  // own flash ops run as host-class operations inside the victim's write path, so their
  // charges must land in the stall segment for `cause` and name the reclaim as interferer.
  class InterferenceScope {
   public:
    InterferenceScope(RequestPathLedger* ledger, WriteCause cause, StackLayer layer,
                      std::string_view track) {
      if (ledger != nullptr) {
        RequestPathLedger* l = ledger->Resolve();
        if (l->enabled_) {
          ledger_ = l;
          l->override_stack_.push_back(
              OverrideRec{SegmentForCause(cause), true, cause, layer, std::string(track)});
        }
      }
    }
    InterferenceScope(const InterferenceScope&) = delete;
    InterferenceScope& operator=(const InterferenceScope&) = delete;
    ~InterferenceScope() {
      if (ledger_ != nullptr) {
        ledger_->override_stack_.pop_back();
      }
    }

   private:
    RequestPathLedger* ledger_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  };

  // Hot-path charge: attributes [start, end) of the active request's latency to `segment`.
  // The interval is clipped to the charge high-water mark (earlier charges win overlap) and
  // later truncated at completion. No-op (one delegate hop + one branch) when disabled or no
  // request is active.
  void ChargeInterval(SimTime start, SimTime end, PathSegment segment) {
    RequestPathLedger* l = Resolve();
    if (l->active_) {
      l->ChargeSlow(start, end, segment, /*is_interference=*/false, WriteCause::kHostWrite,
                    StackLayer::kHost, {});
    }
  }

  // Hot-path charge for waits inflicted by competing work: like ChargeInterval, but the
  // segment is derived from the interfering write cause (SegmentForCause), and the
  // (cause, layer, track) identity feeds the request's interference matrix and the exemplar
  // flow arrow. `track` is the timeline maintenance track the interferer ran on.
  void ChargeInterference(SimTime start, SimTime end, WriteCause cause, StackLayer layer,
                          std::string_view track) {
    RequestPathLedger* l = Resolve();
    if (l->active_) {
      l->ChargeSlow(start, end, SegmentForCause(cause), /*is_interference=*/true, cause,
                    layer, track);
    }
  }

  // True when a request is active on the resolved ledger — lets layers skip charge
  // bookkeeping wholesale.
  bool InRequest() {
    return Resolve()->active_;
  }

  // --- Accumulated results (resolved ledger state; tests and sinks) -----------------------

  struct OpTotals {
    std::uint64_t count = 0;
    std::uint64_t latency_ns = 0;                      // Sum of end-to-end latencies.
    std::uint64_t seg_ns[kPathSegmentCount] = {};      // Sum of per-segment charges.
  };

  struct Exemplar {
    RequestContext ctx;
    SimTime issue = 0;
    SimTime completion = 0;
    std::uint64_t latency_ns = 0;
    std::uint64_t seg_ns[kPathSegmentCount] = {};
    // Dominant interference over the whole request (ties: lowest cause, then layer index).
    WriteCause top_cause = WriteCause::kHostWrite;
    StackLayer top_layer = StackLayer::kHost;
    std::uint64_t top_interference_ns = 0;
    // Longest single interfering interval: the flow-arrow source.
    SimTime interferer_begin = 0;
    SimTime interferer_end = 0;
    WriteCause interferer_cause = WriteCause::kHostWrite;
    StackLayer interferer_layer = StackLayer::kHost;
    std::string interferer_track;  // Timeline maintenance track ("" = none recorded).
    std::uint64_t seq = 0;  // Completion order; the deterministic tiebreak.
  };

  const OpTotals& op_totals(ReqOp op) const {
    return op_totals_[static_cast<int>(op)];
  }
  // Worst-k for one op class, ordered (latency desc, seq asc).
  const std::vector<Exemplar>& exemplars(ReqOp op) const {
    return exemplars_[static_cast<int>(op)];
  }
  std::uint64_t completed() const { return seq_; }
  std::uint64_t abandoned() const { return abandoned_; }
  // Cumulative interference by (cause, layer) across all completed requests.
  std::uint64_t interference_ns(WriteCause cause, StackLayer layer) const {
    return cum_interference_ns_[static_cast<int>(cause)][static_cast<int>(layer)];
  }
  // The last completed request (identity spot checks in tests).
  const Exemplar& last_completed() const { return last_completed_; }

  // Aggregate attribution identity: these are equal exactly for any run.
  std::uint64_t TotalLatencyNs() const;
  std::uint64_t TotalSegmentNs() const;

  // One registered objective's standing at the last completion time (what the JSON report
  // serializes, exposed as a struct for bench tables and tests).
  struct SloSnapshot {
    SloObjective objective;
    std::uint64_t current_ns = 0;  // Rolling short-window quantile.
    std::uint64_t total = 0;       // Short-window completions.
    std::uint64_t violations = 0;  // Short-window target misses.
    double burn_short = 0.0;
    double burn_long = 0.0;
    bool breached = false;  // Both windows burning faster than the error budget.
  };
  std::vector<SloSnapshot> SloSnapshots() const;

  // --- Outputs ----------------------------------------------------------------------------

  // Publishes per-op segment totals, per-tenant latency histograms, the interference matrix,
  // and SLO burn rates under "reqpath.*". Emits nothing while disabled, so feature-off
  // snapshots are byte-identical to feature-absent ones.
  void PublishTo(MetricRegistry* registry) const;

  // Deterministic JSON dump of the exemplar reservoirs (--exemplars).
  std::string DumpExemplarsJson() const;

  // Deterministic JSON SLO report (--slo): per objective, the rolling quantile, violation
  // counts, and short/long burn rates at the last completion time.
  std::string SloReportJson() const;

  // Renders exemplars into `timeline`: a victim slice per exemplar on a per-op-class host
  // track plus a flow arrow from the interfering maintenance slice to the victim.
  void EmitExemplarTimeline(Timeline* timeline) const;

 private:
  struct ChargeRec {
    SimTime start = 0;
    SimTime end = 0;
    PathSegment segment = PathSegment::kHostOther;
  };

  struct OverrideRec {
    PathSegment segment = PathSegment::kHostOther;
    bool interference = false;  // Charges under this override count as interference too.
    WriteCause cause = WriteCause::kHostWrite;
    StackLayer layer = StackLayer::kHost;
    std::string track;
  };

  // Per-(tenant, op) accumulation. Keyed by (tenant << 2) | op — op fits in 2 bits.
  struct TenantTotals {
    std::uint64_t count = 0;
    std::uint64_t seg_ns[kPathSegmentCount] = {};
    Histogram latency;
  };

  struct SloState {
    SloObjective objective;
    RollingHistogram window_hist;   // Short window: the reported rolling quantile.
    RollingCounter short_total;     // Completions in the short window.
    RollingCounter short_violations;
    RollingCounter long_total;      // 8x window: the slow burn signal.
    RollingCounter long_violations;
  };

  struct SloEval {
    std::uint64_t current_ns = 0;  // Rolling quantile over the short window.
    std::uint64_t total = 0;       // Short-window completions.
    std::uint64_t violations = 0;  // Short-window target misses.
    double burn_short = 0.0;
    double burn_long = 0.0;
    bool breached = false;  // Both windows burning faster than the error budget.
  };
  SloEval Evaluate(const SloState& state, SimTime now) const;

  RequestPathLedger* Resolve() {
    return delegate_ != nullptr ? delegate_ : this;
  }

  void BeginRequest(const RequestContext& ctx, SimTime issue);
  void ChargeSlow(SimTime start, SimTime end, PathSegment segment, bool is_interference,
                  WriteCause cause, StackLayer layer, std::string_view track);
  void CompleteRequest(SimTime completion);
  void AbandonRequest();
  void OfferExemplar(const Exemplar& candidate);

  bool enabled_ BLOCKHEAD_SIM_GLOBAL = false;
  ReqPathConfig config_ BLOCKHEAD_SIM_GLOBAL;
  RequestPathLedger* delegate_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  int suppress_ BLOCKHEAD_SIM_GLOBAL = 0;  // SuppressScope depth: >0 keeps new RequestScopes inert.

  // Active request (at most one: the simulator is single-threaded).
  bool active_ BLOCKHEAD_SIM_GLOBAL = false;
  RequestContext ctx_ BLOCKHEAD_SIM_GLOBAL;
  SimTime issue_ BLOCKHEAD_SIM_GLOBAL = 0;
  SimTime watermark_
      BLOCKHEAD_SIM_GLOBAL = 0;  // End of the last accepted charge; earlier charges win overlap.
  std::vector<ChargeRec> charges_
      BLOCKHEAD_SIM_GLOBAL;  // Disjoint, ordered; capacity reused across requests.
  std::uint64_t req_interference_ns_[kWriteCauseCount][kStackLayerCount] BLOCKHEAD_SIM_GLOBAL = {};
  std::uint64_t longest_interference_ns_ BLOCKHEAD_SIM_GLOBAL = 0;
  SimTime interferer_begin_ BLOCKHEAD_SIM_GLOBAL = 0;
  SimTime interferer_end_ BLOCKHEAD_SIM_GLOBAL = 0;
  WriteCause interferer_cause_ BLOCKHEAD_SIM_GLOBAL = WriteCause::kHostWrite;
  StackLayer interferer_layer_ BLOCKHEAD_SIM_GLOBAL = StackLayer::kHost;
  std::string interferer_track_ BLOCKHEAD_SIM_GLOBAL;
  std::vector<OverrideRec> override_stack_ BLOCKHEAD_SIM_GLOBAL;

  // Run accumulation.
  std::uint64_t seq_ BLOCKHEAD_SIM_GLOBAL = 0;
  std::uint64_t abandoned_ BLOCKHEAD_SIM_GLOBAL = 0;
  OpTotals op_totals_[kReqOpCount] BLOCKHEAD_SIM_GLOBAL;
  std::map<std::uint64_t, TenantTotals> tenants_ BLOCKHEAD_SIM_GLOBAL;
  std::uint64_t cum_interference_ns_[kWriteCauseCount][kStackLayerCount] BLOCKHEAD_SIM_GLOBAL = {};
  Exemplar last_completed_ BLOCKHEAD_SIM_GLOBAL;
  std::vector<Exemplar> exemplars_[kReqOpCount] BLOCKHEAD_SIM_GLOBAL;
  std::vector<SloState> slos_ BLOCKHEAD_SIM_GLOBAL;
  SimTime last_completion_ BLOCKHEAD_SIM_GLOBAL = 0;
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_TELEMETRY_REQPATH_REQUEST_PATH_H_
