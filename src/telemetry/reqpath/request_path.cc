#include "src/telemetry/reqpath/request_path.h"

#include <algorithm>
#include <cstdio>

#include "src/telemetry/sink.h"  // FormatMetricDouble + JsonEscape: shared renderers.
#include "src/telemetry/timeline.h"

namespace blockhead {

namespace {

// Burn-rate long window multiplier: the slow signal confirming a fast-window burn is real.
constexpr std::uint64_t kLongWindowFactor = 8;

}  // namespace

const char* ReqOpName(ReqOp op) {
  switch (op) {
    case ReqOp::kRead:
      return "read";
    case ReqOp::kWrite:
      return "write";
    case ReqOp::kTrim:
      return "trim";
  }
  return "unknown";
}

const char* PathSegmentName(PathSegment seg) {
  switch (seg) {
    case PathSegment::kAdmissionQueue:
      return "admission_queue";
    case PathSegment::kDeviceQueue:
      return "device_queue";
    case PathSegment::kFlashBusy:
      return "flash_busy";
    case PathSegment::kGcStall:
      return "gc_stall";
    case PathSegment::kCompactionStall:
      return "compaction_stall";
    case PathSegment::kMigrationStall:
      return "migration_stall";
    case PathSegment::kReplication:
      return "replication";
    case PathSegment::kHostOther:
      return "host_other";
  }
  return "unknown";
}

PathSegment SegmentForCause(WriteCause cause) {
  switch (cause) {
    case WriteCause::kDeviceGC:
    case WriteCause::kWearMigration:
      return PathSegment::kGcStall;
    case WriteCause::kBlockEmulationReclaim:
    case WriteCause::kZoneCompaction:
    case WriteCause::kLsmFlush:
    case WriteCause::kLsmCompaction:
    case WriteCause::kCacheEviction:
    case WriteCause::kPadding:
      return PathSegment::kCompactionStall;
    case WriteCause::kFleetMigration:
      return PathSegment::kMigrationStall;
    case WriteCause::kHostWrite:
      // Interference with no maintenance scope open: another host op holds the plane. The
      // wait is real but not reclamation-inflicted; count it as device GC-class stall.
      return PathSegment::kGcStall;
  }
  return PathSegment::kGcStall;
}

void RequestPathLedger::Enable(const ReqPathConfig& config) {
  enabled_ = true;
  config_ = config;
  if (config_.exemplars_per_op == 0) {
    config_.exemplars_per_op = 1;
  }
  active_ = false;
  charges_.clear();
  override_stack_.clear();
  seq_ = 0;
  abandoned_ = 0;
  last_completion_ = 0;
  last_completed_ = Exemplar{};
  for (int op = 0; op < kReqOpCount; ++op) {
    op_totals_[op] = OpTotals{};
    exemplars_[op].clear();
  }
  tenants_.clear();
  for (auto& row : cum_interference_ns_) {
    for (auto& cell : row) {
      cell = 0;
    }
  }
}

void RequestPathLedger::AddObjective(const SloObjective& objective) {
  RequestPathLedger* l = Resolve();
  for (SloState& s : l->slos_) {
    if (s.objective.name == objective.name) {
      s = SloState{objective,
                   RollingHistogram(objective.window),
                   RollingCounter(objective.window),
                   RollingCounter(objective.window),
                   RollingCounter(objective.window * kLongWindowFactor),
                   RollingCounter(objective.window * kLongWindowFactor)};
      return;
    }
  }
  l->slos_.push_back(SloState{objective,
                              RollingHistogram(objective.window),
                              RollingCounter(objective.window),
                              RollingCounter(objective.window),
                              RollingCounter(objective.window * kLongWindowFactor),
                              RollingCounter(objective.window * kLongWindowFactor)});
}

void RequestPathLedger::BeginRequest(const RequestContext& ctx, SimTime issue) {
  active_ = true;
  ctx_ = ctx;
  issue_ = issue;
  watermark_ = issue;
  charges_.clear();
  for (auto& row : req_interference_ns_) {
    for (auto& cell : row) {
      cell = 0;
    }
  }
  longest_interference_ns_ = 0;
  interferer_begin_ = interferer_end_ = 0;
  interferer_cause_ = WriteCause::kHostWrite;
  interferer_layer_ = StackLayer::kHost;
  interferer_track_.clear();
}

void RequestPathLedger::ChargeSlow(SimTime start, SimTime end, PathSegment segment,
                                   bool is_interference, WriteCause cause, StackLayer layer,
                                   std::string_view track) {
  if (!override_stack_.empty()) {
    const OverrideRec& over = override_stack_.back();
    segment = over.segment;
    if (over.interference) {
      is_interference = true;
      cause = over.cause;
      layer = over.layer;
      track = over.track;
    }
  }
  // Clip against the high-water mark: earlier charges own their interval (layers charge in
  // issue order down the stack, so the first claimant is the proximate wait).
  if (start < watermark_) {
    start = watermark_;
  }
  if (end <= start) {
    return;
  }
  charges_.push_back(ChargeRec{start, end, segment});
  watermark_ = end;
  if (is_interference) {
    const std::uint64_t ns = end - start;
    req_interference_ns_[static_cast<int>(cause)][static_cast<int>(layer)] += ns;
    if (ns > longest_interference_ns_) {
      longest_interference_ns_ = ns;
      interferer_begin_ = start;
      interferer_end_ = end;
      interferer_cause_ = cause;
      interferer_layer_ = layer;
      interferer_track_.assign(track);
    }
  }
}

void RequestPathLedger::CompleteRequest(SimTime completion) {
  active_ = false;
  if (completion < issue_) {
    completion = issue_;
  }
  const std::uint64_t latency = completion - issue_;

  // Truncate every charge at the host-visible completion: buffered writes acknowledge before
  // the program lands, so in-flight media charges can extend past the latency the host saw.
  std::uint64_t seg_ns[kPathSegmentCount] = {};
  std::uint64_t charged = 0;
  for (const ChargeRec& rec : charges_) {
    const SimTime end = std::min(rec.end, completion);
    if (end > rec.start) {
      seg_ns[static_cast<int>(rec.segment)] += end - rec.start;
      charged += end - rec.start;
    }
  }
  // The identity: charges are disjoint subintervals of [issue, completion], so the residual
  // is nonnegative and the segment sum equals the latency exactly.
  seg_ns[static_cast<int>(PathSegment::kHostOther)] += latency - charged;

  const std::uint64_t seq = seq_++;
  OpTotals& totals = op_totals_[static_cast<int>(ctx_.op)];
  totals.count++;
  totals.latency_ns += latency;
  TenantTotals& tenant =
      tenants_[(static_cast<std::uint64_t>(ctx_.tenant) << 2) | static_cast<int>(ctx_.op)];
  tenant.count++;
  tenant.latency.Record(latency);
  for (int i = 0; i < kPathSegmentCount; ++i) {
    totals.seg_ns[i] += seg_ns[i];
    tenant.seg_ns[i] += seg_ns[i];
  }
  for (int c = 0; c < kWriteCauseCount; ++c) {
    for (int l = 0; l < kStackLayerCount; ++l) {
      cum_interference_ns_[c][l] += req_interference_ns_[c][l];
    }
  }
  if (completion > last_completion_) {
    last_completion_ = completion;
  }

  Exemplar record;
  record.ctx = ctx_;
  record.issue = issue_;
  record.completion = completion;
  record.latency_ns = latency;
  for (int i = 0; i < kPathSegmentCount; ++i) {
    record.seg_ns[i] = seg_ns[i];
  }
  for (int c = 0; c < kWriteCauseCount; ++c) {
    for (int l = 0; l < kStackLayerCount; ++l) {
      if (req_interference_ns_[c][l] > record.top_interference_ns) {
        record.top_interference_ns = req_interference_ns_[c][l];
        record.top_cause = static_cast<WriteCause>(c);
        record.top_layer = static_cast<StackLayer>(l);
      }
    }
  }
  record.interferer_begin = interferer_begin_;
  record.interferer_end = std::min(interferer_end_, completion);
  record.interferer_cause = interferer_cause_;
  record.interferer_layer = interferer_layer_;
  record.interferer_track = interferer_track_;
  record.seq = seq;
  last_completed_ = record;
  OfferExemplar(record);

  for (SloState& s : slos_) {
    if (s.objective.tenant != ctx_.tenant || s.objective.op != ctx_.op) {
      continue;
    }
    s.window_hist.Record(completion, latency);
    s.short_total.Add(completion);
    s.long_total.Add(completion);
    if (latency > s.objective.target_ns) {
      s.short_violations.Add(completion);
      s.long_violations.Add(completion);
    }
  }
}

void RequestPathLedger::AbandonRequest() {
  active_ = false;
  abandoned_++;
}

void RequestPathLedger::OfferExemplar(const Exemplar& candidate) {
  std::vector<Exemplar>& pool = exemplars_[static_cast<int>(candidate.ctx.op)];
  // Ordered worst-first: (latency desc, seq asc). On ties the earliest request stays, so
  // the reservoir is independent of completion order perturbations at equal latency.
  if (pool.size() >= config_.exemplars_per_op &&
      candidate.latency_ns <= pool.back().latency_ns) {
    return;
  }
  auto pos = std::upper_bound(pool.begin(), pool.end(), candidate,
                              [](const Exemplar& a, const Exemplar& b) {
                                if (a.latency_ns != b.latency_ns) {
                                  return a.latency_ns > b.latency_ns;
                                }
                                return a.seq < b.seq;
                              });
  pool.insert(pos, candidate);
  if (pool.size() > config_.exemplars_per_op) {
    pool.pop_back();
  }
}

std::uint64_t RequestPathLedger::TotalLatencyNs() const {
  std::uint64_t sum = 0;
  for (const OpTotals& t : op_totals_) {
    sum += t.latency_ns;
  }
  return sum;
}

std::uint64_t RequestPathLedger::TotalSegmentNs() const {
  std::uint64_t sum = 0;
  for (const OpTotals& t : op_totals_) {
    for (const std::uint64_t ns : t.seg_ns) {
      sum += ns;
    }
  }
  return sum;
}

RequestPathLedger::SloEval RequestPathLedger::Evaluate(const SloState& state,
                                                       SimTime now) const {
  SloEval eval;
  eval.current_ns = state.window_hist.Merged(now).Percentile(state.objective.quantile);
  eval.total = state.short_total.Sum(now);
  eval.violations = state.short_violations.Sum(now);
  const double budget = std::max(1.0 - state.objective.quantile, 1e-9);
  if (eval.total > 0) {
    eval.burn_short = (static_cast<double>(eval.violations) /
                       static_cast<double>(eval.total)) /
                      budget;
  }
  const std::uint64_t long_total = state.long_total.Sum(now);
  if (long_total > 0) {
    eval.burn_long = (static_cast<double>(state.long_violations.Sum(now)) /
                      static_cast<double>(long_total)) /
                     budget;
  }
  eval.breached = eval.burn_short > 1.0 && eval.burn_long > 1.0;
  return eval;
}

void RequestPathLedger::PublishTo(MetricRegistry* registry) const {
  if (!enabled_ || registry == nullptr) {
    return;  // Feature off: snapshots stay byte-identical to a build without the ledger.
  }
  registry->GetCounter("reqpath.completed")->Set(seq_);
  registry->GetCounter("reqpath.abandoned")->Set(abandoned_);
  for (int op = 0; op < kReqOpCount; ++op) {
    const OpTotals& totals = op_totals_[op];
    if (totals.count == 0) {
      continue;
    }
    const std::string base = std::string("reqpath.") + ReqOpName(static_cast<ReqOp>(op));
    registry->GetCounter(base + ".count")->Set(totals.count);
    registry->GetCounter(base + ".latency_ns")->Set(totals.latency_ns);
    for (int i = 0; i < kPathSegmentCount; ++i) {
      if (totals.seg_ns[i] != 0) {
        registry
            ->GetCounter(base + ".seg." + PathSegmentName(static_cast<PathSegment>(i)) +
                         "_ns")
            ->Set(totals.seg_ns[i]);
      }
    }
  }
  for (const auto& [key, tenant] : tenants_) {
    const std::uint32_t id = static_cast<std::uint32_t>(key >> 2);
    const ReqOp op = static_cast<ReqOp>(key & 3);
    const std::string base =
        "reqpath.tenant" + std::to_string(id) + "." + ReqOpName(op);
    registry->GetCounter(base + ".count")->Set(tenant.count);
    Histogram* hist = registry->GetHistogram(base + ".latency_ns");
    if (hist != nullptr) {
      hist->Reset();
      hist->Merge(tenant.latency);
    }
    for (int i = 0; i < kPathSegmentCount; ++i) {
      if (tenant.seg_ns[i] != 0) {
        registry
            ->GetCounter(base + ".seg." + PathSegmentName(static_cast<PathSegment>(i)) +
                         "_ns")
            ->Set(tenant.seg_ns[i]);
      }
    }
  }
  for (int c = 0; c < kWriteCauseCount; ++c) {
    for (int l = 0; l < kStackLayerCount; ++l) {
      if (cum_interference_ns_[c][l] != 0) {
        registry
            ->GetCounter(std::string("reqpath.interference.") +
                         WriteCauseName(static_cast<WriteCause>(c)) + "." +
                         StackLayerName(static_cast<StackLayer>(l)) + "_ns")
            ->Set(cum_interference_ns_[c][l]);
      }
    }
  }
  for (const SloState& s : slos_) {
    const SloEval eval = Evaluate(s, last_completion_);
    const std::string base = "reqpath.slo." + s.objective.name;
    registry->GetCounter(base + ".target_ns")->Set(s.objective.target_ns);
    registry->GetCounter(base + ".window_total")->Set(eval.total);
    registry->GetCounter(base + ".window_violations")->Set(eval.violations);
    registry->GetGauge(base + ".current_ns")->Set(static_cast<double>(eval.current_ns));
    registry->GetGauge(base + ".burn_short")->Set(eval.burn_short);
    registry->GetGauge(base + ".burn_long")->Set(eval.burn_long);
    registry->GetGauge(base + ".breached")->Set(eval.breached ? 1.0 : 0.0);
  }
}

std::string RequestPathLedger::DumpExemplarsJson() const {
  std::string out = "{\"exemplars\":[";
  bool first = true;
  for (int op = 0; op < kReqOpCount; ++op) {
    int rank = 0;
    for (const Exemplar& e : exemplars_[op]) {
      if (!first) {
        out += ",";
      }
      first = false;
      out += "\n{\"op\":\"";
      out += ReqOpName(static_cast<ReqOp>(op));
      out += "\",\"rank\":" + std::to_string(rank++);
      out += ",\"tenant\":" + std::to_string(e.ctx.tenant);
      out += ",\"seq\":" + std::to_string(e.seq);
      out += ",\"issue_ns\":" + std::to_string(e.issue);
      out += ",\"completion_ns\":" + std::to_string(e.completion);
      out += ",\"latency_ns\":" + std::to_string(e.latency_ns);
      out += ",\"segments\":{";
      for (int i = 0; i < kPathSegmentCount; ++i) {
        if (i > 0) {
          out += ",";
        }
        out += "\"";
        out += PathSegmentName(static_cast<PathSegment>(i));
        out += "_ns\":" + std::to_string(e.seg_ns[i]);
      }
      out += "},\"top_interference\":{\"cause\":\"";
      out += WriteCauseName(e.top_cause);
      out += "\",\"layer\":\"";
      out += StackLayerName(e.top_layer);
      out += "\",\"ns\":" + std::to_string(e.top_interference_ns);
      out += "},\"interferer\":{\"track\":\"" + JsonEscape(e.interferer_track);
      out += "\",\"begin_ns\":" + std::to_string(e.interferer_begin);
      out += ",\"end_ns\":" + std::to_string(e.interferer_end);
      out += ",\"cause\":\"";
      out += WriteCauseName(e.interferer_cause);
      out += "\",\"layer\":\"";
      out += StackLayerName(e.interferer_layer);
      out += "\"}}";
    }
  }
  out += "\n]}\n";
  return out;
}

std::vector<RequestPathLedger::SloSnapshot> RequestPathLedger::SloSnapshots() const {
  std::vector<SloSnapshot> out;
  out.reserve(slos_.size());
  for (const SloState& s : slos_) {
    const SloEval eval = Evaluate(s, last_completion_);
    SloSnapshot snap;
    snap.objective = s.objective;
    snap.current_ns = eval.current_ns;
    snap.total = eval.total;
    snap.violations = eval.violations;
    snap.burn_short = eval.burn_short;
    snap.burn_long = eval.burn_long;
    snap.breached = eval.breached;
    out.push_back(snap);
  }
  return out;
}

std::string RequestPathLedger::SloReportJson() const {
  std::string out = "{\"slo\":[";
  bool first = true;
  for (const SloState& s : slos_) {
    const SloEval eval = Evaluate(s, last_completion_);
    if (!first) {
      out += ",";
    }
    first = false;
    out += "\n{\"name\":\"" + JsonEscape(s.objective.name);
    out += "\",\"tenant\":" + std::to_string(s.objective.tenant);
    out += ",\"op\":\"";
    out += ReqOpName(s.objective.op);
    out += "\",\"quantile\":" + FormatMetricDouble(s.objective.quantile);
    out += ",\"target_ns\":" + std::to_string(s.objective.target_ns);
    out += ",\"window_ns\":" + std::to_string(s.objective.window);
    out += ",\"current_ns\":" + std::to_string(eval.current_ns);
    out += ",\"window_total\":" + std::to_string(eval.total);
    out += ",\"window_violations\":" + std::to_string(eval.violations);
    out += ",\"burn_short\":" + FormatMetricDouble(eval.burn_short);
    out += ",\"burn_long\":" + FormatMetricDouble(eval.burn_long);
    out += ",\"breached\":";
    out += eval.breached ? "true" : "false";
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

void RequestPathLedger::EmitExemplarTimeline(Timeline* timeline) const {
  if (timeline == nullptr || !timeline->enabled()) {
    return;
  }
  for (int op = 0; op < kReqOpCount; ++op) {
    const std::string track =
        std::string("reqpath.exemplar.") + ReqOpName(static_cast<ReqOp>(op));
    int rank = 0;
    for (const Exemplar& e : exemplars_[op]) {
      char name[96];
      std::snprintf(name, sizeof(name), "%s#%d tenant%u %s", ReqOpName(static_cast<ReqOp>(op)),
                    rank, e.ctx.tenant, WriteCauseName(e.top_cause));
      timeline->RecordHostSlice(track, name, e.issue, e.completion);
      if (!e.interferer_track.empty() && e.interferer_end > e.interferer_begin) {
        timeline->RecordFlowArrow(WriteCauseName(e.interferer_cause), e.interferer_track,
                                  e.interferer_begin, track, e.issue);
      }
      rank++;
    }
  }
}

}  // namespace blockhead
