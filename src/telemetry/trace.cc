#include "src/telemetry/trace.h"

namespace blockhead {

void Tracer::Span::End(SimTime end) {
  if (tracer_ != nullptr) {
    tracer_->Finish(id_, end);
    tracer_ = nullptr;
  }
}

void Tracer::Span::Abandon() {
  if (tracer_ != nullptr) {
    tracer_->Remove(id_);
    tracer_ = nullptr;
  }
}

Tracer::Span Tracer::Start(std::string_view name, SimTime begin) {
  OpenSpan s;
  s.id = next_id_++;
  s.name = std::string(name);
  s.begin = begin;
  open_.push_back(std::move(s));
  return Span(this, open_.back().id);
}

void Tracer::Charge(const SpanComponents& c) {
  for (OpenSpan& s : open_) {
    s.components.queue_ns += c.queue_ns;
    s.components.gc_ns += c.gc_ns;
    s.components.flash_ns += c.flash_ns;
    s.components.flash_ops += c.flash_ops;
  }
}

void Tracer::Finish(std::uint64_t id, SimTime end) {
  for (std::size_t i = 0; i < open_.size(); ++i) {
    if (open_[i].id != id) {
      continue;
    }
    const OpenSpan s = std::move(open_[i]);
    open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i));
    const SimTime total = end > s.begin ? end - s.begin : 0;
    const SimTime attributed =
        s.components.queue_ns + s.components.gc_ns + s.components.flash_ns;
    const SimTime host = total > attributed ? total - attributed : 0;
    const std::string prefix = "span." + s.name;
    registry_->GetHistogram(prefix + ".total_ns")->Record(total);
    registry_->GetHistogram(prefix + ".queue_ns")->Record(s.components.queue_ns);
    registry_->GetHistogram(prefix + ".gc_ns")->Record(s.components.gc_ns);
    registry_->GetHistogram(prefix + ".flash_ns")->Record(s.components.flash_ns);
    registry_->GetHistogram(prefix + ".host_ns")->Record(host);
    if (timeline_ != nullptr) {
      timeline_->RecordSpan(s.name, s.begin, end);
    }
    return;
  }
}

void Tracer::AbandonOpen() {
  while (!open_.empty()) {
    Remove(open_.back().id);
  }
}

void Tracer::Remove(std::uint64_t id) {
  for (std::size_t i = 0; i < open_.size(); ++i) {
    if (open_[i].id == id) {
      registry_->GetCounter("span." + open_[i].name + ".abandoned")->Add(1);
      open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i));
      return;
    }
  }
}

}  // namespace blockhead
