#include "src/telemetry/metric_registry.h"

namespace blockhead {

const char* MetricKindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

Counter* MetricRegistry::GetCounter(std::string_view name) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != MetricKind::kCounter) {
      collisions_++;
      return nullptr;
    }
    return it->second.counter.get();
  }
  Metric m{MetricKind::kCounter, std::make_unique<Counter>(), nullptr, nullptr};
  Counter* out = m.counter.get();
  metrics_.emplace(std::string(name), std::move(m));
  return out;
}

Gauge* MetricRegistry::GetGauge(std::string_view name) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != MetricKind::kGauge) {
      collisions_++;
      return nullptr;
    }
    return it->second.gauge.get();
  }
  Metric m{MetricKind::kGauge, nullptr, std::make_unique<Gauge>(), nullptr};
  Gauge* out = m.gauge.get();
  metrics_.emplace(std::string(name), std::move(m));
  return out;
}

Histogram* MetricRegistry::GetHistogram(std::string_view name) {
  auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    if (it->second.kind != MetricKind::kHistogram) {
      collisions_++;
      return nullptr;
    }
    return it->second.histogram.get();
  }
  Metric m{MetricKind::kHistogram, nullptr, nullptr, std::make_unique<Histogram>()};
  Histogram* out = m.histogram.get();
  metrics_.emplace(std::string(name), std::move(m));
  return out;
}

bool MetricRegistry::Lookup(std::string_view name, MetricKind* kind) const {
  auto it = metrics_.find(name);
  if (it == metrics_.end()) {
    return false;
  }
  if (kind != nullptr) {
    *kind = it->second.kind;
  }
  return true;
}

void MetricRegistry::AddProvider(std::string_view id, std::function<void()> fn) {
  providers_[std::string(id)] = std::move(fn);
}

void MetricRegistry::RemoveProvider(std::string_view id) {
  auto it = providers_.find(id);
  if (it != providers_.end()) {
    providers_.erase(it);
  }
}

std::vector<MetricRegistry::Entry> MetricRegistry::Snapshot() {
  for (const auto& [id, fn] : providers_) {
    fn();
  }
  std::vector<Entry> out;
  out.reserve(metrics_.size());
  for (const auto& [name, m] : metrics_) {
    Entry e;
    e.name = name;
    e.kind = m.kind;
    switch (m.kind) {
      case MetricKind::kCounter:
        e.counter = m.counter->value();
        break;
      case MetricKind::kGauge:
        e.gauge = m.gauge->value();
        break;
      case MetricKind::kHistogram:
        e.histogram = m.histogram.get();
        break;
    }
    out.push_back(std::move(e));
  }
  return out;
}

}  // namespace blockhead
