// NAND flash geometry: the channel / plane / erasure-block / page hierarchy described in the
// paper's flash primer (§2.1).
//
// Planes subsume dies in this model: each plane is an independently schedulable unit of cell
// array parallelism, and each channel is an independently schedulable transfer bus.

#ifndef BLOCKHEAD_SRC_FLASH_GEOMETRY_H_
#define BLOCKHEAD_SRC_FLASH_GEOMETRY_H_

#include <cstdint>

#include "src/core/strong_id.h"
#include "src/util/status.h"
#include "src/util/types.h"

namespace blockhead {

struct FlashGeometry {
  std::uint32_t channels = 8;
  std::uint32_t planes_per_channel = 4;
  std::uint32_t blocks_per_plane = 256;
  std::uint32_t pages_per_block = 512;
  std::uint32_t page_size = 4096;

  std::uint32_t total_planes() const { return channels * planes_per_channel; }
  std::uint64_t total_blocks() const {
    return static_cast<std::uint64_t>(total_planes()) * blocks_per_plane;
  }
  std::uint64_t pages_per_plane() const {
    return static_cast<std::uint64_t>(blocks_per_plane) * pages_per_block;
  }
  std::uint64_t total_pages() const { return total_blocks() * pages_per_block; }
  std::uint64_t block_bytes() const {
    return static_cast<std::uint64_t>(pages_per_block) * page_size;
  }
  std::uint64_t capacity_bytes() const { return total_pages() * page_size; }

  Status Validate() const {
    if (channels == 0 || planes_per_channel == 0 || blocks_per_plane == 0 ||
        pages_per_block == 0 || page_size == 0) {
      return Status(ErrorCode::kInvalidArgument, "all geometry dimensions must be nonzero");
    }
    return Status::Ok();
  }

  // A small geometry for unit tests: 2 ch x 2 planes x 64 blocks x 32 pages x 4 KiB = 32 MiB.
  static FlashGeometry Small() {
    FlashGeometry g;
    g.channels = 2;
    g.planes_per_channel = 2;
    g.blocks_per_plane = 64;
    g.pages_per_block = 32;
    g.page_size = 4096;
    return g;
  }

  // A mid-size geometry for benchmarks: 8 ch x 4 planes x 128 blocks x 128 pages x 4 KiB = 2 GiB.
  static FlashGeometry Bench() {
    FlashGeometry g;
    g.channels = 8;
    g.planes_per_channel = 4;
    g.blocks_per_plane = 128;
    g.pages_per_block = 128;
    g.page_size = 4096;
    return g;
  }
};

// Physical page address within the hierarchy. Every coordinate is a strong type (see
// src/core/strong_id.h), so a swapped (plane, block) or an LBA smuggled into a physical
// coordinate is a compile error rather than a silent mis-address.
struct PhysAddr {
  ChannelId channel{0};
  PlaneId plane{0};
  BlockId block{0};
  PageId page{0};

  friend bool operator==(const PhysAddr& a, const PhysAddr& b) {
    return a.channel == b.channel && a.plane == b.plane && a.block == b.block && a.page == b.page;
  }
};

// Flat indices used by the FTLs for dense tables.
inline std::uint32_t PlaneIndex(const FlashGeometry& g, ChannelId channel, PlaneId plane) {
  return channel.value() * g.planes_per_channel + plane.value();
}

// Flat block index across the whole device: plane-major, then block.
inline std::uint64_t FlatBlockIndex(const FlashGeometry& g, const PhysAddr& a) {
  return static_cast<std::uint64_t>(PlaneIndex(g, a.channel, a.plane)) * g.blocks_per_plane +
         a.block.value();
}

// Flat physical page address across the whole device.
inline Ppa FlatPageIndex(const FlashGeometry& g, const PhysAddr& a) {
  return Ppa{FlatBlockIndex(g, a) * g.pages_per_block + a.page.value()};
}

// Inverse of FlatPageIndex.
inline PhysAddr AddrFromFlatPage(const FlashGeometry& g, Ppa ppa) {
  const std::uint64_t flat = ppa.value();
  PhysAddr a;
  a.page = PageId{static_cast<std::uint32_t>(flat % g.pages_per_block)};
  const std::uint64_t block_flat = flat / g.pages_per_block;
  a.block = BlockId{static_cast<std::uint32_t>(block_flat % g.blocks_per_plane)};
  const std::uint64_t plane_flat = block_flat / g.blocks_per_plane;
  a.plane = PlaneId{static_cast<std::uint32_t>(plane_flat % g.planes_per_channel)};
  a.channel = ChannelId{static_cast<std::uint32_t>(plane_flat / g.planes_per_channel)};
  return a;
}

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_FLASH_GEOMETRY_H_
