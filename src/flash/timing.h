// Flash operation timing and endurance models.
//
// The paper's primer (§2.1) notes that erasing takes several times longer than programming
// (~6x for TLC) and that endurance shrinks as more bits are stored per cell; the presets here
// encode those relationships. Absolute values are representative datasheet-order numbers — the
// reproduction targets ratios and shapes, not silicon-exact latencies.

#ifndef BLOCKHEAD_SRC_FLASH_TIMING_H_
#define BLOCKHEAD_SRC_FLASH_TIMING_H_

#include <cstdint>

#include "src/util/types.h"

namespace blockhead {

enum class CellType { kSlc, kMlc, kTlc, kQlc };

struct FlashTiming {
  SimTime page_read = 60 * kMicrosecond;
  SimTime page_program = 660 * kMicrosecond;
  SimTime block_erase = 4000 * kMicrosecond;  // ~6x program (TLC).
  // Time to move one page across the channel bus (ONFI-class ~1.2 GB/s -> ~3.4 us per 4 KiB).
  SimTime channel_xfer = 3400 * kNanosecond;
  // Program/erase cycles before a block wears out.
  std::uint32_t endurance_cycles = 3000;

  static FlashTiming Slc() {
    FlashTiming t;
    t.page_read = 25 * kMicrosecond;
    t.page_program = 200 * kMicrosecond;
    t.block_erase = 1500 * kMicrosecond;
    t.endurance_cycles = 100000;
    return t;
  }

  static FlashTiming Mlc() {
    FlashTiming t;
    t.page_read = 50 * kMicrosecond;
    t.page_program = 450 * kMicrosecond;
    t.block_erase = 3000 * kMicrosecond;
    t.endurance_cycles = 10000;
    return t;
  }

  static FlashTiming Tlc() { return FlashTiming{}; }

  static FlashTiming Qlc() {
    FlashTiming t;
    t.page_read = 90 * kMicrosecond;
    t.page_program = 2000 * kMicrosecond;
    t.block_erase = 14000 * kMicrosecond;
    t.endurance_cycles = 1000;
    return t;
  }

  static FlashTiming ForCell(CellType cell) {
    switch (cell) {
      case CellType::kSlc:
        return Slc();
      case CellType::kMlc:
        return Mlc();
      case CellType::kTlc:
        return Tlc();
      case CellType::kQlc:
        return Qlc();
    }
    return Tlc();
  }

  // A fast preset for unit tests where absolute latencies are irrelevant: keeps the erase ~6x
  // program ratio but shrinks everything so multi-fill tests stay cheap.
  static FlashTiming FastForTests() {
    FlashTiming t;
    t.page_read = 10;
    t.page_program = 100;
    t.block_erase = 600;
    t.channel_xfer = 1;
    t.endurance_cycles = 1000000;  // Endurance exhaustion is opt-in in tests.
    return t;
  }
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_FLASH_TIMING_H_
