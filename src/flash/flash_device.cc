#include "src/flash/flash_device.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstring>

namespace blockhead {

FlashDevice::FlashDevice(const FlashConfig& config) : config_(config), rng_(config.seed) {
  assert(config_.geometry.Validate().ok());
  blocks_.resize(config_.geometry.total_blocks());
  plane_busy_.assign(config_.geometry.total_planes(), 0);
  channel_busy_.assign(config_.geometry.channels, 0);
  plane_maintenance_busy_.assign(config_.geometry.total_planes(), MaintMark{});
  plane_busy_series_.assign(config_.geometry.total_planes(), BusySeries{});
  channel_busy_series_.assign(config_.geometry.channels, BusySeries{});
  sharding_.Init(config_.geometry.channels, config_.geometry.total_planes());
}

FlashDevice::~FlashDevice() { AttachTelemetry(nullptr); }

void FlashDevice::AttachTelemetry(Telemetry* telemetry, std::string_view prefix) {
  if (telemetry_ != nullptr) {
    // Publish final values, then unhook: the registry may outlive this device.
    PublishMetrics();
    telemetry_->registry.RemoveProvider(metric_prefix_);
    telemetry_->timeline.RemoveSamplerGroup(metric_prefix_);
  }
  telemetry_ = telemetry;
  if (telemetry_ == nullptr) {
    read_latency_ = nullptr;
    program_latency_ = nullptr;
    provenance_ = nullptr;
    ledger_ = nullptr;
    reqpath_ = nullptr;
    audit_blocks_ = nullptr;
    sampler_group_ = -1;
    return;
  }
  metric_prefix_ = std::string(prefix);
  audit_blocks_ = telemetry_->audit.Register(metric_prefix_ + ".blocks");
  read_latency_ = telemetry_->registry.GetHistogram(metric_prefix_ + ".read.latency_ns");
  program_latency_ = telemetry_->registry.GetHistogram(metric_prefix_ + ".program.latency_ns");
  telemetry_->registry.AddProvider(metric_prefix_, [this] { PublishMetrics(); });
  provenance_ = &telemetry_->provenance;
  reqpath_ = &telemetry_->reqpath;
  ledger_ = provenance_->RegisterDevice(metric_prefix_, config_.geometry.total_blocks(),
                                        config_.timing.endurance_cycles,
                                        Bytes{config_.geometry.page_size});

  Timeline& tl = telemetry_->timeline;
  sampler_group_ = tl.AddSamplerGroup(metric_prefix_);
  tl.AddSampler(sampler_group_, metric_prefix_ + ".wear.max_erase_count",
                Timeline::SampleKind::kInstant,
                [this](SimTime) { return static_cast<double>(max_erase_count_); });
  plane_tracks_.clear();
  for (std::size_t i = 0; i < plane_busy_series_.size(); ++i) {
    plane_tracks_.push_back(metric_prefix_ + ".plane" + std::to_string(i));
    tl.AddSampler(sampler_group_, plane_tracks_.back() + ".busy_fraction",
                  Timeline::SampleKind::kRate, [this, i](SimTime t) {
                    return static_cast<double>(plane_busy_series_[i].SettledNsAt(t));
                  });
  }
  for (std::size_t i = 0; i < channel_busy_series_.size(); ++i) {
    tl.AddSampler(sampler_group_,
                  metric_prefix_ + ".channel" + std::to_string(i) + ".busy_fraction",
                  Timeline::SampleKind::kRate, [this, i](SimTime t) {
                    return static_cast<double>(channel_busy_series_[i].SettledNsAt(t));
                  });
  }
}

void FlashDevice::PublishMetrics() {
  MetricRegistry& r = telemetry_->registry;
  const std::string& p = metric_prefix_;
  r.GetCounter(p + ".host_pages_read")->Set(stats_.host_pages_read);
  r.GetCounter(p + ".host_pages_programmed")->Set(stats_.host_pages_programmed);
  r.GetCounter(p + ".internal_pages_read")->Set(stats_.internal_pages_read);
  r.GetCounter(p + ".internal_pages_programmed")->Set(stats_.internal_pages_programmed);
  r.GetCounter(p + ".blocks_erased")->Set(stats_.blocks_erased);
  r.GetCounter(p + ".host_bus_bytes")->Set(stats_.host_bus_bytes);
  r.GetGauge(p + ".write_amplification")
      ->Set(stats_.host_pages_programmed == 0
                ? 1.0
                : static_cast<double>(stats_.total_pages_programmed()) /
                      static_cast<double>(stats_.host_pages_programmed));
  const WearSummary w = ComputeWear();
  r.GetGauge(p + ".wear.min_erase_count")->Set(w.min_erase_count);
  r.GetGauge(p + ".wear.max_erase_count")->Set(w.max_erase_count);
  r.GetGauge(p + ".wear.mean_erase_count")->Set(w.mean_erase_count);
  r.GetGauge(p + ".wear.stddev_erase_count")->Set(w.stddev_erase_count);
  r.GetCounter(p + ".wear.bad_blocks")->Set(w.bad_blocks);
  sharding_.PublishTo(r, p);
  // Full bucketed erase-count distribution (not just the moments): rebuilt from the current
  // per-block counts on every publish so the snapshot always reflects the live state.
  Histogram* wear = r.GetHistogram(p + ".wear.erase_count");
  wear->Reset();
  for (const BlockState& b : blocks_) {
    wear->Record(b.erase_count);
  }
}

void FlashDevice::NoteMaintenance(std::uint32_t plane_index, SimTime done) {
  MaintMark& mark = plane_maintenance_busy_[plane_index];
  if (done >= mark.done) {
    mark.done = done;
    if (provenance_ != nullptr) {
      mark.cause = provenance_->current_cause();
      mark.layer = provenance_->current_layer();
    }
  }
}

SimTime FlashDevice::MaintenanceOverlap(std::uint32_t plane_index, SimTime issue,
                                        SimTime start) const {
  const SimTime maint = plane_maintenance_busy_[plane_index].done;
  const SimTime capped = std::min(start, maint);
  return capped > issue ? capped - issue : 0;
}

Status FlashDevice::CheckAddr(const PhysAddr& addr) const {
  const FlashGeometry& g = config_.geometry;
  if (addr.channel.value() >= g.channels || addr.plane.value() >= g.planes_per_channel ||
      addr.block.value() >= g.blocks_per_plane || addr.page.value() >= g.pages_per_block) {
    return Status(ErrorCode::kOutOfRange, "physical address outside geometry");
  }
  return Status::Ok();
}

FlashDevice::BlockState& FlashDevice::BlockAt(const PhysAddr& addr) {
  return blocks_[FlatBlockIndex(config_.geometry, addr)];
}

const FlashDevice::BlockState& FlashDevice::BlockAt(const PhysAddr& addr) const {
  return blocks_[FlatBlockIndex(config_.geometry, addr)];
}

Result<SimTime> FlashDevice::ReadPage(const PhysAddr& addr, SimTime issue,
                                      std::span<std::uint8_t> out, OpClass op_class) {
  SelfProfiler::Scope prof(ProfilerOf(telemetry_), ProfSubsystem::kFlash, ProfOp::kRead);
  BLOCKHEAD_RETURN_IF_ERROR(CheckAddr(addr));
  const BlockState& block = BlockAt(addr);
  if (block.bad) {
    return ErrorCode::kBlockBad;
  }

  const FlashGeometry& g = config_.geometry;
  const std::uint32_t plane_index = PlaneIndex(g, addr.channel, addr.plane);
  SimTime& plane = plane_busy_[plane_index];
  // Cell array read on the plane.
  const SimTime read_start = std::max(issue, plane);
  const SimTime read_done = read_start + config_.timing.page_read;
  plane = read_done;

  SimTime done = read_done;
  if (op_class == OpClass::kHost) {
    // Transfer out over the channel bus.
    SimTime& chan = channel_busy_[addr.channel.value()];
    const SimTime xfer_start = std::max(read_done, chan);
    done = xfer_start + config_.timing.channel_xfer;
    chan = done;
    stats_.host_pages_read++;
    stats_.host_bus_bytes += g.page_size;
    if (telemetry_ != nullptr) {
      const SimTime gc_wait = MaintenanceOverlap(plane_index, issue, read_start);
      SpanComponents c;
      c.gc_ns = gc_wait;
      c.queue_ns = (read_start - issue) - gc_wait + (xfer_start - read_done);
      c.flash_ns = config_.timing.page_read + config_.timing.channel_xfer;
      c.flash_ops = 1;
      telemetry_->tracer.Charge(c);
      read_latency_->Record(done - issue);
      if (reqpath_->InRequest()) {
        // Wall-to-wall decomposition of [issue, done): GC stall behind maintenance, plane
        // wait, cell read, channel wait, transfer out. Sums to done - issue exactly.
        const MaintMark& mark = plane_maintenance_busy_[plane_index];
        if (gc_wait > 0) {
          reqpath_->ChargeInterference(issue, issue + gc_wait, mark.cause, mark.layer,
                                       plane_tracks_[plane_index]);
        }
        reqpath_->ChargeInterval(issue + gc_wait, read_start, PathSegment::kDeviceQueue);
        reqpath_->ChargeInterval(read_start, read_done, PathSegment::kFlashBusy);
        reqpath_->ChargeInterval(read_done, xfer_start, PathSegment::kDeviceQueue);
        reqpath_->ChargeInterval(xfer_start, done, PathSegment::kFlashBusy);
      }
      if (telemetry_->timeline.enabled()) {
        plane_busy_series_[plane_index].Book(read_start, read_done);
        channel_busy_series_[addr.channel.value()].Book(xfer_start, done);
      }
      telemetry_->timeline.AdvanceGroup(sampler_group_, done);
    }
  } else {
    stats_.internal_pages_read++;
    NoteMaintenance(plane_index, read_done);
    if (telemetry_ != nullptr) {
      if (telemetry_->timeline.enabled()) {
        plane_busy_series_[plane_index].Book(read_start, read_done);
      }
      telemetry_->timeline.RecordMaintenance(plane_tracks_[plane_index], "copy_read",
                                             read_start, read_done);
      telemetry_->timeline.AdvanceGroup(sampler_group_, read_done);
    }
  }

  if (!out.empty()) {
    assert(out.size() == g.page_size);
    if (config_.store_data && !block.data.empty() && addr.page.value() < block.next_page) {
      const std::uint8_t* src =
          block.data.data() + static_cast<std::size_t>(addr.page.value()) * g.page_size;
      std::memcpy(out.data(), src, g.page_size);
    } else {
      std::memset(out.data(), 0, g.page_size);
    }
  }
  sharding_.RecordOp(addr.channel.value(), plane_index);
  if (telemetry_ != nullptr) {
    telemetry_->selfprof.NoteSimTime(done);
  }
  return done;
}

Result<SimTime> FlashDevice::ProgramPage(const PhysAddr& addr, SimTime issue,
                                         std::span<const std::uint8_t> data, OpClass op_class) {
  SelfProfiler::Scope prof(ProfilerOf(telemetry_), ProfSubsystem::kFlash, ProfOp::kWrite);
  BLOCKHEAD_RETURN_IF_ERROR(CheckAddr(addr));
  BlockState& block = BlockAt(addr);
  if (block.bad) {
    return ErrorCode::kBlockBad;
  }
  if (addr.page.value() != block.next_page) {
    if (addr.page.value() < block.next_page) {
      // Page already programmed since last erase.
      return ErrorCode::kEraseBeforeProgram;
    }
    return ErrorCode::kProgramOrderViolation;
  }

  const FlashGeometry& g = config_.geometry;
  SimTime program_can_start = issue;
  SimTime bus_wait = 0;
  if (op_class == OpClass::kHost) {
    // Data in over the channel bus, then the plane programs the cells.
    SimTime& chan = channel_busy_[addr.channel.value()];
    const SimTime xfer_start = std::max(issue, chan);
    bus_wait = xfer_start - issue;
    program_can_start = xfer_start + config_.timing.channel_xfer;
    chan = program_can_start;
    stats_.host_pages_programmed++;
    stats_.host_bus_bytes += g.page_size;
  } else {
    stats_.internal_pages_programmed++;
  }

  const std::uint32_t plane_index = PlaneIndex(g, addr.channel, addr.plane);
  SimTime& plane = plane_busy_[plane_index];
  const SimTime program_start = std::max(program_can_start, plane);
  const SimTime done = program_start + config_.timing.page_program;
  plane = done;
  if (op_class == OpClass::kHost) {
    if (telemetry_ != nullptr) {
      const SimTime gc_wait = MaintenanceOverlap(plane_index, program_can_start, program_start);
      SpanComponents c;
      c.gc_ns = gc_wait;
      c.queue_ns = bus_wait + (program_start - program_can_start) - gc_wait;
      c.flash_ns = config_.timing.channel_xfer + config_.timing.page_program;
      c.flash_ops = 1;
      telemetry_->tracer.Charge(c);
      program_latency_->Record(done - issue);
      if (reqpath_->InRequest()) {
        // Wall-to-wall decomposition of [issue, done): bus wait, transfer in, GC stall
        // behind maintenance, plane wait, cell program. Sums to done - issue exactly.
        const MaintMark& mark = plane_maintenance_busy_[plane_index];
        const SimTime xfer_start = issue + bus_wait;
        reqpath_->ChargeInterval(issue, xfer_start, PathSegment::kDeviceQueue);
        reqpath_->ChargeInterval(xfer_start, program_can_start, PathSegment::kFlashBusy);
        if (gc_wait > 0) {
          reqpath_->ChargeInterference(program_can_start, program_can_start + gc_wait,
                                       mark.cause, mark.layer, plane_tracks_[plane_index]);
        }
        reqpath_->ChargeInterval(program_can_start + gc_wait, program_start,
                                 PathSegment::kDeviceQueue);
        reqpath_->ChargeInterval(program_start, done, PathSegment::kFlashBusy);
      }
      if (telemetry_->timeline.enabled()) {
        channel_busy_series_[addr.channel.value()].Book(program_can_start -
                                                    config_.timing.channel_xfer,
                                                program_can_start);
        plane_busy_series_[plane_index].Book(program_start, done);
      }
      telemetry_->timeline.AdvanceGroup(sampler_group_, done);
    }
  } else {
    NoteMaintenance(plane_index, done);
    if (telemetry_ != nullptr) {
      if (telemetry_->timeline.enabled()) {
        plane_busy_series_[plane_index].Book(program_start, done);
      }
      telemetry_->timeline.RecordMaintenance(plane_tracks_[plane_index], "copy_program",
                                             program_start, done);
      telemetry_->timeline.AdvanceGroup(sampler_group_, done);
    }
  }

  if (provenance_ != nullptr) {
    provenance_->RecordProgram(ledger_, op_class == OpClass::kHost, done);
  }

  if (config_.store_data) {
    if (block.data.empty()) {
      block.data.assign(static_cast<std::size_t>(g.pages_per_block) * g.page_size, 0);
    }
    std::uint8_t* dst =
        block.data.data() + static_cast<std::size_t>(addr.page.value()) * g.page_size;
    if (!data.empty()) {
      assert(data.size() <= g.page_size);
      std::memcpy(dst, data.data(), data.size());
      if (data.size() < g.page_size) {
        std::memset(dst + data.size(), 0, g.page_size - data.size());
      }
    } else {
      std::memset(dst, 0, g.page_size);
    }
  }

  const bool audit = audit_blocks_ != nullptr && audit_blocks_->armed();
  const std::uint64_t flat = FlatBlockIndex(g, addr);
  const std::uint64_t pre_program = audit ? BlockEntryHash(flat, block) : 0;
  block.next_page++;
  if (audit) {
    audit_blocks_->Replace(done, pre_program, BlockEntryHash(flat, block));
  }
  sharding_.RecordOp(addr.channel.value(), plane_index);
  if (telemetry_ != nullptr) {
    telemetry_->selfprof.NoteSimTime(done);
  }
  return done;
}

Result<SimTime> FlashDevice::EraseBlock(ChannelId channel, PlaneId plane, BlockId block,
                                        SimTime issue) {
  SelfProfiler::Scope prof(ProfilerOf(telemetry_), ProfSubsystem::kFlash, ProfOp::kErase);
  PhysAddr addr{channel, plane, block, PageId{0}};
  BLOCKHEAD_RETURN_IF_ERROR(CheckAddr(addr));
  BlockState& state = BlockAt(addr);
  if (state.bad) {
    return ErrorCode::kBlockBad;
  }

  const std::uint32_t plane_index = PlaneIndex(config_.geometry, channel, plane);
  SimTime& plane_busy = plane_busy_[plane_index];
  const SimTime start = std::max(issue, plane_busy);
  const SimTime done = start + config_.timing.block_erase;
  plane_busy = done;
  // Erases are reclamation work in both stacks (device GC or host-driven resets): host ops
  // queued behind them count as GC interference.
  NoteMaintenance(plane_index, done);
  if (telemetry_ != nullptr) {
    if (telemetry_->timeline.enabled()) {
      plane_busy_series_[plane_index].Book(start, done);
    }
    telemetry_->timeline.RecordMaintenance(plane_tracks_[plane_index], "erase", start, done);
    telemetry_->events.Append(done, TimelineEventType::kBlockErase, metric_prefix_,
                              "erase plane " + std::to_string(plane_index) + " block " +
                                  std::to_string(block.value()),
                              plane_index, block.value());
    telemetry_->timeline.AdvanceGroup(sampler_group_, done);
  }

  const bool audit = audit_blocks_ != nullptr && audit_blocks_->armed();
  const std::uint64_t flat = FlatBlockIndex(config_.geometry, addr);
  const std::uint64_t pre_erase = audit ? BlockEntryHash(flat, state) : 0;
  state.next_page = 0;
  state.erase_count++;
  if (state.erase_count > max_erase_count_) {
    max_erase_count_ = state.erase_count;
  }
  stats_.blocks_erased++;
  if (provenance_ != nullptr) {
    provenance_->RecordErase(ledger_, done);
  }
  if (!state.data.empty()) {
    std::fill(state.data.begin(), state.data.end(), 0);
  }
  if (state.erase_count >= config_.timing.endurance_cycles ||
      (config_.early_failure_prob > 0.0 && rng_.NextBool(config_.early_failure_prob))) {
    state.bad = true;
  }
  if (audit) {
    audit_blocks_->Replace(done, pre_erase, BlockEntryHash(flat, state));
  }
  sharding_.RecordOp(channel.value(), plane_index);
  if (telemetry_ != nullptr) {
    telemetry_->selfprof.NoteSimTime(done);
  }
  return done;
}

Result<SimTime> FlashDevice::CopyPage(const PhysAddr& src, const PhysAddr& dst, SimTime issue) {
  // Internal read...
  std::vector<std::uint8_t> buf;
  std::span<std::uint8_t> out;
  if (config_.store_data) {
    buf.resize(config_.geometry.page_size);
    out = std::span<std::uint8_t>(buf);
  }
  Result<SimTime> read_done = ReadPage(src, issue, out, OpClass::kInternal);
  if (!read_done.ok()) {
    return read_done;
  }
  // ...then internal program once the data is available.
  return ProgramPage(dst, read_done.value(), buf, OpClass::kInternal);
}

SimTime FlashDevice::PlaneBusyUntil(ChannelId channel, PlaneId plane) const {
  return plane_busy_[PlaneIndex(config_.geometry, channel, plane)];
}

BlockStatus FlashDevice::block_status(ChannelId channel, PlaneId plane, BlockId block) const {
  const PhysAddr addr{channel, plane, block, PageId{0}};
  const BlockState& state = BlockAt(addr);
  return BlockStatus{state.next_page, state.erase_count, state.bad};
}

WearSummary FlashDevice::ComputeWear() const {
  WearSummary w;
  if (blocks_.empty()) {
    return w;
  }
  w.min_erase_count = ~0U;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const BlockState& b : blocks_) {
    w.min_erase_count = std::min(w.min_erase_count, b.erase_count);
    w.max_erase_count = std::max(w.max_erase_count, b.erase_count);
    sum += b.erase_count;
    sum_sq += static_cast<double>(b.erase_count) * b.erase_count;
    if (b.bad) {
      w.bad_blocks++;
    }
  }
  const double n = static_cast<double>(blocks_.size());
  w.mean_erase_count = sum / n;
  const double var = std::max(0.0, sum_sq / n - w.mean_erase_count * w.mean_erase_count);
  w.stddev_erase_count = std::sqrt(var);
  return w;
}

}  // namespace blockhead
