// Emulated NAND flash device: the common substrate under both the conventional SSD and the ZNS
// SSD. It enforces the physical constraints the paper's argument rests on:
//
//   * pages within an erasure block must be programmed strictly in order;
//   * a block must be erased before any page in it can be reprogrammed;
//   * each erase consumes endurance; worn-out blocks go bad;
//   * planes and channel buses are independently busy resources, so operation latency depends
//     on contention (this is how garbage collection interferes with foreground I/O).
//
// All operations are timestamped: the caller supplies an issue time and receives a completion
// time. The device never blocks; "waiting" is expressed through returned times.

#ifndef BLOCKHEAD_SRC_FLASH_FLASH_DEVICE_H_
#define BLOCKHEAD_SRC_FLASH_FLASH_DEVICE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/core/shard_safety.h"
#include "src/core/strong_id.h"
#include "src/flash/geometry.h"
#include "src/flash/timing.h"
#include "src/telemetry/selfprof/sharding_stats.h"
#include "src/telemetry/telemetry.h"
#include "src/util/rng.h"
#include "src/util/status.h"
#include "src/util/types.h"

namespace blockhead {

// Who initiated an operation. Internal ops (device GC, copyback, simple copy) do not cross the
// host bus; the split lets benchmarks measure host-interface traffic separately (E10).
enum class OpClass { kHost, kInternal };

struct FlashConfig {
  FlashGeometry geometry;
  FlashTiming timing;
  // If true, page payloads are stored (needed by the filesystem/KV correctness paths). If
  // false, reads return zeroes; timing and wear are still modeled (cheaper for big benches).
  bool store_data = true;
  // Probability that an erase causes early (pre-endurance-limit) block failure.
  double early_failure_prob = 0.0;
  std::uint64_t seed = 42;
};

struct FlashStats {
  std::uint64_t host_pages_read = 0;
  std::uint64_t host_pages_programmed = 0;
  std::uint64_t internal_pages_read = 0;
  std::uint64_t internal_pages_programmed = 0;
  std::uint64_t blocks_erased = 0;
  // Bytes that crossed the host interface (host-class reads + programs).
  std::uint64_t host_bus_bytes = 0;

  std::uint64_t total_pages_programmed() const {
    return host_pages_programmed + internal_pages_programmed;
  }
  std::uint64_t total_pages_read() const { return host_pages_read + internal_pages_read; }
};

struct WearSummary {
  std::uint32_t min_erase_count = 0;
  std::uint32_t max_erase_count = 0;
  double mean_erase_count = 0.0;
  double stddev_erase_count = 0.0;
  std::uint64_t bad_blocks = 0;
};

// Per-block externally visible state.
struct BlockStatus {
  std::uint32_t next_page = 0;  // Program write pointer within the block.
  std::uint32_t erase_count = 0;
  bool bad = false;
};

class FlashDevice {
 public:
  explicit FlashDevice(const FlashConfig& config);
  ~FlashDevice();  // Publishes final metrics and unhooks from the registry if attached.

  FlashDevice(const FlashDevice&) = delete;
  FlashDevice& operator=(const FlashDevice&) = delete;

  const FlashGeometry& geometry() const { return config_.geometry; }
  const FlashTiming& timing() const { return config_.timing; }
  const FlashStats& stats() const { return stats_; }

  // Registers this device with `telemetry` under `<prefix>.*`: a pull-provider exporting
  // FlashStats, the WearSummary, and a write_amplification gauge, plus live host-op latency
  // histograms (`<prefix>.read.latency_ns`, `<prefix>.program.latency_ns`). While attached,
  // host operations also charge queue/GC-interference/service components to any open tracing
  // span (see src/telemetry/trace.h). Passing nullptr detaches.
  //
  // Timeline wiring (active only once telemetry->timeline.Enable() is called): internal copy
  // reads/programs and block erases become maintenance slices on per-plane tracks
  // ("<prefix>.plane<i>"), erases are logged as kBlockErase events, and per-plane /
  // per-channel busy fractions plus the running "<prefix>.wear.max_erase_count" are sampled
  // as timeline series on its cadence.
  //
  // Provenance wiring: the device registers itself with telemetry->provenance under `prefix`
  // and tallies every page program and block erase under the innermost open CauseScope (see
  // src/telemetry/provenance.h), so per-cause WA attribution needs no cooperation from
  // callers beyond opening scopes around their internally generated writes.
  void AttachTelemetry(Telemetry* telemetry, std::string_view prefix = "flash");

  // Reads one page. If `out` is nonempty it must be page_size bytes and receives the payload
  // (zeroes when store_data is off or the page was never programmed).
  Result<SimTime> ReadPage(const PhysAddr& addr, SimTime issue, std::span<std::uint8_t> out = {},
                           OpClass op_class = OpClass::kHost);

  // Programs the next page of a block. addr.page must equal the block's write pointer.
  Result<SimTime> ProgramPage(const PhysAddr& addr, SimTime issue,
                              std::span<const std::uint8_t> data = {},
                              OpClass op_class = OpClass::kHost);

  // Erases a block, recycling it for programming. Consumes one endurance cycle; at the
  // endurance limit (or on early failure) the block is marked bad and kBlockBad is returned by
  // subsequent programs.
  Result<SimTime> EraseBlock(ChannelId channel, PlaneId plane, BlockId block, SimTime issue);

  // Device-internal page move (used by conventional-FTL GC and by the ZNS simple-copy
  // command): reads src and programs dst without touching the host bus.
  Result<SimTime> CopyPage(const PhysAddr& src, const PhysAddr& dst, SimTime issue);

  // Earliest time at which a new operation on this plane could start.
  SimTime PlaneBusyUntil(ChannelId channel, PlaneId plane) const;

  BlockStatus block_status(ChannelId channel, PlaneId plane, BlockId block) const;

  WearSummary ComputeWear() const;

  // Sharding feasibility report: per-channel/per-plane event occupancy and cross-channel
  // dependency counts, recorded for every flash operation (SimTime-domain, deterministic).
  // Published under "<prefix>.sharding.*" while telemetry is attached.
  const ShardingStats& sharding() const { return sharding_; }

 private:
  struct BlockState {
    std::uint32_t next_page = 0;
    std::uint32_t erase_count = 0;
    bool bad = false;
    std::vector<std::uint8_t> data;  // Lazily allocated when store_data is on.
  };

  Status CheckAddr(const PhysAddr& addr) const;
  BlockState& BlockAt(const PhysAddr& addr);
  const BlockState& BlockAt(const PhysAddr& addr) const;

  // Last maintenance op on a plane: completion time plus the provenance identity of whoever
  // caused it, so a host op stalled behind it can name its interferer (reqpath).
  struct MaintMark {
    SimTime done = 0;
    WriteCause cause = WriteCause::kDeviceGC;
    StackLayer layer = StackLayer::kFlash;
  };

  // Marks [.., done] on a plane as maintenance work (internal copies, erases); host-op waits
  // that overlap it are attributed to GC interference. Captures the innermost open
  // CauseScope as the interferer identity.
  void NoteMaintenance(std::uint32_t plane_index, SimTime done);
  // Portion of a host op's wait [issue, start) spent behind maintenance work on the plane.
  SimTime MaintenanceOverlap(std::uint32_t plane_index, SimTime issue, SimTime start) const;
  void PublishMetrics();

  FlashConfig config_ BLOCKHEAD_SHARD_SHARED;
  std::vector<BlockState> blocks_ BLOCKHEAD_SHARD_LOCAL(plane);       // Indexed by FlatBlockIndex.
  std::vector<SimTime> plane_busy_ BLOCKHEAD_SHARD_LOCAL(plane);      // Indexed by PlaneIndex.
  std::vector<SimTime> channel_busy_ BLOCKHEAD_SHARD_LOCAL(channel);    // Indexed by channel.
  // Last maintenance op per plane (GC-interference attribution + interferer identity).
  std::vector<MaintMark> plane_maintenance_busy_ BLOCKHEAD_SHARD_LOCAL(plane);
  // Busy intervals (host + maintenance), settled at sample boundaries so the timeline's
  // kRate samplers report true 0..1 busy fractions even though ops book their whole service
  // interval at issue time. Booked only while the timeline is enabled.
  std::vector<BusySeries> plane_busy_series_ BLOCKHEAD_SHARD_LOCAL(plane);
  std::vector<BusySeries> channel_busy_series_ BLOCKHEAD_SHARD_LOCAL(channel);
  FlashStats stats_ BLOCKHEAD_SHARD_SHARED;
  ShardingStats sharding_ BLOCKHEAD_SHARD_SHARED;
  Rng rng_ BLOCKHEAD_SHARD_SHARED;

  Telemetry* telemetry_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  std::string metric_prefix_ BLOCKHEAD_SIM_GLOBAL;
  // Write-provenance recording: every program/erase is tallied under the innermost open
  // CauseScope. The ledger pointer is cached at attach so the hot path does no map lookup.
  WriteProvenance* provenance_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  WriteProvenance::DeviceLedger* ledger_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  // Request-path charging: host ops attribute their queue/GC/media intervals to the active
  // request's exclusive segments. Cached at attach like the provenance ledger.
  RequestPathLedger* reqpath_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  // State-digest audit of block states ("<prefix>.blocks"): one entry per erasure block
  // hashing (flat index, write pointer, erase count, bad flag). Registered at attach; every
  // program/erase folds the block's old entry out and the new one in (O(1), see
  // src/telemetry/audit/state_digest.h).
  SubsystemDigest* audit_blocks_ BLOCKHEAD_SIM_GLOBAL = nullptr;
  std::uint64_t BlockEntryHash(std::uint64_t flat_index, const BlockState& b) const {
    return AuditHashWords({flat_index, b.next_page, b.erase_count, b.bad ? 1u : 0u});
  }
  std::uint32_t max_erase_count_
      BLOCKHEAD_SHARD_SHARED = 0;  // Running max, sampled as a timeline counter track.
  int sampler_group_ BLOCKHEAD_SIM_GLOBAL = -1;
  std::vector<std::string> plane_tracks_
      BLOCKHEAD_SIM_GLOBAL;  // Precomputed "<prefix>.plane<i>" track names.
  Histogram* read_latency_ BLOCKHEAD_SIM_GLOBAL = nullptr;     // Host reads, issue -> completion.
  Histogram* program_latency_
      BLOCKHEAD_SIM_GLOBAL = nullptr;  // Host programs, issue -> completion.
};

}  // namespace blockhead

#endif  // BLOCKHEAD_SRC_FLASH_FLASH_DEVICE_H_
