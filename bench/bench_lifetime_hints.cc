// E9 — §4.1: "How much can filesystem knowledge reduce write amplification? ... The host may
// be able to significantly reduce write amplification by grouping data into zones based on
// when it expects the data will expire."
//
// Setup: a mixed-lifetime file churn on the zonefile backend. Files belong to one of three
// true lifetime classes (short-lived files are recreated 16x more often than long-lived ones).
// The filesystem places files by *hint*; we sweep hint quality:
//   exact       — hint == true class (perfect application knowledge),
//   coarse      — two buckets only (filesystem-level heuristics),
//   none        — every file hinted identically (what a conventional block stack knows),
//   adversarial — hints assigned randomly (worst case).
// Reported: end-to-end write amplification and GC relocation volume per hint policy.

#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "bench/bench_main.h"
#include "src/core/matched_pair.h"
#include "src/telemetry/telemetry.h"
#include "src/util/rng.h"
#include "src/zonefile/zone_file_system.h"

using namespace blockhead;

namespace {

enum class TrueClass { kShort = 0, kMedium = 1, kLong = 2 };
enum class HintPolicy { kExact, kCoarse, kNone, kAdversarial };

const char* PolicyName(HintPolicy policy) {
  switch (policy) {
    case HintPolicy::kExact:
      return "exact";
    case HintPolicy::kCoarse:
      return "coarse";
    case HintPolicy::kNone:
      return "none";
    case HintPolicy::kAdversarial:
      return "adversarial";
  }
  return "?";
}

Lifetime HintFor(TrueClass cls, HintPolicy policy, Rng& rng) {
  switch (policy) {
    case HintPolicy::kExact:
      switch (cls) {
        case TrueClass::kShort:
          return Lifetime::kShort;
        case TrueClass::kMedium:
          return Lifetime::kMedium;
        case TrueClass::kLong:
          return Lifetime::kLong;
      }
      return Lifetime::kNone;
    case HintPolicy::kCoarse:
      return cls == TrueClass::kShort ? Lifetime::kShort : Lifetime::kMedium;
    case HintPolicy::kNone:
      return Lifetime::kNone;
    case HintPolicy::kAdversarial:
      return static_cast<Lifetime>(1 + rng.NextBelow(3));
  }
  return Lifetime::kNone;
}

struct HintResult {
  double wa = 0.0;
  std::uint64_t gc_pages_copied = 0;
  bool ok = false;
};

constexpr std::uint64_t kFilePages = 16;  // 64 KiB files.
constexpr std::uint64_t kCreates = 4200;

HintResult RunPolicy(HintPolicy policy, Telemetry* tel) {
  HintResult result;
  MatchedConfig cfg = MatchedConfig::Bench();
  cfg.flash.geometry.channels = 2;
  cfg.flash.geometry.planes_per_channel = 2;
  cfg.flash.geometry.blocks_per_plane = 64;
  cfg.flash.geometry.pages_per_block = 64;  // 64 MiB; 1 MiB zones.
  cfg.flash.timing = FlashTiming::FastForTests();
  cfg.flash.store_data = false;
  ZnsDevice dev(cfg.flash, cfg.zns);
  dev.AttachTelemetry(tel, std::string("zns.") + PolicyName(policy));
  auto fs_or = ZoneFileSystem::Format(&dev, ZoneFileConfig{}, 0);
  if (!fs_or.ok()) {
    std::fprintf(stderr, "format failed: %s\n", fs_or.status().ToString().c_str());
    return result;
  }
  ZoneFileSystem& fs = *fs_or.value();
  fs.AttachTelemetry(tel, std::string("zfs.") + PolicyName(policy));

  // Steady-state populations per class (~40 MiB live on a ~62 MiB data area).
  const std::size_t population[3] = {160, 240, 240};
  // Creation mix: short churns 16x as fast as long.
  const int weight[3] = {16, 4, 1};
  std::deque<std::string> live[3];
  Rng rng(3);
  const std::vector<std::uint8_t> payload(kFilePages * 4096, 0);

  SimTime t = 0;
  std::uint64_t serial = 0;
  for (std::uint64_t create = 0; create < kCreates; ++create) {
    // Pick a class by weight.
    int pick = static_cast<int>(rng.NextBelow(weight[0] + weight[1] + weight[2]));
    TrueClass cls = TrueClass::kShort;
    if (pick >= weight[0] + weight[1]) {
      cls = TrueClass::kLong;
    } else if (pick >= weight[0]) {
      cls = TrueClass::kMedium;
    }
    const int c = static_cast<int>(cls);
    const std::string name = "f" + std::to_string(serial++);
    if (!fs.Create(name, HintFor(cls, policy, rng), t).ok()) {
      return result;
    }
    auto a = fs.Append(name, payload, t);
    if (!a.ok()) {
      std::fprintf(stderr, "append failed: %s\n", a.status().ToString().c_str());
      return result;
    }
    t = a.value();
    if (!fs.Sync(name, t).ok()) {
      return result;
    }
    live[c].push_back(name);
    if (live[c].size() > population[c]) {
      if (!fs.Delete(live[c].front(), t).ok()) {
        return result;
      }
      live[c].pop_front();
    }
    fs.Pump(t, /*reads_pending=*/false, 1);
  }

  result.wa = fs.EndToEndWriteAmplification();
  result.gc_pages_copied = fs.stats().gc_pages_copied;
  result.ok = true;
  return result;
}

}  // namespace

int RunBench(const BenchOptions& opts, Telemetry& tel) {
  MaybeEnableTimeline(opts, tel);

  std::printf("=== E9: Write amplification vs lifetime-hint quality (zonefile on ZNS) ===\n");
  std::printf("Paper claim (§4.1): grouping data by expected expiry into zones reduces WA;\n"
              "application knowledge beats filesystem heuristics beats none.\n\n");

  TablePrinter table({"hint policy", "end-to-end WA", "GC pages relocated"});
  for (const HintPolicy policy : {HintPolicy::kExact, HintPolicy::kCoarse, HintPolicy::kNone,
                                  HintPolicy::kAdversarial}) {
    const HintResult r = RunPolicy(policy, &tel);
    table.AddRow({PolicyName(policy), r.ok ? TablePrinter::Fmt(r.wa) + "x" : "failed",
                  std::to_string(r.gc_pages_copied)});
  }
  std::printf("%s\n", table.Render().c_str());

  // Provenance view: the same WA ordering, but attributed — degraded hints convert padding
  // and (above all) zone-compaction relocation into a growing share of the physical writes.
  // The factorized chain zfs -> device-host -> device-phys multiplies back to the end-to-end
  // number by construction.
  std::printf("Write provenance per hint policy:\n\n");
  TablePrinter prov({"hint policy", "host", "compaction", "padding", "factorized WA"});
  for (const HintPolicy policy : {HintPolicy::kExact, HintPolicy::kCoarse, HintPolicy::kNone,
                                  HintPolicy::kAdversarial}) {
    const std::string name = PolicyName(policy);
    const std::string device = "zns." + name + ".flash";
    const WriteProvenance::DeviceLedger* ledger = tel.provenance.FindDevice(device);
    if (ledger == nullptr) {
      continue;
    }
    const WriteProvenance::FactorizedWa wa =
        tel.provenance.Factorize({"zfs." + name}, device);
    PublishFactorizedWa(&tel.registry, "hint." + name, wa);
    prov.AddRow(
        {name,
         std::to_string(WriteProvenance::ProgramCount(*ledger, WriteCause::kHostWrite)),
         std::to_string(WriteProvenance::ProgramCount(*ledger, WriteCause::kZoneCompaction)),
         std::to_string(WriteProvenance::ProgramCount(*ledger, WriteCause::kPadding)),
         FormatFactorizedWa(wa)});
  }
  std::printf("%s\n", prov.Render().c_str());

  std::printf("Shape check: WA and relocation volume rise as hints degrade (exact <= coarse\n"
              "< none <= adversarial). Perfect hints approach WA ~1 (+ metadata overhead):\n"
              "zones expire wholesale and are reset without copying; the compaction column is\n"
              "where the difference lives.\n");
  return FinishBench(opts, "bench_lifetime_hints", tel);
}

int main(int argc, char** argv) {
  return RunBenchMain(argc, argv, "bench_lifetime_hints", RunBench);
}
