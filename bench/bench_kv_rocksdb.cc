// E6 — §2.4 (CMU / ZenFS): "RocksDB's write amplification drops from 5x to 1.2x on ZNS SSDs."
//
// Setup: the mini-LSM store sustains a random-overwrite workload on (a) BlockEnv + conventional
// SSD and (b) zonefile + ZNS SSD, on identical flash, with the live data set sized to ~2/3 of
// device capacity so the conventional FTL operates under space pressure. Reported:
//   * LSM-level WA (flush+compaction bytes / user bytes) — a property of the LSM, same on both;
//   * device-level WA (flash programs / host programs)   — the number the claim is about;
//   * end-to-end WA (flash bytes / user bytes)           — their product, roughly.

#include <cstdio>

#include "src/core/matched_pair.h"
#include "src/kv/block_env.h"
#include "src/kv/kv_store.h"
#include "src/util/rng.h"

using namespace blockhead;

namespace {

constexpr std::uint64_t kKeys = 195000;
constexpr std::size_t kValueBytes = 150;
constexpr std::uint64_t kOverwriteOps = 300000;

std::string KeyOf(std::uint64_t n) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "user%010llu", static_cast<unsigned long long>(n));
  return buf;
}

std::string ValueOf(std::uint64_t n) {
  std::string v = "v" + std::to_string(n);
  v.resize(kValueBytes, 'y');
  return v;
}

struct WaResult {
  double lsm_wa = 0.0;
  double device_wa = 0.0;
  double end_to_end_wa = 0.0;
  std::uint64_t user_bytes = 0;
  bool ok = false;
};

WaResult RunChurn(Env* env, const FlashDevice& flash) {
  WaResult result;
  KvConfig cfg;
  cfg.memtable_bytes = 64 * kKiB;
  cfg.level_base_bytes = 1 * kMiB;
  cfg.level_multiplier = 3.0;
  cfg.target_table_bytes = 448 * kKiB;  // ~One table per 512 KiB zone incl. index/bloom overhead.
  cfg.max_levels = 5;
  auto store_or = KvStore::Open(env, cfg, 0);
  if (!store_or.ok()) {
    std::fprintf(stderr, "open failed: %s\n", store_or.status().ToString().c_str());
    return result;
  }
  KvStore& store = *store_or.value();

  SimTime t = 0;
  Rng rng(5);
  for (std::uint64_t i = 0; i < kKeys + kOverwriteOps; ++i) {
    const std::uint64_t k = i < kKeys ? i : rng.NextBelow(kKeys);
    env->Maintain(t, false);
    auto p = store.Put(KeyOf(k), ValueOf(i), t);
    if (!p.ok()) {
      std::fprintf(stderr, "put %llu failed: %s\n", static_cast<unsigned long long>(i),
                   p.status().ToString().c_str());
      return result;
    }
    t = std::max(t, p.value());
  }

  result.user_bytes = store.stats().user_bytes_written;
  result.lsm_wa = store.LsmWriteAmplification();
  const FlashStats& fs = flash.stats();
  result.device_wa = fs.host_pages_programmed == 0
                         ? 1.0
                         : static_cast<double>(fs.total_pages_programmed()) /
                               static_cast<double>(fs.host_pages_programmed);
  result.end_to_end_wa =
      static_cast<double>(fs.total_pages_programmed() * 4096) /
      static_cast<double>(result.user_bytes);
  result.ok = true;
  return result;
}

}  // namespace

int main() {
  std::printf("=== E6: LSM KV-store write amplification, conventional vs ZNS ===\n");
  std::printf("Paper claim (§2.4, CMU): RocksDB WA drops from ~5x to ~1.2x on ZNS.\n");
  std::printf("Workload: %llu-key load + %llu random overwrites (%zu B values).\n\n",
              static_cast<unsigned long long>(kKeys),
              static_cast<unsigned long long>(kOverwriteOps), kValueBytes);

  MatchedConfig mcfg = MatchedConfig::Bench();
  mcfg.flash.geometry.channels = 2;
  mcfg.flash.geometry.planes_per_channel = 2;
  mcfg.flash.geometry.blocks_per_plane = 128;
  mcfg.flash.geometry.pages_per_block = 32;  // 512 KiB zones.  // 64 MiB devices.
  mcfg.flash.timing = FlashTiming::FastForTests();
  mcfg.flash.store_data = true;
  mcfg.ftl.op_fraction = 0.07;

  ConventionalSsd ssd(mcfg.flash, mcfg.ftl);
  BlockEnv block_env(&ssd);
  const WaResult conv = RunChurn(&block_env, ssd.flash());

  ZnsDevice zns(mcfg.flash, mcfg.zns);
  ZoneFileConfig zf_cfg;
  zf_cfg.finish_remainder_pages = 16;  // Seal nearly-full zones at table boundaries (ZenFS).
  auto fs = ZoneFileSystem::Format(&zns, zf_cfg, 0);
  if (!fs.ok()) {
    std::fprintf(stderr, "format failed: %s\n", fs.status().ToString().c_str());
    return 1;
  }
  ZoneEnv zone_env(fs.value().get());
  const WaResult zoned = RunChurn(&zone_env, zns.flash());

  if (!conv.ok || !zoned.ok) {
    return 1;
  }

  TablePrinter table({"metric", "conventional (BlockEnv)", "ZNS (zonefile)"});
  table.AddRow({"LSM write amplification", TablePrinter::Fmt(conv.lsm_wa) + "x",
                TablePrinter::Fmt(zoned.lsm_wa) + "x"});
  table.AddRow({"device write amplification", TablePrinter::Fmt(conv.device_wa) + "x",
                TablePrinter::Fmt(zoned.device_wa) + "x"});
  table.AddRow({"end-to-end write amplification", TablePrinter::Fmt(conv.end_to_end_wa) + "x",
                TablePrinter::Fmt(zoned.end_to_end_wa) + "x"});
  std::printf("%s\n", table.Render().c_str());

  std::printf("Shape check (the paper's number is the device-level WA): conventional should be\n"
              "several-fold (FTL GC under fragmented SSTable churn), ZNS close to 1x (hint-\n"
              "grouped SSTables die with their zones; resets copy nothing). The LSM's own WA is\n"
              "interface-independent and appears on both sides.\n");
  return 0;
}
