// E13 — §2.3/§2.5: "it was straightforward to implement the block interface on the host using
// ZNS SSDs... enabling performance comparable to conventional SSDs" (dm-zoned role).
//
// Setup: the same fio-style workloads run against (a) a conventional SSD and (b) the host-FTL
// block device emulated over a ZNS SSD with simple-copy GC — identical flash underneath.
// Reported: latency and throughput per workload; the claim is comparable *shape*, since both
// now run a page-mapped log with GC (one in firmware, one on the host).

#include <cstdio>

#include "src/core/matched_pair.h"
#include "src/hostftl/host_ftl.h"
#include "src/workload/workload.h"

using namespace blockhead;

namespace {

struct WorkloadSpec {
  const char* name;
  double read_fraction;
  std::uint32_t io_pages;
  AddressDistribution dist;
};

RunResult RunOn(BlockDevice& device, const WorkloadSpec& spec,
                const std::function<void(SimTime, bool)>& hook) {
  auto fill = SequentialFill(device, 1.0, 0);
  RandomWorkloadConfig wl;
  wl.lba_space = device.num_blocks();
  wl.read_fraction = spec.read_fraction;
  wl.io_pages = spec.io_pages;
  wl.distribution = spec.dist;
  wl.seed = 23;
  RandomWorkload gen(wl);
  DriverOptions opts;
  opts.ops = device.num_blocks();
  opts.queue_depth = 4;
  opts.start_time = fill.value_or(0) + 10 * kMillisecond;
  opts.maintenance_hook = hook;
  return RunClosedLoop(device, gen, opts);
}

}  // namespace

int main() {
  std::printf("=== E13: Block interface emulated on ZNS vs native conventional SSD ===\n");
  std::printf("Paper claim (§2.3): host block emulation over ZNS (with simple copy) performs\n"
              "comparably to a conventional SSD.\n\n");

  const WorkloadSpec specs[] = {
      {"randwrite 4K", 0.0, 1, AddressDistribution::kUniform},
      {"randrw 70/30 4K", 0.7, 1, AddressDistribution::kUniform},
      {"randread 4K", 1.0, 1, AddressDistribution::kUniform},
      {"zipf-rw 50/50 16K", 0.5, 4, AddressDistribution::kZipfian},
  };

  TablePrinter table({"workload", "device", "read p50/p99 (us)", "write p50/p99 (us)", "MiB/s",
                      "device WA"});
  for (const WorkloadSpec& spec : specs) {
    {
      MatchedConfig cfg = MatchedConfig::Bench();
      cfg.ftl.op_fraction = 0.20;
      ConventionalSsd ssd(cfg.flash, cfg.ftl);
      const RunResult run = RunOn(ssd, spec, nullptr);
      table.AddRow(
          {spec.name, "conventional",
           TablePrinter::Fmt(static_cast<double>(run.read_latency.Percentile(0.5)) /
                             kMicrosecond, 0) +
               " / " +
               TablePrinter::Fmt(static_cast<double>(run.read_latency.Percentile(0.99)) /
                                 kMicrosecond, 0),
           TablePrinter::Fmt(static_cast<double>(run.write_latency.Percentile(0.5)) /
                             kMicrosecond, 0) +
               " / " +
               TablePrinter::Fmt(static_cast<double>(run.write_latency.Percentile(0.99)) /
                                 kMicrosecond, 0),
           TablePrinter::Fmt(run.TotalMiBps()), TablePrinter::Fmt(ssd.WriteAmplification()) + "x"});
    }
    {
      MatchedConfig cfg = MatchedConfig::Bench();
      cfg.zns.zone_write_buffer_pages = 64;  // Equal buffering with the conventional device.
      ZnsDevice dev(cfg.flash, cfg.zns);
      HostFtlConfig hcfg;
      hcfg.op_fraction = 0.20;
      hcfg.use_simple_copy = true;
      HostFtlBlockDevice ftl(&dev, hcfg);
      const RunResult run =
          RunOn(ftl, spec, [&ftl](SimTime now, bool reads) { ftl.Pump(now, reads, 1); });
      table.AddRow(
          {"", "block-on-ZNS",
           TablePrinter::Fmt(static_cast<double>(run.read_latency.Percentile(0.5)) /
                             kMicrosecond, 0) +
               " / " +
               TablePrinter::Fmt(static_cast<double>(run.read_latency.Percentile(0.99)) /
                                 kMicrosecond, 0),
           TablePrinter::Fmt(static_cast<double>(run.write_latency.Percentile(0.5)) /
                             kMicrosecond, 0) +
               " / " +
               TablePrinter::Fmt(static_cast<double>(run.write_latency.Percentile(0.99)) /
                                 kMicrosecond, 0),
           TablePrinter::Fmt(run.TotalMiBps()),
           TablePrinter::Fmt(ftl.EndToEndWriteAmplification()) + "x"});
    }
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Shape check: reads are identical and the latency profile is the same shape; the\n"
              "emulation's write-heavy throughput pays up to ~2x at matched spare capacity\n"
              "because host reclaim works at zone granularity (16 MiB here) while firmware GC\n"
              "reclaims 512 KiB blocks — visible as the higher device WA. Simple copy is what\n"
              "keeps even that gap bounded (E10 isolates its contribution); smaller zones\n"
              "shrink it further. The block-on-ZNS path is a compatibility bridge, not the\n"
              "destination: ZNS-native stacks (E4/E6/E14) beat both columns.\n");
  return 0;
}
