// E13 — §2.3/§2.5: "it was straightforward to implement the block interface on the host using
// ZNS SSDs... enabling performance comparable to conventional SSDs" (dm-zoned role).
//
// Setup: the same fio-style workloads run against (a) a conventional SSD and (b) the host-FTL
// block device emulated over a ZNS SSD with simple-copy GC — identical flash underneath.
// Reported: latency and throughput per workload; the claim is comparable *shape*, since both
// now run a page-mapped log with GC (one in firmware, one on the host).

#include <cstdio>
#include <string>

#include "bench/bench_main.h"
#include "src/core/matched_pair.h"
#include "src/hostftl/host_ftl.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/workload.h"

using namespace blockhead;

namespace {

struct WorkloadSpec {
  const char* name;
  const char* key;  // Metric-prefix-safe identifier ("conv.<key>", "zns.<key>", "emul.<key>").
  double read_fraction;
  std::uint32_t io_pages;
  AddressDistribution dist;
};

RunResult RunOn(BlockDevice& device, const WorkloadSpec& spec,
                const std::function<void(SimTime, bool)>& hook) {
  auto fill = SequentialFill(device, 1.0, 0);
  RandomWorkloadConfig wl;
  wl.lba_space = device.num_blocks();
  wl.read_fraction = spec.read_fraction;
  wl.io_pages = spec.io_pages;
  wl.distribution = spec.dist;
  wl.seed = 23;
  RandomWorkload gen(wl);
  DriverOptions opts;
  opts.ops = device.num_blocks();
  opts.queue_depth = 4;
  opts.start_time = fill.value_or(0) + 10 * kMillisecond;
  opts.maintenance_hook = hook;
  return RunClosedLoop(device, gen, opts);
}

}  // namespace

int RunBench(const BenchOptions& opts, Telemetry& tel) {
  MaybeEnableTimeline(opts, tel);

  std::printf("=== E13: Block interface emulated on ZNS vs native conventional SSD ===\n");
  std::printf("Paper claim (§2.3): host block emulation over ZNS (with simple copy) performs\n"
              "comparably to a conventional SSD.\n\n");

  const WorkloadSpec specs[] = {
      {"randwrite 4K", "randwrite4k", 0.0, 1, AddressDistribution::kUniform},
      {"randrw 70/30 4K", "randrw4k", 0.7, 1, AddressDistribution::kUniform},
      {"randread 4K", "randread4k", 1.0, 1, AddressDistribution::kUniform},
      {"zipf-rw 50/50 16K", "zipfrw16k", 0.5, 4, AddressDistribution::kZipfian},
  };

  TablePrinter table({"workload", "device", "read p50/p99 (us)", "write p50/p99 (us)", "MiB/s",
                      "device WA"});
  for (const WorkloadSpec& spec : specs) {
    {
      MatchedConfig cfg = MatchedConfig::Bench();
      cfg.ftl.op_fraction = 0.20;
      ConventionalSsd ssd(cfg.flash, cfg.ftl);
      ssd.AttachTelemetry(&tel, std::string("conv.") + spec.key);
      const RunResult run = RunOn(ssd, spec, nullptr);
      table.AddRow(
          {spec.name, "conventional",
           TablePrinter::Fmt(static_cast<double>(run.read_latency.Percentile(0.5)) /
                             kMicrosecond, 0) +
               " / " +
               TablePrinter::Fmt(static_cast<double>(run.read_latency.Percentile(0.99)) /
                                 kMicrosecond, 0),
           TablePrinter::Fmt(static_cast<double>(run.write_latency.Percentile(0.5)) /
                             kMicrosecond, 0) +
               " / " +
               TablePrinter::Fmt(static_cast<double>(run.write_latency.Percentile(0.99)) /
                                 kMicrosecond, 0),
           TablePrinter::Fmt(run.TotalMiBps()), TablePrinter::Fmt(ssd.WriteAmplification()) + "x"});
    }
    {
      MatchedConfig cfg = MatchedConfig::Bench();
      cfg.zns.zone_write_buffer_pages = 64;  // Equal buffering with the conventional device.
      ZnsDevice dev(cfg.flash, cfg.zns);
      dev.AttachTelemetry(&tel, std::string("zns.") + spec.key);
      HostFtlConfig hcfg;
      hcfg.op_fraction = 0.20;
      hcfg.use_simple_copy = true;
      HostFtlBlockDevice ftl(&dev, hcfg);
      ftl.AttachTelemetry(&tel, std::string("emul.") + spec.key);
      const RunResult run =
          RunOn(ftl, spec, [&ftl](SimTime now, bool reads) { ftl.Pump(now, reads, 1); });
      table.AddRow(
          {"", "block-on-ZNS",
           TablePrinter::Fmt(static_cast<double>(run.read_latency.Percentile(0.5)) /
                             kMicrosecond, 0) +
               " / " +
               TablePrinter::Fmt(static_cast<double>(run.read_latency.Percentile(0.99)) /
                                 kMicrosecond, 0),
           TablePrinter::Fmt(static_cast<double>(run.write_latency.Percentile(0.5)) /
                             kMicrosecond, 0) +
               " / " +
               TablePrinter::Fmt(static_cast<double>(run.write_latency.Percentile(0.99)) /
                                 kMicrosecond, 0),
           TablePrinter::Fmt(run.TotalMiBps()),
           TablePrinter::Fmt(ftl.EndToEndWriteAmplification()) + "x"});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  // Provenance: both columns run a page-mapped log with reclaim — one in firmware
  // (kDeviceGC), one on the host (kBlockEmulationReclaim). The table attributes each side's
  // internal writes and shows the factorized chain (for the emulation: emul-host bytes ->
  // ZNS-host bytes -> physical bytes; its product is the end-to-end WA the main table prints).
  std::printf("Reclaim provenance per workload:\n\n");
  TablePrinter prov({"workload", "device", "host", "reclaim", "reclaim share",
                     "factorized WA"});
  for (const WorkloadSpec& spec : specs) {
    const std::string conv_dev = std::string("conv.") + spec.key + ".flash";
    const std::string zns_dev = std::string("zns.") + spec.key + ".flash";
    const WriteProvenance::DeviceLedger* conv = tel.provenance.FindDevice(conv_dev);
    const WriteProvenance::DeviceLedger* zns = tel.provenance.FindDevice(zns_dev);
    if (conv == nullptr || zns == nullptr) {
      continue;
    }
    const auto share = [](std::uint64_t part, std::uint64_t total) {
      return total == 0 ? std::string("-")
                        : TablePrinter::Fmt(100.0 * static_cast<double>(part) /
                                            static_cast<double>(total), 1) + "%";
    };
    const std::uint64_t conv_gc =
        WriteProvenance::ProgramCount(*conv, WriteCause::kDeviceGC) +
        WriteProvenance::ProgramCount(*conv, WriteCause::kWearMigration);
    const WriteProvenance::FactorizedWa conv_wa = tel.provenance.Factorize({}, conv_dev);
    PublishFactorizedWa(&tel.registry, std::string("conv.") + spec.key, conv_wa);
    prov.AddRow({spec.name, "conventional",
                 std::to_string(WriteProvenance::ProgramCount(*conv, WriteCause::kHostWrite)),
                 std::to_string(conv_gc), share(conv_gc, conv->total_pages),
                 FormatFactorizedWa(conv_wa)});
    const std::uint64_t emul_gc =
        WriteProvenance::ProgramCount(*zns, WriteCause::kBlockEmulationReclaim);
    const WriteProvenance::FactorizedWa emul_wa =
        tel.provenance.Factorize({std::string("emul.") + spec.key}, zns_dev);
    PublishFactorizedWa(&tel.registry, std::string("emul.") + spec.key, emul_wa);
    prov.AddRow({"", "block-on-ZNS",
                 std::to_string(WriteProvenance::ProgramCount(*zns, WriteCause::kHostWrite)),
                 std::to_string(emul_gc), share(emul_gc, zns->total_pages),
                 FormatFactorizedWa(emul_wa)});
  }
  std::printf("%s\n", prov.Render().c_str());

  std::printf("Shape check: reads are identical and the latency profile is the same shape; the\n"
              "emulation's write-heavy throughput pays up to ~2x at matched spare capacity\n"
              "because host reclaim works at zone granularity (16 MiB here) while firmware GC\n"
              "reclaims 512 KiB blocks — visible as the higher device WA. Simple copy is what\n"
              "keeps even that gap bounded (E10 isolates its contribution); smaller zones\n"
              "shrink it further. The block-on-ZNS path is a compatibility bridge, not the\n"
              "destination: ZNS-native stacks (E4/E6/E14) beat both columns.\n");
  return FinishBench(opts, "bench_block_emulation", tel);
}

int main(int argc, char** argv) {
  return RunBenchMain(argc, argv, "bench_block_emulation", RunBench);
}
