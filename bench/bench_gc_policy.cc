// A2 (ablation) — §2.4/§4.1: the paper notes FTLs are information-limited "even with
// near-optimal garbage collection algorithms" (citing Shafaei & Desnoyers). This ablation
// quantifies how much the *algorithm* matters without application information: greedy vs
// cost-benefit victim selection, under uniform and skewed overwrites, at two OP points —
// versus what perfect lifetime knowledge (app-managed zones on ZNS) gets for free.

#include <cstdio>
#include <string>

#include "bench/bench_main.h"
#include "src/core/matched_pair.h"
#include "src/telemetry/event_log.h"
#include "src/util/rng.h"
#include "src/workload/workload.h"

using namespace blockhead;

namespace {

double RunConventional(GcVictimPolicy policy, AddressDistribution dist, double op,
                       Telemetry* tel, const std::string& prefix) {
  MatchedConfig cfg = MatchedConfig::Bench();
  cfg.flash.timing = FlashTiming::FastForTests();
  cfg.flash.store_data = false;
  FtlConfig ftl;
  ftl.op_fraction = op;
  ftl.victim_policy = policy;
  ConventionalSsd ssd(cfg.flash, ftl);
  ssd.AttachTelemetry(tel, prefix);
  auto fill = SequentialFill(ssd, 1.0, 0);
  if (!fill.ok()) {
    return -1;
  }
  RandomWorkloadConfig wl;
  wl.lba_space = ssd.num_blocks();
  wl.read_fraction = 0.0;
  wl.distribution = dist;
  wl.zipf_theta = 0.99;
  wl.seed = 21;
  RandomWorkload gen(wl);
  DriverOptions opts;
  opts.ops = 3 * ssd.num_blocks();
  opts.start_time = fill.value();
  (void)RunClosedLoop(ssd, gen, opts);
  return ssd.WriteAmplification();
}

}  // namespace

int RunBench(const BenchOptions& bench_opts, Telemetry& tel) {
  MaybeEnableTimeline(bench_opts, tel);
  std::printf("=== A2 (ablation): GC victim selection — how far can the algorithm go without\n"
              "application information? ===\n\n");

  TablePrinter table({"workload", "OP", "greedy WA", "cost-benefit WA", "ZNS w/ app knowledge"});
  for (const double op : {0.07, 0.25}) {
    for (const AddressDistribution dist :
         {AddressDistribution::kUniform, AddressDistribution::kZipfian}) {
      char opbuf[16];
      std::snprintf(opbuf, sizeof(opbuf), "%.0f%%", op * 100);
      const char* wl_tag = dist == AddressDistribution::kUniform ? "uniform" : "zipf";
      const std::string run_tag = std::string(wl_tag) + ".op" + std::to_string(
          static_cast<int>(op * 100));
      table.AddRow({dist == AddressDistribution::kUniform ? "uniform overwrite"
                                                          : "zipf(0.99) overwrite",
                    opbuf,
                    TablePrinter::Fmt(RunConventional(GcVictimPolicy::kGreedy, dist, op, &tel,
                                                      "greedy." + run_tag)) +
                        "x",
                    TablePrinter::Fmt(RunConventional(GcVictimPolicy::kCostBenefit, dist, op,
                                                      &tel, "costbenefit." + run_tag)) +
                        "x",
                    "1.00x"});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  // SMART-style log-page query: every victim selection across all eight runs lives in the
  // shared event log, tagged by the run's metric prefix and victim policy.
  const auto victims = tel.events.Page(TimelineEventType::kGcVictim);
  std::printf("GC victim log page: %zu selections recorded (e.g. first: %s)\n\n",
              victims.size(),
              victims.empty() ? "n/a" : victims.front().detail.c_str());

  std::printf("Shape check: cost-benefit beats greedy on skewed (zipf) workloads by aging out\n"
              "cold blocks, and roughly ties on uniform ones — but neither algorithm\n"
              "approaches the WA ~1 that hosts get on ZNS by placing data with knowledge of\n"
              "its lifetime (§2.4: 'information about applications is the key\n"
              "bottleneck for near-optimal garbage collection').\n");
  return FinishBench(bench_opts, "bench_gc_policy", tel);
}

int main(int argc, char** argv) {
  return RunBenchMain(argc, argv, "bench_gc_policy", RunBench);
}
