// T1 — multi-tenant interference characterization: who is stealing the reader's tail?
//
// The serving-systems characterization literature (and the paper's §4.1 scheduling argument)
// says read tail latency on shared flash is dominated by *someone else's* work — device GC,
// host reclaim, migration copies — and that the interference changes shape with reclaim
// pressure and read-replica policy. With the reqpath critical-path ledger every nanosecond of
// a request is attributed to an exclusive segment, so this bench can answer the
// characterization question exactly rather than by subtraction:
//
//   grid = tenants (latency-sensitive reader + write antagonist)
//        x GC pressure (fill fraction before the measured run)
//        x read-replica policy (primary-only funnels vs least-pending spreads)
//
// Per cell: each tenant's p50/p99/p99.9, the reader's SLO burn, and the top interference
// (cause, layer) by attributed nanoseconds. Deterministic: same seed -> byte-identical
// --json / --exemplars / --slo output.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_main.h"
#include "src/core/matched_pair.h"
#include "src/fleet/fleet.h"
#include "src/workload/workload.h"

using namespace blockhead;

namespace {

constexpr std::uint64_t kSeed = 7;
constexpr std::uint64_t kReaderOps = 6000;
constexpr std::uint64_t kWriterOps = 6000;

std::string Us(std::uint64_t ns) { return TablePrinter::Fmt(static_cast<double>(ns) / 1e3, 1); }

// The attributed-ns argmax over the ledger's cumulative (cause, layer) interference matrix.
struct TopInterference {
  WriteCause cause = WriteCause::kHostWrite;
  StackLayer layer = StackLayer::kHost;
  std::uint64_t ns = 0;
};

TopInterference FindTopInterference(const RequestPathLedger& ledger) {
  TopInterference top;
  for (int c = 0; c < kWriteCauseCount; ++c) {
    for (int l = 0; l < kStackLayerCount; ++l) {
      const std::uint64_t ns =
          ledger.interference_ns(static_cast<WriteCause>(c), static_cast<StackLayer>(l));
      if (ns > top.ns) {
        top = TopInterference{static_cast<WriteCause>(c), static_cast<StackLayer>(l), ns};
      }
    }
  }
  return top;
}

}  // namespace

int RunBench(const BenchOptions& opts, Telemetry& tel) {
  MaybeEnableTimeline(opts, tel);

  std::printf("=== T1: Multi-tenant interference — exact critical-path attribution ===\n");
  std::printf("Reader (YCSB-C zipfian) vs write antagonist on a shared 4-device fleet.\n"
              "GC pressure = pre-run fill fraction; every wait attributed by the reqpath\n"
              "ledger. %llu reader + %llu writer ops per cell, seed %llu.\n\n",
              static_cast<unsigned long long>(kReaderOps),
              static_cast<unsigned long long>(kWriterOps),
              static_cast<unsigned long long>(kSeed));

  TablePrinter grid({"fill", "read policy", "reader p99 us", "reader p999 us",
                     "writer p99 us", "sheds", "reader burn", "top interference",
                     "interf us"});
  // The last cell's full reqpath state (ledger rows, exemplars, SLO report) is what --json /
  // --exemplars / --slo carry; the table rows carry the per-cell evidence.
  for (const double fill : {0.35, 0.85}) {
    for (const ReadReplicaPolicy policy :
         {ReadReplicaPolicy::kPrimaryOnly, ReadReplicaPolicy::kLeastPending}) {
      char prefix[32];
      std::snprintf(prefix, sizeof(prefix), "cell.f%02d.%s", static_cast<int>(fill * 100),
                    policy == ReadReplicaPolicy::kPrimaryOnly ? "pri" : "lp");

      // Fresh ledger per cell (objectives survive re-Enable; the previous cell's objective is
      // replaced by name). A deeper reservoir than the default: the very worst reads are
      // queue waits behind the antagonist, and the reclaim-stalled reads sit just below them.
      ReqPathConfig reqpath_cfg;
      reqpath_cfg.exemplars_per_op = 24;
      tel.reqpath.Enable(reqpath_cfg);
      SloObjective slo;
      slo.name = "reader.p99";
      slo.tenant = 1;
      slo.op = ReqOp::kRead;
      slo.quantile = 0.99;
      slo.target_ns = 500 * kMicrosecond;
      slo.window = 10 * kMillisecond;
      tel.reqpath.AddObjective(slo);

      FleetConfig cfg = FleetConfig::Mixed(4, 0.5, kSeed);
      cfg.router.read_policy = policy;
      cfg.rebalancer.enabled = false;  // Isolate reclaim interference from migration traffic.
      Fleet fleet(cfg);
      fleet.AttachTelemetry(&tel, prefix);

      // GC pressure: fill the logical space to `fill` before measuring, so reclaim runs
      // under the measured ops at high pressure and stays mostly idle at low. The measured
      // phase starts at the prefill's completion frontier — otherwise the first reads queue
      // behind the draining fill writes and a cold-start artifact owns the worst-k exemplars.
      SimTime measured_start = 0;
      {
        RequestPathLedger::SuppressScope no_requests(&tel.reqpath);
        SequentialWorkload filler(fleet.num_pages(), 4, IoType::kWrite);
        FleetDriverOptions fill_opts;
        fill_opts.ops = static_cast<std::uint64_t>(
            fill * static_cast<double>(fleet.num_pages()) / 4.0);
        fill_opts.queue_depth = 8;
        fill_opts.step_interval = 8;
        const FleetRunResult fill_result = RunFleetClosedLoop(fleet, filler, fill_opts);
        if (!fill_result.status.ok()) {
          std::fprintf(stderr, "%s: fill failed: %s\n", prefix,
                       fill_result.status.ToString().c_str());
        }
        measured_start = fill_result.end;
      }

      YcsbBlockConfig reader_cfg;
      reader_cfg.mix = YcsbMix::kC;
      reader_cfg.lba_space = fleet.num_pages();
      reader_cfg.record_pages = 2;
      reader_cfg.zipf_theta = 0.99;
      reader_cfg.seed = kSeed + 1;
      YcsbBlockWorkload reader(reader_cfg);

      RandomWorkloadConfig writer_cfg;
      writer_cfg.lba_space = fleet.num_pages();
      writer_cfg.read_fraction = 0.0;
      writer_cfg.io_pages = 4;
      writer_cfg.distribution = AddressDistribution::kZipfian;
      writer_cfg.zipf_theta = 0.99;
      writer_cfg.seed = kSeed + 2;
      RandomWorkload writer(writer_cfg);

      const FleetTenantSpec tenants[] = {{1, &reader, kReaderOps}, {2, &writer, kWriterOps}};
      FleetDriverOptions run_opts;
      run_opts.step_interval = 4;
      run_opts.start_time = measured_start;
      const std::vector<FleetRunResult> r = RunFleetMultiTenant(fleet, tenants, run_opts);

      const TopInterference top = FindTopInterference(tel.reqpath);
      double burn = 0.0;
      for (const auto& s : tel.reqpath.SloSnapshots()) {
        if (s.objective.name == "reader.p99") {
          burn = s.burn_short;
        }
      }
      grid.AddRow({TablePrinter::Fmt(fill, 2),
                   policy == ReadReplicaPolicy::kPrimaryOnly ? "primary" : "least-pending",
                   Us(r[0].read_latency.P99()), Us(r[0].read_latency.P999()),
                   Us(r[1].write_latency.P99()),
                   std::to_string(r[0].sheds + r[1].sheds), TablePrinter::Fmt(burn),
                   top.ns == 0 ? std::string("-")
                               : std::string(WriteCauseName(top.cause)) + "." +
                                     StackLayerName(top.layer),
                   Us(top.ns)});
    }
  }
  std::printf("%s\n", grid.Render().c_str());
  std::printf("Shape check: the top attributed interferer names the culprit directly --\n"
              "host-FTL block-emulation reclaim tops every cell -- instead of inferring it by\n"
              "subtraction, and fill raises the attributed reclaim time under either read\n"
              "policy. Spreading reads (least-pending) pays a higher p99 for touching more\n"
              "device queues and samples more reclaim windows, so it attributes *more* total\n"
              "interference than primary-only, which concentrates it. The worst-k exemplars\n"
              "(--exemplars) carry the identity further down: the victim read's stall names\n"
              "the interfering flash-plane track. Every row rests on the attribution\n"
              "identity: segment sums equal end-to-end latency for every request.\n");

  return FinishBench(opts, "bench_interference", tel);
}

int main(int argc, char** argv) {
  return RunBenchMain(argc, argv, "bench_interference", RunBench);
}
