// E8 — §4.2: "A simple strategy is to assign a fixed number of zones to each application
// together with a fixed active zone budget. However, this approach does not scale for typical
// bursty workloads as it does not allow multiplexing of this scarce resource."
//
// Setup: four bursty tenants (staggered on/off phases) share a 14-active-zone device (the
// paper's example limit), under a static per-tenant partition vs a demand-based budget with a
// guaranteed minimum. Reported: aggregate and per-tenant throughput, acquisition stalls, and
// mean active-slot utilization.

#include <cstdio>

#include "src/alloc/zone_budget.h"
#include "src/core/matched_pair.h"

using namespace blockhead;

namespace {

MultiTenantResult Run(ZoneBudgetManager& budget, std::uint32_t tenants, SimTime duration) {
  MatchedConfig cfg = MatchedConfig::Bench();
  cfg.zns.max_active_zones = 14;  // Paper §2.1: a current device supports 14 active zones.
  cfg.zns.max_open_zones = 14;
  // A zone stripes over a die group: one zone can't saturate the device.
  cfg.zns.planes_per_zone = 4;
  ZnsDevice dev(cfg.flash, cfg.zns);
  std::vector<TenantConfig> configs(tenants);
  for (std::uint32_t t = 0; t < tenants; ++t) {
    configs[t].seed = t + 1;
    configs[t].on_duration = 4 * kMillisecond;
    configs[t].off_duration = 28 * kMillisecond;
    configs[t].desired_zones = 10;  // Bursts want far more than a static share (3).
  }
  return RunMultiTenantSim(dev, budget, configs, duration);
}

void Report(const char* name, const MultiTenantResult& result) {
  std::printf("%s:\n", name);
  std::printf("  total: %.1f MiB written, slot utilization %.0f%%\n",
              static_cast<double>(result.total_pages) * 4096 / static_cast<double>(kMiB),
              100.0 * result.slot_utilization);
  for (std::size_t t = 0; t < result.tenants.size(); ++t) {
    const TenantResult& tenant = result.tenants[t];
    std::printf("  tenant %zu: %6.1f MiB, %5llu acquire rejections, %.1f ms stalled\n", t,
                static_cast<double>(tenant.pages_written) * 4096 / static_cast<double>(kMiB),
                static_cast<unsigned long long>(tenant.acquire_failures),
                static_cast<double>(tenant.stalled_time) / kMillisecond);
  }
}

}  // namespace

int main() {
  std::printf("=== E8: Active-zone budgeting under bursty multi-tenant load ===\n");
  std::printf("Paper claim (§4.2): static partitioning wastes the scarce active-zone budget;\n"
              "demand-based assignment multiplexes it.\n\n");

  const std::uint32_t tenants = 4;
  const SimTime duration = 400 * kMillisecond;

  StaticPartitionBudget static_budget(14 / tenants * tenants, tenants);
  const MultiTenantResult static_result = Run(static_budget, tenants, duration);
  DemandBudget demand_budget(14, tenants, /*guaranteed_min=*/1);
  const MultiTenantResult demand_result = Run(demand_budget, tenants, duration);

  Report("static-partition (3-4 slots/tenant, not lendable)", static_result);
  std::printf("\n");
  Report("demand-based (shared pool, 1 slot guaranteed)", demand_result);

  const double gain = static_result.total_pages == 0
                          ? 0.0
                          : static_cast<double>(demand_result.total_pages) /
                                static_cast<double>(static_result.total_pages);
  std::printf("\nDemand-based aggregate throughput gain: %.2fx\n", gain);
  std::printf("Shape check: demand-based writes more in the same time and keeps budget slots\n"
              "busier, because a bursting tenant borrows slots that idle tenants are not using.\n");
  return 0;
}
