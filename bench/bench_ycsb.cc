// E18 — standard-workload comparison: YCSB core workloads A-F on the mini-LSM store over both
// backends. The paper's §2.4 numbers (IBM SALSA's "65% higher application throughput", WD's
// RocksDB results) are application-level comparisons of exactly this kind; this bench shows
// where the ZNS advantage lands across read/update/insert/scan mixes.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_main.h"
#include "src/core/matched_pair.h"
#include "src/kv/block_env.h"
#include "src/kv/ycsb.h"
#include "src/telemetry/telemetry.h"

using namespace blockhead;

namespace {

// Registry prefix for one (workload, backend) cell, e.g. "ycsb.a.zns".
std::string CellPrefix(YcsbWorkload w, bool zns) {
  std::string p = "ycsb.";
  p += static_cast<char>('a' + static_cast<int>(w));
  p += zns ? ".zns" : ".conv";
  return p;
}

struct BackendRun {
  YcsbResult result;
  double device_wa = 1.0;
};

KvConfig StoreConfig() {
  KvConfig cfg;
  cfg.memtable_bytes = 64 * kKiB;
  cfg.level_base_bytes = 1 * kMiB;
  cfg.level_multiplier = 3.0;
  cfg.target_table_bytes = 448 * kKiB;
  cfg.max_levels = 5;
  return cfg;
}

MatchedConfig DeviceConfig() {
  MatchedConfig cfg = MatchedConfig::Bench();
  cfg.flash.geometry.channels = 2;
  cfg.flash.geometry.planes_per_channel = 2;
  cfg.flash.geometry.blocks_per_plane = 128;
  cfg.flash.geometry.pages_per_block = 32;  // 64 MiB devices, 512 KiB zones.
  cfg.flash.store_data = true;
  cfg.ftl.op_fraction = 0.07;
  return cfg;
}

}  // namespace

int RunBench(const BenchOptions& opts, Telemetry& tel) {
  MaybeEnableTimeline(opts, tel);

  std::printf("=== E18: YCSB A-F on the LSM store, conventional vs ZNS backends ===\n");
  YcsbConfig ycsb;
  ycsb.record_count = 120000;
  ycsb.operation_count = 60000;
  std::printf("%llu records, %llu ops per workload, %zu B values, zipf(%.1f).\n\n",
              static_cast<unsigned long long>(ycsb.record_count),
              static_cast<unsigned long long>(ycsb.operation_count), ycsb.value_bytes,
              ycsb.zipf_theta);

  TablePrinter table({"workload", "backend", "kops/s", "read p99 (us)", "update p99 (us)",
                      "scan p99 (us)", "device WA"});
  for (const YcsbWorkload w : {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC,
                               YcsbWorkload::kD, YcsbWorkload::kE, YcsbWorkload::kF}) {
    for (const bool zns : {false, true}) {
      const MatchedConfig cfg = DeviceConfig();
      BackendRun run;
      const std::string prefix = CellPrefix(w, zns);
      if (!zns) {
        ConventionalSsd ssd(cfg.flash, cfg.ftl);
        ssd.AttachTelemetry(&tel, prefix);
        BlockEnv env(&ssd);
        auto store = KvStore::Open(&env, StoreConfig(), 0);
        if (!store.ok()) {
          std::fprintf(stderr, "open: %s\n", store.status().ToString().c_str());
          return 1;
        }
        store.value()->AttachTelemetry(&tel, prefix + ".kv");
        auto loaded = YcsbLoad(*store.value(), ycsb, 0);
        if (!loaded.ok()) {
          std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
          return 1;
        }
        run.result = YcsbRun(*store.value(), w, ycsb, loaded.value() + 10 * kMillisecond);
        run.device_wa = ssd.WriteAmplification();
      } else {
        ZnsDevice dev(cfg.flash, cfg.zns);
        dev.AttachTelemetry(&tel, prefix);
        ZoneFileConfig zf;
        zf.finish_remainder_pages = 16;
        auto fs = ZoneFileSystem::Format(&dev, zf, 0);
        if (!fs.ok()) {
          std::fprintf(stderr, "format: %s\n", fs.status().ToString().c_str());
          return 1;
        }
        fs.value()->AttachTelemetry(&tel, prefix + ".zonefile");
        ZoneEnv env(fs.value().get());
        auto store = KvStore::Open(&env, StoreConfig(), 0);
        if (!store.ok()) {
          std::fprintf(stderr, "open: %s\n", store.status().ToString().c_str());
          return 1;
        }
        store.value()->AttachTelemetry(&tel, prefix + ".kv");
        auto loaded = YcsbLoad(*store.value(), ycsb, 0);
        if (!loaded.ok()) {
          std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
          return 1;
        }
        run.result = YcsbRun(*store.value(), w, ycsb, loaded.value() + 10 * kMillisecond);
        const FlashStats& fstats = dev.flash().stats();
        run.device_wa = fstats.host_pages_programmed == 0
                            ? 1.0
                            : static_cast<double>(fstats.total_pages_programmed()) /
                                  static_cast<double>(fstats.host_pages_programmed);
      }
      if (!run.result.status.ok()) {
        std::fprintf(stderr, "run %s failed: %s\n", YcsbName(w),
                     run.result.status.ToString().c_str());
        return 1;
      }
      auto p99 = [](const Histogram& h) {
        return h.count() == 0 ? std::string("-")
                              : TablePrinter::Fmt(static_cast<double>(h.Percentile(0.99)) /
                                                  kMicrosecond);
      };
      table.AddRow({zns ? "" : YcsbName(w), zns ? "ZNS" : "conventional",
                    TablePrinter::Fmt(run.result.OpsPerSecond() / 1000.0, 1),
                    p99(run.result.read_latency), p99(run.result.update_latency),
                    p99(run.result.scan_latency), TablePrinter::Fmt(run.device_wa) + "x"});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  // Provenance: the multiplication the paper's §2.4 numbers hide. Per cell we attribute the
  // physical programs (LSM flush/compaction from the store, GC or zone-compaction/padding
  // below it) and print the factorized chain kv -> [zonefile ->] device-host -> physical,
  // whose product equals the cell's end-to-end WA.
  std::printf("Write provenance per (workload, backend) cell:\n\n");
  TablePrinter prov({"workload", "backend", "flush", "compaction", "device-internal",
                     "factorized WA"});
  for (const YcsbWorkload w : {YcsbWorkload::kA, YcsbWorkload::kB, YcsbWorkload::kC,
                               YcsbWorkload::kD, YcsbWorkload::kE, YcsbWorkload::kF}) {
    for (const bool zns : {false, true}) {
      const std::string prefix = CellPrefix(w, zns);
      const std::string device = prefix + ".flash";
      const WriteProvenance::DeviceLedger* ledger = tel.provenance.FindDevice(device);
      if (ledger == nullptr) {
        continue;
      }
      const std::uint64_t internal =
          zns ? WriteProvenance::ProgramCount(*ledger, WriteCause::kZoneCompaction) +
                    WriteProvenance::ProgramCount(*ledger, WriteCause::kPadding)
              : WriteProvenance::ProgramCount(*ledger, WriteCause::kDeviceGC) +
                    WriteProvenance::ProgramCount(*ledger, WriteCause::kWearMigration);
      std::vector<std::string> domains = {prefix + ".kv"};
      if (zns) {
        domains.push_back(prefix + ".zonefile");
      }
      const WriteProvenance::FactorizedWa wa = tel.provenance.Factorize(domains, device);
      PublishFactorizedWa(&tel.registry, prefix, wa);
      prov.AddRow(
          {zns ? "" : YcsbName(w), zns ? "ZNS" : "conventional",
           std::to_string(WriteProvenance::ProgramCount(*ledger, WriteCause::kLsmFlush)),
           std::to_string(WriteProvenance::ProgramCount(*ledger, WriteCause::kLsmCompaction)),
           std::to_string(internal), FormatFactorizedWa(wa)});
    }
  }
  std::printf("%s\n", prov.Render().c_str());

  std::printf("Shape check: write-heavy mixes (A, F) and insert mixes (D, E) favor the ZNS\n"
              "backend (no device GC competing with foreground I/O, lower device WA);\n"
              "read-only C ties. This is the application-level view of the paper's §2.4\n"
              "claims.\n");
  return FinishBench(opts, "bench_ycsb", tel);
}

int main(int argc, char** argv) {
  return RunBenchMain(argc, argv, "bench_ycsb", RunBench);
}
