// E12 — §2.2 + footnote 2: ZNS devices cost less per usable gigabyte because they drop the
// overprovisioned flash pool (7-28% of usable capacity on conventional devices) and nearly all
// on-board mapping DRAM; what DRAM need remains moves to cheap bulk host DIMMs (small embedded
// DRAM costs >2x per GB).

#include <cstdio>

#include "src/core/matched_pair.h"
#include "src/cost/cost_model.h"

using namespace blockhead;

int main() {
  std::printf("=== E12: Device cost per usable GiB, conventional (OP sweep) vs ZNS ===\n");
  std::printf("Paper claims (§2.2): OP is 7-28%% of usable capacity; flash dominates device\n"
              "cost; ZNS needs neither the OP pool nor page-granular mapping DRAM.\n\n");

  const CostModelConfig cfg;
  const std::uint64_t capacity = 4 * kTiB;
  const DeviceCost zns = ZnsDeviceCost(capacity, cfg);

  TablePrinter table({"device", "raw flash", "flash $", "DRAM $", "total $", "$/usable GiB",
                      "vs ZNS"});
  for (const double op : {0.07, 0.125, 0.20, 0.28}) {
    const DeviceCost conv = ConventionalDeviceCost(capacity, op, cfg);
    char name[32];
    std::snprintf(name, sizeof(name), "conventional %.1f%% OP", op * 100);
    table.AddRow({name, TablePrinter::FmtBytes(conv.raw_flash_bytes),
                  TablePrinter::Fmt(conv.flash_usd), TablePrinter::Fmt(conv.dram_usd),
                  TablePrinter::Fmt(conv.total_usd()),
                  TablePrinter::Fmt(conv.usd_per_usable_gib(), 4),
                  "+" + TablePrinter::Fmt(
                            100.0 * (conv.usd_per_usable_gib() / zns.usd_per_usable_gib() - 1.0),
                            1) +
                      "%"});
  }
  table.AddRow({"ZNS (2% bad-block reserve)", TablePrinter::FmtBytes(zns.raw_flash_bytes),
                TablePrinter::Fmt(zns.flash_usd), TablePrinter::Fmt(zns.dram_usd),
                TablePrinter::Fmt(zns.total_usd()),
                TablePrinter::Fmt(zns.usd_per_usable_gib(), 4), "baseline"});
  std::printf("%s\n", table.Render().c_str());

  std::printf("Footnote-2 check (DRAM price asymmetry): embedded device DRAM modeled at\n"
              "$%.2f/GiB vs bulk host DIMMs at $%.2f/GiB (ratio %.1fx > 2x).\n",
              cfg.device_dram_usd_per_gib, cfg.host_dram_usd_per_gib,
              cfg.device_dram_usd_per_gib / cfg.host_dram_usd_per_gib);
  std::printf("If a ZNS deployment rebuilds page-granular state in HOST DRAM (block emulation),\n"
              "that costs $%.2f — still below the $%.2f embedded DRAM it replaces, and zero for\n"
              "zone-native applications.\n\n",
              ZnsHostDramUsd(capacity, cfg),
              ConventionalDeviceCost(capacity, 0.07, cfg).dram_usd);
  // §2.1/§2.2 endurance: WA burns P/E cycles, shortening device life.
  std::printf("Endurance (§2.1): device lifetime at 4 TB/day host writes, TLC (3000 cycles):\n");
  TablePrinter life({"write amplification", "lifetime (years)", "DWPD @ 5-year life"});
  for (const double wa : {1.0, 2.5, 5.0, 15.0}) {
    const LifetimeEstimate e = EstimateLifetime(capacity, 3000, wa, 4000.0);
    char name[32];
    std::snprintf(name, sizeof(name), "%.1fx%s", wa,
                  wa == 1.0 ? " (ZNS-native)" : "");
    life.AddRow({name, TablePrinter::Fmt(e.years, 1), TablePrinter::Fmt(e.dwpd_supported, 2)});
  }
  std::printf("%s\n", life.Render().c_str());
  std::printf("Shape check: ZNS is cheaper per usable GiB at every OP point (gap grows with\n"
              "OP), and every point of write amplification removed multiplies device lifetime\n"
              "or the sustainable write rate.\n");
  return 0;
}
