// A3 (ablation) — offered-load sweep under open-loop (Poisson) arrivals: the latency-vs-load
// hockey stick for both device classes. The paper's throughput claims (§2.4: "3x higher
// throughput") appear here as the ZNS device sustaining a much higher arrival rate before its
// read tail explodes — GC steals no bandwidth from the foreground.

#include <cstdio>
#include <deque>

#include "src/core/matched_pair.h"
#include "src/util/rng.h"
#include "src/workload/workload.h"

using namespace blockhead;

namespace {

constexpr double kReadFraction = 0.7;
constexpr std::uint64_t kOps = 120000;

// Conventional: standard block device, preconditioned to GC steady state (sequential fill
// plus one logical capacity of closed-loop random writes — standard SSD benchmarking
// practice; without it the measurement lands in the transient where every GC victim is still
// ~90% valid and the device saturates at any load).
Histogram RunConventional(double ops_per_sec) {
  MatchedConfig cfg = MatchedConfig::Bench();
  // Write-optimized enterprise provisioning: at 7% OP a 93%-full device's steady-state WA
  // under random writes (~8x) saturates it at any load. The ZNS side needs no such OP — that
  // asymmetry is the paper's §2.2 cost argument.
  cfg.ftl.op_fraction = 0.25;
  ConventionalSsd ssd(cfg.flash, cfg.ftl);
  auto fill = SequentialFill(ssd, 1.0, 0);
  RandomWorkloadConfig precond;
  precond.lba_space = ssd.num_blocks();
  precond.read_fraction = 0.0;
  precond.seed = 77;
  RandomWorkload precond_gen(precond);
  DriverOptions precond_opts;
  precond_opts.ops = ssd.num_blocks();
  precond_opts.queue_depth = 16;
  precond_opts.start_time = fill.value_or(0);
  const RunResult pre = RunClosedLoop(ssd, precond_gen, precond_opts);

  // Quiesce: measurement starts only once every plane has drained the preconditioning
  // backlog (including deferred GC bookings the host clock cannot see).
  SimTime quiesced = pre.end;
  const FlashGeometry& g = ssd.flash().geometry();
  for (std::uint32_t ch = 0; ch < g.channels; ++ch) {
    for (std::uint32_t pl = 0; pl < g.planes_per_channel; ++pl) {
      quiesced = std::max(quiesced, ssd.flash().PlaneBusyUntil(ChannelId{ch}, PlaneId{pl}));
    }
  }

  RandomWorkloadConfig wl;
  wl.lba_space = ssd.num_blocks();
  wl.read_fraction = kReadFraction;
  wl.seed = 31;
  RandomWorkload gen(wl);
  DriverOptions opts;
  opts.ops = kOps;
  opts.start_time = quiesced + 100 * kMillisecond;
  return RunOpenLoop(ssd, gen, opts, ops_per_sec).read_latency;
}

// ZNS-native: append/reset pattern with the same read mix, open-loop arrivals.
Histogram RunZns(double ops_per_sec) {
  MatchedConfig cfg = MatchedConfig::Bench();
  ZnsDevice dev(cfg.flash, cfg.zns);
  const std::uint64_t zone_pages = dev.zone_size_pages();
  Rng rng(31);
  Histogram read_latency;

  SimTime t = 0;
  std::deque<std::uint32_t> full_zones;
  for (std::uint32_t z = 0; z + 2 < dev.num_zones(); ++z) {
    for (std::uint64_t off = 0; off < zone_pages; off += 8) {
      auto w = dev.Write(ZoneId{z}, off, 8, t);
      if (w.ok()) {
        t = w.value();
      }
    }
    full_zones.push_back(z);
  }
  std::uint32_t open_zone = dev.num_zones() - 2;
  const SimTime start = t + 10 * kMillisecond;

  Rng arrivals(1234);
  const double gap = static_cast<double>(kSecond) / ops_per_sec;
  double clock = static_cast<double>(start);
  for (std::uint64_t n = 0; n < kOps; ++n) {
    clock += arrivals.NextExponential(gap);
    const SimTime issue = static_cast<SimTime>(clock);
    if (rng.NextBool(kReadFraction)) {
      const std::uint32_t zone = full_zones[rng.NextBelow(full_zones.size())];
      const Lba lba =
          dev.zone(ZoneId{zone}).start_lba + rng.NextBelow(dev.zone(ZoneId{zone}).capacity_pages);
      auto r = dev.Read(lba, 1, issue);
      if (r.ok()) {
        read_latency.Record(r.value() - issue);
      }
    } else {
      ZoneDescriptor d = dev.zone(ZoneId{open_zone});
      if (d.write_pointer >= d.capacity_pages) {
        full_zones.push_back(open_zone);
        const std::uint32_t victim = full_zones.front();
        full_zones.pop_front();
        (void)dev.ResetZone(ZoneId{victim}, issue);
        open_zone = victim;
        d = dev.zone(ZoneId{open_zone});
      }
      (void)dev.Write(ZoneId{open_zone}, d.write_pointer, 1, issue);
    }
  }
  return read_latency;
}

}  // namespace

int main() {
  std::printf("=== A3 (ablation): Read latency vs offered load (open-loop Poisson arrivals) ===\n");
  std::printf("70/30 R/W 4K mix; the knee of each curve is the sustainable throughput.\n\n");

  TablePrinter table({"offered kIOPS", "conv p50 (us)", "conv p99 (us)", "ZNS p50 (us)",
                      "ZNS p99 (us)"});
  for (const double kiops : {5.0, 10.0, 20.0, 30.0, 45.0, 60.0}) {
    const Histogram conv = RunConventional(kiops * 1000);
    const Histogram zns = RunZns(kiops * 1000);
    table.AddRow(
        {TablePrinter::Fmt(kiops, 0),
         TablePrinter::Fmt(static_cast<double>(conv.Percentile(0.5)) / kMicrosecond, 0),
         TablePrinter::Fmt(static_cast<double>(conv.Percentile(0.99)) / kMicrosecond, 0),
         TablePrinter::Fmt(static_cast<double>(zns.Percentile(0.5)) / kMicrosecond, 0),
         TablePrinter::Fmt(static_cast<double>(zns.Percentile(0.99)) / kMicrosecond, 0)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Shape check: the conventional curve's knee (p99 explosion) arrives at a much\n"
              "lower offered load than the ZNS curve's — the \"Nx higher throughput\" claims\n"
              "are the horizontal distance between the knees.\n");
  return 0;
}
