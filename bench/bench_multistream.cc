// E15 — §2.3: "The multi-stream writes NVMe directive is conceptually similar to ZNS. Hosts
// label related writes with the same stream ID, and the device writes each stream to its own
// set of erasure blocks. Multi-streams are a workaround to hosts' limited control over data
// placement in conventional SSDs; the high hardware costs of conventional devices remains."
//
// Setup: a journal+checkpoint workload (fast random hot overwrites continuously interleaved
// with a slow sequential cold rewrite cycle) on (a) a plain conventional SSD, (b) the same
// device with per-lifetime streams, and (c) app-managed zones on ZNS. Reported: device WA —
// and the per-device hardware cost that streams do NOT remove.

#include <cstdio>
#include <string>

#include "bench/bench_main.h"
#include "src/core/matched_pair.h"
#include "src/cost/cost_model.h"
#include "src/telemetry/telemetry.h"
#include "src/util/rng.h"

using namespace blockhead;

namespace {

double RunConventional(std::uint32_t streams, Telemetry* tel) {
  MatchedConfig cfg = MatchedConfig::Bench();
  cfg.flash.timing = FlashTiming::FastForTests();
  FtlConfig ftl = cfg.ftl;
  ftl.op_fraction = 0.10;
  ftl.num_streams = streams;
  ConventionalSsd ssd(cfg.flash, ftl);
  ssd.AttachTelemetry(tel, "conv.s" + std::to_string(streams));
  const std::uint64_t n = ssd.num_blocks();
  const std::uint64_t cold_space = n / 2;
  SimTime t = 0;
  Rng rng(3);
  std::uint64_t cold_cursor = 0;
  for (std::uint64_t i = 0; i < 5 * n; ++i) {
    const bool is_cold = i % 8 == 0;
    std::uint64_t lba;
    if (is_cold) {
      lba = cold_cursor;
      cold_cursor = (cold_cursor + 1) % cold_space;
    } else {
      lba = cold_space + rng.NextBelow(n - cold_space);
    }
    auto w = ssd.WriteBlocksStream(Lba{lba}, 1, is_cold ? 1 : 0, t);
    if (!w.ok()) {
      return -1.0;
    }
    t = w.value();
  }
  return ssd.WriteAmplification();
}

double RunZnsZonePerClass(Telemetry* tel) {
  MatchedConfig cfg = MatchedConfig::Bench();
  cfg.flash.timing = FlashTiming::FastForTests();
  ZnsDevice dev(cfg.flash, cfg.zns);
  dev.AttachTelemetry(tel, "zns.zoneperclass");
  // App-managed: hot class cycles through one set of zones, cold through another, whole-zone
  // invalidation (the workload is the same volume as the conventional runs).
  const std::uint64_t zone_pages = dev.zone_size_pages();
  const std::uint32_t zones = dev.num_zones();
  const std::uint32_t cold_zones = zones / 2;
  std::uint32_t open_zone[2] = {0, cold_zones};  // [cold, hot] frontiers.
  std::uint32_t next_reset[2] = {0, cold_zones};
  SimTime t = 0;
  const std::uint64_t total_writes = 5 * static_cast<std::uint64_t>(zones) * zone_pages;
  for (std::uint64_t i = 0; i < total_writes; ++i) {
    const int cls = i % 8 == 0 ? 0 : 1;
    const std::uint32_t lo = cls == 0 ? 0 : cold_zones;
    const std::uint32_t hi = cls == 0 ? cold_zones : zones;
    ZoneDescriptor d = dev.zone(ZoneId{open_zone[cls]});
    if (d.write_pointer >= d.capacity_pages) {
      open_zone[cls] = open_zone[cls] + 1 < hi ? open_zone[cls] + 1 : lo;
      if (open_zone[cls] == next_reset[cls]) {
        next_reset[cls] = next_reset[cls] + 1 < hi ? next_reset[cls] + 1 : lo;
      }
      auto reset = dev.ResetZone(ZoneId{open_zone[cls]}, t);
      if (reset.ok()) {
        t = reset.value();
      }
      d = dev.zone(ZoneId{open_zone[cls]});
    }
    auto w = dev.Write(ZoneId{open_zone[cls]}, d.write_pointer, 1, t);
    if (!w.ok()) {
      return -1.0;
    }
    t = w.value();
  }
  const FlashStats& fs = dev.flash().stats();
  return static_cast<double>(fs.total_pages_programmed()) /
         static_cast<double>(fs.host_pages_programmed);
}

}  // namespace

int RunBench(const BenchOptions& opts, Telemetry& tel) {
  MaybeEnableTimeline(opts, tel);

  std::printf("=== E15: Multi-stream writes vs ZNS (§2.3) ===\n");
  std::printf("Paper: streams fix placement on conventional SSDs, but 'the high hardware\n"
              "costs of conventional devices remains.'\n");
  std::printf("Workload: hot random overwrites interleaved 8:1 with a sequential cold rewrite\n"
              "cycle (journal + checkpoint pattern), identical flash.\n\n");

  const double wa_plain = RunConventional(1, &tel);
  const double wa_streams = RunConventional(2, &tel);
  const double wa_zns = RunZnsZonePerClass(&tel);

  const CostModelConfig cost_cfg;
  const DeviceCost conv_cost = ConventionalDeviceCost(4 * kTiB, 0.10, cost_cfg);
  const DeviceCost zns_cost = ZnsDeviceCost(4 * kTiB, cost_cfg);

  TablePrinter table({"device", "device WA", "$ per usable GiB (4 TiB class)"});
  table.AddRow({"conventional, 1 stream", TablePrinter::Fmt(wa_plain) + "x",
                TablePrinter::Fmt(conv_cost.usd_per_usable_gib(), 4)});
  table.AddRow({"conventional, 2 streams", TablePrinter::Fmt(wa_streams) + "x",
                TablePrinter::Fmt(conv_cost.usd_per_usable_gib(), 4) + "  (unchanged)"});
  table.AddRow({"ZNS, zone per class", TablePrinter::Fmt(wa_zns) + "x",
                TablePrinter::Fmt(zns_cost.usd_per_usable_gib(), 4)});
  std::printf("%s\n", table.Render().c_str());

  // Provenance: per-device factorized WA (device-only chain) lands in the registry so the
  // --json dump carries per-cause program counts alongside the headline numbers.
  for (const char* device : {"conv.s1", "conv.s2", "zns.zoneperclass"}) {
    const WriteProvenance::FactorizedWa wa =
        tel.provenance.Factorize({}, std::string(device) + ".flash");
    PublishFactorizedWa(&tel.registry, device, wa);
  }

  std::printf("Shape check: streams close most of the WA gap to ZNS (placement fixed), but the\n"
              "device still carries the OP flash pool and page-granular mapping DRAM — the\n"
              "$/GiB column only drops on the ZNS row.\n");
  return FinishBench(opts, "bench_multistream", tel);
}

int main(int argc, char** argv) {
  return RunBenchMain(argc, argv, "bench_multistream", RunBench);
}
