// E1 — Table 1 (§3): impact of ZNS adoption on five years of flash/SSD papers at FAST, OSDI,
// SOSP, and MSST. Regenerates the table by aggregating the classified dataset and checks the
// abstract's headline percentages (23% simplified/solved, 18% orthogonal, 59% affected).

#include <cstdio>

#include "src/survey/survey.h"

using namespace blockhead;

int main() {
  std::printf("=== E1: Table 1 — Impact of ZNS adoption on existing flash-SSD work ===\n\n");
  const SurveyTable table = ComputeTable1();
  std::printf("%s\n", RenderTable1(table).c_str());

  std::printf(
      "Paper claims:  Simpl+solved 23%% | unaffected (Orth) 18%% | affected (Appr+Res) 59%%\n");
  std::printf(
      "Measured:      Simpl+solved %.0f%% | unaffected (Orth) %.0f%% |"
      " affected (Appr+Res) %.0f%%\n\n",
              100.0 * table.CategoryFraction(SurveyCategory::kSimplified),
              100.0 * table.CategoryFraction(SurveyCategory::kOrthogonal),
              100.0 * (table.CategoryFraction(SurveyCategory::kApproach) +
                       table.CategoryFraction(SurveyCategory::kResults)));

  int named = 0;
  for (const SurveyPaper& paper : SurveyDataset()) {
    if (!paper.reconstructed) {
      ++named;
    }
  }
  std::printf("Dataset: %zu classified papers (%d named from the paper's text, %zu reconstructed\n"
              "count-preserving placeholders; see DESIGN.md substitution table).\n",
              SurveyDataset().size(), named, SurveyDataset().size() - named);
  std::printf("\nNamed entries:\n");
  for (const SurveyPaper& paper : SurveyDataset()) {
    if (!paper.reconstructed) {
      std::printf("  [%s %d, %s] %s\n", SurveyVenueName(paper.venue), paper.year,
                  SurveyCategoryName(paper.category), paper.title.c_str());
    }
  }
  return 0;
}
