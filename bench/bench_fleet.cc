// F1 — fleet serving layer: once ZNS makes per-device WA a host-controlled quantity (§3), the
// next questions live a level up: what does replication do to end-to-end write amplification,
// how do read-replica policies shape fleet tails, and can wear-aware placement (fed by the
// provenance ledger's endurance projections) stop a skewed workload from retiring the devices
// hosting hot shards early? This bench runs a mixed ZNS/conventional fleet and reports:
//
//   1. WA vs fleet size (N = 2/4/8): the replication factor and per-device WA compose into the
//      end-to-end factorization the ledger proves out.
//   2. An ablation grid at N = 8: ZNS fraction x read policy x rebalancing on/off.
//   3. A device-retirement timeline: per-device mean P/E, projected days, and what migration
//      traffic the rebalancer paid to flatten the skew.
//
// Deterministic: same seed -> byte-identical --json output (every run below is seeded and the
// fleet runs on the single SimTime clock).

#include <cstdio>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "bench/bench_main.h"
#include "src/core/matched_pair.h"
#include "src/fleet/fleet.h"
#include "src/workload/trace.h"
#include "src/workload/workload.h"

using namespace blockhead;

namespace {

constexpr std::uint64_t kSeed = 42;
constexpr std::uint64_t kOps = 16000;

struct FleetSummary {
  double end_to_end_wa = 0.0;
  double device_wa = 0.0;
  double replication = 0.0;
  double wear_skew = 0.0;
  std::uint64_t migrations = 0;
  std::uint64_t migration_pages = 0;
  std::uint64_t sheds = 0;
  Histogram read_latency;
  Histogram write_latency;
  std::uint64_t shard_p99_min = 0;  // Tail spread across shards (ns).
  std::uint64_t shard_p99_max = 0;
};

// Runs one fleet configuration to completion, publishes its metrics under `prefix` in `tel`
// (snapshotted while the fleet is alive, so the values survive the fleet's destruction), and
// returns the summary. When `keep` is non-null the fleet is handed back instead of destroyed
// (the retirement table inspects per-device ledgers afterwards).
FleetSummary RunFleet(FleetConfig cfg, Telemetry* tel, const std::string& prefix,
                      std::unique_ptr<Fleet>* keep = nullptr) {
  auto fleet = std::make_unique<Fleet>(cfg);
  fleet->AttachTelemetry(tel, prefix);

  RandomWorkloadConfig wl;
  wl.lba_space = fleet->num_pages();
  wl.read_fraction = 0.4;
  wl.io_pages = 4;
  wl.distribution = AddressDistribution::kZipfian;
  wl.zipf_theta = 1.05;  // Skewed: hot shards concentrate wear on their devices.
  wl.seed = kSeed;
  RandomWorkload gen(wl);
  FleetDriverOptions opts;
  opts.ops = kOps;
  opts.step_interval = 4;
  FleetRunResult result = RunFleetClosedLoop(*fleet, gen, opts);
  if (!result.status.ok()) {
    std::fprintf(stderr, "%s: run failed: %s\n", prefix.c_str(),
                 result.status.ToString().c_str());
  }

  FleetSummary s;
  s.wear_skew = fleet->WearSkew();
  s.migrations = fleet->stats().migrations_completed;
  s.migration_pages = fleet->stats().migration_pages_copied;
  s.sheds = result.sheds;
  s.read_latency = result.read_latency;
  s.write_latency = result.write_latency;

  // Pull the published gauges (and refresh per-shard tails) from the shared registry.
  for (const auto& entry : tel->registry.Snapshot()) {
    if (entry.name == prefix + ".end_to_end_wa") {
      s.end_to_end_wa = entry.gauge;
    } else if (entry.name == prefix + ".device_wa") {
      s.device_wa = entry.gauge;
    } else if (entry.name == prefix + ".replication_factor") {
      s.replication = entry.gauge;
    } else if (entry.name.compare(0, prefix.size(), prefix) == 0 &&
               entry.name.find(".shard") != std::string::npos &&
               entry.name.find(".p99_ns") != std::string::npos) {
      const std::uint64_t p99 = static_cast<std::uint64_t>(entry.gauge);
      if (s.shard_p99_min == 0 || p99 < s.shard_p99_min) {
        s.shard_p99_min = p99;
      }
      if (p99 > s.shard_p99_max) {
        s.shard_p99_max = p99;
      }
    }
  }
  if (keep != nullptr) {
    *keep = std::move(fleet);
  }
  return s;
}

std::string Us(std::uint64_t ns) { return TablePrinter::Fmt(static_cast<double>(ns) / 1e3, 1); }

}  // namespace

int RunBench(const BenchOptions& opts, Telemetry& tel) {
  MaybeEnableTimeline(opts, tel);

  std::printf("=== F1: Fleet serving layer — replication, admission, wear-aware placement ===\n");
  std::printf("Mixed ZNS/conventional fleets, heterogeneous geometries, zipfian (theta=1.05)\n"
              "40%%-read workload, %llu ops per configuration, seed %llu.\n\n",
              static_cast<unsigned long long>(kOps), static_cast<unsigned long long>(kSeed));

  // --- 1. WA vs fleet size -------------------------------------------------------------
  std::printf("WA vs fleet size (ZNS fraction 0.5, round-robin reads, rebalancing on):\n\n");
  TablePrinter wa_table({"devices", "e2e WA", "device WA", "replication", "read p50 us",
                         "read p99 us", "read p999 us", "write p99 us", "sheds"});
  std::unique_ptr<Fleet> retained;
  for (const std::uint32_t n : {2u, 4u, 8u}) {
    char prefix[16];
    std::snprintf(prefix, sizeof(prefix), "wa.n%02u", n);
    FleetConfig cfg = FleetConfig::Mixed(n, 0.5, kSeed);
    const FleetSummary s = RunFleet(cfg, &tel, prefix, n == 8 ? &retained : nullptr);
    wa_table.AddRow({std::to_string(n), TablePrinter::Fmt(s.end_to_end_wa),
                     TablePrinter::Fmt(s.device_wa), TablePrinter::Fmt(s.replication),
                     Us(s.read_latency.P50()), Us(s.read_latency.P99()),
                     Us(s.read_latency.P999()), Us(s.write_latency.P99()),
                     std::to_string(s.sheds)});
  }
  std::printf("%s\n", wa_table.Render().c_str());
  std::printf("e2e WA factorizes as replication x device WA (the ledger's telescoping\n"
              "identity): fleet size changes device count, not the factors.\n\n");

  // --- 2. Ablation grid at N = 8 -------------------------------------------------------
  std::printf("Ablation at 8 devices: ZNS fraction x read policy x rebalancing:\n\n");
  TablePrinter abl({"zns", "read policy", "rebalance", "e2e WA", "wear skew", "migrations",
                    "mig pages", "read p99 us", "shard p99 min..max us"});
  for (const double zf : {0.0, 0.5, 1.0}) {
    for (const ReadReplicaPolicy policy :
         {ReadReplicaPolicy::kPrimaryOnly, ReadReplicaPolicy::kRoundRobin}) {
      for (const bool rebalance : {false, true}) {
        char prefix[48];
        std::snprintf(prefix, sizeof(prefix), "abl.zf%03d.%s.rb%d",
                      static_cast<int>(zf * 100),
                      policy == ReadReplicaPolicy::kPrimaryOnly ? "pri" : "rr",
                      rebalance ? 1 : 0);
        FleetConfig cfg = FleetConfig::Mixed(8, zf, kSeed);
        cfg.router.read_policy = policy;
        cfg.rebalancer.enabled = rebalance;
        const FleetSummary s = RunFleet(cfg, &tel, prefix);
        abl.AddRow({TablePrinter::Fmt(zf, 1), ReadReplicaPolicyName(policy),
                    rebalance ? "on" : "off", TablePrinter::Fmt(s.end_to_end_wa),
                    TablePrinter::Fmt(s.wear_skew), std::to_string(s.migrations),
                    std::to_string(s.migration_pages), Us(s.read_latency.P99()),
                    Us(s.shard_p99_min) + ".." + Us(s.shard_p99_max)});
      }
    }
  }
  std::printf("%s\n", abl.Render().c_str());
  std::printf("Shape check: rebalancing lowers wear skew wherever the zipf head pins hot\n"
              "shards (the migrations column is the price, attributed to fleet_migration in\n"
              "the ledgers); round-robin reads flatten the shard p99 spread relative to\n"
              "primary-only, which funnels every read of a hot shard to one device.\n\n");

  // --- 3. Device-retirement timeline ---------------------------------------------------
  std::printf("Device retirement (8-device fleet above, rebalancing on): wear and projected\n"
              "lifetime per device from each device's provenance ledger:\n\n");
  TablePrinter retire({"device", "kind", "mean P/E", "erases", "projected days", "free slots"});
  if (retained != nullptr) {
    for (const auto& dev : retained->WearSnapshots()) {
      const auto projection =
          retained->device_telemetry(dev.device_index)
              ->provenance.ProjectEndurance(retained->device_ledger_name(dev.device_index));
      char days[32] = "-";
      if (projection.valid) {
        std::snprintf(days, sizeof(days), "%.3g", projection.projected_days);
      }
      char name[16];
      std::snprintf(name, sizeof(name), "dev%02u", dev.device_index);
      retire.AddRow({name, DeviceKindName(retained->device_kind(dev.device_index)),
                     TablePrinter::Fmt(dev.mean_erase_count, 1),
                     std::to_string(dev.total_erases), days,
                     std::to_string(dev.free_slots)});
    }
  }
  std::printf("%s\n", retire.Render().c_str());
  std::printf("The earliest projected retirement bounds the fleet's service life; wear-aware\n"
              "migration trades copy traffic now for a flatter retirement timeline. Simulated\n"
              "time is accelerated (FastForTests timing), so projected days are tiny but\n"
              "comparable across devices.\n\n");
  retained.reset();  // Detach before the multi-tenant fleet reuses the registry.

  // --- 4. Multi-tenant SLOs: YCSB + trace replay sharing one fleet ---------------------
  std::printf("Multi-tenant: YCSB-A, YCSB-B, and a trace replay interleaved on one 4-device\n"
              "fleet; per-tenant latency objectives tracked by the reqpath ledger (dump the\n"
              "machine-readable report with --slo, tail exemplars with --exemplars):\n\n");
  // (Re-)enable the critical-path ledger scoped to this section: sections 1-3 above measure
  // WA and wear, this one measures per-tenant attribution. Objectives survive re-Enable.
  tel.reqpath.Enable();
  for (const auto& [name, tenant, op, target_us] :
       {std::tuple{"ycsb_a.read.p99", 1u, ReqOp::kRead, 400},
        std::tuple{"ycsb_b.read.p99", 2u, ReqOp::kRead, 400},
        std::tuple{"trace.write.p99", 3u, ReqOp::kWrite, 800}}) {
    SloObjective o;
    o.name = name;
    o.tenant = tenant;
    o.op = op;
    o.quantile = 0.99;
    o.target_ns = static_cast<std::uint64_t>(target_us) * kMicrosecond;
    o.window = 10 * kMillisecond;
    tel.reqpath.AddObjective(o);
  }

  FleetConfig mt_cfg = FleetConfig::Mixed(4, 0.5, kSeed);
  // Sections 1-3 own the wear/rebalancing story; here migrations would only add event-log
  // noise on top of the per-tenant attribution this section is about.
  mt_cfg.rebalancer.enabled = false;
  Fleet mt_fleet(mt_cfg);
  mt_fleet.AttachTelemetry(&tel, "mt");

  YcsbBlockConfig ya;
  ya.mix = YcsbMix::kA;
  ya.lba_space = mt_fleet.num_pages();
  ya.record_pages = 2;
  ya.seed = kSeed;
  YcsbBlockWorkload gen_a(ya);
  YcsbBlockConfig yb = ya;
  yb.mix = YcsbMix::kB;
  yb.seed = kSeed + 1;
  YcsbBlockWorkload gen_b(yb);
  // A hand-written "recorded" stream: a sequential write burst with periodic read-back, the
  // shape of a log-structured ingest trace. Replayed in a loop by tenant 3.
  std::vector<IoRequest> trace_reqs;
  for (std::uint64_t i = 0; i < 48; ++i) {
    trace_reqs.push_back(IoRequest{IoType::kWrite, i * 4, 4});
    if (i % 4 == 3) {
      trace_reqs.push_back(IoRequest{IoType::kRead, (i / 4) * 16, 4});
    }
  }
  ClampTraceToCapacity(&trace_reqs, mt_fleet.num_pages());
  TraceWorkload gen_trace(std::move(trace_reqs));

  const FleetTenantSpec tenants[] = {
      {1, &gen_a, 4000}, {2, &gen_b, 4000}, {3, &gen_trace, 4000}};
  FleetDriverOptions mt_opts;
  mt_opts.step_interval = 4;
  const std::vector<FleetRunResult> mt = RunFleetMultiTenant(mt_fleet, tenants, mt_opts);

  TablePrinter mt_table({"tenant", "workload", "reads", "writes", "sheds", "queue wait us",
                         "retry wait us", "read p99 us", "write p99 us"});
  const char* mt_names[] = {"YCSB-A", "YCSB-B", "trace"};
  for (std::size_t t = 0; t < mt.size(); ++t) {
    mt_table.AddRow({std::to_string(tenants[t].tenant), mt_names[t],
                     std::to_string(mt[t].reads), std::to_string(mt[t].writes),
                     std::to_string(mt[t].sheds), Us(mt[t].queue_wait_ns),
                     Us(mt[t].shed_retry_wait_ns), Us(mt[t].read_latency.P99()),
                     Us(mt[t].write_latency.P99())});
  }
  std::printf("%s\n", mt_table.Render().c_str());

  TablePrinter slo_table({"objective", "tenant", "target us", "current us", "window viol",
                          "burn short", "burn long", "breached"});
  for (const auto& s : tel.reqpath.SloSnapshots()) {
    slo_table.AddRow({s.objective.name, std::to_string(s.objective.tenant),
                      Us(s.objective.target_ns), Us(s.current_ns),
                      std::to_string(s.violations) + "/" + std::to_string(s.total),
                      TablePrinter::Fmt(s.burn_short), TablePrinter::Fmt(s.burn_long),
                      s.breached ? "YES" : "no"});
  }
  std::printf("%s\n", slo_table.Render().c_str());
  std::printf("Burn rate = violation fraction / error budget (1 - quantile); breached means\n"
              "both the fast and the 8x slow window burn above 1, the standard multi-window\n"
              "alerting rule. Queue wait and shed-retry wait are reported separately from\n"
              "service latency (and charged to the admission-queue segment in the ledger).\n");

  return FinishBench(opts, "bench_fleet", tel);
}

int main(int argc, char** argv) {
  return RunBenchMain(argc, argv, "bench_fleet", RunBench);
}
