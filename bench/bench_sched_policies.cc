// E11 — §4.1: "the host is in full control and can precisely schedule zone erasures and
// maintenance operations. This flexibility enables new policies to prioritize one goal over
// the other, e.g., read latency over write latency and write amplification."
//
// Setup: the block-on-ZNS host FTL under a mixed read/write workload, sweeping the GC
// scheduling policy (inline / background / read-priority / rate-limited). On a conventional
// SSD this knob does not exist — the device decides. Reported: read tail latencies, write
// latency, throughput, and forced-GC stalls per policy.

#include <cstdio>

#include "src/core/matched_pair.h"
#include "src/hostftl/host_ftl.h"
#include "src/workload/workload.h"

using namespace blockhead;

namespace {

struct PolicyResult {
  RunResult run;
  std::uint64_t forced_stalls = 0;
  std::uint64_t gc_cycles = 0;
  std::uint64_t gc_pages = 0;
};

PolicyResult Run(GcSchedPolicy policy) {
  MatchedConfig cfg = MatchedConfig::Bench();
  ZnsDevice dev(cfg.flash, cfg.zns);
  HostFtlConfig hcfg;
  hcfg.sched.policy = policy;
  hcfg.sched.low_free_fraction = 0.12;  // Below the steady-state free fraction for 20% host OP.
  HostFtlBlockDevice ftl(&dev, hcfg);

  auto fill = SequentialFill(ftl, 1.0, 0);
  RandomWorkloadConfig wl;
  wl.lba_space = ftl.num_blocks();
  wl.read_fraction = 0.6;
  wl.seed = 17;
  RandomWorkload gen(wl);
  DriverOptions opts;
  opts.ops = 2 * ftl.num_blocks();
  opts.queue_depth = 2;
  opts.start_time = fill.value_or(0) + 10 * kMillisecond;
  opts.maintenance_interval = 8;
  opts.maintenance_hook = [&ftl](SimTime now, bool reads) { ftl.Pump(now, reads, 1); };

  PolicyResult result;
  result.run = RunClosedLoop(ftl, gen, opts);
  result.forced_stalls = ftl.stats().forced_gc_stalls;
  result.gc_cycles = ftl.stats().gc_cycles;
  result.gc_pages = ftl.stats().gc_pages_copied;
  return result;
}

}  // namespace

int main() {
  std::printf("=== E11: Host GC scheduling policies (block-on-ZNS, 60/40 R/W mix) ===\n");
  std::printf("Paper claim (§4.1): host-scheduled reclamation lets policy trade read tails\n"
              "against write headroom — a choice conventional SSDs make opaquely in firmware.\n\n");

  TablePrinter table({"policy", "read p99 (us)", "read p99.9 (us)", "write p99 (us)",
                      "write max (ms)", "MiB/s", "forced stalls", "GC pages copied"});
  for (const GcSchedPolicy policy :
       {GcSchedPolicy::kInline, GcSchedPolicy::kBackground, GcSchedPolicy::kReadPriority,
        GcSchedPolicy::kRateLimited}) {
    const PolicyResult r = Run(policy);
    table.AddRow(
        {GcSchedPolicyName(policy),
         TablePrinter::Fmt(static_cast<double>(r.run.read_latency.Percentile(0.99)) /
                           kMicrosecond),
         TablePrinter::Fmt(static_cast<double>(r.run.read_latency.Percentile(0.999)) /
                           kMicrosecond),
         TablePrinter::Fmt(static_cast<double>(r.run.write_latency.Percentile(0.99)) /
                           kMicrosecond),
         TablePrinter::Fmt(static_cast<double>(r.run.write_latency.max()) / kMillisecond),
         TablePrinter::Fmt(r.run.TotalMiBps()), std::to_string(r.forced_stalls),
         std::to_string(r.gc_pages)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Shape check: every policy trades differently. Inline (lazy) reclamation copies\n"
              "the least (deadest victims) and keeps steady-state tails low, but its emergency\n"
              "reclamation shows up as rare, enormous write stalls (write max). The\n"
              "opportunistic policies bound worst-case stalls at the price of more relocation\n"
              "and a steady mid-tail tax. On a conventional SSD this dial does not exist --\n"
              "the device picks one policy for everyone (\u00a74.1).\n");
  return 0;
}
