// E7 — §4.2: "a zone's write pointer can suffer from lock contention... for multi-writer
// workloads where writes are concentrated in a single zone... The append command... allows the
// device to serialize concurrent writes to the same zone."
//
// Setup: N concurrent writers (each queue depth 1) push a fixed total number of 4 KiB records
// into ONE zone, first with regular write-pointer writes (each writer must observe the
// previous completion to learn the new write pointer), then with zone append (the device
// assigns offsets, so programs pipeline across the zone's planes). Reported: aggregate
// throughput vs writer count for both commands.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_main.h"
#include "src/core/matched_pair.h"
#include "src/telemetry/telemetry.h"
#include "src/util/event_queue.h"

using namespace blockhead;

namespace {

// Registry prefix for one configuration, e.g. "zns.strict.w08.append": every configuration
// uses its own scoped device, so per-instance prefixes keep their stats separate.
std::string ConfigPrefix(std::uint32_t writers, bool use_append, bool strict) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "zns.%s.w%02u.%s", strict ? "strict" : "buf", writers,
                use_append ? "append" : "write");
  return buf;
}

// Total pages each configuration writes into the zone (one zone capacity's worth).
double RunWriters(std::uint32_t writers, bool use_append, bool strict, Telemetry* tel) {
  MatchedConfig cfg = MatchedConfig::Bench();
  if (strict) {
    // Strict regime: the zone lock is held until the data is durable on flash (no device
    // write buffer) — the worst case the spec change was written against.
    cfg.zns.zone_write_buffer_pages = 0;
  }
  ZnsDevice dev(cfg.flash, cfg.zns);
  dev.AttachTelemetry(tel, ConfigPrefix(writers, use_append, strict));
  const std::uint64_t total_pages = dev.zone(ZoneId{0}).capacity_pages;

  EventQueue<std::uint32_t> ready;  // Writer w is ready to issue at event time.
  for (std::uint32_t w = 0; w < writers; ++w) {
    ready.Push(0, w);
  }
  std::uint64_t written = 0;
  SimTime finish = 0;
  while (written < total_pages && !ready.empty()) {
    const auto event = ready.Pop();
    const SimTime now = event.time;
    SimTime done = now;
    if (use_append) {
      auto r = dev.Append(ZoneId{0}, 1, now);
      if (!r.ok()) {
        break;
      }
      done = r->completion;
    } else {
      // A writer must (re)read the write pointer, then issue at it; the device model charges
      // the serialization (a write cannot be formed until the previous one completed).
      const std::uint64_t wp = dev.zone(ZoneId{0}).write_pointer;
      auto r = dev.Write(ZoneId{0}, wp, 1, now);
      if (!r.ok()) {
        break;
      }
      done = r.value();
    }
    ++written;
    finish = std::max(finish, done);
    ready.Push(done, event.payload);
  }
  if (written == 0 || finish == 0) {
    return 0.0;
  }
  return ToMiBPerSec(written * 4096, finish);
}

}  // namespace

int RunBench(const BenchOptions& opts, Telemetry& tel) {
  MaybeEnableTimeline(opts, tel);

  std::printf("=== E7: Multi-writer single-zone throughput — write pointer vs zone append ===\n");
  std::printf("Paper claim (§4.2): write-pointer writes serialize concurrent writers; zone\n"
              "append lets the device order them, restoring parallelism.\n\n");

  for (const bool strict : {true, false}) {
    std::printf("%s\n", strict
                            ? "Strict serialization (zone lock held until durable; no device "
                              "write buffer):"
                            : "Buffered devices (write acknowledged from the per-zone write "
                              "buffer, lock held until ack):");
    TablePrinter table({"writers", "write (MiB/s)", "append (MiB/s)", "append gain"});
    for (const std::uint32_t writers : {1u, 2u, 4u, 8u, 16u, 32u}) {
      const double write_mibps = RunWriters(writers, /*use_append=*/false, strict, &tel);
      const double append_mibps = RunWriters(writers, /*use_append=*/true, strict, &tel);
      table.AddRow(
          {std::to_string(writers), TablePrinter::Fmt(write_mibps),
           TablePrinter::Fmt(append_mibps),
           write_mibps > 0 ? TablePrinter::Fmt(append_mibps / write_mibps, 1) + "x" : "-"});
    }
    std::printf("%s\n", table.Render().c_str());
  }
  std::printf("Shape check: with regular writes, throughput stays flat as writers are added\n"
              "(fully serialized on the write pointer; worst in the strict regime). With\n"
              "append the device orders concurrent records itself, so throughput scales with\n"
              "writers until the zone's plane parallelism (32 planes here) saturates.\n");
  return FinishBench(opts, "bench_zone_append", tel);
}

int main(int argc, char** argv) {
  return RunBenchMain(argc, argv, "bench_zone_append", RunBench);
}
