// E16 — §4.2 open question: "Are there workloads that perform worse on ZNS SSDs than on
// conventional SSDs? ... Can we systematically test representative and synthetic workloads to
// discover if any perform worse over ZNS?"
//
// This bench is that systematic sweep: a battery of synthetic patterns runs on (a) the
// conventional SSD and (b) the block-on-ZNS host FTL over identical flash, and every pattern
// where ZNS loses is flagged. The known-bad case from the paper — concurrent writers
// appending to one region — is included both in its broken form (write-pointer writes) and
// its fixed form (zone append), via the persistent queue.

#include <cstdio>
#include <functional>

#include "src/core/matched_pair.h"
#include "src/hostftl/host_ftl.h"
#include "src/queue/persistent_queue.h"
#include "src/workload/workload.h"

using namespace blockhead;

namespace {

struct ZooEntry {
  const char* name;
  double read_fraction;
  std::uint32_t io_pages;
  AddressDistribution dist;
  std::uint32_t queue_depth;
};

double RunPattern(BlockDevice& device, const ZooEntry& entry,
                  const std::function<void(SimTime, bool)>& hook) {
  auto fill = SequentialFill(device, 1.0, 0);
  RandomWorkloadConfig wl;
  wl.lba_space = device.num_blocks();
  wl.read_fraction = entry.read_fraction;
  wl.io_pages = entry.io_pages;
  wl.distribution = entry.dist;
  wl.seed = 5;
  RandomWorkload gen(wl);
  DriverOptions opts;
  opts.ops = device.num_blocks() / 2;
  opts.queue_depth = entry.queue_depth;
  opts.start_time = fill.value_or(0) + 10 * kMillisecond;
  opts.maintenance_hook = hook;
  const RunResult run = RunClosedLoop(device, gen, opts);
  return run.TotalMiBps();
}

// Multi-producer append region: the paper's §4.2 pathological case, through the queue.
double RunSharedAppend(ZnsDevice& dev, bool use_append) {
  QueueConfig qcfg;
  qcfg.use_append = use_append;
  PersistentQueue queue(&dev, qcfg);
  std::vector<SimTime> producer_ready(8, 0);
  SimTime finish = 0;
  std::uint64_t bytes = 0;
  for (std::uint64_t r = 0; r < 4096; ++r) {
    const std::size_t p = r % producer_ready.size();
    auto e = queue.Enqueue({}, producer_ready[p]);
    if (!e.ok()) {
      break;
    }
    producer_ready[p] = e.value();
    finish = std::max(finish, e.value());
    bytes += 4096;
  }
  return ToMiBPerSec(bytes, finish);
}

}  // namespace

int main() {
  std::printf(
      "=== E16: Systematic workload sweep — does anything run WORSE on ZNS? (§4.2) ===\n\n");

  const ZooEntry zoo[] = {
      {"seq write 128K", 0.0, 32, AddressDistribution::kUniform, 1},
      {"rand write 4K", 0.0, 1, AddressDistribution::kUniform, 4},
      {"zipf write 4K", 0.0, 1, AddressDistribution::kZipfian, 4},
      {"rand r/w 50/50 4K", 0.5, 1, AddressDistribution::kUniform, 4},
      {"rand read 4K", 1.0, 1, AddressDistribution::kUniform, 4},
      {"zipf r/w 80/20 16K", 0.8, 4, AddressDistribution::kZipfian, 4},
  };

  TablePrinter table({"pattern", "conventional MiB/s", "block-on-ZNS MiB/s", "ZNS/conv",
                      "verdict"});
  for (const ZooEntry& entry : zoo) {
    MatchedConfig cfg = MatchedConfig::Bench();
    cfg.ftl.op_fraction = 0.20;
    ConventionalSsd conv(cfg.flash, cfg.ftl);
    const double conv_mibps = RunPattern(conv, entry, nullptr);

    MatchedConfig zcfg = MatchedConfig::Bench();
    zcfg.zns.zone_write_buffer_pages = 64;  // Equal buffering with the conventional device.
    ZnsDevice dev(zcfg.flash, zcfg.zns);
    HostFtlConfig hcfg;
    hcfg.op_fraction = 0.20;
    HostFtlBlockDevice ftl(&dev, hcfg);
    const double zns_mibps =
        RunPattern(ftl, entry, [&ftl](SimTime now, bool reads) { ftl.Pump(now, reads, 1); });

    const double ratio = conv_mibps > 0 ? zns_mibps / conv_mibps : 0.0;
    table.AddRow({entry.name, TablePrinter::Fmt(conv_mibps), TablePrinter::Fmt(zns_mibps),
                  TablePrinter::Fmt(ratio, 2) + "x",
                  ratio < 0.9 ? "WORSE on ZNS" : (ratio > 1.1 ? "better on ZNS" : "parity")});
  }

  // The known §4.2 pathology: shared append region. The ZNS rows run the strict regime the
  // paper describes (the spec "assigns responsibility to move the write pointer to host-side
  // software": each producer coordinates synchronously on durable completions). E7 sweeps the
  // buffered regimes.
  {
    MatchedConfig cfg = MatchedConfig::Bench();
    cfg.zns.zone_write_buffer_pages = 0;
    ZnsDevice dev_writes(cfg.flash, cfg.zns);
    const double wp_writes = RunSharedAppend(dev_writes, /*use_append=*/false);
    ZnsDevice dev_appends(cfg.flash, cfg.zns);
    const double appends = RunSharedAppend(dev_appends, /*use_append=*/true);
    // Conventional baseline: 8 writers appending to a shared log region = just sequential
    // buffered writes, no coordination needed.
    MatchedConfig ccfg = MatchedConfig::Bench();
    ConventionalSsd conv(ccfg.flash, ccfg.ftl);
    SimTime finish = 0;
    std::vector<SimTime> ready(8, 0);
    std::uint64_t bytes = 0;
    for (std::uint64_t r = 0; r < 4096; ++r) {
      auto w = conv.WriteBlocks(Lba{r % conv.num_blocks()}, 1, ready[r % 8]);
      if (!w.ok()) {
        break;
      }
      ready[r % 8] = w.value();
      finish = std::max(finish, w.value());
      bytes += 4096;
    }
    const double conv_mibps = ToMiBPerSec(bytes, finish);
    table.AddRow({"8-writer shared log (WP writes)", TablePrinter::Fmt(conv_mibps),
                  TablePrinter::Fmt(wp_writes),
                  TablePrinter::Fmt(wp_writes / conv_mibps, 2) + "x", "WORSE on ZNS"});
    table.AddRow({"8-writer shared log (zone append)", TablePrinter::Fmt(conv_mibps),
                  TablePrinter::Fmt(appends), TablePrinter::Fmt(appends / conv_mibps, 2) + "x",
                  TablePrinter::Fmt(appends / wp_writes, 1) + "x recovered by append"});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf("Findings (the paper asked, §4.2): yes, some workloads ARE worse over ZNS.\n"
              "(1) The known pathology — concurrent writers sharing one append region — is the\n"
              "big one: write-pointer serialization costs most of the throughput, and the zone\n"
              "append command recovers it, exactly as the spec addition intended.\n"
              "(2) Every write-containing pattern pays through the block-EMULATION layer:\n"
              "host reclaim works at zone granularity while firmware GC reclaims small blocks\n"
              "(see E13). Pure reads tie. Note (2) is a tax of the compatibility bridge, not\n"
              "of the interface — ZNS-native designs (E4/E6/E14) avoid it entirely.\n");
  return 0;
}
