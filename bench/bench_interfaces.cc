// E17 — §4.1: "How should applications interact with zones? ... raw zoned storage access
// offers the most control over I/O and data placement; filesystems and key-value stores offer
// less control but are easy to use... In general, will applications prefer to use the zoned
// interface, a filesystem, or some other API?"
//
// Setup: the same log-structured workload (append a stream of records, retire the oldest data
// wholesale) through each interface class on identical devices:
//   raw zones   — application manages zone ids, write pointers, and resets itself;
//   zonefs      — zones as restricted files (no naming/metadata services);
//   zonefile    — ZenFS-style filesystem (names, metadata journal, hints, compaction);
//   block (dm-) — legacy block interface emulated by the host FTL.
// Reported: throughput, flash overhead (WA), and the services each layer provides.

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/matched_pair.h"
#include "src/hostftl/host_ftl.h"
#include "src/zonefile/zone_file_system.h"
#include "src/zonefs/zone_fs.h"

using namespace blockhead;

namespace {

constexpr std::uint64_t kRecords = 30000;
constexpr std::uint32_t kRecordPages = 4;  // 16 KiB records.

struct InterfaceResult {
  double mibps = 0.0;
  double wa = 0.0;
};

MatchedConfig DeviceConfig() {
  MatchedConfig cfg = MatchedConfig::Bench();
  cfg.flash.geometry.channels = 2;
  cfg.flash.geometry.planes_per_channel = 2;
  cfg.flash.geometry.blocks_per_plane = 128;
  cfg.flash.geometry.pages_per_block = 32;  // 64 MiB device, 512 KiB zones.
  return cfg;
}

InterfaceResult Finish(const ZnsDevice& dev, std::uint64_t bytes, SimTime elapsed) {
  InterfaceResult r;
  r.mibps = ToMiBPerSec(bytes, elapsed);
  const FlashStats& fs = dev.flash().stats();
  r.wa = fs.host_pages_programmed == 0
             ? 1.0
             : static_cast<double>(fs.total_pages_programmed()) /
                   static_cast<double>(fs.host_pages_programmed);
  return r;
}

InterfaceResult RunRawZones() {
  MatchedConfig cfg = DeviceConfig();
  ZnsDevice dev(cfg.flash, cfg.zns);
  SimTime t = 0;
  std::uint32_t open_zone = 0;
  std::uint32_t next_reset = 0;
  bool wrapped = false;
  for (std::uint64_t r = 0; r < kRecords; ++r) {
    ZoneDescriptor d = dev.zone(ZoneId{open_zone});
    if (d.write_pointer + kRecordPages > d.capacity_pages) {
      open_zone = (open_zone + 1) % dev.num_zones();
      if (open_zone == 0) {
        wrapped = true;
      }
      if (wrapped) {
        auto reset = dev.ResetZone(ZoneId{next_reset}, t);
        if (reset.ok()) {
          t = reset.value();
        }
        next_reset = (next_reset + 1) % dev.num_zones();
      }
      d = dev.zone(ZoneId{open_zone});
    }
    auto w = dev.Write(ZoneId{open_zone}, d.write_pointer, kRecordPages, t);
    if (!w.ok()) {
      break;
    }
    t = w.value();
  }
  return Finish(dev, kRecords * kRecordPages * 4096, t);
}

InterfaceResult RunZoneFs() {
  MatchedConfig cfg = DeviceConfig();
  ZnsDevice dev(cfg.flash, cfg.zns);
  ZoneFs fs(&dev);
  const std::vector<std::uint8_t> record(kRecordPages * 4096, 0);
  SimTime t = 0;
  std::uint32_t file = 0;
  std::uint32_t next_trunc = 0;
  bool wrapped = false;
  for (std::uint64_t r = 0; r < kRecords; ++r) {
    auto w = fs.Append(file, record, t);
    if (w.code() == ErrorCode::kZoneFull) {
      file = (file + 1) % fs.FileCount();
      if (file == 0) {
        wrapped = true;
      }
      if (wrapped) {
        auto trunc = fs.Truncate(next_trunc, t);
        if (trunc.ok()) {
          t = trunc.value();
        }
        next_trunc = (next_trunc + 1) % fs.FileCount();
      }
      w = fs.Append(file, record, t);
    }
    if (!w.ok()) {
      break;
    }
    t = w.value();
  }
  return Finish(dev, kRecords * kRecordPages * 4096, t);
}

InterfaceResult RunZonefile() {
  MatchedConfig cfg = DeviceConfig();
  ZnsDevice dev(cfg.flash, cfg.zns);
  ZoneFileConfig fcfg;
  fcfg.finish_remainder_pages = 16;
  auto fs = ZoneFileSystem::Format(&dev, fcfg, 0);
  if (!fs.ok()) {
    return {};
  }
  const std::vector<std::uint8_t> record(kRecordPages * 4096, 0);
  SimTime t = 0;
  std::uint64_t serial = 0;
  std::deque<std::string> live;
  // 24 records per file (~one zone), FIFO retirement keeping ~2/3 of the device live.
  std::string current;
  std::uint64_t in_file = 0;
  for (std::uint64_t r = 0; r < kRecords; ++r) {
    if (current.empty()) {
      current = "log" + std::to_string(serial++);
      if (!fs.value()->Create(current, Lifetime::kShort, t).ok()) {
        break;
      }
    }
    auto w = fs.value()->Append(current, record, t);
    if (!w.ok()) {
      break;
    }
    t = w.value();
    if (++in_file >= 24) {
      (void)fs.value()->Sync(current, t);
      live.push_back(current);
      current.clear();
      in_file = 0;
      if (live.size() > 80) {
        (void)fs.value()->Delete(live.front(), t);
        live.pop_front();
      }
    }
    fs.value()->Pump(t, false, 1);
  }
  return Finish(dev, kRecords * kRecordPages * 4096, t);
}

InterfaceResult RunBlockEmulation() {
  MatchedConfig cfg = DeviceConfig();
  ZnsDevice dev(cfg.flash, cfg.zns);
  HostFtlBlockDevice block(&dev, HostFtlConfig{});
  SimTime t = 0;
  // The block app just cycles a log over the LBA space (the FTL does the rest).
  std::uint64_t lba = 0;
  for (std::uint64_t r = 0; r < kRecords; ++r) {
    if (lba + kRecordPages > block.num_blocks()) {
      lba = 0;
    }
    auto w = block.WriteBlocks(Lba{lba}, kRecordPages, t);
    if (!w.ok()) {
      break;
    }
    t = w.value();
    lba += kRecordPages;
    block.Pump(t, false, 1);
  }
  InterfaceResult result = Finish(dev, kRecords * kRecordPages * 4096, t);
  return result;
}

}  // namespace

int main() {
  std::printf("=== E17: Interface classes for zoned storage (§4.1) ===\n");
  std::printf("Same log workload (16 KiB records, FIFO retirement) through each interface on\n"
              "identical 64 MiB devices.\n\n");

  const InterfaceResult raw = RunRawZones();
  const InterfaceResult zfs = RunZoneFs();
  const InterfaceResult zonefile = RunZonefile();
  const InterfaceResult block = RunBlockEmulation();

  TablePrinter table({"interface", "MiB/s", "device WA", "naming", "crash-safe metadata",
                      "space mgmt", "lifetime hints"});
  table.AddRow({"raw zones", TablePrinter::Fmt(raw.mibps), TablePrinter::Fmt(raw.wa) + "x",
                "-", "-", "app", "app"});
  table.AddRow({"zonefs (zones as files)", TablePrinter::Fmt(zfs.mibps),
                TablePrinter::Fmt(zfs.wa) + "x", "fixed", "device-implied", "app", "app"});
  table.AddRow({"zonefile (ZenFS-style)", TablePrinter::Fmt(zonefile.mibps),
                TablePrinter::Fmt(zonefile.wa) + "x", "yes", "journaled", "automatic",
                "yes"});
  table.AddRow({"block-on-ZNS (dm-zoned)", TablePrinter::Fmt(block.mibps),
                TablePrinter::Fmt(block.wa) + "x", "n/a (LBAs)", "n/a", "automatic",
                "lost"});
  std::printf("%s\n", table.Render().c_str());

  std::printf("Shape check (the §4.1 tradeoff): on this zone-friendly log workload every\n"
              "interface runs near device speed with WA ~1 — the differences are the services\n"
              "provided. Raw zones and zonefs give the app full control and zero overhead but\n"
              "no naming, durability, or space management; the ZenFS-style filesystem buys all\n"
              "three for a small metadata tax; the block emulation is effortless but discards\n"
              "the lifetime information (its WA advantage would vanish on non-sequential\n"
              "workloads — see E16).\n");
  return 0;
}
