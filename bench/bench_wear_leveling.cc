// A1 (ablation) — §2.1 lists wear leveling among the conventional FTL's responsibilities, and
// §2.2 builds on flash endurance limits. This ablation measures what the FTL's wear leveling
// buys (erase-count spread, time to first dead block) under a skewed workload, and shows the
// ZNS counterpart: zone cycling spreads wear structurally, and worn zones shrink gracefully
// instead of silently consuming spare blocks.

#include <cstdio>
#include <string>

#include "bench/bench_main.h"
#include "src/core/matched_pair.h"
#include "src/telemetry/telemetry.h"
#include "src/util/rng.h"

using namespace blockhead;

namespace {

struct WearResult {
  WearSummary wear;
  double wa = 0.0;
  std::uint64_t writes_done = 0;
  std::uint64_t writes_until_first_bad = 0;
};

WearResult RunConventional(bool wear_leveling, Telemetry* tel, const std::string& prefix) {
  MatchedConfig cfg = MatchedConfig::Bench();
  cfg.flash.geometry.channels = 2;
  cfg.flash.geometry.planes_per_channel = 2;
  cfg.flash.geometry.blocks_per_plane = 64;
  cfg.flash.geometry.pages_per_block = 32;
  cfg.flash.timing = FlashTiming::FastForTests();
  cfg.flash.timing.endurance_cycles = 220;
  cfg.flash.store_data = false;
  FtlConfig ftl;
  ftl.op_fraction = 0.15;
  ftl.wear_leveling = wear_leveling;
  ConventionalSsd ssd(cfg.flash, ftl);
  ssd.AttachTelemetry(tel, prefix);

  WearResult result;
  const std::uint64_t n = ssd.num_blocks();
  Rng rng(11);
  SimTime t = 0;
  // Fill once (cold bulk), then hammer 5% of the space.
  for (std::uint64_t lba = 0; lba < n; ++lba) {
    auto w = ssd.WriteBlocks(Lba{lba}, 1, t);
    if (!w.ok()) {
      return result;
    }
    t = w.value();
  }
  for (std::uint64_t i = 0; i < 60 * n; ++i) {
    auto w = ssd.WriteBlocks(Lba{rng.NextBelow(n / 20)}, 1, t);
    if (!w.ok()) {
      break;
    }
    t = w.value();
    result.writes_done = i + 1;
    if (result.writes_until_first_bad == 0 && ssd.flash().ComputeWear().bad_blocks > 0) {
      result.writes_until_first_bad = i + 1;
    }
  }
  result.wear = ssd.flash().ComputeWear();
  result.wa = ssd.WriteAmplification();
  return result;
}

WearResult RunZnsCycling(Telemetry* tel, const std::string& prefix) {
  MatchedConfig cfg = MatchedConfig::Bench();
  cfg.flash.geometry.channels = 2;
  cfg.flash.geometry.planes_per_channel = 2;
  cfg.flash.geometry.blocks_per_plane = 64;
  cfg.flash.geometry.pages_per_block = 32;
  cfg.flash.timing = FlashTiming::FastForTests();
  cfg.flash.timing.endurance_cycles = 220;
  cfg.flash.store_data = false;
  ZnsDevice dev(cfg.flash, cfg.zns);
  dev.AttachTelemetry(tel, prefix);

  WearResult result;
  const std::uint64_t total_pages =
      static_cast<std::uint64_t>(dev.num_zones()) * dev.zone_size_pages();
  SimTime t = 0;
  std::uint32_t zone = 0;
  std::uint32_t next_reset = 0;
  bool wrapped = false;
  // Same write volume; the app's natural FIFO zone cycling IS the wear leveling.
  for (std::uint64_t i = 0; i < 61 * total_pages; ++i) {
    ZoneDescriptor d = dev.zone(ZoneId{zone});
    if (d.state == ZoneState::kOffline || d.write_pointer >= d.capacity_pages) {
      zone = (zone + 1) % dev.num_zones();
      if (zone == 0) {
        wrapped = true;
      }
      if (wrapped) {
        (void)dev.ResetZone(ZoneId{next_reset}, t);
        next_reset = (next_reset + 1) % dev.num_zones();
      }
      continue;
    }
    auto w = dev.Write(ZoneId{zone}, d.write_pointer, 1, t);
    if (!w.ok()) {
      continue;
    }
    t = w.value();
    result.writes_done = i + 1;
    if (result.writes_until_first_bad == 0 && dev.flash().ComputeWear().bad_blocks > 0) {
      result.writes_until_first_bad = i + 1;
    }
  }
  result.wear = dev.flash().ComputeWear();
  const FlashStats& fs = dev.flash().stats();
  result.wa = static_cast<double>(fs.total_pages_programmed()) /
              static_cast<double>(fs.host_pages_programmed);
  return result;
}

void Report(TablePrinter& table, const char* name, const WearResult& r) {
  table.AddRow({name, TablePrinter::Fmt(r.wear.mean_erase_count, 1),
                TablePrinter::Fmt(r.wear.stddev_erase_count, 1),
                std::to_string(r.wear.min_erase_count) + ".." +
                    std::to_string(r.wear.max_erase_count),
                std::to_string(r.wear.bad_blocks),
                r.writes_until_first_bad == 0 ? "never"
                                              : std::to_string(r.writes_until_first_bad),
                TablePrinter::Fmt(r.wa) + "x"});
}

// One provenance row per configuration: which cause paid the erases, and what the observed
// churn projects for device lifetime under the 220-cycle budget.
void ReportProvenance(TablePrinter& table, const WriteProvenance& provenance, const char* name,
                      const std::string& device) {
  const WriteProvenance::DeviceLedger* ledger = provenance.FindDevice(device);
  if (ledger == nullptr) {
    return;
  }
  const std::uint64_t host = WriteProvenance::EraseCount(*ledger, WriteCause::kHostWrite);
  const std::uint64_t gc = WriteProvenance::EraseCount(*ledger, WriteCause::kDeviceGC);
  const std::uint64_t wear = WriteProvenance::EraseCount(*ledger, WriteCause::kWearMigration);
  const WriteProvenance::EnduranceProjection endurance = provenance.ProjectEndurance(device);
  // Simulated time here is accelerated (FastForTests timing), so the projection is a tiny
  // fraction of a day; %.3g keeps it readable instead of rounding to 0.00.
  char days[32] = "-";
  if (endurance.valid) {
    std::snprintf(days, sizeof(days), "%.3g", endurance.projected_days);
  }
  table.AddRow({name, std::to_string(ledger->total_erases), std::to_string(host),
                std::to_string(gc), std::to_string(wear),
                endurance.valid ? TablePrinter::Fmt(endurance.mean_erase_count, 1) : "-",
                days});
}

}  // namespace

int RunBench(const BenchOptions& opts, Telemetry& tel) {
  MaybeEnableTimeline(opts, tel);

  std::printf("=== A1 (ablation): Wear leveling — FTL policy vs ZNS structural cycling ===\n");
  std::printf("Skewed workload (95%% of overwrites hit 5%% of the space), endurance = 220\n"
              "cycles, identical flash, equal write volume.\n\n");

  TablePrinter table({"configuration", "mean erases", "stddev", "min..max", "bad blocks",
                      "writes to 1st bad", "WA"});
  Report(table, "conventional, WL off", RunConventional(false, &tel, "conv.wloff"));
  Report(table, "conventional, WL on", RunConventional(true, &tel, "conv.wlon"));
  Report(table, "ZNS, FIFO zone cycling", RunZnsCycling(&tel, "zns.cycling"));
  std::printf("%s\n", table.Render().c_str());

  std::printf("Erase provenance and endurance projection (budget = 220 P/E cycles):\n\n");
  TablePrinter prov({"configuration", "erases", "host", "device GC", "wear mig",
                     "mean P/E", "projected days"});
  ReportProvenance(prov, tel.provenance, "conventional, WL off", "conv.wloff.flash");
  ReportProvenance(prov, tel.provenance, "conventional, WL on", "conv.wlon.flash");
  ReportProvenance(prov, tel.provenance, "ZNS, FIFO zone cycling", "zns.cycling.flash");
  std::printf("%s\n", prov.Render().c_str());

  std::printf("Shape check: without wear leveling the hot blocks burn out while the rest of\n"
              "the device idles (wide spread, min stuck at 0); the FTL's least-worn allocation\n"
              "plus cold migration flattens the distribution, but pays for it in write\n"
              "amplification — extra erases that can even bring the first failure EARLIER\n"
              "under extreme skew. The ZNS app's natural zone rotation achieves near-zero\n"
              "spread with no copying at all, and §2.1's graceful degradation (zones shrink\n"
              "or go offline) replaces silent spare-block consumption. The provenance table\n"
              "shows who paid: wear-migration erases appear only in the WL-on column, and the\n"
              "projected lifetime tracks the erase overhead, not just the spread.\n");
  return FinishBench(opts, "bench_wear_leveling", tel);
}

int main(int argc, char** argv) {
  return RunBenchMain(argc, argv, "bench_wear_leveling", RunBench);
}
