// E10 — §2.3: "This task is aided by the simple copy command... copying forward valid data
// before erasing a zone does not use any PCIe bandwidth, enabling performance comparable to
// conventional SSDs."
//
// Setup: the host-side block-on-ZNS layer (dm-zoned role) under sustained random overwrites,
// with host GC either (a) reading+rewriting live pages through the host (2 PCIe crossings per
// page) or (b) issuing device-managed simple-copy. Reported: GC bytes over the host bus, total
// host-bus traffic, write latency, and throughput.

#include <cstdio>
#include <string>

#include "bench/bench_main.h"
#include "src/core/matched_pair.h"
#include "src/hostftl/host_ftl.h"
#include "src/telemetry/telemetry.h"
#include "src/workload/workload.h"

using namespace blockhead;

namespace {

struct CopyResult {
  std::uint64_t gc_bus_bytes = 0;
  std::uint64_t total_bus_bytes = 0;
  std::uint64_t gc_pages = 0;
  double write_mibps = 0.0;
  double p99_write_us = 0.0;
  double wa = 0.0;
};

CopyResult Run(bool use_simple_copy, Telemetry* tel) {
  const std::string prefix = use_simple_copy ? "simplecopy" : "hostcopy";
  MatchedConfig cfg = MatchedConfig::Bench();
  ZnsDevice dev(cfg.flash, cfg.zns);
  dev.AttachTelemetry(tel, prefix + ".zns");
  HostFtlConfig hcfg;
  hcfg.use_simple_copy = use_simple_copy;
  HostFtlBlockDevice ftl(&dev, hcfg);
  ftl.AttachTelemetry(tel, prefix);

  auto fill = SequentialFill(ftl, 1.0, 0);
  RandomWorkloadConfig wl;
  wl.lba_space = ftl.num_blocks();
  wl.read_fraction = 0.0;
  wl.seed = 13;
  RandomWorkload gen(wl);
  DriverOptions opts;
  opts.ops = 2 * ftl.num_blocks();
  opts.start_time = fill.value_or(0) + 10 * kMillisecond;
  opts.maintenance_hook = [&ftl](SimTime now, bool reads) { ftl.Pump(now, reads, 1); };
  const RunResult run = RunClosedLoop(ftl, gen, opts);

  CopyResult result;
  result.gc_bus_bytes = ftl.stats().gc_host_bus_bytes;
  result.total_bus_bytes = dev.flash().stats().host_bus_bytes;
  result.gc_pages = ftl.stats().gc_pages_copied;
  result.write_mibps = run.WriteMiBps();
  result.p99_write_us = static_cast<double>(run.write_latency.Percentile(0.99)) / kMicrosecond;
  result.wa = ftl.EndToEndWriteAmplification();
  return result;
}

}  // namespace

int RunBench(const BenchOptions& opts, Telemetry& tel) {
  MaybeEnableTimeline(opts, tel);

  std::printf("=== E10: Host GC via read+write vs NVMe simple copy (block-on-ZNS) ===\n");
  std::printf("Paper claim (§2.3): with simple copy, GC relocation uses no PCIe bandwidth.\n\n");

  const CopyResult host_copy = Run(/*use_simple_copy=*/false, &tel);
  const CopyResult simple_copy = Run(/*use_simple_copy=*/true, &tel);

  TablePrinter table({"metric", "host read+write", "simple copy"});
  table.AddRow({"GC pages relocated", std::to_string(host_copy.gc_pages),
                std::to_string(simple_copy.gc_pages)});
  table.AddRow({"GC bytes over host bus", TablePrinter::FmtBytes(host_copy.gc_bus_bytes),
                TablePrinter::FmtBytes(simple_copy.gc_bus_bytes)});
  table.AddRow({"total host-bus traffic", TablePrinter::FmtBytes(host_copy.total_bus_bytes),
                TablePrinter::FmtBytes(simple_copy.total_bus_bytes)});
  table.AddRow({"write throughput (MiB/s)", TablePrinter::Fmt(host_copy.write_mibps),
                TablePrinter::Fmt(simple_copy.write_mibps)});
  table.AddRow({"p99 write latency (us)", TablePrinter::Fmt(host_copy.p99_write_us),
                TablePrinter::Fmt(simple_copy.p99_write_us)});
  table.AddRow({"end-to-end WA", TablePrinter::Fmt(host_copy.wa) + "x",
                TablePrinter::Fmt(simple_copy.wa) + "x"});
  std::printf("%s\n", table.Render().c_str());

  std::printf("Shape check: simple copy moves the same number of GC pages with ZERO bytes on\n"
              "the host bus; total bus traffic drops by the relocation volume (each relocated\n"
              "page saves two crossings). In this simulator the host bus is never the\n"
              "bottleneck, so the throughput columns stay close — on real systems the saved\n"
              "PCIe bandwidth (22 GiB here) is concurrent host I/O that no longer competes\n"
              "with GC, which is the paper's point.\n");
  return FinishBench(opts, "bench_simple_copy", tel);
}

int main(int argc, char** argv) {
  return RunBenchMain(argc, argv, "bench_simple_copy", RunBench);
}
