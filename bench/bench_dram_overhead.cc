// E3 — §2.2: on-board DRAM for address translation. Paper: a page-mapped conventional SSD
// needs ~4 B per 4 KiB page (~1 GB per TB); a ZNS SSD maps zones to erasure blocks at ~4 B per
// 16 MiB block (~256 KB per TB).
//
// Reports both the analytic model at datacenter capacities and the *actual* mapping-table
// accounting of instantiated devices at simulator scale, so model and implementation can be
// cross-checked.

#include <cstdio>

#include "src/core/matched_pair.h"
#include "src/cost/cost_model.h"

using namespace blockhead;

int main() {
  std::printf("=== E3: On-board DRAM for address translation, conventional vs ZNS ===\n");
  std::printf(
      "Paper claim: ~1 GB/TB (4 B per 4 KiB page) vs ~256 KB/TB (4 B per 16 MiB block).\n\n");

  const CostModelConfig cfg;
  TablePrinter model({"capacity", "conventional DRAM", "ZNS DRAM", "ratio"});
  for (const std::uint64_t tib : {1ull, 2ull, 4ull, 8ull, 16ull}) {
    const DramEstimate conv = ConventionalMappingDram(tib * kTiB, cfg);
    const DramEstimate zns = ZnsMappingDram(tib * kTiB, cfg);
    model.AddRow({std::to_string(tib) + " TiB", TablePrinter::FmtBytes(conv.bytes),
                  TablePrinter::FmtBytes(zns.bytes),
                  TablePrinter::Fmt(static_cast<double>(conv.bytes) /
                                        static_cast<double>(zns.bytes), 0) + "x"});
  }
  std::printf("Analytic model (paper's constants):\n%s\n", model.Render().c_str());

  // Cross-check against the devices' own accounting at simulator scale. The simulated
  // geometry uses smaller erasure blocks than the paper's 16 MiB example, so the ratio is
  // block_bytes/page_size for that geometry.
  TablePrinter devices(
      {"simulated device", "capacity", "mapping", "GC metadata", "write buffer", "total"});
  for (const char* which : {"conventional", "zns"}) {
    MatchedConfig mcfg = MatchedConfig::Bench();
    MatchedPair pair = MakeMatchedPair(mcfg);
    const bool conv = std::string(which) == "conventional";
    const DramUsage usage =
        conv ? pair.conventional->ComputeDramUsage() : pair.zns->ComputeDramUsage();
    devices.AddRow({which, TablePrinter::FmtBytes(mcfg.flash.geometry.capacity_bytes()),
                    TablePrinter::FmtBytes(usage.mapping_bytes),
                    TablePrinter::FmtBytes(usage.gc_metadata_bytes),
                    TablePrinter::FmtBytes(usage.write_buffer_bytes),
                    TablePrinter::FmtBytes(usage.total())});
  }
  std::printf("Instantiated devices (2 GiB simulated flash, %u KiB pages, %u-page blocks):\n%s\n",
              4, FlashGeometry::Bench().pages_per_block, devices.Render().c_str());

  std::printf("Shape check: conventional mapping DRAM scales with pages (~1 GiB/TiB);\n"
              "ZNS mapping DRAM scales with erasure blocks (~4096x less at 16 MiB blocks).\n");
  return 0;
}
