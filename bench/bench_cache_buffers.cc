// E14 — §4.1: "Applications have evolved to use DRAM as a buffer to coalesce many writes into
// one very large write. With ZNS SSDs, these buffers are no longer necessary. How can we
// identify and modify these applications at scale to reclaim the wasted DRAM?"
//
// Setup: the same object-cache workload (zipfian gets, miss-fill puts) on three designs over
// identical flash: naive per-object block cache, DRAM-coalescing block cache, and the
// zone-per-segment ZNS cache. Reported: hit ratio (identical by construction), device write
// amplification, staging DRAM, and get latency.

#include <cstdio>
#include <memory>

#include "bench/bench_main.h"
#include "src/cache/flash_cache.h"
#include "src/core/matched_pair.h"
#include "src/telemetry/telemetry.h"
#include "src/util/histogram.h"
#include "src/util/rng.h"

using namespace blockhead;

namespace {

struct CacheRunResult {
  double hit_ratio = 0.0;
  double wa = 0.0;
  std::uint64_t staging_dram = 0;
  double get_p99_us = 0.0;
  bool ok = false;
};

constexpr std::uint64_t kObjects = 12000;   // Key universe (larger than cache capacity).
constexpr std::uint64_t kOps = 250000;
constexpr std::uint32_t kMeanObjectBytes = 12 * 1024;

CacheRunResult Drive(FlashCache& cache, const FlashDevice& flash) {
  CacheRunResult result;
  ZipfGenerator keys(kObjects, 0.9, 31);
  Rng rng(37);
  Histogram get_latency;
  SimTime t = 0;
  for (std::uint64_t n = 0; n < kOps; ++n) {
    const std::uint64_t key = keys.Next();
    auto got = cache.Get(key, t);
    if (!got.ok()) {
      return result;
    }
    get_latency.Record(got->completion > t ? got->completion - t : 0);
    t = std::max(t, got->completion);
    if (!got->hit) {
      // Miss fill, as a cache in front of slow origin storage would do.
      const std::uint32_t size =
          4096 + static_cast<std::uint32_t>(rng.NextBelow(2 * kMeanObjectBytes - 4096));
      auto put = cache.Put(key, size, t);
      if (!put.ok()) {
        return result;
      }
      t = std::max(t, put.value());
    }
  }
  result.hit_ratio = cache.stats().HitRatio();
  const FlashStats& fs = flash.stats();
  result.wa = fs.host_pages_programmed == 0
                  ? 1.0
                  : static_cast<double>(fs.total_pages_programmed()) /
                        static_cast<double>(fs.host_pages_programmed);
  result.staging_dram = cache.StagingDramBytes();
  result.get_p99_us = static_cast<double>(get_latency.Percentile(0.99)) / kMicrosecond;
  result.ok = true;
  return result;
}

}  // namespace

int RunBench(const BenchOptions& opts, Telemetry& tel) {
  MaybeEnableTimeline(opts, tel);

  std::printf("=== E14: Flash-cache write staging — DRAM buffers vs zones (§4.1) ===\n");
  std::printf("Paper claim: conventional-SSD caches need DRAM coalescing buffers to control\n"
              "WA; on ZNS the zone does the coalescing, and the DRAM can be reclaimed.\n\n");

  // 64 MiB devices so the churn wraps the flash several times and the FTL's GC is active.
  MatchedConfig cfg = MatchedConfig::Bench();
  cfg.flash.geometry.channels = 2;
  cfg.flash.geometry.planes_per_channel = 2;
  cfg.flash.geometry.blocks_per_plane = 64;
  cfg.flash.geometry.pages_per_block = 64;
  TablePrinter table({"design", "hit ratio", "device WA", "staging DRAM", "get p99 (us)"});

  {
    ConventionalSsd ssd(cfg.flash, cfg.ftl);
    ssd.AttachTelemetry(&tel, "naive");
    BlockCacheConfig ccfg;
    ccfg.coalesce_writes = false;
    BlockFlashCache cache(&ssd, ccfg);
    cache.AttachTelemetry(&tel, "naive.cache");
    const CacheRunResult r = Drive(cache, ssd.flash());
    table.AddRow({"block, per-object (naive)", TablePrinter::Fmt(r.hit_ratio, 3),
                  TablePrinter::Fmt(r.wa) + "x", TablePrinter::FmtBytes(r.staging_dram),
                  TablePrinter::Fmt(r.get_p99_us)});
  }
  {
    ConventionalSsd ssd(cfg.flash, cfg.ftl);
    ssd.AttachTelemetry(&tel, "coalesced");
    BlockCacheConfig ccfg;
    ccfg.coalesce_writes = true;
    ccfg.segment_pages = 1024;  // 4 MiB DRAM staging buffer.
    BlockFlashCache cache(&ssd, ccfg);
    cache.AttachTelemetry(&tel, "coalesced.cache");
    const CacheRunResult r = Drive(cache, ssd.flash());
    table.AddRow({"block, DRAM-coalesced segments", TablePrinter::Fmt(r.hit_ratio, 3),
                  TablePrinter::Fmt(r.wa) + "x", TablePrinter::FmtBytes(r.staging_dram),
                  TablePrinter::Fmt(r.get_p99_us)});
  }
  {
    ZnsDevice dev(cfg.flash, cfg.zns);
    dev.AttachTelemetry(&tel, "zns");
    ZnsFlashCache cache(&dev, ZnsCacheConfig{});
    cache.AttachTelemetry(&tel, "zns.cache");
    const CacheRunResult r = Drive(cache, dev.flash());
    table.AddRow({"ZNS, zone-per-segment", TablePrinter::Fmt(r.hit_ratio, 3),
                  TablePrinter::Fmt(r.wa) + "x", TablePrinter::FmtBytes(r.staging_dram),
                  TablePrinter::Fmt(r.get_p99_us)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf("Shape check: the naive block design pays FTL write amplification; the coalesced\n"
              "design buys WA~1 with a DRAM buffer per writer; the ZNS design gets WA~1 with\n"
              "ZERO staging DRAM — the buffer the paper says can be reclaimed.\n");
  return FinishBench(opts, "bench_cache_buffers", tel);
}

int main(int argc, char** argv) {
  return RunBenchMain(argc, argv, "bench_cache_buffers", RunBench);
}
