// Shared harness for the bench_* binaries: uniform command-line flags and machine-readable
// registry dumps.
//
// Every wired bench does:
//
//   int main(int argc, char** argv) {
//     const BenchOptions opts = ParseBenchArgs(argc, argv, "bench_foo");
//     Telemetry tel;
//     ... attach layers ...
//     MaybeEnableTimeline(opts, tel);
//     ... run, print the usual tables ...
//     return FinishBench(opts, "bench_foo", tel);
//   }
//
// Flags:
//   --json <path>        dump the full metric registry as JSON-lines (deterministic: same
//                        seed -> byte-identical file; this is what BENCH_*.json trajectories
//                        and bench/run_suite.sh consume)
//   --csv <path>         same dump as CSV
//   --trace <path>       write the recorded timeline as Chrome-trace JSON (open in Perfetto);
//                        deterministic: same seed -> byte-identical file
//   --timeseries <path>  write the sampled utilization series as CSV (series,t_ns,value)
//   --metrics            also print the registry as a table to stdout
//   --help               usage

#ifndef BLOCKHEAD_BENCH_BENCH_MAIN_H_
#define BLOCKHEAD_BENCH_BENCH_MAIN_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/telemetry/sink.h"
#include "src/telemetry/telemetry.h"

namespace blockhead {

struct BenchOptions {
  std::string json_path;
  std::string csv_path;
  std::string trace_path;
  std::string timeseries_path;
  std::string ledger_path;
  bool print_metrics = false;
};

inline BenchOptions ParseBenchArgs(int argc, char** argv, const char* bench_name) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires a path argument\n", bench_name, flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--json") == 0) {
      opts.json_path = need_value("--json");
    } else if (std::strcmp(arg, "--csv") == 0) {
      opts.csv_path = need_value("--csv");
    } else if (std::strcmp(arg, "--trace") == 0) {
      opts.trace_path = need_value("--trace");
    } else if (std::strcmp(arg, "--timeseries") == 0) {
      opts.timeseries_path = need_value("--timeseries");
    } else if (std::strcmp(arg, "--ledger") == 0) {
      opts.ledger_path = need_value("--ledger");
    } else if (std::strcmp(arg, "--metrics") == 0) {
      opts.print_metrics = true;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: %s [--json <path>] [--csv <path>] [--trace <path>] [--timeseries <path>] "
          "[--ledger <path>] [--metrics]\n",
          bench_name);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n", bench_name, arg);
      std::exit(2);
    }
  }
  return opts;
}

// Turns timeline recording on when --trace or --timeseries was requested. Call after the
// layers are attached (attachment registers the sampler groups; Enable resets their clocks).
inline void MaybeEnableTimeline(const BenchOptions& opts, Telemetry& telemetry) {
  if (!opts.trace_path.empty() || !opts.timeseries_path.empty()) {
    telemetry.timeline.Enable();
  }
}

// Dumps the registry to every sink the flags requested. Returns the bench's exit code.
// (--ledger and span finalization need the full bundle; see the Telemetry overload.)
inline int FinishBench(const BenchOptions& opts, const char* bench_name,
                       MetricRegistry& registry) {
  const auto snapshot = registry.Snapshot();
  if (opts.print_metrics) {
    std::string table;
    TableSink().Render(bench_name, snapshot, &table);
    std::printf("\n%s", table.c_str());
  }
  if (!opts.json_path.empty()) {
    std::string json;
    JsonLinesSink().Render(bench_name, snapshot, &json);
    const Status s = WriteStringToFile(opts.json_path, json);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: --json: %s\n", bench_name, s.ToString().c_str());
      return 1;
    }
  }
  if (!opts.csv_path.empty()) {
    std::string csv;
    CsvSink().Render(bench_name, snapshot, &csv);
    const Status s = WriteStringToFile(opts.csv_path, csv);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: --csv: %s\n", bench_name, s.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

// Full-bundle variant: registry sinks plus the timeline exports (--trace / --timeseries) and
// the provenance ledger (--ledger). Teardown finalization happens here, before the snapshot:
// spans still open (a bench that returned early) are drained into their span.<name>.abandoned
// counters, and the provenance provider publishes the ledger's final per-cause counts — so
// --json/--ledger output is complete even on an early exit.
inline int FinishBench(const BenchOptions& opts, const char* bench_name, Telemetry& telemetry) {
  telemetry.tracer.AbandonOpen();
  const int rc = FinishBench(opts, bench_name, telemetry.registry);
  if (rc != 0) {
    return rc;
  }
  if (!opts.ledger_path.empty()) {
    const Status s = WriteStringToFile(opts.ledger_path, telemetry.provenance.Dump());
    if (!s.ok()) {
      std::fprintf(stderr, "%s: --ledger: %s\n", bench_name, s.ToString().c_str());
      return 1;
    }
  }
  if (!opts.trace_path.empty()) {
    const Status s =
        WriteStringToFile(opts.trace_path, telemetry.timeline.ExportChromeTrace());
    if (!s.ok()) {
      std::fprintf(stderr, "%s: --trace: %s\n", bench_name, s.ToString().c_str());
      return 1;
    }
  }
  if (!opts.timeseries_path.empty()) {
    const Status s =
        WriteStringToFile(opts.timeseries_path, telemetry.timeline.ExportTimeSeriesCsv());
    if (!s.ok()) {
      std::fprintf(stderr, "%s: --timeseries: %s\n", bench_name, s.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace blockhead

#endif  // BLOCKHEAD_BENCH_BENCH_MAIN_H_
