// Shared harness for the bench_* binaries: uniform command-line flags, machine-readable
// registry dumps, and the self-profiling / repeat machinery behind `ci.sh --perf`.
//
// Every wired bench does:
//
//   int RunBench(const BenchOptions& opts, Telemetry& tel) {
//     ... attach layers ...
//     MaybeEnableTimeline(opts, tel);
//     ... run, print the usual tables ...
//     return FinishBench(opts, "bench_foo", tel);
//   }
//   int main(int argc, char** argv) { return RunBenchMain(argc, argv, "bench_foo", RunBench); }
//
// RunBenchMain owns the Telemetry bundle so `--repeat N` can run the body N times against a
// fresh bundle each time. SimTime-domain output is asserted byte-identical across repeats
// (same seed -> same simulation, whatever the host is doing); only wall-clock-domain rows
// (the "selfprof.host." prefix) may differ, and files are written for the final repeat only.
// The bench's stdout report prints once per repeat.
//
// Flags:
//   --json <path>        dump the full metric registry as JSON-lines (deterministic: same
//                        seed -> byte-identical file; this is what BENCH_*.json trajectories
//                        and bench/run_suite.sh consume)
//   --csv <path>         same dump as CSV
//   --trace <path>       write the recorded timeline as Chrome-trace JSON (open in Perfetto);
//                        deterministic: same seed -> byte-identical file — unless --perf is
//                        on, which adds the host-clock self-profile track (dual-clock trace)
//   --timeseries <path>  write the sampled utilization series as CSV (series,t_ns,value)
//   --metrics            also print the registry as a table to stdout
//   --perf               enable the host-side self-profiler: wall-clock cost attribution per
//                        (subsystem, op), events/sec, ns per simulated flash op, sim speedup
//                        and memory, published under "selfprof.host.*" in --json/--csv
//   --repeat <n>         run the bench body n times (fresh telemetry each time); derived
//                        perf gauges are medians across repeats (noise suppression for the
//                        regression gate), and SimTime-domain output must be byte-identical
//   --exemplars <path>   enable the reqpath critical-path ledger and write the worst-k tail
//                        exemplars (per op type, full segment breakdown + top interferer) as
//                        JSON; also adds victim<->interferer flow arrows to --trace output.
//                        Deterministic: same seed -> byte-identical file
//   --slo <path>         enable the reqpath ledger and write the machine-readable SLO report
//                        (burn rates per registered objective) as JSON; benches register
//                        their objectives via telemetry.reqpath.AddObjective
//   --audit <path>       enable the state-digest audit layer and write the digest timeline
//                        (one JSON line per touched (epoch, subsystem) cell plus final
//                        per-subsystem and whole-run digests). Deterministic: same seed ->
//                        byte-identical file; tools/digest_bisect compares two of these.
//                        Epoch length defaults to 10 ms SimTime (BLOCKHEAD_AUDIT_EPOCH_NS
//                        overrides). Adds zero registry rows: --json output is unchanged.
//   --events <path>      write the retained event log as JSON-lines (the decision window
//                        digest_bisect prints around a divergence)
//   --help               usage

#ifndef BLOCKHEAD_BENCH_BENCH_MAIN_H_
#define BLOCKHEAD_BENCH_BENCH_MAIN_H_

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/telemetry/sink.h"
#include "src/telemetry/telemetry.h"

namespace blockhead {

// Cross-repeat state owned by RunBenchMain; benches never touch it. FinishBench uses it to
// assert determinism, collect per-repeat perf samples, and defer file writes to the last
// repeat.
struct BenchRepeatState {
  int index = 0;  // Current repeat, 0-based.
  int total = 1;
  // JSON-lines dump of repeat 0 with wall-clock-domain rows stripped: the SimTime-domain
  // fingerprint every later repeat must reproduce byte for byte.
  std::string reference_dump;
  std::vector<SelfProfSample> samples;  // One per completed repeat while --perf is on.
};

struct BenchOptions {
  std::string json_path;
  std::string csv_path;
  std::string trace_path;
  std::string timeseries_path;
  std::string ledger_path;
  std::string exemplars_path;
  std::string slo_path;
  std::string audit_path;
  std::string events_path;
  bool print_metrics = false;
  bool perf = false;  // --perf: self-profiler on (RunBenchMain enables it per repeat).
  int repeat = 1;     // --repeat: bench body runs this many times.
  // Set by RunBenchMain; nullptr when a bench is driven without the runner (tests).
  BenchRepeatState* repeat_state = nullptr;
};

inline BenchOptions ParseBenchArgs(int argc, char** argv, const char* bench_name) {
  BenchOptions opts;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: %s requires an argument\n", bench_name, flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(arg, "--json") == 0) {
      opts.json_path = need_value("--json");
    } else if (std::strcmp(arg, "--csv") == 0) {
      opts.csv_path = need_value("--csv");
    } else if (std::strcmp(arg, "--trace") == 0) {
      opts.trace_path = need_value("--trace");
    } else if (std::strcmp(arg, "--timeseries") == 0) {
      opts.timeseries_path = need_value("--timeseries");
    } else if (std::strcmp(arg, "--ledger") == 0) {
      opts.ledger_path = need_value("--ledger");
    } else if (std::strcmp(arg, "--exemplars") == 0) {
      opts.exemplars_path = need_value("--exemplars");
    } else if (std::strcmp(arg, "--slo") == 0) {
      opts.slo_path = need_value("--slo");
    } else if (std::strcmp(arg, "--audit") == 0) {
      opts.audit_path = need_value("--audit");
    } else if (std::strcmp(arg, "--events") == 0) {
      opts.events_path = need_value("--events");
    } else if (std::strcmp(arg, "--metrics") == 0) {
      opts.print_metrics = true;
    } else if (std::strcmp(arg, "--perf") == 0) {
      opts.perf = true;
    } else if (std::strcmp(arg, "--repeat") == 0) {
      const char* value = need_value("--repeat");
      char* end = nullptr;
      const long n = std::strtol(value, &end, 10);
      if (end == value || *end != '\0' || n < 1) {
        std::fprintf(stderr, "%s: --repeat wants a positive integer, got '%s'\n", bench_name,
                     value);
        std::exit(2);
      }
      opts.repeat = static_cast<int>(n);
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: %s [--json <path>] [--csv <path>] [--trace <path>] [--timeseries <path>] "
          "[--ledger <path>] [--exemplars <path>] [--slo <path>] [--audit <path>] "
          "[--events <path>] [--metrics] [--perf] [--repeat <n>]\n",
          bench_name);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n", bench_name, arg);
      std::exit(2);
    }
  }
  return opts;
}

// Turns timeline recording on when --trace or --timeseries was requested. Call after the
// layers are attached (attachment registers the sampler groups; Enable resets their clocks).
inline void MaybeEnableTimeline(const BenchOptions& opts, Telemetry& telemetry) {
  if (!opts.trace_path.empty() || !opts.timeseries_path.empty()) {
    telemetry.timeline.Enable();
  }
}

// Drops wall-clock-domain rows (metric names under SelfProfiler::kHostMetricPrefix) from a
// sink dump, leaving the SimTime-domain rows used for determinism comparison. Works on any
// line-oriented sink output (JSON-lines, CSV).
inline std::string StripHostMetricRows(std::string_view dump) {
  std::string out;
  out.reserve(dump.size());
  std::size_t pos = 0;
  while (pos < dump.size()) {
    std::size_t eol = dump.find('\n', pos);
    if (eol == std::string_view::npos) {
      eol = dump.size() - 1;
    }
    const std::string_view line = dump.substr(pos, eol - pos + 1);
    if (line.find(SelfProfiler::kHostMetricPrefix) == std::string_view::npos) {
      out += line;
    }
    pos = eol + 1;
  }
  return out;
}

// Overwrites the derived perf gauges with medians across the per-repeat samples. Counters
// that are simulation-determined (total_events, flash_events) agree across repeats already;
// medians exist to suppress host noise in the wall-clock-derived rows the perf gate reads.
inline void PublishMedianPerfSample(MetricRegistry& registry,
                                    const std::vector<SelfProfSample>& samples) {
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    return n % 2 == 1 ? v[n / 2] : (v[n / 2 - 1] + v[n / 2]) / 2.0;
  };
  std::vector<double> wall, eps, nspo, speedup;
  for (const SelfProfSample& s : samples) {
    wall.push_back(static_cast<double>(s.wall_elapsed_ns));
    eps.push_back(s.events_per_sec);
    nspo.push_back(s.ns_per_simulated_op);
    speedup.push_back(s.sim_speedup);
  }
  const std::string p = SelfProfiler::kHostMetricPrefix;
  registry.GetCounter(p + "wall_elapsed_ns")->Set(static_cast<std::uint64_t>(median(wall)));
  registry.GetGauge(p + "events_per_sec")->Set(median(eps));
  registry.GetGauge(p + "ns_per_simulated_op")->Set(median(nspo));
  registry.GetGauge(p + "sim_speedup")->Set(median(speedup));
  registry.GetCounter(p + "repeats")->Set(samples.size());
}

// Dumps the registry to every sink the flags requested. Returns the bench's exit code.
// (--ledger and span finalization need the full bundle; see the Telemetry overload.)
inline int FinishBench(const BenchOptions& opts, const char* bench_name,
                       MetricRegistry& registry) {
  const auto snapshot = registry.Snapshot();
  if (opts.print_metrics) {
    std::string table;
    TableSink().Render(bench_name, snapshot, &table);
    std::printf("\n%s", table.c_str());
  }
  if (!opts.json_path.empty()) {
    std::string json;
    JsonLinesSink().Render(bench_name, snapshot, &json);
    const Status s = WriteStringToFile(opts.json_path, json);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: --json: %s\n", bench_name, s.ToString().c_str());
      return 1;
    }
  }
  if (!opts.csv_path.empty()) {
    std::string csv;
    CsvSink().Render(bench_name, snapshot, &csv);
    const Status s = WriteStringToFile(opts.csv_path, csv);
    if (!s.ok()) {
      std::fprintf(stderr, "%s: --csv: %s\n", bench_name, s.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

// Full-bundle variant: registry sinks plus the timeline exports (--trace / --timeseries) and
// the provenance ledger (--ledger). Teardown finalization happens here, before the snapshot:
// spans still open (a bench that returned early) are drained into their span.<name>.abandoned
// counters, and the provenance provider publishes the ledger's final per-cause counts — so
// --json/--ledger output is complete even on an early exit.
//
// Under RunBenchMain this is also the per-repeat boundary: every repeat's SimTime-domain dump
// is compared byte for byte against repeat 0 (exit 3 on divergence — a wall-clock leak into
// simulation state), a --perf sample is recorded, and everything file-shaped happens on the
// last repeat only, with median gauges published first.
inline int FinishBench(const BenchOptions& opts, const char* bench_name, Telemetry& telemetry) {
  telemetry.tracer.AbandonOpen();
  BenchRepeatState* rs = opts.repeat_state;
  const bool last = rs == nullptr || rs->index + 1 >= rs->total;
  if (rs != nullptr && rs->total > 1) {
    // Attribute the determinism dump to the telemetry subsystem: rendering the registry is
    // harness overhead the profile should own up to, not hide.
    std::string dump;
    {
      SelfProfiler::Scope prof_scope(&telemetry.selfprof, ProfSubsystem::kTelemetry,
                                     ProfOp::kSinkRender);
      JsonLinesSink().Render(bench_name, telemetry.registry.Snapshot(), &dump);
    }
    std::string stripped = StripHostMetricRows(dump);
    if (rs->index == 0) {
      rs->reference_dump = std::move(stripped);
    } else if (stripped != rs->reference_dump) {
      std::fprintf(stderr,
                   "%s: repeat %d diverged from repeat 0 in SimTime-domain output — "
                   "simulation state leaked wall-clock dependence\n",
                   bench_name, rs->index);
      return 3;
    }
  }
  if (telemetry.selfprof.enabled() && rs != nullptr) {
    rs->samples.push_back(telemetry.selfprof.Sample());
  }
  if (!last) {
    return 0;
  }
  if (telemetry.selfprof.enabled()) {
    telemetry.selfprof.PublishTo(telemetry.registry);
    if (rs != nullptr && rs->samples.size() > 1) {
      PublishMedianPerfSample(telemetry.registry, rs->samples);
    }
  }
  const int rc = FinishBench(opts, bench_name, telemetry.registry);
  if (rc != 0) {
    return rc;
  }
  if (!opts.ledger_path.empty()) {
    const Status s = WriteStringToFile(opts.ledger_path, telemetry.provenance.Dump());
    if (!s.ok()) {
      std::fprintf(stderr, "%s: --ledger: %s\n", bench_name, s.ToString().c_str());
      return 1;
    }
  }
  if (!opts.exemplars_path.empty()) {
    const Status s = WriteStringToFile(opts.exemplars_path, telemetry.reqpath.DumpExemplarsJson());
    if (!s.ok()) {
      std::fprintf(stderr, "%s: --exemplars: %s\n", bench_name, s.ToString().c_str());
      return 1;
    }
  }
  if (!opts.slo_path.empty()) {
    const Status s = WriteStringToFile(opts.slo_path, telemetry.reqpath.SloReportJson());
    if (!s.ok()) {
      std::fprintf(stderr, "%s: --slo: %s\n", bench_name, s.ToString().c_str());
      return 1;
    }
  }
  if (!opts.audit_path.empty()) {
    const Status s = WriteStringToFile(opts.audit_path, telemetry.audit.DumpJson());
    if (!s.ok()) {
      std::fprintf(stderr, "%s: --audit: %s\n", bench_name, s.ToString().c_str());
      return 1;
    }
  }
  if (!opts.events_path.empty()) {
    const Status s = WriteStringToFile(opts.events_path, telemetry.events.DumpJson());
    if (!s.ok()) {
      std::fprintf(stderr, "%s: --events: %s\n", bench_name, s.ToString().c_str());
      return 1;
    }
  }
  if (telemetry.reqpath.enabled()) {
    // Tail exemplars become timeline slices with victim<->interferer flow arrows; must land
    // before the trace export below so they are part of the stream.
    telemetry.reqpath.EmitExemplarTimeline(&telemetry.timeline);
  }
  if (!opts.trace_path.empty()) {
    // Dual-clock export: with --perf the host-clock self-profile rides along as a fourth
    // process track; without it the trace stays byte-identical to the pre-profiler format.
    const SelfProfiler* host_profile =
        telemetry.selfprof.enabled() ? &telemetry.selfprof : nullptr;
    const Status s =
        WriteStringToFile(opts.trace_path, telemetry.timeline.ExportChromeTrace(host_profile));
    if (!s.ok()) {
      std::fprintf(stderr, "%s: --trace: %s\n", bench_name, s.ToString().c_str());
      return 1;
    }
  }
  if (!opts.timeseries_path.empty()) {
    const Status s =
        WriteStringToFile(opts.timeseries_path, telemetry.timeline.ExportTimeSeriesCsv());
    if (!s.ok()) {
      std::fprintf(stderr, "%s: --timeseries: %s\n", bench_name, s.ToString().c_str());
      return 1;
    }
  }
  return 0;
}

// Bench entry point: parses flags, then runs `body` opts.repeat times, each against a fresh
// Telemetry bundle (so repeats are independent simulations, not warm continuations). With
// --perf the self-profiler is enabled before each run; FinishBench (called by the body)
// handles per-repeat sampling, the determinism assert, and last-repeat publication.
inline int RunBenchMain(int argc, char** argv, const char* bench_name,
                        const std::function<int(const BenchOptions&, Telemetry&)>& body) {
  BenchOptions opts = ParseBenchArgs(argc, argv, bench_name);
  BenchRepeatState state;
  state.total = opts.repeat;
  opts.repeat_state = &state;
  int rc = 0;
  for (state.index = 0; state.index < state.total; ++state.index) {
    Telemetry telemetry;
    if (opts.perf) {
      telemetry.selfprof.Enable();
    }
    if (!opts.exemplars_path.empty() || !opts.slo_path.empty()) {
      // Enable-before-body, like the self-profiler: layer charge sites test enabled() per op,
      // so activation is independent of attachment order. Zero overhead when off.
      telemetry.reqpath.Enable();
    }
    if (!opts.audit_path.empty()) {
      // Same enable-before-body discipline: digest hooks test armed() per mutation, so the
      // audit activates regardless of when each layer attaches.
      telemetry.audit.Enable(AuditConfig{});
    }
    rc = body(opts, telemetry);
    if (rc != 0) {
      return rc;
    }
  }
  return rc;
}

}  // namespace blockhead

#endif  // BLOCKHEAD_BENCH_BENCH_MAIN_H_
