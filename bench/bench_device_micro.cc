// Microbenchmarks (google-benchmark) for the simulator's own CPU cost: how fast the device
// models execute operations in wall-clock time. These guard against simulator-performance
// regressions; the paper-reproduction numbers live in the bench_* table binaries.

#include <benchmark/benchmark.h>

#include "src/core/matched_pair.h"
#include "src/hostftl/host_ftl.h"
#include "src/util/rng.h"

namespace blockhead {
namespace {

void BM_FlashProgramPage(benchmark::State& state) {
  FlashConfig cfg;
  cfg.geometry = FlashGeometry::Bench();
  cfg.timing = FlashTiming::FastForTests();
  cfg.store_data = false;
  FlashDevice dev(cfg);
  const FlashGeometry& g = dev.geometry();
  std::uint64_t i = 0;
  SimTime t = 0;
  for (auto _ : state) {
    const PhysAddr addr = AddrFromFlatPage(g, i % g.total_pages());
    auto r = dev.ProgramPage(addr, t);
    if (r.ok()) {
      t = r.value();
    } else {
      // Block full: erase and continue.
      PhysAddr b = addr;
      benchmark::DoNotOptimize(dev.EraseBlock(b.channel, b.plane, b.block, t));
      i += g.pages_per_block;
      continue;
    }
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlashProgramPage);

void BM_ConventionalRandomWrite(benchmark::State& state) {
  FlashConfig cfg;
  cfg.geometry = FlashGeometry::Bench();
  cfg.timing = FlashTiming::FastForTests();
  cfg.store_data = false;
  FtlConfig ftl;
  ftl.op_fraction = 0.15;
  ConventionalSsd ssd(cfg, ftl);
  Rng rng(1);
  SimTime t = 0;
  for (auto _ : state) {
    auto r = ssd.WriteBlocks(rng.NextBelow(ssd.num_blocks()), 1, t);
    if (r.ok()) {
      t = r.value();
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["WA"] = ssd.WriteAmplification();
}
BENCHMARK(BM_ConventionalRandomWrite);

void BM_ZnsAppend(benchmark::State& state) {
  FlashConfig cfg;
  cfg.geometry = FlashGeometry::Bench();
  cfg.timing = FlashTiming::FastForTests();
  cfg.store_data = false;
  ZnsDevice dev(cfg, ZnsConfig{});
  std::uint32_t zone = 0;
  SimTime t = 0;
  for (auto _ : state) {
    auto r = dev.Append(zone, 1, t);
    if (r.ok()) {
      t = r->completion;
    } else {
      zone = (zone + 1) % dev.num_zones();
      if (dev.zone(zone).state == ZoneState::kFull) {
        benchmark::DoNotOptimize(dev.ResetZone(zone, t));
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ZnsAppend);

void BM_HostFtlRandomWrite(benchmark::State& state) {
  FlashConfig cfg;
  cfg.geometry = FlashGeometry::Bench();
  cfg.timing = FlashTiming::FastForTests();
  cfg.store_data = false;
  ZnsDevice dev(cfg, ZnsConfig{});
  HostFtlBlockDevice ftl(&dev, HostFtlConfig{});
  Rng rng(2);
  SimTime t = 0;
  for (auto _ : state) {
    auto r = ftl.WriteBlocks(rng.NextBelow(ftl.num_blocks()), 1, t);
    if (r.ok()) {
      t = r.value();
    }
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["WA"] = ftl.EndToEndWriteAmplification();
}
BENCHMARK(BM_HostFtlRandomWrite);

}  // namespace
}  // namespace blockhead

BENCHMARK_MAIN();
