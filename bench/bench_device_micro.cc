// Microbenchmarks (google-benchmark) for the simulator's own CPU cost: how fast the device
// models execute operations in wall-clock time. These guard against simulator-performance
// regressions; the paper-reproduction numbers live in the bench_* table binaries.

#include <benchmark/benchmark.h>

#include <initializer_list>
#include <string_view>

#include "src/core/matched_pair.h"
#include "src/hostftl/host_ftl.h"
#include "src/telemetry/telemetry.h"
#include "src/util/rng.h"

namespace blockhead {
namespace {

// Copies the selected registry counters/gauges into google-benchmark's counter map under
// their registry names, so micro-bench rows report the exact fields (and names) the table
// benches dump — no hand-formatted duplicates of FlashStats/WearSummary.
void ExportRegistryCounters(benchmark::State& state, MetricRegistry& registry,
                            std::initializer_list<std::string_view> names) {
  for (const MetricRegistry::Entry& e : registry.Snapshot()) {
    for (const std::string_view name : names) {
      if (e.name != name) {
        continue;
      }
      if (e.kind == MetricKind::kCounter) {
        state.counters[e.name] = static_cast<double>(e.counter);
      } else if (e.kind == MetricKind::kGauge) {
        state.counters[e.name] = e.gauge;
      }
    }
  }
}

void BM_FlashProgramPage(benchmark::State& state) {
  FlashConfig cfg;
  cfg.geometry = FlashGeometry::Bench();
  cfg.timing = FlashTiming::FastForTests();
  cfg.store_data = false;
  Telemetry tel;
  FlashDevice dev(cfg);
  dev.AttachTelemetry(&tel, "flash");
  const FlashGeometry& g = dev.geometry();
  std::uint64_t i = 0;
  SimTime t = 0;
  for (auto _ : state) {
    const PhysAddr addr = AddrFromFlatPage(g, Ppa{i % g.total_pages()});
    auto r = dev.ProgramPage(addr, t);
    if (r.ok()) {
      t = r.value();
    } else {
      // Block full: erase and continue.
      PhysAddr b = addr;
      benchmark::DoNotOptimize(dev.EraseBlock(b.channel, b.plane, b.block, t));
      i += g.pages_per_block;
      continue;
    }
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
  ExportRegistryCounters(state, tel.registry,
                         {"flash.write_amplification", "flash.wear.max_erase_count"});
}
BENCHMARK(BM_FlashProgramPage);

void BM_ConventionalRandomWrite(benchmark::State& state) {
  FlashConfig cfg;
  cfg.geometry = FlashGeometry::Bench();
  cfg.timing = FlashTiming::FastForTests();
  cfg.store_data = false;
  FtlConfig ftl;
  ftl.op_fraction = 0.15;
  Telemetry tel;
  ConventionalSsd ssd(cfg, ftl);
  ssd.AttachTelemetry(&tel, "conv");
  Rng rng(1);
  SimTime t = 0;
  for (auto _ : state) {
    auto r = ssd.WriteBlocks(Lba{rng.NextBelow(ssd.num_blocks())}, 1, t);
    if (r.ok()) {
      t = r.value();
    }
  }
  state.SetItemsProcessed(state.iterations());
  ExportRegistryCounters(state, tel.registry,
                         {"conv.ftl.write_amplification", "conv.flash.wear.max_erase_count"});
}
BENCHMARK(BM_ConventionalRandomWrite);

void BM_ZnsAppend(benchmark::State& state) {
  FlashConfig cfg;
  cfg.geometry = FlashGeometry::Bench();
  cfg.timing = FlashTiming::FastForTests();
  cfg.store_data = false;
  Telemetry tel;
  ZnsDevice dev(cfg, ZnsConfig{});
  dev.AttachTelemetry(&tel, "zns");
  std::uint32_t zone = 0;
  SimTime t = 0;
  for (auto _ : state) {
    auto r = dev.Append(ZoneId{zone}, 1, t);
    if (r.ok()) {
      t = r->completion;
    } else {
      zone = (zone + 1) % dev.num_zones();
      if (dev.zone(ZoneId{zone}).state == ZoneState::kFull) {
        benchmark::DoNotOptimize(dev.ResetZone(ZoneId{zone}, t));
      }
    }
  }
  state.SetItemsProcessed(state.iterations());
  ExportRegistryCounters(state, tel.registry,
                         {"zns.zone_resets", "zns.flash.write_amplification"});
}
BENCHMARK(BM_ZnsAppend);

void BM_HostFtlRandomWrite(benchmark::State& state) {
  FlashConfig cfg;
  cfg.geometry = FlashGeometry::Bench();
  cfg.timing = FlashTiming::FastForTests();
  cfg.store_data = false;
  Telemetry tel;
  ZnsDevice dev(cfg, ZnsConfig{});
  dev.AttachTelemetry(&tel, "zns");
  HostFtlBlockDevice ftl(&dev, HostFtlConfig{});
  ftl.AttachTelemetry(&tel, "hostftl");
  Rng rng(2);
  SimTime t = 0;
  for (auto _ : state) {
    auto r = ftl.WriteBlocks(Lba{rng.NextBelow(ftl.num_blocks())}, 1, t);
    if (r.ok()) {
      t = r.value();
    }
  }
  state.SetItemsProcessed(state.iterations());
  ExportRegistryCounters(state, tel.registry,
                         {"hostftl.write_amplification", "zns.flash.write_amplification"});
}
BENCHMARK(BM_HostFtlRandomWrite);

}  // namespace
}  // namespace blockhead

BENCHMARK_MAIN();
