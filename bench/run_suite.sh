#!/usr/bin/env bash
# Runs every --json-wired bench and aggregates the registry dumps into one regression
# baseline, BENCH_baseline.json (repo root): one JSON object per line with the schema
#
#   {"name": "<bench>", "metric": "<metric name>", "value": <number>, "seed": <workload seed>}
#
# Every bench is seed-pinned, so the suite output is byte-stable: a diff against the
# committed baseline is a real behaviour change (perf regression, WA shift, accounting bug),
# never noise.
#
#   bench/run_suite.sh                  # run suite, write BENCH_baseline.json.new, diff
#   bench/run_suite.sh --update         # run suite and overwrite BENCH_baseline.json
#   bench/run_suite.sh --check          # run suite, exit 1 if it differs from the baseline
#
# Assumes an existing build/ tree (ci.sh tier-1 provides one).

set -euo pipefail
cd "$(dirname "$0")/.."

mode="diff"
case "${1:-}" in
  --update) mode="update" ;;
  --check) mode="check" ;;
  "") ;;
  *)
    echo "usage: $0 [--update|--check]" >&2
    exit 2
    ;;
esac

build_dir="build"
if [[ ! -d "$build_dir/bench" ]]; then
  echo "run_suite.sh: no $build_dir/bench directory; build first (cmake --build build)" >&2
  exit 1
fi

# bench -> primary workload seed (matches the constant hard-coded in each bench source;
# 0 = the bench is deterministic with no top-level RNG).
benches=(
  "bench_tail_latency 11"
  "bench_gc_policy 21"
  "bench_read_latency 7"
  "bench_cache_buffers 37"
  "bench_simple_copy 13"
  "bench_wa_overprovisioning 42"
  "bench_ycsb 0"
  "bench_zone_append 0"
  "bench_wear_leveling 11"
  "bench_lifetime_hints 3"
  "bench_multistream 3"
  "bench_block_emulation 23"
  "bench_fleet 42"
)

tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT

# Fail fast with a clear message when a bench binary is missing (a stale build tree would
# otherwise die mid-suite on a confusing exec error, or silently drop metrics from the
# baseline if the loop were ever made lenient).
for entry in "${benches[@]}"; do
  read -r bench _ <<< "$entry"
  if [[ ! -x "$build_dir/bench/$bench" ]]; then
    echo "run_suite.sh: FAIL — missing bench binary $build_dir/bench/$bench;" \
         "rebuild first (cmake --build build)" >&2
    exit 1
  fi
done

for entry in "${benches[@]}"; do
  read -r bench seed <<< "$entry"
  echo "run_suite.sh: $bench (seed $seed)"
  "$build_dir/bench/$bench" --json "$tmp_dir/$bench.json" > /dev/null
done

out="$tmp_dir/BENCH_baseline.json"
python3 - "$out" "${benches[@]}" <<'PY'
import json, sys
out_path = sys.argv[1]
rows = []
for entry in sys.argv[2:]:
    bench, seed = entry.rsplit(" ", 1)
    with open(f"{sys.argv[1].rsplit('/', 1)[0]}/{bench}.json") as f:
        for line in f:
            rec = json.loads(line)
            if "value" in rec:  # counter / gauge
                rows.append({"name": rec["bench"], "metric": rec["metric"],
                             "value": rec["value"], "seed": int(seed)})
            else:  # histogram: one row per summary stat
                for stat in ("count", "min", "max", "mean", "p50", "p90", "p95",
                             "p99", "p999"):
                    rows.append({"name": rec["bench"],
                                 "metric": f"{rec['metric']}.{stat}",
                                 "value": rec[stat], "seed": int(seed)})
with open(out_path, "w") as f:
    for row in rows:
        f.write(json.dumps(row, separators=(",", ":")) + "\n")
PY

case "$mode" in
  update)
    cp "$out" BENCH_baseline.json
    echo "run_suite.sh: wrote BENCH_baseline.json ($(wc -l < BENCH_baseline.json) metrics)"
    ;;
  check)
    if ! diff -q BENCH_baseline.json "$out" > /dev/null; then
      echo "run_suite.sh: FAIL — bench metrics diverged from BENCH_baseline.json:" >&2
      diff BENCH_baseline.json "$out" | head -40 >&2
      exit 1
    fi
    echo "run_suite.sh: OK — bench metrics match BENCH_baseline.json"
    ;;
  diff)
    cp "$out" BENCH_baseline.json.new
    if [[ -f BENCH_baseline.json ]]; then
      diff BENCH_baseline.json BENCH_baseline.json.new || true
    fi
    echo "run_suite.sh: wrote BENCH_baseline.json.new (use --update to commit it)"
    ;;
esac
