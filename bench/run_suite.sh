#!/usr/bin/env bash
# Runs every --json-wired bench and aggregates the registry dumps into one regression
# baseline, BENCH_baseline.json (repo root): one JSON object per line with the schema
#
#   {"name": "<bench>", "metric": "<metric name>", "value": <number>, "seed": <workload seed>}
#
# Every bench is seed-pinned, so the suite output is byte-stable: a value that differs from
# the committed baseline is a real behaviour change (perf regression, WA shift, accounting
# bug), never noise. The check is add-tolerant: NEW metrics may appear without failing (a PR
# that adds instrumentation doesn't have to regenerate the baseline in the same commit), but
# any committed row that drifts or disappears fails.
#
#   bench/run_suite.sh                        # run suite, write BENCH_baseline.json.new, diff
#   bench/run_suite.sh --update               # run suite and overwrite BENCH_baseline.json
#   bench/run_suite.sh --check                # run suite, fail on drift/removal vs baseline
#
# The suite also runs every bench with --audit and maintains BENCH_digest_baseline.json
# (repo root): the golden per-subsystem FINAL state digests, one row per line with schema
# {"name", "subsystem", "digest", "seed"}. --update rewrites it, --check enforces it with
# the same add-tolerant contract as the metric baseline. On a digest mismatch, rerun the
# named bench with --audit under both builds and feed the two timelines to
# build/tools/digest_bisect to find the first divergent (epoch, subsystem) cell.
#
# Perf modes drive the self-profiler (--perf --repeat N) over the PERF SUBSET below and
# gate the wall-clock cost of simulation against BENCH_perf_baseline.json (repo root, same
# row schema, no seed field):
#
#   bench/run_suite.sh --check-perf           # gate ns_per_simulated_op vs perf baseline
#   bench/run_suite.sh --update-perf-baseline # overwrite BENCH_perf_baseline.json
#
# The perf gate compares ONLY ns_per_simulated_op (median across repeats), and only against
# regression: new <= baseline * tolerance. Tolerance must absorb both run-to-run noise the
# median doesn't kill and machine-to-machine variation; the default 1.5x is documented in
# DESIGN.md §11. Other perf rows (events_per_sec, sim_speedup, memory) are recorded for
# trend-reading, never gated.
#
# Environment:
#   BENCH_BUILD_DIR            build tree to run from (default: build; ci.sh --perf passes
#                              its Release tree here — wall-clock baselines are meaningless
#                              across optimization levels)
#   PERF_REPEATS               --repeat count for perf modes (default 5)
#   PERF_BENCHES               whitespace-separated bench subset override for perf modes
#   BLOCKHEAD_PERF_TOLERANCE   relative gate tolerance (default 1.5)
#
# Assumes an existing build tree (ci.sh tier-1 provides one).

set -euo pipefail
cd "$(dirname "$0")/.."

mode="diff"
case "${1:-}" in
  --update) mode="update" ;;
  --check) mode="check" ;;
  --check-perf) mode="check-perf" ;;
  --update-perf-baseline) mode="update-perf" ;;
  "") ;;
  *)
    echo "usage: $0 [--update|--check|--check-perf|--update-perf-baseline]" >&2
    exit 2
    ;;
esac

build_dir="${BENCH_BUILD_DIR:-build}"
if [[ ! -d "$build_dir/bench" ]]; then
  echo "run_suite.sh: no $build_dir/bench directory; build first (cmake --build $build_dir)" >&2
  exit 1
fi

# bench -> primary workload seed (matches the constant hard-coded in each bench source;
# 0 = the bench is deterministic with no top-level RNG).
benches=(
  "bench_tail_latency 11"
  "bench_gc_policy 21"
  "bench_read_latency 7"
  "bench_cache_buffers 37"
  "bench_simple_copy 13"
  "bench_wa_overprovisioning 42"
  "bench_ycsb 0"
  "bench_zone_append 0"
  "bench_wear_leveling 11"
  "bench_lifetime_hints 3"
  "bench_multistream 3"
  "bench_block_emulation 23"
  "bench_fleet 42"
  "bench_interference 7"
)

# Perf subset: the gate reruns each bench PERF_REPEATS times, so only the fast benches
# qualify (the heavyweight ones — bench_gc_policy, bench_ycsb, bench_wa_overprovisioning —
# run 40+ seconds each and would make the stage minutes-long for no extra signal; the subset
# covers the conventional-FTL, ZNS-fleet, and wear-leveling hot paths).
perf_benches=(
  "bench_read_latency 7"
  "bench_wear_leveling 11"
  "bench_fleet 42"
  "bench_zone_append 0"
)
if [[ -n "${PERF_BENCHES:-}" ]]; then
  read -r -a perf_benches <<< "$PERF_BENCHES"
  mapfile -t perf_benches < <(
    for b in "${perf_benches[@]}"; do
      for entry in "${benches[@]}"; do
        read -r name _ <<< "$entry"
        [[ "$name" == "$b" ]] && echo "$entry"
      done
    done)
fi
perf_repeats="${PERF_REPEATS:-5}"

tmp_dir=$(mktemp -d)
trap 'rm -rf "$tmp_dir"' EXIT

run_set=("${benches[@]}")
if [[ "$mode" == "check-perf" || "$mode" == "update-perf" ]]; then
  run_set=("${perf_benches[@]}")
fi

# Fail fast with a clear message when a bench binary is missing (a stale build tree would
# otherwise die mid-suite on a confusing exec error, or silently drop metrics from the
# baseline if the loop were ever made lenient).
for entry in "${run_set[@]}"; do
  read -r bench _ <<< "$entry"
  if [[ ! -x "$build_dir/bench/$bench" ]]; then
    echo "run_suite.sh: FAIL — missing bench binary $build_dir/bench/$bench;" \
         "rebuild first (cmake --build $build_dir)" >&2
    exit 1
  fi
done

if [[ "$mode" == "check-perf" || "$mode" == "update-perf" ]]; then
  for entry in "${run_set[@]}"; do
    read -r bench seed <<< "$entry"
    echo "run_suite.sh: $bench --perf --repeat $perf_repeats (seed $seed)"
    "$build_dir/bench/$bench" --perf --repeat "$perf_repeats" \
      --json "$tmp_dir/$bench.json" > /dev/null
  done

  out="$tmp_dir/BENCH_perf_baseline.json"
  python3 - "$tmp_dir" "$out" "${run_set[@]}" <<'PY'
import json, sys
tmp_dir, out_path = sys.argv[1], sys.argv[2]
KEEP = ("ns_per_simulated_op", "events_per_sec", "sim_speedup", "wall_elapsed_ns",
        "flash_events", "total_events", "peak_rss_bytes", "repeats")
rows = []
for entry in sys.argv[3:]:
    bench, _ = entry.rsplit(" ", 1)
    values = {}
    with open(f"{tmp_dir}/{bench}.json") as f:
        for line in f:
            rec = json.loads(line)
            if "value" in rec:
                values[rec["metric"]] = rec["value"]
    for metric in KEEP:
        name = f"selfprof.host.{metric}"
        assert name in values, f"{bench}: missing {name} in --perf output"
        rows.append({"name": bench, "metric": metric, "value": values[name]})
with open(out_path, "w") as f:
    for row in rows:
        f.write(json.dumps(row, separators=(",", ":")) + "\n")

# Perf columns: the human-readable view of what was just measured.
print(f"{'bench':<24} {'ns/op':>10} {'Mevents/s':>10} {'sim_speedup':>12} {'wall_ms':>9}")
by_bench = {}
for row in rows:
    by_bench.setdefault(row["name"], {})[row["metric"]] = row["value"]
for bench, v in by_bench.items():
    print(f"{bench:<24} {v['ns_per_simulated_op']:>10.1f} "
          f"{v['events_per_sec'] / 1e6:>10.3f} {v['sim_speedup']:>12.2f} "
          f"{v['wall_elapsed_ns'] / 1e6:>9.1f}")
PY

  if [[ "$mode" == "update-perf" ]]; then
    cp "$out" BENCH_perf_baseline.json
    echo "run_suite.sh: wrote BENCH_perf_baseline.json" \
         "($(wc -l < BENCH_perf_baseline.json) rows, repeat=$perf_repeats)"
    exit 0
  fi

  python3 - BENCH_perf_baseline.json "$out" "${BLOCKHEAD_PERF_TOLERANCE:-1.5}" <<'PY'
import json, sys
baseline_path, new_path, tol = sys.argv[1], sys.argv[2], float(sys.argv[3])

def load(path):
    rows = {}
    with open(path) as f:
        for line in f:
            rec = json.loads(line)
            rows[(rec["name"], rec["metric"])] = rec["value"]
    return rows

try:
    baseline = load(baseline_path)
except FileNotFoundError:
    print(f"run_suite.sh: FAIL — no {baseline_path}; create it with "
          "bench/run_suite.sh --update-perf-baseline", file=sys.stderr)
    sys.exit(1)
new = load(new_path)

# Gate: ns_per_simulated_op only, regression only. A faster run passes (and prints a hint
# to refresh the baseline); anything slower than tolerance fails.
failures = []
for (bench, metric), base in sorted(baseline.items()):
    if metric != "ns_per_simulated_op":
        continue
    if (bench, metric) not in new:
        continue  # Perf subset shrank for this invocation (PERF_BENCHES override).
    got = new[(bench, metric)]
    limit = base * tol
    verdict = "OK" if got <= limit else "FAIL"
    print(f"perf-gate: {bench}: ns_per_simulated_op {got:.1f} vs baseline {base:.1f} "
          f"(limit {limit:.1f}, tolerance {tol}x) {verdict}")
    if got > limit:
        failures.append(bench)
    elif got < base / tol:
        print(f"perf-gate: note — {bench} is now >{tol}x faster than baseline; consider "
              "bench/run_suite.sh --update-perf-baseline")
if failures:
    print(f"run_suite.sh: FAIL — perf regression gate tripped for: {', '.join(failures)}",
          file=sys.stderr)
    sys.exit(1)
print("run_suite.sh: OK — perf within tolerance of BENCH_perf_baseline.json")
PY
  exit 0
fi

for entry in "${run_set[@]}"; do
  read -r bench seed <<< "$entry"
  echo "run_suite.sh: $bench (seed $seed)"
  "$build_dir/bench/$bench" --json "$tmp_dir/$bench.json" \
    --audit "$tmp_dir/$bench.audit.jsonl" > /dev/null
done

# Golden state digests: the per-subsystem FINAL digests of every bench, one row per line.
# Unlike the metric baseline (aggregates), these commit to the exact final content of every
# audited state table — any behaviour change that moves even one page mapping flips a digest.
# tools/digest_bisect localizes a mismatch to its first divergent epoch.
digests_out="$tmp_dir/BENCH_digest_baseline.json"
python3 - "$tmp_dir" "$digests_out" "${run_set[@]}" <<'PY'
import json, sys
tmp_dir, out_path = sys.argv[1], sys.argv[2]
rows = []
for entry in sys.argv[3:]:
    bench, seed = entry.rsplit(" ", 1)
    with open(f"{tmp_dir}/{bench}.audit.jsonl") as f:
        for line in f:
            rec = json.loads(line)
            if rec.get("final"):
                rows.append({"name": bench, "subsystem": rec["subsystem"],
                             "digest": rec["digest"], "seed": int(seed)})
with open(out_path, "w") as f:
    for row in rows:
        f.write(json.dumps(row, separators=(",", ":")) + "\n")
PY

out="$tmp_dir/BENCH_baseline.json"
python3 - "$out" "${run_set[@]}" <<'PY'
import json, sys
out_path = sys.argv[1]
rows = []
for entry in sys.argv[2:]:
    bench, seed = entry.rsplit(" ", 1)
    with open(f"{sys.argv[1].rsplit('/', 1)[0]}/{bench}.json") as f:
        for line in f:
            rec = json.loads(line)
            if "value" in rec:  # counter / gauge
                rows.append({"name": rec["bench"], "metric": rec["metric"],
                             "value": rec["value"], "seed": int(seed)})
            else:  # histogram: one row per summary stat
                for stat in ("count", "min", "max", "mean", "p50", "p90", "p95",
                             "p99", "p999"):
                    rows.append({"name": rec["bench"],
                                 "metric": f"{rec['metric']}.{stat}",
                                 "value": rec[stat], "seed": int(seed)})
with open(out_path, "w") as f:
    for row in rows:
        f.write(json.dumps(row, separators=(",", ":")) + "\n")
PY

case "$mode" in
  update)
    cp "$out" BENCH_baseline.json
    cp "$digests_out" BENCH_digest_baseline.json
    echo "run_suite.sh: wrote BENCH_baseline.json ($(wc -l < BENCH_baseline.json) metrics)"
    echo "run_suite.sh: wrote BENCH_digest_baseline.json" \
         "($(wc -l < BENCH_digest_baseline.json) digests)"
    ;;
  check)
    # Add-tolerant comparison: every committed row must reproduce exactly (drift or removal
    # fails); rows only present in the new run are reported but pass.
    python3 - BENCH_baseline.json "$out" <<'PY'
import json, sys
baseline_path, new_path = sys.argv[1], sys.argv[2]

def load(path):
    rows = {}
    with open(path) as f:
        for line in f:
            rec = json.loads(line)
            rows[(rec["name"], rec["metric"], rec["seed"])] = rec["value"]
    return rows

baseline = load(baseline_path)
new = load(new_path)
drifted = [(k, v, new[k]) for k, v in baseline.items() if k in new and new[k] != v]
removed = [k for k in baseline if k not in new]
added = [k for k in new if k not in baseline]
for key, want, got in drifted[:20]:
    print(f"run_suite.sh: DRIFT {key[0]} {key[1]} (seed {key[2]}): "
          f"baseline {want} != {got}", file=sys.stderr)
for key in removed[:20]:
    print(f"run_suite.sh: REMOVED {key[0]} {key[1]} (seed {key[2]})", file=sys.stderr)
if drifted or removed:
    print(f"run_suite.sh: FAIL — {len(drifted)} drifted, {len(removed)} removed "
          f"vs BENCH_baseline.json", file=sys.stderr)
    sys.exit(1)
suffix = f"; {len(added)} new metrics not yet in the baseline (OK)" if added else ""
print(f"run_suite.sh: OK — {len(baseline)} baseline metrics match{suffix}")
PY
    # Golden digest check, same add-tolerant contract: every committed (bench, subsystem,
    # seed) digest must reproduce exactly; subsystems audited for the first time pass with a
    # note. A mismatch names the bench so the developer can rerun it with --audit twice
    # (committed build vs theirs) and hand both timelines to tools/digest_bisect.
    python3 - BENCH_digest_baseline.json "$digests_out" <<'PY'
import json, sys
baseline_path, new_path = sys.argv[1], sys.argv[2]

def load(path):
    rows = {}
    with open(path) as f:
        for line in f:
            rec = json.loads(line)
            rows[(rec["name"], rec["subsystem"], rec["seed"])] = rec["digest"]
    return rows

try:
    baseline = load(baseline_path)
except FileNotFoundError:
    print(f"run_suite.sh: FAIL — no {baseline_path}; create it with "
          "bench/run_suite.sh --update", file=sys.stderr)
    sys.exit(1)
new = load(new_path)
drifted = [(k, v, new[k]) for k, v in baseline.items() if k in new and new[k] != v]
removed = [k for k in baseline if k not in new]
added = [k for k in new if k not in baseline]
for key, want, got in drifted[:20]:
    print(f"run_suite.sh: DIGEST DRIFT {key[0]} {key[1]} (seed {key[2]}): "
          f"baseline {want} != {got} — bisect with: build/bench/{key[0]} --audit a.jsonl "
          f"(per build), then build/tools/digest_bisect a.jsonl b.jsonl", file=sys.stderr)
for key in removed[:20]:
    print(f"run_suite.sh: DIGEST REMOVED {key[0]} {key[1]} (seed {key[2]})",
          file=sys.stderr)
if drifted or removed:
    print(f"run_suite.sh: FAIL — {len(drifted)} digests drifted, {len(removed)} removed "
          f"vs BENCH_digest_baseline.json", file=sys.stderr)
    sys.exit(1)
suffix = f"; {len(added)} new digests not yet in the baseline (OK)" if added else ""
print(f"run_suite.sh: OK — {len(baseline)} golden digests match{suffix}")
PY
    ;;
  diff)
    cp "$out" BENCH_baseline.json.new
    cp "$digests_out" BENCH_digest_baseline.json.new
    if [[ -f BENCH_baseline.json ]]; then
      diff BENCH_baseline.json BENCH_baseline.json.new || true
    fi
    if [[ -f BENCH_digest_baseline.json ]]; then
      diff BENCH_digest_baseline.json BENCH_digest_baseline.json.new || true
    fi
    echo "run_suite.sh: wrote BENCH_baseline.json.new and BENCH_digest_baseline.json.new" \
         "(use --update to commit them)"
    ;;
esac
