// E2 — §2.2: "In our lab experiments with random write workloads and a variable
// overprovisioning factor, the write amplification from garbage collection improves from 15x
// with no overprovisioning to about 2.5x with ~25% overprovisioning."
//
// Regenerates that curve on the conventional-SSD model: fill the logical space, then apply a
// sustained uniform random 4 KiB overwrite workload (3x the logical capacity) and report the
// flash-level write amplification per OP point. The ZNS column shows the same workload run
// through an application-managed zone layout (whole-zone invalidation, no copying), which is
// the paper's structural alternative.

#include <cstdio>
#include <string>

#include "bench/bench_main.h"
#include "src/core/matched_pair.h"
#include "src/telemetry/telemetry.h"
#include "src/util/rng.h"
#include "src/workload/workload.h"

using namespace blockhead;

namespace {

// Registry prefix for one OP point ("conv.op070" for 7%). All per-device stats land under it;
// the WA the table prints is read back from `<prefix>.ftl.write_amplification`, the same gauge
// the JSON dump carries — one formatting path, not two.
std::string OpPrefix(double op_fraction) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "conv.op%03d", static_cast<int>(op_fraction * 1000 + 0.5));
  return buf;
}

bool RunConventional(double op_fraction, Telemetry* tel) {
  MatchedConfig cfg = MatchedConfig::Bench();
  cfg.flash.timing = FlashTiming::FastForTests();
  cfg.ftl.op_fraction = op_fraction;
  // Even "0% OP" drives keep a small internal reserve (frontiers, bad-block spares); ~5% here
  // puts the zero-OP point in the paper's ~15x regime rather than a pathological thrash.
  cfg.ftl.min_reserve_blocks_per_plane = 5;
  ConventionalSsd ssd(cfg.flash, cfg.ftl);
  ssd.AttachTelemetry(tel, OpPrefix(op_fraction));

  auto fill = SequentialFill(ssd, 1.0, 0);
  if (!fill.ok()) {
    std::fprintf(stderr, "fill failed: %s\n", fill.status().ToString().c_str());
    return false;
  }
  RandomWorkloadConfig wl;
  wl.lba_space = ssd.num_blocks();
  wl.read_fraction = 0.0;
  wl.io_pages = 1;
  wl.seed = 42;
  RandomWorkload gen(wl);
  DriverOptions opts;
  opts.ops = 3 * ssd.num_blocks();
  opts.start_time = fill.value();
  const RunResult result = RunClosedLoop(ssd, gen, opts);
  if (!result.status.ok()) {
    std::fprintf(stderr, "run failed: %s\n", result.status.ToString().c_str());
    return false;
  }
  return true;
  // ~ConventionalSsd publishes the final gauges into `tel` on scope exit.
}

// The same churn volume issued as an app-managed zone workload: sequential appends, oldest
// zone reset wholesale when space runs out.
void RunZnsAppManaged(Telemetry* tel) {
  MatchedConfig cfg = MatchedConfig::Bench();
  cfg.flash.timing = FlashTiming::FastForTests();
  ZnsDevice dev(cfg.flash, cfg.zns);
  dev.AttachTelemetry(tel, "zns.appmanaged");
  const std::uint64_t total_pages =
      static_cast<std::uint64_t>(dev.num_zones()) * dev.zone_size_pages();
  std::uint32_t open_zone = 0;
  std::uint32_t next_reset = 0;
  bool wrapped = false;
  SimTime t = 0;
  for (std::uint64_t written = 0; written < 4 * total_pages;) {
    const ZoneDescriptor d = dev.zone(ZoneId{open_zone});
    if (d.write_pointer >= d.capacity_pages) {
      open_zone = (open_zone + 1) % dev.num_zones();
      if (open_zone == 0) {
        wrapped = true;
      }
      if (wrapped) {
        auto reset = dev.ResetZone(ZoneId{next_reset}, t);
        if (reset.ok()) {
          t = reset.value();
        }
        next_reset = (next_reset + 1) % dev.num_zones();
      }
      continue;
    }
    const std::uint32_t chunk = 8;
    auto w = dev.Write(ZoneId{open_zone}, d.write_pointer, chunk, t);
    if (!w.ok()) {
      open_zone = (open_zone + 1) % dev.num_zones();
      continue;
    }
    t = w.value();
    written += chunk;
  }
  // ~ZnsDevice publishes the final gauges (including the flash WA) on scope exit.
}

}  // namespace

int RunBench(const BenchOptions& opts, Telemetry& tel) {
  MaybeEnableTimeline(opts, tel);

  std::printf("=== E2: Write amplification vs overprovisioning (uniform random 4K writes) ===\n");
  std::printf("Paper claim: ~15x at 0%% OP, improving to ~2.5x at ~25%% OP (§2.2).\n\n");

  const double ops[] = {0.0, 0.07, 0.125, 0.18, 0.25, 0.28};
  TablePrinter table({"OP fraction", "WA (conventional)", "paper shape"});
  for (const double op : ops) {
    // The device is scoped inside RunConventional; its final stats land in the registry under
    // OpPrefix(op) when it is destroyed, and the table reads them back from there.
    const bool ok = RunConventional(op, &tel);
    const double wa =
        ok ? tel.registry.GetGauge(OpPrefix(op) + ".ftl.write_amplification")->value() : -1.0;
    const char* note = "";
    if (op == 0.0) {
      note = "~15x claimed";
    } else if (op == 0.25) {
      note = "~2.5x claimed";
    }
    char opbuf[16];
    std::snprintf(opbuf, sizeof(opbuf), "%.1f%%", op * 100);
    table.AddRow({opbuf, TablePrinter::Fmt(wa, 2) + "x", note});
  }
  std::printf("%s\n", table.Render().c_str());

  RunZnsAppManaged(&tel);
  const double zns_wa =
      tel.registry.GetGauge("zns.appmanaged.flash.write_amplification")->value();
  std::printf("Same churn, app-managed zones on the ZNS device (no GC copies): WA = %.2fx\n",
              zns_wa);

  // Provenance view of the same runs: every physical program attributed to its cause, the WA
  // factorized as a host->physical chain (the product must match the end-to-end number), and
  // the endurance projection that the extra GC churn implies.
  std::printf("\nWrite provenance per OP point (cause of each physical program):\n\n");
  TablePrinter prov({"OP fraction", "host", "device GC", "wear mig", "GC share",
                     "factorized WA", "endurance (days)"});
  for (const double op : ops) {
    const std::string device = OpPrefix(op) + ".flash";
    const WriteProvenance::DeviceLedger* ledger = tel.provenance.FindDevice(device);
    if (ledger == nullptr || ledger->total_pages == 0) {
      continue;
    }
    const std::uint64_t host =
        WriteProvenance::ProgramCount(*ledger, WriteCause::kHostWrite);
    const std::uint64_t gc = WriteProvenance::ProgramCount(*ledger, WriteCause::kDeviceGC);
    const std::uint64_t wear =
        WriteProvenance::ProgramCount(*ledger, WriteCause::kWearMigration);
    const WriteProvenance::FactorizedWa wa = tel.provenance.Factorize({}, device);
    PublishFactorizedWa(&tel.registry, OpPrefix(op), wa);
    const WriteProvenance::EnduranceProjection endurance =
        tel.provenance.ProjectEndurance(device);
    char opbuf[16];
    std::snprintf(opbuf, sizeof(opbuf), "%.1f%%", op * 100);
    // Simulated time is accelerated (FastForTests), so the projection is a small fraction of
    // a day; %.3g keeps the relative ordering visible instead of rounding to 0.0.
    char days[32] = "-";
    if (endurance.valid) {
      std::snprintf(days, sizeof(days), "%.3g", endurance.projected_days);
    }
    prov.AddRow({opbuf, std::to_string(host), std::to_string(gc), std::to_string(wear),
                 TablePrinter::Fmt(100.0 * static_cast<double>(gc) /
                                       static_cast<double>(ledger->total_pages), 1) + "%",
                 FormatFactorizedWa(wa), days});
  }
  std::printf("%s\n", prov.Render().c_str());
  {
    const WriteProvenance::FactorizedWa wa =
        tel.provenance.Factorize({}, "zns.appmanaged.flash");
    PublishFactorizedWa(&tel.registry, "zns.appmanaged", wa);
  }

  std::printf("Shape check: WA must decrease monotonically with OP, high WA at 0%% OP,\n"
              "near 2-3x at 25%%+; the ZNS alternative stays at ~1x regardless of OP. The\n"
              "provenance table explains the curve: at 0%% OP nearly all programs are device-GC\n"
              "relocations — per host byte the drive burns ~8x the P/E budget, paid for in\n"
              "foreground throughput rather than calendar time.\n");
  return FinishBench(opts, "bench_wa_overprovisioning", tel);
}

int main(int argc, char** argv) {
  return RunBenchMain(argc, argv, "bench_wa_overprovisioning", RunBench);
}
